// Ablation benchmarks for the design choices DESIGN.md calls out:
// call deduplication (δ) in the Figure 2 rule, the §4 predicate hash
// index, and call-by-fragment message compression. Each Benchmark pair
// measures the system with the mechanism on and off.
package xrpc

import (
	"testing"

	"xrpc/internal/client"
	"xrpc/internal/interp"
	"xrpc/internal/modules"
	"xrpc/internal/netsim"
	"xrpc/internal/pathfinder"
	"xrpc/internal/server"
	"xrpc/internal/soap"
	"xrpc/internal/store"
	"xrpc/internal/xdm"
	"xrpc/internal/xmark"
)

// --- ablation 1: δ over identical bulk calls -------------------------

const invariantCallQuery = `
import module namespace f="films" at "http://x.example.org/film.xq";
for $p in (1 to 50)
return count(execute at {"xrpc://y"} {f:filmsByActor("Sean Connery")})`

func dedupEnv(b *testing.B) (*pathfinder.Compiled, *netsim.Network, *store.Store) {
	b.Helper()
	net := netsim.NewNetwork(0, 0)
	reg := modules.NewRegistry()
	film := `
module namespace film="films";
declare function film:filmsByActor($actor as xs:string) as node()*
{ doc("filmDB.xml")//name[../actor=$actor] };`
	if err := reg.Register(film, "http://x.example.org/film.xq"); err != nil {
		b.Fatal(err)
	}
	st := store.New()
	if err := st.LoadXML("filmDB.xml", xmark.GenerateFilmDB(200, nil)); err != nil {
		b.Fatal(err)
	}
	srv := server.New(st, reg, server.NewNativeExecutor(interp.New(st, reg, nil), reg))
	net.Register("xrpc://y", srv)
	compiled, err := pathfinder.Compile(invariantCallQuery, reg)
	if err != nil {
		b.Fatal(err)
	}
	return compiled, net, store.New()
}

func benchDedup(b *testing.B, noDedup bool) {
	compiled, net, local := dedupEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ec := &pathfinder.ExecCtx{Docs: local, Bulk: client.New(net), NoDedup: noDedup}
		if _, err := compiled.Eval(ec, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_CallDedup_On(b *testing.B)  { benchDedup(b, false) }
func BenchmarkAblation_CallDedup_Off(b *testing.B) { benchDedup(b, true) }

// --- ablation 2: the §4 predicate hash index --------------------------

func benchPredIndex(b *testing.B, disabled bool) {
	st := store.New()
	cfg := xmark.Config{Persons: 500, Seed: 1}
	if err := st.LoadXML("persons.xml", xmark.GeneratePersons(cfg)); err != nil {
		b.Fatal(err)
	}
	eng := interp.New(st, nil, nil)
	eng.DisablePredIndex = disabled
	compiled, err := eng.Compile(`
for $i in (0 to 199)
let $pid := concat("person", string($i))
return count(doc("persons.xml")//person[@id=$pid])`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := compiled.Eval(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_PredIndex_On(b *testing.B)  { benchPredIndex(b, false) }
func BenchmarkAblation_PredIndex_Off(b *testing.B) { benchPredIndex(b, true) }

// --- ablation 3: call-by-fragment compression --------------------------

func benchByFragment(b *testing.B, byFragment bool) {
	doc, err := xdm.ParseDocument("site.xml", xmark.GeneratePersons(xmark.Config{Persons: 100, Seed: 2}))
	if err != nil {
		b.Fatal(err)
	}
	people := xdm.Step(doc, xdm.AxisDescendant, xdm.NodeTest{Name: "people"})[0]
	persons := xdm.Step(doc, xdm.AxisDescendant, xdm.NodeTest{Name: "person"})
	params := []xdm.Sequence{{people}, {persons[10]}, {persons[90]}}
	req := &soap.Request{
		Module: "m", Method: "f", Arity: 3, Location: "l",
		ByFragment: byFragment,
		Calls:      [][]xdm.Sequence{params},
	}
	b.ResetTimer()
	var bytes int
	for i := 0; i < b.N; i++ {
		msg := soap.EncodeRequest(req)
		bytes = len(msg)
		if _, err := soap.DecodeRequest(msg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(bytes), "message-bytes")
}

func BenchmarkAblation_ByFragment_On(b *testing.B)  { benchByFragment(b, true) }
func BenchmarkAblation_ByFragment_Off(b *testing.B) { benchByFragment(b, false) }

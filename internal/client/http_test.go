package client

import (
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestHTTPTransportNon2xxIsAnError(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "service melting down: "+strings.Repeat("x", 2000), http.StatusServiceUnavailable)
	}))
	defer hs.Close()

	out, err := NewHTTPTransport().Send(hs.URL, "/xrpc", []byte("<req/>"))
	if err == nil {
		t.Fatalf("non-2xx response returned as success payload: %q", out)
	}
	var httpErr *HTTPError
	if !errors.As(err, &httpErr) {
		t.Fatalf("want *HTTPError, got %T: %v", err, err)
	}
	if httpErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", httpErr.StatusCode)
	}
	if !strings.Contains(httpErr.Body, "service melting down") {
		t.Fatalf("error body lost the diagnostic: %q", httpErr.Body)
	}
	if len(httpErr.Body) > errBodyLimit {
		t.Fatalf("error body not truncated: %d bytes", len(httpErr.Body))
	}
}

func TestHTTPTransportReusesConnections(t *testing.T) {
	var conns atomic.Int64
	hs := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("<resp/>"))
	}))
	hs.Config.ConnState = func(c net.Conn, state http.ConnState) {
		if state == http.StateNew {
			conns.Add(1)
		}
	}
	hs.Start()
	defer hs.Close()

	tr := NewHTTPTransport()
	for i := 0; i < 8; i++ {
		if _, err := tr.Send(hs.URL, "/xrpc", []byte("<req/>")); err != nil {
			t.Fatal(err)
		}
	}
	if got := conns.Load(); got != 1 {
		t.Fatalf("8 sequential sends used %d connections, want 1 (keep-alive pool)", got)
	}
}

func TestHTTPTransportConfigurableTimeout(t *testing.T) {
	release := make(chan struct{})
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer hs.Close()
	defer close(release) // unblock the handler before hs.Close waits on it

	tr := NewHTTPTransportTimeout(50 * time.Millisecond)
	start := time.Now()
	_, err := tr.Send(hs.URL, "/xrpc", []byte("<req/>"))
	if err == nil {
		t.Fatal("expected a timeout error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout not honored: took %v", elapsed)
	}
}

func TestHTTPTransportSchemeRewrite(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/xrpc" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte("<resp/>"))
	}))
	defer hs.Close()

	host := strings.TrimPrefix(hs.URL, "http://")
	for _, dest := range []string{hs.URL, "xrpc://" + host, host} {
		out, err := NewHTTPTransport().Send(dest, "/xrpc", []byte("<req/>"))
		if err != nil {
			t.Fatalf("dest %q: %v", dest, err)
		}
		if string(out) != "<resp/>" {
			t.Fatalf("dest %q: response %q", dest, out)
		}
	}
}

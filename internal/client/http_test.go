package client

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"xrpc/internal/soap"
)

func TestHTTPTransportNon2xxIsAnError(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "service melting down: "+strings.Repeat("x", 2000), http.StatusServiceUnavailable)
	}))
	defer hs.Close()

	out, err := NewHTTPTransport().Send(hs.URL, "/xrpc", []byte("<req/>"))
	if err == nil {
		t.Fatalf("non-2xx response returned as success payload: %q", out)
	}
	var httpErr *HTTPError
	if !errors.As(err, &httpErr) {
		t.Fatalf("want *HTTPError, got %T: %v", err, err)
	}
	if httpErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", httpErr.StatusCode)
	}
	if !strings.Contains(httpErr.Body, "service melting down") {
		t.Fatalf("error body lost the diagnostic: %q", httpErr.Body)
	}
	if len(httpErr.Body) > errBodyLimit {
		t.Fatalf("error body not truncated: %d bytes", len(httpErr.Body))
	}
}

func TestHTTPTransportReusesConnections(t *testing.T) {
	var conns atomic.Int64
	hs := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("<resp/>"))
	}))
	hs.Config.ConnState = func(c net.Conn, state http.ConnState) {
		if state == http.StateNew {
			conns.Add(1)
		}
	}
	hs.Start()
	defer hs.Close()

	tr := NewHTTPTransport()
	for i := 0; i < 8; i++ {
		if _, err := tr.Send(hs.URL, "/xrpc", []byte("<req/>")); err != nil {
			t.Fatal(err)
		}
	}
	if got := conns.Load(); got != 1 {
		t.Fatalf("8 sequential sends used %d connections, want 1 (keep-alive pool)", got)
	}
}

func TestHTTPTransportConfigurableTimeout(t *testing.T) {
	release := make(chan struct{})
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer hs.Close()
	defer close(release) // unblock the handler before hs.Close waits on it

	tr := NewHTTPTransportTimeout(50 * time.Millisecond)
	start := time.Now()
	_, err := tr.Send(hs.URL, "/xrpc", []byte("<req/>"))
	if err == nil {
		t.Fatal("expected a timeout error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout not honored: took %v", elapsed)
	}
}

func TestHTTPTransportSchemeRewrite(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/xrpc" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte("<resp/>"))
	}))
	defer hs.Close()

	host := strings.TrimPrefix(hs.URL, "http://")
	for _, dest := range []string{hs.URL, "xrpc://" + host, host} {
		out, err := NewHTTPTransport().Send(dest, "/xrpc", []byte("<req/>"))
		if err != nil {
			t.Fatalf("dest %q: %v", dest, err)
		}
		if string(out) != "<resp/>" {
			t.Fatalf("dest %q: response %q", dest, out)
		}
	}
}

// TestRetriableClassification pins the failover contract: transport
// failures and 5xx statuses are worth retrying against another replica,
// SOAP faults and definitive 4xx statuses are not.
func TestRetriableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"connection refused", errors.New("dial tcp: connection refused"), true},
		{"wrapped transport error", fmt.Errorf("xrpc: send: %w", errors.New("timeout")), true},
		{"soap fault", &soap.Fault{Code: "env:Sender", Reason: "bad module"}, false},
		{"wrapped soap fault", fmt.Errorf("shard 1: %w", &soap.Fault{Code: "env:Receiver", Reason: "x"}), false},
		{"http 500", &HTTPError{StatusCode: 500, Status: "500 Internal Server Error"}, true},
		{"http 503", &HTTPError{StatusCode: 503, Status: "503 Service Unavailable"}, true},
		{"http 408 request timeout", &HTTPError{StatusCode: 408, Status: "408 Request Timeout"}, true},
		{"http 429 too many requests", &HTTPError{StatusCode: 429, Status: "429 Too Many Requests"}, true},
		{"http 400", &HTTPError{StatusCode: 400, Status: "400 Bad Request"}, false},
		{"http 404", &HTTPError{StatusCode: 404, Status: "404 Not Found"}, false},
		{"http 413 too large", &HTTPError{StatusCode: 413, Status: "413 Request Entity Too Large"}, false},
		{"wrapped http 404", fmt.Errorf("send: %w", &HTTPError{StatusCode: 404, Status: "404"}), false},
	}
	for _, c := range cases {
		if got := Retriable(c.err); got != c.want {
			t.Errorf("%s: Retriable = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestHTTPTransportStatusErrorsAreClassified exercises the end-to-end
// path: real HTTP statuses surface as HTTPErrors with the right
// retriability.
func TestHTTPTransportStatusErrorsAreClassified(t *testing.T) {
	for _, c := range []struct {
		code int
		want bool
	}{{502, true}, {404, false}} {
		hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "nope", c.code)
		}))
		_, err := NewHTTPTransport().Send(hs.URL, "/xrpc", []byte("<req/>"))
		hs.Close()
		if err == nil {
			t.Fatalf("status %d: expected an error", c.code)
		}
		if got := Retriable(err); got != c.want {
			t.Errorf("status %d: Retriable = %v, want %v", c.code, got, c.want)
		}
	}
}

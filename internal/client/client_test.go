package client

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"xrpc/internal/interp"
	"xrpc/internal/modules"
	"xrpc/internal/netsim"
	"xrpc/internal/server"
	"xrpc/internal/soap"
	"xrpc/internal/store"
	"xrpc/internal/xdm"
	"xrpc/internal/xmark"
)

const filmModule = `
module namespace film="films";
declare function film:filmsByActor($actor as xs:string) as node()*
{ doc("filmDB.xml")//name[../actor=$actor] };`

func newServer(t *testing.T) *server.Server {
	t.Helper()
	st := store.New()
	if err := st.LoadXML("filmDB.xml", xmark.PaperFilmDB); err != nil {
		t.Fatal(err)
	}
	reg := modules.NewRegistry()
	if err := reg.Register(filmModule, "http://x.example.org/film.xq"); err != nil {
		t.Fatal(err)
	}
	return server.New(st, reg, server.NewNativeExecutor(interp.New(st, reg, nil), reg))
}

func TestCallSingle(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	net.Register("xrpc://y", newServer(t))
	cl := New(net)
	seq, err := cl.Call("xrpc://y", &interp.CallRequest{
		ModuleURI: "films", AtHint: "http://x.example.org/film.xq",
		Func: "filmsByActor", Arity: 1,
		Args: []xdm.Sequence{{xdm.String("Sean Connery")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 2 {
		t.Fatalf("films = %d", len(seq))
	}
	if cl.Requests.Load() != 1 || cl.Sent.Load() == 0 || cl.Received.Load() == 0 {
		t.Errorf("stats = %d/%d/%d", cl.Requests.Load(), cl.Sent.Load(), cl.Received.Load())
	}
	peers := cl.Peers()
	if len(peers) != 1 || peers[0] != "xrpc://y" {
		t.Errorf("peers = %v", peers)
	}
}

func TestCallOneAtATimeCount(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	srv := newServer(t)
	net.Register("xrpc://y", srv)
	cl := New(net)
	calls := [][]xdm.Sequence{
		{{xdm.String("Sean Connery")}},
		{{xdm.String("Julie Andrews")}},
		{{xdm.String("Gerard Depardieu")}},
	}
	br := &BulkRequest{
		ModuleURI: "films", AtHint: "http://x.example.org/film.xq",
		Func: "filmsByActor", Arity: 1, Calls: calls,
	}
	res, err := cl.CallOneAtATime("xrpc://y", br)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	if srv.ServedRequests != 3 {
		t.Errorf("requests = %d, want 3", srv.ServedRequests)
	}
	if len(res[0]) != 2 || len(res[1]) != 0 || len(res[2]) != 1 {
		t.Errorf("result sizes = %d,%d,%d", len(res[0]), len(res[1]), len(res[2]))
	}
}

// The stats counters are mutated by every CallBulk, and CallParallel
// issues CallBulk from one goroutine per destination — plus experiments
// read the counters while a dispatch may still be in flight. Run under
// -race (make race / CI) this pins the counters as data-race-free.
func TestStatsRaceUnderParallelDispatch(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	const peers = 8
	var dests []string
	for p := 0; p < peers; p++ {
		dest := "xrpc://y" + strings.Repeat("y", p)
		net.Register(dest, newServer(t))
		dests = append(dests, dest)
	}
	cl := New(net)
	var parts []*BulkByDest
	for p, dest := range dests {
		parts = append(parts, &BulkByDest{
			Dest: dest,
			Request: &BulkRequest{
				ModuleURI: "films", AtHint: "http://x.example.org/film.xq",
				Func: "filmsByActor", Arity: 1,
				Calls: [][]xdm.Sequence{{{xdm.String("Sean Connery")}}},
			},
			OrigIdx: []int{p},
		})
	}
	done := make(chan struct{})
	go func() { // concurrent reader, as the experiment harnesses do
		defer close(done)
		for i := 0; i < 1000; i++ {
			_ = cl.Requests.Load() + cl.Sent.Load() + cl.Received.Load()
		}
	}()
	res, err := cl.CallParallel(parts, peers)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != peers {
		t.Fatalf("results = %d", len(res))
	}
	if got := cl.Requests.Load(); got != peers {
		t.Errorf("requests = %d, want %d", got, peers)
	}
	if cl.Sent.Load() == 0 || cl.Received.Load() == 0 {
		t.Errorf("sent/received = %d/%d", cl.Sent.Load(), cl.Received.Load())
	}
}

func TestResultCountMismatchRejected(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	net.Register("xrpc://bad", netsim.HandlerFunc(func(_ string, _ []byte) ([]byte, error) {
		// respond with zero result sequences for a one-call request
		return soap.EncodeResponse(&soap.Response{Module: "m", Method: "f"}), nil
	}))
	cl := New(net)
	_, err := cl.CallBulk("xrpc://bad", &BulkRequest{
		ModuleURI: "m", Func: "f", Arity: 0,
		Calls: [][]xdm.Sequence{{}},
	})
	if err == nil || !strings.Contains(err.Error(), "results") {
		t.Errorf("err = %v", err)
	}
}

func TestDocResolverCachesFetches(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	srv := newServer(t)
	var fetches atomic.Int64
	net.Register("xrpc://y", netsim.HandlerFunc(func(path string, body []byte) ([]byte, error) {
		fetches.Add(1)
		return srv.HandleXRPC(path, body)
	}))
	r := &DocResolver{Client: New(net)}
	for i := 0; i < 5; i++ {
		doc, err := r.Doc("xrpc://y/filmDB.xml")
		if err != nil {
			t.Fatal(err)
		}
		if doc.Kind != xdm.DocumentNode {
			t.Fatalf("kind = %v", doc.Kind)
		}
	}
	if fetches.Load() != 1 {
		t.Errorf("fetches = %d, want 1 (fn:doc is stable within a query)", fetches.Load())
	}
}

func TestDocResolverLocalFallback(t *testing.T) {
	st := store.New()
	if err := st.LoadXML("local.xml", "<a/>"); err != nil {
		t.Fatal(err)
	}
	r := &DocResolver{Local: st, Client: New(netsim.NewNetwork(0, 0))}
	if _, err := r.Doc("local.xml"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Doc("missing.xml"); err == nil {
		t.Error("expected error for missing local doc")
	}
	r2 := &DocResolver{Client: New(netsim.NewNetwork(0, 0))}
	if _, err := r2.Doc("anything.xml"); err == nil {
		t.Error("expected error with no local store")
	}
}

func TestHTTPTransportEndToEnd(t *testing.T) {
	srv := newServer(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cl := New(NewHTTPTransport())
	dest := strings.Replace(ts.URL, "http://", "xrpc://", 1)
	res, err := cl.CallBulk(dest, &BulkRequest{
		ModuleURI: "films", AtHint: "http://x.example.org/film.xq",
		Func: "filmsByActor", Arity: 1,
		Calls: [][]xdm.Sequence{{{xdm.String("Sean Connery")}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0]) != 2 {
		t.Fatalf("films over HTTP = %d", len(res[0]))
	}
}

// TestGzipContentCoding proves the optional gzip content-coding is
// transparent: with gzip on both sides, gzip only on the server, or no
// gzip at all, the decoded response is identical — and when both sides
// negotiate, the bytes on the wire are actually compressed.
func TestGzipContentCoding(t *testing.T) {
	srv := newServer(t)
	srv.Gzip = true

	var rawBytes, gzBytes atomic.Int64
	ts := httptest.NewServer(countingMiddleware(srv, &rawBytes, &gzBytes))
	defer ts.Close()
	dest := strings.Replace(ts.URL, "http://", "xrpc://", 1)

	br := func() *BulkRequest {
		b := &BulkRequest{
			ModuleURI: "films", AtHint: "http://x.example.org/film.xq",
			Func: "filmsByActor", Arity: 1,
		}
		for i := 0; i < 32; i++ {
			b.Calls = append(b.Calls, []xdm.Sequence{{xdm.String("Sean Connery")}})
		}
		return b
	}

	plain := New(NewHTTPTransport())
	want, err := plain.CallBulk(dest, br())
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := soap.EncodeResponse(&soap.Response{Module: "films", Method: "filmsByActor", Results: want})

	gzipTr := NewHTTPTransport()
	gzipTr.Gzip = true
	zipped := New(gzipTr)
	got, err := zipped.CallBulk(dest, br())
	if err != nil {
		t.Fatal(err)
	}
	gotBytes := soap.EncodeResponse(&soap.Response{Module: "films", Method: "filmsByActor", Results: got})
	if string(gotBytes) != string(wantBytes) {
		t.Fatal("gzip and plain transports decoded different responses")
	}
	if gzBytes.Load() == 0 {
		t.Fatal("gzip transport sent no gzip-encoded request")
	}
	if gzBytes.Load() >= rawBytes.Load() {
		t.Fatalf("gzip request (%d bytes) not smaller than plain (%d bytes)",
			gzBytes.Load(), rawBytes.Load())
	}

	// server with gzip disabled still accepts gzip requests but answers
	// plain; the client handles both
	srv.Gzip = false
	got2, err := zipped.CallBulk(dest, br())
	if err != nil {
		t.Fatal(err)
	}
	got2Bytes := soap.EncodeResponse(&soap.Response{Module: "films", Method: "filmsByActor", Results: got2})
	if string(got2Bytes) != string(wantBytes) {
		t.Fatal("gzip client against non-gzip server decoded a different response")
	}
}

// countingMiddleware records request body sizes by content coding
// before handing the request to the XRPC server.
func countingMiddleware(next http.Handler, raw, gz *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if r.Header.Get("Content-Encoding") == "gzip" {
			gz.Add(int64(len(body)))
		} else {
			raw.Add(int64(len(body)))
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		next.ServeHTTP(w, r)
	})
}

func TestHTTPTransportBadDest(t *testing.T) {
	cl := New(NewHTTPTransport())
	_, err := cl.CallBulk("xrpc://127.0.0.1:1", &BulkRequest{ // closed port
		ModuleURI: "m", Func: "f", Arity: 0, Calls: [][]xdm.Sequence{{}},
	})
	if err == nil {
		t.Error("expected connection error")
	}
}

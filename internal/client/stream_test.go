package client

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xrpc/internal/netsim"
	"xrpc/internal/soap"
	"xrpc/internal/xdm"
)

var _ netsim.StreamTransport = (*HTTPTransport)(nil)

// bufferedOnly hides SendStream, forcing the fallback path.
type bufferedOnly struct{ t netsim.Transport }

func (b bufferedOnly) Send(dest, path string, body []byte) ([]byte, error) {
	return b.t.Send(dest, path, body)
}

// collectStreamed walks a StreamedResponse to completion, returning one
// sequence per call.
func collectStreamed(t *testing.T, sr *StreamedResponse) []xdm.Sequence {
	t.Helper()
	var out []xdm.Sequence
	for {
		ok, err := sr.NextSequence()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		var seq xdm.Sequence
		for {
			it, err := sr.NextItem()
			if err != nil {
				t.Fatal(err)
			}
			if it == nil {
				break
			}
			seq = append(seq, it)
		}
		out = append(out, seq)
	}
	if _, err := sr.Finish(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSendStreamedMatchesSendEncoded pins the streamed send against the
// buffered reference: same request bytes, same results, over both a
// stream-capable transport and a buffered-only one, with and without a
// prefetch window.
func TestSendStreamedMatchesSendEncoded(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	net.Register("xrpc://y", newServer(t))
	br := &BulkRequest{
		ModuleURI: "films", AtHint: "http://x.example.org/film.xq",
		Func: "filmsByActor", Arity: 1,
		Calls: [][]xdm.Sequence{
			{{xdm.String("Sean Connery")}},
			{{xdm.String("Julie Andrews")}},
			{{xdm.String("Gerard Depardieu")}},
		},
	}
	ref := New(net)
	enc := ref.EncodeBulk(br)
	defer enc.Release()
	want, err := ref.SendEncoded("xrpc://y", enc.Bytes(), len(br.Calls))
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name   string
		tr     netsim.Transport
		window int
	}{
		{"streaming transport", net, 0},
		{"streaming transport with prefetch", net, 64 << 10},
		{"buffered-only transport", bufferedOnly{net}, 0},
	} {
		cl := New(tc.tr)
		sr, err := cl.SendStreamed("xrpc://y", enc.Bytes(), len(br.Calls), tc.window)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if sr.Module() != "films" || sr.Method() != "filmsByActor" {
			t.Fatalf("%s: header = %s/%s", tc.name, sr.Module(), sr.Method())
		}
		got := collectStreamed(t, sr)
		assertSameResults(t, tc.name, got, want)
		if cl.Requests.Load() != 1 || cl.Sent.Load() != int64(len(enc.Bytes())) {
			t.Errorf("%s: stats = %d requests / %d sent", tc.name, cl.Requests.Load(), cl.Sent.Load())
		}
		if cl.Received.Load() == 0 {
			t.Errorf("%s: received bytes not counted", tc.name)
		}
		peers := cl.Peers()
		if len(peers) != 1 || peers[0] != "xrpc://y" {
			t.Errorf("%s: peers = %v", tc.name, peers)
		}
	}
}

// assertSameResults compares result sets by their canonical SOAP
// encoding, the same oracle the soap differential tests use.
func assertSameResults(t *testing.T, name string, got, want []xdm.Sequence) {
	t.Helper()
	g := soap.EncodeResponse(&soap.Response{Module: "m", Method: "f", Results: got})
	w := soap.EncodeResponse(&soap.Response{Module: "m", Method: "f", Results: want})
	if string(g) != string(w) {
		t.Fatalf("%s: streamed results differ from buffered\nstreamed: %s\nbuffered: %s", name, g, w)
	}
}

func TestSendStreamedResultCountMismatch(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	net.Register("xrpc://y", netsim.HandlerFunc(func(_ string, _ []byte) ([]byte, error) {
		return soap.EncodeResponse(&soap.Response{
			Module: "m", Method: "f",
			Results: []xdm.Sequence{{xdm.Integer(1)}},
		}), nil
	}))
	sr, err := New(net).SendStreamed("xrpc://y", []byte("<req/>"), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for {
		ok, err := sr.NextSequence()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if _, err := sr.Finish(); err == nil || !strings.Contains(err.Error(), "1 results for 2 calls") {
		t.Fatalf("Finish err = %v, want result-count mismatch", err)
	}
}

func TestSendStreamedFault(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	net.Register("xrpc://y", netsim.HandlerFunc(func(_ string, _ []byte) ([]byte, error) {
		return soap.EncodeFault(&soap.Fault{Code: "env:Sender", Reason: "no such module"}), nil
	}))
	_, err := New(net).SendStreamed("xrpc://y", []byte("<req/>"), 1, 0)
	var fault *soap.Fault
	if !errors.As(err, &fault) || fault.Reason != "no such module" {
		t.Fatalf("err = %v, want the peer's fault", err)
	}
	if Retriable(err) {
		t.Error("a SOAP fault must not be classified retriable")
	}
}

// TestSendStreamedDeliversBeforeHandlerFinishes is the point of the
// streamed path: the first result is decodable while the peer is still
// producing later ones.
func TestSendStreamedDeliversBeforeHandlerFinishes(t *testing.T) {
	release := make(chan struct{})
	handlerDone := make(chan struct{})
	net := netsim.NewNetwork(0, 0)
	net.Register("xrpc://y", netsim.StreamHandlerFunc(func(_ string, _ []byte) (io.ReadCloser, error) {
		pr, pw := io.Pipe()
		go func() {
			defer close(handlerDone)
			enc := soap.NewStreamEncoder(pw, 1) // flush every write
			enc.BeginResponse("m", "f")
			enc.BeginSequence()
			enc.EncodeItem(xdm.String("first"))
			enc.EndSequence()
			enc.Flush()
			<-release // second result held back until the test saw the first
			enc.BeginSequence()
			enc.EncodeItem(xdm.String("second"))
			enc.EndSequence()
			enc.EndResponse(nil)
			enc.Flush()
			enc.Release()
			pw.Close()
		}()
		return pr, nil
	}))

	sr, err := New(net).SendStreamed("xrpc://y", []byte("<req/>"), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := sr.NextSequence(); !ok || err != nil {
		t.Fatalf("NextSequence = %v, %v", ok, err)
	}
	it, err := sr.NextItem()
	if err != nil {
		t.Fatal(err)
	}
	if got := it.(xdm.String); got != "first" {
		t.Fatalf("first item = %q", got)
	}
	select {
	case <-handlerDone:
		t.Fatal("handler finished before the first item was consumed: response was buffered, not streamed")
	default:
	}
	close(release)
	if it, err := sr.NextItem(); it != nil || err != nil {
		t.Fatalf("end of first sequence = %v, %v", it, err)
	}
	if ok, _ := sr.NextSequence(); !ok {
		t.Fatal("second sequence missing")
	}
	if it, _ := sr.NextItem(); it.(xdm.String) != "second" {
		t.Fatalf("second item = %v", it)
	}
	if _, err := sr.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamedResponseCloseReleasesProducer: abandoning a stream
// mid-response must unblock and terminate the producing handler rather
// than leave it wedged on a pipe nobody reads.
func TestStreamedResponseCloseReleasesProducer(t *testing.T) {
	writerErr := make(chan error, 1)
	net := netsim.NewNetwork(0, 0)
	net.Register("xrpc://y", netsim.StreamHandlerFunc(func(_ string, _ []byte) (io.ReadCloser, error) {
		pr, pw := io.Pipe()
		go func() {
			enc := soap.NewStreamEncoder(pw, 1)
			enc.BeginResponse("m", "f")
			for i := 0; enc.Err() == nil && i < 1<<20; i++ {
				enc.BeginSequence()
				enc.EncodeItem(xdm.String(fmt.Sprintf("row %d of a very long response", i)))
				enc.EndSequence()
			}
			writerErr <- enc.Err()
			enc.Release()
			pw.Close()
		}()
		return pr, nil
	}))
	sr, err := New(net).SendStreamed("xrpc://y", []byte("<req/>"), 1, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := sr.NextSequence(); !ok || err != nil {
		t.Fatalf("NextSequence = %v, %v", ok, err)
	}
	sr.Close()
	select {
	case err := <-writerErr:
		if err == nil {
			t.Fatal("producer ran to completion against a closed stream")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("producer still wedged 5s after the stream was abandoned")
	}
}

// TestHTTPTransportIdleDeadlineAborts: a peer that goes silent
// mid-body trips the per-read idle deadline.
func TestHTTPTransportIdleDeadlineAborts(t *testing.T) {
	release := make(chan struct{})
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(strings.Repeat("x", 4096)))
		w.(http.Flusher).Flush()
		<-release // stall mid-body
	}))
	defer hs.Close()
	defer close(release) // unblock the handler before hs.Close waits on it

	tr := NewHTTPTransportTimeout(100 * time.Millisecond)
	rc, err := tr.SendStream(hs.URL, "/xrpc", []byte("<req/>"))
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	_, err = io.ReadAll(rc)
	if err == nil {
		t.Fatal("expected the stalled response to abort")
	}
	if !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("err = %v, want an idle-deadline error", err)
	}
}

// TestHTTPTransportSlowButFlowingResponseSurvives pins the timeout
// semantics this package moved to: a response that takes longer than
// the timeout end-to-end but never stalls between bytes completes. The
// old whole-request http.Client.Timeout killed exactly this case.
func TestHTTPTransportSlowButFlowingResponseSurvives(t *testing.T) {
	const chunks = 6
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f := w.(http.Flusher)
		for i := 0; i < chunks; i++ {
			w.Write([]byte("chunk;"))
			f.Flush()
			time.Sleep(50 * time.Millisecond) // flowing: well under the idle deadline
		}
	}))
	defer hs.Close()

	// total transfer ~300ms, deadline 150ms: a whole-request timeout fails
	tr := NewHTTPTransportTimeout(150 * time.Millisecond)
	out, err := tr.Send(hs.URL, "/xrpc", []byte("<req/>"))
	if err != nil {
		t.Fatalf("flowing response aborted: %v", err)
	}
	if got := strings.Count(string(out), "chunk;"); got != chunks {
		t.Fatalf("received %d chunks, want %d", got, chunks)
	}
}

// Package client implements the XRPC message sender API of §3: it turns
// function applications into SOAP XRPC request messages, posts them to
// destination peers, and shreds response messages back into XDM
// sequences. It supports single calls (one-at-a-time RPC, used by the
// interpreter), Bulk RPC (used by the loop-lifting engine), parallel
// multi-destination dispatch (§3.2 "Parallel & Out-Of-Order"), and the
// getDocument system call used for data-shipping queries.
package client

import (
	"fmt"
	"sync"
	"sync/atomic"

	"xrpc/internal/interp"
	"xrpc/internal/netsim"
	"xrpc/internal/obs"
	"xrpc/internal/soap"
	"xrpc/internal/xdm"
)

// XRPCPath is the HTTP path XRPC requests are posted to.
const XRPCPath = "/xrpc"

// SystemModule is the reserved module URI for XRPC-internal calls (the
// document fetch behind data shipping).
const SystemModule = "urn:xrpc-system"

// Client sends XRPC requests on behalf of one query. It implements
// interp.RPCCaller. A Client records every peer it contacts so the
// originator can register all participants with the WS-Coordination
// service (§2.3); peers piggybacked on responses are folded in too.
type Client struct {
	Transport netsim.Transport
	// QueryID, when set, is attached to every request (repeatable-read
	// isolation). Nil means isolation level "none".
	QueryID *soap.QueryID
	// Retry, when set, re-sends buffered requests in place on transient
	// transport failures (see RetryPolicy). Nil means a single attempt —
	// failover, if any, is the caller's concern.
	Retry *RetryPolicy

	mu    sync.Mutex
	peers map[string]bool

	// Stats for experiments (atomic: CallParallel dispatches to multiple
	// destinations concurrently, and experiments may read while a
	// dispatch is in flight).
	Requests atomic.Int64
	Sent     atomic.Int64
	Received atomic.Int64
	// Encodes counts request-body encodings — with encode-once
	// scatter-many, strictly fewer than Requests when one body is reused
	// across shards and replica failover attempts.
	Encodes atomic.Int64
	// Retries counts in-place re-sends under the Retry policy.
	Retries atomic.Int64
	// WindowStalls counts producer stalls of streamed responses: the
	// per-shard prefetch window filled up and the socket reader had to
	// wait for the consumer. Nil (the default) disables counting.
	WindowStalls *obs.Counter
}

// New creates a client over a transport.
func New(t netsim.Transport) *Client {
	return &Client{Transport: t, peers: map[string]bool{}}
}

// RegisterMetrics promotes the client's ad-hoc stat counters onto a
// registry — the /metrics view of the same atomics experiments read
// in-process, so there is one source of truth. It also attaches the
// window-stall counter used by streamed responses.
func (c *Client) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	reg.CounterFunc("xrpc_client_requests_total",
		"XRPC requests sent (including replica failover attempts).",
		c.Requests.Load, labels...)
	reg.CounterFunc("xrpc_client_sent_bytes_total",
		"Request body bytes sent.", c.Sent.Load, labels...)
	reg.CounterFunc("xrpc_client_received_bytes_total",
		"Response body bytes received.", c.Received.Load, labels...)
	reg.CounterFunc("xrpc_client_encodes_total",
		"Request bodies encoded (fewer than requests under encode-once scatter-many).",
		c.Encodes.Load, labels...)
	reg.CounterFunc("xrpc_client_retries_total",
		"In-place re-sends of transiently failed requests.",
		c.Retries.Load, labels...)
	c.WindowStalls = reg.NewCounter("xrpc_client_window_stalls_total",
		"Streamed-response producer stalls: the prefetch window was full.", labels...)
}

// Peers returns all destination peers this client has contacted,
// including peers piggybacked by nested calls.
func (c *Client) Peers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.peers))
	for p := range c.peers {
		out = append(out, p)
	}
	return out
}

func (c *Client) notePeers(dest string, piggyback []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.peers[dest] = true
	for _, p := range piggyback {
		c.peers[p] = true
	}
}

// Call implements interp.RPCCaller: a single (non-bulk) XRPC call.
func (c *Client) Call(dest string, req *interp.CallRequest) (xdm.Sequence, error) {
	results, err := c.CallBulk(dest, &BulkRequest{
		ModuleURI:  req.ModuleURI,
		AtHint:     req.AtHint,
		Func:       req.Func,
		Arity:      req.Arity,
		Updating:   req.Updating,
		ByFragment: req.ByFragment,
		Calls:      [][]xdm.Sequence{req.Args},
	})
	if err != nil {
		return nil, err
	}
	if len(results) != 1 {
		return nil, fmt.Errorf("xrpc: expected 1 result sequence, got %d", len(results))
	}
	return results[0], nil
}

// BulkRequest is a set of calls of one function at one destination.
type BulkRequest struct {
	ModuleURI string
	AtHint    string
	Func      string
	Arity     int
	Updating  bool
	Calls     [][]xdm.Sequence
	// ByFragment enables the call-by-fragment extension (descendant
	// node parameters travel as xrpc:nodeid references).
	ByFragment bool
	// SeqNrs tags calls with their original query positions for the
	// deterministic-update-order extension.
	SeqNrs []int64
	// TraceID, when set, rides the envelope header so the destination
	// peer's logs and metrics correlate with the originating request.
	TraceID string
}

// CallBulk performs a Bulk RPC: all calls in a single request/response
// network interaction, returning one result sequence per call. The
// request body is built in a pooled encoder and released after the send
// — zero copies of the request on the in-process transport.
func (c *Client) CallBulk(dest string, br *BulkRequest) ([]xdm.Sequence, error) {
	enc := c.EncodeBulk(br)
	defer enc.Release()
	return c.SendEncoded(dest, enc.Bytes(), len(br.Calls))
}

// EncodeBulk renders the SOAP request body for br once, into a pooled
// encoder the caller must Release. The body is destination-independent,
// so scatter-gather coordinators encode once and send the same bytes to
// every shard and replica (encode-once, scatter-many).
func (c *Client) EncodeBulk(br *BulkRequest) *soap.Encoder {
	req := &soap.Request{
		Module:     br.ModuleURI,
		Method:     br.Func,
		Arity:      br.Arity,
		Location:   br.AtHint,
		Updating:   br.Updating,
		QueryID:    c.QueryID,
		TraceID:    br.TraceID,
		Calls:      br.Calls,
		ByFragment: br.ByFragment,
		SeqNrs:     br.SeqNrs,
	}
	enc := soap.NewEncoder()
	enc.EncodeRequest(req)
	c.Encodes.Add(1)
	return enc
}

// SendEncoded posts a pre-encoded request body to dest and decodes the
// response, expecting one result sequence per call. Safe to call
// concurrently with the same body: the bytes are only read. With a
// Retry policy set, transient transport failures are re-sent in place
// with capped exponential backoff before the error surfaces.
func (c *Client) SendEncoded(dest string, body []byte, calls int) ([]xdm.Sequence, error) {
	respBody, err := c.sendRetried(dest, body)
	if err != nil {
		return nil, fmt.Errorf("xrpc: send to %s: %w", dest, err)
	}
	resp, err := soap.DecodeResponse(respBody)
	if err != nil {
		return nil, err // includes *soap.Fault
	}
	if len(resp.Results) != calls {
		return nil, fmt.Errorf("xrpc: %d results for %d calls", len(resp.Results), calls)
	}
	c.notePeers(dest, resp.Peers)
	return resp.Results, nil
}

// sendRetried is one buffered transport exchange under the retry
// policy. Streamed sends (SendStreamed) do not retry here: a stream
// that failed mid-body is not safely re-sendable without consumer
// cooperation, and the scatter path has replica failover instead.
func (c *Client) sendRetried(dest string, body []byte) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		respBody, err := c.Transport.Send(dest, XRPCPath, body)
		c.Requests.Add(1)
		c.Sent.Add(int64(len(body)))
		c.Received.Add(int64(len(respBody)))
		if err == nil {
			return respBody, nil
		}
		if c.Retry == nil || attempt >= c.Retry.Max || !Retriable(err) {
			return nil, err
		}
		c.Retries.Add(1)
		c.Retry.backoff(attempt)
	}
}

// CallOneAtATime performs the same set of calls as CallBulk but with one
// synchronous request per call — the comparison mechanism from Table 2 of
// the paper.
func (c *Client) CallOneAtATime(dest string, br *BulkRequest) ([]xdm.Sequence, error) {
	out := make([]xdm.Sequence, 0, len(br.Calls))
	for ci, call := range br.Calls {
		single := &BulkRequest{
			ModuleURI:  br.ModuleURI,
			AtHint:     br.AtHint,
			Func:       br.Func,
			Arity:      br.Arity,
			Updating:   br.Updating,
			ByFragment: br.ByFragment,
			Calls:      [][]xdm.Sequence{call},
			TraceID:    br.TraceID,
		}
		if br.SeqNrs != nil {
			single.SeqNrs = []int64{br.SeqNrs[ci]}
		}
		res, err := c.CallBulk(dest, single)
		if err != nil {
			return nil, err
		}
		out = append(out, res[0])
	}
	return out, nil
}

// BulkByDest is one destination's share of a multi-destination bulk
// dispatch, with the original call indexes for result re-mapping
// (the map_p tables of Figure 1).
type BulkByDest struct {
	Dest    string
	Request *BulkRequest
	// OrigIdx[i] is the position in the overall call list that this
	// destination's call i came from.
	OrigIdx []int
}

// CallParallel dispatches bulk requests to multiple destinations in
// parallel and re-unites results in original call order (Figure 1:
// parallel Bulk RPC with mapping tables). Results[origIdx] receives the
// corresponding sequence.
func (c *Client) CallParallel(parts []*BulkByDest, total int) ([]xdm.Sequence, error) {
	return DispatchParallel(c.CallBulk, parts, total)
}

// DispatchParallel fans parts out concurrently through callBulk and
// re-unites results in original call order; when several parts fail,
// the error of the lowest part index is returned, deterministically.
// Shared by Client.CallParallel and the cluster coordinator (whose
// callBulk may itself scatter a part across shards).
func DispatchParallel(callBulk func(dest string, br *BulkRequest) ([]xdm.Sequence, error),
	parts []*BulkByDest, total int) ([]xdm.Sequence, error) {

	results := make([]xdm.Sequence, total)
	var wg sync.WaitGroup
	errs := make([]error, len(parts))
	for i, part := range parts {
		wg.Add(1)
		go func(i int, part *BulkByDest) {
			defer wg.Done()
			res, err := callBulk(part.Dest, part.Request)
			if err != nil {
				errs[i] = err
				return
			}
			for j, seq := range res {
				results[part.OrigIdx[j]] = seq
			}
		}(i, part)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// FetchDocument retrieves a remote document by path from dest using the
// reserved getDocument system call — the mechanism behind data-shipping
// execution of fn:doc("xrpc://peer/path").
func (c *Client) FetchDocument(dest, path string) (*xdm.Node, error) {
	res, err := c.CallBulk(dest, &BulkRequest{
		ModuleURI: SystemModule,
		Func:      "getDocument",
		Arity:     1,
		Calls:     [][]xdm.Sequence{{{xdm.String(path)}}},
	})
	if err != nil {
		return nil, err
	}
	if len(res[0]) != 1 {
		return nil, fmt.Errorf("xrpc: getDocument(%q) returned %d items", path, len(res[0]))
	}
	n, ok := res[0][0].(*xdm.Node)
	if !ok {
		return nil, fmt.Errorf("xrpc: getDocument(%q) returned a non-node", path)
	}
	return n, nil
}

// DocResolver is a document resolver that sends fn:doc calls with
// xrpc:// URIs to the remote peer (data shipping) and delegates all other
// URIs to a local resolver. Fetched documents are cached: fn:doc is
// stable within a query (the same URI must yield the same node), and
// without the cache a doc() under a for-loop would re-ship the document
// once per iteration.
type DocResolver struct {
	Local  interp.DocResolver
	Client *Client

	mu      sync.Mutex
	fetched map[string]*xdm.Node
}

// Doc implements interp.DocResolver.
func (r *DocResolver) Doc(uri string) (*xdm.Node, error) {
	host, path := interp.SplitXrpcURL(uri)
	if host == "localhost" {
		if r.Local == nil {
			return nil, xdm.Errorf("FODC0002", "document %q not found (no local store)", uri)
		}
		return r.Local.Doc(uri)
	}
	r.mu.Lock()
	if doc, ok := r.fetched[uri]; ok {
		r.mu.Unlock()
		return doc, nil
	}
	r.mu.Unlock()
	doc, err := r.Client.FetchDocument(host, path)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.fetched == nil {
		r.fetched = map[string]*xdm.Node{}
	}
	r.fetched[uri] = doc
	r.mu.Unlock()
	return doc, nil
}

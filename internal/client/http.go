package client

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"xrpc/internal/soap"
)

// DefaultHTTPTimeout bounds one XRPC request/response exchange.
const DefaultHTTPTimeout = 30 * time.Second

// HTTPTransport sends XRPC messages over real HTTP (SOAP over HTTP
// POST, as the paper's protocol specifies). Destination URIs use the
// xrpc:// scheme and are rewritten to http://host[:port]; a destination
// that already has an http:// scheme is used as-is.
type HTTPTransport struct {
	// Client is the underlying HTTP client. NewHTTPTransport installs a
	// tuned, shared http.Transport; a nil Client falls back to one
	// lazily via the package-level default.
	Client *http.Client
	// Gzip enables gzip content-coding (off by default): request bodies
	// are compressed with Content-Encoding: gzip, and Accept-Encoding:
	// gzip advertises that the response may be compressed too. The
	// decoded response is identical either way; servers that do not
	// understand gzip requests will fault, so enable it only against
	// peers that negotiate (server.Server always accepts gzip requests).
	Gzip bool
}

// sharedTransport is the fallback connection pool for transports built
// without NewHTTPTransport, so even zero-value HTTPTransports reuse
// connections instead of building a client per call path.
var sharedTransport = newPooledTransport()

// newPooledTransport returns an http.Transport tuned for scatter-gather
// fan-out: keep-alives on, and enough idle connections per host that a
// coordinator repeatedly hitting the same N shard peers never
// re-handshakes in steady state.
func newPooledTransport() *http.Transport {
	return &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     90 * time.Second,
	}
}

// NewHTTPTransport creates a transport with the default timeout.
func NewHTTPTransport() *HTTPTransport {
	return NewHTTPTransportTimeout(DefaultHTTPTimeout)
}

// NewHTTPTransportTimeout creates a transport whose requests time out
// after the given duration (0 = no timeout). Each transport owns one
// pooled http.Transport, reused across all sends.
func NewHTTPTransportTimeout(timeout time.Duration) *HTTPTransport {
	return &HTTPTransport{Client: &http.Client{
		Timeout:   timeout,
		Transport: newPooledTransport(),
	}}
}

// HTTPError reports a non-2xx HTTP response. It is a transport-level
// failure (the peer's XRPC endpoint did not answer: XRPC errors travel
// as SOAP faults inside 200 responses), so cluster coordinators treat
// it as grounds for replica failover.
type HTTPError struct {
	StatusCode int
	Status     string
	// Body is the response body, truncated to a diagnostic-sized
	// prefix.
	Body string
}

// Error implements error.
func (e *HTTPError) Error() string {
	if e.Body == "" {
		return fmt.Sprintf("xrpc http: %s", e.Status)
	}
	return fmt.Sprintf("xrpc http: %s: %s", e.Status, e.Body)
}

// Retriable classifies the status: 5xx (and the two transient 4xx codes,
// request-timeout and too-many-requests) mean the peer or an
// intermediary failed and another replica may well succeed; any other
// 4xx means the peer deterministically rejected the request, so
// retrying it — at this replica or the next — can only repeat the
// rejection.
func (e *HTTPError) Retriable() bool {
	switch e.StatusCode {
	case http.StatusRequestTimeout, http.StatusTooManyRequests:
		return true
	}
	return e.StatusCode >= 500
}

// Retriable classifies an error from a send for failover purposes: true
// when retrying against another replica of the same data might succeed
// (connection refused, timeout, 5xx — the peer did not process the
// request), false when the failure is definitive (a SOAP fault or a
// definitive 4xx status — every replica holds the same shard and would
// answer the same way). Unknown error types default to retriable, the
// conservative choice for availability.
func Retriable(err error) bool {
	var fault *soap.Fault
	if errors.As(err, &fault) {
		return false
	}
	var he *HTTPError
	if errors.As(err, &he) {
		return he.Retriable()
	}
	return true
}

// errBodyLimit bounds how much of a failed response body travels in an
// HTTPError.
const errBodyLimit = 512

// Send implements netsim.Transport over HTTP. Non-2xx responses are
// errors carrying the status and a truncated body — never a success
// payload.
func (t *HTTPTransport) Send(dest, path string, body []byte) ([]byte, error) {
	url := dest
	if strings.HasPrefix(url, "xrpc://") {
		url = "http://" + strings.TrimPrefix(url, "xrpc://")
	}
	if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
		url = "http://" + url
	}
	url = strings.TrimRight(url, "/") + path
	cl := t.Client
	if cl == nil {
		cl = &http.Client{Timeout: DefaultHTTPTimeout, Transport: sharedTransport}
	}
	sendBody := body
	if t.Gzip {
		var zbuf bytes.Buffer
		zw := gzip.NewWriter(&zbuf)
		zw.Write(body)
		if err := zw.Close(); err != nil {
			return nil, fmt.Errorf("xrpc http: gzip request: %w", err)
		}
		sendBody = zbuf.Bytes()
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(sendBody))
	if err != nil {
		return nil, fmt.Errorf("xrpc http: %w", err)
	}
	req.Header.Set("Content-Type", "application/soap+xml; charset=utf-8")
	if t.Gzip {
		req.Header.Set("Content-Encoding", "gzip")
		// setting Accept-Encoding ourselves disables the transport's
		// transparent decompression, so a gzip response is handled
		// explicitly below
		req.Header.Set("Accept-Encoding", "gzip")
	}
	resp, err := cl.Do(req)
	if err != nil {
		return nil, fmt.Errorf("xrpc http: %w", err)
	}
	defer resp.Body.Close()
	respBody := resp.Body
	if resp.Header.Get("Content-Encoding") == "gzip" {
		gz, err := gzip.NewReader(resp.Body)
		if err != nil {
			return nil, fmt.Errorf("xrpc http: gzip response: %w", err)
		}
		defer gz.Close()
		respBody = gz
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		trunc, _ := io.ReadAll(io.LimitReader(respBody, errBodyLimit))
		// drain the remainder so the keep-alive connection returns to
		// the pool instead of being torn down
		io.Copy(io.Discard, resp.Body)
		return nil, &HTTPError{
			StatusCode: resp.StatusCode,
			Status:     resp.Status,
			Body:       strings.TrimSpace(string(trunc)),
		}
	}
	out, err := io.ReadAll(respBody)
	if err != nil {
		return nil, fmt.Errorf("xrpc http: reading response: %w", err)
	}
	return out, nil
}

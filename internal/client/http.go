package client

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// DefaultHTTPTimeout bounds one XRPC request/response exchange.
const DefaultHTTPTimeout = 30 * time.Second

// HTTPTransport sends XRPC messages over real HTTP (SOAP over HTTP
// POST, as the paper's protocol specifies). Destination URIs use the
// xrpc:// scheme and are rewritten to http://host[:port]; a destination
// that already has an http:// scheme is used as-is.
type HTTPTransport struct {
	// Client is the underlying HTTP client. NewHTTPTransport installs a
	// tuned, shared http.Transport; a nil Client falls back to one
	// lazily via the package-level default.
	Client *http.Client
}

// sharedTransport is the fallback connection pool for transports built
// without NewHTTPTransport, so even zero-value HTTPTransports reuse
// connections instead of building a client per call path.
var sharedTransport = newPooledTransport()

// newPooledTransport returns an http.Transport tuned for scatter-gather
// fan-out: keep-alives on, and enough idle connections per host that a
// coordinator repeatedly hitting the same N shard peers never
// re-handshakes in steady state.
func newPooledTransport() *http.Transport {
	return &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     90 * time.Second,
	}
}

// NewHTTPTransport creates a transport with the default timeout.
func NewHTTPTransport() *HTTPTransport {
	return NewHTTPTransportTimeout(DefaultHTTPTimeout)
}

// NewHTTPTransportTimeout creates a transport whose requests time out
// after the given duration (0 = no timeout). Each transport owns one
// pooled http.Transport, reused across all sends.
func NewHTTPTransportTimeout(timeout time.Duration) *HTTPTransport {
	return &HTTPTransport{Client: &http.Client{
		Timeout:   timeout,
		Transport: newPooledTransport(),
	}}
}

// HTTPError reports a non-2xx HTTP response. It is a transport-level
// failure (the peer's XRPC endpoint did not answer: XRPC errors travel
// as SOAP faults inside 200 responses), so cluster coordinators treat
// it as grounds for replica failover.
type HTTPError struct {
	StatusCode int
	Status     string
	// Body is the response body, truncated to a diagnostic-sized
	// prefix.
	Body string
}

// Error implements error.
func (e *HTTPError) Error() string {
	if e.Body == "" {
		return fmt.Sprintf("xrpc http: %s", e.Status)
	}
	return fmt.Sprintf("xrpc http: %s: %s", e.Status, e.Body)
}

// errBodyLimit bounds how much of a failed response body travels in an
// HTTPError.
const errBodyLimit = 512

// Send implements netsim.Transport over HTTP. Non-2xx responses are
// errors carrying the status and a truncated body — never a success
// payload.
func (t *HTTPTransport) Send(dest, path string, body []byte) ([]byte, error) {
	url := dest
	if strings.HasPrefix(url, "xrpc://") {
		url = "http://" + strings.TrimPrefix(url, "xrpc://")
	}
	if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
		url = "http://" + url
	}
	url = strings.TrimRight(url, "/") + path
	cl := t.Client
	if cl == nil {
		cl = &http.Client{Timeout: DefaultHTTPTimeout, Transport: sharedTransport}
	}
	resp, err := cl.Post(url, "application/soap+xml; charset=utf-8", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("xrpc http: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		trunc, _ := io.ReadAll(io.LimitReader(resp.Body, errBodyLimit))
		// drain the remainder so the keep-alive connection returns to
		// the pool instead of being torn down
		io.Copy(io.Discard, resp.Body)
		return nil, &HTTPError{
			StatusCode: resp.StatusCode,
			Status:     resp.Status,
			Body:       strings.TrimSpace(string(trunc)),
		}
	}
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("xrpc http: reading response: %w", err)
	}
	return out, nil
}

package client

import (
	"bytes"
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"xrpc/internal/obs"
	"xrpc/internal/soap"
)

// DefaultHTTPTimeout bounds the phases of one XRPC exchange: connection
// establishment, waiting for response headers, and each read of the
// response body. It is deliberately NOT a whole-request deadline — a
// streamed bulk response is allowed to take arbitrarily long end to end
// as long as bytes keep flowing.
const DefaultHTTPTimeout = 30 * time.Second

// HTTPTransport sends XRPC messages over real HTTP (SOAP over HTTP
// POST, as the paper's protocol specifies). Destination URIs use the
// xrpc:// scheme and are rewritten to http://host[:port]; a destination
// that already has an http:// scheme is used as-is.
type HTTPTransport struct {
	// Client is the underlying HTTP client. NewHTTPTransport installs a
	// tuned, shared http.Transport; a nil Client falls back to one
	// lazily via the package-level default. The client must not set
	// http.Client.Timeout: that deadline covers the whole exchange
	// including body streaming, which would cut long streamed responses
	// off mid-flight. Connect and header deadlines belong on the
	// http.Transport; body progress is bounded by IdleTimeout.
	Client *http.Client
	// IdleTimeout bounds each individual Read of the response body: the
	// request is aborted if the peer stalls for longer than this between
	// bytes. Zero means reads are unbounded (for a zero-value transport
	// with no Client, DefaultHTTPTimeout applies).
	IdleTimeout time.Duration
	// Gzip enables gzip content-coding (off by default): request bodies
	// are compressed with Content-Encoding: gzip, and Accept-Encoding:
	// gzip advertises that the response may be compressed too. The
	// decoded response is identical either way; servers that do not
	// understand gzip requests will fault, so enable it only against
	// peers that negotiate (server.Server always accepts gzip requests).
	Gzip bool
	// Metrics, when set, records per-phase timeout causes, HTTP errors
	// and the gzip compression ratio. Nil disables recording.
	Metrics *TransportMetrics
}

// TransportMetrics is the HTTP transport's registry view: where time
// went when a send failed (connect/header vs. mid-body stall), and what
// gzip buys (raw vs. compressed request bytes — the ratio is the
// quotient of the two counters).
type TransportMetrics struct {
	Timeouts   *obs.CounterVec // phase: "connect_or_header" | "idle_read"
	HTTPErrors *obs.CounterVec // class: "4xx" | "5xx"
	GzipRaw    *obs.Counter    // request bytes before compression
	GzipOut    *obs.Counter    // request bytes actually sent
}

// NewTransportMetrics registers the transport instrument family.
func NewTransportMetrics(reg *obs.Registry, labels ...obs.Label) *TransportMetrics {
	if reg == nil {
		return nil
	}
	return &TransportMetrics{
		Timeouts: reg.NewCounterVec("xrpc_http_timeouts_total",
			"Sends aborted by a deadline, by phase.", "phase", labels...),
		HTTPErrors: reg.NewCounterVec("xrpc_http_errors_total",
			"Non-2xx HTTP responses, by class.", "class", labels...),
		GzipRaw: reg.NewCounter("xrpc_http_gzip_raw_bytes_total",
			"Request bytes before gzip compression.", labels...),
		GzipOut: reg.NewCounter("xrpc_http_gzip_sent_bytes_total",
			"Request bytes on the wire after gzip compression.", labels...),
	}
}

// sharedTransport is the fallback connection pool for transports built
// without NewHTTPTransport, so even zero-value HTTPTransports reuse
// connections instead of building a client per call path.
var sharedTransport = newPooledTransport(DefaultHTTPTimeout)

// newPooledTransport returns an http.Transport tuned for scatter-gather
// fan-out: keep-alives on, and enough idle connections per host that a
// coordinator repeatedly hitting the same N shard peers never
// re-handshakes in steady state. The timeout bounds connection
// establishment and the wait for response headers (0 = unbounded);
// response-body reads are bounded separately, per read, by
// HTTPTransport.IdleTimeout.
func newPooledTransport(timeout time.Duration) *http.Transport {
	return &http.Transport{
		DialContext:           (&net.Dialer{Timeout: timeout}).DialContext,
		ResponseHeaderTimeout: timeout,
		MaxIdleConns:          256,
		MaxIdleConnsPerHost:   64,
		IdleConnTimeout:       90 * time.Second,
	}
}

// NewHTTPTransport creates a transport with the default timeout.
func NewHTTPTransport() *HTTPTransport {
	return NewHTTPTransportTimeout(DefaultHTTPTimeout)
}

// NewHTTPTransportTimeout creates a transport whose per-phase deadlines
// — connect, response headers, and each response-body read — are the
// given duration (0 = no deadlines). Unlike a whole-request timeout,
// this never aborts a response that is still making progress, however
// large; it aborts one that has stalled. Each transport owns one pooled
// http.Transport, reused across all sends.
func NewHTTPTransportTimeout(timeout time.Duration) *HTTPTransport {
	return &HTTPTransport{
		Client:      &http.Client{Transport: newPooledTransport(timeout)},
		IdleTimeout: timeout,
	}
}

// HTTPError reports a non-2xx HTTP response. It is a transport-level
// failure (the peer's XRPC endpoint did not answer: XRPC errors travel
// as SOAP faults inside 200 responses), so cluster coordinators treat
// it as grounds for replica failover.
type HTTPError struct {
	StatusCode int
	Status     string
	// Body is the response body, truncated to a diagnostic-sized
	// prefix.
	Body string
}

// Error implements error.
func (e *HTTPError) Error() string {
	if e.Body == "" {
		return fmt.Sprintf("xrpc http: %s", e.Status)
	}
	return fmt.Sprintf("xrpc http: %s: %s", e.Status, e.Body)
}

// Retriable classifies the status: 5xx (and the two transient 4xx codes,
// request-timeout and too-many-requests) mean the peer or an
// intermediary failed and another replica may well succeed; any other
// 4xx means the peer deterministically rejected the request, so
// retrying it — at this replica or the next — can only repeat the
// rejection.
func (e *HTTPError) Retriable() bool {
	switch e.StatusCode {
	case http.StatusRequestTimeout, http.StatusTooManyRequests:
		return true
	}
	return e.StatusCode >= 500
}

// Retriable classifies an error from a send for failover purposes: true
// when retrying against another replica of the same data might succeed
// (connection refused, timeout, 5xx — the peer did not process the
// request), false when the failure is definitive (a SOAP fault or a
// definitive 4xx status — every replica holds the same shard and would
// answer the same way). Unknown error types default to retriable, the
// conservative choice for availability.
func Retriable(err error) bool {
	var fault *soap.Fault
	if errors.As(err, &fault) {
		return false
	}
	var he *HTTPError
	if errors.As(err, &he) {
		return he.Retriable()
	}
	return true
}

// errBodyLimit bounds how much of a failed response body travels in an
// HTTPError.
const errBodyLimit = 512

// Send implements netsim.Transport over HTTP: SendStream drained into
// one buffer. Non-2xx responses are errors carrying the status and a
// truncated body — never a success payload.
func (t *HTTPTransport) Send(dest, path string, body []byte) ([]byte, error) {
	rc, err := t.SendStream(dest, path, body)
	if err != nil {
		return nil, err
	}
	out, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		return nil, fmt.Errorf("xrpc http: reading response: %w", err)
	}
	return out, nil
}

// SendStream implements netsim.StreamTransport over HTTP: the response
// body is returned as a stream, decompressed if the peer answered with
// gzip. The caller must Close the reader; reading it to EOF first lets
// the keep-alive connection return to the pool. Each read is bounded by
// IdleTimeout — a stalled peer aborts the request, a slow-but-flowing
// response does not.
func (t *HTTPTransport) SendStream(dest, path string, body []byte) (io.ReadCloser, error) {
	url := dest
	if strings.HasPrefix(url, "xrpc://") {
		url = "http://" + strings.TrimPrefix(url, "xrpc://")
	}
	if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
		url = "http://" + url
	}
	url = strings.TrimRight(url, "/") + path
	cl := t.Client
	idle := t.IdleTimeout
	if cl == nil {
		cl = &http.Client{Transport: sharedTransport}
		if idle == 0 {
			idle = DefaultHTTPTimeout
		}
	}
	sendBody := body
	if t.Gzip {
		var zbuf bytes.Buffer
		zw := gzip.NewWriter(&zbuf)
		zw.Write(body)
		if err := zw.Close(); err != nil {
			return nil, fmt.Errorf("xrpc http: gzip request: %w", err)
		}
		sendBody = zbuf.Bytes()
		if t.Metrics != nil {
			t.Metrics.GzipRaw.Add(int64(len(body)))
			t.Metrics.GzipOut.Add(int64(len(sendBody)))
		}
	}
	// The context exists so the idle watchdog can abort a stalled
	// transfer mid-body; it is released when the stream is closed.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(sendBody))
	if err != nil {
		cancel()
		return nil, fmt.Errorf("xrpc http: %w", err)
	}
	req.Header.Set("Content-Type", "application/soap+xml; charset=utf-8")
	if t.Gzip {
		req.Header.Set("Content-Encoding", "gzip")
		// setting Accept-Encoding ourselves disables the transport's
		// transparent decompression, so a gzip response is handled
		// explicitly below
		req.Header.Set("Accept-Encoding", "gzip")
	}
	resp, err := cl.Do(req)
	if err != nil {
		cancel()
		if t.Metrics != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				t.Metrics.Timeouts.With("connect_or_header").Inc()
			}
		}
		return nil, fmt.Errorf("xrpc http: %w", err)
	}
	respBody := io.ReadCloser(resp.Body)
	if resp.Header.Get("Content-Encoding") == "gzip" {
		gz, err := gzip.NewReader(resp.Body)
		if err != nil {
			resp.Body.Close()
			cancel()
			return nil, fmt.Errorf("xrpc http: gzip response: %w", err)
		}
		respBody = gz
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		trunc, _ := io.ReadAll(io.LimitReader(respBody, errBodyLimit))
		// drain the remainder so the keep-alive connection returns to
		// the pool instead of being torn down
		io.Copy(io.Discard, resp.Body)
		if respBody != resp.Body {
			respBody.Close()
		}
		resp.Body.Close()
		cancel()
		if t.Metrics != nil {
			class := "4xx"
			if resp.StatusCode >= 500 {
				class = "5xx"
			}
			t.Metrics.HTTPErrors.With(class).Inc()
		}
		return nil, &HTTPError{
			StatusCode: resp.StatusCode,
			Status:     resp.Status,
			Body:       strings.TrimSpace(string(trunc)),
		}
	}
	return &streamBody{body: respBody, raw: resp.Body, cancel: cancel, idle: idle, metrics: t.Metrics}, nil
}

// streamBody is an HTTP response body with a per-read idle watchdog:
// the timer is armed only while a Read is in flight, so time the
// consumer spends processing between reads does not count against the
// deadline.
type streamBody struct {
	body     io.ReadCloser // decoded stream (gzip reader or raw body)
	raw      io.ReadCloser // the underlying resp.Body
	cancel   context.CancelFunc
	idle     time.Duration
	timedOut atomic.Bool
	metrics  *TransportMetrics
}

func (b *streamBody) Read(p []byte) (int, error) {
	if b.idle > 0 {
		timer := time.AfterFunc(b.idle, func() {
			b.timedOut.Store(true)
			b.cancel()
		})
		defer timer.Stop()
	}
	n, err := b.body.Read(p)
	if err != nil && err != io.EOF && b.timedOut.Load() {
		if b.metrics != nil {
			b.metrics.Timeouts.With("idle_read").Inc()
		}
		err = fmt.Errorf("xrpc http: response stalled longer than %v: %w", b.idle, err)
	}
	return n, err
}

// Close releases the stream. The body is closed before the context is
// canceled: after a full read to EOF the transport has already handed
// the connection back to the pool, and canceling first would tear it
// down instead.
func (b *streamBody) Close() error {
	err := b.body.Close()
	if b.raw != b.body {
		b.raw.Close()
	}
	b.cancel()
	return err
}

package client

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// HTTPTransport sends XRPC messages over real HTTP (SOAP over HTTP
// POST, as the paper's protocol specifies). Destination URIs use the
// xrpc:// scheme and are rewritten to http://host[:port]; a destination
// that already has an http:// scheme is used as-is.
type HTTPTransport struct {
	// Client is the underlying HTTP client (default: 30 s timeout).
	Client *http.Client
}

// NewHTTPTransport creates a transport with a default client.
func NewHTTPTransport() *HTTPTransport {
	return &HTTPTransport{Client: &http.Client{Timeout: 30 * time.Second}}
}

// Send implements netsim.Transport over HTTP.
func (t *HTTPTransport) Send(dest, path string, body []byte) ([]byte, error) {
	url := dest
	if strings.HasPrefix(url, "xrpc://") {
		url = "http://" + strings.TrimPrefix(url, "xrpc://")
	}
	if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
		url = "http://" + url
	}
	url = strings.TrimRight(url, "/") + path
	cl := t.Client
	if cl == nil {
		cl = &http.Client{Timeout: 30 * time.Second}
	}
	resp, err := cl.Post(url, "application/soap+xml; charset=utf-8", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("xrpc http: %w", err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("xrpc http: reading response: %w", err)
	}
	return out, nil
}

package client

import (
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy retries transient failures of buffered sends in place —
// same destination, same bytes — before the caller's own failover
// machinery (a cluster coordinator walking the replica list) gets the
// error. In-place retry and replica failover are complementary: a
// transient burst at a healthy peer (restart, load spike) is absorbed
// here, while a peer that stays down still fails fast enough for the
// coordinator to route around it. Only errors that Retriable classifies
// as transient are retried; SOAP faults and definitive 4xx statuses
// surface immediately.
//
// Backoff is capped exponential with full jitter: retry k sleeps a
// uniformly random duration in (0, min(Cap, Base<<k)], decorrelating
// clients that failed on the same event.
type RetryPolicy struct {
	// Max is how many re-sends follow the first attempt (0 = no
	// retries).
	Max int
	// Base scales the backoff: retry k's sleep is drawn from
	// (0, min(Cap, Base<<k)]. Zero defaults to 2ms.
	Base time.Duration
	// Cap bounds a single backoff sleep. Zero defaults to 250ms.
	Cap time.Duration
	// Sleep is replaceable in tests; nil means time.Sleep.
	Sleep func(time.Duration)

	mu  sync.Mutex
	rng *rand.Rand
}

// DefaultRetryPolicy absorbs short unavailability bursts (a few ms to
// ~1s total across 4 retries) without masking a persistent outage.
func DefaultRetryPolicy() *RetryPolicy {
	return &RetryPolicy{Max: 4, Base: 2 * time.Millisecond, Cap: 250 * time.Millisecond}
}

// backoff sleeps for retry number k (0-based).
func (p *RetryPolicy) backoff(k int) {
	base, cap := p.Base, p.Cap
	if base <= 0 {
		base = 2 * time.Millisecond
	}
	if cap <= 0 {
		cap = 250 * time.Millisecond
	}
	d := base << uint(k)
	if d <= 0 || d > cap { // d <= 0 catches shift overflow
		d = cap
	}
	p.mu.Lock()
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	d = time.Duration(p.rng.Int63n(int64(d))) + 1
	p.mu.Unlock()
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	sleep(d)
}

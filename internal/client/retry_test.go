package client

import (
	"errors"
	"testing"
	"time"

	"xrpc/internal/interp"
	"xrpc/internal/netsim"
	"xrpc/internal/obs"
	"xrpc/internal/soap"
	"xrpc/internal/xdm"
)

func retryCall(cl *Client) (xdm.Sequence, error) {
	return cl.Call("xrpc://y", &interp.CallRequest{
		ModuleURI: "films", AtHint: "http://x.example.org/film.xq",
		Func: "filmsByActor", Arity: 1,
		Args: []xdm.Sequence{{xdm.String("Sean Connery")}},
	})
}

func TestRetryAbsorbsTransientBurst(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	net.Register("xrpc://y", newServer(t))
	net.FailNext("xrpc://y", 2)

	cl := New(net)
	var slept []time.Duration
	cl.Retry = &RetryPolicy{Max: 3, Base: time.Millisecond, Cap: 8 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) }}
	reg := obs.NewRegistry()
	cl.RegisterMetrics(reg)

	seq, err := retryCall(cl)
	if err != nil {
		t.Fatalf("burst not absorbed: %v", err)
	}
	if len(seq) != 2 {
		t.Fatalf("films = %d", len(seq))
	}
	if got := cl.Retries.Load(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	if got := reg.MustGather("xrpc_client_retries_total"); got != 2 {
		t.Errorf("xrpc_client_retries_total = %v, want 2", got)
	}
	if cl.Requests.Load() != 3 {
		t.Errorf("requests = %d, want 3 (1 try + 2 retries)", cl.Requests.Load())
	}
	// full jitter: each sleep is positive and bounded by the cap
	if len(slept) != 2 {
		t.Fatalf("sleeps = %v, want 2", slept)
	}
	for i, d := range slept {
		if d <= 0 || d > 8*time.Millisecond {
			t.Errorf("sleep %d = %v, want in (0, 8ms]", i, d)
		}
	}
}

func TestRetryGivesUpPastMax(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	net.Register("xrpc://y", newServer(t))
	net.FailNext("xrpc://y", 5)

	cl := New(net)
	cl.Retry = &RetryPolicy{Max: 2, Base: time.Microsecond, Sleep: func(time.Duration) {}}
	_, err := retryCall(cl)
	var inj *netsim.InjectedFault
	if !errors.As(err, &inj) {
		t.Fatalf("err = %v, want the injected fault after retries exhausted", err)
	}
	if got := cl.Retries.Load(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
}

func TestRetrySkipsDefinitiveFailures(t *testing.T) {
	// a SOAP fault is a definitive answer from the peer: retrying the
	// same bytes can only repeat it
	net := netsim.NewNetwork(0, 0)
	calls := 0
	net.Register("xrpc://y", netsim.HandlerFunc(func(_ string, _ []byte) ([]byte, error) {
		calls++
		return soap.EncodeFault(&soap.Fault{Code: "XPTY0004", Reason: "type error"}), nil
	}))
	cl := New(net)
	cl.Retry = &RetryPolicy{Max: 3, Sleep: func(time.Duration) {}}
	if _, err := retryCall(cl); err == nil {
		t.Fatal("fault did not surface")
	}
	if calls != 1 {
		t.Errorf("peer called %d times, want 1 (no retry on faults)", calls)
	}
	if cl.Retries.Load() != 0 {
		t.Errorf("retries = %d, want 0", cl.Retries.Load())
	}
}

func TestNoPolicyMeansSingleAttempt(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	net.Register("xrpc://y", newServer(t))
	net.FailNext("xrpc://y", 1)
	cl := New(net)
	if _, err := retryCall(cl); err == nil {
		t.Fatal("transient failure did not surface without a retry policy")
	}
}

package client

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"xrpc/internal/netsim"
	"xrpc/internal/obs"
	"xrpc/internal/soap"
	"xrpc/internal/xdm"
)

// stream.go is the streaming counterpart of SendEncoded: instead of
// buffering the whole response envelope and shredding it in one go,
// SendStreamed hands back a pull-style view over the response as its
// bytes arrive, so a consumer (the scatter-gather merge, a result
// forwarder) holds one item at a time rather than one response at a
// time. SendEncoded remains the buffered reference path.

// StreamedResponse is an in-flight bulk response: result sequences and
// their items are decoded on demand as the peer produces them. The
// consumer must either walk it to Finish (which validates the result
// count against the call count, folds in piggybacked peers, and frees
// the connection) or Close it to abandon the rest.
type StreamedResponse struct {
	rs    *soap.ResponseStream
	body  io.ReadCloser
	c     *Client
	dest  string
	calls int
	seqs  int

	closed bool
}

// SendStreamed posts a pre-encoded request body to dest and returns the
// response as a stream. Transports that implement netsim.StreamTransport
// deliver bytes incrementally; for others the buffered response is
// wrapped, so callers can stream unconditionally. window > 0 adds a
// prefetch buffer of about that many bytes between the socket and the
// decoder: a background reader keeps pulling while the consumer is busy
// downstream, overlapping transfer with processing while keeping memory
// bounded by the window. Safe to call concurrently with the same body:
// the bytes are only read.
func (c *Client) SendStreamed(dest string, body []byte, calls, window int) (*StreamedResponse, error) {
	c.Requests.Add(1)
	c.Sent.Add(int64(len(body)))
	var rc io.ReadCloser
	if st, ok := c.Transport.(netsim.StreamTransport); ok {
		r, err := st.SendStream(dest, XRPCPath, body)
		if err != nil {
			return nil, fmt.Errorf("xrpc: send to %s: %w", dest, err)
		}
		rc = &countingBody{rc: r, n: &c.Received}
	} else {
		respBody, err := c.Transport.Send(dest, XRPCPath, body)
		c.Received.Add(int64(len(respBody)))
		if err != nil {
			return nil, fmt.Errorf("xrpc: send to %s: %w", dest, err)
		}
		rc = io.NopCloser(bytes.NewReader(respBody))
	}
	if window > 0 {
		rc = newPrefetchReader(rc, window, c.WindowStalls)
	}
	rs, err := soap.NewResponseStream(rc)
	if err != nil {
		rc.Close()
		return nil, err
	}
	return &StreamedResponse{rs: rs, body: rc, c: c, dest: dest, calls: calls}, nil
}

// Module returns the xrpc:module attribute of the response.
func (sr *StreamedResponse) Module() string { return sr.rs.Module() }

// Method returns the xrpc:method attribute of the response.
func (sr *StreamedResponse) Method() string { return sr.rs.Method() }

// NextSequence advances to the next result sequence, discarding unread
// items of the current one. False means the response holds no further
// sequences.
func (sr *StreamedResponse) NextSequence() (bool, error) {
	ok, err := sr.rs.NextSequence()
	if ok {
		sr.seqs++
	}
	return ok, err
}

// NextItem returns the next item of the current sequence, or (nil, nil)
// at its end.
func (sr *StreamedResponse) NextItem() (xdm.Item, error) {
	return sr.rs.NextItem()
}

// Finish drains the rest of the response, verifies one result sequence
// arrived per call, records piggybacked participating peers, and
// releases the connection. It returns the peers.
func (sr *StreamedResponse) Finish() ([]string, error) {
	for {
		ok, err := sr.NextSequence()
		if err != nil {
			sr.Close()
			return nil, err
		}
		if !ok {
			break
		}
	}
	peers, err := sr.rs.Finish()
	if err != nil {
		sr.Close()
		return nil, err
	}
	if sr.seqs != sr.calls {
		sr.Close()
		return nil, fmt.Errorf("xrpc: %d results for %d calls", sr.seqs, sr.calls)
	}
	sr.c.notePeers(sr.dest, peers)
	sr.Close()
	return peers, nil
}

// Close abandons the stream without validating the remainder. Safe to
// call more than once and after Finish.
func (sr *StreamedResponse) Close() error {
	if sr.closed {
		return nil
	}
	sr.closed = true
	return sr.body.Close()
}

// countingBody adds every byte read to a client stat counter.
type countingBody struct {
	rc io.ReadCloser
	n  *atomic.Int64
}

func (b *countingBody) Read(p []byte) (int, error) {
	n, err := b.rc.Read(p)
	if n > 0 {
		b.n.Add(int64(n))
	}
	return n, err
}

func (b *countingBody) Close() error { return b.rc.Close() }

// prefetchChunk is the read granularity of the prefetch buffer.
const prefetchChunk = 32 << 10

// prefetchReader decouples the producer (socket) from the consumer
// (decoder) with a bounded channel of chunks: the background goroutine
// reads ahead up to the window while the consumer processes items, and
// blocks once the window is full — bounded memory, no unbounded
// buffering of a fast producer.
type prefetchReader struct {
	ch     chan []byte
	err    error // set before ch is closed; read only after ch closes
	done   chan struct{}
	once   sync.Once
	closed bool
	cur    []byte
	stalls *obs.Counter
}

func newPrefetchReader(rc io.ReadCloser, window int, stalls *obs.Counter) *prefetchReader {
	depth := window / prefetchChunk
	if depth < 1 {
		depth = 1
	}
	pr := &prefetchReader{
		ch:     make(chan []byte, depth),
		done:   make(chan struct{}),
		stalls: stalls,
	}
	go func() {
		defer rc.Close()
		for {
			buf := make([]byte, prefetchChunk)
			n, err := rc.Read(buf)
			if n > 0 {
				select {
				case pr.ch <- buf[:n]:
				default:
					// window full: the consumer is the bottleneck and the
					// producer blocks until a slot frees — worth counting,
					// it is the signal MaxShardBuffer is sized too small
					// (or the merge too slow) for this workload
					pr.stalls.Inc()
					select {
					case pr.ch <- buf[:n]:
					case <-pr.done:
						return
					}
				}
			}
			if err != nil {
				if err != io.EOF {
					pr.err = err
				}
				close(pr.ch)
				return
			}
		}
	}()
	return pr
}

func (pr *prefetchReader) Read(p []byte) (int, error) {
	if pr.closed {
		return 0, fmt.Errorf("xrpc: read from closed response stream")
	}
	for len(pr.cur) == 0 {
		chunk, ok := <-pr.ch
		if !ok {
			if pr.err != nil {
				return 0, pr.err
			}
			return 0, io.EOF
		}
		pr.cur = chunk
	}
	n := copy(p, pr.cur)
	pr.cur = pr.cur[n:]
	return n, nil
}

// Close stops the background reader, which closes the underlying
// stream on its way out. A reader mid-Read drains its chunk into the
// void (the done channel) before exiting.
func (pr *prefetchReader) Close() error {
	pr.closed = true
	pr.once.Do(func() { close(pr.done) })
	return nil
}

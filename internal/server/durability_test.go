package server

import (
	"fmt"
	"testing"
	"time"

	"xrpc/internal/client"
	"xrpc/internal/netsim"
	"xrpc/internal/obs"
	"xrpc/internal/soap"
	"xrpc/internal/store"
	"xrpc/internal/wal"
	"xrpc/internal/xdm"
)

func enableWAL(t *testing.T, p *peer, dir string, cfg WALConfig) bool {
	t.Helper()
	cfg.Dir = dir
	recovered, err := p.server.EnableWAL(cfg)
	if err != nil {
		t.Fatalf("EnableWAL: %v", err)
	}
	t.Cleanup(func() { p.server.CloseWAL() })
	return recovered
}

func addFilm(t *testing.T, net *netsim.Network, dest, name, actor string) {
	t.Helper()
	cl := client.New(net)
	_, err := cl.CallBulk(dest, &client.BulkRequest{
		ModuleURI: "upd", Func: "addFilm", Arity: 2, Updating: true,
		Calls: [][]xdm.Sequence{{{xdm.String(name)}, {xdm.String(actor)}}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func filmDoc(t *testing.T, st *store.Store) string {
	t.Helper()
	doc, ok := st.Get("filmDB.xml")
	if !ok {
		t.Fatal("filmDB.xml missing")
	}
	return xdm.SerializeNode(doc)
}

// A peer with a WAL that "crashes" (its in-memory state discarded, its
// directory reopened by a fresh server) recovers the exact pre-crash
// version and byte-identical documents.
func TestWALRecoveryRoundTrip(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	dir := t.TempDir()
	p := newPeer(t, "xrpc://durable", filmDBY, net)
	if recovered := enableWAL(t, p, dir, WALConfig{}); recovered {
		t.Fatal("fresh dir reported a recovery")
	}
	for i := 0; i < 5; i++ {
		addFilm(t, net, p.uri, fmt.Sprintf("Film %d", i), "Actor")
	}
	wantVersion := p.store.Version()
	wantDoc := filmDoc(t, p.store)

	// "crash": the old server's memory is abandoned; a new empty peer
	// recovers from the directory alone
	reg := obs.NewRegistry()
	m := wal.NewMetrics(reg)
	p2 := newPeer(t, "xrpc://durable-2", "", net)
	if recovered := enableWAL(t, p2, dir, WALConfig{Metrics: m}); !recovered {
		t.Fatal("existing dir did not recover")
	}
	if got := p2.store.Version(); got != wantVersion {
		t.Fatalf("recovered version = %d, want %d", got, wantVersion)
	}
	if got := filmDoc(t, p2.store); got != wantDoc {
		t.Fatalf("recovered document differs:\n got %s\nwant %s", got, wantDoc)
	}
	if n, ok := reg.Gather("xrpc_wal_replayed_records_total"); !ok || n < 5 {
		t.Fatalf("replay counter = %v (ok=%v), want >= 5", n, ok)
	}
}

// WS-AT deferred commits are durable too: prepare + commit a PUL under
// a queryID, crash, recover, and the committed state is back.
func TestWALRecoveryAfterWSATCommit(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	dir := t.TempDir()
	p := newPeer(t, "xrpc://durable-2pc", filmDBY, net)
	enableWAL(t, p, dir, WALConfig{})

	qid := &soap.QueryID{ID: "q-wal-1", Host: "xrpc://local", Timestamp: time.Now(), Timeout: 60}
	cl := client.New(net)
	cl.QueryID = qid
	if _, err := cl.CallBulk(p.uri, &client.BulkRequest{
		ModuleURI: "upd", Func: "addFilm", Arity: 2, Updating: true,
		Calls: [][]xdm.Sequence{{{xdm.String("Durable Film")}, {xdm.String("D")}}},
	}); err != nil {
		t.Fatal(err)
	}
	for _, verb := range []string{"Prepare", "Commit"} {
		if _, err := cl.CallBulk(p.uri, &client.BulkRequest{
			ModuleURI: WSATModule, Func: verb, Arity: 0, Calls: [][]xdm.Sequence{{}},
		}); err != nil {
			t.Fatalf("%s: %v", verb, err)
		}
	}
	wantVersion, wantDoc := p.store.Version(), filmDoc(t, p.store)

	p2 := newPeer(t, "xrpc://durable-2pc-r", "", net)
	if !enableWAL(t, p2, dir, WALConfig{}) {
		t.Fatal("no recovery")
	}
	if p2.store.Version() != wantVersion || filmDoc(t, p2.store) != wantDoc {
		t.Fatalf("recovered (v%d) != committed (v%d) or documents differ",
			p2.store.Version(), wantVersion)
	}
}

// The snapshot policy keeps recovery exact: with a tiny snapshot
// threshold the log is repeatedly snapshotted and truncated, and a
// restart still lands on the precise final state.
func TestWALSnapshotTruncationKeepsRecoveryExact(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	dir := t.TempDir()
	p := newPeer(t, "xrpc://durable-snap", filmDBY, net)
	enableWAL(t, p, dir, WALConfig{SegmentBytes: 512, SnapshotBytes: 1024})
	for i := 0; i < 25; i++ {
		addFilm(t, net, p.uri, fmt.Sprintf("Film %d", i), "Actor")
	}
	wantVersion, wantDoc := p.store.Version(), filmDoc(t, p.store)
	if base := p.server.WAL().Base(); base == 0 {
		t.Fatal("snapshot policy never ran (base still 0)")
	}

	p2 := newPeer(t, "xrpc://durable-snap-r", "", net)
	if !enableWAL(t, p2, dir, WALConfig{}) {
		t.Fatal("no recovery")
	}
	if p2.store.Version() != wantVersion || filmDoc(t, p2.store) != wantDoc {
		t.Fatalf("recovered v%d, want v%d (or documents differ)", p2.store.Version(), wantVersion)
	}
}

// syncFrom/resyncFrom: a stale follower catches up from the primary's
// log; one that the log no longer covers (or that never had the data)
// adopts a full snapshot transfer. Both end byte-identical.
func TestResyncFromPrimary(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	dir := t.TempDir()
	prim := newPeer(t, "xrpc://prim", filmDBY, net)
	enableWAL(t, prim, dir, WALConfig{})

	// follower starts as a faithful copy (same initial docs, same
	// version accounting), then misses five commits
	fol := newPeer(t, "xrpc://fol", filmDBY, net)
	folDir := t.TempDir()
	enableWAL(t, fol, folDir, WALConfig{})
	for i := 0; i < 5; i++ {
		addFilm(t, net, prim.uri, fmt.Sprintf("Missed %d", i), "Actor")
	}
	v, err := fol.server.ResyncFrom(prim.uri)
	if err != nil {
		t.Fatalf("ResyncFrom (log mode): %v", err)
	}
	if v != prim.store.Version() || filmDoc(t, fol.store) != filmDoc(t, prim.store) {
		t.Fatalf("log resync: follower v%d primary v%d (or documents differ)", v, prim.store.Version())
	}
	// the shipped commits are durable on the follower: recover its dir
	fol2 := newPeer(t, "xrpc://fol-r", "", net)
	if !enableWAL(t, fol2, folDir, WALConfig{}) {
		t.Fatal("follower dir did not recover")
	}
	if filmDoc(t, fol2.store) != filmDoc(t, prim.store) {
		t.Fatal("recovered follower differs from primary")
	}

	// an empty peer has no common history: snapshot-transfer fallback
	blank := newPeer(t, "xrpc://blank", "", net)
	enableWAL(t, blank, t.TempDir(), WALConfig{})
	v, err = blank.server.ResyncFrom(prim.uri)
	if err != nil {
		t.Fatalf("ResyncFrom (snapshot mode): %v", err)
	}
	if v != prim.store.Version() || filmDoc(t, blank.store) != filmDoc(t, prim.store) {
		t.Fatal("snapshot resync did not converge to the primary's state")
	}
}

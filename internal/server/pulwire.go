package server

import (
	"strconv"

	"xrpc/internal/interp"
	"xrpc/internal/soap"
	"xrpc/internal/xdm"
)

// PUL wire format: a pending update list serialized as one XML element,
// so that a primary's prepared ∆_q can travel inside a SOAP XRPC value
// to the shard's replicas (replica PUL replication under 2PC). A
// Primitive already identifies its target by document name + stable
// preorder ordinal — exactly the information that survives
// serialization — so DecodePUL(EncodePUL(ul)) against a tree equal to
// the primary's snapshot reproduces the list.
//
//	<xrpc:pending-updates>
//	  <xrpc:primitive kind="replaceValue" doc="persons.xml" ord="17"
//	                  seq="3" value="Amsterdam">
//	    <xrpc:sequence>…source items…</xrpc:sequence>   (insert/replace)
//	  </xrpc:primitive>
//	</xrpc:pending-updates>

// pulRootName is the element name of a serialized pending update list.
const pulRootName = "xrpc:pending-updates"

var pulKindNames = func() map[string]interp.PrimitiveKind {
	m := map[string]interp.PrimitiveKind{}
	for k := interp.PrimInsertInto; k <= interp.PrimPut; k++ {
		m[k.String()] = k
	}
	return m
}()

// EncodePUL serializes a pending update list.
func EncodePUL(ul *interp.UpdateList) *xdm.Node {
	root := xdm.NewElement(pulRootName)
	for _, p := range ul.Prims {
		el := xdm.NewElement("xrpc:primitive")
		el.SetAttr(xdm.NewAttribute("kind", p.Kind.String()))
		if p.Target != nil {
			el.SetAttr(xdm.NewAttribute("doc", p.DocName))
			el.SetAttr(xdm.NewAttribute("ord", strconv.Itoa(p.Target.Ord())))
		}
		if p.Seq != 0 {
			el.SetAttr(xdm.NewAttribute("seq", strconv.FormatInt(p.Seq, 10)))
		}
		switch p.Kind {
		case interp.PrimReplaceValue, interp.PrimRename:
			el.SetAttr(xdm.NewAttribute("value", p.Value))
		case interp.PrimPut:
			el.SetAttr(xdm.NewAttribute("uri", p.PutURI))
		}
		if len(p.Source) > 0 {
			src := make(xdm.Sequence, len(p.Source))
			for i, n := range p.Source {
				src[i] = n
			}
			// s2n handles every node kind (attributes, text, PIs, …) and
			// deep-copies, matching the call-by-value the PUL travels with
			el.AppendChild(soap.SequenceToNode(src))
		}
		root.AppendChild(el)
	}
	root.Seal()
	return root
}

// DecodePUL parses a serialized pending update list, resolving every
// target against docs (the adopting peer's pinned snapshot). It fails if
// a target document or ordinal does not exist there — a replica that
// diverged from its primary must not silently adopt a misaimed update.
func DecodePUL(pulNode *xdm.Node, docs interp.DocResolver) (*interp.UpdateList, error) {
	if pulNode.Kind != xdm.ElementNode || pulNode.Name != pulRootName {
		return nil, xdm.Errorf("XRPC0008", "not a serialized pending update list: <%s>", pulNode.Name)
	}
	ul := &interp.UpdateList{}
	for _, el := range pulNode.ChildElements() {
		kindName, _ := el.Attr("kind")
		kind, ok := pulKindNames[kindName]
		if !ok {
			return nil, xdm.Errorf("XRPC0008", "unknown update primitive kind %q", kindName)
		}
		p := interp.Primitive{Kind: kind}
		if s, ok := el.Attr("seq"); ok {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return nil, xdm.Errorf("XRPC0008", "bad primitive seq %q", s)
			}
			p.Seq = v
		}
		if v, ok := el.Attr("value"); ok {
			p.Value = v
		}
		if uri, ok := el.Attr("uri"); ok {
			p.PutURI = uri
		}
		if docName, ok := el.Attr("doc"); ok {
			ordStr, _ := el.Attr("ord")
			ord, err := strconv.Atoi(ordStr)
			if err != nil {
				return nil, xdm.Errorf("XRPC0008", "bad primitive ord %q", ordStr)
			}
			root, err := docs.Doc(docName)
			if err != nil {
				return nil, xdm.Errorf("XRPC0008", "pending update targets unknown document %q", docName)
			}
			target := root.FindByOrd(ord)
			if target == nil {
				return nil, xdm.Errorf("XRPC0008", "pending update target #%d not in %q", ord, docName)
			}
			p.Target = target
		} else if kind != interp.PrimPut {
			return nil, xdm.Errorf("XRPC0008", "%s primitive without a target", kindName)
		}
		if seqEl := firstChildLocal(el, "sequence"); seqEl != nil {
			seq, err := soap.DecodeSequence(seqEl)
			if err != nil {
				return nil, err
			}
			nodes, ok := xdm.NodesOf(seq)
			if !ok {
				return nil, xdm.NewError("XRPC0008", "primitive source is not a node sequence")
			}
			p.Source = nodes
		}
		// Add records DocName from the resolved target
		ul.Add(p)
	}
	return ul, nil
}

// firstChildLocal finds the first child element with the given local
// name (prefix-tolerant, mirroring the soap package's decoding habit).
func firstChildLocal(n *xdm.Node, local string) *xdm.Node {
	for _, c := range n.ChildElements() {
		name := c.Name
		if i := len(name) - len(local); i > 0 && name[i-1] == ':' && name[i:] == local {
			return c
		}
		if name == local {
			return c
		}
	}
	return nil
}

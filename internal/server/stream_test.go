package server

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"xrpc/internal/client"
	"xrpc/internal/netsim"
	"xrpc/internal/soap"
	"xrpc/internal/xdm"
)

var _ netsim.StreamHandler = (*Server)(nil)

// TestHandleXRPCStreamByteIdentical pins the streamed handler against
// the buffered reference for both outcomes a request can have: a
// response envelope and a fault envelope.
func TestHandleXRPCStreamByteIdentical(t *testing.T) {
	net, _, y, _ := newCluster(t)
	_ = net
	cases := map[string][]byte{
		"response": soap.EncodeRequest(&soap.Request{
			Module: "films", Method: "filmsByActor", Arity: 1,
			Location: "http://x.example.org/film.xq",
			Calls: [][]xdm.Sequence{
				{{xdm.String("Sean Connery")}},
				{{xdm.String("Julie Andrews")}},
			},
		}),
		"fault":     soap.EncodeRequest(&soap.Request{Module: "no-such-module", Method: "f", Arity: 0}),
		"malformed": []byte("this is not soap"),
	}
	for name, body := range cases {
		want, err := y.server.HandleXRPC(client.XRPCPath, body)
		if err != nil {
			t.Fatalf("%s: buffered: %v", name, err)
		}
		rc, err := y.server.HandleXRPCStream(client.XRPCPath, body)
		if err != nil {
			t.Fatalf("%s: stream open: %v", name, err)
		}
		got, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			t.Fatalf("%s: stream read: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: streamed handler differs from buffered\nstreamed: %s\nbuffered: %s", name, got, want)
		}
	}
}

// TestHandleXRPCStreamAbandonedReader: a client that closes the stream
// early must not wedge the encoding goroutine.
func TestHandleXRPCStreamAbandonedReader(t *testing.T) {
	net, _, y, _ := newCluster(t)
	_ = net
	// a bulk request big enough that the response cannot fit in the
	// pipe's unread window
	calls := make([][]xdm.Sequence, 512)
	for i := range calls {
		calls[i] = []xdm.Sequence{{xdm.String("Sean Connery")}}
	}
	body := soap.EncodeRequest(&soap.Request{
		Module: "films", Method: "filmsByActor", Arity: 1,
		Location: "http://x.example.org/film.xq",
		Calls:    calls,
	})
	rc, err := y.server.HandleXRPCStream(client.XRPCPath, body)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	if _, err := io.ReadFull(rc, buf); err != nil {
		t.Fatal(err)
	}
	rc.Close() // the encoder goroutine's next pipe write fails and it exits
}

// TestServeHTTPStreamsChunks: the HTTP path must emit the envelope
// incrementally (chunked, flushed per encoder chunk), not as one
// buffered write with a Content-Length.
func TestServeHTTPStreamsChunks(t *testing.T) {
	net, _, y, _ := newCluster(t)
	_ = net
	req := &soap.Request{
		Module: "films", Method: "filmsByActor", Arity: 1,
		Location: "http://x.example.org/film.xq",
		Calls:    [][]xdm.Sequence{{{xdm.String("Sean Connery")}}},
	}
	hs := httptest.NewServer(y.server)
	defer hs.Close()

	for _, gzipOn := range []bool{false, true} {
		y.server.Gzip = gzipOn
		tr := client.NewHTTPTransport()
		tr.Gzip = gzipOn
		rc, err := tr.SendStream(hs.URL, client.XRPCPath, soap.EncodeRequest(req))
		if err != nil {
			t.Fatalf("gzip=%v: %v", gzipOn, err)
		}
		resp, err := soap.DecodeResponseStream(rc)
		rc.Close()
		if err != nil {
			t.Fatalf("gzip=%v: %v", gzipOn, err)
		}
		if len(resp.Results) != 1 || len(resp.Results[0]) != 2 {
			t.Fatalf("gzip=%v: results = %+v", gzipOn, resp.Results)
		}
	}
	y.server.Gzip = false

	// the raw protocol surface: no Content-Length, transfer is chunked
	w := httptest.NewRecorder()
	r := httptest.NewRequest("POST", client.XRPCPath, bytes.NewReader(soap.EncodeRequest(req)))
	y.server.ServeHTTP(w, r)
	if cl := w.Header().Get("Content-Length"); cl != "" {
		t.Fatalf("streamed response carries Content-Length %s", cl)
	}
	if got := w.Body.String(); !strings.Contains(got, "xrpc:response") {
		t.Fatalf("response body = %q", got)
	}
}

// TestServeHTTPGzipChunksAreSyncFlushed: every encoder chunk must be
// independently decodable as it arrives (gzip sync flush), otherwise a
// streaming consumer would stall until the gzip stream closes.
func TestServeHTTPGzipChunksAreSyncFlushed(t *testing.T) {
	net, _, y, _ := newCluster(t)
	_ = net
	y.server.Gzip = true
	defer func() { y.server.Gzip = false }()
	req := soap.EncodeRequest(&soap.Request{
		Module: "films", Method: "filmsByActor", Arity: 1,
		Location: "http://x.example.org/film.xq",
		Calls:    [][]xdm.Sequence{{{xdm.String("Julie Andrews")}}},
	})
	w := httptest.NewRecorder()
	r := httptest.NewRequest("POST", client.XRPCPath, bytes.NewReader(req))
	r.Header.Set("Accept-Encoding", "gzip")
	y.server.ServeHTTP(w, r)
	if w.Header().Get("Content-Encoding") != "gzip" {
		t.Fatal("response not gzip-encoded")
	}
	gz, err := gzip.NewReader(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := soap.DecodeResponse(out); err != nil {
		t.Fatal(err)
	}
}

package server

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"xrpc/internal/client"
	"xrpc/internal/interp"
	"xrpc/internal/modules"
	"xrpc/internal/netsim"
	"xrpc/internal/soap"
	"xrpc/internal/store"
	"xrpc/internal/xdm"
)

const filmDBY = `<films>
<film><name>The Rock</name><actor>Sean Connery</actor></film>
<film><name>Goldfinger</name><actor>Sean Connery</actor></film>
<film><name>Green Card</name><actor>Gerard Depardieu</actor></film>
</films>`

const filmDBZ = `<films>
<film><name>Sound Of Music</name><actor>Julie Andrews</actor></film>
</films>`

const filmModule = `
module namespace film="films";
declare function film:filmsByActor($actor as xs:string) as node()*
{ doc("filmDB.xml")//name[../actor=$actor] };`

const updModule = `
module namespace u="upd";
declare updating function u:addFilm($name as xs:string, $actor as xs:string)
{ insert node <film><name>{$name}</name><actor>{$actor}</actor></film> into doc("filmDB.xml")/films };`

const testModule = `
module namespace tst="test";
declare function tst:echoVoid() { () };
declare function tst:echo($x as item()*) as item()* { $x };`

// peer bundles one XRPC peer: store, registry, engine, server.
type peer struct {
	uri    string
	store  *store.Store
	reg    *modules.Registry
	engine *interp.Engine
	server *Server
	exec   *NativeExecutor
}

func newPeer(t *testing.T, uri, filmXML string, net *netsim.Network) *peer {
	t.Helper()
	st := store.New()
	if filmXML != "" {
		if err := st.LoadXML("filmDB.xml", filmXML); err != nil {
			t.Fatal(err)
		}
	}
	reg := modules.NewRegistry()
	for _, m := range []string{filmModule, updModule, testModule} {
		if err := reg.Register(m, "http://x.example.org/film.xq"); err != nil {
			t.Fatal(err)
		}
	}
	eng := interp.New(st, reg, nil)
	exec := NewNativeExecutor(eng, reg)
	srv := New(st, reg, exec)
	srv.Self = uri
	srv.NewRPC = func(qid *soap.QueryID) (interp.RPCCaller, func() []string) {
		cl := client.New(net)
		cl.QueryID = qid
		return cl, cl.Peers
	}
	net.Register(uri, srv)
	return &peer{uri: uri, store: st, reg: reg, engine: eng, server: srv, exec: exec}
}

// newCluster wires the paper's three-peer topology: the local peer plus
// y and z.
func newCluster(t *testing.T) (*netsim.Network, *peer, *peer, *peer) {
	t.Helper()
	net := netsim.NewNetwork(0, 0)
	local := newPeer(t, "xrpc://local", filmDBY, net)
	y := newPeer(t, "xrpc://y.example.org", filmDBY, net)
	z := newPeer(t, "xrpc://z.example.org", filmDBZ, net)
	return net, local, y, z
}

func evalOn(t *testing.T, p *peer, net *netsim.Network, query string) xdm.Sequence {
	t.Helper()
	cl := client.New(net)
	eng := interp.New(p.store, p.reg, cl)
	c, err := eng.Compile(query)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	seq, _, err := c.Eval(nil)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return seq
}

// Q1 from the paper: one remote call, expected result from §2.
func TestQ1SingleRemoteCall(t *testing.T) {
	net, local, _, _ := newCluster(t)
	seq := evalOn(t, local, net, `
import module namespace f="films" at "http://x.example.org/film.xq";
<films> {
  execute at {"xrpc://y.example.org"}
  {f:filmsByActor("Sean Connery")}
} </films>`)
	got := xdm.SerializeSequence(seq)
	want := "<films><name>The Rock</name><name>Goldfinger</name></films>"
	if got != want {
		t.Errorf("Q1 = %s, want %s", got, want)
	}
}

// Q2: two calls to the same peer from a for-loop.
func TestQ2LoopSameDest(t *testing.T) {
	net, local, y, _ := newCluster(t)
	seq := evalOn(t, local, net, `
import module namespace f="films" at "http://x.example.org/film.xq";
<films> {
  for $actor in ("Julie Andrews", "Sean Connery")
  let $dst := "xrpc://y.example.org"
  return execute at {$dst} {f:filmsByActor($actor)}
} </films>`)
	got := xdm.SerializeSequence(seq)
	want := "<films><name>The Rock</name><name>Goldfinger</name></films>"
	if got != want {
		t.Errorf("Q2 = %s, want %s", got, want)
	}
	// interpreter does one-at-a-time RPC: 2 requests served by y
	if y.server.ServedRequests != 2 {
		t.Errorf("y served %d requests, want 2 (one-at-a-time)", y.server.ServedRequests)
	}
}

// Q3: multiple calls to multiple peers.
func TestQ3MultiDest(t *testing.T) {
	net, local, _, _ := newCluster(t)
	seq := evalOn(t, local, net, `
import module namespace f="films" at "http://x.example.org/film.xq";
<films> {
  for $actor in ("Julie Andrews", "Sean Connery")
  for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
  return execute at {$dst} {f:filmsByActor($actor)}
} </films>`)
	got := xdm.SerializeSequence(seq)
	// y has no Julie Andrews films; z has Sound Of Music; order follows
	// the query's nested loops
	want := "<films><name>Sound Of Music</name><name>The Rock</name><name>Goldfinger</name></films>"
	if got != want {
		t.Errorf("Q3 = %s, want %s", got, want)
	}
}

func TestRemoteCallWithNodeResultIsByValue(t *testing.T) {
	net, local, _, _ := newCluster(t)
	seq := evalOn(t, local, net, `
import module namespace f="films" at "http://x.example.org/film.xq";
execute at {"xrpc://y.example.org"} {f:filmsByActor("Sean Connery")}`)
	if len(seq) != 2 {
		t.Fatalf("got %d items", len(seq))
	}
	n := seq[0].(*xdm.Node)
	if n.Parent != nil {
		t.Error("remote node result must be a parentless fragment (call-by-value)")
	}
	// upward navigation yields empty
	up := xdm.Step(n, xdm.AxisParent, xdm.NodeTest{KindTest: true, AnyKind: true})
	if len(up) != 0 {
		t.Error("parent axis on shipped node must be empty")
	}
}

func TestEchoRoundTripsAllTypes(t *testing.T) {
	net, local, _, _ := newCluster(t)
	seq := evalOn(t, local, net, `
import module namespace tst="test" at "http://x.example.org/film.xq";
execute at {"xrpc://y.example.org"} {tst:echo((1, "two", 3.5, true(), <n a="1">x</n>))}`)
	if len(seq) != 5 {
		t.Fatalf("echo returned %d items: %s", len(seq), xdm.SerializeSequence(seq))
	}
	if _, ok := seq[0].(xdm.Integer); !ok {
		t.Errorf("item 0 type = %T", seq[0])
	}
	if _, ok := seq[3].(xdm.Boolean); !ok {
		t.Errorf("item 3 type = %T", seq[3])
	}
	if n, ok := seq[4].(*xdm.Node); !ok || n.Name != "n" {
		t.Errorf("item 4 = %v", seq[4])
	}
}

func TestUnknownModuleFaults(t *testing.T) {
	net, _, _, _ := newCluster(t)
	cl := client.New(net)
	_, err := cl.CallBulk("xrpc://y.example.org", &client.BulkRequest{
		ModuleURI: "no-such-module", Func: "f", Arity: 0,
		Calls: [][]xdm.Sequence{{}},
	})
	if err == nil {
		t.Fatal("expected fault")
	}
	f, ok := err.(*soap.Fault)
	if !ok {
		t.Fatalf("error type = %T: %v", err, err)
	}
	if !strings.Contains(f.Reason, "could not load module") {
		t.Errorf("fault reason = %q", f.Reason)
	}
}

func TestUnknownFunctionFaults(t *testing.T) {
	net, _, _, _ := newCluster(t)
	cl := client.New(net)
	_, err := cl.CallBulk("xrpc://y.example.org", &client.BulkRequest{
		ModuleURI: "films", Func: "noSuchFunction", Arity: 0,
		Calls: [][]xdm.Sequence{{}},
	})
	if err == nil {
		t.Fatal("expected fault")
	}
}

func TestBulkRequestSingleRoundTrip(t *testing.T) {
	net, _, y, _ := newCluster(t)
	cl := client.New(net)
	calls := make([][]xdm.Sequence, 100)
	for i := range calls {
		calls[i] = []xdm.Sequence{{xdm.String("Sean Connery")}}
	}
	res, err := cl.CallBulk("xrpc://y.example.org", &client.BulkRequest{
		ModuleURI: "films", AtHint: "http://x.example.org/film.xq",
		Func: "filmsByActor", Arity: 1, Calls: calls,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 100 {
		t.Fatalf("results = %d", len(res))
	}
	for i, seq := range res {
		if len(seq) != 2 {
			t.Fatalf("call %d returned %d films", i, len(seq))
		}
	}
	// the whole bulk was one network request
	if y.server.ServedRequests != 1 {
		t.Errorf("y served %d requests, want 1 (bulk)", y.server.ServedRequests)
	}
	if y.server.ServedCalls != 100 {
		t.Errorf("y served %d calls, want 100", y.server.ServedCalls)
	}
}

func TestFunctionCacheCounters(t *testing.T) {
	net, _, y, _ := newCluster(t)
	cl := client.New(net)
	br := &client.BulkRequest{
		ModuleURI: "films", AtHint: "http://x.example.org/film.xq",
		Func: "filmsByActor", Arity: 1,
		Calls: [][]xdm.Sequence{{{xdm.String("Sean Connery")}}},
	}
	for i := 0; i < 5; i++ {
		if _, err := cl.CallBulk("xrpc://y.example.org", br); err != nil {
			t.Fatal(err)
		}
	}
	if y.exec.CacheMisses.Load() != 1 || y.exec.CacheHits.Load() != 4 {
		t.Errorf("cache hits=%d misses=%d, want 4/1", y.exec.CacheHits.Load(), y.exec.CacheMisses.Load())
	}
	// disable cache: every request recompiles
	y.exec.CacheEnabled = false
	y.exec.InvalidateCache()
	y.exec.CacheHits.Store(0)
	y.exec.CacheMisses.Store(0)
	for i := 0; i < 3; i++ {
		if _, err := cl.CallBulk("xrpc://y.example.org", br); err != nil {
			t.Fatal(err)
		}
	}
	if y.exec.CacheMisses.Load() != 3 {
		t.Errorf("no-cache misses = %d, want 3", y.exec.CacheMisses.Load())
	}
}

// Rule R_Fu: updating call without queryID applies immediately.
func TestUpdateImmediateApplication(t *testing.T) {
	net, _, y, _ := newCluster(t)
	cl := client.New(net)
	_, err := cl.CallBulk("xrpc://y.example.org", &client.BulkRequest{
		ModuleURI: "upd", Func: "addFilm", Arity: 2, Updating: true,
		Calls: [][]xdm.Sequence{{{xdm.String("New Film")}, {xdm.String("Nobody")}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := y.store.Get("filmDB.xml")
	films := xdm.Step(doc.Children[0], xdm.AxisChild, xdm.NodeTest{Name: "film"})
	if len(films) != 4 {
		t.Errorf("films after update = %d, want 4", len(films))
	}
}

// Rule R'_Fu + 2PC: with a queryID, updates are deferred until Commit.
func TestUpdateDeferredUntilCommit(t *testing.T) {
	net, _, y, _ := newCluster(t)
	qid := &soap.QueryID{ID: "q-upd-1", Host: "xrpc://local", Timestamp: time.Now(), Timeout: 60}
	cl := client.New(net)
	cl.QueryID = qid
	_, err := cl.CallBulk("xrpc://y.example.org", &client.BulkRequest{
		ModuleURI: "upd", Func: "addFilm", Arity: 2, Updating: true,
		Calls: [][]xdm.Sequence{{{xdm.String("Deferred")}, {xdm.String("X")}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	countFilms := func() int {
		doc, _ := y.store.Get("filmDB.xml")
		return len(xdm.Step(doc.Children[0], xdm.AxisChild, xdm.NodeTest{Name: "film"}))
	}
	if got := countFilms(); got != 3 {
		t.Fatalf("update visible before commit: %d films", got)
	}
	// Prepare + Commit over WS-AT
	wsat := func(method string) error {
		_, err := cl.CallBulk("xrpc://y.example.org", &client.BulkRequest{
			ModuleURI: WSATModule, Func: method, Arity: 0,
			Calls: [][]xdm.Sequence{{}},
		})
		return err
	}
	if err := wsat("Prepare"); err != nil {
		t.Fatal(err)
	}
	if len(y.server.PrepareLog()) != 1 {
		t.Error("Prepare did not log the pending update list")
	}
	if err := wsat("Commit"); err != nil {
		t.Fatal(err)
	}
	if got := countFilms(); got != 4 {
		t.Errorf("films after commit = %d, want 4", got)
	}
}

func TestUpdateAbortDiscards(t *testing.T) {
	net, _, y, _ := newCluster(t)
	qid := &soap.QueryID{ID: "q-abort", Host: "xrpc://local", Timestamp: time.Now(), Timeout: 60}
	cl := client.New(net)
	cl.QueryID = qid
	_, err := cl.CallBulk("xrpc://y.example.org", &client.BulkRequest{
		ModuleURI: "upd", Func: "addFilm", Arity: 2, Updating: true,
		Calls: [][]xdm.Sequence{{{xdm.String("Doomed")}, {xdm.String("X")}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CallBulk("xrpc://y.example.org", &client.BulkRequest{
		ModuleURI: WSATModule, Func: "Abort", Arity: 0,
		Calls: [][]xdm.Sequence{{}},
	}); err != nil {
		t.Fatal(err)
	}
	doc, _ := y.store.Get("filmDB.xml")
	films := xdm.Step(doc.Children[0], xdm.AxisChild, xdm.NodeTest{Name: "film"})
	if len(films) != 3 {
		t.Errorf("films after abort = %d, want 3", len(films))
	}
}

// Repeatable read (rule R'_Fr): two requests with the same queryID see
// the same database state even when another transaction commits between
// them.
func TestRepeatableReadIsolation(t *testing.T) {
	net, _, _, _ := newCluster(t)
	qid := &soap.QueryID{ID: "q-rr", Host: "xrpc://local", Timestamp: time.Now(), Timeout: 60}
	cl := client.New(net)
	cl.QueryID = qid
	br := &client.BulkRequest{
		ModuleURI: "films", AtHint: "http://x.example.org/film.xq",
		Func: "filmsByActor", Arity: 1,
		Calls: [][]xdm.Sequence{{{xdm.String("Sean Connery")}}},
	}
	res1, err := cl.CallBulk("xrpc://y.example.org", br)
	if err != nil {
		t.Fatal(err)
	}
	// concurrent transaction (no qid) adds a Connery film and commits
	other := client.New(net)
	if _, err := other.CallBulk("xrpc://y.example.org", &client.BulkRequest{
		ModuleURI: "upd", Func: "addFilm", Arity: 2, Updating: true,
		Calls: [][]xdm.Sequence{{{xdm.String("Dr. No")}, {xdm.String("Sean Connery")}}},
	}); err != nil {
		t.Fatal(err)
	}
	res2, err := cl.CallBulk("xrpc://y.example.org", br)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1[0]) != 2 || len(res2[0]) != 2 {
		t.Errorf("repeatable read violated: %d then %d films", len(res1[0]), len(res2[0]))
	}
	// a fresh query (different qid) sees the new state
	fresh := client.New(net)
	fresh.QueryID = &soap.QueryID{ID: "q-rr2", Host: "xrpc://local", Timestamp: time.Now(), Timeout: 60}
	res3, err := fresh.CallBulk("xrpc://y.example.org", br)
	if err != nil {
		t.Fatal(err)
	}
	if len(res3[0]) != 3 {
		t.Errorf("fresh query sees %d films, want 3", len(res3[0]))
	}
}

// Without isolation (rule R_Fr), the second request sees the new state.
func TestNoIsolationSeesLatestState(t *testing.T) {
	net, _, _, _ := newCluster(t)
	cl := client.New(net) // no queryID
	br := &client.BulkRequest{
		ModuleURI: "films", AtHint: "http://x.example.org/film.xq",
		Func: "filmsByActor", Arity: 1,
		Calls: [][]xdm.Sequence{{{xdm.String("Sean Connery")}}},
	}
	res1, _ := cl.CallBulk("xrpc://y.example.org", br)
	other := client.New(net)
	other.CallBulk("xrpc://y.example.org", &client.BulkRequest{
		ModuleURI: "upd", Func: "addFilm", Arity: 2, Updating: true,
		Calls: [][]xdm.Sequence{{{xdm.String("Dr. No")}, {xdm.String("Sean Connery")}}},
	})
	res2, _ := cl.CallBulk("xrpc://y.example.org", br)
	if len(res1[0]) != 2 || len(res2[0]) != 3 {
		t.Errorf("isolation none: %d then %d films, want 2 then 3", len(res1[0]), len(res2[0]))
	}
}

func TestQueryIDExpiry(t *testing.T) {
	net, _, y, _ := newCluster(t)
	now := time.Now()
	y.server.Now = func() time.Time { return now }
	qid := &soap.QueryID{ID: "q-exp", Host: "xrpc://local", Timestamp: now, Timeout: 10}
	cl := client.New(net)
	cl.QueryID = qid
	br := &client.BulkRequest{
		ModuleURI: "films", AtHint: "http://x.example.org/film.xq",
		Func: "filmsByActor", Arity: 1,
		Calls: [][]xdm.Sequence{{{xdm.String("Sean Connery")}}},
	}
	if _, err := cl.CallBulk("xrpc://y.example.org", br); err != nil {
		t.Fatal(err)
	}
	if y.server.IsolatedQueries() != 1 {
		t.Fatalf("isolated queries = %d", y.server.IsolatedQueries())
	}
	// clock advances past the timeout: the isolated state is discarded
	// and the late request is rejected
	now = now.Add(11 * time.Second)
	if _, err := cl.CallBulk("xrpc://y.example.org", br); err == nil {
		t.Error("late request with expired queryID must fault")
	}
	if y.server.IsolatedQueries() != 0 {
		t.Errorf("expired entry not discarded: %d", y.server.IsolatedQueries())
	}
}

func TestGetDocumentSystemCall(t *testing.T) {
	net, _, _, _ := newCluster(t)
	cl := client.New(net)
	doc, err := cl.FetchDocument("xrpc://y.example.org", "filmDB.xml")
	if err != nil {
		t.Fatal(err)
	}
	films := xdm.Step(doc, xdm.AxisDescendant, xdm.NodeTest{Name: "film"})
	if len(films) != 3 {
		t.Errorf("fetched doc has %d films", len(films))
	}
}

func TestClientDocResolverDataShipping(t *testing.T) {
	net, local, _, _ := newCluster(t)
	cl := client.New(net)
	resolver := &client.DocResolver{Local: local.store, Client: cl}
	eng := interp.New(resolver, local.reg, cl)
	c, err := eng.Compile(`count(doc("xrpc://y.example.org/filmDB.xml")//film)`)
	if err != nil {
		t.Fatal(err)
	}
	seq, _, err := c.Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := xdm.SerializeSequence(seq); got != "3" {
		t.Errorf("data-shipped count = %s", got)
	}
	// local docs still resolve locally
	c2, _ := eng.Compile(`count(doc("filmDB.xml")//film)`)
	seq2, _, err := c2.Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := xdm.SerializeSequence(seq2); got != "3" {
		t.Errorf("local count = %s", got)
	}
}

// Nested XRPC calls: local -> y -> z, with participating peers
// piggybacked back to the originator.
func TestNestedCallsPiggybackPeers(t *testing.T) {
	net, local, yy, _ := newCluster(t)
	y := yy
	// a module on y that itself calls z
	nested := `
module namespace n="nested";
import module namespace f="films" at "http://x.example.org/film.xq";
declare function n:viaZ($actor as xs:string) as node()*
{ execute at {"xrpc://z.example.org"} {f:filmsByActor($actor)} };`
	if err := y.reg.Register(nested, "http://x.example.org/nested.xq"); err != nil {
		t.Fatal(err)
	}
	if err := local.reg.Register(nested, "http://x.example.org/nested.xq"); err != nil {
		t.Fatal(err)
	}
	qid := &soap.QueryID{ID: "q-nest", Host: "xrpc://local", Timestamp: time.Now(), Timeout: 60}
	cl := client.New(net)
	cl.QueryID = qid
	res, err := cl.CallBulk("xrpc://y.example.org", &client.BulkRequest{
		ModuleURI: "nested", AtHint: "http://x.example.org/nested.xq",
		Func: "viaZ", Arity: 1,
		Calls: [][]xdm.Sequence{{{xdm.String("Julie Andrews")}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := xdm.SerializeSequence(res[0]); got != "<name>Sound Of Music</name>" {
		t.Errorf("nested result = %s", got)
	}
	peers := cl.Peers()
	foundZ := false
	for _, p := range peers {
		if p == "xrpc://z.example.org" {
			foundZ = true
		}
	}
	if !foundZ {
		t.Errorf("originator does not know about nested peer z: %v", peers)
	}
}

func TestParallelMultiDestDispatch(t *testing.T) {
	net, _, _, _ := newCluster(t)
	cl := client.New(net)
	mk := func(actor string) []xdm.Sequence { return []xdm.Sequence{{xdm.String(actor)}} }
	parts := []*client.BulkByDest{
		{
			Dest: "xrpc://y.example.org",
			Request: &client.BulkRequest{
				ModuleURI: "films", AtHint: "http://x.example.org/film.xq",
				Func: "filmsByActor", Arity: 1,
				Calls: [][]xdm.Sequence{mk("Julie Andrews"), mk("Sean Connery")},
			},
			OrigIdx: []int{0, 2},
		},
		{
			Dest: "xrpc://z.example.org",
			Request: &client.BulkRequest{
				ModuleURI: "films", AtHint: "http://x.example.org/film.xq",
				Func: "filmsByActor", Arity: 1,
				Calls: [][]xdm.Sequence{mk("Julie Andrews"), mk("Sean Connery")},
			},
			OrigIdx: []int{1, 3},
		},
	}
	results, err := cl.CallParallel(parts, 4)
	if err != nil {
		t.Fatal(err)
	}
	// original iteration order: (JA,y)=0 films... wait y has no JA
	if len(results[0]) != 0 { // Julie Andrews on y
		t.Errorf("results[0] = %v", results[0])
	}
	if got := xdm.SerializeSequence(results[1]); got != "<name>Sound Of Music</name>" {
		t.Errorf("results[1] = %s", got)
	}
	if len(results[2]) != 2 { // Sean Connery on y
		t.Errorf("results[2] = %v", results[2])
	}
	if len(results[3]) != 0 { // Sean Connery on z
		t.Errorf("results[3] = %v", results[3])
	}
}

func TestHTTPServing(t *testing.T) {
	// exercise ServeHTTP through a real round trip body
	net, _, y, _ := newCluster(t)
	_ = net
	req := &soap.Request{
		Module: "films", Method: "filmsByActor", Arity: 1,
		Location: "http://x.example.org/film.xq",
		Calls:    [][]xdm.Sequence{{{xdm.String("Sean Connery")}}},
	}
	respBody, err := y.server.HandleXRPC(client.XRPCPath, soap.EncodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := soap.DecodeResponse(respBody)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || len(resp.Results[0]) != 2 {
		t.Fatalf("results = %+v", resp.Results)
	}
}

// Call-by-fragment end to end: with the extension on, a function taking
// an ancestor and a descendant node sees their relationship preserved.
func TestByFragmentPreservesRelationshipsE2E(t *testing.T) {
	net, local, y, _ := newCluster(t)
	rel := `
module namespace rel="rel";
declare function rel:isInside($frag as node(), $n as node()) as xs:boolean
{ exists($frag//name[. is $n]) };`
	for _, p := range []*peer{local, y} {
		if err := p.reg.Register(rel, "http://x.example.org/rel.xq"); err != nil {
			t.Fatal(err)
		}
	}
	query := `
import module namespace rel="rel" at "http://x.example.org/rel.xq";
let $film := (doc("filmDB.xml")//film)[1]
let $name := $film/name
return execute at {"xrpc://y.example.org"} {rel:isInside($film, $name)}`

	run := func(byFragment bool) string {
		cl := client.New(net)
		eng := interp.New(local.store, local.reg, cl)
		eng.ByFragment = byFragment
		c, err := eng.Compile(query)
		if err != nil {
			t.Fatal(err)
		}
		seq, _, err := c.Eval(nil)
		if err != nil {
			t.Fatal(err)
		}
		return xdm.SerializeSequence(seq)
	}
	// plain call-by-value destroys the descendant relationship (§2.2)
	if got := run(false); got != "false" {
		t.Errorf("call-by-value: isInside = %s, want false", got)
	}
	// call-by-fragment preserves it (footnote 4 extension)
	if got := run(true); got != "true" {
		t.Errorf("call-by-fragment: isInside = %s, want true", got)
	}
}

// ------------------------------------------------- parallel bulk exec

// The worker pool must be invisible on the wire: a read-only bulk
// request returns byte-identical responses at any pool size.
func TestParallelBulkByteIdenticalToSequential(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	y := newPeer(t, "xrpc://y.example.org", filmDBY, net)
	req := &soap.Request{
		Module: "films", Method: "filmsByActor", Arity: 1,
		Location: "http://x.example.org/film.xq",
	}
	actors := []string{"Sean Connery", "Gerard Depardieu", "Nobody"}
	for i := 0; i < 48; i++ {
		req.Calls = append(req.Calls, []xdm.Sequence{{xdm.String(actors[i%len(actors)])}})
	}
	body := soap.EncodeRequest(req)
	y.server.SetParallelism(1)
	want, err := y.server.HandleXRPC("/xrpc", body)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(want), "Fault") {
		t.Fatalf("sequential run faulted: %s", want)
	}
	for _, workers := range []int{2, 4, 16, 64} {
		y.server.SetParallelism(workers)
		got, err := y.server.HandleXRPC("/xrpc", body)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: response differs from sequential", workers)
		}
	}
}

// Updating bulk requests fall back to sequential evaluation under any
// Parallelism: the pending-update order, and hence the final document,
// is identical to sequential mode.
func TestParallelUpdatingKeepsPendingUpdateOrder(t *testing.T) {
	run := func(parallelism int) (string, string) {
		t.Helper()
		net := netsim.NewNetwork(0, 0)
		y := newPeer(t, "xrpc://y.example.org", filmDBY, net)
		y.server.SetParallelism(parallelism)
		req := &soap.Request{
			Module: "upd", Method: "addFilm", Arity: 2,
			Location: "http://x.example.org/film.xq",
			Updating: true,
		}
		for i := 0; i < 8; i++ {
			req.Calls = append(req.Calls, []xdm.Sequence{
				{xdm.String(fmt.Sprintf("Film %d", i))},
				{xdm.String(fmt.Sprintf("Actor %d", i))},
			})
			// reversed seqNrs: the merge must honor the tags, not the
			// evaluation order
			req.SeqNrs = append(req.SeqNrs, int64(8-i))
		}
		_, pul, _, err := y.exec.Execute(req, nil, y.store, nil)
		if err != nil {
			t.Fatal(err)
		}
		order := pul.Describe()
		if err := interp.ApplyUpdates(y.store, pul); err != nil {
			t.Fatal(err)
		}
		doc, _ := y.store.Get("filmDB.xml")
		return order, xdm.SerializeSequence(xdm.Sequence{doc})
	}
	seqOrder, seqDoc := run(1)
	parOrder, parDoc := run(8)
	if parOrder != seqOrder {
		t.Errorf("pending-update order differs:\nsequential:\n%s\nparallel:\n%s", seqOrder, parOrder)
	}
	if parDoc != seqDoc {
		t.Errorf("final document differs:\nsequential:\n%s\nparallel:\n%s", seqDoc, parDoc)
	}
}

// Concurrent bulk requests against a pool-enabled server (race-detector
// coverage for the shared function cache and counters).
func TestParallelBulkConcurrentRequests(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	y := newPeer(t, "xrpc://y.example.org", filmDBY, net)
	y.server.SetParallelism(4)
	req := &soap.Request{
		Module: "films", Method: "filmsByActor", Arity: 1,
		Location: "http://x.example.org/film.xq",
	}
	for i := 0; i < 32; i++ {
		req.Calls = append(req.Calls, []xdm.Sequence{{xdm.String("Sean Connery")}})
	}
	body := soap.EncodeRequest(req)
	var wg sync.WaitGroup
	faults := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			resp, err := y.server.HandleXRPC("/xrpc", body)
			if err != nil {
				faults[g] = err
				return
			}
			if strings.Contains(string(resp), "Fault") {
				faults[g] = fmt.Errorf("fault: %s", resp)
			}
		}(g)
	}
	wg.Wait()
	for _, err := range faults {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// A failing call reports the lowest-index error, exactly like sequential
// execution.
func TestParallelBulkDeterministicError(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	y := newPeer(t, "xrpc://y.example.org", filmDBY, net)
	// tst:echo with wrong arity 0 is fine; instead call a function that
	// faults on a bad document for the middle call
	badModule := `
module namespace bad="bad";
declare function bad:fetch($doc as xs:string) as node()*
{ doc($doc)//name };`
	if err := y.reg.Register(badModule, "http://x.example.org/bad.xq"); err != nil {
		t.Fatal(err)
	}
	req := &soap.Request{
		Module: "bad", Method: "fetch", Arity: 1,
		Location: "http://x.example.org/bad.xq",
	}
	for i := 0; i < 16; i++ {
		name := "filmDB.xml"
		if i >= 5 {
			name = fmt.Sprintf("missing%d.xml", i)
		}
		req.Calls = append(req.Calls, []xdm.Sequence{{xdm.String(name)}})
	}
	y.server.SetParallelism(1)
	_, _, _, seqErr := y.exec.Execute(req, nil, y.store, nil)
	y.server.SetParallelism(8)
	_, _, _, parErr := y.exec.Execute(req, nil, y.store, nil)
	if seqErr == nil || parErr == nil {
		t.Fatalf("expected errors, got seq=%v par=%v", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Errorf("error differs: sequential %q, parallel %q", seqErr, parErr)
	}
}

// TestHTTPRequestSizeLimit pins the decompression-bomb guard: a gzip
// request body that expands past MaxRequestBytes is rejected with 413
// before the expansion is materialized, while bodies under the limit
// are served normally.
func TestHTTPRequestSizeLimit(t *testing.T) {
	p := newPeer(t, "xrpc://y", filmDBY, netsim.NewNetwork(0, 0))
	p.server.MaxRequestBytes = 64 * 1024

	// a ~6 KB gzip body expanding to ~10 MB of whitespace padding
	var bomb bytes.Buffer
	zw := gzip.NewWriter(&bomb)
	for i := 0; i < 10*1024; i++ {
		zw.Write(bytes.Repeat([]byte(" "), 1024))
	}
	zw.Close()

	req := httptest.NewRequest("POST", "/xrpc", bytes.NewReader(bomb.Bytes()))
	req.Header.Set("Content-Encoding", "gzip")
	rec := httptest.NewRecorder()
	p.server.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("gzip bomb got status %d, want 413", rec.Code)
	}

	// a legitimate gzip request under the limit still works
	body := soap.EncodeRequest(&soap.Request{
		Module: "films", Method: "filmsByActor", Arity: 1,
		Location: "http://x.example.org/film.xq",
		Calls:    [][]xdm.Sequence{{{xdm.String("Sean Connery")}}},
	})
	var small bytes.Buffer
	zw = gzip.NewWriter(&small)
	zw.Write(body)
	zw.Close()
	req = httptest.NewRequest("POST", "/xrpc", bytes.NewReader(small.Bytes()))
	req.Header.Set("Content-Encoding", "gzip")
	rec = httptest.NewRecorder()
	p.server.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("legitimate gzip request got status %d: %s", rec.Code, rec.Body.String())
	}
	resp, err := soap.DecodeResponse(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || len(resp.Results[0]) != 2 {
		t.Fatalf("results = %+v", resp.Results)
	}
}

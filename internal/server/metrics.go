package server

import (
	"time"

	"xrpc/internal/obs"
	"xrpc/internal/soap"
)

// Metrics is the server request path's registry view. Every method is
// safe on a nil *Metrics via the nil-safe obs instruments; the
// observation itself adds no allocations to the buffered request path
// (guarded by TestInstrumentationAddsNoAllocs).
type Metrics struct {
	Requests      *obs.CounterVec // by decoded method ("malformed" when decode fails)
	Latency       *obs.Histogram  // handle + encode wall clock, seconds
	RequestBytes  *obs.Histogram  // decoded request body size
	ResponseBytes *obs.Counter    // response bytes written over HTTP
	Rejections    *obs.Counter    // request-size (413) rejections
	Faults        *obs.Counter    // requests answered with a SOAP fault
}

// NewMetrics registers the request-path instrument family; labels
// (typically shard="N") distinguish peers sharing one registry.
func NewMetrics(reg *obs.Registry, labels ...obs.Label) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Requests: reg.NewCounterVec("xrpc_server_requests_total",
			"XRPC requests handled, by method.", "method", labels...),
		Latency: reg.NewHistogram("xrpc_server_request_seconds",
			"Request handling latency (decode, execute, encode).",
			obs.DefLatencyBuckets, labels...),
		RequestBytes: reg.NewHistogram("xrpc_server_request_size_bytes",
			"Decoded request body sizes.", obs.DefSizeBuckets, labels...),
		ResponseBytes: reg.NewCounter("xrpc_server_response_bytes_total",
			"Response bytes written to HTTP clients.", labels...),
		Rejections: reg.NewCounter("xrpc_server_request_rejections_total",
			"Requests rejected for exceeding MaxRequestBytes.", labels...),
		Faults: reg.NewCounter("xrpc_server_faults_total",
			"Requests answered with a SOAP fault.", labels...),
	}
}

// RegisterCacheMetrics promotes the server-side cache tiers onto the
// registry: the response cache's cache.Stats and the executor's
// prepared-plan cache counters — the same numbers shardInfo reports, so
// /metrics and system calls share one source of truth.
func (s *Server) RegisterCacheMetrics(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	if s.RespCache != nil {
		rc := s.RespCache
		reg.CounterFunc("xrpc_respcache_hits_total",
			"Response cache hits.", func() int64 { return rc.Stats().Hits }, labels...)
		reg.CounterFunc("xrpc_respcache_misses_total",
			"Response cache misses.", func() int64 { return rc.Stats().Misses }, labels...)
		reg.CounterFunc("xrpc_respcache_evictions_total",
			"Response cache evictions (capacity and version-fence).",
			func() int64 { return rc.Stats().Evictions }, labels...)
		reg.GaugeFunc("xrpc_respcache_entries",
			"Response cache resident entries.",
			func() float64 { return float64(rc.Stats().Entries) }, labels...)
		reg.GaugeFunc("xrpc_respcache_bytes",
			"Response cache resident bytes.",
			func() float64 { return float64(rc.Stats().Bytes) }, labels...)
	}
	if x, ok := s.Exec.(*NativeExecutor); ok {
		reg.CounterFunc("xrpc_plancache_hits_total",
			"Prepared-plan cache hits.", x.CacheHits.Load, labels...)
		reg.CounterFunc("xrpc_plancache_misses_total",
			"Prepared-plan cache misses (compilations).", x.CacheMisses.Load, labels...)
	}
	if s.Store != nil {
		st := s.Store
		reg.GaugeFunc("xrpc_store_version",
			"Store commit version (the cache fence).",
			func() float64 { return float64(st.Version()) }, labels...)
	}
}

// reqMeta carries per-request facts from handle back to handleInto's
// observation point without touching the Server (stack-allocated, so
// the fast path stays alloc-free).
type reqMeta struct {
	req        *soap.Request
	cacheHits  int // respcache calls served from stored bytes
	cacheMiss  int // respcache calls that executed
	usedCache  bool
}

// observe records the request into the metrics and, past the threshold,
// the slow-query log. fault is non-nil when the request ended in one.
func (s *Server) observe(meta *reqMeta, body []byte, d time.Duration, fault *soap.Fault) {
	if m := s.Metrics; m != nil {
		method := "malformed"
		if meta.req != nil {
			method = meta.req.Method
		}
		m.Requests.With(method).Inc()
		m.Latency.ObserveDuration(d)
		m.RequestBytes.Observe(float64(len(body)))
		if fault != nil {
			m.Faults.Inc()
		}
	}
	if !s.SlowLog.Slow(d) {
		return
	}
	// slow path only from here: minting and attribute building allocate,
	// the threshold gate above keeps that off fast requests
	var module, method, trace string
	calls := 0
	if meta.req != nil {
		module, method, trace = meta.req.Module, meta.req.Method, meta.req.TraceID
		calls = len(meta.req.Calls)
	}
	if trace == "" {
		trace = obs.NewTraceID() // untraced request: correlate at least this log line
	}
	attrs := []any{
		"trace_id", trace,
		"module", module,
		"method", method,
		"calls", calls,
		"shard", s.Shard,
		"dur_ms", d.Milliseconds(),
		"bytes_in", len(body),
		"query_hash", obs.QueryHash(body),
	}
	if meta.usedCache {
		attrs = append(attrs, "cache_hits", meta.cacheHits, "cache_misses", meta.cacheMiss)
	}
	if fault != nil {
		attrs = append(attrs, "fault", fault.Reason)
	}
	s.SlowLog.Log("slow query", attrs...)
}

// Package server implements the XRPC request handler of §3: an HTTP/SOAP
// endpoint that decodes Bulk RPC requests, executes the requested module
// function for every call, and returns the results. It contains the
// function cache (prepared query plans, §3.3), the isolation manager for
// repeatable-read queryIDs (§2.2), deferred pending-update-list handling
// (rule R'_Fu), and the WS-AtomicTransaction participant verbs
// Prepare/Commit/Abort (§2.3).
package server

import (
	"compress/gzip"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"xrpc/internal/interp"
	"xrpc/internal/modules"
	"xrpc/internal/obs"
	"xrpc/internal/soap"
	"xrpc/internal/store"
	"xrpc/internal/wal"
	"xrpc/internal/xdm"
)

// WSATModule is the reserved module URI for WS-AtomicTransaction verbs.
const WSATModule = "urn:wsat"

// SystemModule mirrors client.SystemModule (kept separate to avoid an
// import cycle).
const SystemModule = "urn:xrpc-system"

// DefaultMaxRequestBytes is the default cap on one decoded HTTP request
// body (see Server.MaxRequestBytes). Generous for XRPC's multi-megabyte
// document parameters, small enough to stop decompression bombs.
const DefaultMaxRequestBytes = 256 << 20

// Executor runs all calls of one decoded request against a document
// resolver, returning one result sequence per call, the merged pending
// update list, and phase timings.
type Executor interface {
	Execute(req *soap.Request, raw []byte, docs interp.DocResolver, rpc interp.RPCCaller) ([]xdm.Sequence, *interp.UpdateList, *interp.Stats, error)
}

// ParallelExecutor is implemented by executors whose bulk-call worker
// pool is tunable (NativeExecutor, wrapper.Wrapper).
type ParallelExecutor interface {
	// SetParallelism bounds the number of calls of one bulk request
	// evaluated concurrently; n <= 1 means sequential.
	SetParallelism(n int)
}

// RPCFactory builds a per-request RPC caller for nested execute-at calls
// performed while serving a request; it also reports which peers were
// contacted (for the participating-peers piggyback). A nil factory
// disables nested calls.
type RPCFactory func(qid *soap.QueryID) (rpc interp.RPCCaller, peers func() []string)

// Server is one XRPC peer endpoint.
type Server struct {
	Store    *store.Store
	Registry *modules.Registry
	Exec     Executor
	// NewRPC creates nested-call clients (may be nil).
	NewRPC RPCFactory
	// Self is this peer's URI, echoed in fault diagnostics.
	Self string
	// Shard and Shards describe this peer's slot in a sharded
	// deployment (0 ≤ Shard < Shards); Shards == 0 means unsharded.
	// Reported by the shardInfo system call so coordinators can verify
	// cluster membership.
	Shard, Shards int
	// ShardRanges describes what this shard *contains*: one descriptor
	// per partitioned container (cluster.KeyRange.String() format, which
	// cluster.ParseKeyRange round-trips). Appended to the shardInfo
	// response so a coordinator can rebuild range metadata from live
	// peers instead of trusting a static table.
	ShardRanges []string
	// Gzip enables gzip Content-Encoding on HTTP responses for clients
	// that advertise Accept-Encoding: gzip (off by default; gzip-encoded
	// request bodies are always accepted). The paper's §3.3 message-size
	// concern: SOAP envelopes compress well.
	Gzip bool
	// MaxRequestBytes bounds the decoded size of one HTTP request body
	// (0 = DefaultMaxRequestBytes). It caps decompression-bomb
	// amplification: a small gzip body may expand ~1000x, and without a
	// bound io.ReadAll would materialize all of it.
	MaxRequestBytes int64
	// RespCache, when non-nil, serves repeat read-only traffic from the
	// per-shard response cache (see respcache.go). Only meaningful for
	// executors that ignore the raw request bytes (NativeExecutor):
	// cache-missing calls are re-executed as a sub-request whose body
	// no longer matches the original envelope.
	RespCache *RespCache
	// Now is the clock (replaceable in tests).
	Now func() time.Time
	// Metrics, when set, records the request path onto a registry
	// (counts, latency, sizes, faults). Nil disables recording.
	Metrics *Metrics
	// SlowLog, when set, emits a structured record for requests slower
	// than its threshold (trace ID, query hash, cache disposition).
	SlowLog *obs.SlowLog

	iso isoManager

	// durability (durability.go): nil until EnableWAL. Commits flow
	// through applyDurable; snapMu serializes the snapshot policy.
	wal        *wal.Log
	walMetrics *wal.Metrics
	snapBytes  int64
	snapMu     sync.Mutex

	mu sync.Mutex
	// ServedRequests counts handled XRPC requests (experiments).
	ServedRequests int64
	// ServedCalls counts executed function applications.
	ServedCalls int64
	// HandleTime accumulates wall-clock time spent inside the handler
	// (the per-peer time columns of Table 4).
	HandleTime time.Duration
	// LastStats holds the execution phases of the most recent request
	// (Table 3 instrumentation).
	LastStats interp.Stats
}

// ResetStats zeroes the request counters and timers.
func (s *Server) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ServedRequests, s.ServedCalls, s.HandleTime = 0, 0, 0
	s.LastStats = interp.Stats{}
}

// SetParallelism forwards the bulk-execution pool size to the executor
// when it is tunable (no-op otherwise). Configure before serving
// traffic.
func (s *Server) SetParallelism(n int) {
	if p, ok := s.Exec.(ParallelExecutor); ok {
		p.SetParallelism(n)
	}
}

// New creates a server over a store and module registry using the given
// executor.
func New(st *store.Store, reg *modules.Registry, exec Executor) *Server {
	s := &Server{Store: st, Registry: reg, Exec: exec, Now: time.Now}
	s.iso.now = func() time.Time { return s.Now() }
	return s
}

// HandleXRPC implements netsim.Handler: it decodes one message, executes
// it, and encodes the response; any error becomes a SOAP Fault ("any
// error will cause a run-time error at the site that originated the
// query"). The response is built in a pooled encoder; one copy hands it
// to the caller (the HTTP path in ServeHTTP skips even that copy).
func (s *Server) HandleXRPC(path string, body []byte) ([]byte, error) {
	enc := soap.NewEncoder()
	s.handleInto(enc, body)
	out := enc.Copy()
	enc.Release()
	return out, nil
}

// HandleXRPCStream implements netsim.StreamHandler: the response
// envelope is encoded into a pipe in chunks while the caller reads,
// so the serialized response never materializes as one buffer. The
// execution itself (and the fault-or-response decision) completes
// before the first byte is written; what streams is the envelope,
// which for bulk results dwarfs everything else.
func (s *Server) HandleXRPCStream(path string, body []byte) (io.ReadCloser, error) {
	pr, pw := io.Pipe()
	go func() {
		enc := soap.NewStreamEncoder(pw, 0)
		s.handleInto(enc, body)
		err := enc.Flush()
		enc.Release()
		pw.CloseWithError(err)
	}()
	return pr, nil
}

// handleInto runs one request and encodes the response (or fault) into
// enc.
func (s *Server) handleInto(enc *soap.Encoder, body []byte) {
	start := s.Now()
	var meta reqMeta
	var fault *soap.Fault
	defer func() {
		d := time.Since(start)
		s.mu.Lock()
		s.HandleTime += d
		s.mu.Unlock()
		s.observe(&meta, body, d, fault)
	}()
	resp, err := s.handle(body, &meta)
	if err != nil {
		code := "env:Receiver"
		if _, isXQ := err.(*xdm.Error); isXQ {
			code = "env:Sender"
		}
		fault = &soap.Fault{Code: code, Reason: err.Error()}
		enc.EncodeFault(fault)
		return
	}
	enc.EncodeResponse(resp)
}

// ServeHTTP exposes the handler over real HTTP (POST /xrpc), writing the
// response straight from the pooled encoder's buffer. It accepts
// gzip-encoded request bodies unconditionally and gzips the response
// when s.Gzip is set and the client advertised Accept-Encoding: gzip.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "XRPC requires POST", http.StatusMethodNotAllowed)
		return
	}
	maxBytes := s.MaxRequestBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxRequestBytes
	}
	var rd io.Reader = r.Body
	if r.Header.Get("Content-Encoding") == "gzip" {
		gz, err := gzip.NewReader(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		defer gz.Close()
		rd = gz
	}
	body, err := io.ReadAll(io.LimitReader(rd, maxBytes+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if int64(len(body)) > maxBytes {
		if s.Metrics != nil {
			s.Metrics.Rejections.Inc()
		}
		http.Error(w, fmt.Sprintf("request body exceeds %d bytes", maxBytes),
			http.StatusRequestEntityTooLarge)
		return
	}
	w.Header().Set("Content-Type", "application/soap+xml; charset=utf-8")
	// serve through the chunked stream encoder: each encoder chunk is
	// written and flushed to the wire immediately, so a client that
	// consumes the response as a stream sees the first results while the
	// rest of the envelope is still being rendered, and the response
	// bytes never accumulate server-side
	sink := &flushWriter{w: w}
	if f, ok := w.(http.Flusher); ok {
		sink.f = f
	}
	if s.Metrics != nil {
		sink.n = s.Metrics.ResponseBytes
	}
	if s.Gzip && strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
		w.Header().Set("Content-Encoding", "gzip")
		gz := gzip.NewWriter(w)
		defer gz.Close()
		sink.w, sink.gz = gz, gz
	}
	enc := soap.NewStreamEncoder(sink, 0)
	defer enc.Release()
	s.handleInto(enc, body)
	enc.Flush()
	// a late write error means the client went away mid-response;
	// there is no one left to report it to
}

// flushWriter pushes every encoder chunk through to the socket: a
// sync-flush of the gzip stream (so compressed chunks are decodable as
// they arrive) followed by an http.Flusher flush (so the chunked
// transfer encoding emits the bytes instead of buffering them).
type flushWriter struct {
	w  io.Writer
	gz *gzip.Writer
	f  http.Flusher
	n  *obs.Counter // pre-compression response bytes (nil-safe)
}

func (fw *flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	fw.n.Add(int64(n))
	if err != nil {
		return n, err
	}
	if fw.gz != nil {
		if err := fw.gz.Flush(); err != nil {
			return n, err
		}
	}
	if fw.f != nil {
		fw.f.Flush()
	}
	return n, nil
}

func (s *Server) handle(body []byte, meta *reqMeta) (*soap.Response, error) {
	req, err := soap.DecodeRequest(body)
	if err != nil {
		return nil, xdm.Errorf("XRPC0003", "malformed request: %v", err)
	}
	meta.req = req
	s.mu.Lock()
	s.ServedRequests++
	s.ServedCalls += int64(len(req.Calls))
	s.mu.Unlock()

	switch req.Module {
	case WSATModule:
		return s.handleWSAT(req)
	case SystemModule:
		return s.handleSystem(req)
	}

	// requests outside an isolation scope can be answered from the
	// version-fenced response cache; queryID'd requests pin their own
	// snapshot and bypass it (their repeatable-read state is per-query,
	// not per-version)
	if s.RespCache != nil && req.QueryID == nil {
		return s.handleCached(req, body, meta)
	}

	// pick the database state: latest (rule R_Fr) or the queryID's
	// pinned snapshot (rule R'_Fr)
	var docs interp.DocResolver = s.Store
	var entry *isoEntry
	if req.QueryID != nil {
		entry, err = s.iso.entryFor(req.QueryID, s.Store)
		if err != nil {
			return nil, err
		}
		docs = entry.snap
	}

	var rpc interp.RPCCaller
	peers := func() []string { return nil }
	if s.NewRPC != nil {
		rpc, peers = s.NewRPC(req.QueryID)
	}

	results, pul, stats, err := s.Exec.Execute(req, body, docs, rpc)
	if err != nil {
		return nil, err
	}
	if stats != nil {
		s.mu.Lock()
		s.LastStats = *stats
		s.mu.Unlock()
	}
	if !pul.Empty() {
		if entry != nil {
			// deferred: accumulate ∆ per query, applied at Commit (R'_Fu)
			entry.addPUL(pul)
		} else {
			// immediate application (R_Fu), durable before the response
			// leaves when a WAL is enabled
			if _, err := s.applyDurable("", pul); err != nil {
				return nil, err
			}
		}
	}
	return &soap.Response{
		Module:  req.Module,
		Method:  req.Method,
		Results: results,
		Peers:   peers(),
	}, nil
}

// handleSystem serves the reserved system calls (getDocument for data
// shipping).
func (s *Server) handleSystem(req *soap.Request) (*soap.Response, error) {
	var docs interp.DocResolver = s.Store
	if req.QueryID != nil {
		entry, err := s.iso.entryFor(req.QueryID, s.Store)
		if err != nil {
			return nil, err
		}
		docs = entry.snap
	}
	switch req.Method {
	case "getDocument":
		var results []xdm.Sequence
		for _, call := range req.Calls {
			if len(call) != 1 || len(call[0]) != 1 {
				return nil, xdm.NewError("XRPC0004", "getDocument takes one string")
			}
			doc, err := docs.Doc(call[0][0].StringValue())
			if err != nil {
				return nil, err
			}
			results = append(results, xdm.Singleton(doc))
		}
		return &soap.Response{
			Module: req.Module, Method: req.Method, Results: results,
		}, nil
	case "listDocuments":
		names := s.Store.Names()
		seq := make(xdm.Sequence, len(names))
		for i, n := range names {
			seq[i] = xdm.String(n)
		}
		return &soap.Response{
			Module: req.Module, Method: req.Method, Results: []xdm.Sequence{seq},
		}, nil
	case "shardInfo":
		seq := xdm.Sequence{xdm.Integer(int64(s.Shard)), xdm.Integer(int64(s.Shards))}
		for _, n := range s.Store.Names() {
			seq = append(seq, xdm.String(n))
		}
		for _, r := range s.ShardRanges {
			seq = append(seq, xdm.String(r))
		}
		// trailing metadata items (appended last so older consumers,
		// which parse only the leading slots and range descriptors,
		// skip them): the commit-fence version and registry generation
		// — together the coordinator's cheap revalidation probe — and
		// cache counters
		seq = append(seq, xdm.String(VersionItem(s.Store.Version())))
		var gen int64
		if s.Registry != nil {
			gen = s.Registry.Generation()
		}
		seq = append(seq, xdm.String(GenerationItem(gen)))
		if s.RespCache != nil {
			st := s.RespCache.Stats()
			seq = append(seq, xdm.String(fmt.Sprintf(
				"respcache=hits:%d misses:%d evictions:%d entries:%d bytes:%d",
				st.Hits, st.Misses, st.Evictions, st.Entries, st.Bytes)))
		}
		if x, ok := s.Exec.(*NativeExecutor); ok {
			st := x.PlanCacheStats()
			seq = append(seq, xdm.String(fmt.Sprintf(
				"plancache=hits:%d misses:%d evictions:%d entries:%d bytes:%d",
				st.Hits, st.Misses, st.Evictions, st.Entries, st.Bytes)))
		}
		return &soap.Response{
			Module: req.Module, Method: req.Method, Results: []xdm.Sequence{seq},
		}, nil
	case "syncFrom":
		// primary side of replica resync: ship commits after the
		// follower's version, or a full snapshot (see durability.go)
		if len(req.Calls) != 1 || len(req.Calls[0]) != 1 || len(req.Calls[0][0]) != 1 {
			return nil, xdm.NewError("XRPC0004", "syncFrom takes one integer (the follower's version)")
		}
		since, ok := itemInt(req.Calls[0][0][0])
		if !ok {
			return nil, xdm.Errorf("XRPC0004", "syncFrom: bad version %q", req.Calls[0][0][0].StringValue())
		}
		seq, err := s.serveSyncFrom(since)
		if err != nil {
			return nil, err
		}
		return &soap.Response{
			Module: req.Module, Method: req.Method, Results: []xdm.Sequence{seq},
		}, nil
	case "resyncFrom":
		// follower side: catch up from the named primary, then report the
		// caught-up version for the coordinator's rejoin probe
		if len(req.Calls) != 1 || len(req.Calls[0]) != 1 || len(req.Calls[0][0]) != 1 {
			return nil, xdm.NewError("XRPC0004", "resyncFrom takes one string (the primary URI)")
		}
		v, err := s.ResyncFrom(req.Calls[0][0][0].StringValue())
		if err != nil {
			return nil, err
		}
		seq := xdm.Sequence{xdm.String("resynced"), xdm.Integer(v)}
		return &soap.Response{
			Module: req.Module, Method: req.Method, Results: []xdm.Sequence{seq},
		}, nil
	default:
		return nil, xdm.Errorf("XRPC0004", "unknown system method %q", req.Method)
	}
}

// handleWSAT serves the WS-AtomicTransaction participant interface.
//
//   - Prepare brings the queryID's deferred state into prepared state and
//     piggybacks the serialized pending update list on the ack, so a
//     cluster coordinator can forward it to the shard's replicas without
//     an extra round trip.
//   - AdoptPUL (one node parameter) is the replica side of that
//     forwarding: the peer pins a snapshot for the queryID, resolves the
//     serialized primitives against it, and enters prepared state.
//   - Commit applies the pending updates and reports the post-commit
//     store.Version — the replication fence: a replica whose reported
//     version differs from its primary's diverged and must stop serving.
func (s *Server) handleWSAT(req *soap.Request) (*soap.Response, error) {
	if req.QueryID == nil {
		return nil, xdm.NewError("XRPC0005", "WS-AT verb without queryID")
	}
	var result xdm.Sequence
	var err error
	switch req.Method {
	case "Prepare":
		var pul *xdm.Node
		pul, err = s.iso.prepare(req.QueryID.ID)
		if err == nil {
			// the prepared PUL hits disk before the ack leaves: the
			// participant's 2PC promise survives a crash
			err = s.logPrepare(req.QueryID.ID, pul)
		}
		result = xdm.Singleton(xdm.String("prepared"))
		if pul != nil {
			result = append(result, pul)
		}
	case "AdoptPUL":
		if len(req.Calls) != 1 || len(req.Calls[0]) != 1 || len(req.Calls[0][0]) != 1 {
			return nil, xdm.NewError("XRPC0005", "AdoptPUL takes one pending-update-list node")
		}
		n, ok := req.Calls[0][0][0].(*xdm.Node)
		if !ok {
			return nil, xdm.NewError("XRPC0005", "AdoptPUL parameter is not a node")
		}
		err = s.iso.adopt(req.QueryID, n, s.Store)
		result = xdm.Singleton(xdm.String("adopted"))
	case "Commit":
		var version int64
		var entry *isoEntry
		entry, err = s.iso.take(req.QueryID.ID)
		if err == nil {
			version, err = s.applyDurable(req.QueryID.ID, entry.pul)
		}
		result = xdm.Sequence{xdm.String("committed"), xdm.Integer(version)}
	case "Abort":
		s.iso.abort(req.QueryID.ID)
		s.logAbort(req.QueryID.ID)
		result = xdm.Singleton(xdm.String("aborted"))
	default:
		return nil, xdm.Errorf("XRPC0005", "unknown WS-AT method %q", req.Method)
	}
	if err != nil {
		return nil, err
	}
	return &soap.Response{
		Module: WSATModule, Method: req.Method,
		Results: []xdm.Sequence{result},
	}, nil
}

// IsolatedQueries reports how many queryIDs currently hold pinned
// snapshots (observability for tests/experiments).
func (s *Server) IsolatedQueries() int { return s.iso.count() }

// PrepareLog returns the logged pending-update descriptions (the stable
// log written by Prepare).
func (s *Server) PrepareLog() []string { return s.iso.prepareLog() }

// ------------------------------------------------------------ isolation

// isoEntry pins the database state db(t_q) and accumulates the pending
// update lists ∆_q for one queryID.
type isoEntry struct {
	qid      soap.QueryID
	snap     *store.Snapshot
	pul      *interp.UpdateList
	expires  time.Time
	prepared bool

	mu sync.Mutex
}

func (e *isoEntry) addPUL(pul *interp.UpdateList) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pul.Merge(pul)
}

// isoManager tracks active isolated queries and remembers expired
// queryIDs so late requests get errors (§2.2: "the local XRPC handler
// should still remember expired queryIDs"). Per host only the latest
// expired timestamp is retained.
type isoManager struct {
	mu            sync.Mutex
	entries       map[string]*isoEntry
	expiredByHost map[string]time.Time
	log           []string
	now           func() time.Time
	// commitMu serializes commit applies with their version reads (see
	// commit).
	commitMu sync.Mutex
}

func (m *isoManager) entryFor(qid *soap.QueryID, st *store.Store) (*isoEntry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.entries == nil {
		m.entries = map[string]*isoEntry{}
		m.expiredByHost = map[string]time.Time{}
	}
	m.gcLocked()
	if e, ok := m.entries[qid.ID]; ok {
		return e, nil
	}
	// a request whose originating timestamp is not newer than the last
	// expired timestamp from that host arrived too late
	if last, seen := m.expiredByHost[qid.Host]; seen && !qid.Timestamp.After(last) {
		return nil, xdm.Errorf("XRPC0006", "queryID %s expired (host %s)", qid.ID, qid.Host)
	}
	timeout := qid.Timeout
	if timeout <= 0 {
		timeout = 30
	}
	e := &isoEntry{
		qid:     *qid,
		snap:    st.Snapshot(),
		pul:     &interp.UpdateList{},
		expires: m.now().Add(time.Duration(timeout) * time.Second),
	}
	m.entries[qid.ID] = e
	return e, nil
}

func (m *isoManager) gcLocked() {
	now := m.now()
	for id, e := range m.entries {
		limit := e.expires
		if e.prepared {
			// a prepared entry is in doubt: the coordinator may still
			// Commit it, so it outlives its plain expiry — but not
			// forever (a peer evicted from a cluster after a failed
			// commit would otherwise pin its snapshot for the process
			// lifetime). §2.2's "a timeout mechanism is inevitable" is
			// the pragmatic answer to 2PC's blocking window: grant ten
			// extra timeout periods, then presume abort.
			timeout := e.qid.Timeout
			if timeout <= 0 {
				timeout = 30
			}
			limit = limit.Add(10 * time.Duration(timeout) * time.Second)
		}
		if !now.After(limit) {
			continue
		}
		if last, ok := m.expiredByHost[e.qid.Host]; !ok || e.qid.Timestamp.After(last) {
			m.expiredByHost[e.qid.Host] = e.qid.Timestamp
		}
		delete(m.entries, id)
	}
}

func (m *isoManager) get(id string) (*isoEntry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[id]
	return e, ok
}

// prepare brings the query into prepared state and logs its pending
// update list to the (simulated) stable log. The serialized list is
// returned (nil when empty) for the Prepare-ack piggyback.
func (m *isoManager) prepare(id string) (*xdm.Node, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[id]
	if !ok {
		return nil, xdm.Errorf("XRPC0006", "Prepare: unknown or expired queryID %s", id)
	}
	e.prepared = true
	m.log = append(m.log, fmt.Sprintf("PREPARE %s\n%s", id, e.pul.Describe()))
	if e.pul.Empty() {
		return nil, nil
	}
	return EncodePUL(e.pul), nil
}

// adopt is the replica side of PUL replication: pin a snapshot for the
// queryID, resolve the serialized pending update list against it, and
// enter prepared state so the coordinator's Commit applies it here too.
func (m *isoManager) adopt(qid *soap.QueryID, pulNode *xdm.Node, st *store.Store) error {
	e, err := m.entryFor(qid, st)
	if err != nil {
		return err
	}
	ul, err := DecodePUL(pulNode, e.snap)
	if err != nil {
		return err
	}
	e.addPUL(ul)
	m.mu.Lock()
	e.prepared = true
	m.log = append(m.log, fmt.Sprintf("ADOPT %s\n%s", qid.ID, ul.Describe()))
	m.mu.Unlock()
	return nil
}

// take removes and returns the entry for a committing queryID; the
// server applies its accumulated pending update lists through the
// durable commit path (applyDurable), whose commitMu serialization
// guarantees the version it reports is the one this commit produced —
// concurrent transactions cannot slide a commit in between the apply
// and the version read, which would make the coordinator's replica
// version fence evict healthy replicas.
func (m *isoManager) take(id string) (*isoEntry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[id]
	if !ok {
		return nil, xdm.Errorf("XRPC0006", "Commit: unknown queryID %s", id)
	}
	delete(m.entries, id)
	return e, nil
}

func (m *isoManager) abort(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.entries, id)
}

func (m *isoManager) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

func (m *isoManager) prepareLog() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.log))
	copy(out, m.log)
	return out
}

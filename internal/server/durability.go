package server

import (
	"fmt"
	"strconv"
	"strings"

	"xrpc/internal/interp"
	"xrpc/internal/wal"
	"xrpc/internal/xdm"
)

// Durability: the XRPC write path already serializes every commit as a
// pending update list (pulwire.go) fenced by the post-commit
// store.Version — exactly a WAL record. This file routes every state
// change through one choke point (applyDurable), which applies to
// memory under the commit lock, writes the commit record in apply order
// (wal.Enqueue, still under the lock), and waits for the group-commit
// fsync outside it. Recovery (EnableWAL) loads the newest snapshot and
// replays the commit records past it; resync (syncFrom/resyncFrom
// system verbs) ships the same records — or a full snapshot when the
// log was truncated past the follower's version — to a demoted replica
// catching back up.

// DefaultSnapshotBytes triggers a store snapshot (and log truncation)
// after this many bytes of appended records.
const DefaultSnapshotBytes = 8 << 20

// WALConfig configures EnableWAL.
type WALConfig struct {
	// Dir is the per-replica log directory (segments + snapshots).
	Dir string
	// SegmentBytes overrides the log rotation threshold (0 = default).
	SegmentBytes int64
	// SnapshotBytes overrides the snapshot trigger (0 = default).
	SnapshotBytes int64
	// Metrics records fsync latency and recovery counters (may be nil).
	Metrics *wal.Metrics
}

// EnableWAL makes this peer's commits durable under cfg.Dir and, when
// the directory already holds a snapshot, recovers the pre-crash state:
// snapshot restore, then replay of every commit record past it, each
// checked against the version fence it was logged with. It reports
// whether a recovery happened. Call before serving traffic.
func (s *Server) EnableWAL(cfg WALConfig) (recovered bool, err error) {
	snap, hasSnap, err := wal.LoadLatestSnapshot(cfg.Dir)
	if err != nil {
		// a directory with snapshots, none of which decode, is a damaged
		// deployment — refuse to silently restart empty over it
		return false, err
	}
	if hasSnap {
		docs := make(map[string]*xdm.Node, len(snap.Docs))
		for name, xml := range snap.Docs {
			doc, perr := xdm.ParseDocument(name, xml)
			if perr != nil {
				return false, fmt.Errorf("wal: snapshot doc %s: %w", name, perr)
			}
			docs[name] = doc
		}
		s.Store.Restore(docs, snap.Version)
		// shard identity rides in the snapshot: it is not derivable from
		// the shard's own subset of the documents
		if snap.Shards > 0 {
			s.Shard, s.Shards = snap.Shard, snap.Shards
		}
		if len(snap.Ranges) > 0 {
			s.ShardRanges = snap.Ranges
		}
		recovered = true
	}
	lg, err := wal.Open(cfg.Dir, cfg.Metrics)
	if err != nil {
		return recovered, err
	}
	if cfg.SegmentBytes > 0 {
		lg.SegmentBytes = cfg.SegmentBytes
	}
	base := s.Store.Version()
	if hasSnap {
		base = snap.Version
		replayed := int64(0)
		err := lg.Replay(func(rec *wal.Record) error {
			if rec.Kind != wal.RecCommit || rec.Version <= snap.Version {
				return nil
			}
			ul, derr := parsePUL(rec.PUL, s.Store)
			if derr != nil {
				return fmt.Errorf("wal: replaying commit v%d: %w", rec.Version, derr)
			}
			if aerr := interp.ApplyUpdates(s.Store, ul); aerr != nil {
				return fmt.Errorf("wal: replaying commit v%d: %w", rec.Version, aerr)
			}
			if got := s.Store.Version(); got != rec.Version {
				return fmt.Errorf("wal: replay fence: store at v%d after commit logged as v%d", got, rec.Version)
			}
			replayed++
			return nil
		})
		if err != nil {
			lg.Close()
			return recovered, err
		}
		cfg.Metrics.CountReplayed(replayed)
	} else {
		if lg.Newest() > base {
			lg.Close()
			return false, fmt.Errorf("wal: %s holds commits through v%d but no snapshot", cfg.Dir, lg.Newest())
		}
		// fresh enable: the current in-memory state becomes snapshot zero,
		// so recovery always has a floor to replay from
		if werr := wal.WriteSnapshot(cfg.Dir, s.buildSnapshot()); werr != nil {
			lg.Close()
			return false, werr
		}
		cfg.Metrics.CountSnapshot()
	}
	lg.SetBase(base)
	s.wal = lg
	s.walMetrics = cfg.Metrics
	s.snapBytes = cfg.SnapshotBytes
	return recovered, nil
}

// WAL exposes the peer's log (nil when durability is off) for tests and
// the shutdown path.
func (s *Server) WAL() *wal.Log { return s.wal }

// SetWALMetrics attaches (or swaps) the WAL metric sink after EnableWAL
// — for deployments that build their observability registry after the
// cluster (tests, the obs smoke) instead of threading it through
// WALConfig.
func (s *Server) SetWALMetrics(m *wal.Metrics) {
	s.walMetrics = m
	if s.wal != nil {
		s.wal.Metrics = m
	}
}

// CloseWAL flushes and closes the log (idempotent).
func (s *Server) CloseWAL() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Close()
}

// applyDurable applies one transaction's pending updates and makes them
// durable before returning: apply to memory and enqueue the commit
// record — carrying the exact post-apply version, the same value the
// coordinator's replica fence compares — under the commit lock (so the
// log is in apply order), then wait for the covering group-commit fsync
// outside it (so concurrent transactions share one flush).
func (s *Server) applyDurable(qid string, pul *interp.UpdateList) (int64, error) {
	s.iso.commitMu.Lock()
	if pul.Empty() {
		v := s.Store.Version()
		s.iso.commitMu.Unlock()
		return v, nil
	}
	if err := interp.ApplyUpdates(s.Store, pul); err != nil {
		s.iso.commitMu.Unlock()
		return 0, err
	}
	v := s.Store.Version()
	var seq uint64
	if s.wal != nil {
		var err error
		seq, err = s.wal.Enqueue(&wal.Record{
			Kind: wal.RecCommit, Version: v, QID: qid,
			PUL: []byte(xdm.SerializeNode(EncodePUL(pul))),
		})
		if err != nil {
			// applied in memory but not loggable: the sticky log error
			// fails this and every later commit (fail closed)
			s.iso.commitMu.Unlock()
			return 0, err
		}
	}
	s.iso.commitMu.Unlock()
	if s.wal != nil {
		if err := s.wal.WaitDurable(seq); err != nil {
			return 0, err
		}
		s.maybeSnapshot()
	}
	return v, nil
}

// logPrepare records a prepared transaction's PUL before the Prepare
// ack leaves this peer. Enqueued, not fsync'd: recovery replays only
// commit records — a crashed participant loses its prepared in-memory
// state regardless, and the in-doubt transaction resolves through the
// coordinator's abort path or the queryID timeout, never through this
// record. Keeping the prepare record off the forced-flush path spares
// every multi-shard update one fsync per participant; the record still
// reaches disk with the next commit's group flush (or Close), where it
// documents the transaction's history for forensics.
func (s *Server) logPrepare(qid string, pulNode *xdm.Node) error {
	if s.wal == nil || pulNode == nil {
		return nil
	}
	_, err := s.wal.Enqueue(&wal.Record{
		Kind: wal.RecPrepare, QID: qid,
		PUL: []byte(xdm.SerializeNode(pulNode)),
	})
	return err
}

// logAbort records a rollback (documentation for in-doubt transactions;
// recovery ignores it, so it rides the next group flush like prepare
// records do).
func (s *Server) logAbort(qid string) {
	if s.wal == nil {
		return
	}
	s.wal.Enqueue(&wal.Record{Kind: wal.RecAbort, QID: qid})
}

// maybeSnapshot writes a snapshot (and truncates covered segments) once
// enough record bytes accumulated since the last one.
func (s *Server) maybeSnapshot() {
	limit := s.snapBytes
	if limit <= 0 {
		limit = DefaultSnapshotBytes
	}
	if s.wal.AppendedBytes() < limit {
		return
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.wal.AppendedBytes() < limit {
		return // a concurrent snapshot already reset the counter
	}
	s.SnapshotWAL()
}

// SnapshotWAL writes a store snapshot now and truncates every closed
// segment it covers, bounding the next recovery's replay length.
func (s *Server) SnapshotWAL() error {
	if s.wal == nil {
		return nil
	}
	snap := s.buildSnapshot()
	if err := wal.WriteSnapshot(s.wal.Dir(), snap); err != nil {
		return err
	}
	s.walMetrics.CountSnapshot()
	return s.wal.TruncateThrough(snap.Version)
}

// buildSnapshot serializes one consistent store state plus the shard
// identity that must survive a restart.
func (s *Server) buildSnapshot() *wal.Snapshot {
	sn := s.Store.Snapshot()
	out := &wal.Snapshot{
		Version: sn.Version(),
		Shard:   s.Shard, Shards: s.Shards, Ranges: s.ShardRanges,
		Docs: make(map[string]string),
	}
	for _, name := range sn.Names() {
		doc, _ := sn.Get(name)
		out.Docs[name] = xdm.SerializeNode(doc)
	}
	return out
}

// parsePUL decodes a logged <xrpc:pending-updates> payload, resolving
// targets against docs (the replaying store's current state).
func parsePUL(pulXML []byte, docs interp.DocResolver) (*interp.UpdateList, error) {
	if len(pulXML) == 0 {
		return nil, fmt.Errorf("empty PUL payload")
	}
	nodes, err := xdm.ParseFragment(string(pulXML))
	if err != nil {
		return nil, err
	}
	for _, n := range nodes {
		if n.Kind == xdm.ElementNode && n.Name == pulRootName {
			return DecodePUL(n, docs)
		}
	}
	return nil, fmt.Errorf("payload holds no <%s> element", pulRootName)
}

// ---------------------------------------------------------------- resync

// serveSyncFrom answers the syncFrom system verb on a primary: ship
// every commit record after the follower's version, or — when the log
// was truncated past it, the follower diverged (since = -1), or this
// peer has no log — one full snapshot of the current state. The reply
// is a flat sequence: mode, current version, then (version, pulXML)
// pairs for "log" or (name, docXML) pairs for "snap".
func (s *Server) serveSyncFrom(since int64) (xdm.Sequence, error) {
	// the commit lock freezes the (version, log) pair: nothing commits
	// between reading the version and listing the records through it
	s.iso.commitMu.Lock()
	sn := s.Store.Snapshot()
	var recs []*wal.Record
	complete := false
	if s.wal != nil && since >= 0 {
		var err error
		recs, complete, err = s.wal.CommitsSince(since)
		if err != nil {
			s.iso.commitMu.Unlock()
			return nil, err
		}
	}
	s.iso.commitMu.Unlock()
	s.walMetrics.CountResync()
	if complete {
		seq := xdm.Sequence{xdm.String("log"), xdm.Integer(sn.Version())}
		for _, rec := range recs {
			seq = append(seq, xdm.Integer(rec.Version), xdm.String(string(rec.PUL)))
		}
		return seq, nil
	}
	seq := xdm.Sequence{xdm.String("snap"), xdm.Integer(sn.Version())}
	for _, name := range sn.Names() {
		doc, _ := sn.Get(name)
		seq = append(seq, xdm.String(name), xdm.String(xdm.SerializeNode(doc)))
	}
	return seq, nil
}

// ResyncFrom catches this (demoted) replica up to primary: rounds of
// syncFrom, applying shipped commit records durably through the local
// log, falling back to a full snapshot transfer when the primary's log
// no longer covers our version or the shipped records do not fence
// cleanly (divergence). It returns the final store version once it has
// caught up to a version the primary reported.
func (s *Server) ResyncFrom(primary string) (int64, error) {
	if s.NewRPC == nil {
		return 0, xdm.NewError("XRPC0009", "resyncFrom: peer has no RPC factory")
	}
	rpc, _ := s.NewRPC(nil)
	forceSnap := false
	const maxRounds = 8
	for round := 0; round < maxRounds; round++ {
		since := s.Store.Version()
		if forceSnap {
			since = -1
		}
		res, err := rpc.Call(primary, &interp.CallRequest{
			ModuleURI: SystemModule, Func: "syncFrom", Arity: 1,
			Args: []xdm.Sequence{{xdm.Integer(since)}},
		})
		if err != nil {
			return 0, err
		}
		mode, curV, pairs, err := parseSyncReply(res)
		if err != nil {
			return 0, err
		}
		s.walMetrics.CountResync()
		switch mode {
		case "snap":
			if err := s.adoptSnapshot(pairs, curV); err != nil {
				return 0, err
			}
			forceSnap = false
		case "log":
			if err := s.applyShipped(pairs); err != nil {
				// a record that does not decode or fence against our state
				// proves divergence: adopt a full snapshot instead
				forceSnap = true
				continue
			}
		default:
			return 0, xdm.Errorf("XRPC0009", "syncFrom: unknown mode %q", mode)
		}
		if v := s.Store.Version(); v >= curV {
			return v, nil
		}
		// the primary committed more while we transferred: next round
		// ships the remainder
	}
	return 0, xdm.Errorf("XRPC0009", "resyncFrom %s: not converged after %d rounds", primary, maxRounds)
}

// adoptSnapshot replaces the local state with a transferred snapshot at
// version. The local log restarts empty (Reset) before the durable
// snapshot is written: a crash between the two recovers the previous
// snapshot with nothing to replay — stale but consistent, and the next
// resync repairs it.
func (s *Server) adoptSnapshot(pairs xdm.Sequence, version int64) error {
	docs := make(map[string]*xdm.Node, len(pairs)/2)
	raw := make(map[string]string, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		name := pairs[i].StringValue()
		xml := pairs[i+1].StringValue()
		doc, err := xdm.ParseDocument(name, xml)
		if err != nil {
			return xdm.Errorf("XRPC0009", "snapshot transfer doc %s: %v", name, err)
		}
		docs[name] = doc
		raw[name] = xml
	}
	s.iso.commitMu.Lock()
	defer s.iso.commitMu.Unlock()
	s.Store.Restore(docs, version)
	if s.wal != nil {
		if err := s.wal.Reset(version); err != nil {
			return err
		}
		if err := wal.WriteSnapshot(s.wal.Dir(), &wal.Snapshot{
			Version: version,
			Shard:   s.Shard, Shards: s.Shards, Ranges: s.ShardRanges,
			Docs: raw,
		}); err != nil {
			return err
		}
		s.walMetrics.CountSnapshot()
	}
	return nil
}

// applyShipped applies (version, pulXML) pairs from a log transfer in
// order, each through the durable commit path with its version fence
// checked; records at or below our version are skipped (overlap from a
// racing round).
func (s *Server) applyShipped(pairs xdm.Sequence) error {
	for i := 0; i+1 < len(pairs); i += 2 {
		version, ok := itemInt(pairs[i])
		if !ok {
			return xdm.Errorf("XRPC0009", "log transfer: bad version item %q", pairs[i].StringValue())
		}
		pulXML := pairs[i+1].StringValue()
		s.iso.commitMu.Lock()
		if s.Store.Version() >= version {
			s.iso.commitMu.Unlock()
			continue
		}
		ul, err := parsePUL([]byte(pulXML), s.Store)
		if err == nil {
			err = interp.ApplyUpdates(s.Store, ul)
		}
		if err == nil {
			if got := s.Store.Version(); got != version {
				err = xdm.Errorf("XRPC0009", "resync fence: store at v%d after shipped commit v%d", got, version)
			}
		}
		if err != nil {
			s.iso.commitMu.Unlock()
			return err
		}
		var seq uint64
		if s.wal != nil {
			seq, err = s.wal.Enqueue(&wal.Record{
				Kind: wal.RecCommit, Version: version, PUL: []byte(pulXML),
			})
		}
		s.iso.commitMu.Unlock()
		if err != nil {
			return err
		}
		if s.wal != nil {
			if err := s.wal.WaitDurable(seq); err != nil {
				return err
			}
		}
		s.walMetrics.CountReplayed(1)
	}
	return nil
}

// parseSyncReply splits a syncFrom reply into mode, current version,
// and the payload pairs.
func parseSyncReply(res xdm.Sequence) (mode string, curV int64, pairs xdm.Sequence, err error) {
	if len(res) < 2 {
		return "", 0, nil, xdm.Errorf("XRPC0009", "syncFrom reply too short (%d items)", len(res))
	}
	mode = res[0].StringValue()
	v, ok := itemInt(res[1])
	if !ok {
		return "", 0, nil, xdm.Errorf("XRPC0009", "syncFrom reply: bad version item %q", res[1].StringValue())
	}
	return mode, v, res[2:], nil
}

// itemInt extracts an integer item (tolerating string-typed transport).
func itemInt(it xdm.Item) (int64, bool) {
	if n, ok := it.(xdm.Integer); ok {
		return int64(n), true
	}
	v, err := strconv.ParseInt(strings.TrimSpace(it.StringValue()), 10, 64)
	return v, err == nil
}

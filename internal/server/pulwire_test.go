package server

import (
	"testing"

	"xrpc/internal/interp"
	"xrpc/internal/modules"
	"xrpc/internal/soap"
	"xrpc/internal/store"
	"xrpc/internal/xdm"
)

const filmDB = `<films>
<film><name>The Rock</name><actor>Sean Connery</actor></film>
<film><name>Goldfinger</name><actor>Sean Connery</actor></film>
</films>`

// collectPUL runs an updating query against a fresh store and returns
// the pending update list it produced (plus the store).
func collectPUL(t *testing.T, query string) (*interp.UpdateList, *store.Store) {
	t.Helper()
	st := store.New()
	if err := st.LoadXML("filmDB.xml", filmDB); err != nil {
		t.Fatal(err)
	}
	eng := interp.New(st, modules.NewRegistry(), nil)
	c, err := eng.Compile(query)
	if err != nil {
		t.Fatal(err)
	}
	_, pul, err := c.Eval(&interp.EvalOptions{CollectUpdates: true})
	if err != nil {
		t.Fatal(err)
	}
	return pul, st
}

// TestPULWireRoundTrip pins the replica-replication contract: a PUL
// encoded at the primary and decoded against an identical tree (the
// replica's snapshot) applies to the same effect — byte-identical
// documents on both sides.
func TestPULWireRoundTrip(t *testing.T) {
	queries := []string{
		`insert node <film><name>Dr. No</name><actor>Sean Connery</actor></film>
		 into doc("filmDB.xml")/films`,
		`delete node doc("filmDB.xml")//film[name="The Rock"]`,
		`replace value of node doc("filmDB.xml")//film[1]/name with "Renamed <Film> 2"`,
		`rename node doc("filmDB.xml")//film[2]/actor as "star"`,
		`(insert node <film><name>A</name><actor>B</actor></film> into doc("filmDB.xml")/films,
		  replace value of node doc("filmDB.xml")//film[1]/name with "")`,
	}
	for _, q := range queries {
		pul, primary := collectPUL(t, q)
		if pul.Empty() {
			t.Fatalf("query produced no pending updates: %s", q)
		}
		pul.SetSeqBase(3) // exercise seq round-tripping

		// the wire node survives a SOAP round trip (it travels inside a
		// Prepare response / AdoptPUL parameter)
		wire := EncodePUL(pul)
		resp := soap.EncodeResponse(&soap.Response{
			Module: WSATModule, Method: "Prepare",
			Results: []xdm.Sequence{{xdm.String("prepared"), wire}},
		})
		decodedResp, err := soap.DecodeResponse(resp)
		if err != nil {
			t.Fatal(err)
		}
		shipped, ok := decodedResp.Results[0][1].(*xdm.Node)
		if !ok {
			t.Fatal("PUL did not survive the SOAP round trip as a node")
		}

		// replica: identical initial tree, decode against its snapshot
		replica := store.New()
		if err := replica.LoadXML("filmDB.xml", filmDB); err != nil {
			t.Fatal(err)
		}
		snap := replica.Snapshot()
		got, err := DecodePUL(shipped, snap)
		if err != nil {
			t.Fatalf("DecodePUL(%s): %v", q, err)
		}

		if err := interp.ApplyUpdates(primary, pul); err != nil {
			t.Fatal(err)
		}
		if err := interp.ApplyUpdates(replica, got); err != nil {
			t.Fatal(err)
		}
		pd, _ := primary.Get("filmDB.xml")
		rd, _ := replica.Get("filmDB.xml")
		if xdm.SerializeNode(pd) != xdm.SerializeNode(rd) {
			t.Fatalf("replica diverged from primary after PUL round trip\nquery: %s\nprimary: %s\nreplica: %s",
				q, xdm.SerializeNode(pd), xdm.SerializeNode(rd))
		}
		if pv, rv := primary.Version(), replica.Version(); pv != rv {
			t.Fatalf("version fence would fire on an identical commit: primary %d, replica %d", pv, rv)
		}
	}
}

func TestDecodePULRejectsMisaimedTargets(t *testing.T) {
	pul, _ := collectPUL(t, `delete node doc("filmDB.xml")//film[1]`)
	wire := EncodePUL(pul)

	// a replica that never loaded the document must refuse
	empty := store.New()
	if _, err := DecodePUL(wire, empty.Snapshot()); err == nil {
		t.Fatal("adopted a PUL for a document the replica does not hold")
	}

	// a replica with a diverged (smaller) tree must refuse an
	// out-of-range ordinal
	tiny := store.New()
	if err := tiny.LoadXML("filmDB.xml", "<films/>"); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePUL(wire, tiny.Snapshot()); err == nil {
		t.Fatal("adopted a PUL whose target ordinal is absent from the replica tree")
	}

	// garbage roots are rejected
	junk := xdm.NewElement("not-a-pul")
	junk.Seal()
	if _, err := DecodePUL(junk, empty.Snapshot()); err == nil {
		t.Fatal("accepted a non-PUL element")
	}
}

package server

import (
	"io"
	"log/slog"
	"strings"
	"testing"
	"time"

	"xrpc/internal/netsim"
	"xrpc/internal/obs"
	"xrpc/internal/soap"
	"xrpc/internal/xdm"
)

// TestInstrumentationAddsNoAllocs pins the cost of attaching metrics and
// a (non-firing) slow-query log to the buffered request path: the
// instrumented server must allocate no more per request than the bare
// one. The nil-safe instruments make the uninstrumented path free; this
// guards the instrumented fast path — atomic counters, pre-resolved
// label series, and a threshold gate that keeps slow-log attribute
// building off fast requests.
func TestInstrumentationAddsNoAllocs(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	y := newPeer(t, "xrpc://y.example.org", filmDBY, net)
	req := &soap.Request{
		Module: "films", Method: "filmsByActor", Arity: 1,
		Location: "http://x.example.org/film.xq",
		Calls:    [][]xdm.Sequence{{{xdm.String("Sean Connery")}}},
	}
	body := soap.EncodeRequest(req)
	run := func() float64 {
		return testing.AllocsPerRun(50, func() {
			resp, err := y.server.HandleXRPC("/xrpc", body)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(string(resp), "Fault") {
				t.Fatalf("faulted: %s", resp)
			}
		})
	}
	base := run()

	reg := obs.NewRegistry()
	y.server.Metrics = NewMetrics(reg)
	y.server.RegisterCacheMetrics(reg)
	y.server.SlowLog = obs.NewSlowLog(
		slog.New(slog.NewTextHandler(io.Discard, nil)), time.Hour)
	// warm the per-method counter series so its one-time registration
	// does not count against the steady state
	if _, err := y.server.HandleXRPC("/xrpc", body); err != nil {
		t.Fatal(err)
	}
	instr := run()
	if instr-base >= 1 {
		t.Fatalf("instrumentation added allocations: %.1f -> %.1f per request", base, instr)
	}
	if n := reg.MustGather("xrpc_server_requests_total", obs.Label{Key: "method", Value: "filmsByActor"}); n < 51 {
		t.Fatalf("requests counter = %v, want >= 51", n)
	}
}

package server

import (
	"strconv"
	"strings"
	"sync/atomic"

	"xrpc/internal/cache"
	"xrpc/internal/interp"
	"xrpc/internal/soap"
	"xrpc/internal/xdm"
)

// versionPrefix tags the commit-fence version item appended to the
// shardInfo response. It deliberately does not parse as a KeyRange
// descriptor (those are quoted-prefix forms), so pre-existing shardInfo
// consumers skip it.
const versionPrefix = "version="

// VersionItem renders a store version as its shardInfo metadata item.
func VersionItem(v int64) string {
	return versionPrefix + strconv.FormatInt(v, 10)
}

// ParseVersionItem recognizes a shardInfo version item, returning the
// version it carries. The coordinator's merged-result cache uses this
// to revalidate a cached entry with one cheap shardInfo round instead
// of re-executing the query.
func ParseVersionItem(s string) (int64, bool) {
	if !strings.HasPrefix(s, versionPrefix) {
		return 0, false
	}
	v, err := strconv.ParseInt(s[len(versionPrefix):], 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// generationPrefix tags the registry-generation item appended to the
// shardInfo response next to the version item. Module re-registration
// changes semantics without any store write, so a coordinator fencing
// cached results on store versions alone would serve stale data across
// a Register; the generation closes that hole.
const generationPrefix = "generation="

// GenerationItem renders a module-registry generation as its shardInfo
// metadata item.
func GenerationItem(g int64) string {
	return generationPrefix + strconv.FormatInt(g, 10)
}

// ParseGenerationItem recognizes a shardInfo registry-generation item.
func ParseGenerationItem(s string) (int64, bool) {
	if !strings.HasPrefix(s, generationPrefix) {
		return 0, false
	}
	g, err := strconv.ParseInt(s[len(generationPrefix):], 10, 64)
	if err != nil {
		return 0, false
	}
	return g, true
}

// DefaultRespCacheBytes bounds the per-shard response cache when a
// caller enables it without choosing a size.
const DefaultRespCacheBytes = 32 << 20

// RespCache is the Tier-1 per-shard response cache: each call of a
// read-only bulk request maps to one entry whose key is
// (registry generation, moduleURI, method, canonical argument bytes)
// and whose value is the call's result already serialized as the
// encoder's <xrpc:sequence> bytes — a warm hit skips execution AND
// re-serialization, splicing the stored bytes into the envelope via
// Response.Raw.
//
// The fence is the snapshot's store.Version: every commit (2PC apply,
// PUL adopt, direct R_Fu apply) advances it by exactly one step, so the
// first post-commit lookup evicts exactly the stale entries and
// repopulates from fresh execution. Entries are LRU-bounded by bytes
// and count.
type RespCache struct {
	lru *cache.LRU
}

// NewRespCache builds a response cache bounded by maxBytes (0 =
// DefaultRespCacheBytes) and maxEntries (0 = unbounded count).
func NewRespCache(maxBytes int64, maxEntries int) *RespCache {
	if maxBytes <= 0 {
		maxBytes = DefaultRespCacheBytes
	}
	return &RespCache{lru: cache.New(maxBytes, maxEntries)}
}

// Stats snapshots hit/miss/eviction counters and current size.
func (rc *RespCache) Stats() cache.Stats { return rc.lru.Stats() }

// Clear drops every entry (counters are preserved).
func (rc *RespCache) Clear() { rc.lru.Clear() }

// respKey renders one call's cache key. The arguments are serialized
// with the same pooled encoder the response path uses, so two calls
// have equal keys exactly when the wire form of their arguments is
// identical. The registry generation is part of the key (module
// re-registration changes semantics without a store write); the store
// version is the LRU's fence tag, not part of the key.
func respKey(gen int64, module, method string, args []xdm.Sequence) string {
	enc := soap.NewEncoder()
	defer enc.Release()
	for _, seq := range args {
		enc.BeginSequence()
		for _, it := range seq {
			enc.EncodeItem(it)
		}
		enc.EndSequence()
	}
	key := make([]byte, 0, len(module)+len(method)+len(enc.Bytes())+24)
	key = strconv.AppendInt(key, gen, 10)
	key = append(key, 0)
	key = append(key, module...)
	key = append(key, 0)
	key = append(key, method...)
	key = append(key, 0)
	key = append(key, enc.Bytes()...)
	return string(key)
}

// countingRPC wraps the per-request nested-call client so the cache can
// tell whether execution left this peer: results that depended on a
// nested RPC are not a pure function of local state and version, so
// they are never cached.
type countingRPC struct {
	rpc  interp.RPCCaller
	used atomic.Bool
}

func (c *countingRPC) Call(dest string, req *interp.CallRequest) (xdm.Sequence, error) {
	c.used.Store(true)
	return c.rpc.Call(dest, req)
}

// handleCached serves a no-queryID request through the response cache:
// hits are answered from stored bytes, misses execute against a pinned
// snapshot and populate. Mixed requests execute only the missing calls.
func (s *Server) handleCached(req *soap.Request, body []byte, meta *reqMeta) (*soap.Response, error) {
	// the snapshot pins both the data and the version the served (and
	// populated) results are valid at; a commit landing mid-request
	// steps the live version but not this snapshot, so entries written
	// under ver stay consistent with the data they were computed from
	snap := s.Store.Snapshot()
	ver := snap.Version()
	var gen int64
	if s.Registry != nil {
		gen = s.Registry.Generation()
	}

	raw := make([][]byte, len(req.Calls))
	var missing []int
	for ci, call := range req.Calls {
		if v, ok := s.RespCache.lru.Get(respKey(gen, req.Module, req.Method, call), ver); ok {
			raw[ci] = v.([]byte)
		} else {
			missing = append(missing, ci)
		}
	}
	meta.usedCache = true
	meta.cacheHits = len(req.Calls) - len(missing)
	meta.cacheMiss = len(missing)
	if len(missing) == 0 {
		return &soap.Response{Module: req.Module, Method: req.Method, Raw: raw}, nil
	}

	// execute only the cache-missing calls, as one sub-request
	sub := *req
	if len(missing) < len(req.Calls) {
		sub.Calls = make([][]xdm.Sequence, len(missing))
		for i, ci := range missing {
			sub.Calls[i] = req.Calls[ci]
		}
		if req.SeqNrs != nil {
			sub.SeqNrs = make([]int64, len(missing))
			for i, ci := range missing {
				sub.SeqNrs[i] = req.SeqNrs[ci]
			}
		}
	}

	var rpc interp.RPCCaller
	var counter *countingRPC
	peers := func() []string { return nil }
	if s.NewRPC != nil {
		rpc, peers = s.NewRPC(req.QueryID)
		if rpc != nil {
			counter = &countingRPC{rpc: rpc}
			rpc = counter
		}
	}

	results, pul, stats, err := s.Exec.Execute(&sub, body, snap, rpc)
	if err != nil {
		return nil, err
	}
	if stats != nil {
		s.mu.Lock()
		s.LastStats = *stats
		s.mu.Unlock()
	}
	if !pul.Empty() {
		// immediate application (R_Fu); the PUL was collected against
		// the pinned snapshot, exactly like the uncached path collects
		// against pre-request state
		if err := interp.ApplyUpdates(s.Store, pul); err != nil {
			return nil, err
		}
	}
	peerList := peers()

	// a result is cacheable only when it is a pure function of
	// (module generation, local data at ver, arguments): no pending
	// updates, no nested RPC, no participating-peers piggyback
	populate := pul.Empty() && (counter == nil || !counter.used.Load()) && len(peerList) == 0

	resp := &soap.Response{Module: req.Module, Method: req.Method, Raw: raw, Peers: peerList}
	for i, ci := range missing {
		b := encodeSequence(results[i])
		resp.Raw[ci] = b
		if populate {
			key := respKey(gen, req.Module, req.Method, req.Calls[ci])
			s.RespCache.lru.Put(key, b, int64(len(key)+len(b)), ver)
		}
	}
	return resp, nil
}

// encodeSequence renders one result sequence exactly as the response
// encoder would — the bytes RawSequence later splices back verbatim.
func encodeSequence(seq xdm.Sequence) []byte {
	enc := soap.NewEncoder()
	defer enc.Release()
	enc.BeginSequence()
	for _, it := range seq {
		enc.EncodeItem(it)
	}
	enc.EndSequence()
	return enc.Copy()
}

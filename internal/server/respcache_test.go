package server

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"xrpc/internal/client"
	"xrpc/internal/netsim"
	"xrpc/internal/xdm"
)

// respCacheFixtures are read-only bulk requests spanning the fixture
// modules: multi-call bulks, empty results, mixed item types.
func respCacheFixtures() []*client.BulkRequest {
	return []*client.BulkRequest{
		{
			ModuleURI: "films", AtHint: "http://x.example.org/film.xq",
			Func: "filmsByActor", Arity: 1,
			Calls: [][]xdm.Sequence{
				{{xdm.String("Sean Connery")}},
				{{xdm.String("Gerard Depardieu")}},
				{{xdm.String("Nobody")}},
			},
		},
		{
			ModuleURI: "test", Func: "echo", Arity: 1,
			Calls: [][]xdm.Sequence{
				{{xdm.String("a"), xdm.Integer(42), xdm.Boolean(true), xdm.Double(2.5)}},
				{{}},
			},
		},
		{
			ModuleURI: "test", Func: "echoVoid", Arity: 0,
			Calls: [][]xdm.Sequence{{}},
		},
	}
}

// TestRespCacheByteIdentity: every response served through the cache —
// the populating miss, the warm hit, and the partial hit — must be
// byte-identical to an uncached peer's response, fixture by fixture.
func TestRespCacheByteIdentity(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	newPeer(t, "xrpc://cold", filmDBY, net)
	warm := newPeer(t, "xrpc://warm", filmDBY, net)
	warm.server.RespCache = NewRespCache(0, 0)

	cl := client.New(net)
	for fi, br := range respCacheFixtures() {
		enc := cl.EncodeBulk(br)
		body := enc.Copy()
		enc.Release()
		want, err := net.Send("xrpc://cold", "/xrpc", body)
		if err != nil {
			t.Fatalf("fixture %d cold: %v", fi, err)
		}
		for round := 0; round < 3; round++ {
			got, err := net.Send("xrpc://warm", "/xrpc", body)
			if err != nil {
				t.Fatalf("fixture %d round %d: %v", fi, round, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("fixture %d round %d: cached response differs from cold\ncold: %s\nwarm: %s",
					fi, round, want, got)
			}
		}
	}
	st := warm.server.RespCache.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("cache was not exercised: %+v", st)
	}

	// partial hit: a bulk whose call set overlaps an already-cached one
	// executes only the new call and still matches the cold peer
	mixed := &client.BulkRequest{
		ModuleURI: "films", AtHint: "http://x.example.org/film.xq",
		Func: "filmsByActor", Arity: 1,
		Calls: [][]xdm.Sequence{
			{{xdm.String("Sean Connery")}}, // cached above
			{{xdm.String("Julie Andrews")}}, // never asked before
		},
	}
	enc := cl.EncodeBulk(mixed)
	body := enc.Copy()
	enc.Release()
	want, err := net.Send("xrpc://cold", "/xrpc", body)
	if err != nil {
		t.Fatal(err)
	}
	got, err := net.Send("xrpc://warm", "/xrpc", body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("partial-hit response differs from cold\ncold: %s\nwarm: %s", want, got)
	}
}

// TestRespCacheCommitInvalidates: a committed write steps the store
// version and the next read re-executes instead of serving the
// pre-commit entry — and serves exactly what an uncached peer would.
func TestRespCacheCommitInvalidates(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	cold := newPeer(t, "xrpc://cold", filmDBY, net)
	warm := newPeer(t, "xrpc://warm", filmDBY, net)
	warm.server.RespCache = NewRespCache(0, 0)
	_ = cold

	read := &client.BulkRequest{
		ModuleURI: "films", AtHint: "http://x.example.org/film.xq",
		Func: "filmsByActor", Arity: 1,
		Calls: [][]xdm.Sequence{{{xdm.String("James Dean")}}},
	}
	write := &client.BulkRequest{
		ModuleURI: "upd", Func: "addFilm", Arity: 2, Updating: true,
		Calls: [][]xdm.Sequence{{{xdm.String("East of Eden")}, {xdm.String("James Dean")}}},
	}

	cl := client.New(net)
	for _, dest := range []string{"xrpc://cold", "xrpc://warm"} {
		res, err := cl.CallBulk(dest, read)
		if err != nil {
			t.Fatal(err)
		}
		if len(res[0]) != 0 {
			t.Fatalf("%s: unexpected pre-write result %v", dest, res)
		}
	}
	// repeat read is a hit
	if _, err := cl.CallBulk("xrpc://warm", read); err != nil {
		t.Fatal(err)
	}
	st := warm.server.RespCache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("pre-write stats = %+v; want 1 hit, 1 miss", st)
	}

	// the write commits immediately (no queryID → rule R_Fu applies it
	// on the spot) and must advance the version on both peers
	for _, dest := range []string{"xrpc://cold", "xrpc://warm"} {
		if _, err := cl.CallBulk(dest, write); err != nil {
			t.Fatal(err)
		}
	}

	for _, dest := range []string{"xrpc://cold", "xrpc://warm"} {
		res, err := cl.CallBulk(dest, read)
		if err != nil {
			t.Fatal(err)
		}
		if got := xdm.SerializeSequence(res[0]); got != "<name>East of Eden</name>" {
			t.Fatalf("%s: post-write read = %q (stale cache?)", dest, got)
		}
	}
	st = warm.server.RespCache.Stats()
	if st.Evictions == 0 {
		t.Fatalf("version fence did not evict: %+v", st)
	}

	// note: the updating request itself ran through handleCached (it
	// carries no queryID) — its non-empty PUL must have kept it out of
	// the cache, so repeating it appends a second film
	if _, err := cl.CallBulk("xrpc://warm", write); err != nil {
		t.Fatal(err)
	}
	res, err := cl.CallBulk("xrpc://warm", read)
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0]) != 2 {
		t.Fatalf("second write served from cache: %d film(s), want 2", len(res[0]))
	}
}

// TestRespCacheModuleRegistrationInvalidates: re-registering a module
// changes semantics without a store write; the registry generation in
// the key must keep the old entry from serving.
func TestRespCacheModuleRegistrationInvalidates(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	p := newPeer(t, "xrpc://p", filmDBY, net)
	p.server.RespCache = NewRespCache(0, 0)
	p.reg.OnUpdate(p.exec.InvalidateModule)

	br := &client.BulkRequest{
		ModuleURI: "test", Func: "echo", Arity: 1,
		Calls: [][]xdm.Sequence{{{xdm.String("x")}}},
	}
	cl := client.New(net)
	res, err := cl.CallBulk("xrpc://p", br)
	if err != nil {
		t.Fatal(err)
	}
	if got := xdm.SerializeSequence(res[0]); got != "x" {
		t.Fatalf("echo = %q", got)
	}
	// redefine test:echo to decorate its argument
	redefined := `
module namespace tst="test";
declare function tst:echoVoid() { () };
declare function tst:echo($x as item()*) as item()* { ("got", $x) };`
	if err := p.reg.Register(redefined); err != nil {
		t.Fatal(err)
	}
	res, err = cl.CallBulk("xrpc://p", br)
	if err != nil {
		t.Fatal(err)
	}
	if got := xdm.SerializeSequence(res[0]); got != "got x" {
		t.Fatalf("post-reregistration echo = %q (stale response cache?)", got)
	}
}

// TestFunctionCacheLRUBound is the regression test for the unbounded
// function cache: plans stay within the configured entry cap however
// many module URIs cycle through.
func TestFunctionCacheLRUBound(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	p := newPeer(t, "xrpc://p", filmDBY, net)
	p.exec.SetPlanCacheLimits(0, 3)

	cl := client.New(net)
	for i := 0; i < 12; i++ {
		uri := fmt.Sprintf("churn%d", i)
		mod := fmt.Sprintf(`module namespace c="%s"; declare function c:n() { %d };`, uri, i)
		if err := p.reg.Register(mod); err != nil {
			t.Fatal(err)
		}
		res, err := cl.CallBulk("xrpc://p", &client.BulkRequest{
			ModuleURI: uri, Func: "n", Arity: 0, Calls: [][]xdm.Sequence{{}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := res[0][0].StringValue(); got != fmt.Sprint(i) {
			t.Fatalf("churn%d = %q", i, got)
		}
	}
	st := p.exec.PlanCacheStats()
	if st.Entries > 3 {
		t.Fatalf("plan cache grew past its entry cap: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions under churn: %+v", st)
	}
}

// TestInvalidateModuleGranularity: invalidating one module keeps every
// other module's plan warm.
func TestInvalidateModuleGranularity(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	p := newPeer(t, "xrpc://p", filmDBY, net)

	films := &client.BulkRequest{
		ModuleURI: "films", AtHint: "http://x.example.org/film.xq",
		Func: "filmsByActor", Arity: 1,
		Calls: [][]xdm.Sequence{{{xdm.String("Sean Connery")}}},
	}
	echo := &client.BulkRequest{
		ModuleURI: "test", Func: "echo", Arity: 1,
		Calls: [][]xdm.Sequence{{{xdm.String("x")}}},
	}
	cl := client.New(net)
	for _, br := range []*client.BulkRequest{films, echo} {
		if _, err := cl.CallBulk("xrpc://p", br); err != nil {
			t.Fatal(err)
		}
	}
	misses := p.exec.CacheMisses.Load()

	p.exec.InvalidateModule("test")

	hits := p.exec.CacheHits.Load()
	if _, err := cl.CallBulk("xrpc://p", films); err != nil {
		t.Fatal(err)
	}
	if got := p.exec.CacheHits.Load(); got != hits+1 {
		t.Fatalf("films plan was flushed too: hits %d → %d", hits, got)
	}
	if _, err := cl.CallBulk("xrpc://p", echo); err != nil {
		t.Fatal(err)
	}
	if got := p.exec.CacheMisses.Load(); got != misses+1 {
		t.Fatalf("test plan survived its invalidation: misses %d → %d", misses, got)
	}
}

// TestPlanCacheSharesEquivalentSources: the same module re-registered
// with different layout and comments keeps hitting the same plan (the
// normalized-text key), with zero recompilation.
func TestPlanCacheSharesEquivalentSources(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	p := newPeer(t, "xrpc://p", filmDBY, net)

	br := &client.BulkRequest{
		ModuleURI: "films", AtHint: "http://x.example.org/film.xq",
		Func: "filmsByActor", Arity: 1,
		Calls: [][]xdm.Sequence{{{xdm.String("Sean Connery")}}},
	}
	cl := client.New(net)
	if _, err := cl.CallBulk("xrpc://p", br); err != nil {
		t.Fatal(err)
	}
	misses := p.exec.CacheMisses.Load()

	variant := `module   namespace film="films";
(: layout variant of the film module :)
declare function film:filmsByActor($actor as xs:string) as node()*
{
  doc("filmDB.xml")//name[../actor=$actor]
};`
	if err := p.reg.Register(variant, "http://x.example.org/film.xq"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CallBulk("xrpc://p", br); err != nil {
		t.Fatal(err)
	}
	if got := p.exec.CacheMisses.Load(); got != misses {
		t.Fatalf("layout variant recompiled: misses %d → %d", misses, got)
	}
}

// TestRespCacheConcurrentReadsAndWrites drives concurrent cached reads
// against a stream of committed writes (run with -race). One writer
// commits sequentially and must read its own writes through the cache;
// readers racing it must observe monotonically non-decreasing state —
// the version fence may serve a slightly older committed version, but
// never travels backwards. (Concurrent *writers* to one document are
// outside the store's contract — XRPC serializes those with queryID'd
// 2PC — so the writer here is deliberately single.)
func TestRespCacheConcurrentReadsAndWrites(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	p := newPeer(t, "xrpc://p", filmDBY, net)
	p.server.RespCache = NewRespCache(0, 0)

	const writes = 50
	actor := "Race Actor"
	read := &client.BulkRequest{
		ModuleURI: "films", AtHint: "http://x.example.org/film.xq",
		Func: "filmsByActor", Arity: 1,
		Calls: [][]xdm.Sequence{{{xdm.String(actor)}}},
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := client.New(net)
			prev := -1
			for {
				select {
				case <-done:
					return
				default:
				}
				res, err := cl.CallBulk("xrpc://p", read)
				if err != nil {
					t.Error(err)
					return
				}
				if len(res[0]) < prev {
					t.Errorf("reader %d: films went backwards %d -> %d", g, prev, len(res[0]))
					return
				}
				prev = len(res[0])
			}
		}(g)
	}

	cl := client.New(net)
	for i := 0; i < writes; i++ {
		write := &client.BulkRequest{
			ModuleURI: "upd", Func: "addFilm", Arity: 2, Updating: true,
			Calls: [][]xdm.Sequence{{{xdm.String(fmt.Sprintf("Film %d", i))}, {xdm.String(actor)}}},
		}
		if _, err := cl.CallBulk("xrpc://p", write); err != nil {
			t.Fatal(err)
		}
		res, err := cl.CallBulk("xrpc://p", read)
		if err != nil {
			t.Fatal(err)
		}
		// read-your-writes through the cache: i+1 films by now
		if len(res[0]) != i+1 {
			t.Fatalf("after write %d read %d films", i, len(res[0]))
		}
	}
	close(done)
	wg.Wait()
}

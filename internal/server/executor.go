package server

import (
	"sync"
	"time"

	"xrpc/internal/interp"
	"xrpc/internal/modules"
	"xrpc/internal/soap"
	"xrpc/internal/xdm"
)

// NativeExecutor executes XRPC requests the way MonetDB/XQuery does (§3):
// the requested module is compiled into a prepared plan, cached in the
// function cache, and each call of a Bulk RPC is executed against it.
// With the cache disabled every request pays module translation time —
// the "No Function Cache" column of Table 2.
type NativeExecutor struct {
	Engine   *interp.Engine
	Registry *modules.Registry
	// CacheEnabled turns the function cache on (the default in
	// MonetDB/XQuery).
	CacheEnabled bool

	mu    sync.Mutex
	cache map[string]*interp.Compiled
	// CacheHits / CacheMisses for experiments.
	CacheHits   int64
	CacheMisses int64
}

// NewNativeExecutor builds an executor over an engine; the function
// cache starts enabled.
func NewNativeExecutor(e *interp.Engine, reg *modules.Registry) *NativeExecutor {
	return &NativeExecutor{Engine: e, Registry: reg, CacheEnabled: true, cache: map[string]*interp.Compiled{}}
}

// InvalidateCache clears all cached plans.
func (x *NativeExecutor) InvalidateCache() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.cache = map[string]*interp.Compiled{}
}

func (x *NativeExecutor) compiled(moduleURI string, atHint string) (*interp.Compiled, time.Duration, error) {
	if x.CacheEnabled {
		x.mu.Lock()
		c, ok := x.cache[moduleURI]
		x.mu.Unlock()
		if ok {
			x.mu.Lock()
			x.CacheHits++
			x.mu.Unlock()
			return c, 0, nil
		}
	}
	src, ok := x.Registry.Source(moduleURI)
	if !ok {
		// the canonical paper error: "could not load module!"
		return nil, 0, xdm.Errorf("XRPC0007", "could not load module! (%s at %s)", moduleURI, atHint)
	}
	start := time.Now()
	c, err := x.Engine.CompileModule(src)
	if err != nil {
		return nil, 0, err
	}
	compileTime := time.Since(start)
	x.mu.Lock()
	x.CacheMisses++
	if x.CacheEnabled {
		x.cache[moduleURI] = c
	}
	x.mu.Unlock()
	return c, compileTime, nil
}

// Execute implements Executor.
func (x *NativeExecutor) Execute(req *soap.Request, _ []byte, docs interp.DocResolver, rpc interp.RPCCaller) ([]xdm.Sequence, *interp.UpdateList, *interp.Stats, error) {
	c, compileTime, err := x.compiled(req.Module, req.Location)
	if err != nil {
		return nil, nil, nil, err
	}
	stats := &interp.Stats{Compile: compileTime}
	pul := &interp.UpdateList{}
	results := make([]xdm.Sequence, 0, len(req.Calls))
	execStart := time.Now()
	for ci, call := range req.Calls {
		seq, callPUL, err := c.CallFunction(req.Module, req.Method, call, &interp.EvalOptions{
			Docs:           docs,
			RPC:            rpc,
			CollectUpdates: true,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		results = append(results, seq)
		if req.SeqNrs != nil {
			// deterministic update order: tag this call's pending
			// updates with the call's original query position
			callPUL.SetSeqBase(req.SeqNrs[ci])
		}
		pul.Merge(callPUL)
	}
	stats.Exec = time.Since(execStart)
	return results, pul, stats, nil
}

package server

import (
	"sync"
	"sync/atomic"
	"time"

	"xrpc/internal/interp"
	"xrpc/internal/modules"
	"xrpc/internal/soap"
	"xrpc/internal/xdm"
)

// NativeExecutor executes XRPC requests the way MonetDB/XQuery does (§3):
// the requested module is compiled into a prepared plan, cached in the
// function cache, and each call of a Bulk RPC is executed against it.
// With the cache disabled every request pays module translation time —
// the "No Function Cache" column of Table 2.
//
// When Parallelism > 1 the calls of one read-only bulk request are
// evaluated by a bounded worker pool: Bulk RPC already amortizes network
// latency (the paper's contribution), and the pool additionally drains
// the batch across cores. Results keep their call-index order and the
// merged pending update list is byte-identical to sequential execution.
// Updating requests always run sequentially, preserving the paper's
// repeatable-read isolation semantics (§2.2).
type NativeExecutor struct {
	Engine   *interp.Engine
	Registry *modules.Registry
	// CacheEnabled turns the function cache on (the default in
	// MonetDB/XQuery).
	CacheEnabled bool
	// Parallelism bounds the worker pool that evaluates the calls of one
	// bulk request concurrently; values <= 1 mean sequential execution.
	// Configure before serving traffic.
	Parallelism int

	mu    sync.Mutex
	cache map[string]*interp.Compiled
	// CacheHits / CacheMisses for experiments (atomic: experiments read
	// them while concurrent requests execute).
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
}

// NewNativeExecutor builds an executor over an engine; the function
// cache starts enabled.
func NewNativeExecutor(e *interp.Engine, reg *modules.Registry) *NativeExecutor {
	return &NativeExecutor{Engine: e, Registry: reg, CacheEnabled: true, cache: map[string]*interp.Compiled{}}
}

// SetParallelism implements ParallelExecutor.
func (x *NativeExecutor) SetParallelism(n int) { x.Parallelism = n }

// InvalidateCache clears all cached plans.
func (x *NativeExecutor) InvalidateCache() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.cache = map[string]*interp.Compiled{}
}

func (x *NativeExecutor) compiled(moduleURI string, atHint string) (*interp.Compiled, time.Duration, error) {
	if x.CacheEnabled {
		x.mu.Lock()
		c, ok := x.cache[moduleURI]
		x.mu.Unlock()
		if ok {
			x.CacheHits.Add(1)
			return c, 0, nil
		}
	}
	src, ok := x.Registry.Source(moduleURI)
	if !ok {
		// the canonical paper error: "could not load module!"
		return nil, 0, xdm.Errorf("XRPC0007", "could not load module! (%s at %s)", moduleURI, atHint)
	}
	start := time.Now()
	c, err := x.Engine.CompileModule(src)
	if err != nil {
		return nil, 0, err
	}
	compileTime := time.Since(start)
	x.CacheMisses.Add(1)
	if x.CacheEnabled {
		x.mu.Lock()
		x.cache[moduleURI] = c
		x.mu.Unlock()
	}
	return c, compileTime, nil
}

// Execute implements Executor.
func (x *NativeExecutor) Execute(req *soap.Request, _ []byte, docs interp.DocResolver, rpc interp.RPCCaller) ([]xdm.Sequence, *interp.UpdateList, *interp.Stats, error) {
	c, compileTime, err := x.compiled(req.Module, req.Location)
	if err != nil {
		return nil, nil, nil, err
	}
	stats := &interp.Stats{Compile: compileTime}
	execStart := time.Now()

	arity := req.Arity
	if len(req.Calls) > 0 {
		arity = len(req.Calls[0])
	}
	// updating requests keep strictly sequential evaluation: the order
	// in which their pending updates are produced is the repeatable-read
	// contract of §2.2 (the request may also declare Updating itself).
	updating := req.Updating || c.FunctionUpdating(req.Module, req.Method, arity)
	workers := x.Parallelism
	if workers > len(req.Calls) {
		workers = len(req.Calls)
	}

	results := make([]xdm.Sequence, len(req.Calls))
	pulByCall := make([]*interp.UpdateList, len(req.Calls))
	runCall := func(ci int) error {
		seq, callPUL, err := c.CallFunction(req.Module, req.Method, req.Calls[ci], &interp.EvalOptions{
			Docs:           docs,
			RPC:            rpc,
			CollectUpdates: true,
		})
		if err != nil {
			return err
		}
		results[ci] = seq
		pulByCall[ci] = callPUL
		return nil
	}

	if workers <= 1 || len(req.Calls) < 2 || updating {
		for ci := range req.Calls {
			if err := runCall(ci); err != nil {
				return nil, nil, nil, err
			}
		}
	} else {
		errByCall := make([]error, len(req.Calls))
		// firstFailed tracks the lowest failing call index so far. Calls
		// above it are skipped — sequential execution would never reach
		// them — while lower-indexed calls still run, so the reported
		// error is exactly the one sequential execution returns.
		var firstFailed atomic.Int64
		firstFailed.Store(int64(len(req.Calls)))
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ci := range idx {
					if int64(ci) > firstFailed.Load() {
						continue
					}
					if err := runCall(ci); err != nil {
						errByCall[ci] = err
						for {
							cur := firstFailed.Load()
							if int64(ci) >= cur || firstFailed.CompareAndSwap(cur, int64(ci)) {
								break
							}
						}
					}
				}
			}()
		}
		for ci := range req.Calls {
			idx <- ci
		}
		close(idx)
		wg.Wait()
		if ff := firstFailed.Load(); ff < int64(len(req.Calls)) {
			return nil, nil, nil, errByCall[ff]
		}
	}

	// merge pending updates in call-index order: identical to the
	// sequential merge regardless of which worker finished first
	pul := &interp.UpdateList{}
	for ci, callPUL := range pulByCall {
		if req.SeqNrs != nil {
			// deterministic update order: tag this call's pending
			// updates with the call's original query position
			callPUL.SetSeqBase(req.SeqNrs[ci])
		}
		pul.Merge(callPUL)
	}
	stats.Exec = time.Since(execStart)
	return results, pul, stats, nil
}

package server

import (
	"sync"
	"sync/atomic"
	"time"

	"xrpc/internal/cache"
	"xrpc/internal/interp"
	"xrpc/internal/modules"
	"xrpc/internal/soap"
	"xrpc/internal/xdm"
	"xrpc/internal/xq"
)

// Function cache bounds: plans are closures over parsed modules, so the
// byte bound uses source length as the size proxy; the entry cap keeps
// hostile or churning module URIs from growing memory forever.
const (
	DefaultPlanCacheBytes   = 16 << 20
	DefaultPlanCacheEntries = 1024
)

// NativeExecutor executes XRPC requests the way MonetDB/XQuery does (§3):
// the requested module is compiled into a prepared plan, cached in the
// function cache, and each call of a Bulk RPC is executed against it.
// With the cache disabled every request pays module translation time —
// the "No Function Cache" column of Table 2.
//
// When Parallelism > 1 the calls of one read-only bulk request are
// evaluated by a bounded worker pool: Bulk RPC already amortizes network
// latency (the paper's contribution), and the pool additionally drains
// the batch across cores. Results keep their call-index order and the
// merged pending update list is byte-identical to sequential execution.
// Updating requests always run sequentially, preserving the paper's
// repeatable-read isolation semantics (§2.2).
type NativeExecutor struct {
	Engine   *interp.Engine
	Registry *modules.Registry
	// CacheEnabled turns the function cache on (the default in
	// MonetDB/XQuery).
	CacheEnabled bool
	// Parallelism bounds the worker pool that evaluates the calls of one
	// bulk request concurrently; values <= 1 mean sequential execution.
	// Configure before serving traffic.
	Parallelism int

	// plans is the function cache proper: compiled plans in a bounded
	// LRU keyed on normalized module source (xq.Normalize), so
	// textually-equivalent module texts — layout or comment variants —
	// share one compilation. byURI memoizes uri → (source, normalized
	// key) so the steady state costs one map probe and one string
	// compare, not a re-normalization per request.
	mu    sync.Mutex
	plans *cache.LRU
	byURI map[string]uriMemo
	// CacheHits / CacheMisses for experiments (atomic: experiments read
	// them while concurrent requests execute).
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
}

type uriMemo struct {
	src string // the registry source this memo was computed from
	key string // xq.Normalize(src)
}

// NewNativeExecutor builds an executor over an engine; the function
// cache starts enabled with the default bounds.
func NewNativeExecutor(e *interp.Engine, reg *modules.Registry) *NativeExecutor {
	return &NativeExecutor{
		Engine: e, Registry: reg, CacheEnabled: true,
		plans: cache.New(DefaultPlanCacheBytes, DefaultPlanCacheEntries),
		byURI: map[string]uriMemo{},
	}
}

// SetParallelism implements ParallelExecutor.
func (x *NativeExecutor) SetParallelism(n int) { x.Parallelism = n }

// SetPlanCacheLimits replaces the function cache with an empty one
// bounded by maxBytes of module source and maxEntries plans.
func (x *NativeExecutor) SetPlanCacheLimits(maxBytes int64, maxEntries int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.plans = cache.New(maxBytes, maxEntries)
	x.byURI = map[string]uriMemo{}
}

// PlanCacheStats snapshots the function cache (entries/bytes reflect
// live plans; hits/misses/evictions are cumulative).
func (x *NativeExecutor) PlanCacheStats() cache.Stats {
	x.mu.Lock()
	plans := x.plans
	x.mu.Unlock()
	st := plans.Stats()
	st.Hits = x.CacheHits.Load()
	st.Misses = x.CacheMisses.Load()
	return st
}

// InvalidateCache clears all cached plans.
func (x *NativeExecutor) InvalidateCache() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.plans.Clear()
	x.byURI = map[string]uriMemo{}
}

// InvalidateModule drops exactly the plans that depend on the given
// module URI — directly (compiled from it) or through an import — so a
// registry update to one module leaves every other module's plan warm.
func (x *NativeExecutor) InvalidateModule(uri string) {
	x.mu.Lock()
	delete(x.byURI, uri)
	plans := x.plans
	x.mu.Unlock()
	plans.RemoveFunc(func(_ string, val any) bool {
		for _, dep := range val.(*interp.Compiled).ModuleURIs() {
			if dep == uri {
				return true
			}
		}
		return false
	})
}

// planKey resolves a module URI to its cache key (normalized source),
// re-normalizing only when the registered source changed.
func (x *NativeExecutor) planKey(moduleURI, src string) string {
	x.mu.Lock()
	memo, ok := x.byURI[moduleURI]
	x.mu.Unlock()
	if ok && memo.src == src {
		return memo.key
	}
	key := xq.Normalize(src)
	x.mu.Lock()
	x.byURI[moduleURI] = uriMemo{src: src, key: key}
	x.mu.Unlock()
	return key
}

func (x *NativeExecutor) compiled(moduleURI string, atHint string) (*interp.Compiled, time.Duration, error) {
	src, ok := x.Registry.Source(moduleURI)
	if !ok {
		// the canonical paper error: "could not load module!"
		return nil, 0, xdm.Errorf("XRPC0007", "could not load module! (%s at %s)", moduleURI, atHint)
	}
	var key string
	if x.CacheEnabled {
		key = x.planKey(moduleURI, src)
		x.mu.Lock()
		plans := x.plans
		x.mu.Unlock()
		if c, ok := plans.Get(key, 0); ok {
			x.CacheHits.Add(1)
			return c.(*interp.Compiled), 0, nil
		}
	}
	start := time.Now()
	c, err := x.Engine.CompileModule(src)
	if err != nil {
		return nil, 0, err
	}
	compileTime := time.Since(start)
	x.CacheMisses.Add(1)
	if x.CacheEnabled {
		x.mu.Lock()
		plans := x.plans
		x.mu.Unlock()
		plans.Put(key, c, int64(len(src)), 0)
	}
	return c, compileTime, nil
}

// Execute implements Executor.
func (x *NativeExecutor) Execute(req *soap.Request, _ []byte, docs interp.DocResolver, rpc interp.RPCCaller) ([]xdm.Sequence, *interp.UpdateList, *interp.Stats, error) {
	c, compileTime, err := x.compiled(req.Module, req.Location)
	if err != nil {
		return nil, nil, nil, err
	}
	stats := &interp.Stats{Compile: compileTime}
	execStart := time.Now()

	arity := req.Arity
	if len(req.Calls) > 0 {
		arity = len(req.Calls[0])
	}
	// updating requests keep strictly sequential evaluation: the order
	// in which their pending updates are produced is the repeatable-read
	// contract of §2.2 (the request may also declare Updating itself).
	updating := req.Updating || c.FunctionUpdating(req.Module, req.Method, arity)
	workers := x.Parallelism
	if workers > len(req.Calls) {
		workers = len(req.Calls)
	}

	results := make([]xdm.Sequence, len(req.Calls))
	pulByCall := make([]*interp.UpdateList, len(req.Calls))
	runCall := func(ci int) error {
		seq, callPUL, err := c.CallFunction(req.Module, req.Method, req.Calls[ci], &interp.EvalOptions{
			Docs:           docs,
			RPC:            rpc,
			CollectUpdates: true,
		})
		if err != nil {
			return err
		}
		results[ci] = seq
		pulByCall[ci] = callPUL
		return nil
	}

	if workers <= 1 || len(req.Calls) < 2 || updating {
		for ci := range req.Calls {
			if err := runCall(ci); err != nil {
				return nil, nil, nil, err
			}
		}
	} else {
		errByCall := make([]error, len(req.Calls))
		// firstFailed tracks the lowest failing call index so far. Calls
		// above it are skipped — sequential execution would never reach
		// them — while lower-indexed calls still run, so the reported
		// error is exactly the one sequential execution returns.
		var firstFailed atomic.Int64
		firstFailed.Store(int64(len(req.Calls)))
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ci := range idx {
					if int64(ci) > firstFailed.Load() {
						continue
					}
					if err := runCall(ci); err != nil {
						errByCall[ci] = err
						for {
							cur := firstFailed.Load()
							if int64(ci) >= cur || firstFailed.CompareAndSwap(cur, int64(ci)) {
								break
							}
						}
					}
				}
			}()
		}
		for ci := range req.Calls {
			idx <- ci
		}
		close(idx)
		wg.Wait()
		if ff := firstFailed.Load(); ff < int64(len(req.Calls)) {
			return nil, nil, nil, errByCall[ff]
		}
	}

	// merge pending updates in call-index order: identical to the
	// sequential merge regardless of which worker finished first
	pul := &interp.UpdateList{}
	for ci, callPUL := range pulByCall {
		if req.SeqNrs != nil {
			// deterministic update order: tag this call's pending
			// updates with the call's original query position
			callPUL.SetSeqBase(req.SeqNrs[ci])
		}
		pul.Merge(callPUL)
	}
	stats.Exec = time.Since(execStart)
	return results, pul, stats, nil
}

package cluster

import (
	"fmt"
	"time"

	"xrpc/internal/client"
	"xrpc/internal/planner"
)

// planner.go is the coordinator half of the self-driving planner: it
// resolves each bulk request to a strategy decision before execution.
// Hand-written RouteSpecs stay authoritative — registering one is a
// semantic promise (see RouteSpec), and pruning under it can be
// load-bearing (a function may legitimately return non-empty on a
// non-owning shard, in which case only the pruned execution is the
// intended answer), so registered specs are never cost-downgraded to
// broadcast. Compiler-derived specs carry a proof that the function's
// result is empty whenever the key misses the shard, which makes
// pruned and broadcast byte-identical — and exactly that equivalence
// is what licenses the cost model to pick between them.

// planDecision is one request's resolved strategy.
type planDecision struct {
	// strategy is what executes: "broadcast", "pruned" (per-shard call
	// subsets), or "routed" (every call to at most one shard — the
	// degenerate pruned case the strategy counter reports separately).
	strategy string
	// source records where the route came from: "registered",
	// "derived", or "" when no spec applied.
	source string
	spec   *RouteSpec
	// parts is the per-shard partition when strategy != "broadcast".
	parts []*shardPart
	// est and estAlt are the cost model's estimates (seconds) for the
	// chosen strategy and the rejected alternative, for the slow-query
	// log's estimated-vs-actual line. Zero when no comparison ran.
	est, estAlt float64
}

func broadcastPlan(source string) *planDecision {
	return &planDecision{strategy: "broadcast", source: source}
}

// plan resolves the strategy for a read-only bulk request. It never
// produces a wrong route: registered specs are trusted as declared,
// derived specs are validated against the live table (container, key
// attribute, operator soundness) and rejected to broadcast — with a
// once-per-function warning — on any mismatch.
func (co *Coordinator) plan(br *client.BulkRequest) *planDecision {
	if spec, why := co.registeredSpec(br); spec != nil {
		if !co.Table.Prunable(spec.Doc, spec.Path) {
			co.warnInapplicable(br, fmt.Sprintf(
				"container %s %s has no keyed range metadata", spec.Doc, spec.Path))
			return broadcastPlan("registered")
		}
		return co.decide("registered", spec, br, false)
	} else if why != "" {
		co.warnInapplicable(br, why)
		return broadcastPlan("registered")
	}
	spec, why, analysed := co.derivedSpec(br)
	if !analysed {
		return broadcastPlan("") // underivable (or no planner): the documented fallback
	}
	if spec == nil {
		co.warnInapplicable(br, why)
		return broadcastPlan("derived")
	}
	return co.decide("derived", spec, br, true)
}

// derivedSpec asks the planner for a compiler-derived route key and
// validates it against the live routing table. analysed is false when
// there is no planner or no derivation (plain broadcast, no warning);
// a derivation that cannot apply returns (nil, reason, true).
func (co *Coordinator) derivedSpec(br *client.BulkRequest) (spec *RouteSpec, reason string, analysed bool) {
	p := co.Planner
	if p == nil {
		return nil, "", false
	}
	k, _, ok := p.KeyFor(br.ModuleURI, br.AtHint, br.Func)
	if !ok {
		return nil, "", false
	}
	if k.Param >= br.Arity {
		return nil, fmt.Sprintf("derived key parameter $%d outside request arity %d",
			k.Param, br.Arity), true
	}
	r, ok := co.Table.FindContainer(k.Doc, k.PathSuffix, k.Rooted)
	if !ok {
		return nil, fmt.Sprintf(
			"derived container %s %s does not resolve to the provably unique home of its elements (no, ambiguous, or unkeyed container match, or the element name occurs outside it)",
			k.Doc, k.PathSuffix), true
	}
	if r.KeyAttr != k.KeyAttr {
		return nil, fmt.Sprintf("derived key attribute @%s is not the container key @%s",
			k.KeyAttr, r.KeyAttr), true
	}
	if k.Op != "=" && !r.Lex {
		// range predicates compare in codepoint order; the shard bounds
		// are only codepoint-meaningful when the partitioner saw the
		// container's keys codepoint-sorted end to end (KeyRange.Lex)
		return nil, fmt.Sprintf(
			"range predicate on @%s needs codepoint-ordered keys (container %s %s is natural-ordered only)",
			k.KeyAttr, r.Doc, r.Path), true
	}
	return &RouteSpec{
		ModuleURI: br.ModuleURI, Func: br.Func,
		KeyArg: k.Param, Doc: r.Doc, Path: r.Path, Op: k.Op,
	}, "", true
}

// decide partitions the request under the spec and labels the result.
// For derived specs (costed) the cost model may still pick broadcast —
// sound because the derivation proves the two byte-identical; for
// registered specs the pruned execution always stands.
func (co *Coordinator) decide(source string, spec *RouteSpec, br *client.BulkRequest, costed bool) *planDecision {
	parts := co.partition(br, spec)
	d := &planDecision{source: source, spec: spec, parts: parts}
	// routed iff every call reached at most one shard — counted per
	// call, not in aggregate (one call on two shards plus one call with
	// zero candidates sums to len(Calls) but is still pruned)
	perCall := make([]int, len(br.Calls))
	for _, p := range parts {
		for _, g := range p.orig {
			perCall[g]++
		}
	}
	d.strategy = "routed"
	for _, c := range perCall {
		if c > 1 {
			d.strategy = "pruned"
			break
		}
	}
	var st *planner.Stats
	if co.Planner != nil {
		st = co.Planner.Stats
	}
	loads := make([]planner.ShardLoad, len(parts))
	for i, p := range parts {
		loads[i] = planner.ShardLoad{Shard: p.shard, Calls: len(p.br.Calls)}
	}
	d.est = st.EstimateScatter(loads, len(br.Calls), false)
	d.estAlt = st.EstimateBroadcast(co.Table.NumShards(), len(br.Calls))
	if costed && d.est > d.estAlt {
		return &planDecision{strategy: "broadcast", source: source, est: d.estAlt, estAlt: d.est}
	}
	return d
}

// warnInapplicable routes a spec-cannot-apply event to the planner's
// once-per-(module, function, reason) warning and counter.
func (co *Coordinator) warnInapplicable(br *client.BulkRequest, reason string) {
	co.Planner.WarnInapplicable(br.ModuleURI, br.Func, reason)
}

// countStrategy records an executed strategy decision.
func (co *Coordinator) countStrategy(strategy string) {
	if p := co.Planner; p != nil {
		p.Metrics.CountStrategy(strategy)
	}
}

// ------------------------------------------------- per-shard statistics

// peerStatser is the optional transport face the planner reads link
// totals from (netsim.Network implements it).
type peerStatser interface {
	PeerStats(dest string) (requests, sent, received int64)
}

// notePlannerFences piggybacks the planner's statistics fencing on a
// completed shardInfo probe round: each shard's observed (version,
// generation) fence invalidates a stale snapshot, and shards left
// without one get a fresh snapshot rebuilt — from the routing table's
// own range metadata, so revalidation costs no extra wire traffic.
func (co *Coordinator) notePlannerFences(fences []shardFence) {
	p := co.Planner
	if p == nil || p.Stats == nil {
		return
	}
	for s, f := range fences {
		pf := planner.Fence{Version: f.version, Generation: f.generation}
		p.Stats.NoteFence(s, pf)
		if _, ok := p.Stats.Snapshot(s); !ok {
			co.refreshShardStats(s, pf)
		}
	}
}

// refreshShardStats rebuilds shard s's statistics snapshot under an
// observed fence: container cardinalities are the Hi-Lo spans of the
// shard's key ranges, and the shard link's bytes-per-request average is
// folded in when the transport exposes peer totals.
//
// Accuracy caveat: the routing table's spans are deploy-time
// partitioning facts that commits do not update, so a snapshot rebuilt
// after an update carries the deploy-time cardinalities under the fresh
// fence. The fence still does its correctness job — it invalidates the
// snapshot whenever a shard's data or modules change, forcing the cost
// model to re-read whatever is known — but Docs/Containers stay
// deploy-time estimates until the shards report live counts. That skews
// cost estimates only, never routing soundness (candidate sets come
// from the key bounds, not these counts).
func (co *Coordinator) refreshShardStats(s int, f planner.Fence) {
	st := co.Planner.Stats
	snap := planner.Snapshot{Fence: f, Containers: map[string]int64{}}
	docs := map[string]bool{}
	for _, r := range co.Table.Ranges(s) {
		snap.Containers[planner.ContainerKey(r.Doc, r.Path)] = int64(r.Hi - r.Lo)
		docs[r.Doc] = true
	}
	snap.Docs = len(docs)
	st.SetSnapshot(s, snap)
	if ps, ok := co.Client.Transport.(peerStatser); ok {
		if reqs, sent, recv := ps.PeerStats(co.Table.Primary(s)); reqs > 0 {
			st.ObserveLink(s, reqs, sent+recv)
		}
	}
}

// notePlannerCall feeds one successful shard call into the rolling
// latency average the cost model reads.
func (co *Coordinator) notePlannerCall(shard int, d time.Duration) {
	if p := co.Planner; p != nil {
		p.Stats.ObserveCall(shard, d, 0)
	}
}

// RefreshPlannerStats runs one shardInfo probe round purely to fence
// and (re)build the planner's per-shard statistics — what deployments
// without a result cache (whose probes would otherwise do this as a
// side effect) call after topology or data changes.
func (co *Coordinator) RefreshPlannerStats() error {
	if co.Planner == nil {
		return nil
	}
	if err := co.validTable(); err != nil {
		return err
	}
	_, err := co.probeFences()
	return err
}

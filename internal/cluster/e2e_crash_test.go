package cluster

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"xrpc/internal/client"
	"xrpc/internal/server"
	"xrpc/internal/xdm"
	"xrpc/internal/xmark"
)

// startXrpcd launches the built daemon and returns its base URL, parsed
// from the "listening on <addr> " startup line.
func startXrpcd(t *testing.T, bin string, args ...string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				if j := strings.IndexByte(rest, ' '); j > 0 {
					rest = rest[:j]
				}
				addrCh <- rest
				return
			}
		}
		addrCh <- ""
	}()
	select {
	case addr := <-addrCh:
		if addr == "" {
			t.Fatal("xrpcd exited before listening")
		}
		return "http://" + addr, cmd
	case <-time.After(20 * time.Second):
		t.Fatal("xrpcd did not report its address")
	}
	return "", nil
}

// versionOf probes a live peer's commit-fence version via shardInfo.
func versionOf(t *testing.T, cl *client.Client, url string) int64 {
	t.Helper()
	res, err := cl.CallBulk(url, &client.BulkRequest{
		ModuleURI: client.SystemModule,
		Func:      "shardInfo",
		Arity:     0,
		Calls:     [][]xdm.Sequence{{}},
	})
	if err != nil {
		t.Fatalf("shardInfo at %s: %v", url, err)
	}
	for _, it := range res[0] {
		if v, ok := server.ParseVersionItem(it.StringValue()); ok {
			return v
		}
	}
	t.Fatalf("no version fence in shardInfo reply from %s", url)
	return 0
}

// TestXrpcdCrashRecovery is the durability acceptance gate: a live
// xrpcd is SIGKILL'd in the middle of an update storm and restarted
// with the same -wal-dir. Every acknowledged commit must survive — the
// recovered peer's version covers all acked updates, the stormed
// person's city is the last acked write (or a later unacked one the
// log happened to make durable — never an earlier one), and a document
// committed before the storm reads back byte-identical.
func TestXrpcdCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "xrpcd")
	build := exec.Command("go", "build", "-o", bin, "xrpc/cmd/xrpcd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building xrpcd: %v\n%s", err, out)
	}

	docs := filepath.Join(tmp, "docs")
	mods := filepath.Join(tmp, "modules")
	// the WAL lives outside t.TempDir-per-start so both incarnations
	// share it; tests honoring XRPC_CRASHSMOKE_DIR (tmpfs in CI) keep
	// fsync cheap
	walRoot := os.Getenv("XRPC_CRASHSMOKE_DIR")
	if walRoot == "" {
		walRoot = tmp
	}
	walDir, err := os.MkdirTemp(walRoot, "xrpcd-wal-")
	if err != nil {
		// the tmpfs path may not exist on this platform; correctness
		// does not depend on it
		if walDir, err = os.MkdirTemp(tmp, "xrpcd-wal-"); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() { os.RemoveAll(walDir) })
	for _, d := range []string{docs, mods} {
		if err := os.Mkdir(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	xml := xmark.GeneratePersons(xmark.Config{Persons: 20, Seed: 11})
	if err := os.WriteFile(filepath.Join(docs, "persons.xml"), []byte(xml), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(mods, "p.xq"), []byte(personsModule), 0o644); err != nil {
		t.Fatal(err)
	}

	args := []string{"-docs", docs, "-modules", mods, "-wal-dir", walDir}
	url, proc := startXrpcd(t, bin, args...)
	cl := client.New(client.NewHTTPTransportTimeout(10 * time.Second))

	// a fully acknowledged commit before the storm: its read bytes are
	// the byte-identity baseline across the crash
	if _, err := cl.CallBulk(url, setCityRequest("Delft", "person2")); err != nil {
		t.Fatal(err)
	}
	probe := getPersonRequest("person2")
	before, err := cl.CallBulk(url, probe)
	if err != nil {
		t.Fatal(err)
	}
	v0 := versionOf(t, cl, url)

	// update storm on person1, killed mid-flight with SIGKILL
	var mu sync.Mutex
	acked := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			if _, err := cl.CallBulk(url, setCityRequest(fmt.Sprintf("City%d", i), "person1")); err != nil {
				return
			}
			mu.Lock()
			acked = i + 1
			mu.Unlock()
		}
	}()
	for {
		mu.Lock()
		a := acked
		mu.Unlock()
		if a >= 15 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	proc.Process.Kill() // SIGKILL: no flush, no shutdown path
	proc.Wait()
	<-done
	mu.Lock()
	ackedFinal := acked
	mu.Unlock()

	// restart with the same -wal-dir: -docs must be ignored in favor of
	// the recovered state
	url2, _ := startXrpcd(t, bin, args...)

	if v2 := versionOf(t, cl, url2); v2 < v0+int64(ackedFinal) {
		t.Fatalf("recovered version %d < %d: acked commits lost (v0 %d + %d acked)",
			v2, v0+int64(ackedFinal), v0, ackedFinal)
	}

	res, err := cl.CallBulk(url2, getPersonRequest("person1"))
	if err != nil {
		t.Fatal(err)
	}
	city := regexp.MustCompile(`<city>City(\d+)</city>`).FindStringSubmatch(xdm.SerializeSequence(res[0]))
	if city == nil {
		t.Fatalf("stormed person has no City<n> city after recovery: %s", xdm.SerializeSequence(res[0]))
	}
	got, _ := strconv.Atoi(city[1])
	// >= is correct: a commit can be durable but its ack lost to the kill
	if got < ackedFinal-1 {
		t.Fatalf("recovered city City%d predates the last acked update City%d", got, ackedFinal-1)
	}

	after, err := cl.CallBulk(url2, probe)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeResults(probe, before), encodeResults(probe, after)) {
		t.Fatal("pre-crash committed read is not byte-identical after recovery")
	}
}

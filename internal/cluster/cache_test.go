package cluster

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"xrpc/internal/client"
	"xrpc/internal/modules"
	"xrpc/internal/netsim"
	"xrpc/internal/server"
	"xrpc/internal/xdm"
	"xrpc/internal/xmark"
)

// deployPersonsCached is deployPersons with all three cache tiers on.
func deployPersonsCached(t *testing.T, net *netsim.Network, persons, shards, replication int) *Deployment {
	t.Helper()
	xml := xmark.GeneratePersons(xmark.Config{Persons: persons, Seed: 11})
	dep, err := Deploy(net, personsRegistry(t), map[string]string{"persons.xml": xml},
		DeployConfig{
			Shards: shards, Replication: replication, Routes: personRoutes(),
			RespCacheBytes:   8 << 20,
			ResultCacheBytes: 8 << 20,
		})
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

// TestResultCacheHitProbesOnly: a warm broadcast scatter is answered
// from the coordinator cache after one shardInfo probe per shard — no
// re-execution — and is byte-identical to the cold run.
func TestResultCacheHitProbesOnly(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	dep := deployPersons(t, net, 40, 3, 1)
	// a coordinator without routes broadcasts getPerson to every shard
	co := NewCoordinator(dep.Table, client.New(net))
	co.ResultCache = NewResultCache(0)

	read := getPersonRequest(xmark.PersonID(3), xmark.PersonID(17))
	want := singlePersonsBaseline(t, 40, read, nil)

	cold, err := co.Scatter(read)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeResults(read, cold); !bytes.Equal(got, want) {
		t.Fatalf("cold scatter differs from baseline:\n%s\nvs\n%s", got, want)
	}

	net.ResetStats()
	warm, err := co.Scatter(read)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeResults(read, warm); !bytes.Equal(got, want) {
		t.Fatalf("warm scatter differs from baseline:\n%s\nvs\n%s", got, want)
	}
	st := co.ResultCache.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Revalidations != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 1 revalidation", st)
	}
	for s := 0; s < 3; s++ {
		if reqs, _, _ := net.PeerStats(fmt.Sprintf("xrpc://shard%d", s)); reqs != 1 {
			t.Fatalf("shard %d served %d requests on the warm hit; want 1 (the version probe)", s, reqs)
		}
	}
}

// TestResultCachePartialRefreshRequeriesOnlyStaleShard: after a routed
// single-shard commit, a cached broadcast entry re-queries exactly the
// shard whose version moved and splices, and the refreshed entry serves
// the post-write state byte-identically to an unsharded peer.
func TestResultCachePartialRefreshRequeriesOnlyStaleShard(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	dep := deployPersons(t, net, 40, 3, 1)
	co := NewCoordinator(dep.Table, client.New(net)) // no routes: broadcast
	co.ResultCache = NewResultCache(0)

	pid := xmark.PersonID(5)
	read := getPersonRequest(pid, xmark.PersonID(33))
	if _, err := co.Scatter(read); err != nil {
		t.Fatal(err)
	}

	write := setCityRequest("Refreshville", pid)
	routed := dep.Coordinator()
	if _, err := routed.Update(write); err != nil {
		t.Fatal(err)
	}

	net.ResetStats()
	res, err := co.Scatter(read)
	if err != nil {
		t.Fatal(err)
	}
	if want := singlePersonsBaseline(t, 40, read, write); !bytes.Equal(encodeResults(read, res), want) {
		t.Fatalf("partial refresh served wrong data:\n%s\nvs\n%s", encodeResults(read, res), want)
	}
	st := co.ResultCache.Stats()
	if st.PartialHits != 1 {
		t.Fatalf("stats = %+v; want 1 partial hit", st)
	}
	requeried := 0
	for s := 0; s < 3; s++ {
		reqs, _, _ := net.PeerStats(fmt.Sprintf("xrpc://shard%d", s))
		switch reqs {
		case 1: // probe only
		case 2: // probe + re-query
			requeried++
		default:
			t.Fatalf("shard %d served %d requests during refresh", s, reqs)
		}
	}
	if requeried != 1 {
		t.Fatalf("%d shards re-queried; want exactly the 1 stale shard", requeried)
	}

	// the refresh re-stored the entry under the probed vector: next
	// scatter is a clean hit
	if _, err := co.Scatter(read); err != nil {
		t.Fatal(err)
	}
	if st := co.ResultCache.Stats(); st.Hits != 1 {
		t.Fatalf("post-refresh stats = %+v; want 1 hit", st)
	}
}

// TestScatterStreamCachedByteIdentity: the streamed wire envelope is
// byte-identical with the result cache off, cold, and warm.
func TestScatterStreamCachedByteIdentity(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	dep := deployPersons(t, net, 30, 2, 1)
	plain := NewCoordinator(dep.Table, client.New(net))
	cached := NewCoordinator(dep.Table, client.New(net))
	cached.ResultCache = NewResultCache(0)

	read := getPersonRequest(xmark.PersonID(1), xmark.PersonID(20), xmark.PersonID(29))
	var want, cold, warm bytes.Buffer
	if err := plain.ScatterStream(read, &want); err != nil {
		t.Fatal(err)
	}
	if err := cached.ScatterStream(read, &cold); err != nil {
		t.Fatal(err)
	}
	if err := cached.ScatterStream(read, &warm); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold.Bytes(), want.Bytes()) {
		t.Fatalf("cold cached stream differs from uncached:\n%s\nvs\n%s", cold.Bytes(), want.Bytes())
	}
	if !bytes.Equal(warm.Bytes(), want.Bytes()) {
		t.Fatalf("warm cached stream differs from uncached:\n%s\nvs\n%s", warm.Bytes(), want.Bytes())
	}
	if st := cached.ResultCache.Stats(); st.Hits != 1 {
		t.Fatalf("stats = %+v; want the second stream to hit", st)
	}
}

// TestCacheSmoke is the `make cachesmoke` gate: all three tiers on via
// DeployConfig, warm hits on both coordinator and shard tiers, and a
// routed single-shard 2PC commit that invalidates exactly the touched
// shard's entries — every answer byte-identical to an unsharded peer.
func TestCacheSmoke(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	const persons = 60
	dep := deployPersonsCached(t, net, persons, 2, 1)
	co := dep.Coordinator()
	if co.ResultCache == nil {
		t.Fatal("DeployConfig.ResultCacheBytes did not attach a coordinator cache")
	}

	// two pruned reads covering both shards
	read := getPersonRequest(xmark.PersonID(2), xmark.PersonID(persons-3))
	want := singlePersonsBaseline(t, persons, read, nil)
	for round := 0; round < 3; round++ {
		res, err := co.Scatter(read)
		if err != nil {
			t.Fatal(err)
		}
		if got := encodeResults(read, res); !bytes.Equal(got, want) {
			t.Fatalf("round %d differs from baseline:\n%s\nvs\n%s", round, got, want)
		}
	}
	if st := co.ResultCache.Stats(); st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("tier-2 stats = %+v; want 2 hits, 1 miss", st)
	}

	// locate which shard owns the pid we are about to write
	cands := dep.Table.CandidateShards("persons.xml", personsPath, xmark.PersonID(2))
	if len(cands) != 1 {
		t.Fatalf("pid routes to %v; want exactly one shard", cands)
	}
	target := cands[0]

	write := setCityRequest("Smokeville", xmark.PersonID(2))
	if _, err := co.Update(write); err != nil {
		t.Fatal(err)
	}

	// post-write read: correct data, and only the touched shard's Tier-1
	// entries were evicted by the version fence
	preEvict := make([]int64, 2)
	for s := 0; s < 2; s++ {
		preEvict[s] = dep.Servers[s][0].RespCache.Stats().Evictions
	}
	want = singlePersonsBaseline(t, persons, read, write)
	res, err := co.Scatter(read)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeResults(read, res); !bytes.Equal(got, want) {
		t.Fatalf("post-write read differs from baseline:\n%s\nvs\n%s", got, want)
	}
	for s := 0; s < 2; s++ {
		delta := dep.Servers[s][0].RespCache.Stats().Evictions - preEvict[s]
		if s == target && delta == 0 {
			t.Fatalf("touched shard %d evicted nothing after the commit", s)
		}
		if s != target && delta != 0 {
			t.Fatalf("untouched shard %d evicted %d entries", s, delta)
		}
	}
	// and the untouched shard answered its share from Tier 1
	other := 1 - target
	if st := dep.Servers[other][0].RespCache.Stats(); st.Hits == 0 {
		t.Fatalf("untouched shard %d served no Tier-1 hits: %+v", other, st)
	}
}

// TestConcurrentCachedScattersDuringUpdates races cached reads against
// routed 2PC commits (run with -race): after Update returns, a read
// must see the committed city; concurrent readers may lag but never
// observe city values going backwards.
func TestConcurrentCachedScattersDuringUpdates(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	const persons = 30
	dep := deployPersonsCached(t, net, persons, 2, 1)
	pid := xmark.PersonID(7)
	read := &client.BulkRequest{
		ModuleURI: "functions_p", AtHint: "http://example.org/p.xq",
		Func: "cityOf", Arity: 1,
		Calls: [][]xdm.Sequence{{{xdm.String(pid)}}},
	}

	cityIndex := func(res []xdm.Sequence) (int, error) {
		if len(res) != 1 || len(res[0]) != 1 {
			return 0, fmt.Errorf("unexpected shape %v", res)
		}
		s := res[0][0].StringValue()
		var i int
		if _, err := fmt.Sscanf(s, "City-%d", &i); err != nil {
			return -1, nil // the generator's original city, before our first write
		}
		return i, nil
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			co := dep.Coordinator()
			prev := -1
			for {
				select {
				case <-done:
					return
				default:
				}
				res, err := co.Scatter(read)
				if err != nil {
					t.Error(err)
					return
				}
				i, err := cityIndex(res)
				if err != nil {
					t.Error(err)
					return
				}
				if i < prev {
					t.Errorf("reader %d: city went backwards %d -> %d", g, prev, i)
					return
				}
				prev = i
			}
		}(g)
	}

	co := dep.Coordinator()
	for i := 0; i < 20; i++ {
		if _, err := co.Update(setCityRequest(fmt.Sprintf("City-%d", i), pid)); err != nil {
			t.Fatal(err)
		}
		res, err := co.Scatter(read)
		if err != nil {
			t.Fatal(err)
		}
		if got, err := cityIndex(res); err != nil || got != i {
			t.Fatalf("after commit %d read city %d (err %v): stale cache", i, got, err)
		}
	}
	close(done)
	wg.Wait()
}

// TestCachedScatterMatchesBaselineAcrossShapes sweeps shard counts and
// request shapes: every cached answer (cold and warm) must be
// byte-identical to the single-peer baseline.
func TestCachedScatterMatchesBaselineAcrossShapes(t *testing.T) {
	const persons = 40
	reqs := map[string]*client.BulkRequest{
		"one":   getPersonRequest(xmark.PersonID(0)),
		"many":  getPersonRequest(xmark.PersonID(1), xmark.PersonID(19), xmark.PersonID(39)),
		"empty": getPersonRequest("person-does-not-exist"),
	}
	for _, shards := range []int{1, 2, 4} {
		for name, br := range reqs {
			want := singlePersonsBaseline(t, persons, br, nil)
			net := netsim.NewNetwork(0, 0)
			dep := deployPersonsCached(t, net, persons, shards, 1)
			co := dep.Coordinator()
			for round := 0; round < 2; round++ {
				res, err := co.Scatter(br)
				if err != nil {
					t.Fatalf("%d shards %s round %d: %v", shards, name, round, err)
				}
				if got := encodeResults(br, res); !bytes.Equal(got, want) {
					t.Fatalf("%d shards %s round %d differs from baseline:\n%s\nvs\n%s",
						shards, name, round, got, want)
				}
			}
		}
	}
}

// TestResultCacheSeesModuleReregistration: re-registering a module
// changes semantics with no store write, so the Tier-2 fence must
// include the registry generation — a merged result cached before the
// Register must never be served after it.
func TestResultCacheSeesModuleReregistration(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	reg := personsRegistry(t)
	xml := xmark.GeneratePersons(xmark.Config{Persons: 20, Seed: 11})
	dep, err := Deploy(net, reg, map[string]string{"persons.xml": xml},
		DeployConfig{Shards: 2, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(dep.Table, client.New(net)) // no routes: broadcast
	co.ResultCache = NewResultCache(0)

	read := getPersonRequest(xmark.PersonID(3))
	before, err := co.Scatter(read)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Scatter(read); err != nil {
		t.Fatal(err)
	}
	if st := co.ResultCache.Stats(); st.Hits != 1 {
		t.Fatalf("stats = %+v; want 1 warm hit before re-registration", st)
	}

	// same namespace and hint, new getPerson semantics: the person's
	// city element instead of the person — no store write involved
	const v2 = `
module namespace p = "functions_p";
declare function p:getPerson($pid as xs:string) as node()*
{ doc("persons.xml")//person[@id=$pid]/address/city };
declare function p:cityOf($pid as xs:string) as xs:string
{ string(doc("persons.xml")//person[@id=$pid]/address/city) };
declare updating function p:setCity($pid as xs:string, $city as xs:string)
{ for $c in doc("persons.xml")//person[@id=$pid]/address/city
  return replace value of node $c with $city };`
	if err := reg.Register(v2, "http://example.org/p.xq"); err != nil {
		t.Fatal(err)
	}

	after, err := co.Scatter(read)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(encodeResults(read, after), encodeResults(read, before)) {
		t.Fatalf("post-re-registration scatter served the pre-registration cached result:\n%s",
			encodeResults(read, after))
	}
	if st := co.ResultCache.Stats(); st.Hits != 1 {
		t.Fatalf("stats after re-registration = %+v; the stale entry must not hit", st)
	}
}

// TestDeployInvalidatesImporterPlans: Deploy must wire
// reg.OnUpdate(exec.InvalidateModule) on every shard executor, as
// core.NewPeer does — re-registering an imported module leaves the
// importer's source, and hence its normalized plan-cache key,
// unchanged, so only the dependency-tracking invalidation can drop the
// importer's stale compiled plan.
func TestDeployInvalidatesImporterPlans(t *testing.T) {
	const baseV1 = `
module namespace base = "base_m";
declare function base:tag() as xs:string { "v1" };`
	const baseV2 = `
module namespace base = "base_m";
declare function base:tag() as xs:string { "v2" };`
	const importer = `
module namespace imp = "imp_m";
import module namespace base = "base_m" at "http://example.org/base.xq";
declare function imp:tag() as xs:string { base:tag() };`

	reg := modules.NewRegistry()
	if err := reg.Register(baseV1, "http://example.org/base.xq"); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(importer, "http://example.org/imp.xq"); err != nil {
		t.Fatal(err)
	}
	net := netsim.NewNetwork(0, 0)
	xml := xmark.GeneratePersons(xmark.Config{Persons: 10, Seed: 11})
	dep, err := Deploy(net, reg, map[string]string{"persons.xml": xml},
		DeployConfig{Shards: 2, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	co := dep.Coordinator()
	br := &client.BulkRequest{
		ModuleURI: "imp_m", AtHint: "http://example.org/imp.xq",
		Func: "tag", Arity: 0, Calls: [][]xdm.Sequence{{}},
	}
	check := func(want string) {
		t.Helper()
		res, err := co.Scatter(br)
		if err != nil {
			t.Fatal(err)
		}
		if len(res[0]) != 2 {
			t.Fatalf("broadcast returned %d items, want one per shard", len(res[0]))
		}
		for _, it := range res[0] {
			if got := it.StringValue(); got != want {
				t.Fatalf("imp:tag() = %q, want %q", got, want)
			}
		}
	}
	check("v1")
	// warm the importer's plan again so the re-registration below must
	// actually invalidate a cached plan, then change only the base
	check("v1")
	if err := reg.Register(baseV2, "http://example.org/base.xq"); err != nil {
		t.Fatal(err)
	}
	check("v2")
}

// TestRespCacheStatsInShardInfo: shardInfo reports version and cache
// counters as metadata items older consumers skip.
func TestRespCacheStatsInShardInfo(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	dep := deployPersonsCached(t, net, 20, 2, 1)
	co := dep.Coordinator()
	if _, err := co.Scatter(getPersonRequest(xmark.PersonID(1))); err != nil {
		t.Fatal(err)
	}
	res, err := client.New(net).CallBulk("xrpc://shard0", &client.BulkRequest{
		ModuleURI: client.SystemModule, Func: "shardInfo", Arity: 0,
		Calls: [][]xdm.Sequence{{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var haveVersion, haveGeneration, haveResp, havePlan bool
	for _, it := range res[0] {
		s := it.StringValue()
		if _, ok := server.ParseVersionItem(s); ok {
			haveVersion = true
		}
		if _, ok := server.ParseGenerationItem(s); ok {
			haveGeneration = true
		}
		if len(s) > 10 && s[:10] == "respcache=" {
			haveResp = true
		}
		if len(s) > 10 && s[:10] == "plancache=" {
			havePlan = true
		}
	}
	if !haveVersion || !haveGeneration || !haveResp || !havePlan {
		t.Fatalf("shardInfo missing metadata: version=%v generation=%v respcache=%v plancache=%v (%v)",
			haveVersion, haveGeneration, haveResp, havePlan, res[0])
	}
}

package cluster

import (
	"strconv"
	"time"

	"xrpc/internal/client"
	"xrpc/internal/obs"
	"xrpc/internal/txn"
)

// fanoutBuckets sizes the scatter fan-out histogram (shards contacted).
var fanoutBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// Metrics is the coordinator's registry view of scatter-gather: how
// requests fan out, where per-shard time goes (open vs. first merged
// item vs. merge), and the failure-handling counters (replica
// failovers, evictions, 2PC verbs). Per-shard histograms are resolved
// into slices at construction so the hot path indexes instead of
// formatting labels. A nil *Metrics disables all recording.
type Metrics struct {
	Scatters  *obs.CounterVec // execution mode: "broadcast" | "pruned"
	Updates   *obs.Counter    // routed updating bulk requests
	Fanout    *obs.Histogram  // shards contacted per scatter
	Latency   *obs.Histogram  // whole-scatter wall clock
	Merge     *obs.Histogram  // shard-order merge wall clock
	Failovers *obs.Counter    // replica-list walks past the primary
	Evictions *obs.Counter    // replicas evicted (demoted) from the routing table
	Resyncs   *obs.Counter    // resyncFrom rounds driven against demoted replicas
	Rejoins   *obs.Counter    // demoted replicas re-added after catching up

	// Open[s]: time from posting shard s's request to its response
	// stream being open (header parsed — the first response bytes).
	Open []*obs.Histogram
	// FirstItem[s]: time from merge start to shard s's first merged
	// item (includes waiting behind earlier shards in shard order).
	FirstItem []*obs.Histogram
	// Call[s]: whole buffered call latency at shard s (ScatterBuffered,
	// pruned scatters, fence probes, stale refreshes).
	Call []*obs.Histogram

	// Txn counts the 2PC verbs of routed updates (shared across the
	// per-query txn.Coordinators that Update creates).
	Txn *txn.Metrics
}

// NewMetrics registers the coordinator instrument family for a cluster
// of the given shard count. A nil registry returns nil.
func NewMetrics(reg *obs.Registry, shards int) *Metrics {
	if reg == nil {
		return nil
	}
	m := &Metrics{
		Scatters: reg.NewCounterVec("xrpc_cluster_scatters_total",
			"Scatter executions, by mode.", "mode"),
		Updates: reg.NewCounter("xrpc_cluster_updates_total",
			"Routed updating bulk requests."),
		Fanout: reg.NewHistogram("xrpc_cluster_scatter_fanout_shards",
			"Shards contacted per scatter.", fanoutBuckets),
		Latency: reg.NewHistogram("xrpc_cluster_scatter_seconds",
			"Whole-scatter latency (open, merge, encode).", obs.DefLatencyBuckets),
		Merge: reg.NewHistogram("xrpc_cluster_merge_seconds",
			"Shard-order merge wall clock.", obs.DefLatencyBuckets),
		Failovers: reg.NewCounter("xrpc_cluster_failovers_total",
			"Replica failover attempts (walks past a failed replica)."),
		Evictions: reg.NewCounter("xrpc_cluster_evictions_total",
			"Replicas evicted (demoted) from the routing table."),
		Resyncs: reg.NewCounter("xrpc_cluster_resyncs_total",
			"Resync rounds driven against demoted replicas."),
		Rejoins: reg.NewCounter("xrpc_cluster_rejoins_total",
			"Demoted replicas rejoined after resync."),
	}
	m.Open = make([]*obs.Histogram, shards)
	m.FirstItem = make([]*obs.Histogram, shards)
	m.Call = make([]*obs.Histogram, shards)
	for s := 0; s < shards; s++ {
		lbl := obs.Label{Key: "shard", Value: strconv.Itoa(s)}
		m.Open[s] = reg.NewHistogram("xrpc_cluster_shard_open_seconds",
			"Per-shard response-stream open latency.", obs.DefLatencyBuckets, lbl)
		m.FirstItem[s] = reg.NewHistogram("xrpc_cluster_shard_first_item_seconds",
			"Per-shard time to first merged item.", obs.DefLatencyBuckets, lbl)
		m.Call[s] = reg.NewHistogram("xrpc_cluster_shard_call_seconds",
			"Per-shard buffered call latency.", obs.DefLatencyBuckets, lbl)
	}
	m.Txn = txn.NewMetrics(reg)
	return m
}

func (m *Metrics) countScatter(mode string) {
	if m != nil {
		m.Scatters.With(mode).Inc()
	}
}

func (m *Metrics) observeOpen(shard int, d time.Duration, failovers int) {
	if m == nil {
		return
	}
	if shard >= 0 && shard < len(m.Open) {
		m.Open[shard].ObserveDuration(d)
	}
	m.Failovers.Add(int64(failovers))
}

func (m *Metrics) observeCall(shard int, d time.Duration, failovers int) {
	if m == nil {
		return
	}
	if shard >= 0 && shard < len(m.Call) {
		m.Call[shard].ObserveDuration(d)
	}
	m.Failovers.Add(int64(failovers))
}

// RegisterMetrics promotes the result cache's semantic counters onto a
// registry — the same atomics Stats() snapshots, so /metrics and
// in-process experiments agree.
func (rc *ResultCache) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("xrpc_resultcache_hits_total",
		"Merged-result cache full hits (every shard fence matched).", rc.Hits.Load)
	reg.CounterFunc("xrpc_resultcache_partial_hits_total",
		"Merged-result cache partial hits (only stale shards re-queried).", rc.PartialHits.Load)
	reg.CounterFunc("xrpc_resultcache_misses_total",
		"Merged-result cache misses.", rc.Misses.Load)
	reg.CounterFunc("xrpc_resultcache_revalidations_total",
		"Shard fence probes for cached entries.", rc.Revalidations.Load)
	reg.GaugeFunc("xrpc_resultcache_entries",
		"Merged-result cache resident entries.",
		func() float64 { return float64(rc.Stats().Entries) })
	reg.GaugeFunc("xrpc_resultcache_bytes",
		"Merged-result cache resident bytes.",
		func() float64 { return float64(rc.Stats().Bytes) })
}

// observeScatter records whole-scatter facts (fan-out, latency) and,
// past the slow-query threshold, a structured record with the trace ID
// and per-shard open timings — the coordinator half of the slow-query
// log (each shard's server writes its own half under the same trace).
// A non-nil dec adds the planner's strategy and its estimated cost next
// to the actual duration, so mispredictions are visible in the log.
func (co *Coordinator) observeScatter(br *client.BulkRequest, fanout int, conns []*shardStream, d time.Duration, dec *planDecision) {
	if m := co.Metrics; m != nil {
		m.Fanout.Observe(float64(fanout))
		m.Latency.ObserveDuration(d)
	}
	if !co.SlowLog.Slow(d) {
		return
	}
	trace := br.TraceID
	if trace == "" {
		trace = obs.NewTraceID()
	}
	attrs := []any{
		"trace_id", trace,
		"module", br.ModuleURI,
		"method", br.Func,
		"calls", len(br.Calls),
		"fanout", fanout,
		"dur_ms", d.Milliseconds(),
	}
	if dec != nil {
		attrs = append(attrs, "strategy", dec.strategy)
		if dec.est > 0 {
			attrs = append(attrs,
				"est_cost_ms", dec.est*1000,
				"est_alt_cost_ms", dec.estAlt*1000)
		}
	}
	if len(conns) > 0 {
		shardMS := make([]float64, len(conns))
		for i, c := range conns {
			shardMS[i] = float64(c.openDur.Microseconds()) / 1000
		}
		attrs = append(attrs, "shard_open_ms", shardMS)
	}
	co.SlowLog.Log("slow scatter", attrs...)
}

package cluster

import (
	"io"
	"sync"
	"sync/atomic"

	"xrpc/internal/cache"
	"xrpc/internal/client"
	"xrpc/internal/server"
	"xrpc/internal/soap"
	"xrpc/internal/xdm"
)

// DefaultResultCacheBytes bounds the coordinator's merged-result cache
// when enabled without an explicit size.
const DefaultResultCacheBytes = 64 << 20

// ResultCache is the Tier-2 coordinator cache: whole merged scatter
// results keyed on the request's encoded call set and fenced on a
// per-shard fence vector of (store version, registry generation).
// Revalidation is a shardInfo probe — one tiny system call per shard
// instead of re-executing the query — and a broadcast entry whose
// vector is partially stale refreshes only the stale shards, splicing
// their fresh results into the retained ones.
type ResultCache struct {
	lru *cache.LRU

	// Semantic counters (the LRU's own hit/miss counters track entry
	// presence; these track what presence *meant*):
	//   Hits          — entry present and every shard's version matched
	//   PartialHits   — entry present, only the stale shards re-queried
	//   Misses        — no entry (or an unrefreshable stale entry)
	//   Revalidations — version probes performed
	Hits, PartialHits, Misses, Revalidations atomic.Int64
}

// ResultCacheStats is a point-in-time snapshot of a ResultCache.
type ResultCacheStats struct {
	Hits, PartialHits, Misses, Revalidations int64
	Entries                                  int
	Bytes                                    int64
}

// NewResultCache builds a merged-result cache bounded by maxBytes
// (0 = DefaultResultCacheBytes) of estimated result size.
func NewResultCache(maxBytes int64) *ResultCache {
	if maxBytes <= 0 {
		maxBytes = DefaultResultCacheBytes
	}
	return &ResultCache{lru: cache.New(maxBytes, 0)}
}

// Stats snapshots the counters and current size.
func (rc *ResultCache) Stats() ResultCacheStats {
	st := rc.lru.Stats()
	return ResultCacheStats{
		Hits:          rc.Hits.Load(),
		PartialHits:   rc.PartialHits.Load(),
		Misses:        rc.Misses.Load(),
		Revalidations: rc.Revalidations.Load(),
		Entries:       st.Entries,
		Bytes:         st.Bytes,
	}
}

// Clear drops every entry (counters are preserved).
func (rc *ResultCache) Clear() { rc.lru.Clear() }

// shardFence is one shard's freshness coordinates: the store's
// commit-fence version (every committed write advances it by one step)
// and the module registry's generation (every Register advances it).
// Both must match for a cached result to be reused — module
// re-registration changes semantics with no store write, so a store
// version alone cannot see it (the Tier-1 respcache keys on
// Generation() for the same reason).
type shardFence struct {
	version    int64
	generation int64
}

// resultEntry is one cached merged result.
type resultEntry struct {
	// fences[s] is shard s's (version, generation) fence the entry is
	// valid at (probed around population, stored for every shard).
	fences []shardFence
	// perShard[s][i] is shard s's own result for call i — retained for
	// broadcast scatters so a partially-stale entry can refresh just
	// the stale shards. nil for pruned scatters (their per-call shard
	// subsets don't decompose this way); those entries are all-or-
	// nothing.
	perShard [][]xdm.Sequence
	// merged is the full shard-order merge — what a hit returns.
	merged []xdm.Sequence
}

// clipped returns the merged result with every slice's capacity clipped
// to its length, so a caller appending to a returned sequence reallocates
// instead of scribbling over the cached backing array.
func (e *resultEntry) clipped() []xdm.Sequence {
	out := make([]xdm.Sequence, len(e.merged))
	for i, seq := range e.merged {
		out[i] = seq[:len(seq):len(seq)]
	}
	return out
}

// estimateSize prices a merged result for the byte bound: the encoded
// envelope size of each sequence, measured with the same pooled encoder
// the response path uses.
func estimateSize(key string, merged []xdm.Sequence) int64 {
	enc := soap.NewEncoder()
	defer enc.Release()
	for _, seq := range merged {
		enc.BeginSequence()
		for _, it := range seq {
			enc.EncodeItem(it)
		}
		enc.EndSequence()
	}
	return int64(len(key) + len(enc.Bytes()))
}

// probeFences asks every shard for its (version, generation) fence via
// the shardInfo system call (encode once, post to each shard with
// replica failover). An error — or a shard that does not report both
// fence items, e.g. a peer predating the fence — disables caching for
// this request.
func (co *Coordinator) probeFences() ([]shardFence, error) {
	enc := co.Client.EncodeBulk(&client.BulkRequest{
		ModuleURI: client.SystemModule,
		Func:      "shardInfo",
		Arity:     0,
		Calls:     [][]xdm.Sequence{{}},
	})
	defer enc.Release()
	body := enc.Bytes()
	n := co.Table.NumShards()
	fences := make([]shardFence, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			res, err := co.callShard(s, body, 1)
			if err != nil {
				errs[s] = err
				return
			}
			var haveVer, haveGen bool
			for _, it := range res[0] {
				if v, ok := server.ParseVersionItem(it.StringValue()); ok {
					fences[s].version, haveVer = v, true
				}
				if g, ok := server.ParseGenerationItem(it.StringValue()); ok {
					fences[s].generation, haveGen = g, true
				}
			}
			if !haveVer || !haveGen {
				errs[s] = xdm.Errorf("XRPC0007", "shard %d reports no version/generation fence", s)
			}
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// the planner's per-shard statistics fence on the same probe round:
	// revalidation and snapshot refresh ride along for free
	co.notePlannerFences(fences)
	return fences, nil
}

func sameFences(a, b []shardFence) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// scatterCached answers a read-only scatter through the merged-result
// cache. The key is the request's destination-independent encoded body
// (encode-once scatter-many makes this deterministic); freshness is the
// per-shard (version, generation) fence vector. Any probe failure falls
// back to plain execution with caching off — stale is never served.
func (co *Coordinator) scatterCached(br *client.BulkRequest) ([]xdm.Sequence, error) {
	rc := co.ResultCache
	enc := co.Client.EncodeBulk(br)
	defer enc.Release()
	body := enc.Bytes()
	key := string(body)

	if v, _, ok := rc.lru.GetAny(key); ok {
		entry := v.(*resultEntry)
		rc.Revalidations.Add(1)
		probed, err := co.probeFences()
		switch {
		case err != nil:
			// a shard we can't probe is a shard we can't trust the
			// entry against: execute directly, don't populate
			rc.Misses.Add(1)
			return co.scatterDirect(br)
		case sameFences(entry.fences, probed):
			rc.Hits.Add(1)
			return entry.clipped(), nil
		case entry.perShard != nil:
			// broadcast entry, some shards moved on: re-query only
			// those, splice, and re-store under the probed vector.
			// A commit landing between probe and refresh tags the
			// fresher data with the older probed fence — the safe
			// direction (one extra refresh later, never a stale serve).
			merged, err := co.refreshStale(br, body, entry, probed)
			if err != nil {
				return nil, err
			}
			rc.PartialHits.Add(1)
			return merged, nil
		default:
			// pruned entry: no per-shard split to refresh from
			rc.lru.Remove(key)
		}
	}

	rc.Misses.Add(1)
	// populate guard: probe before and after execution and store only
	// when the fence vectors agree — a commit landing mid-scatter could
	// otherwise tag mixed-version results as clean
	pre, preErr := co.probeFences()
	dec := co.plan(br)
	var merged []xdm.Sequence
	var perShard [][]xdm.Sequence
	var err error
	if dec.strategy != "broadcast" {
		merged, err = co.scatterPruned(br, dec)
	} else {
		merged, perShard, err = co.gatherCapture(br, body, preErr == nil, dec)
	}
	if err != nil {
		return nil, err
	}
	if preErr == nil {
		if post, err := co.probeFences(); err == nil && sameFences(pre, post) {
			entry := &resultEntry{fences: pre, perShard: perShard, merged: merged}
			rc.lru.Put(key, entry, estimateSize(key, merged), 0)
			return entry.clipped(), nil
		}
	}
	return merged, nil
}

// encodeMergedTo renders a materialized merged result as the response
// envelope — the hit path of the streamed cached scatter, whose result
// the cache necessarily holds anyway. Byte-identical to the incremental
// encoder's output for the same sequences.
func encodeMergedTo(w io.Writer, br *client.BulkRequest, results []xdm.Sequence) error {
	return soap.EncodeResponseTo(w, &soap.Response{
		Module: br.ModuleURI, Method: br.Func, Results: results,
	})
}

// scatterCachedStream is scatterCached for the streaming response path
// (broadcast requests only — ScatterStream handles pruned requests
// before consulting the cache). Hits and partial hits encode the cached
// sequences; a miss keeps the gather incremental — items flow to w as
// shards produce them — and retains one copy of the result only to
// populate the cache (and only when a clean pre-probe means the entry
// may actually be stored).
func (co *Coordinator) scatterCachedStream(br *client.BulkRequest, w io.Writer) error {
	rc := co.ResultCache
	enc := co.Client.EncodeBulk(br)
	defer enc.Release()
	body := enc.Bytes()
	key := string(body)

	if v, _, ok := rc.lru.GetAny(key); ok {
		entry := v.(*resultEntry)
		rc.Revalidations.Add(1)
		probed, err := co.probeFences()
		switch {
		case err != nil:
			rc.Misses.Add(1)
			_, _, err := co.gatherStreamCapture(br, body, w, false, nil)
			return err
		case sameFences(entry.fences, probed):
			rc.Hits.Add(1)
			return encodeMergedTo(w, br, entry.merged)
		case entry.perShard != nil:
			merged, err := co.refreshStale(br, body, entry, probed)
			if err != nil {
				return err
			}
			rc.PartialHits.Add(1)
			return encodeMergedTo(w, br, merged)
		default:
			rc.lru.Remove(key)
		}
	}

	rc.Misses.Add(1)
	pre, preErr := co.probeFences()
	merged, perShard, err := co.gatherStreamCapture(br, body, w, preErr == nil, nil)
	if err != nil {
		return err
	}
	if preErr == nil {
		if post, err := co.probeFences(); err == nil && sameFences(pre, post) {
			entry := &resultEntry{fences: pre, perShard: perShard, merged: merged}
			rc.lru.Put(key, entry, estimateSize(key, merged), 0)
		}
	}
	return nil
}

// refreshStale re-queries exactly the shards whose probed fence differs
// from the entry's, rebuilds the merge from retained + fresh per-shard
// results, and re-stores the entry under the probed vector.
func (co *Coordinator) refreshStale(br *client.BulkRequest, body []byte, entry *resultEntry, probed []shardFence) ([]xdm.Sequence, error) {
	n := co.Table.NumShards()
	if len(entry.fences) != n || len(entry.perShard) != n {
		// table resized since population: the entry's shard split no
		// longer lines up — full re-execute
		return co.scatterDirect(br)
	}
	fresh := make([][]xdm.Sequence, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		if probed[s] == entry.fences[s] {
			fresh[s] = entry.perShard[s]
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			fresh[s], errs[s] = co.callShard(s, body, len(br.Calls))
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, xdm.Errorf("XRPC0007", "cluster: shard %d: %v", s, err)
		}
	}
	merged := make([]xdm.Sequence, len(br.Calls))
	for i := range merged {
		var seq xdm.Sequence
		for s := 0; s < n; s++ {
			seq = append(seq, fresh[s][i]...)
		}
		merged[i] = seq
	}
	next := &resultEntry{
		fences:   append([]shardFence(nil), probed...),
		perShard: fresh,
		merged:   merged,
	}
	key := string(body)
	co.ResultCache.lru.Put(key, next, estimateSize(key, merged), 0)
	return next.clipped(), nil
}

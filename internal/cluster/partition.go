// Package cluster adds a horizontal scaling layer on top of the XRPC
// stack: a partitioner that splits a document across N shard peers by
// subtree ranges, a routing table mapping shards to replicated peer
// URIs, and a scatter-gather coordinator that fans one read-only Bulk
// RPC out to every shard and merges the responses so that the merged
// result is indistinguishable from a single peer holding the whole
// document.
//
// The paper's Bulk RPC amortizes per-call network cost between two
// peers; this package amortizes document size across many. Partitioning
// plus parallel scan is the classic lever once single-node operator
// speed is exhausted (cf. Szépkúti, "On the Scalability of
// Multidimensional Databases"): each shard peer scans 1/N of the data,
// the coordinator ships 1/N of the result bytes per link, and shard
// responses travel concurrently.
//
// The coordinator implements pathfinder.BulkCaller, so the whole
// loop-lifting pipeline is cluster-transparent: an `execute at
// {"xrpc://cluster"}` inside a for-loop loop-lifts into ONE bulk
// request, which the coordinator scatters to all shards.
package cluster

import (
	"fmt"
	"strings"

	"xrpc/internal/xdm"
)

// Partition splits an XML document into n shard documents by subtree
// ranges. A "container" is an element whose element children all share
// one name (with at most whitespace text between them) — people/person,
// closed_auctions/closed_auction, films/film. Shard k of n receives the
// k-th contiguous slice of every container's children, so concatenating
// per-shard query results in shard order reproduces document order.
//
// Content outside containers (the enclosing structure, and any document
// with no repeated subtrees at all) is replicated to every shard:
// small reference documents stay fully available next to the sharded
// fact data, at the cost of scatter-gather identity only holding for
// queries that select inside partitioned containers.
func Partition(name, xml string, n int) ([]string, error) {
	texts, _, err := PartitionWithRanges(name, xml, n)
	return texts, err
}

// PartitionWithRanges splits like Partition and additionally emits each
// shard's partition metadata: one KeyRange per container per shard,
// recording the child-ordinal slice the shard received and — when the
// container's children carry a common attribute whose values are
// strictly increasing in natural order (persons.xml ids, for example) —
// the key bounds of that slice. The ranges are what a RoutingTable
// needs to route single-shard updates and prune key-predicate scatters.
func PartitionWithRanges(name, xml string, n int) ([]string, [][]KeyRange, error) {
	texts, ranges, _, err := PartitionWithMeta(name, xml, n)
	return texts, ranges, err
}

// PartitionWithMeta splits like PartitionWithRanges and additionally
// emits the document's element-name census (one ElemLoc per container
// row name; identical for every shard) — the metadata FindContainer
// needs before a compiler-derived route may prune anything.
func PartitionWithMeta(name, xml string, n int) ([]string, [][]KeyRange, []ElemLoc, error) {
	if n < 1 {
		return nil, nil, nil, fmt.Errorf("cluster: partition into %d shards", n)
	}
	doc, err := xdm.ParseDocument(name, xml)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("cluster: partition %s: %w", name, err)
	}
	texts := make([]string, n)
	ranges := make([][]KeyRange, n)
	for k := 0; k < n; k++ {
		texts[k] = xdm.SerializeNode(shardTree(doc, k, n, name, "", &ranges[k]))
	}
	return texts, ranges, docElemLocs(doc, name), nil
}

// PartitionShard returns only shard k of n (what one xrpcd -shard k
// -of n peer loads), without materializing the other shards.
func PartitionShard(name, xml string, k, n int) (string, error) {
	text, _, err := PartitionShardWithRanges(name, xml, k, n)
	return text, err
}

// PartitionShardWithRanges returns shard k of n plus its partition
// metadata (what xrpcd -shard k -of n reports via shardInfo).
func PartitionShardWithRanges(name, xml string, k, n int) (string, []KeyRange, error) {
	text, ranges, _, err := PartitionShardWithMeta(name, xml, k, n)
	return text, ranges, err
}

// PartitionShardWithMeta returns shard k of n, its partition metadata,
// and the document's element-name census (shard-independent; every
// shard reports the same census via shardInfo).
func PartitionShardWithMeta(name, xml string, k, n int) (string, []KeyRange, []ElemLoc, error) {
	if k < 0 || k >= n {
		return "", nil, nil, fmt.Errorf("cluster: shard %d out of range [0,%d)", k, n)
	}
	doc, err := xdm.ParseDocument(name, xml)
	if err != nil {
		return "", nil, nil, fmt.Errorf("cluster: partition %s: %w", name, err)
	}
	var ranges []KeyRange
	return xdm.SerializeNode(shardTree(doc, k, n, name, "", &ranges)), ranges, docElemLocs(doc, name), nil
}

// isContainer reports whether n's children are a run of same-named
// elements (≥2, whitespace-only text between them) — a partitionable
// repeated subtree.
func isContainer(n *xdm.Node) bool {
	name := ""
	elems := 0
	for _, c := range n.Children {
		switch c.Kind {
		case xdm.ElementNode:
			if elems == 0 {
				name = c.Name
			} else if c.Name != name {
				return false
			}
			elems++
		case xdm.TextNode:
			if strings.TrimSpace(c.Value) != "" {
				return false // mixed content is never partitioned
			}
		}
	}
	return elems >= 2
}

// containerKey detects the container's partition key: an attribute
// every child element carries, with values strictly increasing in
// natural key order across the whole container. "id" is preferred when
// it qualifies; otherwise the first qualifying attribute of the first
// child (in its attribute order) wins, deterministically. Returns
// ("", nil) for unkeyed containers — pruning then stays disabled for
// them, which is always sound.
// The third return reports whether the keys are strictly increasing in
// plain codepoint order as well (KeyRange.Lex): only then can range
// predicates — which XQuery evaluates in codepoint order — be pruned
// against the natural-order shard bounds.
func containerKey(kids []*xdm.Node) (string, []string, bool) {
	if len(kids) == 0 {
		return "", nil, false
	}
	var candidates []string
	if _, ok := kids[0].Attr("id"); ok {
		candidates = append(candidates, "id")
	}
	for _, a := range kids[0].Attrs {
		if a.Name != "id" {
			candidates = append(candidates, a.Name)
		}
	}
next:
	for _, attr := range candidates {
		keys := make([]string, len(kids))
		lex := true
		for i, ch := range kids {
			v, ok := ch.Attr(attr)
			if !ok {
				continue next
			}
			if i > 0 && CompareKeys(keys[i-1], v) >= 0 {
				continue next // not strictly increasing: bounds would lie
			}
			if i > 0 && strings.Compare(keys[i-1], v) >= 0 {
				lex = false
			}
			keys[i] = v
		}
		return attr, keys, lex
	}
	return "", nil, false
}

// shardTree builds shard k's copy of the tree under n: containers keep
// only their k-th child range (copied whole, nested repeats intact),
// everything else is copied verbatim and recursed into. Each container
// encountered appends shard k's KeyRange to *ranges.
func shardTree(n *xdm.Node, k, shards int, doc, path string, ranges *[]KeyRange) *xdm.Node {
	c := &xdm.Node{Kind: n.Kind, Name: n.Name, Value: n.Value, TypeAnn: n.TypeAnn}
	for _, a := range n.Attrs {
		c.SetAttr(xdm.NewAttribute(a.Name, a.Value))
	}
	if n.Kind != xdm.DocumentNode && n.Kind != xdm.ElementNode {
		return c
	}
	if n.Kind == xdm.ElementNode {
		path += "/" + n.Name
	}
	if isContainer(n) {
		kids := n.ChildElements()
		lo, hi := k*len(kids)/shards, (k+1)*len(kids)/shards
		r := KeyRange{Doc: doc, Path: path + "/" + kids[0].Name, Lo: lo, Hi: hi}
		if attr, keys, lex := containerKey(kids); attr != "" {
			r.Keyed, r.KeyAttr, r.Lex = true, attr, lex
			if lo < hi {
				r.MinKey, r.MaxKey = keys[lo], keys[hi-1]
			}
		}
		*ranges = append(*ranges, r)
		for _, ch := range kids[lo:hi] {
			cc := ch.Clone()
			c.AppendChild(cc)
		}
		return c
	}
	for _, ch := range n.Children {
		c.AppendChild(shardTree(ch, k, shards, doc, path, ranges))
	}
	return c
}

// docElemLocs walks the document the way shardTree does — recursion
// stops at containers, rows are copied whole — and classifies every
// element occurrence: a row of a top-level container, or "outside"
// (enclosing structure, which replication puts on every shard, and
// anything nested below a row, which travels with the row's key). The
// census is returned only for names that are container row names —
// other names can never match a container range, so derived routing
// never asks about them — in deterministic document order.
func docElemLocs(doc *xdm.Node, name string) []ElemLoc {
	acc := map[string]*ElemLoc{}
	var order []string
	get := func(elem string) *ElemLoc {
		l, ok := acc[elem]
		if !ok {
			l = &ElemLoc{Doc: name, Name: elem}
			acc[elem] = l
			order = append(order, elem)
		}
		return l
	}
	var markOutside func(n *xdm.Node)
	markOutside = func(n *xdm.Node) {
		for _, c := range n.Children {
			if c.Kind == xdm.ElementNode {
				get(c.Name).Outside = true
				markOutside(c)
			}
		}
	}
	var walk func(n *xdm.Node, path string)
	walk = func(n *xdm.Node, path string) {
		if n.Kind == xdm.ElementNode {
			path += "/" + n.Name
		}
		if isContainer(n) {
			kids := n.ChildElements()
			l := get(kids[0].Name)
			l.Containers++
			l.Path = path + "/" + kids[0].Name
			for _, ch := range kids {
				markOutside(ch) // descendants of rows: nested occurrences
			}
			return
		}
		for _, c := range n.Children {
			if c.Kind == xdm.ElementNode {
				get(c.Name).Outside = true
				walk(c, path)
			}
		}
	}
	walk(doc, "")
	var out []ElemLoc
	for _, elem := range order {
		if l := acc[elem]; l.Containers > 0 {
			out = append(out, *l)
		}
	}
	return out
}

package cluster

import (
	"bytes"
	"strings"
	"testing"

	"xrpc/internal/client"
	"xrpc/internal/modules"
	"xrpc/internal/netsim"
	"xrpc/internal/xdm"
)

// decoyModule keys reads and an update on decoy.xml's person id — the
// same shapes as the persons workload, against documents crafted so
// person elements also live OUTSIDE the keyed people container.
const decoyModule = `
module namespace d = "functions_d";
declare function d:getPerson($pid as xs:string) as node()*
{ doc("decoy.xml")//person[@id=$pid] };
declare updating function d:rename($pid as xs:string, $nm as xs:string)
{ for $c in doc("decoy.xml")//person[@id=$pid]/name
  return replace value of node $c with $nm };`

func decoyRegistry(t *testing.T) *modules.Registry {
	t.Helper()
	reg := modules.NewRegistry()
	if err := reg.Register(decoyModule, "http://example.org/d.xq"); err != nil {
		t.Fatal(err)
	}
	return reg
}

func decoyRequest(fn string, args ...string) *client.BulkRequest {
	br := &client.BulkRequest{
		ModuleURI: "functions_d",
		AtHint:    "http://example.org/d.xq",
		Func:      fn,
		Arity:     1,
	}
	if fn == "rename" {
		br.Arity, br.Updating = 2, true
	}
	var call []xdm.Sequence
	for _, a := range args {
		call = append(call, xdm.Sequence{xdm.String(a)})
	}
	br.Calls = [][]xdm.Sequence{call}
	return br
}

// keyedPeople renders a 4-row keyed people container (ids p0..p3,
// codepoint- and natural-ordered).
const keyedPeople = `<people>` +
	`<person id="p0"><name>a</name></person>` +
	`<person id="p1"><name>b</name></person>` +
	`<person id="p2"><name>c</name></person>` +
	`<person id="p3"><name>d</name></person>` +
	`</people>`

// TestElemLocDescriptorRoundTrip pins the census descriptor format:
// String/ParseElemLoc round-trip, malformed forms fail, and — crucially
// for shardInfo compatibility — a census descriptor never parses as a
// KeyRange descriptor and vice versa.
func TestElemLocDescriptorRoundTrip(t *testing.T) {
	locs := []ElemLoc{
		{Doc: "persons.xml", Name: "person", Containers: 1, Path: "/site/people/person"},
		{Doc: "a b.xml", Name: "row", Containers: 2, Path: "/r/g/row", Outside: true},
		{Doc: "d.xml", Name: "x", Containers: 3},
	}
	for _, l := range locs {
		back, err := ParseElemLoc(l.String())
		if err != nil {
			t.Fatalf("ParseElemLoc(%q): %v", l.String(), err)
		}
		if back != l {
			t.Fatalf("round trip: %+v != %+v", back, l)
		}
		if _, err := ParseKeyRange(l.String()); err == nil {
			t.Fatalf("ParseKeyRange accepted a census descriptor %q", l.String())
		}
	}
	r := KeyRange{Doc: "d.xml", Path: "/a/b", Lo: 0, Hi: 3}
	if _, err := ParseElemLoc(r.String()); err == nil {
		t.Fatalf("ParseElemLoc accepted a range descriptor %q", r.String())
	}
	for _, bad := range []string{
		"", "elem", `elem "d.xml"`, `elem "d.xml" "p" x "/a"`,
		`elem "d.xml" "p" 1 "/a" bogus`,
	} {
		if _, err := ParseElemLoc(bad); err == nil {
			t.Errorf("ParseElemLoc(%q) did not fail", bad)
		}
	}
}

// TestDocElemLocsCensus checks the partition-time classification: row
// names of containers get a census entry; enclosing structure, nested
// containers, and row descendants count as "outside" occurrences.
func TestDocElemLocsCensus(t *testing.T) {
	xml := `<site>` + keyedPeople +
		`<teams><team id="t1"><person id="p9"><name>n</name></person></team><team id="t2"><m/></team></teams>` +
		`</site>`
	_, _, locs, err := PartitionWithMeta("decoy.xml", xml, 2)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ElemLoc{}
	for _, l := range locs {
		if l.Doc != "decoy.xml" {
			t.Fatalf("census entry with doc %q", l.Doc)
		}
		byName[l.Name] = l
	}
	// person: rows of the people container AND nested inside a team row
	p, ok := byName["person"]
	if !ok || p.Containers != 1 || p.Path != "/site/people/person" || !p.Outside {
		t.Fatalf("person census = %+v (present %v), want 1 container at /site/people/person with outside occurrences", p, ok)
	}
	// team: rows of exactly one container, nowhere else
	tm, ok := byName["team"]
	if !ok || tm.Containers != 1 || tm.Path != "/site/teams/team" || tm.Outside {
		t.Fatalf("team census = %+v (present %v), want the clean single-container entry", tm, ok)
	}
	// non-row names (site, name, m, …) are not emitted
	for _, n := range []string{"site", "teams", "name", "m"} {
		if _, ok := byName[n]; ok {
			t.Errorf("census contains non-row name %q", n)
		}
	}
}

// buildTable partitions decoy.xml across 2 shards and builds a routing
// table carrying the emitted metadata (census included unless withLocs
// is false).
func buildTable(t *testing.T, xml string, withLocs bool) *RoutingTable {
	t.Helper()
	_, ranges, locs, err := PartitionWithMeta("decoy.xml", xml, 2)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRoutingTable(2)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		if err := rt.Add(s, "xrpc://t"+string(rune('0'+s))); err != nil {
			t.Fatal(err)
		}
		if err := rt.SetRanges(s, ranges[s]); err != nil {
			t.Fatal(err)
		}
	}
	if withLocs {
		rt.SetElemLocs(locs)
	}
	return rt
}

// TestFindContainerRequiresProvablyUniqueHome is the regression test
// for the derived-route soundness hole: a suffix that matches a keyed
// container must still be rejected when same-named elements can live
// anywhere else — in a non-keyed twin container, replicated outside any
// container, or nested inside another container's rows — or when no
// census proves otherwise.
func TestFindContainerRequiresProvablyUniqueHome(t *testing.T) {
	clean := `<site>` + keyedPeople + `</site>`

	// clean document: unique keyed home, census proves it
	rt := buildTable(t, clean, true)
	for _, c := range []struct {
		suffix string
		rooted bool
	}{{"person", false}, {"people/person", false}, {"/site/people/person", true}} {
		r, ok := rt.FindContainer("decoy.xml", c.suffix, c.rooted)
		if !ok || r.Path != "/site/people/person" || !r.Keyed {
			t.Fatalf("clean doc, suffix %q: FindContainer = %+v, %v; want the keyed container", c.suffix, r, ok)
		}
	}

	// no census recorded (e.g. a hand-built table): nothing is provable
	if _, ok := buildTable(t, clean, false).FindContainer("decoy.xml", "person", false); ok {
		t.Fatal("FindContainer matched without a census to prove uniqueness")
	}

	cases := []struct {
		name, xml string
		rooted    bool
	}{
		{"non-keyed twin container", `<site>` + keyedPeople +
			`<archive><person><name>old1</name></person><person><name>old2</name></person></archive></site>`, false},
		{"replicated outside containers", `<site>` + keyedPeople +
			`<featured><person id="px"><name>x</name></person></featured></site>`, false},
		{"replicated outside, rooted", `<site>` + keyedPeople +
			`<featured><person id="px"><name>x</name></person></featured></site>`, true},
		{"nested in another container's rows", `<site>` + keyedPeople +
			`<teams><team id="t1"><person id="p9"><name>n</name></person></team><team id="t2"><m/></team></teams></site>`, false},
	}
	for _, c := range cases {
		rt := buildTable(t, c.xml, true)
		suffix := "person"
		if c.rooted {
			suffix = "/site/people/person"
		}
		if r, ok := rt.FindContainer("decoy.xml", suffix, c.rooted); ok {
			t.Errorf("%s: FindContainer matched %+v; pruning would drop the decoy elements", c.name, r)
		}
	}
}

// TestPlannerRefusesDecoyElementHomes drives the soundness hole end to
// end: decoy.xml holds keyed person rows PLUS person elements the key
// bounds know nothing about. The derivation must refuse, reads must
// broadcast (byte-identical to a planner-less coordinator), and an
// updating request must fail with "no route" instead of being misrouted
// by a derived spec.
func TestPlannerRefusesDecoyElementHomes(t *testing.T) {
	cases := []struct {
		name, xml, probe string
	}{
		// replicated: broadcast legitimately returns one copy per shard;
		// pruning would return at most one
		{"replicated outside containers",
			`<site>` + keyedPeople + `<featured><person id="px"><name>x</name></person></featured></site>`,
			"px"},
		// nested: person p9 travels with team t1's row, outside the
		// people key bounds [p0,p3]; pruning would find zero candidates
		// and silently return empty
		{"nested in another container's rows",
			`<site>` + keyedPeople + `<teams><team id="t1"><person id="p9"><name>n</name></person></team><team id="t2"><m/></team></teams></site>`,
			"p9"},
	}
	for _, c := range cases {
		net := netsim.NewNetwork(0, 0)
		dep, err := Deploy(net, decoyRegistry(t), map[string]string{"decoy.xml": c.xml},
			DeployConfig{Shards: 2, Replication: 1})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		co := dep.Coordinator() // zero hand-written specs, planner attached

		br := decoyRequest("getPerson", c.probe)
		spec, reason, analysed := co.derivedSpec(br)
		if spec != nil || !analysed {
			t.Fatalf("%s: derivedSpec = %+v (analysed %v), want an analysed refusal", c.name, spec, analysed)
		}
		if !strings.Contains(reason, "does not resolve") {
			t.Fatalf("%s: refusal reason = %q", c.name, reason)
		}
		if dec := co.plan(br); dec.strategy != "broadcast" {
			t.Fatalf("%s: plan chose %s, want broadcast", c.name, dec.strategy)
		}

		res, err := co.Scatter(br)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(res[0]) == 0 {
			t.Fatalf("%s: probe for %s came back empty — the decoy element was dropped", c.name, c.probe)
		}
		plain := NewCoordinator(dep.Table, client.New(net)) // no planner: pure broadcast
		bres, err := plain.Scatter(br)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeResults(br, res), encodeResults(br, bres)) {
			t.Fatalf("%s: planner scatter differs from broadcast", c.name)
		}

		// the update path must not trust a derived route either
		if _, err := co.Update(decoyRequest("rename", c.probe, "zz")); err == nil ||
			!strings.Contains(err.Error(), "no route") {
			t.Fatalf("%s: update error = %v, want a no-route refusal", c.name, err)
		}
	}
}

// TestShardInfoAdvertisesElemCensus checks the census travels with the
// shardInfo descriptors, so a coordinator building its table from live
// peers can rebuild it (the e2e xrpcd test exercises the same flow over
// HTTP for ranges).
func TestShardInfoAdvertisesElemCensus(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	dep := deployPersons(t, net, 9, 3, 1)
	cl := client.New(net)
	for s := 0; s < 3; s++ {
		res, err := cl.CallBulk(dep.Table.Primary(s), &client.BulkRequest{
			ModuleURI: client.SystemModule,
			Func:      "shardInfo",
			Arity:     0,
			Calls:     [][]xdm.Sequence{{}},
		})
		if err != nil {
			t.Fatal(err)
		}
		var got []ElemLoc
		for _, item := range res[0] {
			if l, err := ParseElemLoc(item.StringValue()); err == nil {
				got = append(got, l)
			}
		}
		want, ok := dep.Table.ElemLocFor("persons.xml", "person")
		if !ok {
			t.Fatal("deployment table has no census for persons.xml person")
		}
		if len(got) != 1 || got[0] != want {
			t.Fatalf("shard %d advertises census %+v, table holds %+v", s, got, want)
		}
	}
}

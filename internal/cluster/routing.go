package cluster

import (
	"fmt"
	"sync"
)

// RoutingTable maps shard index → peer URIs. Each shard has one or more
// replicas (primary first); the coordinator fails over to the next
// replica when a peer is unreachable at the transport level. The table
// is URI-scheme agnostic: the same table drives simulated peers on a
// netsim.Network and real HTTP peers (xrpcd -shard k -of n).
type RoutingTable struct {
	mu       sync.RWMutex
	replicas [][]string
}

// NewRoutingTable creates an empty table for n shards.
func NewRoutingTable(n int) (*RoutingTable, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: routing table for %d shards", n)
	}
	return &RoutingTable{replicas: make([][]string, n)}, nil
}

// Add registers a peer URI serving the given shard. The first peer
// added for a shard is its primary; later peers are failover replicas
// in registration order.
func (rt *RoutingTable) Add(shard int, uri string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if shard < 0 || shard >= len(rt.replicas) {
		return fmt.Errorf("cluster: shard %d out of range [0,%d)", shard, len(rt.replicas))
	}
	rt.replicas[shard] = append(rt.replicas[shard], uri)
	return nil
}

// NumShards returns the number of shards the table routes.
func (rt *RoutingTable) NumShards() int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return len(rt.replicas)
}

// Replicas returns the peer URIs serving the shard, primary first.
func (rt *RoutingTable) Replicas(shard int) []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if shard < 0 || shard >= len(rt.replicas) {
		return nil
	}
	out := make([]string, len(rt.replicas[shard]))
	copy(out, rt.replicas[shard])
	return out
}

// Primary returns the primary peer URI of the shard ("" if none).
func (rt *RoutingTable) Primary(shard int) string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if shard < 0 || shard >= len(rt.replicas) || len(rt.replicas[shard]) == 0 {
		return ""
	}
	return rt.replicas[shard][0]
}

// ReplicationFactor returns the smallest replica count across shards
// (0 if any shard has no peer — an incomplete table).
func (rt *RoutingTable) ReplicationFactor() int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	min := -1
	for _, r := range rt.replicas {
		if min == -1 || len(r) < min {
			min = len(r)
		}
	}
	if min == -1 {
		min = 0
	}
	return min
}

// Complete reports whether every shard has at least one peer.
func (rt *RoutingTable) Complete() bool { return rt.ReplicationFactor() >= 1 }

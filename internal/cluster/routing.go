package cluster

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// KeyRange describes what one shard *contains* of one partitioned
// container: the child-ordinal slice [Lo,Hi) of the container whose
// children live at Path inside document Doc, plus — when the container
// is keyed — the inclusive key bounds of that slice under natural key
// order. Range metadata is what turns the routing table from "where
// shards live" into "what shards hold": single-shard routing of updates
// and predicate pruning of read scatters both resolve keys against it.
type KeyRange struct {
	// Doc is the document name the container lives in.
	Doc string
	// Path is the element path of the container's repeated children,
	// e.g. "/site/people/person".
	Path string
	// Lo, Hi bound the child-ordinal slice [Lo,Hi) this shard holds.
	Lo, Hi int
	// Keyed reports whether the container's children carry a key
	// attribute in strictly increasing natural order across the whole
	// document, making MinKey/MaxKey meaningful bounds.
	Keyed bool
	// KeyAttr is the attribute the keys are drawn from (e.g. "id").
	KeyAttr string
	// MinKey, MaxKey are the inclusive key bounds of this shard's slice
	// (empty when the slice is empty).
	MinKey, MaxKey string
	// Lex reports that the container's keys are strictly increasing in
	// plain codepoint order too (not just natural order) across the
	// whole document. XQuery string comparison is codepoint order, so
	// only then do MinKey/MaxKey bound the shard's keys under the order
	// a range predicate (@a >= $k) actually evaluates in — which is
	// what makes range-predicate pruning sound. Generated keys like
	// personN are natural-ordered but not codepoint-ordered ("person10"
	// < "person9"), so Lex stays false and range pruning stays off.
	Lex bool
}

// Empty reports whether the shard holds no children of this container.
func (r KeyRange) Empty() bool { return r.Lo >= r.Hi }

// Contains reports whether this shard's slice may hold the given key.
// Unkeyed ranges return true — without key bounds the shard can never
// be excluded (pruning must stay conservative); keyed empty slices
// return false.
func (r KeyRange) Contains(key string) bool {
	if !r.Keyed {
		return true // without key bounds the shard can never be excluded
	}
	if r.Empty() {
		return false
	}
	return CompareKeys(r.MinKey, key) <= 0 && CompareKeys(key, r.MaxKey) <= 0
}

// String renders the range as a single parseable descriptor (the form
// the shardInfo system call reports); ParseKeyRange round-trips it.
func (r KeyRange) String() string {
	s := fmt.Sprintf("%s %s [%d,%d)", strconv.Quote(r.Doc), strconv.Quote(r.Path), r.Lo, r.Hi)
	if r.Keyed {
		s += fmt.Sprintf(" %s %s %s", strconv.Quote(r.KeyAttr), strconv.Quote(r.MinKey), strconv.Quote(r.MaxKey))
		if r.Lex {
			s += " lex"
		}
	}
	return s
}

// ParseKeyRange parses a KeyRange.String() descriptor.
func ParseKeyRange(s string) (KeyRange, error) {
	var r KeyRange
	fail := func() (KeyRange, error) {
		return KeyRange{}, fmt.Errorf("cluster: malformed range descriptor %q", s)
	}
	quoted := func(rest string) (string, string, bool) {
		rest = strings.TrimLeft(rest, " ")
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return "", rest, false
		}
		v, err := strconv.Unquote(q)
		if err != nil {
			return "", rest, false
		}
		return v, rest[len(q):], true
	}
	rest := s
	var ok bool
	if r.Doc, rest, ok = quoted(rest); !ok {
		return fail()
	}
	if r.Path, rest, ok = quoted(rest); !ok {
		return fail()
	}
	rest = strings.TrimLeft(rest, " ")
	close := strings.IndexByte(rest, ')')
	if close < 0 {
		return fail()
	}
	if _, err := fmt.Sscanf(rest[:close+1], "[%d,%d)", &r.Lo, &r.Hi); err != nil {
		return fail()
	}
	rest = rest[close+1:]
	if strings.TrimSpace(rest) == "" {
		return r, nil
	}
	r.Keyed = true
	if r.KeyAttr, rest, ok = quoted(rest); !ok {
		return fail()
	}
	if r.MinKey, rest, ok = quoted(rest); !ok {
		return fail()
	}
	if r.MaxKey, rest, ok = quoted(rest); !ok {
		return fail()
	}
	rest = strings.TrimSpace(rest)
	if rest == "lex" {
		r.Lex = true
		rest = ""
	}
	if rest != "" {
		return fail()
	}
	return r, nil
}

// ElemLoc records where elements of one name live inside a partitioned
// document — the partition-time census that licenses a *derived* route
// to prune. A derived spec matches a path suffix like "person" against
// a keyed container, but `//person[@id=$k]` selects person elements
// anywhere in the document: rows of other containers (sliced across
// shards under different bounds), enclosing structure (replicated to
// every shard), or elements nested inside another container's rows
// (shipped wherever that row went). Pruning on the matched container's
// key bounds is sound only when its rows are provably the ONLY elements
// of that name — exactly what this census records. Emitted by the
// partitioner for every name that is the row name of some container.
type ElemLoc struct {
	// Doc is the document the census describes.
	Doc string
	// Name is the element name.
	Name string
	// Containers counts the containers whose rows bear Name. Two
	// containers may share one path (sibling repeats under a non-
	// container parent), so a count — not a path set — is what proves
	// uniqueness.
	Containers int
	// Path is the container path of the rows when Containers == 1.
	Path string
	// Outside reports that Name also occurs outside any container's
	// rows: as enclosing structure (replicated to every shard) or
	// nested inside some container's row subtrees.
	Outside bool
}

// String renders the census entry as a single parseable descriptor. The
// "elem" prefix keeps it from parsing as a KeyRange descriptor, so
// pre-existing shardInfo consumers skip it; ParseElemLoc round-trips it.
func (l ElemLoc) String() string {
	s := fmt.Sprintf("elem %s %s %d %s",
		strconv.Quote(l.Doc), strconv.Quote(l.Name), l.Containers, strconv.Quote(l.Path))
	if l.Outside {
		s += " outside"
	}
	return s
}

// ParseElemLoc parses an ElemLoc.String() descriptor.
func ParseElemLoc(s string) (ElemLoc, error) {
	var l ElemLoc
	fail := func() (ElemLoc, error) {
		return ElemLoc{}, fmt.Errorf("cluster: malformed element-location descriptor %q", s)
	}
	rest, ok := strings.CutPrefix(s, "elem ")
	if !ok {
		return fail()
	}
	quoted := func(rest string) (string, string, bool) {
		rest = strings.TrimLeft(rest, " ")
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return "", rest, false
		}
		v, err := strconv.Unquote(q)
		if err != nil {
			return "", rest, false
		}
		return v, rest[len(q):], true
	}
	if l.Doc, rest, ok = quoted(rest); !ok {
		return fail()
	}
	if l.Name, rest, ok = quoted(rest); !ok {
		return fail()
	}
	rest = strings.TrimLeft(rest, " ")
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		sp = len(rest)
	}
	n, err := strconv.Atoi(rest[:sp])
	if err != nil {
		return fail()
	}
	l.Containers = n
	rest = rest[sp:]
	if l.Path, rest, ok = quoted(rest); !ok {
		return fail()
	}
	rest = strings.TrimSpace(rest)
	if rest == "outside" {
		l.Outside = true
		rest = ""
	}
	if rest != "" {
		return fail()
	}
	return l, nil
}

// CompareKeys orders partition keys "naturally": maximal runs of ASCII
// digits compare as integers ("person2" < "person10"), everything else
// byte-wise. This is the order the partitioner checks container keys
// against and the order Contains resolves probes with — plain
// lexicographic order would mis-route generated keys like personN.
// Returns -1, 0, or +1.
func CompareKeys(a, b string) int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ca, cb := a[i], b[j]
		da, db := ca >= '0' && ca <= '9', cb >= '0' && cb <= '9'
		if da && db {
			// compare the full digit runs numerically
			si, sj := i, j
			for i < len(a) && a[i] >= '0' && a[i] <= '9' {
				i++
			}
			for j < len(b) && b[j] >= '0' && b[j] <= '9' {
				j++
			}
			na, nb := strings.TrimLeft(a[si:i], "0"), strings.TrimLeft(b[sj:j], "0")
			if len(na) != len(nb) {
				if len(na) < len(nb) {
					return -1
				}
				return 1
			}
			if c := strings.Compare(na, nb); c != 0 {
				return c
			}
			continue
		}
		if ca != cb {
			if ca < cb {
				return -1
			}
			return 1
		}
		i++
		j++
	}
	switch {
	case len(a)-i < len(b)-j:
		return -1
	case len(a)-i > len(b)-j:
		return 1
	}
	return strings.Compare(a, b) // leading-zero tie-break, for stability
}

// RoutingTable maps shard index → peer URIs plus per-shard range
// metadata. Each shard has one or more replicas (primary first); the
// coordinator fails over to the next replica when a peer is unreachable
// at the transport level, and evicts replicas that fall behind their
// primary (version fencing) so they stop serving stale reads. The table
// is URI-scheme agnostic: the same table drives simulated peers on a
// netsim.Network and real HTTP peers (xrpcd -shard k -of n).
type RoutingTable struct {
	mu       sync.RWMutex
	replicas [][]string
	ranges   [][]KeyRange
	// locs is the partition-time element-name census, doc → name →
	// ElemLoc (see ElemLoc). Derived routes consult it through
	// FindContainer; absence of an entry means "unproven" and rejects
	// the derivation — registered specs never read it.
	locs map[string]map[string]ElemLoc
	// validKnown/validErr cache Validate's verdict between mutations, so
	// the per-request validity check on the scatter/update hot path is a
	// flag read, not a full table walk.
	validKnown bool
	validErr   error
}

// NewRoutingTable creates an empty table for n shards.
func NewRoutingTable(n int) (*RoutingTable, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: routing table for %d shards", n)
	}
	return &RoutingTable{
		replicas: make([][]string, n),
		ranges:   make([][]KeyRange, n),
	}, nil
}

// Add registers a peer URI serving the given shard. The first peer
// added for a shard is its primary; later peers are failover replicas
// in registration order.
func (rt *RoutingTable) Add(shard int, uri string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if shard < 0 || shard >= len(rt.replicas) {
		return fmt.Errorf("cluster: shard %d out of range [0,%d)", shard, len(rt.replicas))
	}
	rt.replicas[shard] = append(rt.replicas[shard], uri)
	rt.validKnown = false
	return nil
}

// Evict removes a peer URI from the shard's replica list — the
// coordinator's response to a replica that failed PUL replication or
// reported a diverged store version after commit. The last remaining
// peer of a shard is never evicted (a routable-but-stale shard beats an
// unroutable one; the primary's failure surfaces as a transaction
// error instead). Reports whether the URI was removed.
func (rt *RoutingTable) Evict(shard int, uri string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if shard < 0 || shard >= len(rt.replicas) || len(rt.replicas[shard]) <= 1 {
		return false
	}
	for i, u := range rt.replicas[shard] {
		if u == uri {
			rt.replicas[shard] = append(rt.replicas[shard][:i:i], rt.replicas[shard][i+1:]...)
			rt.validKnown = false
			return true
		}
	}
	return false
}

// SetRanges records the shard's partition metadata (what the
// partitioner emitted for this shard).
func (rt *RoutingTable) SetRanges(shard int, ranges []KeyRange) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if shard < 0 || shard >= len(rt.ranges) {
		return fmt.Errorf("cluster: shard %d out of range [0,%d)", shard, len(rt.ranges))
	}
	rt.ranges[shard] = append([]KeyRange(nil), ranges...)
	rt.validKnown = false
	return nil
}

// SetElemLocs records the element-name census of one document (what
// the partitioner emitted; identical for every shard of the document).
// Entries replace any previous census for the same (doc, name).
func (rt *RoutingTable) SetElemLocs(locs []ElemLoc) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.locs == nil {
		rt.locs = make(map[string]map[string]ElemLoc)
	}
	for _, l := range locs {
		byName := rt.locs[l.Doc]
		if byName == nil {
			byName = make(map[string]ElemLoc)
			rt.locs[l.Doc] = byName
		}
		byName[l.Name] = l
	}
}

// ElemLocFor returns the recorded census entry for an element name of a
// document (false when the partitioner emitted none).
func (rt *RoutingTable) ElemLocFor(doc, name string) (ElemLoc, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	l, ok := rt.locs[doc][name]
	return l, ok
}

// Ranges returns the shard's partition metadata.
func (rt *RoutingTable) Ranges(shard int) []KeyRange {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if shard < 0 || shard >= len(rt.ranges) {
		return nil
	}
	return append([]KeyRange(nil), rt.ranges[shard]...)
}

func rangeFor(ranges []KeyRange, doc, path string) (KeyRange, bool) {
	for _, r := range ranges {
		if r.Doc == doc && r.Path == path {
			return r, true
		}
	}
	return KeyRange{}, false
}

// Prunable reports whether the table holds keyed range metadata for the
// container — i.e. whether a key probe against it can exclude at least
// some shard. Without any keyed range, pruning degenerates to broadcast
// and the coordinator keeps the cheaper encode-once scatter path.
func (rt *RoutingTable) Prunable(doc, path string) bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	for _, ranges := range rt.ranges {
		if r, ok := rangeFor(ranges, doc, path); ok && r.Keyed {
			return true
		}
	}
	return false
}

// CandidateShards returns the shards whose range for (doc, path) may
// contain the key, in shard order. Shards without metadata for the
// container are always candidates — a shard is excluded only when its
// range proves the key absent, so pruning can never change results.
func (rt *RoutingTable) CandidateShards(doc, path, key string) []int {
	return rt.CandidateShardsOp(doc, path, key, "=")
}

// containsOp reports whether this shard's slice may hold a key
// satisfying `@attr op key`. Equality resolves in natural key order
// (Contains); range operators resolve in codepoint order — the order
// XQuery string comparison uses — and can only exclude a shard whose
// container is Lex (codepoint-sorted), because only then are
// MinKey/MaxKey codepoint bounds of the slice.
func (r KeyRange) containsOp(key, op string) bool {
	if op == "=" {
		return r.Contains(key)
	}
	if !r.Keyed || !r.Lex {
		return true
	}
	if r.Empty() {
		return false
	}
	switch op {
	case "<":
		return strings.Compare(r.MinKey, key) < 0
	case "<=":
		return strings.Compare(r.MinKey, key) <= 0
	case ">":
		return strings.Compare(r.MaxKey, key) > 0
	case ">=":
		return strings.Compare(r.MaxKey, key) >= 0
	}
	return true // unknown operator: never exclude
}

// CandidateShardsOp generalizes CandidateShards to range predicates:
// the shards whose range may hold a key satisfying `@attr op key`, in
// shard order. Same conservatism: a shard is excluded only when its
// range proves no key can match.
func (rt *RoutingTable) CandidateShardsOp(doc, path, key, op string) []int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]int, 0, len(rt.replicas))
	for s := range rt.replicas {
		r, ok := rangeFor(rt.ranges[s], doc, path)
		if !ok || r.containsOp(key, op) {
			out = append(out, s)
		}
	}
	return out
}

// FindContainer locates the unique keyed container whose path matches
// the derived pattern: the full rooted path when rooted, otherwise a
// path whose trailing steps equal the suffix ("person" matches
// "/site/people/person") — and proves the match is the only place the
// selected elements can live. Three checks, each rejecting to the safe
// broadcast fallback:
//
//  1. Exactly one container path (keyed or not) may match the pattern —
//     a non-keyed container ending in the same steps holds same-named
//     rows with no key bounds, so pruning on the keyed one would drop
//     its rows on excluded shards.
//  2. The unique match must be keyed (unkeyed bounds prune nothing).
//  3. The partitioner's element-name census (ElemLoc) must prove the
//     matched container's rows are the ONLY elements of that name in
//     the document: one container bears the name, at this path, and the
//     name never occurs outside container rows (enclosing structure is
//     replicated to every shard; elements nested inside another
//     container's rows travel with that row's key, not their own). A
//     document or table without a census entry matches nothing — a
//     derived spec must never guess.
func (rt *RoutingTable) FindContainer(doc, suffix string, rooted bool) (KeyRange, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	matched := map[string]KeyRange{}
	for _, ranges := range rt.ranges {
		for _, r := range ranges {
			if r.Doc != doc {
				continue
			}
			if rooted {
				if r.Path != suffix {
					continue
				}
			} else if r.Path != suffix && !strings.HasSuffix(r.Path, "/"+suffix) {
				continue
			}
			matched[r.Path] = r
		}
	}
	if len(matched) != 1 {
		return KeyRange{}, false
	}
	for _, r := range matched {
		if !r.Keyed {
			return KeyRange{}, false
		}
		name := suffix[strings.LastIndexByte(suffix, '/')+1:]
		loc, ok := rt.locs[doc][name]
		if !ok || loc.Containers != 1 || loc.Path != r.Path || loc.Outside {
			return KeyRange{}, false
		}
		return r, true
	}
	return KeyRange{}, false
}

// NumShards returns the number of shards the table routes.
func (rt *RoutingTable) NumShards() int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return len(rt.replicas)
}

// Replicas returns the peer URIs serving the shard, primary first.
func (rt *RoutingTable) Replicas(shard int) []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if shard < 0 || shard >= len(rt.replicas) {
		return nil
	}
	out := make([]string, len(rt.replicas[shard]))
	copy(out, rt.replicas[shard])
	return out
}

// Primary returns the primary peer URI of the shard ("" if none).
func (rt *RoutingTable) Primary(shard int) string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if shard < 0 || shard >= len(rt.replicas) || len(rt.replicas[shard]) == 0 {
		return ""
	}
	return rt.replicas[shard][0]
}

// ReplicationFactor returns the smallest replica count across shards
// (0 if any shard has no peer — an incomplete table).
func (rt *RoutingTable) ReplicationFactor() int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	min := -1
	for _, r := range rt.replicas {
		if min == -1 || len(r) < min {
			min = len(r)
		}
	}
	if min == -1 {
		min = 0
	}
	return min
}

// Validate checks the table is actually routable, not merely non-empty:
// every shard must have at least one peer (no shard-index gaps), every
// peer URI must be well-formed, no URI may serve twice (a duplicate
// would make "failover to the next replica" retry the same peer), and
// range metadata — when present — must tile each container contiguously
// across the shards with consistent keying. Returns the first problem
// found, nil for a valid table. The verdict is cached between mutations
// (the coordinator re-checks it on every request).
func (rt *RoutingTable) Validate() error {
	rt.mu.RLock()
	if rt.validKnown {
		err := rt.validErr
		rt.mu.RUnlock()
		return err
	}
	rt.mu.RUnlock()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if !rt.validKnown {
		rt.validErr = rt.validateLocked()
		rt.validKnown = true
	}
	return rt.validErr
}

func (rt *RoutingTable) validateLocked() error {
	if len(rt.replicas) == 0 {
		return fmt.Errorf("cluster: routing table has no shards")
	}
	seen := map[string]string{} // uri -> "shard s replica j"
	for s, reps := range rt.replicas {
		if len(reps) == 0 {
			return fmt.Errorf("cluster: shard %d has no peers (shard-index gap)", s)
		}
		for j, uri := range reps {
			where := fmt.Sprintf("shard %d replica %d", s, j)
			if err := validateURI(uri); err != nil {
				return fmt.Errorf("cluster: %s: %w", where, err)
			}
			if prev, dup := seen[uri]; dup {
				return fmt.Errorf("cluster: duplicate peer URI %q (%s and %s)", uri, prev, where)
			}
			seen[uri] = where
		}
	}
	return rt.validateRangesLocked()
}

func validateURI(uri string) error {
	if strings.TrimSpace(uri) == "" {
		return fmt.Errorf("empty peer URI")
	}
	if strings.ContainsAny(uri, " \t\r\n") {
		return fmt.Errorf("malformed peer URI %q: contains whitespace", uri)
	}
	if i := strings.Index(uri, "://"); i >= 0 {
		if i == 0 {
			return fmt.Errorf("malformed peer URI %q: empty scheme", uri)
		}
		if uri[i+len("://"):] == "" {
			return fmt.Errorf("malformed peer URI %q: empty host", uri)
		}
	}
	return nil
}

func (rt *RoutingTable) validateRangesLocked() error {
	// collect the containers any shard declares
	type contKey struct{ doc, path string }
	conts := map[contKey]bool{}
	declared := false
	for _, ranges := range rt.ranges {
		for _, r := range ranges {
			conts[contKey{r.Doc, r.Path}] = true
			declared = true
		}
	}
	if !declared {
		return nil
	}
	for c := range conts {
		prevHi := 0
		keyAttr := ""
		for s := range rt.ranges {
			r, ok := rangeFor(rt.ranges[s], c.doc, c.path)
			if !ok {
				return fmt.Errorf("cluster: shard %d missing range metadata for %s %s", s, c.doc, c.path)
			}
			if r.Lo > r.Hi || r.Lo < 0 {
				return fmt.Errorf("cluster: shard %d has inverted range [%d,%d) for %s %s", s, r.Lo, r.Hi, c.doc, c.path)
			}
			if r.Lo != prevHi {
				return fmt.Errorf("cluster: range gap at shard %d for %s %s: starts at %d, previous shard ended at %d",
					s, c.doc, c.path, r.Lo, prevHi)
			}
			prevHi = r.Hi
			if r.Keyed {
				if keyAttr == "" {
					keyAttr = r.KeyAttr
				} else if r.KeyAttr != keyAttr {
					return fmt.Errorf("cluster: shard %d keys %s %s by %q, earlier shards by %q",
						s, c.doc, c.path, r.KeyAttr, keyAttr)
				}
				if !r.Empty() && CompareKeys(r.MinKey, r.MaxKey) > 0 {
					return fmt.Errorf("cluster: shard %d has inverted key bounds %q..%q for %s %s",
						s, r.MinKey, r.MaxKey, c.doc, c.path)
				}
			}
		}
	}
	return nil
}

// Complete reports whether the table is valid and fully routable (see
// Validate for what that means — it is much stronger than "every shard
// has a peer").
func (rt *RoutingTable) Complete() bool { return rt.Validate() == nil }

package cluster

import (
	"fmt"
	"sync"
	"time"

	"xrpc/internal/client"
	"xrpc/internal/server"
	"xrpc/internal/xdm"
)

// Eviction used to be the end of a replica's life; with durable shards
// it is a demotion. The coordinator remembers every replica it removed
// from the table, and Rejoin drives the demote→resync→rejoin cycle:
// tell the demoted peer to catch up from its shard's current primary
// (the resyncFrom system verb — log shipping when the primary's WAL
// still covers the replica's version, full snapshot transfer
// otherwise), verify the fence versions line up, and re-add it through
// the routing table's ordinary table-flip path.

// DemotedReplica records one eviction awaiting rejoin.
type DemotedReplica struct {
	Shard int
	URI   string
	// Reason is the eviction cause (diagnostics only).
	Reason string
	// When is the eviction time.
	When time.Time
}

// demotions tracks evicted replicas; embedded in Coordinator state via
// a dedicated mutex (evictions happen on the update hot path).
type demotions struct {
	mu   sync.Mutex
	list []DemotedReplica
}

func (d *demotions) add(rep DemotedReplica) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, r := range d.list {
		if r.Shard == rep.Shard && r.URI == rep.URI {
			return // already queued for rejoin
		}
	}
	d.list = append(d.list, rep)
}

func (d *demotions) remove(shard int, uri string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, r := range d.list {
		if r.Shard == shard && r.URI == uri {
			d.list = append(d.list[:i:i], d.list[i+1:]...)
			return
		}
	}
}

func (d *demotions) snapshot() []DemotedReplica {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]DemotedReplica(nil), d.list...)
}

// Demoted lists the replicas evicted from the table and not yet
// rejoined, oldest first.
func (co *Coordinator) Demoted() []DemotedReplica {
	return co.demoted.snapshot()
}

// Rejoin resyncs one demoted replica from its shard's current primary
// and re-adds it to the routing table once its version has caught up to
// the primary's. The replica serves no routed traffic until the final
// Table.Add — the same table-flip path a fresh deployment uses.
//
// Known gap: commits that land between the final resync round and the
// Table.Add are not replicated to the rejoining peer (it is not yet in
// the table). The post-add fence probe below narrows the window but a
// racing update can still slip through; closing it needs primary-side
// membership (see ROADMAP).
func (co *Coordinator) Rejoin(shard int, uri string) error {
	primary := co.Table.Primary(shard)
	if primary == "" {
		return xdm.Errorf("XRPC0007", "cluster: shard %d has no primary to resync from", shard)
	}
	if primary == uri {
		return xdm.Errorf("XRPC0007", "cluster: %s is shard %d's primary, not a demoted replica", uri, shard)
	}
	const maxAttempts = 3
	var repV int64
	caught := false
	for attempt := 0; attempt < maxAttempts && !caught; attempt++ {
		v, err := co.resync(uri, primary)
		if err != nil {
			return fmt.Errorf("cluster: resync %s from %s: %w", uri, primary, err)
		}
		repV = v
		primV, err := co.peerVersion(primary)
		if err != nil {
			return fmt.Errorf("cluster: probing primary %s: %w", primary, err)
		}
		caught = repV >= primV
	}
	if !caught {
		return xdm.Errorf("XRPC0007",
			"cluster: %s cannot catch shard %d's primary (replica at v%d)", uri, shard, repV)
	}
	if err := co.Table.Add(shard, uri); err != nil {
		return err
	}
	co.demoted.remove(shard, uri)
	if m := co.Metrics; m != nil {
		m.Rejoins.Inc()
	}
	return nil
}

// RejoinDemoted attempts to rejoin every demoted replica, returning how
// many made it back and the first error encountered (the rest are still
// attempted).
func (co *Coordinator) RejoinDemoted() (int, error) {
	var firstErr error
	n := 0
	for _, rep := range co.demoted.snapshot() {
		if err := co.Rejoin(rep.Shard, rep.URI); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		n++
	}
	return n, firstErr
}

// StartAutoRejoin retries RejoinDemoted every interval until the
// returned stop function is called — the hands-off mode for deployments
// where a demoted peer is expected to come back (restart, partition
// heal) rather than be replaced.
func (co *Coordinator) StartAutoRejoin(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				co.RejoinDemoted()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// resync tells the demoted peer to catch up from primary (the
// resyncFrom system verb runs on the follower) and returns the
// follower's post-resync version.
func (co *Coordinator) resync(uri, primary string) (int64, error) {
	if m := co.Metrics; m != nil {
		m.Resyncs.Inc()
	}
	res, err := co.Client.CallBulk(uri, &client.BulkRequest{
		ModuleURI: client.SystemModule,
		Func:      "resyncFrom",
		Arity:     1,
		Calls:     [][]xdm.Sequence{{{xdm.String(primary)}}},
	})
	if err != nil {
		return 0, err
	}
	if len(res) != 1 || len(res[0]) < 2 {
		return 0, xdm.Errorf("XRPC0007", "resyncFrom: malformed reply (%d items)", len(res))
	}
	v, ok := res[0][1].(xdm.Integer)
	if !ok {
		return 0, xdm.Errorf("XRPC0007", "resyncFrom: no version in reply")
	}
	return int64(v), nil
}

// peerVersion probes one peer's commit-fence version via shardInfo.
func (co *Coordinator) peerVersion(uri string) (int64, error) {
	res, err := co.Client.CallBulk(uri, &client.BulkRequest{
		ModuleURI: client.SystemModule,
		Func:      "shardInfo",
		Arity:     0,
		Calls:     [][]xdm.Sequence{{}},
	})
	if err != nil {
		return 0, err
	}
	if len(res) != 1 {
		return 0, xdm.Errorf("XRPC0007", "shardInfo: malformed reply")
	}
	for _, it := range res[0] {
		if v, ok := server.ParseVersionItem(it.StringValue()); ok {
			return v, nil
		}
	}
	return 0, xdm.Errorf("XRPC0007", "shardInfo reply from %s carries no version fence", uri)
}

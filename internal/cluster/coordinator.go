package cluster

import (
	"errors"
	"fmt"
	"sync"

	"xrpc/internal/client"
	"xrpc/internal/soap"
	"xrpc/internal/xdm"
)

// DefaultClusterURI is the virtual destination that triggers
// scatter-gather dispatch in a Coordinator.
const DefaultClusterURI = "xrpc://cluster"

// Coordinator fans read-only Bulk RPC requests out across the shards of
// a routing table and merges the responses. It implements
// pathfinder.BulkCaller: requests addressed to ClusterURI are scattered
// to every shard, any other destination passes through to the
// underlying client unchanged — so a query can mix sharded and direct
// execute-at destinations.
//
// Merge semantics make the cluster look like one peer holding the whole
// document: result i of the merged response is the concatenation, in
// shard order, of every shard's result i. Because the partitioner cuts
// contiguous subtree ranges, shard order is document order, and the
// merged response is byte-identical to a single-peer execution of the
// same bulk request against the unsharded document.
//
// Error semantics mirror the server's parallel bulk executor: when
// several shards fail (after replica failover), the error of the
// lowest shard index is reported, deterministically.
type Coordinator struct {
	// ClusterURI is the virtual scatter-gather destination
	// (DefaultClusterURI if empty).
	ClusterURI string
	// Table routes shard index → replica peer URIs.
	Table *RoutingTable
	// Client performs the actual sends (and keeps the traffic stats).
	Client *client.Client
}

// NewCoordinator builds a coordinator over a routing table and client.
func NewCoordinator(rt *RoutingTable, cl *client.Client) *Coordinator {
	return &Coordinator{ClusterURI: DefaultClusterURI, Table: rt, Client: cl}
}

func (co *Coordinator) clusterURI() string {
	if co.ClusterURI == "" {
		return DefaultClusterURI
	}
	return co.ClusterURI
}

// CallBulk implements pathfinder.BulkCaller. The cluster URI scatters;
// everything else passes through.
func (co *Coordinator) CallBulk(dest string, br *client.BulkRequest) ([]xdm.Sequence, error) {
	if dest != co.clusterURI() {
		return co.Client.CallBulk(dest, br)
	}
	return co.Scatter(br)
}

// CallOneAtATime implements pathfinder.BulkCaller (the Table 2
// comparison mechanism): one scattered request per call.
func (co *Coordinator) CallOneAtATime(dest string, br *client.BulkRequest) ([]xdm.Sequence, error) {
	if dest != co.clusterURI() {
		return co.Client.CallOneAtATime(dest, br)
	}
	out := make([]xdm.Sequence, 0, len(br.Calls))
	for _, call := range br.Calls {
		single := *br
		single.Calls = [][]xdm.Sequence{call}
		single.SeqNrs = nil
		res, err := co.Scatter(&single)
		if err != nil {
			return nil, err
		}
		out = append(out, res[0])
	}
	return out, nil
}

// CallParallel implements pathfinder.BulkCaller: parts are dispatched
// concurrently (each part may itself be a scatter), results re-united
// in original call order, and the error of the lowest part index wins.
func (co *Coordinator) CallParallel(parts []*client.BulkByDest, total int) ([]xdm.Sequence, error) {
	return client.DispatchParallel(co.CallBulk, parts, total)
}

// Scatter sends the bulk request to every shard concurrently and merges
// the responses in shard order. Only read-only requests are
// scatterable: an updating call would apply its side effects once per
// shard.
//
// Encode-once, scatter-many: the request body is destination-independent,
// so it is encoded exactly once (into a pooled buffer) and the same bytes
// are posted to every shard and reused across replica failover attempts —
// regardless of shard × replica count, one scatter costs one encoding.
func (co *Coordinator) Scatter(br *client.BulkRequest) ([]xdm.Sequence, error) {
	if br.Updating {
		return nil, xdm.NewError("XRPC0007",
			"cluster: updating bulk requests cannot be scatter-gathered")
	}
	if co.Table == nil || !co.Table.Complete() {
		return nil, xdm.NewError("XRPC0007", "cluster: incomplete routing table")
	}
	enc := co.Client.EncodeBulk(br)
	defer enc.Release()
	body := enc.Bytes()
	n := co.Table.NumShards()
	perShard := make([][]xdm.Sequence, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			perShard[s], errs[s] = co.callShard(s, body, len(br.Calls))
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", s, err)
		}
	}
	merged := make([]xdm.Sequence, len(br.Calls))
	for i := range merged {
		var seq xdm.Sequence
		for s := 0; s < n; s++ {
			seq = append(seq, perShard[s][i]...)
		}
		merged[i] = seq
	}
	return merged, nil
}

// callShard posts the pre-encoded request body to the shard's primary
// and walks the replica list on transport-level failures — the same
// bytes for every attempt, never re-encoding. Application errors (SOAP
// faults) are definitive: every replica holds the same shard, so a
// fault would only repeat.
func (co *Coordinator) callShard(shard int, body []byte, calls int) ([]xdm.Sequence, error) {
	replicas := co.Table.Replicas(shard)
	var lastErr error
	for _, uri := range replicas {
		res, err := co.Client.SendEncoded(uri, body, calls)
		if err == nil {
			return res, nil
		}
		var fault *soap.Fault
		if errors.As(err, &fault) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("all %d replica(s) unreachable: %w", len(replicas), lastErr)
}

package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"xrpc/internal/client"
	"xrpc/internal/obs"
	"xrpc/internal/planner"
	"xrpc/internal/txn"
	"xrpc/internal/xdm"
)

// DefaultClusterURI is the virtual destination that triggers
// scatter-gather dispatch in a Coordinator.
const DefaultClusterURI = "xrpc://cluster"

// RouteSpec declares how the calls of one function map onto the
// partition key space: parameter KeyArg of every call is a key drawn
// from the partitioned container (Doc, Path). Registering a spec is a
// promise about the function's semantics — its result on a shard whose
// range cannot contain the key is empty, and its side effects touch
// only the container rows with that key — which is what makes
// predicate-pruned reads byte-identical to broadcast and single-shard
// routed updates sound. The cluster-update benchmark and tests verify
// the identity for every spec they register.
type RouteSpec struct {
	// ModuleURI and Func name the function the spec routes.
	ModuleURI, Func string
	// KeyArg is the index of the partition-key parameter.
	KeyArg int
	// Doc and Path name the partitioned container the key selects in
	// (KeyRange coordinates, e.g. "persons.xml", "/site/people/person").
	Doc, Path string
	// Op is the comparison the function applies between the container
	// key and the key argument ("" means "="). Range operators arise
	// only from compiler-derived specs and prune against codepoint-
	// ordered key bounds (KeyRange.Lex).
	Op string
}

// op normalizes the spec's comparison operator.
func (s *RouteSpec) op() string {
	if s.Op == "" {
		return "="
	}
	return s.Op
}

// Coordinator fans Bulk RPC requests out across the shards of a routing
// table and merges the responses. It implements pathfinder.BulkCaller:
// requests addressed to ClusterURI are scattered (reads) or routed
// (updates), any other destination passes through to the underlying
// client unchanged — so a query can mix sharded and direct execute-at
// destinations.
//
// Reads. Merge semantics make the cluster look like one peer holding
// the whole document: result i of the merged response is the
// concatenation, in shard order, of every shard's result i. Because the
// partitioner cuts contiguous subtree ranges, shard order is document
// order, and the merged response is byte-identical to a single-peer
// execution of the same bulk request against the unsharded document.
// When a registered RouteSpec matches the request and the routing table
// holds keyed range metadata for its container, the scatter is
// predicate-pruned: each call is sent only to the shards whose key
// bounds may contain the call's key (a probe for one person id contacts
// one shard, not N), and shards left with no calls are not contacted at
// all. Pruning is conservative — a shard is skipped only when its range
// proves the key absent — so the merged response stays byte-identical.
//
// Updates. An updating bulk request is accepted when a RouteSpec
// resolves every call to exactly one shard. Each call travels to its
// shard's primary only, which evaluates it under the transaction's
// queryID — deferring the pending update list against the pinned
// snapshot (rule R'_Fu) — and the whole request then commits through
// txn.Coordinator 2PC spanning the touched primaries. Between Prepare
// and Commit the serialized PUL piggybacked on each primary's Prepare
// ack is forwarded to the shard's replicas (WS-AT AdoptPUL), and the
// commit is fenced on store.Version: a replica that fails to adopt, to
// commit, or reports a version different from its primary's is evicted
// from the routing table instead of serving stale reads.
//
// Error semantics mirror the server's parallel bulk executor: when
// several shards fail (after replica failover), the error of the
// lowest shard index is reported, deterministically.
type Coordinator struct {
	// ClusterURI is the virtual scatter-gather destination
	// (DefaultClusterURI if empty).
	ClusterURI string
	// Table routes shard index → replica peer URIs + range metadata.
	Table *RoutingTable
	// Client performs the actual sends (and keeps the traffic stats).
	Client *client.Client
	// TxnTimeout is the isolation timeout (seconds) of the queryIDs
	// minted for routed updates (0 = 30).
	TxnTimeout int
	// MaxShardBuffer bounds the per-shard read-ahead window of the
	// streamed gather, in bytes (0 = DefaultMaxShardBuffer). While the
	// merge copies shard k's results forward, shards k+1..N keep
	// producing into windows of at most this size; coordinator memory
	// during a scatter is therefore O(shards × MaxShardBuffer + largest
	// item), independent of total result size.
	MaxShardBuffer int
	// OnEvict, when set, observes replica evictions (shard, uri, cause).
	OnEvict func(shard int, uri string, reason error)
	// ResultCache, when non-nil, serves repeat read-only scatters from
	// the coordinator's merged-result cache, revalidated against each
	// shard's commit-fence version and registry generation via a
	// shardInfo probe (see resultcache.go). Requests under a queryID
	// bypass it.
	ResultCache *ResultCache
	// Metrics, when non-nil, records scatter/merge/failover/2PC facts
	// onto an obs.Registry (see NewMetrics). Nil disables all recording.
	Metrics *Metrics
	// SlowLog, when non-nil, writes a structured record for scatters
	// slower than its threshold, carrying the request's trace ID.
	SlowLog *obs.SlowLog
	// Planner, when non-nil, derives route specs from the compiled
	// module bodies for functions with no registered RouteSpec, keeps
	// fenced per-shard statistics, and cost-compares pruned execution
	// against broadcast for derived routes (see internal/planner and
	// planner.go in this package). Nil keeps the registered-specs-only
	// behaviour.
	Planner *planner.Planner

	mu     sync.RWMutex
	routes []RouteSpec

	// demoted remembers evicted replicas so Rejoin can bring them back
	// (see rejoin.go).
	demoted demotions
}

// NewCoordinator builds a coordinator over a routing table and client.
func NewCoordinator(rt *RoutingTable, cl *client.Client) *Coordinator {
	return &Coordinator{ClusterURI: DefaultClusterURI, Table: rt, Client: cl}
}

// Route registers a routing declaration (see RouteSpec).
func (co *Coordinator) Route(spec RouteSpec) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.routes = append(co.routes, spec)
}

// registeredSpec finds the hand-written route spec for the request. The
// second return is a non-empty reason when a spec names the function
// but cannot apply to this request (KeyArg outside the request arity) —
// previously a silent broadcast fallback, now warned once and counted.
func (co *Coordinator) registeredSpec(br *client.BulkRequest) (*RouteSpec, string) {
	co.mu.RLock()
	defer co.mu.RUnlock()
	reason := ""
	for i := range co.routes {
		if co.routes[i].ModuleURI != br.ModuleURI || co.routes[i].Func != br.Func {
			continue
		}
		if co.routes[i].KeyArg >= 0 && co.routes[i].KeyArg < br.Arity {
			return &co.routes[i], ""
		}
		reason = fmt.Sprintf("registered KeyArg %d outside request arity %d",
			co.routes[i].KeyArg, br.Arity)
	}
	return nil, reason
}

func (co *Coordinator) clusterURI() string {
	if co.ClusterURI == "" {
		return DefaultClusterURI
	}
	return co.ClusterURI
}

// CallBulk implements pathfinder.BulkCaller. The cluster URI scatters
// read-only requests and routes updating ones; everything else passes
// through.
func (co *Coordinator) CallBulk(dest string, br *client.BulkRequest) ([]xdm.Sequence, error) {
	if dest != co.clusterURI() {
		return co.Client.CallBulk(dest, br)
	}
	if br.Updating {
		return co.Update(br)
	}
	return co.Scatter(br)
}

// CallOneAtATime implements pathfinder.BulkCaller (the Table 2
// comparison mechanism): one scattered (or routed) request per call.
func (co *Coordinator) CallOneAtATime(dest string, br *client.BulkRequest) ([]xdm.Sequence, error) {
	if dest != co.clusterURI() {
		return co.Client.CallOneAtATime(dest, br)
	}
	out := make([]xdm.Sequence, 0, len(br.Calls))
	for ci, call := range br.Calls {
		single := *br
		single.Calls = [][]xdm.Sequence{call}
		single.SeqNrs = nil
		if br.SeqNrs != nil {
			single.SeqNrs = []int64{br.SeqNrs[ci]}
		}
		var res []xdm.Sequence
		var err error
		if br.Updating {
			res, err = co.Update(&single)
		} else {
			res, err = co.Scatter(&single)
		}
		if err != nil {
			return nil, err
		}
		out = append(out, res[0])
	}
	return out, nil
}

// CallParallel implements pathfinder.BulkCaller: parts are dispatched
// concurrently (each part may itself be a scatter), results re-united
// in original call order, and the error of the lowest part index wins.
func (co *Coordinator) CallParallel(parts []*client.BulkByDest, total int) ([]xdm.Sequence, error) {
	return client.DispatchParallel(co.CallBulk, parts, total)
}

// ScatterBuffered is the collect-then-concat reference implementation
// of the broadcast scatter: every shard's full response is decoded into
// memory, then merged. Scatter produces byte-identical results through
// the incremental merge (see gather.go) while holding only a bounded
// window per shard; this path is kept as the executable reference the
// streamed merge is pinned against, and for the peak-memory comparison
// in the cluster benchmarks.
//
// The broadcast path is encode-once, scatter-many: the request body is
// destination-independent, so it is encoded exactly once (into a pooled
// buffer) and the same bytes are posted to every shard and reused
// across replica failover attempts. The pruned path ships per-shard
// call subsets, so it encodes once per contacted shard instead — it
// trades encodings for not sending (or executing) pruned calls at all.
func (co *Coordinator) ScatterBuffered(br *client.BulkRequest) ([]xdm.Sequence, error) {
	if br.Updating {
		return nil, xdm.NewError("XRPC0007",
			"cluster: updating bulk requests are routed, not scattered (use Update/CallBulk)")
	}
	if err := co.validTable(); err != nil {
		return nil, err
	}
	dec := co.plan(br)
	if dec.strategy != "broadcast" {
		return co.scatterPruned(br, dec)
	}
	co.countStrategy("broadcast")
	co.Metrics.countScatter("broadcast")
	enc := co.Client.EncodeBulk(br)
	defer enc.Release()
	body := enc.Bytes()
	n := co.Table.NumShards()
	perShard := make([][]xdm.Sequence, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			perShard[s], errs[s] = co.callShard(s, body, len(br.Calls))
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", s, err)
		}
	}
	merged := make([]xdm.Sequence, len(br.Calls))
	for i := range merged {
		var seq xdm.Sequence
		for s := 0; s < n; s++ {
			seq = append(seq, perShard[s][i]...)
		}
		merged[i] = seq
	}
	return merged, nil
}

func (co *Coordinator) validTable() error {
	if co.Table == nil {
		return xdm.NewError("XRPC0007", "cluster: no routing table")
	}
	if err := co.Table.Validate(); err != nil {
		return xdm.Errorf("XRPC0007", "cluster: invalid routing table: %v", err)
	}
	return nil
}

// callKey extracts call ci's partition key under spec ("" and false for
// calls whose key parameter is not a singleton — those stay unpruned).
func callKey(br *client.BulkRequest, ci int, spec *RouteSpec) (string, bool) {
	args := br.Calls[ci]
	if spec.KeyArg >= len(args) || len(args[spec.KeyArg]) != 1 {
		return "", false
	}
	return args[spec.KeyArg][0].StringValue(), true
}

// shardPart is one shard's slice of a pruned or routed bulk request.
type shardPart struct {
	shard int
	br    *client.BulkRequest
	orig  []int // orig[j] = global index of the part's call j
}

// partition splits the request per shard under the route spec. Calls
// without a usable key go to every shard (conservative).
func (co *Coordinator) partition(br *client.BulkRequest, spec *RouteSpec) []*shardPart {
	n := co.Table.NumShards()
	byShard := make(map[int]*shardPart)
	for ci := range br.Calls {
		cand := allShards(n)
		if key, ok := callKey(br, ci, spec); ok {
			cand = co.Table.CandidateShardsOp(spec.Doc, spec.Path, key, spec.op())
		}
		for _, s := range cand {
			part, ok := byShard[s]
			if !ok {
				sub := *br
				sub.Calls, sub.SeqNrs = nil, nil
				part = &shardPart{shard: s, br: &sub}
				byShard[s] = part
			}
			part.br.Calls = append(part.br.Calls, br.Calls[ci])
			if br.SeqNrs != nil {
				part.br.SeqNrs = append(part.br.SeqNrs, br.SeqNrs[ci])
			}
			part.orig = append(part.orig, ci)
		}
	}
	parts := make([]*shardPart, 0, len(byShard))
	for _, p := range byShard {
		parts = append(parts, p)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].shard < parts[j].shard })
	return parts
}

func allShards(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// scatterPruned ships each call only to its candidate shards (the
// decision's precomputed partition). Merged result i concatenates, in
// shard order, the results of the shards that received call i —
// byte-identical to broadcast because a pruned shard's range proves its
// result for the call would have been empty.
func (co *Coordinator) scatterPruned(br *client.BulkRequest, dec *planDecision) ([]xdm.Sequence, error) {
	co.Metrics.countScatter("pruned")
	co.countStrategy(dec.strategy)
	var start time.Time
	if co.Metrics != nil || co.SlowLog != nil {
		start = time.Now()
	}
	parts := dec.parts
	results := make([][]xdm.Sequence, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, part := range parts {
		wg.Add(1)
		go func(i int, part *shardPart) {
			defer wg.Done()
			enc := co.Client.EncodeBulk(part.br)
			defer enc.Release()
			results[i], errs[i] = co.callShard(part.shard, enc.Bytes(), len(part.br.Calls))
		}(i, part)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", parts[i].shard, err)
		}
	}
	// merged result i concatenates in ascending shard order (= document
	// order); calls pruned everywhere (key provably on no shard) stay
	// empty — the same answer every shard would have produced
	merged := make([]xdm.Sequence, len(br.Calls))
	for i, part := range parts {
		for j, g := range part.orig {
			merged[g] = append(merged[g], results[i][j]...)
		}
	}
	if !start.IsZero() {
		co.observeScatter(br, len(parts), nil, time.Since(start), dec)
	}
	return merged, nil
}

// callShard posts the pre-encoded request body to the shard's primary
// and walks the replica list on retriable failures — the same bytes for
// every attempt, never re-encoding. Definitive errors (SOAP faults,
// 4xx HTTP statuses) stop the walk: every replica holds the same shard,
// so a deterministic rejection would only repeat.
func (co *Coordinator) callShard(shard int, body []byte, calls int) ([]xdm.Sequence, error) {
	var start time.Time
	if co.Metrics != nil || co.Planner != nil {
		start = time.Now()
	}
	replicas := co.Table.Replicas(shard)
	var lastErr error
	for a, uri := range replicas {
		res, err := co.Client.SendEncoded(uri, body, calls)
		if err == nil {
			if !start.IsZero() {
				co.Metrics.observeCall(shard, time.Since(start), a)
				co.notePlannerCall(shard, time.Since(start))
			}
			return res, nil
		}
		if !client.Retriable(err) {
			return nil, err
		}
		lastErr = err
	}
	if m := co.Metrics; m != nil {
		m.Failovers.Add(int64(len(replicas) - 1))
	}
	return nil, fmt.Errorf("all %d replica(s) unreachable: %w", len(replicas), lastErr)
}

// ------------------------------------------------------------- updates

// Update routes an updating bulk request through the cluster as one
// distributed transaction: every call must resolve to exactly one shard
// by partition key; each touched shard's primary evaluates its calls
// under a fresh queryID (pending updates deferred against the pinned
// snapshot); commit then runs through txn.Coordinator 2PC over the
// touched primaries, with the prepared PUL forwarded to each shard's
// replicas and the commit fenced on store.Version — replicas that fail
// replication or diverge are evicted from the routing table.
func (co *Coordinator) Update(br *client.BulkRequest) ([]xdm.Sequence, error) {
	if err := co.validTable(); err != nil {
		return nil, err
	}
	spec, why := co.registeredSpec(br)
	if spec == nil {
		if why != "" {
			// same visibility as the scatter path: a registered spec that
			// cannot apply to this request is warned once and counted
			// before any fallback
			co.warnInapplicable(br, why)
		}
		// no hand-written spec: a derived equality route is just as
		// sound for updates — the derivation proves the body's update
		// targets only touch rows carrying the key
		if d, _, _ := co.derivedSpec(br); d != nil && d.op() == "=" {
			spec = d
		}
	}
	if spec == nil {
		return nil, xdm.Errorf("XRPC0007",
			"cluster: no route for updating function %s#%s — register a cluster.RouteSpec naming its partition-key parameter",
			br.ModuleURI, br.Func)
	}
	// resolve every call to its single owning shard
	for ci := range br.Calls {
		key, ok := callKey(br, ci, spec)
		if !ok {
			return nil, xdm.Errorf("XRPC0007",
				"cluster: updating call %d has no singleton partition key (parameter %d)", ci, spec.KeyArg)
		}
		cand := co.Table.CandidateShards(spec.Doc, spec.Path, key)
		if len(cand) != 1 {
			return nil, xdm.Errorf("XRPC0007",
				"cluster: updating call %d (key %q) is not routable to a single shard (%d candidates) — the container needs keyed range metadata",
				ci, key, len(cand))
		}
	}
	co.countStrategy("routed")
	parts := co.partition(br, spec)

	// one transaction per updating bulk request: a fresh queryID scopes
	// the snapshot, the deferred PULs, and the 2PC verbs
	timeout := co.TxnTimeout
	if timeout <= 0 {
		timeout = 30
	}
	txCl := client.New(co.Client.Transport)
	txCl.QueryID = txn.NewQueryID(co.clusterURI(), timeout)
	// the 2PC verbs inherit the coordinator client's retry policy: a
	// transient burst at a replica during AdoptPUL/Commit is retried in
	// place instead of demoting a healthy peer
	txCl.Retry = co.Client.Retry
	tc := &txn.Coordinator{Client: txCl}
	if m := co.Metrics; m != nil {
		m.Updates.Inc()
		tc.Metrics = m.Txn
	}
	primaries := make([]string, len(parts))
	for i, part := range parts {
		primaries[i] = co.Table.Primary(part.shard)
	}

	// apply phase: primary only, concurrently across shards. No replica
	// failover here — a transport error mid-apply is ambiguous, and the
	// safe answer is to abort the transaction, not to mutate a replica
	// that the primary will diverge from.
	results := make([][]xdm.Sequence, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, part := range parts {
		wg.Add(1)
		go func(i int, part *shardPart) {
			defer wg.Done()
			results[i], errs[i] = txCl.CallBulk(primaries[i], part.br)
		}(i, part)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			tc.AbortAll(primaries)
			return nil, fmt.Errorf("cluster: shard %d: %w", parts[i].shard, err)
		}
	}

	// 2PC phase 1 over the touched primaries; the Prepare acks carry the
	// serialized PULs (aborts everywhere on failure)
	prepRes, err := tc.PrepareAll(primaries)
	if err != nil {
		return nil, err
	}

	// replica PUL replication: forward each primary's prepared PUL to
	// the shard's replicas; a replica that cannot adopt it is evicted
	// (it would serve stale reads after commit)
	type adoptedReplica struct {
		shard int
		uri   string
	}
	var adopted []adoptedReplica
	for i, part := range parts {
		pulNode := prepPUL(prepRes[i])
		if pulNode == nil {
			continue // empty PUL: replicas stay consistent without it
		}
		for _, uri := range co.Table.Replicas(part.shard)[1:] {
			_, err := txCl.CallBulk(uri, &client.BulkRequest{
				ModuleURI: txn.WSATModule,
				Func:      "AdoptPUL",
				Arity:     1,
				Calls:     [][]xdm.Sequence{{xdm.Singleton(pulNode)}},
			})
			if err != nil {
				co.evict(part.shard, uri, fmt.Errorf("PUL replication failed: %w", err))
				continue
			}
			adopted = append(adopted, adoptedReplica{part.shard, uri})
		}
	}

	// 2PC phase 2: commit the primaries (heuristic failures reported but
	// the rest still commit), then the adopted replicas — fenced on the
	// store version their primary reported
	commitRes, commitErr := tc.CommitPrepared(primaries)
	primVersion := make(map[int]int64, len(parts))
	for i, part := range parts {
		if v, ok := commitVersion(commitRes[i]); ok {
			primVersion[part.shard] = v
		}
	}
	for _, rep := range adopted {
		want, haveWant := primVersion[rep.shard]
		if !haveWant {
			// the primary's own commit failed (a heuristic outcome): the
			// replica must not commit against an unverifiable primary
			// state — release its prepared snapshot and evict it
			co.abortPeer(txCl, rep.uri)
			co.evict(rep.shard, rep.uri,
				fmt.Errorf("primary commit failed; replica consistency unverifiable"))
			continue
		}
		res, err := txCl.CallBulk(rep.uri, &client.BulkRequest{
			ModuleURI: txn.WSATModule,
			Func:      "Commit",
			Arity:     0,
			Calls:     [][]xdm.Sequence{{}},
		})
		if err != nil {
			co.evict(rep.shard, rep.uri, fmt.Errorf("replica commit failed: %w", err))
			continue
		}
		got, ok := commitVersion(res[0])
		if !ok || got != want {
			co.evict(rep.shard, rep.uri,
				fmt.Errorf("version fence: replica at %d, primary at %d", got, want))
		}
	}

	merged := make([]xdm.Sequence, len(br.Calls))
	for i, part := range parts {
		for j, g := range part.orig {
			merged[g] = results[i][j]
		}
	}
	return merged, commitErr
}

// abortPeer releases a peer's deferred transaction state, best-effort
// (an unreachable peer expires the queryID via its timeout instead).
func (co *Coordinator) abortPeer(txCl *client.Client, uri string) {
	_, _ = txCl.CallBulk(uri, &client.BulkRequest{
		ModuleURI: txn.WSATModule,
		Func:      "Abort",
		Arity:     0,
		Calls:     [][]xdm.Sequence{{}},
	})
}

// evict demotes a replica: removed from the routing table (so it stops
// serving stale reads) but remembered for Rejoin (see rejoin.go) —
// eviction is a demotion awaiting resync, not an execution.
func (co *Coordinator) evict(shard int, uri string, reason error) {
	if co.Table.Evict(shard, uri) {
		co.demoted.add(DemotedReplica{
			Shard: shard, URI: uri, Reason: reason.Error(), When: time.Now(),
		})
		if m := co.Metrics; m != nil {
			m.Evictions.Inc()
		}
		if co.OnEvict != nil {
			co.OnEvict(shard, uri, reason)
		}
	}
}

// prepPUL extracts the serialized pending update list piggybacked on a
// Prepare ack (nil when the primary's PUL was empty).
func prepPUL(res xdm.Sequence) *xdm.Node {
	if len(res) < 2 {
		return nil
	}
	n, _ := res[1].(*xdm.Node)
	return n
}

// commitVersion extracts the post-commit store version from a Commit
// ack.
func commitVersion(res xdm.Sequence) (int64, bool) {
	if len(res) < 2 {
		return 0, false
	}
	v, ok := res[1].(xdm.Integer)
	return int64(v), ok
}

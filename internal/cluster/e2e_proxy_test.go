package cluster

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xrpc/internal/client"
	"xrpc/internal/xdm"
	"xrpc/internal/xmark"
)

// TestXrpcdProxyStreamsCluster drives `xrpcd -proxy` end to end over
// live processes: two shard daemons plus a proxy daemon pointed at
// them. A plain XRPC client posts a bulk request to the proxy exactly
// as it would to a single peer; the streamed shard-order merge it
// receives must be byte-identical to a single unsharded peer's
// response, both through the buffered client path and through the
// streaming pull-decoder.
func TestXrpcdProxyStreamsCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "xrpcd")
	build := exec.Command("go", "build", "-o", bin, "xrpc/cmd/xrpcd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building xrpcd: %v\n%s", err, out)
	}

	const persons = 10
	docs := filepath.Join(tmp, "docs")
	mods := filepath.Join(tmp, "modules")
	for _, d := range []string{docs, mods} {
		if err := os.Mkdir(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	xml := xmark.GeneratePersons(xmark.Config{Persons: persons, Seed: 11})
	if err := os.WriteFile(filepath.Join(docs, "persons.xml"), []byte(xml), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(mods, "p.xq"), []byte(personsModule), 0o644); err != nil {
		t.Fatal(err)
	}

	// start launches one daemon and returns its actual listen address,
	// parsed from the startup log line
	start := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
		addrCh := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stderr)
			for sc.Scan() {
				line := sc.Text()
				if i := strings.Index(line, "listening on "); i >= 0 {
					rest := line[i+len("listening on "):]
					if j := strings.IndexByte(rest, ' '); j > 0 {
						rest = rest[:j]
					}
					addrCh <- rest
					return
				}
			}
			addrCh <- ""
		}()
		select {
		case addr := <-addrCh:
			if addr == "" {
				t.Fatalf("%s exited before listening", name)
			}
			return "http://" + addr
		case <-time.After(20 * time.Second):
			t.Fatalf("%s did not report its address", name)
		}
		return ""
	}

	shard0 := start("shard 0", "-shard", "0", "-of", "2", "-docs", docs, "-modules", mods)
	shard1 := start("shard 1", "-shard", "1", "-of", "2", "-docs", docs, "-modules", mods)
	proxy := start("proxy", "-proxy", shard0+","+shard1, "-shard-buffer", fmt.Sprint(64<<10))

	br := getPersonRequest("person2", "person7", "nosuch")
	want := singlePersonsBaseline(t, persons, br, nil)

	// buffered client path: the proxy answers like one unsharded peer
	cl := client.New(client.NewHTTPTransportTimeout(10 * time.Second))
	res, err := cl.CallBulk(proxy, br)
	if err != nil {
		t.Fatalf("bulk through proxy: %v", err)
	}
	if !bytes.Equal(encodeResults(br, res), want) {
		t.Fatal("proxy response differs from the unsharded single-peer response")
	}

	// streaming client path: pull-decode the proxy's chunked merge
	enc := cl.EncodeBulk(br)
	defer enc.Release()
	sr, err := cl.SendStreamed(proxy, enc.Bytes(), len(br.Calls), 0)
	if err != nil {
		t.Fatalf("streamed bulk through proxy: %v", err)
	}
	defer sr.Close()
	var streamed []xdm.Sequence
	for {
		ok, err := sr.NextSequence()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		var seq xdm.Sequence
		for {
			it, err := sr.NextItem()
			if err != nil {
				t.Fatal(err)
			}
			if it == nil {
				break
			}
			seq = append(seq, it)
		}
		streamed = append(streamed, seq)
	}
	if _, err := sr.Finish(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeResults(br, streamed), want) {
		t.Fatal("streamed proxy response differs from the unsharded single-peer response")
	}
}

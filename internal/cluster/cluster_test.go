package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"xrpc/internal/client"
	"xrpc/internal/interp"
	"xrpc/internal/modules"
	"xrpc/internal/netsim"
	"xrpc/internal/server"
	"xrpc/internal/soap"
	"xrpc/internal/store"
	"xrpc/internal/xdm"
	"xrpc/internal/xmark"
)

// auctionsModule is the shard-side probe/scan module: probe is the
// paper's Q_B3 (the semi-join probe), scan is Q_B1 (the full partition
// scan).
const auctionsModule = `
module namespace b = "functions_b";
declare function b:Q_B1() as node()*
{ doc("auctions.xml")//closed_auction };
declare function b:Q_B3($pid as xs:string) as node()*
{ doc("auctions.xml")//closed_auction[./buyer/@person=$pid] };`

func testRegistry(t *testing.T) *modules.Registry {
	t.Helper()
	reg := modules.NewRegistry()
	if err := reg.Register(auctionsModule, "http://example.org/b.xq"); err != nil {
		t.Fatal(err)
	}
	return reg
}

func probeRequest(persons int) *client.BulkRequest {
	br := &client.BulkRequest{
		ModuleURI: "functions_b",
		AtHint:    "http://example.org/b.xq",
		Func:      "Q_B3",
		Arity:     1,
	}
	for i := 0; i < persons; i++ {
		br.Calls = append(br.Calls, []xdm.Sequence{{xdm.String(xmark.PersonID(i))}})
	}
	return br
}

func scanRequest() *client.BulkRequest {
	return &client.BulkRequest{
		ModuleURI: "functions_b",
		AtHint:    "http://example.org/b.xq",
		Func:      "Q_B1",
		Arity:     0,
		Calls:     [][]xdm.Sequence{{}},
	}
}

// singlePeerBaseline executes the request against one server holding
// the whole document and returns the encoded result sequences.
func singlePeerBaseline(t *testing.T, reg *modules.Registry, auctions string, br *client.BulkRequest) []byte {
	t.Helper()
	net := netsim.NewNetwork(0, 0)
	st := store.New()
	if err := st.LoadXML("auctions.xml", auctions); err != nil {
		t.Fatal(err)
	}
	srv := server.New(st, reg, server.NewNativeExecutor(interp.New(st, reg, nil), reg))
	net.Register("xrpc://single", srv)
	res, err := client.New(net).CallBulk("xrpc://single", br)
	if err != nil {
		t.Fatal(err)
	}
	return encodeResults(br, res)
}

func encodeResults(br *client.BulkRequest, res []xdm.Sequence) []byte {
	return soap.EncodeResponse(&soap.Response{
		Module: br.ModuleURI, Method: br.Func, Results: res,
	})
}

// ----------------------------------------------------------- partition

func TestPartitionContiguousRanges(t *testing.T) {
	cfg := xmark.Config{Persons: 10, Seed: 1}
	parts, err := Partition("persons.xml", xmark.GeneratePersons(cfg), 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	next := 0
	for k, p := range parts {
		doc, err := xdm.ParseDocument("p", p)
		if err != nil {
			t.Fatalf("shard %d does not re-parse: %v", k, err)
		}
		persons := xdm.Step(doc, xdm.AxisDescendant, xdm.NodeTest{Name: "person"})
		total += len(persons)
		for _, pn := range persons {
			id, _ := pn.Attr("id")
			if want := fmt.Sprintf("person%d", next); id != want {
				t.Fatalf("shard %d: got %s, want %s (ranges must be contiguous in document order)", k, id, want)
			}
			next++
		}
	}
	if total != 10 {
		t.Fatalf("persons across shards = %d, want 10", total)
	}
}

func TestPartitionMoreShardsThanChildren(t *testing.T) {
	parts, err := Partition("d.xml", "<r><e>1</e><e>2</e></r>", 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range parts {
		doc, err := xdm.ParseDocument("d", p)
		if err != nil {
			t.Fatal(err)
		}
		total += len(xdm.Step(doc, xdm.AxisDescendant, xdm.NodeTest{Name: "e"}))
	}
	if total != 2 {
		t.Fatalf("elements across shards = %d, want 2", total)
	}
}

func TestPartitionReplicatesUnrepeatedContent(t *testing.T) {
	// no repeated subtree: every shard keeps the whole (reference)
	// document so local joins against it still work
	parts, err := Partition("ref.xml", "<config><limit>10</limit></config>", 3)
	if err != nil {
		t.Fatal(err)
	}
	for k, p := range parts {
		if !strings.Contains(p, "<limit>10</limit>") {
			t.Fatalf("shard %d lost unpartitionable content: %q", k, p)
		}
	}
}

func TestPartitionShardMatchesPartition(t *testing.T) {
	xml := xmark.GeneratePersons(xmark.Config{Persons: 7, Seed: 2})
	all, err := Partition("persons.xml", xml, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k := range all {
		one, err := PartitionShard("persons.xml", xml, k, 3)
		if err != nil {
			t.Fatal(err)
		}
		if one != all[k] {
			t.Fatalf("PartitionShard(%d) differs from Partition[%d]", k, k)
		}
	}
	if _, err := PartitionShard("persons.xml", xml, 3, 3); err == nil {
		t.Fatal("out-of-range shard index not rejected")
	}
}

// ------------------------------------------------------ scatter-gather

func TestScatterGatherMatchesSinglePeer(t *testing.T) {
	cfg := xmark.PaperConfig(0.05)
	auctions := xmark.GenerateAuctions(cfg)
	reg := testRegistry(t)

	for _, br := range []*client.BulkRequest{probeRequest(cfg.Persons), scanRequest()} {
		want := singlePeerBaseline(t, reg, auctions, br)
		for _, shards := range []int{1, 2, 3, 4} {
			net := netsim.NewNetwork(0, 0)
			dep, err := Deploy(net, reg, map[string]string{"auctions.xml": auctions},
				DeployConfig{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			co := dep.Coordinator()
			merged, err := co.Scatter(br)
			if err != nil {
				t.Fatal(err)
			}
			if got := encodeResults(br, merged); !bytes.Equal(got, want) {
				t.Fatalf("%s: merged response over %d shards differs from single-peer response",
					br.Func, shards)
			}
			// every shard must have been contacted exactly once
			for s := 0; s < shards; s++ {
				if reqs, _, _ := net.PeerStats(dep.Table.Primary(s)); reqs != 1 {
					t.Fatalf("shard %d served %d requests, want 1", s, reqs)
				}
			}
		}
	}
}

func TestScatterThroughBulkCallerInterface(t *testing.T) {
	cfg := xmark.PaperConfig(0.05)
	auctions := xmark.GenerateAuctions(cfg)
	reg := testRegistry(t)
	net := netsim.NewNetwork(0, 0)
	dep, err := Deploy(net, reg, map[string]string{"auctions.xml": auctions}, DeployConfig{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	co := dep.Coordinator()
	br := probeRequest(cfg.Persons)

	viaBulk, err := co.CallBulk(DefaultClusterURI, br)
	if err != nil {
		t.Fatal(err)
	}
	viaOne, err := co.CallOneAtATime(DefaultClusterURI, br)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeResults(br, viaBulk), encodeResults(br, viaOne)) {
		t.Fatal("CallBulk and CallOneAtATime disagree on the cluster URI")
	}

	// a non-cluster destination passes through to the underlying client
	single := store.New()
	if err := single.LoadXML("auctions.xml", auctions); err != nil {
		t.Fatal(err)
	}
	srv := server.New(single, reg, server.NewNativeExecutor(interp.New(single, reg, nil), reg))
	net.Register("xrpc://direct", srv)
	direct, err := co.CallBulk("xrpc://direct", br)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeResults(br, direct), encodeResults(br, viaBulk)) {
		t.Fatal("pass-through destination differs from scattered result")
	}
}

func TestUpdatingRequestRejected(t *testing.T) {
	reg := testRegistry(t)
	net := netsim.NewNetwork(0, 0)
	dep, err := Deploy(net, reg, map[string]string{"auctions.xml": "<site><closed_auctions><closed_auction/><closed_auction/></closed_auctions></site>"},
		DeployConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	br := scanRequest()
	br.Updating = true
	if _, err := dep.Coordinator().Scatter(br); err == nil {
		t.Fatal("updating bulk request was scattered")
	}
}

// ---------------------------------------------------------- resilience

// down simulates an unreachable peer: a transport-level error, not a
// SOAP fault.
func down(name string) netsim.Handler {
	return netsim.HandlerFunc(func(path string, body []byte) ([]byte, error) {
		return nil, fmt.Errorf("connection refused (%s)", name)
	})
}

func TestFailoverToReplica(t *testing.T) {
	cfg := xmark.PaperConfig(0.05)
	auctions := xmark.GenerateAuctions(cfg)
	reg := testRegistry(t)
	br := probeRequest(cfg.Persons)
	want := singlePeerBaseline(t, reg, auctions, br)

	net := netsim.NewNetwork(0, 0)
	dep, err := Deploy(net, reg, map[string]string{"auctions.xml": auctions},
		DeployConfig{Shards: 3, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := dep.Table.ReplicationFactor(); got != 2 {
		t.Fatalf("replication factor = %d, want 2", got)
	}
	// kill shard 1's primary; the coordinator must fail over to its
	// replica and still produce the identical merged response
	net.Register(dep.Table.Primary(1), down("shard1 primary"))
	merged, err := dep.Coordinator().Scatter(br)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeResults(br, merged); !bytes.Equal(got, want) {
		t.Fatal("merged response after failover differs from single-peer response")
	}
	if reqs, _, _ := net.PeerStats(dep.Table.Replicas(1)[1]); reqs != 1 {
		t.Fatalf("replica of shard 1 served %d requests, want 1", reqs)
	}
}

func TestAllReplicasDownIsAnError(t *testing.T) {
	reg := testRegistry(t)
	net := netsim.NewNetwork(0, 0)
	dep, err := Deploy(net, reg, map[string]string{"auctions.xml": "<site><closed_auctions><closed_auction/><closed_auction/></closed_auctions></site>"},
		DeployConfig{Shards: 2, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, uri := range dep.Table.Replicas(1) {
		net.Register(uri, down(uri))
	}
	_, err = dep.Coordinator().Scatter(scanRequest())
	if err == nil || !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("want shard 1 unreachable error, got %v", err)
	}
}

func TestFaultDoesNotFailover(t *testing.T) {
	reg := testRegistry(t)
	net := netsim.NewNetwork(0, 0)
	dep, err := Deploy(net, reg, map[string]string{"auctions.xml": "<site><closed_auctions><closed_auction/><closed_auction/></closed_auctions></site>"},
		DeployConfig{Shards: 2, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	br := scanRequest()
	br.Func = "noSuchFunction"
	_, err = dep.Coordinator().Scatter(br)
	var fault *soap.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("want a SOAP fault, got %v", err)
	}
	// the fault is definitive: replicas hold the same shard, so they
	// must not have been consulted
	for s := 0; s < 2; s++ {
		if reqs, _, _ := net.PeerStats(dep.Table.Replicas(s)[1]); reqs != 0 {
			t.Fatalf("shard %d replica was consulted after a fault", s)
		}
	}
}

func TestLowestShardErrorWins(t *testing.T) {
	reg := testRegistry(t)
	net := netsim.NewNetwork(0, 0)
	dep, err := Deploy(net, reg, map[string]string{"auctions.xml": "<site><closed_auctions><closed_auction/><closed_auction/><closed_auction/></closed_auctions></site>"},
		DeployConfig{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	net.Register(dep.Table.Primary(1), down("shard1"))
	net.Register(dep.Table.Primary(2), down("shard2"))
	for i := 0; i < 10; i++ {
		_, err := dep.Coordinator().Scatter(scanRequest())
		if err == nil || !strings.Contains(err.Error(), "shard 1:") {
			t.Fatalf("run %d: want the lowest failing shard (1) reported, got %v", i, err)
		}
	}
}

// TestScatterEncodesOnce pins the encode-once-scatter-many contract: one
// scatter performs exactly one request encoding no matter how many
// shards and replica failover attempts the request fans out to.
func TestScatterEncodesOnce(t *testing.T) {
	cfg := xmark.PaperConfig(0.05)
	auctions := xmark.GenerateAuctions(cfg)
	reg := testRegistry(t)
	br := probeRequest(cfg.Persons)
	want := singlePeerBaseline(t, reg, auctions, br)

	net := netsim.NewNetwork(0, 0)
	dep, err := Deploy(net, reg, map[string]string{"auctions.xml": auctions},
		DeployConfig{Shards: 4, Replication: 3})
	if err != nil {
		t.Fatal(err)
	}
	// two dead primaries and one dead first replica: the scatter still
	// succeeds via failover, re-sending the same bytes — never
	// re-encoding
	net.Register(dep.Table.Primary(1), down("shard1 primary"))
	net.Register(dep.Table.Primary(3), down("shard3 primary"))
	net.Register(dep.Table.Replicas(3)[1], down("shard3 replica1"))

	co := dep.Coordinator()
	merged, err := co.Scatter(br)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeResults(br, merged), want) {
		t.Fatal("merged response differs from single-peer baseline")
	}
	if got := co.Client.Encodes.Load(); got != 1 {
		t.Fatalf("scatter across 4 shards with failover encoded the request %d times, want 1", got)
	}
	// 4 shards + 3 failover attempts = 7 sends of the one encoding
	if got := co.Client.Requests.Load(); got != 7 {
		t.Fatalf("requests = %d, want 7 (4 shards + 3 failover attempts)", got)
	}
}

// --------------------------------------------------------- membership

func TestShardInfoSystemCall(t *testing.T) {
	reg := testRegistry(t)
	net := netsim.NewNetwork(0, 0)
	dep, err := Deploy(net, reg, map[string]string{"auctions.xml": "<site><closed_auctions><closed_auction/><closed_auction/><closed_auction/></closed_auctions></site>"},
		DeployConfig{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(net)
	for s := 0; s < 3; s++ {
		res, err := cl.CallBulk(dep.Table.Primary(s), &client.BulkRequest{
			ModuleURI: client.SystemModule,
			Func:      "shardInfo",
			Arity:     0,
			Calls:     [][]xdm.Sequence{{}},
		})
		if err != nil {
			t.Fatal(err)
		}
		seq := res[0]
		if len(seq) < 3 || seq[0].StringValue() != fmt.Sprint(s) || seq[1].StringValue() != "3" {
			t.Fatalf("shard %d: shardInfo = %v", s, seq)
		}
		if seq[2].StringValue() != "auctions.xml" {
			t.Fatalf("shard %d: document list = %v", s, seq[2:])
		}
	}
}

// ----------------------------------------------------------- real HTTP

// TestCoordinatorOverHTTP drives the identical coordinator code over
// real HTTP peers: each shard server is exposed through httptest, the
// routing table holds http:// URIs, and the client sends through
// HTTPTransport — the "same interface" deployment path of xrpcd -shard.
func TestCoordinatorOverHTTP(t *testing.T) {
	cfg := xmark.PaperConfig(0.05)
	auctions := xmark.GenerateAuctions(cfg)
	reg := testRegistry(t)
	br := probeRequest(cfg.Persons)
	want := singlePeerBaseline(t, reg, auctions, br)

	const shards = 3
	parts, err := Partition("auctions.xml", auctions, shards)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRoutingTable(shards)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < shards; s++ {
		st := store.New()
		if err := st.LoadXML("auctions.xml", parts[s]); err != nil {
			t.Fatal(err)
		}
		srv := server.New(st, reg, server.NewNativeExecutor(interp.New(st, reg, nil), reg))
		srv.Shard, srv.Shards = s, shards
		hs := httptest.NewServer(srv)
		defer hs.Close()
		if err := rt.Add(s, hs.URL); err != nil {
			t.Fatal(err)
		}
	}
	co := NewCoordinator(rt, client.New(client.NewHTTPTransport()))
	merged, err := co.Scatter(br)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeResults(br, merged); !bytes.Equal(got, want) {
		t.Fatal("merged response over HTTP shards differs from single-peer response")
	}
}

package cluster

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"xrpc/internal/client"
	"xrpc/internal/interp"
	"xrpc/internal/modules"
	"xrpc/internal/netsim"
	"xrpc/internal/pathfinder"
	"xrpc/internal/server"
	"xrpc/internal/store"
	"xrpc/internal/xdm"
	"xrpc/internal/xmark"
)

// personsModule is the routed-workload module: reads and an updating
// function, all keyed by the person id — the partition key of
// persons.xml's /site/people/person container.
const personsModule = `
module namespace p = "functions_p";
declare function p:getPerson($pid as xs:string) as node()*
{ doc("persons.xml")//person[@id=$pid] };
declare function p:cityOf($pid as xs:string) as xs:string
{ string(doc("persons.xml")//person[@id=$pid]/address/city) };
declare updating function p:setCity($pid as xs:string, $city as xs:string)
{ for $c in doc("persons.xml")//person[@id=$pid]/address/city
  return replace value of node $c with $city };`

const personsPath = "/site/people/person"

func personRoutes() []RouteSpec {
	var out []RouteSpec
	for _, fn := range []string{"getPerson", "cityOf", "setCity"} {
		out = append(out, RouteSpec{
			ModuleURI: "functions_p", Func: fn, KeyArg: 0,
			Doc: "persons.xml", Path: personsPath,
		})
	}
	return out
}

func personsRegistry(t *testing.T) *modules.Registry {
	t.Helper()
	reg := modules.NewRegistry()
	if err := reg.Register(personsModule, "http://example.org/p.xq"); err != nil {
		t.Fatal(err)
	}
	return reg
}

func getPersonRequest(pids ...string) *client.BulkRequest {
	br := &client.BulkRequest{
		ModuleURI: "functions_p",
		AtHint:    "http://example.org/p.xq",
		Func:      "getPerson",
		Arity:     1,
	}
	for _, pid := range pids {
		br.Calls = append(br.Calls, []xdm.Sequence{{xdm.String(pid)}})
	}
	return br
}

func setCityRequest(city string, pids ...string) *client.BulkRequest {
	br := &client.BulkRequest{
		ModuleURI: "functions_p",
		AtHint:    "http://example.org/p.xq",
		Func:      "setCity",
		Arity:     2,
		Updating:  true,
	}
	for _, pid := range pids {
		br.Calls = append(br.Calls, []xdm.Sequence{{xdm.String(pid)}, {xdm.String(city)}})
	}
	return br
}

// deployPersons builds a sharded persons.xml deployment with routes
// registered.
func deployPersons(t *testing.T, net *netsim.Network, persons, shards, replication int) *Deployment {
	t.Helper()
	xml := xmark.GeneratePersons(xmark.Config{Persons: persons, Seed: 11})
	dep, err := Deploy(net, personsRegistry(t), map[string]string{"persons.xml": xml},
		DeployConfig{Shards: shards, Replication: replication, Routes: personRoutes()})
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

// singlePersonsBaseline runs the request against one unsharded peer.
func singlePersonsBaseline(t *testing.T, persons int, br *client.BulkRequest, after *client.BulkRequest) []byte {
	t.Helper()
	xml := xmark.GeneratePersons(xmark.Config{Persons: persons, Seed: 11})
	net := netsim.NewNetwork(0, 0)
	st := store.New()
	if err := st.LoadXML("persons.xml", xml); err != nil {
		t.Fatal(err)
	}
	reg := personsRegistry(t)
	srv := server.New(st, reg, server.NewNativeExecutor(interp.New(st, reg, nil), reg))
	net.Register("xrpc://single", srv)
	cl := client.New(net)
	if after != nil {
		// apply the update first (isolation "none": applied immediately)
		if _, err := cl.CallBulk("xrpc://single", after); err != nil {
			t.Fatal(err)
		}
	}
	res, err := cl.CallBulk("xrpc://single", br)
	if err != nil {
		t.Fatal(err)
	}
	return encodeResults(br, res)
}

// ------------------------------------------------------------ key order

func TestCompareKeysNaturalOrder(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"person2", "person10", -1},
		{"person10", "person2", 1},
		{"person7", "person7", 0},
		{"a", "b", -1},
		{"a1b2", "a1b10", -1},
		{"item9x", "item10a", -1},
		{"", "a", -1},
		{"2", "10", -1},
		{"person", "person0", -1},
	}
	for _, c := range cases {
		if got := CompareKeys(c.a, c.b); got != c.want {
			t.Errorf("CompareKeys(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	// leading zeros: numerically equal, but deterministically ordered
	if CompareKeys("a01", "a1") == 0 || CompareKeys("a01", "a1") != -CompareKeys("a1", "a01") {
		t.Error("leading-zero keys must order deterministically and antisymmetrically")
	}
}

func TestKeyRangeDescriptorRoundTrip(t *testing.T) {
	ranges := []KeyRange{
		{Doc: "persons.xml", Path: personsPath, Lo: 3, Hi: 7, Keyed: true, KeyAttr: "id", MinKey: "person3", MaxKey: "person6"},
		{Doc: "weird \"doc\".xml", Path: "/a b/c", Lo: 0, Hi: 0, Keyed: true, KeyAttr: "k", MinKey: "", MaxKey: ""},
		{Doc: "auctions.xml", Path: "/site/closed_auctions/closed_auction", Lo: 5, Hi: 9},
	}
	for _, r := range ranges {
		back, err := ParseKeyRange(r.String())
		if err != nil {
			t.Fatalf("ParseKeyRange(%q): %v", r.String(), err)
		}
		if back != r {
			t.Fatalf("round trip: %q became %+v, want %+v", r.String(), back, r)
		}
	}
	for _, bad := range []string{"", "persons.xml", `"a"`, `"a" "b" [x,y)`, `"a" "b" [1,2) "k" "x"`} {
		if _, err := ParseKeyRange(bad); err == nil {
			t.Errorf("ParseKeyRange(%q) did not fail", bad)
		}
	}
}

// ----------------------------------------------------- table validation

func TestRoutingTableValidate(t *testing.T) {
	build := func(t *testing.T, shards int, f func(rt *RoutingTable)) *RoutingTable {
		t.Helper()
		rt, err := NewRoutingTable(shards)
		if err != nil {
			t.Fatal(err)
		}
		f(rt)
		return rt
	}
	keyed := func(lo, hi int, min, max string) KeyRange {
		return KeyRange{Doc: "d.xml", Path: "/r/e", Lo: lo, Hi: hi, Keyed: true, KeyAttr: "id", MinKey: min, MaxKey: max}
	}
	cases := []struct {
		name    string
		rt      *RoutingTable
		wantErr string // "" = valid
	}{
		{"valid single shard", build(t, 1, func(rt *RoutingTable) {
			rt.Add(0, "xrpc://a")
		}), ""},
		{"valid with replicas and ranges", build(t, 2, func(rt *RoutingTable) {
			rt.Add(0, "xrpc://a")
			rt.Add(0, "xrpc://a.r1")
			rt.Add(1, "http://b:8080")
			rt.Add(1, "http://b2:8080")
			rt.SetRanges(0, []KeyRange{keyed(0, 2, "e0", "e1")})
			rt.SetRanges(1, []KeyRange{keyed(2, 4, "e2", "e3")})
		}), ""},
		{"shard-index gap", build(t, 3, func(rt *RoutingTable) {
			rt.Add(0, "xrpc://a")
			rt.Add(2, "xrpc://c")
		}), "shard 1 has no peers"},
		{"empty uri", build(t, 1, func(rt *RoutingTable) {
			rt.Add(0, "  ")
		}), "empty peer URI"},
		{"whitespace uri", build(t, 1, func(rt *RoutingTable) {
			rt.Add(0, "xrpc://host name")
		}), "contains whitespace"},
		{"empty host", build(t, 1, func(rt *RoutingTable) {
			rt.Add(0, "xrpc://")
		}), "empty host"},
		{"empty scheme", build(t, 1, func(rt *RoutingTable) {
			rt.Add(0, "://host")
		}), "empty scheme"},
		{"duplicate within shard", build(t, 1, func(rt *RoutingTable) {
			rt.Add(0, "xrpc://a")
			rt.Add(0, "xrpc://a")
		}), "duplicate peer URI"},
		{"duplicate across shards", build(t, 2, func(rt *RoutingTable) {
			rt.Add(0, "xrpc://a")
			rt.Add(1, "xrpc://a")
		}), "duplicate peer URI"},
		{"range gap", build(t, 2, func(rt *RoutingTable) {
			rt.Add(0, "xrpc://a")
			rt.Add(1, "xrpc://b")
			rt.SetRanges(0, []KeyRange{keyed(0, 2, "e0", "e1")})
			rt.SetRanges(1, []KeyRange{keyed(3, 4, "e3", "e3")})
		}), "range gap"},
		{"range metadata missing on one shard", build(t, 2, func(rt *RoutingTable) {
			rt.Add(0, "xrpc://a")
			rt.Add(1, "xrpc://b")
			rt.SetRanges(0, []KeyRange{keyed(0, 2, "e0", "e1")})
		}), "missing range metadata"},
		{"inverted range", build(t, 1, func(rt *RoutingTable) {
			rt.Add(0, "xrpc://a")
			rt.SetRanges(0, []KeyRange{keyed(2, 0, "e0", "e1")})
		}), "inverted range"},
		{"inverted key bounds", build(t, 1, func(rt *RoutingTable) {
			rt.Add(0, "xrpc://a")
			rt.SetRanges(0, []KeyRange{keyed(0, 2, "e9", "e1")})
		}), "inverted key bounds"},
		{"inconsistent key attr", build(t, 2, func(rt *RoutingTable) {
			rt.Add(0, "xrpc://a")
			rt.Add(1, "xrpc://b")
			rt.SetRanges(0, []KeyRange{keyed(0, 2, "e0", "e1")})
			r := keyed(2, 4, "e2", "e3")
			r.KeyAttr = "name"
			rt.SetRanges(1, []KeyRange{r})
		}), "keys"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.rt.Validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				if !c.rt.Complete() {
					t.Fatal("Complete() = false for a valid table")
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, c.wantErr)
			}
			if c.rt.Complete() {
				t.Fatal("Complete() = true for an invalid table")
			}
		})
	}
}

// -------------------------------------------------------- range emission

func TestPartitionEmitsRanges(t *testing.T) {
	xml := xmark.GeneratePersons(xmark.Config{Persons: 10, Seed: 1})
	_, ranges, err := PartitionWithRanges("persons.xml", xml, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) != 3 {
		t.Fatalf("ranges for %d shards, want 3", len(ranges))
	}
	wantLo := 0
	for k, rs := range ranges {
		if len(rs) != 1 {
			t.Fatalf("shard %d: %d ranges, want 1 (the person container)", k, len(rs))
		}
		r := rs[0]
		if r.Doc != "persons.xml" || r.Path != personsPath {
			t.Fatalf("shard %d: range %+v addresses the wrong container", k, r)
		}
		if r.Lo != wantLo {
			t.Fatalf("shard %d starts at %d, want %d (contiguous tiling)", k, r.Lo, wantLo)
		}
		wantLo = r.Hi
		if !r.Keyed || r.KeyAttr != "id" {
			t.Fatalf("shard %d: person container not keyed by id: %+v", k, r)
		}
		if r.MinKey != fmt.Sprintf("person%d", r.Lo) || r.MaxKey != fmt.Sprintf("person%d", r.Hi-1) {
			t.Fatalf("shard %d: key bounds %q..%q disagree with slice [%d,%d)", k, r.MinKey, r.MaxKey, r.Lo, r.Hi)
		}
	}
	if wantLo != 10 {
		t.Fatalf("ranges tile to %d, want 10", wantLo)
	}

	// per-shard partitioning emits the identical metadata
	for k := 0; k < 3; k++ {
		_, one, err := PartitionShardWithRanges("persons.xml", xml, k, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(one) != 1 || one[0] != ranges[k][0] {
			t.Fatalf("PartitionShardWithRanges(%d) metadata %+v differs from PartitionWithRanges %+v",
				k, one, ranges[k])
		}
	}

	// auctions have no common child attribute: container present, unkeyed
	_, aranges, err := PartitionWithRanges("auctions.xml",
		xmark.GenerateAuctions(xmark.PaperConfig(0.02)), 2)
	if err != nil {
		t.Fatal(err)
	}
	for k, rs := range aranges {
		if len(rs) != 1 || rs[0].Keyed {
			t.Fatalf("shard %d: closed_auction container should be unkeyed, got %+v", k, rs)
		}
	}
}

// ---------------------------------------------------------- pruned reads

func TestPrunedProbeContactsOnlyOwningShard(t *testing.T) {
	const persons = 20
	net := netsim.NewNetwork(0, 0)
	dep := deployPersons(t, net, persons, 4, 1)
	co := dep.Coordinator()

	for _, pid := range []string{"person0", "person7", "person19"} {
		br := getPersonRequest(pid)
		want := singlePersonsBaseline(t, persons, br, nil)
		net.ResetStats()
		res, err := co.Scatter(br)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeResults(br, res), want) {
			t.Fatalf("pruned probe for %s differs from single-peer response", pid)
		}
		contacted := 0
		for s := 0; s < 4; s++ {
			if reqs, _, _ := net.PeerStats(dep.Table.Primary(s)); reqs > 0 {
				contacted++
			}
		}
		if contacted != 1 {
			t.Fatalf("probe for %s contacted %d shards, want exactly 1", pid, contacted)
		}
	}
}

func TestPrunedScatterByteIdenticalToBroadcast(t *testing.T) {
	const persons = 17
	net := netsim.NewNetwork(0, 0)
	dep := deployPersons(t, net, persons, 3, 1)
	co := dep.Coordinator()

	// a mixed bulk: keys across all shards, a repeated key, and a key
	// that exists on no shard (pruned everywhere -> empty result)
	br := getPersonRequest("person16", "person0", "person5", "person0", "nosuch", "person9")
	want := singlePersonsBaseline(t, persons, br, nil)
	res, err := co.Scatter(br)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeResults(br, res), want) {
		t.Fatal("pruned scatter differs from single-peer broadcast result")
	}

	// same request through a route-less coordinator (pure broadcast)
	plain := NewCoordinator(dep.Table, client.New(net))
	bres, err := plain.Scatter(br)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeResults(br, bres), encodeResults(br, res)) {
		t.Fatal("pruned and broadcast scatters disagree")
	}
}

// ------------------------------------------------------- routed updates

func TestRoutedUpdateCommitsVia2PCWithReadYourWrites(t *testing.T) {
	const persons = 12
	net := netsim.NewNetwork(0, 0)
	dep := deployPersons(t, net, persons, 3, 2)
	co := dep.Coordinator()

	upd := setCityRequest("Rotterdam", "person4", "person10")
	probe := getPersonRequest("person4", "person10")
	want := singlePersonsBaseline(t, persons, probe, upd)

	net.ResetStats()
	if _, err := co.CallBulk(DefaultClusterURI, upd); err != nil {
		t.Fatal(err)
	}
	// person4 -> shard 1 ([4,8)), person10 -> shard 2 ([8,12)): shard 0
	// must not have seen the update at all
	if reqs, _, _ := net.PeerStats(dep.Table.Primary(0)); reqs != 0 {
		t.Fatalf("shard 0 primary served %d requests for an update it does not own", reqs)
	}

	// both touched primaries went through Prepare (stable log written)
	for _, s := range []int{1, 2} {
		if logs := dep.Servers[s][0].PrepareLog(); len(logs) != 1 || !strings.Contains(logs[0], "replaceValue") {
			t.Fatalf("shard %d primary prepare log = %q, want one replaceValue entry", s, logs)
		}
		// replica adopted the forwarded PUL
		if logs := dep.Servers[s][1].PrepareLog(); len(logs) != 1 || !strings.Contains(logs[0], "ADOPT") {
			t.Fatalf("shard %d replica log = %q, want an ADOPT entry", s, logs)
		}
		// version fence: replica committed to the same store version
		if pv, rv := dep.Stores[s][0].Version(), dep.Stores[s][1].Version(); pv != rv {
			t.Fatalf("shard %d: primary version %d != replica version %d after commit", s, pv, rv)
		}
		// no replica was evicted
		if got := len(dep.Table.Replicas(s)); got != 2 {
			t.Fatalf("shard %d has %d replicas after a clean commit, want 2", s, got)
		}
	}

	// read-your-writes through the primaries…
	res, err := co.Scatter(probe)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeResults(probe, res), want) {
		t.Fatal("post-update probe differs from single-peer baseline")
	}
	// …and through the replicas: kill both touched primaries
	net.Register(dep.Table.Primary(1), down("shard1 primary"))
	net.Register(dep.Table.Primary(2), down("shard2 primary"))
	res, err = co.Scatter(probe)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeResults(probe, res), want) {
		t.Fatal("replicas do not serve the committed update (read-your-writes violated)")
	}
}

func TestUpdateWithoutRouteRejected(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	dep := deployPersons(t, net, 8, 2, 1)
	co := NewCoordinator(dep.Table, client.New(net)) // no routes
	_, err := co.CallBulk(DefaultClusterURI, setCityRequest("X", "person1"))
	if err == nil || !strings.Contains(err.Error(), "no route") {
		t.Fatalf("unrouted updating request: got %v, want a no-route error", err)
	}
}

func TestUpdateUnroutableKeyRejected(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	dep := deployPersons(t, net, 8, 2, 1)
	co := dep.Coordinator()
	// a key no shard owns is not routable to one shard
	_, err := co.Update(setCityRequest("X", "nosuchperson"))
	if err == nil || !strings.Contains(err.Error(), "not routable") {
		t.Fatalf("unroutable key: got %v, want a not-routable error", err)
	}
	// stores untouched
	for s := range dep.Stores {
		for _, st := range dep.Stores[s] {
			if st.Version() != 1 {
				t.Fatal("an unroutable update mutated a shard store")
			}
		}
	}
}

func TestUpdateApplyFailureAbortsEverywhere(t *testing.T) {
	const persons = 12
	net := netsim.NewNetwork(0, 0)
	dep := deployPersons(t, net, persons, 3, 1)
	co := dep.Coordinator()

	// shard 2's primary is down: the two-shard transaction must abort as
	// a whole, leaving shard 1 unchanged
	net.Register(dep.Table.Primary(2), down("shard2 primary"))
	_, err := co.Update(setCityRequest("Nowhere", "person4", "person10"))
	if err == nil || !strings.Contains(err.Error(), "shard 2") {
		t.Fatalf("want the failing shard reported, got %v", err)
	}
	if v := dep.Stores[1][0].Version(); v != 1 {
		t.Fatalf("shard 1 committed (version %d) despite the aborted transaction", v)
	}
	if n := dep.Servers[1][0].IsolatedQueries(); n != 0 {
		t.Fatalf("shard 1 still holds %d isolated queries after abort", n)
	}
}

func TestReplicaReplicationFailureEvicts(t *testing.T) {
	const persons = 8
	net := netsim.NewNetwork(0, 0)
	dep := deployPersons(t, net, persons, 2, 2)
	co := dep.Coordinator()
	var evicted []string
	co.OnEvict = func(shard int, uri string, reason error) {
		evicted = append(evicted, fmt.Sprintf("%d:%s", shard, uri))
	}

	// person1 lives on shard 0; its replica is down and cannot adopt the
	// PUL — the commit must still succeed at the primary, with the
	// replica evicted instead of left stale
	deadReplica := dep.Table.Replicas(0)[1]
	net.Register(deadReplica, down("shard0 replica"))
	if _, err := co.Update(setCityRequest("Utrecht", "person1")); err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != "0:"+deadReplica {
		t.Fatalf("evictions = %v, want the dead replica of shard 0", evicted)
	}
	if reps := dep.Table.Replicas(0); len(reps) != 1 || reps[0] != dep.Table.Primary(0) {
		t.Fatalf("routing table still lists the stale replica: %v", reps)
	}
	// the committed value is served (by the primary; the stale replica
	// can no longer be consulted)
	probe := getPersonRequest("person1")
	want := singlePersonsBaseline(t, persons, probe, setCityRequest("Utrecht", "person1"))
	res, err := co.Scatter(probe)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeResults(probe, res), want) {
		t.Fatal("post-eviction probe differs from baseline")
	}
}

// TestUpdatingPathThroughBulkCaller drives an updating query through
// the loop-lifting engine with the cluster coordinator as its
// BulkCaller: the per-iteration execute-at calls loop-lift into one
// updating bulk request, which the coordinator routes shard-by-shard
// and commits via 2PC.
func TestUpdatingPathThroughBulkCaller(t *testing.T) {
	const persons = 12
	net := netsim.NewNetwork(0, 0)
	dep := deployPersons(t, net, persons, 3, 2)
	co := dep.Coordinator()

	reg := personsRegistry(t)
	compiled, err := pathfinder.Compile(`
import module namespace p="functions_p" at "http://example.org/p.xq";
for $pid in ("person2", "person6", "person11")
return execute at {"xrpc://cluster"} {p:setCity($pid, "Leiden")}`, reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compiled.Eval(&pathfinder.ExecCtx{Bulk: co}, nil); err != nil {
		t.Fatal(err)
	}

	probe := getPersonRequest("person2", "person6", "person11")
	want := singlePersonsBaseline(t, persons, probe,
		setCityRequest("Leiden", "person2", "person6", "person11"))
	res, err := co.Scatter(probe)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeResults(probe, res), want) {
		t.Fatal("loop-lifted cluster update differs from single-peer baseline")
	}
	// every shard was touched; all replicas fenced to their primaries
	for s := range dep.Stores {
		if pv, rv := dep.Stores[s][0].Version(), dep.Stores[s][1].Version(); pv != 2 || rv != 2 {
			t.Fatalf("shard %d versions %d/%d, want 2/2", s, pv, rv)
		}
	}
}

// --------------------------------------------- eviction under contention

// TestConcurrentScattersDuringEviction flips the routing table (evict +
// re-add of a replica) while scatters are in flight; every scatter must
// return the identical merged response. Run under -race this also
// proves the table's locking discipline.
func TestConcurrentScattersDuringEviction(t *testing.T) {
	const persons = 10
	net := netsim.NewNetwork(0, 0)
	dep := deployPersons(t, net, persons, 2, 3)
	co := dep.Coordinator()

	br := getPersonRequest("person1", "person8")
	want := singlePersonsBaseline(t, persons, br, nil)

	stop := make(chan struct{})
	errs := make(chan error, 64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := co.Scatter(br)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(encodeResults(br, res), want) {
					errs <- fmt.Errorf("scatter during table flip produced a different response")
					return
				}
			}
		}()
	}
	victim := dep.Table.Replicas(0)[1]
	for i := 0; i < 200; i++ {
		if !dep.Table.Evict(0, victim) {
			errs <- fmt.Errorf("flip %d: eviction failed", i)
			break
		}
		if err := dep.Table.Add(0, victim); err != nil {
			errs <- err
			break
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestEvictNeverRemovesLastPeer(t *testing.T) {
	rt, _ := NewRoutingTable(1)
	rt.Add(0, "xrpc://only")
	if rt.Evict(0, "xrpc://only") {
		t.Fatal("evicted the last peer of a shard")
	}
	if rt.Primary(0) != "xrpc://only" {
		t.Fatal("table lost its last peer")
	}
}

// ------------------------------------------- HTTP failover classification

// TestHTTPStatusFailoverClassification pins the retriable/definitive
// split on real HTTP responses: a 503 from the primary fails over to
// the replica; a 404 is a deterministic rejection and must not.
func TestHTTPStatusFailoverClassification(t *testing.T) {
	xml := xmark.GeneratePersons(xmark.Config{Persons: 6, Seed: 11})
	reg := personsRegistry(t)
	st := store.New()
	if err := st.LoadXML("persons.xml", xml); err != nil {
		t.Fatal(err)
	}
	good := httptest.NewServer(server.New(st, reg, server.NewNativeExecutor(interp.New(st, reg, nil), reg)))
	defer good.Close()

	status := func(code int) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "synthetic failure", code)
		}))
	}
	for _, c := range []struct {
		code     int
		failover bool
	}{
		{http.StatusServiceUnavailable, true},
		{http.StatusBadGateway, true},
		{http.StatusNotFound, false},
		{http.StatusBadRequest, false},
	} {
		bad := status(c.code)
		rt, _ := NewRoutingTable(1)
		rt.Add(0, bad.URL)
		rt.Add(0, good.URL)
		co := NewCoordinator(rt, client.New(client.NewHTTPTransport()))
		_, err := co.Scatter(getPersonRequest("person1"))
		if c.failover && err != nil {
			t.Errorf("status %d: expected failover to the replica, got %v", c.code, err)
		}
		if !c.failover {
			if err == nil {
				t.Errorf("status %d: definitive rejection retried against the replica", c.code)
			} else if !strings.Contains(err.Error(), fmt.Sprint(c.code)) {
				t.Errorf("status %d: error does not surface the status: %v", c.code, err)
			}
		}
		bad.Close()
	}
}

// ----------------------------------------------------- shardInfo ranges

func TestShardInfoReportsRanges(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	dep := deployPersons(t, net, 9, 3, 1)
	cl := client.New(net)
	for s := 0; s < 3; s++ {
		res, err := cl.CallBulk(dep.Table.Primary(s), &client.BulkRequest{
			ModuleURI: client.SystemModule,
			Func:      "shardInfo",
			Arity:     0,
			Calls:     [][]xdm.Sequence{{}},
		})
		if err != nil {
			t.Fatal(err)
		}
		seq := res[0]
		// [shard, shards, doc names..., range descriptors...]
		var got []KeyRange
		for _, item := range seq[2:] {
			if r, err := ParseKeyRange(item.StringValue()); err == nil {
				got = append(got, r)
			}
		}
		want := dep.Table.Ranges(s)
		if len(got) != len(want) {
			t.Fatalf("shard %d reports %d ranges, table has %d", s, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shard %d range %d: reported %+v, table %+v", s, i, got[i], want[i])
			}
		}
	}
}

// TestPrimaryCommitFailureDoesNotCommitReplica pins the heuristic-
// outcome policy: when a touched primary dies between Prepare and
// Commit, its replica — which already adopted the PUL — must not commit
// against an unverifiable primary state. It is aborted (snapshot
// released) and evicted instead.
func TestPrimaryCommitFailureDoesNotCommitReplica(t *testing.T) {
	const persons = 8
	net := netsim.NewNetwork(0, 0)
	dep := deployPersons(t, net, persons, 2, 2)
	co := dep.Coordinator()
	var evicted []string
	co.OnEvict = func(shard int, uri string, reason error) {
		evicted = append(evicted, fmt.Sprintf("%d:%s:%v", shard, uri, reason))
	}

	// the shard 0 primary answers everything except the Commit verb
	primary := dep.Servers[0][0]
	net.Register(dep.Table.Primary(0), netsim.HandlerFunc(func(path string, body []byte) ([]byte, error) {
		if bytes.Contains(body, []byte(`xrpc:method="Commit"`)) {
			return nil, fmt.Errorf("primary crashed at commit")
		}
		return primary.HandleXRPC(path, body)
	}))

	_, err := co.Update(setCityRequest("Ghost", "person1"))
	if err == nil || !strings.Contains(err.Error(), "commit failed") {
		t.Fatalf("want the heuristic commit failure reported, got %v", err)
	}
	// the replica adopted but must NOT have committed…
	if v := dep.Stores[0][1].Version(); v != 1 {
		t.Fatalf("replica committed (version %d) although its primary did not", v)
	}
	// …its prepared snapshot is released (aborted, not leaked)…
	if n := dep.Servers[0][1].IsolatedQueries(); n != 0 {
		t.Fatalf("replica still pins %d isolated queries after abort", n)
	}
	// …and it is evicted rather than left to diverge silently
	if len(evicted) != 1 || !strings.Contains(evicted[0], "unverifiable") {
		t.Fatalf("evictions = %v, want the replica of shard 0 (unverifiable)", evicted)
	}
}

package cluster

import (
	"fmt"
	"io"
	"sync"
	"time"

	"xrpc/internal/client"
	"xrpc/internal/soap"
	"xrpc/internal/xdm"
)

// gather.go is the incremental half of scatter-gather: instead of
// collecting every shard's fully-decoded response and concatenating
// (ScatterBuffered), the merge walks the open response streams in shard
// order, one result sequence at a time — shard k's items for call i are
// forwarded while shards k+1..N are still producing theirs into bounded
// read-ahead windows. The merged output is byte-identical to the
// buffered path (the merge order is exactly the concatenation order);
// what changes is the coordinator's footprint, which drops from
// O(total result bytes) to O(shards × MaxShardBuffer + largest item).

// DefaultMaxShardBuffer is the default per-shard read-ahead window of
// the streamed gather (see Coordinator.MaxShardBuffer).
const DefaultMaxShardBuffer = 1 << 20

// shardStream is one shard's open response during a gather.
type shardStream struct {
	shard   int
	sr      *client.StreamedResponse
	err     error
	openDur time.Duration // send → response stream open (slow-log fodder)
}

func (co *Coordinator) shardWindow() int {
	if co.MaxShardBuffer > 0 {
		return co.MaxShardBuffer
	}
	return DefaultMaxShardBuffer
}

// openShard opens the response stream at the shard's primary, walking
// the replica list on retriable failures — the same pre-encoded bytes
// for every attempt, never re-encoding. Failover happens only at open:
// once a response stream is being merged, its bytes are already part of
// the output and a mid-stream failure aborts the gather.
func (co *Coordinator) openShard(shard int, body []byte, calls int) (*client.StreamedResponse, int, error) {
	replicas := co.Table.Replicas(shard)
	var lastErr error
	for a, uri := range replicas {
		sr, err := co.Client.SendStreamed(uri, body, calls, co.shardWindow())
		if err == nil {
			return sr, a, nil
		}
		if !client.Retriable(err) {
			return nil, a, err
		}
		lastErr = err
	}
	return nil, len(replicas) - 1,
		fmt.Errorf("all %d replica(s) unreachable: %w", len(replicas), lastErr)
}

// openShardStreams opens all shard streams concurrently and waits for
// the opens (header only — the responses themselves stream afterwards).
// Waiting here keeps error selection deterministic: when several shards
// fail to open, the lowest shard index is reported, matching the
// buffered path. On any failure every opened stream is closed.
func (co *Coordinator) openShardStreams(body []byte, calls int) ([]*shardStream, error) {
	n := co.Table.NumShards()
	conns := make([]*shardStream, n)
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		conns[s] = &shardStream{shard: s}
		wg.Add(1)
		go func(c *shardStream) {
			defer wg.Done()
			t0 := time.Now()
			var failovers int
			c.sr, failovers, c.err = co.openShard(c.shard, body, calls)
			c.openDur = time.Since(t0)
			co.Metrics.observeOpen(c.shard, c.openDur, failovers)
		}(conns[s])
	}
	wg.Wait()
	for _, c := range conns {
		if c.err != nil {
			closeShardStreams(conns)
			return nil, fmt.Errorf("cluster: shard %d: %w", c.shard, c.err)
		}
	}
	return conns, nil
}

func closeShardStreams(conns []*shardStream) {
	for _, c := range conns {
		if c.sr != nil {
			c.sr.Close()
		}
	}
}

// gatherStreams drives the shard-order merge: for every call it opens a
// merged sequence, copies each shard's sequence for that call through
// the item callback in ascending shard order, and closes it — then
// Finishes every stream, which validates result counts and trailing
// envelope content. Callbacks receive the merge incrementally (item is
// told which shard produced each item), so the caller chooses whether
// items accumulate (Scatter, per-shard capture for the result cache) or
// leave the process immediately (ScatterStream).
func gatherStreams(conns []*shardStream, calls int,
	begin func() error, item func(shard int, it xdm.Item) error, end func() error) error {

	for i := 0; i < calls; i++ {
		if err := begin(); err != nil {
			return err
		}
		for _, c := range conns {
			ok, err := c.sr.NextSequence()
			if err != nil {
				return fmt.Errorf("cluster: shard %d: %w", c.shard, err)
			}
			if !ok {
				return fmt.Errorf("cluster: shard %d: %d results for %d calls", c.shard, i, calls)
			}
			for {
				it, err := c.sr.NextItem()
				if err != nil {
					return fmt.Errorf("cluster: shard %d: %w", c.shard, err)
				}
				if it == nil {
					break
				}
				if err := item(c.shard, it); err != nil {
					return err
				}
			}
		}
		if err := end(); err != nil {
			return err
		}
	}
	for _, c := range conns {
		if _, err := c.sr.Finish(); err != nil {
			return fmt.Errorf("cluster: shard %d: %w", c.shard, err)
		}
	}
	return nil
}

// gatherObserved wraps gatherStreams with merge timing and per-shard
// time-to-first-merged-item. With no metrics attached it is exactly
// gatherStreams — no clock reads, no wrapper closure on the item path.
func (co *Coordinator) gatherObserved(conns []*shardStream, calls int,
	begin func() error, item func(shard int, it xdm.Item) error, end func() error) error {

	m := co.Metrics
	if m == nil {
		return gatherStreams(conns, calls, begin, item, end)
	}
	start := time.Now()
	seen := make([]bool, len(m.FirstItem))
	wrapped := func(shard int, it xdm.Item) error {
		if shard < len(seen) && !seen[shard] {
			seen[shard] = true
			m.FirstItem[shard].ObserveDuration(time.Since(start))
		}
		return item(shard, it)
	}
	err := gatherStreams(conns, calls, begin, wrapped, end)
	m.Merge.ObserveDuration(time.Since(start))
	return err
}

// Scatter sends the read-only bulk request to the shards and merges the
// responses in shard order, incrementally: result i of the merged
// response is the concatenation, in shard order, of every shard's
// result i, assembled one sequence at a time while later shards are
// still producing. Identical results to ScatterBuffered (the executable
// reference), with coordinator memory bounded per shard instead of per
// response. When a RouteSpec matches and the table has keyed ranges for
// its container, calls are pruned to the shards whose ranges may
// contain their keys; otherwise every call broadcasts.
func (co *Coordinator) Scatter(br *client.BulkRequest) ([]xdm.Sequence, error) {
	if br.Updating {
		return nil, xdm.NewError("XRPC0007",
			"cluster: updating bulk requests are routed, not scattered (use Update/CallBulk)")
	}
	if err := co.validTable(); err != nil {
		return nil, err
	}
	// requests outside an isolation scope can be answered from the
	// merged-result cache, revalidated against the shards' (version,
	// generation) fences (see resultcache.go); queryID'd requests see
	// their own pinned snapshots and bypass it
	if co.ResultCache != nil && co.Client.QueryID == nil {
		return co.scatterCached(br)
	}
	return co.scatterDirect(br)
}

// scatterDirect is the scatter proper, cache considerations aside.
func (co *Coordinator) scatterDirect(br *client.BulkRequest) ([]xdm.Sequence, error) {
	dec := co.plan(br)
	if dec.strategy != "broadcast" {
		return co.scatterPruned(br, dec)
	}
	enc := co.Client.EncodeBulk(br)
	defer enc.Release()
	merged, _, err := co.gatherCapture(br, enc.Bytes(), false, dec)
	return merged, err
}

// gatherCapture runs the streamed broadcast gather; with capture set it
// additionally records each shard's own result sequences (the per-shard
// split the result cache needs to refresh stale shards individually).
// dec, when non-nil, carries the planner decision that chose this
// broadcast (its cost estimates feed the slow-query log).
func (co *Coordinator) gatherCapture(br *client.BulkRequest, body []byte, capture bool, dec *planDecision) ([]xdm.Sequence, [][]xdm.Sequence, error) {
	calls := len(br.Calls)
	co.Metrics.countScatter("broadcast")
	co.countStrategy("broadcast")
	var start time.Time
	if co.Metrics != nil || co.SlowLog != nil {
		start = time.Now()
	}
	conns, err := co.openShardStreams(body, calls)
	if err != nil {
		return nil, nil, err
	}
	defer closeShardStreams(conns)
	var perShard [][]xdm.Sequence
	if capture {
		perShard = make([][]xdm.Sequence, co.Table.NumShards())
		for s := range perShard {
			perShard[s] = make([]xdm.Sequence, calls)
		}
	}
	merged := make([]xdm.Sequence, 0, calls)
	var cur xdm.Sequence
	err = co.gatherObserved(conns, calls,
		func() error { cur = nil; return nil },
		func(shard int, it xdm.Item) error {
			cur = append(cur, it)
			if capture {
				perShard[shard][len(merged)] = append(perShard[shard][len(merged)], it)
			}
			return nil
		},
		func() error { merged = append(merged, cur); return nil })
	if err != nil {
		return nil, nil, err
	}
	if !start.IsZero() {
		co.observeScatter(br, len(conns), conns, time.Since(start), dec)
	}
	return merged, perShard, nil
}

// ScatterStream runs the scatter with the merged response envelope
// written to w in chunks as it is assembled: decoded items from shard k
// are re-encoded into the output and gone before shard k+1's arrive, so
// the full merged result never exists in coordinator memory at all —
// the pipeline is socket → pull-decoder → merge → chunked writer end to
// end. The envelope is byte-identical to encoding Scatter's result.
// A pruned scatter (per-shard call subsets) falls back to the buffered
// merge before encoding: pruning already bounds what each shard
// returns, and its per-call shard subsets do not interleave with a
// single forward walk.
func (co *Coordinator) ScatterStream(br *client.BulkRequest, w io.Writer) error {
	if br.Updating {
		return xdm.NewError("XRPC0007",
			"cluster: updating bulk requests are routed, not scattered (use Update/CallBulk)")
	}
	if err := co.validTable(); err != nil {
		return err
	}
	dec := co.plan(br)
	if dec.strategy != "broadcast" {
		results, err := co.scatterPruned(br, dec)
		if err != nil {
			return err
		}
		return soap.EncodeResponseTo(w, &soap.Response{
			Module: br.ModuleURI, Method: br.Func, Results: results,
		})
	}
	// with the result cache on, the gather stays incremental on a miss
	// (items flow to w as shards produce them) but one copy of the
	// merged result is retained to populate the cache — caching a result
	// requires holding it. A hit encodes straight from the cached
	// sequences with no shard round trip at all. The never-materialize
	// guarantee of the pure streaming path therefore applies only when
	// ResultCache is nil (the default, and what the memory-bound smoke
	// test exercises); see DeployConfig.ResultCacheBytes.
	if co.ResultCache != nil && co.Client.QueryID == nil {
		return co.scatterCachedStream(br, w)
	}
	enc := co.Client.EncodeBulk(br)
	defer enc.Release()
	_, _, err := co.gatherStreamCapture(br, enc.Bytes(), w, false, dec)
	return err
}

// gatherStreamCapture runs the streamed broadcast gather with the
// merged response envelope encoded to w in chunks as it is assembled:
// decoded items from shard k are re-encoded into the output and gone
// before shard k+1's arrive. With capture set it additionally retains
// the merged and per-shard sequences — the result cache's population
// input — at the cost of holding one copy of the result; without it
// nothing is retained and coordinator memory stays bounded by the
// per-shard read-ahead windows.
func (co *Coordinator) gatherStreamCapture(br *client.BulkRequest, body []byte, w io.Writer, capture bool, dec *planDecision) ([]xdm.Sequence, [][]xdm.Sequence, error) {
	calls := len(br.Calls)
	co.Metrics.countScatter("broadcast")
	co.countStrategy("broadcast")
	var start time.Time
	if co.Metrics != nil || co.SlowLog != nil {
		start = time.Now()
	}
	conns, err := co.openShardStreams(body, calls)
	if err != nil {
		return nil, nil, err
	}
	defer closeShardStreams(conns)
	var merged []xdm.Sequence
	var perShard [][]xdm.Sequence
	if capture {
		merged = make([]xdm.Sequence, 0, calls)
		perShard = make([][]xdm.Sequence, co.Table.NumShards())
		for s := range perShard {
			perShard[s] = make([]xdm.Sequence, calls)
		}
	}
	var cur xdm.Sequence
	out := soap.NewStreamEncoder(w, 0)
	defer out.Release()
	out.BeginResponse(br.ModuleURI, br.Func)
	err = co.gatherObserved(conns, calls,
		func() error {
			out.BeginSequence()
			cur = nil
			return out.Err()
		},
		func(shard int, it xdm.Item) error {
			out.EncodeItem(it)
			if capture {
				cur = append(cur, it)
				perShard[shard][len(merged)] = append(perShard[shard][len(merged)], it)
			}
			return out.Err()
		},
		func() error {
			out.EndSequence()
			if capture {
				merged = append(merged, cur)
			}
			return out.Err()
		})
	if err != nil {
		return nil, nil, err
	}
	out.EndResponse(nil)
	if err := out.Flush(); err != nil {
		return nil, nil, err
	}
	if !start.IsZero() {
		co.observeScatter(br, len(conns), conns, time.Since(start), dec)
	}
	return merged, perShard, nil
}

package cluster

import (
	"bytes"
	"fmt"
	"log/slog"
	"strings"
	"testing"

	"xrpc/internal/client"
	"xrpc/internal/modules"
	"xrpc/internal/netsim"
	"xrpc/internal/obs"
	"xrpc/internal/planner"
	"xrpc/internal/xdm"
	"xrpc/internal/xmark"
)

// deployPersonsZeroSpec deploys persons.xml with NO hand-written routes:
// any pruning or routing that happens is the planner's doing.
func deployPersonsZeroSpec(t *testing.T, net *netsim.Network, persons, shards int, cacheBytes int64) *Deployment {
	t.Helper()
	xml := xmark.GeneratePersons(xmark.Config{Persons: persons, Seed: 11})
	dep, err := Deploy(net, personsRegistry(t), map[string]string{"persons.xml": xml},
		DeployConfig{Shards: shards, Replication: 1, ResultCacheBytes: cacheBytes})
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

// TestPlannerDerivedSpecsMatchHandWritten is the differential check of
// the derivation pass: for every hand-written spec of the routed
// workload, the compiler must either derive the identical spec or —
// where the spec encodes a semantic promise the emptiness proof cannot
// check — refuse to derive, so the hand-written spec subsumes it.
func TestPlannerDerivedSpecsMatchHandWritten(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	dep := deployPersonsZeroSpec(t, net, 12, 3, 0)
	co := dep.Coordinator()
	for _, want := range personRoutes() {
		br := &client.BulkRequest{
			ModuleURI: want.ModuleURI,
			AtHint:    "http://example.org/p.xq",
			Func:      want.Func,
			Arity:     1,
		}
		if want.Func == "setCity" {
			br.Arity, br.Updating = 2, true
		}
		got, reason, analysed := co.derivedSpec(br)
		if want.Func == "cityOf" {
			// string(()) is "" — a non-empty string item on every
			// non-owning shard — so cityOf's body is not empty-on-miss and
			// the derivation must refuse it. The hand-written spec (a
			// semantic promise the compiler cannot check: only the owning
			// shard's answer is intended) remains its executable reference.
			if analysed || got != nil {
				t.Fatalf("cityOf: derived %+v (reason %q), want a derivation miss", got, reason)
			}
			continue
		}
		if got == nil {
			t.Fatalf("%s: no derived spec (reason %q, analysed %v)", want.Func, reason, analysed)
		}
		if got.ModuleURI != want.ModuleURI || got.Func != want.Func ||
			got.KeyArg != want.KeyArg || got.Doc != want.Doc ||
			got.Path != want.Path || got.op() != want.op() {
			t.Fatalf("%s: derived %+v, want the hand-written %+v", want.Func, got, want)
		}
	}
}

// TestPlannerZeroSpecByteIdenticalToBroadcast pins the planner's core
// guarantee: with zero registered RouteSpecs, the derived-route scatter
// is byte-identical to broadcast (and to a single unsharded peer), and
// a single-key probe contacts exactly one shard instead of N.
func TestPlannerZeroSpecByteIdenticalToBroadcast(t *testing.T) {
	const persons = 17
	for _, shards := range []int{1, 2, 4} {
		net := netsim.NewNetwork(0, 0)
		dep := deployPersonsZeroSpec(t, net, persons, shards, 0)
		co := dep.Coordinator()

		// mixed bulk: keys across shards, a repeat, and a key no shard owns
		br := getPersonRequest("person16", "person0", "person5", "person0", "nosuch", "person9")
		want := singlePersonsBaseline(t, persons, br, nil)
		res, err := co.Scatter(br)
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		if !bytes.Equal(encodeResults(br, res), want) {
			t.Fatalf("%d shards: derived-route scatter differs from single-peer result", shards)
		}
		plain := NewCoordinator(dep.Table, client.New(net)) // no routes, no planner
		bres, err := plain.Scatter(br)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeResults(br, bres), encodeResults(br, res)) {
			t.Fatalf("%d shards: derived-route and broadcast scatters disagree", shards)
		}

		// single-key probe: 1 server call, not N
		probe := getPersonRequest("person7")
		pwant := singlePersonsBaseline(t, persons, probe, nil)
		net.ResetStats()
		pres, err := co.Scatter(probe)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeResults(probe, pres), pwant) {
			t.Fatalf("%d shards: derived-route probe differs from single-peer result", shards)
		}
		contacted := 0
		for s := 0; s < shards; s++ {
			if reqs, _, _ := net.PeerStats(dep.Table.Primary(s)); reqs > 0 {
				contacted++
			}
		}
		if contacted != 1 {
			t.Fatalf("%d shards: probe contacted %d shards, want exactly 1", shards, contacted)
		}
	}
}

// TestPlannerZeroSpecRoutedUpdate checks that a derived equality spec
// routes an updating request to the single owning shard — no
// hand-written RouteSpec anywhere.
func TestPlannerZeroSpecRoutedUpdate(t *testing.T) {
	const persons = 12
	net := netsim.NewNetwork(0, 0)
	dep := deployPersonsZeroSpec(t, net, persons, 3, 0)
	co := dep.Coordinator()

	upd := setCityRequest("Delft", "person4")
	probe := getPersonRequest("person4")
	want := singlePersonsBaseline(t, persons, probe, upd)

	net.ResetStats()
	if _, err := co.CallBulk(DefaultClusterURI, upd); err != nil {
		t.Fatal(err)
	}
	// person4 -> shard 1 ([4,8)): the others must not see the update
	for _, s := range []int{0, 2} {
		if reqs, _, _ := net.PeerStats(dep.Table.Primary(s)); reqs != 0 {
			t.Fatalf("shard %d served %d requests for an update it does not own", s, reqs)
		}
	}
	res, err := co.Scatter(probe)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeResults(probe, res), want) {
		t.Fatal("post-update probe differs from single-peer baseline")
	}
}

// itemsModule keys a range scan: @id >= $k over a container whose keys
// are fixed-width, hence codepoint-ordered (KeyRange.Lex).
const itemsModule = `
module namespace i = "functions_i";
declare function i:itemsFrom($k as xs:string) as node()*
{ doc("items.xml")//item[@id >= $k] };`

func itemsXML(n int) string {
	var b strings.Builder
	b.WriteString("<site><items>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `<item id="k%d"><v>%d</v></item>`, 10+i, i)
	}
	b.WriteString("</items></site>")
	return b.String()
}

func itemsFromRequest(keys ...string) *client.BulkRequest {
	br := &client.BulkRequest{
		ModuleURI: "functions_i",
		AtHint:    "http://example.org/i.xq",
		Func:      "itemsFrom",
		Arity:     1,
	}
	for _, k := range keys {
		br.Calls = append(br.Calls, []xdm.Sequence{{xdm.String(k)}})
	}
	return br
}

// TestPlannerDerivedRangePruning drives a derived range predicate end
// to end: @id >= "k25" over codepoint-ordered keys must contact only
// the shards whose MaxKey can satisfy it, byte-identical to broadcast.
func TestPlannerDerivedRangePruning(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	reg := modules.NewRegistry()
	if err := reg.Register(itemsModule, "http://example.org/i.xq"); err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(net, reg, map[string]string{"items.xml": itemsXML(20)},
		DeployConfig{Shards: 4, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	co := dep.Coordinator()

	br := itemsFromRequest("k25")
	spec, reason, analysed := co.derivedSpec(br)
	if spec == nil || !analysed {
		t.Fatalf("no derived range spec (reason %q)", reason)
	}
	if spec.Op != ">=" || spec.Doc != "items.xml" || spec.Path != "/site/items/item" {
		t.Fatalf("derived spec = %+v, want @id >= over /site/items/item", spec)
	}

	net.ResetStats()
	res, err := co.Scatter(br)
	if err != nil {
		t.Fatal(err)
	}
	contacted := 0
	for s := 0; s < 4; s++ {
		if reqs, _, _ := net.PeerStats(dep.Table.Primary(s)); reqs > 0 {
			contacted++
		}
	}
	// 20 items over 4 shards: only shard 3 (k25..k29) can satisfy >= k25
	if contacted != 1 {
		t.Fatalf("range scan contacted %d shards, want 1", contacted)
	}
	got := encodeResults(br, res)
	if !bytes.Contains(got, []byte(`id="k29"`)) || bytes.Contains(got, []byte(`id="k24"`)) {
		t.Fatalf("range scan result wrong: %.300s", got)
	}

	plain := NewCoordinator(dep.Table, client.New(net)) // pure broadcast
	bres, err := plain.Scatter(br)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeResults(br, bres), got) {
		t.Fatal("pruned range scan differs from broadcast")
	}
}

// TestPlannerMixedPartitionLabelsPruned pins the strategy label on a
// mixed partition: one range call reaching two shards plus one call
// with zero candidates sums to len(Calls) — the aggregate the label
// used to (mis)compare against — but a call still reached two shards,
// so the decision is "pruned", not "routed".
func TestPlannerMixedPartitionLabelsPruned(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	reg := modules.NewRegistry()
	if err := reg.Register(itemsModule, "http://example.org/i.xq"); err != nil {
		t.Fatal(err)
	}
	dep, err := Deploy(net, reg, map[string]string{"items.xml": itemsXML(20)},
		DeployConfig{Shards: 4, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	co := dep.Coordinator()

	// shards hold k10-14, k15-19, k20-24, k25-29: ">= k20" reaches
	// shards 2 and 3, ">= k35" reaches none
	br := itemsFromRequest("k20", "k35")
	spec, reason, _ := co.derivedSpec(br)
	if spec == nil {
		t.Fatalf("no derived spec (reason %q)", reason)
	}
	if dec := co.decide("derived", spec, br, false); dec.strategy != "pruned" {
		t.Fatalf("mixed partition labelled %q, want pruned", dec.strategy)
	}
	// degenerate case stays routed: a single call on exactly one shard
	if dec := co.decide("derived", spec, itemsFromRequest("k25"), false); dec.strategy != "routed" {
		t.Fatalf("single-shard call labelled %q, want routed", dec.strategy)
	}
}

// personsRangeModule ranges over persons.xml, whose personN keys are
// natural-ordered but NOT codepoint-ordered ("person10" < "person9" in
// codepoints): the Lex gate must refuse the derived range spec.
const personsRangeModule = `
module namespace q = "functions_q";
declare function q:personsFrom($pid as xs:string) as node()*
{ doc("persons.xml")//person[@id >= $pid] };`

func TestPlannerRangeNeedsCodepointOrderedKeys(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	reg := personsRegistry(t)
	if err := reg.Register(personsRangeModule, "http://example.org/q.xq"); err != nil {
		t.Fatal(err)
	}
	xml := xmark.GeneratePersons(xmark.Config{Persons: 15, Seed: 11})
	dep, err := Deploy(net, reg, map[string]string{"persons.xml": xml},
		DeployConfig{Shards: 3, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	co := dep.Coordinator()
	br := &client.BulkRequest{
		ModuleURI: "functions_q",
		AtHint:    "http://example.org/q.xq",
		Func:      "personsFrom",
		Arity:     1,
		Calls:     [][]xdm.Sequence{{{xdm.String("person9")}}},
	}
	spec, reason, analysed := co.derivedSpec(br)
	if !analysed || spec != nil {
		t.Fatalf("natural-ordered range: derived %+v (analysed %v), want a refusal", spec, analysed)
	}
	if !strings.Contains(reason, "codepoint-ordered") {
		t.Fatalf("refusal reason = %q, want the codepoint-order explanation", reason)
	}
	if dec := co.plan(br); dec.strategy != "broadcast" || dec.source != "derived" {
		t.Fatalf("plan = %s/%s, want broadcast via the derived fallback", dec.strategy, dec.source)
	}
}

// TestPlannerStatsFencing is the regression test for the statistics
// fence: planner snapshots revalidate on the same (store version,
// registry generation) vector as the tier-2 result cache — a commit or
// a module re-registration must invalidate cached stats.
func TestPlannerStatsFencing(t *testing.T) {
	const persons = 12
	net := netsim.NewNetwork(0, 0)
	dep := deployPersonsZeroSpec(t, net, persons, 2, 1<<20)
	co := dep.Coordinator()
	st := co.Planner.Stats

	br := getPersonRequest("person3") // shard 0 ([0,6))
	if _, err := co.Scatter(br); err != nil {
		t.Fatal(err)
	}
	// the cold read's fence probe round installed per-shard snapshots
	if st.Refreshes() == 0 {
		t.Fatal("no statistics snapshot installed by the probe round")
	}
	snap0, ok := st.Snapshot(0)
	if !ok {
		t.Fatal("shard 0 has no statistics snapshot after the probe round")
	}
	if c, ok := st.Card(0, "persons.xml", personsPath); !ok || c != 6 {
		t.Fatalf("shard 0 person cardinality = %d (known %v), want 6", c, ok)
	}

	// a commit moves the owning shard's store-version fence
	if _, err := co.CallBulk(DefaultClusterURI, setCityRequest("Utrecht", "person3")); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Scatter(br); err != nil {
		t.Fatal(err)
	}
	if st.Invalidations() == 0 {
		t.Fatal("commit did not invalidate the cached shard statistics")
	}
	snap1, ok := st.Snapshot(0)
	if !ok {
		t.Fatal("shard 0 snapshot not rebuilt after invalidation")
	}
	if snap1.Fence == snap0.Fence {
		t.Fatalf("rebuilt snapshot kept the stale fence %+v", snap1.Fence)
	}

	// a module re-registration moves the registry-generation fence on
	// every shard
	inv := st.Invalidations()
	if err := dep.Registry.Register(personsModule, "http://example.org/p.xq"); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Scatter(br); err != nil {
		t.Fatal(err)
	}
	if got := st.Invalidations(); got <= inv {
		t.Fatalf("module re-registration left invalidations at %d (was %d)", got, inv)
	}
	if snap2, ok := st.Snapshot(0); !ok || snap2.Fence.Generation == snap1.Fence.Generation {
		t.Fatalf("snapshot fence generation did not advance (ok %v)", ok)
	}
}

// TestPlannerWarnsOnInapplicableSpecOnce pins the fixed fallback path:
// a spec that cannot apply to the live request logs once per (module,
// function, reason), counts every occurrence, and still answers
// correctly via broadcast.
func TestPlannerWarnsOnInapplicableSpecOnce(t *testing.T) {
	const persons = 8
	net := netsim.NewNetwork(0, 0)
	dep := deployPersonsZeroSpec(t, net, persons, 2, 0)
	co := dep.Coordinator()
	// a registered spec whose key argument the request cannot supply
	co.Route(RouteSpec{ModuleURI: "functions_p", Func: "getPerson", KeyArg: 5,
		Doc: "persons.xml", Path: personsPath})
	co.Planner.Metrics = planner.NewMetrics(obs.NewRegistry())
	var buf bytes.Buffer
	co.Planner.Logger = slog.New(slog.NewTextHandler(&buf, nil))

	br := getPersonRequest("person1")
	want := singlePersonsBaseline(t, persons, br, nil)
	for i := 0; i < 2; i++ {
		res, err := co.Scatter(br)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeResults(br, res), want) {
			t.Fatal("inapplicable-spec broadcast fallback differs from single peer")
		}
	}
	if got := strings.Count(buf.String(), "route spec inapplicable"); got != 1 {
		t.Fatalf("inapplicable spec logged %d times across 2 requests, want once:\n%s", got, buf.String())
	}
	if got := co.Planner.Metrics.Inapplicable.Value(); got != 2 {
		t.Fatalf("inapplicable counter = %d, want 2 (every occurrence counted)", got)
	}
}

// TestUpdateWarnsOnInapplicableSpec pins the update-path half of the
// visibility fix: a registered spec whose KeyArg lies outside the
// request arity is warned and counted before Update falls back (here to
// the derived equality route, which still commits the update).
func TestUpdateWarnsOnInapplicableSpec(t *testing.T) {
	const persons = 8
	net := netsim.NewNetwork(0, 0)
	dep := deployPersonsZeroSpec(t, net, persons, 2, 0)
	co := dep.Coordinator()
	co.Route(RouteSpec{ModuleURI: "functions_p", Func: "setCity", KeyArg: 5,
		Doc: "persons.xml", Path: personsPath})
	co.Planner.Metrics = planner.NewMetrics(obs.NewRegistry())
	var buf bytes.Buffer
	co.Planner.Logger = slog.New(slog.NewTextHandler(&buf, nil))

	if _, err := co.CallBulk(DefaultClusterURI, setCityRequest("Leiden", "person1")); err != nil {
		t.Fatalf("update with inapplicable registered spec: %v", err)
	}
	if got := strings.Count(buf.String(), "route spec inapplicable"); got != 1 {
		t.Fatalf("update logged the inapplicable spec %d times, want once:\n%s", got, buf.String())
	}
	if got := co.Planner.Metrics.Inapplicable.Value(); got != 1 {
		t.Fatalf("inapplicable counter = %d, want 1", got)
	}
	res, err := co.Scatter(getPersonRequest("person1"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(xdm.SerializeSequence(res[0]), "<city>Leiden</city>") {
		t.Fatal("update did not land via the derived fallback route")
	}
}

// TestPlannerStrategyCounter checks the decision counter labels for the
// three read strategies and the routed update.
func TestPlannerStrategyCounter(t *testing.T) {
	const persons = 12
	net := netsim.NewNetwork(0, 0)
	dep := deployPersonsZeroSpec(t, net, persons, 3, 0)
	co := dep.Coordinator()
	reg := obs.NewRegistry()
	co.Planner.Metrics = planner.NewMetrics(reg)

	if _, err := co.Scatter(getPersonRequest("person1")); err != nil {
		t.Fatal(err)
	}
	if _, err := co.CallBulk(DefaultClusterURI, setCityRequest("X", "person1")); err != nil {
		t.Fatal(err)
	}
	// cityOf underivable -> broadcast
	cb := &client.BulkRequest{
		ModuleURI: "functions_p", AtHint: "http://example.org/p.xq",
		Func: "cityOf", Arity: 1,
		Calls: [][]xdm.Sequence{{{xdm.String("person1")}}},
	}
	if _, err := co.Scatter(cb); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		strategy string
		want     float64
	}{{"routed", 2}, {"broadcast", 1}} {
		if got := reg.MustGather("xrpc_planner_strategy_total",
			obs.Label{Key: "strategy", Value: c.strategy}); got != c.want {
			t.Fatalf("strategy %q counted %v, want %v", c.strategy, got, c.want)
		}
	}
}

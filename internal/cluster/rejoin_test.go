package cluster

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"xrpc/internal/client"
	"xrpc/internal/netsim"
	"xrpc/internal/obs"
	"xrpc/internal/xdm"
	"xrpc/internal/xmark"
)

func cityOfRequest(pids ...string) *client.BulkRequest {
	br := &client.BulkRequest{
		ModuleURI: "functions_p",
		AtHint:    "http://example.org/p.xq",
		Func:      "cityOf",
		Arity:     1,
	}
	for _, pid := range pids {
		br.Calls = append(br.Calls, []xdm.Sequence{{xdm.String(pid)}})
	}
	return br
}

// deployDurablePersons is deployPersons plus a WAL per replica.
func deployDurablePersons(t *testing.T, net *netsim.Network, persons, shards, replication int, segBytes, snapBytes int64) *Deployment {
	t.Helper()
	xml := xmark.GeneratePersons(xmark.Config{Persons: persons, Seed: 11})
	dep, err := Deploy(net, personsRegistry(t), map[string]string{"persons.xml": xml},
		DeployConfig{
			Shards: shards, Replication: replication, Routes: personRoutes(),
			WALRoot: t.TempDir(), WALSegmentBytes: segBytes, WALSnapshotBytes: snapBytes,
		})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Close() })
	return dep
}

// ownerShard resolves the single shard holding pid.
func ownerShard(t *testing.T, dep *Deployment, pid string) int {
	t.Helper()
	cand := dep.Table.CandidateShards("persons.xml", personsPath, pid)
	if len(cand) != 1 {
		t.Fatalf("pid %s resolves to %v shards", pid, cand)
	}
	return cand[0]
}

// A demoted replica misses commits, resyncs from its primary via the
// syncFrom log-shipping path, rejoins through the table-flip, and then
// serves a routed read with the post-demotion state.
func TestEvictedReplicaRejoinsAndServesReads(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	dep := deployDurablePersons(t, net, 40, 2, 2, 0, 0)
	reg := obs.NewRegistry()
	co := dep.Coordinator()
	co.Metrics = NewMetrics(reg, 2)

	const pid = "person1"
	shard := ownerShard(t, dep, pid)
	replica := dep.Table.Replicas(shard)[1]

	co.evict(shard, replica, errors.New("injected fault"))
	if got := len(dep.Table.Replicas(shard)); got != 1 {
		t.Fatalf("replicas after evict = %d, want 1", got)
	}
	if d := co.Demoted(); len(d) != 1 || d[0].URI != replica {
		t.Fatalf("Demoted() = %+v, want one entry for %s", d, replica)
	}

	// the demoted replica misses this commit
	if _, err := co.Update(setCityRequest("Rejoinville", pid)); err != nil {
		t.Fatal(err)
	}

	if err := co.Rejoin(shard, replica); err != nil {
		t.Fatalf("Rejoin: %v", err)
	}
	if d := co.Demoted(); len(d) != 0 {
		t.Fatalf("Demoted() after rejoin = %+v, want empty", d)
	}
	reps := dep.Table.Replicas(shard)
	if len(reps) != 2 || reps[1] != replica {
		t.Fatalf("replicas after rejoin = %v, want [primary %s]", reps, replica)
	}
	if n := obsMust(t, reg, "xrpc_cluster_rejoins_total"); n != 1 {
		t.Fatalf("rejoins counter = %v, want 1", n)
	}
	if n := obsMust(t, reg, "xrpc_cluster_resyncs_total"); n < 1 {
		t.Fatalf("resyncs counter = %v, want >= 1", n)
	}

	// demote the old primary: the rejoined replica is now the shard's
	// only peer, so a routed read must be served from its resynced state
	if !dep.Table.Evict(shard, reps[0]) {
		t.Fatalf("could not evict primary %s", reps[0])
	}
	res, err := co.CallBulk(co.clusterURI(), cityOfRequest(pid))
	if err != nil {
		t.Fatalf("routed read after rejoin: %v", err)
	}
	if got := xdm.SerializeSequence(res[0]); !strings.Contains(got, "Rejoinville") {
		t.Fatalf("rejoined replica serves %q, want the missed commit's city Rejoinville", got)
	}
}

// When the primary's log was truncated past the replica's version, the
// resync falls back to a full snapshot transfer and still converges.
func TestRejoinAfterLogTruncation(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	// tiny segment/snapshot thresholds: the primary snapshots and
	// truncates constantly, so the demoted replica's version falls below
	// the log's floor almost immediately
	dep := deployDurablePersons(t, net, 40, 1, 2, 512, 1024)
	co := dep.Coordinator()

	const pid = "person2"
	shard := ownerShard(t, dep, pid)
	replica := dep.Table.Replicas(shard)[1]
	co.evict(shard, replica, errors.New("injected fault"))

	for i := 0; i < 30; i++ {
		if _, err := co.Update(setCityRequest(fmt.Sprintf("City%d", i), pid)); err != nil {
			t.Fatal(err)
		}
	}
	primarySrv := dep.Servers[shard][0]
	if primarySrv.WAL().Base() == 0 {
		t.Fatal("primary never truncated its log; the fallback path is not exercised")
	}

	if err := co.Rejoin(shard, replica); err != nil {
		t.Fatalf("Rejoin after truncation: %v", err)
	}
	primDoc, _ := dep.Stores[shard][0].Get("persons.xml")
	repDoc, _ := dep.Stores[shard][1].Get("persons.xml")
	if xdm.SerializeNode(primDoc) != xdm.SerializeNode(repDoc) {
		t.Fatal("snapshot-transfer rejoin left the replica differing from its primary")
	}
	if got, want := dep.Stores[shard][1].Version(), dep.Stores[shard][0].Version(); got != want {
		t.Fatalf("replica version %d, primary %d", got, want)
	}

	// and the rejoined replica keeps receiving ordinary 2PC replication
	if _, err := co.Update(setCityRequest("AfterRejoin", pid)); err != nil {
		t.Fatal(err)
	}
	repDoc, _ = dep.Stores[shard][1].Get("persons.xml")
	if !strings.Contains(xdm.SerializeNode(repDoc), "AfterRejoin") {
		t.Fatal("post-rejoin commit was not replicated to the rejoined replica")
	}
}

// A short unavailability burst at a replica (restart, load spike) is
// absorbed by the client retry policy instead of demoting the replica;
// without the policy the same burst demotes it. Guards the
// retry-before-evict contract.
func TestTransientBurstDoesNotEvictHealthyReplica(t *testing.T) {
	newDeployment := func() (*netsim.Network, *Deployment, *Coordinator) {
		net := netsim.NewNetwork(0, 0)
		dep := deployPersons(t, net, 40, 1, 2)
		return net, dep, dep.Coordinator()
	}

	net, dep, co := newDeployment()
	co.Client.Retry = &client.RetryPolicy{Max: 3, Base: time.Microsecond, Sleep: func(time.Duration) {}}
	replica := dep.Table.Replicas(0)[1]
	net.FailNext(replica, 2) // burst hits the AdoptPUL replication sends

	if _, err := co.Update(setCityRequest("Burstville", "person1")); err != nil {
		t.Fatal(err)
	}
	if d := co.Demoted(); len(d) != 0 {
		t.Fatalf("healthy replica demoted through a transient burst: %+v", d)
	}
	if got := len(dep.Table.Replicas(0)); got != 2 {
		t.Fatalf("replicas = %d, want 2", got)
	}
	repDoc, _ := dep.Stores[0][1].Get("persons.xml")
	if !strings.Contains(xdm.SerializeNode(repDoc), "Burstville") {
		t.Fatal("replica missed the commit despite surviving the burst")
	}

	// contrast: the identical burst without a retry policy demotes the
	// replica — the regression this test exists to catch
	net, dep, co = newDeployment()
	net.FailNext(dep.Table.Replicas(0)[1], 2)
	if _, err := co.Update(setCityRequest("Burstville", "person1")); err != nil {
		t.Fatal(err)
	}
	if d := co.Demoted(); len(d) != 1 {
		t.Fatalf("without retry, demotions = %+v, want the burst to demote", d)
	}
}

func obsMust(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	v, ok := reg.Gather(name)
	if !ok {
		t.Fatalf("metric %s not registered", name)
	}
	return v
}

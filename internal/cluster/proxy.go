package cluster

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"

	"xrpc/internal/client"
	"xrpc/internal/obs"
	"xrpc/internal/soap"
)

// Proxy exposes a Coordinator as an ordinary XRPC peer over HTTP: a
// client posts a bulk request to /xrpc exactly as it would to a single
// server, and receives the merged cluster response — streamed. Read
// requests flow through ScatterStream, so the proxy forwards shard
// results to the client as they arrive and never materializes the
// merged response; updating requests route through Update (whose
// result, one status sequence per call, is small by construction).
type Proxy struct {
	Co *Coordinator
	// MaxRequestBytes bounds one request body (0 = 256 MiB, matching
	// server.DefaultMaxRequestBytes).
	MaxRequestBytes int64
	// Log, when non-nil, receives structured records for proxy-level
	// failures (malformed requests, scatter faults, mid-stream aborts),
	// each carrying the request's trace ID. Nil disables logging.
	Log *slog.Logger
}

const proxyMaxRequestBytes = 256 << 20

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "XRPC requires POST", http.StatusMethodNotAllowed)
		return
	}
	maxBytes := p.MaxRequestBytes
	if maxBytes <= 0 {
		maxBytes = proxyMaxRequestBytes
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBytes+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if int64(len(body)) > maxBytes {
		http.Error(w, fmt.Sprintf("request body exceeds %d bytes", maxBytes),
			http.StatusRequestEntityTooLarge)
		return
	}
	w.Header().Set("Content-Type", "application/soap+xml; charset=utf-8")
	req, err := soap.DecodeRequest(body)
	if err != nil {
		if p.Log != nil {
			p.Log.Error("malformed request", "remote", r.RemoteAddr, "err", err)
		}
		soap.EncodeFaultTo(w, &soap.Fault{Code: "env:Sender",
			Reason: fmt.Sprintf("malformed request: %v", err)})
		return
	}
	// the proxy is the cluster's front door: a request arriving without a
	// trace ID is minted one here, and the ID rides the envelope to every
	// shard (and into each shard's slow-query log) via BulkRequest
	trace := req.TraceID
	if trace == "" {
		trace = obs.NewTraceID()
	}
	br := &client.BulkRequest{
		ModuleURI:  req.Module,
		AtHint:     req.Location,
		Func:       req.Method,
		Arity:      req.Arity,
		Updating:   req.Updating,
		Calls:      req.Calls,
		ByFragment: req.ByFragment,
		SeqNrs:     req.SeqNrs,
		TraceID:    trace,
	}
	co := p.Co.withQueryID(req.QueryID)
	if req.Updating {
		results, err := co.Update(br)
		if err != nil {
			if p.Log != nil {
				p.Log.Error("update failed", "trace_id", trace,
					"module", req.Module, "method", req.Method, "err", err)
			}
			soap.EncodeFaultTo(w, proxyFault(err))
			return
		}
		soap.EncodeResponseTo(w, &soap.Response{
			Module: req.Module, Method: req.Method, Results: results,
		})
		return
	}
	sink := &proxySink{w: w}
	if f, ok := w.(http.Flusher); ok {
		sink.f = f
	}
	if err := co.ScatterStream(br, sink); err != nil {
		if sink.wrote == 0 {
			// nothing left the process yet: a clean fault envelope
			if p.Log != nil {
				p.Log.Error("scatter failed", "trace_id", trace,
					"module", req.Module, "method", req.Method, "err", err)
			}
			soap.EncodeFaultTo(w, proxyFault(err))
			return
		}
		// mid-stream failure with merged bytes already on the wire: the
		// partial envelope must not arrive looking complete, so abort
		// the connection — the client's decoder sees truncation, not a
		// silently shortened result
		if p.Log != nil {
			p.Log.Error("scatter aborted mid-stream", "trace_id", trace,
				"module", req.Module, "method", req.Method,
				"bytes_written", sink.wrote, "err", err)
		}
		panic(http.ErrAbortHandler)
	}
}

func proxyFault(err error) *soap.Fault {
	if f, ok := err.(*soap.Fault); ok {
		return f
	}
	return &soap.Fault{Code: "env:Receiver", Reason: err.Error()}
}

// proxySink forwards encoder chunks to the client immediately and
// remembers whether anything was written (the fault-vs-abort decision
// above).
type proxySink struct {
	w     io.Writer
	f     http.Flusher
	wrote int64
}

func (s *proxySink) Write(p []byte) (int, error) {
	n, err := s.w.Write(p)
	s.wrote += int64(n)
	if err != nil {
		return n, err
	}
	if s.f != nil {
		s.f.Flush()
	}
	return n, nil
}

// withQueryID returns a coordinator whose scattered requests carry the
// given queryID (repeatable-read isolation for proxied clients): the
// coordinator itself is shared state, so a shallow sibling sharing the
// routing table and transport is built around a client pinned to the
// queryID. A nil queryID returns the coordinator unchanged.
func (co *Coordinator) withQueryID(qid *soap.QueryID) *Coordinator {
	if qid == nil {
		return co
	}
	cl := client.New(co.Client.Transport)
	cl.QueryID = qid
	sib := &Coordinator{
		ClusterURI:     co.ClusterURI,
		Table:          co.Table,
		Client:         cl,
		TxnTimeout:     co.TxnTimeout,
		MaxShardBuffer: co.MaxShardBuffer,
		OnEvict:        co.OnEvict,
		Metrics:        co.Metrics,
		SlowLog:        co.SlowLog,
	}
	co.mu.RLock()
	sib.routes = append([]RouteSpec(nil), co.routes...)
	co.mu.RUnlock()
	return sib
}

package cluster

import (
	"bytes"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"xrpc/internal/netsim"
	"xrpc/internal/obs"
	"xrpc/internal/planner"
	"xrpc/internal/server"
	"xrpc/internal/wal"
	"xrpc/internal/xmark"
)

// TestObsSmoke is the `make obssmoke` gate: a 2-shard cached, durable
// cluster with the full observability layer attached — one shared
// registry over shard servers, coordinator, result cache, client,
// netsim and the per-replica write-ahead logs — driven cold → warm →
// routed update → post-write → demote/resync/rejoin, then scraped
// through the debug endpoints. Asserts the counters that must move at
// each stage, and that one trace ID minted at the coordinator's front
// door appears in BOTH shards' slow-query logs.
func TestObsSmoke(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	const persons = 40
	xml := xmark.GeneratePersons(xmark.Config{Persons: persons, Seed: 11})
	// getPerson gets NO hand-written route: the planner derives it, so
	// the smoke covers the derivation and strategy counters too
	dep, err := Deploy(net, personsRegistry(t), map[string]string{"persons.xml": xml},
		DeployConfig{
			Shards: 2, Replication: 2, Routes: personRoutes()[1:],
			RespCacheBytes:   8 << 20,
			ResultCacheBytes: 8 << 20,
			WALRoot:          t.TempDir(),
		})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dep.Close() })
	co := dep.Coordinator()

	reg := obs.NewRegistry()
	co.Metrics = NewMetrics(reg, 2)
	co.SlowLog = obs.NewSlowLog(slog.New(slog.NewTextHandler(io.Discard, nil)), time.Nanosecond)
	co.ResultCache.RegisterMetrics(reg)
	co.Client.RegisterMetrics(reg)
	net.RegisterMetrics(reg)
	co.Planner.Metrics = planner.NewMetrics(reg)
	planner.RegisterStats(reg, co.Planner.Stats)

	// one shared WAL metric family across every replica's log: fsync
	// latency, appends by kind, and the resync/replay counters
	walM := wal.NewMetrics(reg)
	for s := range dep.Servers {
		for _, srv := range dep.Servers[s] {
			srv.SetWALMetrics(walM)
		}
	}

	// per-shard servers: request metrics + cache tiers on the shared
	// registry (shard="N" labels), slow log into a capturable buffer
	// with a zero-ish threshold so every request is logged
	shardLogs := make([]*bytes.Buffer, 2)
	for s := 0; s < 2; s++ {
		shardLogs[s] = &bytes.Buffer{}
		lbl := obs.Label{Key: "shard", Value: strconv.Itoa(s)}
		srv := dep.Servers[s][0]
		srv.Metrics = server.NewMetrics(reg, lbl)
		srv.RegisterCacheMetrics(reg, lbl)
		srv.SlowLog = obs.NewSlowLog(slog.New(slog.NewTextHandler(shardLogs[s], nil)), time.Nanosecond)
	}

	// --- cold read: tier-2 miss, pruned scatter to both shards
	trace := obs.NewTraceID()
	read := getPersonRequest(xmark.PersonID(2), xmark.PersonID(persons-3))
	read.TraceID = trace
	if _, err := co.Scatter(read); err != nil {
		t.Fatal(err)
	}
	if n := reg.MustGather("xrpc_resultcache_misses_total"); n != 1 {
		t.Fatalf("cold read: resultcache misses = %v, want 1", n)
	}
	if n := reg.MustGather("xrpc_cluster_scatters_total", obs.Label{Key: "mode", Value: "pruned"}); n < 1 {
		t.Fatalf("cold read: pruned scatters = %v, want >= 1", n)
	}
	// the route-less getPerson went through the derivation pass and the
	// strategy decision, and the probe round installed shard statistics
	if n := reg.MustGather("xrpc_planner_derivations_total", obs.Label{Key: "outcome", Value: "derived"}); n < 1 {
		t.Fatalf("cold read: derivations = %v, want >= 1 (getPerson auto-derived)", n)
	}
	if n := reg.MustGather("xrpc_planner_derivations_total", obs.Label{Key: "outcome", Value: "fallback"}); n < 1 {
		t.Fatalf("cold read: derivation fallbacks = %v, want >= 1 (cityOf is underivable)", n)
	}
	if n := reg.MustGather("xrpc_planner_strategy_total", obs.Label{Key: "strategy", Value: "routed"}); n < 1 {
		t.Fatalf("cold read: routed strategy decisions = %v, want >= 1", n)
	}
	if n := reg.MustGather("xrpc_planner_stats_refreshes_total"); n < 2 {
		t.Fatalf("cold read: planner stats refreshes = %v, want >= 2 (one per shard)", n)
	}

	// --- warm read: tier-2 hit, shards see only the shardInfo probe
	if _, err := co.Scatter(read); err != nil {
		t.Fatal(err)
	}
	if n := reg.MustGather("xrpc_resultcache_hits_total"); n != 1 {
		t.Fatalf("warm read: resultcache hits = %v, want 1", n)
	}
	if n := reg.MustGather("xrpc_resultcache_revalidations_total"); n < 1 {
		t.Fatalf("warm read: revalidations = %v, want >= 1", n)
	}

	// --- routed update: one 2PC commit over the touched primary
	write := setCityRequest("Obsville", xmark.PersonID(2))
	write.TraceID = trace
	if _, err := co.Update(write); err != nil {
		t.Fatal(err)
	}
	if n := reg.MustGather("xrpc_cluster_updates_total"); n != 1 {
		t.Fatalf("updates = %v, want 1", n)
	}
	if n := reg.MustGather("xrpc_txn_prepares_total"); n != 1 {
		t.Fatalf("2PC prepares = %v, want 1 (single-shard write)", n)
	}
	if n := reg.MustGather("xrpc_txn_commits_total"); n != 1 {
		t.Fatalf("2PC commits = %v, want 1", n)
	}
	// the commit hit every touched replica's WAL: an fsync'd commit
	// record on the primary and the adopted copy on its replica
	if n := reg.MustGather("xrpc_wal_appends_total", obs.Label{Key: "kind", Value: "commit"}); n < 2 {
		t.Fatalf("WAL commit appends = %v, want >= 2 (primary + replica)", n)
	}
	if n := reg.MustGather("xrpc_wal_fsync_batches_total"); n < 1 {
		t.Fatalf("WAL fsync batches = %v, want >= 1", n)
	}
	if n := reg.MustGather("xrpc_wal_fsync_seconds"); n < 1 {
		t.Fatalf("WAL fsync latency observations = %v, want >= 1", n)
	}

	// --- post-write read: the version fence moved, so the entry
	// refreshes (partial hit) instead of serving stale
	if _, err := co.Scatter(read); err != nil {
		t.Fatal(err)
	}
	if n := reg.MustGather("xrpc_resultcache_partial_hits_total") +
		reg.MustGather("xrpc_resultcache_misses_total"); n < 2 {
		t.Fatalf("post-write read did not re-query: partial+misses = %v", n)
	}
	// the same moved fence dropped the touched shard's planner snapshot
	if n := reg.MustGather("xrpc_planner_stats_invalidations_total"); n < 1 {
		t.Fatalf("post-write read: planner stats invalidations = %v, want >= 1", n)
	}

	// --- demote → resync → rejoin: the durability counters move
	shard := ownerShard(t, dep, xmark.PersonID(2))
	replica := dep.Table.Replicas(shard)[1]
	co.evict(shard, replica, errors.New("injected demotion"))
	write2 := setCityRequest("Resyncville", xmark.PersonID(2))
	write2.TraceID = trace
	if _, err := co.Update(write2); err != nil { // missed by the demoted replica
		t.Fatal(err)
	}
	if err := co.Rejoin(shard, replica); err != nil {
		t.Fatal(err)
	}
	if n := reg.MustGather("xrpc_wal_resyncs_total"); n < 1 {
		t.Fatalf("WAL resyncs = %v, want >= 1", n)
	}
	if n := reg.MustGather("xrpc_wal_replayed_records_total"); n < 1 {
		t.Fatalf("WAL replayed records = %v, want >= 1 (the missed commit shipped back)", n)
	}
	if n := reg.MustGather("xrpc_cluster_rejoins_total"); n != 1 {
		t.Fatalf("cluster rejoins = %v, want 1", n)
	}

	// --- per-shard request metrics and latency histograms moved
	for s := 0; s < 2; s++ {
		lbl := obs.Label{Key: "shard", Value: strconv.Itoa(s)}
		if n := reg.MustGather("xrpc_server_request_seconds", lbl); n < 2 {
			t.Fatalf("shard %d: latency observations = %v, want >= 2", s, n)
		}
		if n := reg.MustGather("xrpc_cluster_shard_call_seconds", lbl); n < 1 {
			t.Fatalf("shard %d: per-shard call observations = %v, want >= 1", s, n)
		}
	}
	if n := reg.MustGather("xrpc_cluster_scatter_seconds"); n < 1 {
		t.Fatalf("scatter latency observations = %v, want >= 1", n)
	}
	if n := reg.MustGather("xrpc_netsim_requests_total"); n < 4 {
		t.Fatalf("netsim requests = %v, want >= 4", n)
	}

	// --- one trace ID, both shards' slow-query logs
	for s := 0; s < 2; s++ {
		logged := shardLogs[s].String()
		if !strings.Contains(logged, trace) {
			t.Fatalf("shard %d slow-query log has no trace %s:\n%s", s, trace, logged)
		}
		if !strings.Contains(logged, "query_hash=") {
			t.Fatalf("shard %d slow-query log has no query hash:\n%s", s, logged)
		}
	}

	// --- debug endpoints: scrape the same registry over HTTP
	ts := httptest.NewServer(obs.DebugMux(reg, dep.Table.Validate))
	defer ts.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get("/readyz"); code != 200 {
		t.Fatalf("/readyz = %d %q", code, body)
	}
	code, scrape := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE xrpc_cluster_scatter_seconds histogram",
		`xrpc_cluster_scatters_total{mode="pruned"}`,
		`xrpc_server_requests_total{shard="0",method="getPerson"}`,
		`xrpc_server_requests_total{shard="1",method="getPerson"}`,
		"xrpc_resultcache_hits_total 1",
		"xrpc_txn_commits_total 2",
		`xrpc_cluster_shard_open_seconds_bucket{shard="0",le="+Inf"}`,
		`xrpc_wal_appends_total{kind="commit"}`,
		`xrpc_planner_strategy_total{strategy="routed"}`,
		`xrpc_planner_derivations_total{outcome="derived"}`,
		"xrpc_planner_stats_refreshes_total",
		"# TYPE xrpc_wal_fsync_seconds histogram",
		"xrpc_wal_resyncs_total",
		"xrpc_cluster_rejoins_total 1",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("/metrics scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("scrape:\n%s", scrape)
	}
}

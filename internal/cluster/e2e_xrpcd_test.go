package cluster

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"xrpc/internal/client"
	"xrpc/internal/xdm"
	"xrpc/internal/xmark"
)

// TestXrpcdUpdateReadYourWrites drives the write path end-to-end over
// three live xrpcd processes (mirroring TestCoordinatorOverHTTP, but
// with real daemons instead of httptest handlers): two shards, the
// second with a primary and a replica. The coordinator learns each
// shard's range metadata from the peers' own shardInfo responses,
// routes an update to the owning shard, commits it via 2PC with the PUL
// forwarded to the replica — and the replica then serves the updated
// value after the primary is killed (read-your-writes through any
// replica).
func TestXrpcdUpdateReadYourWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "xrpcd")
	build := exec.Command("go", "build", "-o", bin, "xrpc/cmd/xrpcd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building xrpcd: %v\n%s", err, out)
	}

	const persons = 10
	docs := filepath.Join(tmp, "docs")
	mods := filepath.Join(tmp, "modules")
	for _, d := range []string{docs, mods} {
		if err := os.Mkdir(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	xml := xmark.GeneratePersons(xmark.Config{Persons: persons, Seed: 11})
	if err := os.WriteFile(filepath.Join(docs, "persons.xml"), []byte(xml), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(mods, "p.xq"), []byte(personsModule), 0o644); err != nil {
		t.Fatal(err)
	}

	// start returns the peer's actual listen address, parsed from its
	// startup log line
	start := func(shard int) (string, *exec.Cmd) {
		t.Helper()
		cmd := exec.Command(bin,
			"-addr", "127.0.0.1:0",
			"-shard", fmt.Sprint(shard), "-of", "2",
			"-docs", docs, "-modules", mods)
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
		addrCh := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stderr)
			for sc.Scan() {
				line := sc.Text()
				if i := strings.Index(line, "listening on "); i >= 0 {
					rest := line[i+len("listening on "):]
					if j := strings.IndexByte(rest, ' '); j > 0 {
						rest = rest[:j]
					}
					addrCh <- rest
					return
				}
			}
			addrCh <- ""
		}()
		select {
		case addr := <-addrCh:
			if addr == "" {
				t.Fatalf("shard %d peer exited before listening", shard)
			}
			return "http://" + addr, cmd
		case <-time.After(20 * time.Second):
			t.Fatalf("shard %d peer did not report its address", shard)
		}
		return "", nil
	}

	shard0URL, _ := start(0)
	shard1URL, shard1Primary := start(1)
	shard1ReplicaURL, _ := start(1) // a second process serving shard 1

	rt, err := NewRoutingTable(2)
	if err != nil {
		t.Fatal(err)
	}
	for s, uris := range [][]string{{shard0URL}, {shard1URL, shard1ReplicaURL}} {
		for _, uri := range uris {
			if err := rt.Add(s, uri); err != nil {
				t.Fatal(err)
			}
		}
	}

	cl := client.New(client.NewHTTPTransportTimeout(10 * time.Second))

	// learn what each shard contains from the peers themselves: the
	// shardInfo system call reports the partitioner's range descriptors
	for s := 0; s < 2; s++ {
		res, err := cl.CallBulk(rt.Primary(s), &client.BulkRequest{
			ModuleURI: client.SystemModule,
			Func:      "shardInfo",
			Arity:     0,
			Calls:     [][]xdm.Sequence{{}},
		})
		if err != nil {
			t.Fatalf("shardInfo at shard %d: %v", s, err)
		}
		var ranges []KeyRange
		for _, item := range res[0] {
			if r, perr := ParseKeyRange(item.StringValue()); perr == nil {
				ranges = append(ranges, r)
			}
		}
		if len(ranges) == 0 {
			t.Fatalf("shard %d reported no ranges: %v", s, res[0])
		}
		if err := rt.SetRanges(s, ranges); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Validate(); err != nil {
		t.Fatalf("table built from live shardInfo does not validate: %v", err)
	}

	co := NewCoordinator(rt, cl)
	for _, r := range personRoutes() {
		co.Route(r)
	}

	// person7 lives on shard 1 ([5,10)); update it through the cluster
	if _, err := co.CallBulk(DefaultClusterURI, setCityRequest("Delft", "person7")); err != nil {
		t.Fatalf("routed update over live peers: %v", err)
	}

	probe := getPersonRequest("person7")
	wantCity := func(res []xdm.Sequence, who string) {
		t.Helper()
		text := xdm.SerializeSequence(res[0])
		if !strings.Contains(text, "<city>Delft</city>") {
			t.Fatalf("%s does not serve the committed update:\n%s", who, text)
		}
	}
	viaPrimary, err := co.Scatter(probe)
	if err != nil {
		t.Fatal(err)
	}
	wantCity(viaPrimary, "the shard 1 primary")

	// read-your-writes through the replica: kill the primary, the
	// pruned probe fails over and must still see the update
	shard1Primary.Process.Kill()
	shard1Primary.Wait()
	viaReplica, err := co.Scatter(probe)
	if err != nil {
		t.Fatalf("probe after primary death: %v", err)
	}
	wantCity(viaReplica, "the shard 1 replica")

	// byte-identity: the replica's answer matches the primary's
	if !bytes.Equal(encodeResults(probe, viaPrimary), encodeResults(probe, viaReplica)) {
		t.Fatal("replica answer differs from the primary's pre-failover answer")
	}
}

package cluster

import (
	"fmt"
	"path/filepath"

	"xrpc/internal/client"
	"xrpc/internal/interp"
	"xrpc/internal/modules"
	"xrpc/internal/netsim"
	"xrpc/internal/planner"
	"xrpc/internal/server"
	"xrpc/internal/soap"
	"xrpc/internal/store"
)

// DeployConfig parameterizes an in-process sharded deployment.
type DeployConfig struct {
	// Shards is the number of partitions (≥ 1).
	Shards int
	// Replication is how many identical peers serve each shard (≥ 1).
	// Replicas hold the same shard documents; the coordinator fails
	// over to them when the primary is unreachable.
	Replication int
	// URIPrefix names the peers: shard s replica j is registered as
	// "<prefix><s>" (j = 0) or "<prefix><s>.r<j>". Default
	// "xrpc://shard".
	URIPrefix string
	// Parallelism, when > 1, sizes each shard server's bulk execution
	// worker pool.
	Parallelism int
	// Routes are registered on every coordinator built from this
	// deployment: the partition-key declarations that enable routed
	// single-shard updates and predicate-pruned scatters.
	Routes []RouteSpec
	// RespCacheBytes, when > 0, enables each shard server's Tier-1
	// response cache with this byte bound (RespCacheEntries optionally
	// caps entry count).
	RespCacheBytes   int64
	RespCacheEntries int
	// ResultCacheBytes, when > 0, attaches a Tier-2 merged-result cache
	// of this byte bound to every coordinator built via Coordinator().
	// Memory note: with the cache on, ScatterStream's miss path still
	// streams the response incrementally but retains one copy of the
	// merged result to populate the cache — the strict
	// never-materialize bound of the streaming gather holds only with
	// the cache off.
	ResultCacheBytes int64
	// WALRoot, when non-empty, makes every replica durable: shard s
	// replica j logs to <WALRoot>/s<s>r<j> (commit WAL + snapshots) and
	// recovers from it when the directory already holds state.
	WALRoot string
	// WALSegmentBytes/WALSnapshotBytes override the per-replica log
	// rotation and snapshot thresholds (0 = defaults).
	WALSegmentBytes  int64
	WALSnapshotBytes int64
}

// Deployment is a set of shard peers registered on one netsim.Network,
// plus the routing table that addresses them. The same Coordinator code
// drives real HTTP peers instead by building a RoutingTable of
// http:// URIs by hand (see TestCoordinatorOverHTTP).
type Deployment struct {
	Net   *netsim.Network
	Table *RoutingTable
	// Servers[s][j] is replica j of shard s; Stores[s][j] its store.
	Servers [][]*server.Server
	Stores  [][]*store.Store
	// Routes are the partition-key declarations of the deployment.
	Routes []RouteSpec
	// Registry is the module registry every shard executor shares —
	// what the coordinator's planner derives route specs from.
	Registry *modules.Registry

	resultCacheBytes int64
}

// Deploy partitions every document in docs across cfg.Shards shard
// peers (each backed by its own store.Store and native executor,
// sharing the module registry) and registers them on the network.
func Deploy(net *netsim.Network, reg *modules.Registry, docs map[string]string, cfg DeployConfig) (*Deployment, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("cluster: deploy with %d shards", cfg.Shards)
	}
	if cfg.Replication < 1 {
		cfg.Replication = 1
	}
	if cfg.URIPrefix == "" {
		cfg.URIPrefix = "xrpc://shard"
	}
	rt, err := NewRoutingTable(cfg.Shards)
	if err != nil {
		return nil, err
	}
	dep := &Deployment{
		Net:      net,
		Table:    rt,
		Servers:  make([][]*server.Server, cfg.Shards),
		Stores:   make([][]*store.Store, cfg.Shards),
		Registry: reg,
	}
	// partition once per document, reused by every replica of a shard;
	// the emitted ranges become the routing table's partition metadata,
	// the element-name census the planner's proof that derived routes
	// may prune (see ElemLoc)
	parts := make(map[string][]string, len(docs))
	shardRanges := make([][]KeyRange, cfg.Shards)
	var elemLocs []ElemLoc
	for name, xml := range docs {
		p, ranges, locs, err := PartitionWithMeta(name, xml, cfg.Shards)
		if err != nil {
			return nil, err
		}
		parts[name] = p
		elemLocs = append(elemLocs, locs...)
		for s := 0; s < cfg.Shards; s++ {
			shardRanges[s] = append(shardRanges[s], ranges[s]...)
		}
	}
	rt.SetElemLocs(elemLocs)
	for s := 0; s < cfg.Shards; s++ {
		if err := rt.SetRanges(s, shardRanges[s]); err != nil {
			return nil, err
		}
		descriptors := make([]string, 0, len(shardRanges[s])+len(elemLocs))
		for _, r := range shardRanges[s] {
			descriptors = append(descriptors, r.String())
		}
		// the census rides along in the shardInfo descriptor list: its
		// "elem" prefix never parses as a KeyRange, so range-descriptor
		// consumers skip it, and a coordinator building its table from
		// live shardInfo can rebuild the census too
		for _, l := range elemLocs {
			descriptors = append(descriptors, l.String())
		}
		for j := 0; j < cfg.Replication; j++ {
			uri := fmt.Sprintf("%s%d", cfg.URIPrefix, s)
			if j > 0 {
				uri = fmt.Sprintf("%s.r%d", uri, j)
			}
			st := store.New()
			for name := range docs {
				if err := st.LoadXML(name, parts[name][s]); err != nil {
					return nil, fmt.Errorf("cluster: shard %d: %w", s, err)
				}
			}
			exec := server.NewNativeExecutor(interp.New(st, reg, nil), reg)
			// mirror core.NewPeer: a module re-registration must drop
			// every plan depending on it on every shard executor — an
			// importer's own source (hence its plan-cache key) does not
			// change when an imported module does
			reg.OnUpdate(exec.InvalidateModule)
			srv := server.New(st, reg, exec)
			srv.Self = uri
			srv.Shard, srv.Shards = s, cfg.Shards
			srv.ShardRanges = descriptors
			// every replica gets a nested-call client factory: a demoted
			// replica resyncs by calling its primary's syncFrom verb
			srv.NewRPC = func(qid *soap.QueryID) (interp.RPCCaller, func() []string) {
				cl := client.New(net)
				cl.QueryID = qid
				return cl, cl.Peers
			}
			if cfg.WALRoot != "" {
				if _, err := srv.EnableWAL(server.WALConfig{
					Dir:           filepath.Join(cfg.WALRoot, fmt.Sprintf("s%dr%d", s, j)),
					SegmentBytes:  cfg.WALSegmentBytes,
					SnapshotBytes: cfg.WALSnapshotBytes,
				}); err != nil {
					return nil, fmt.Errorf("cluster: shard %d replica %d: %w", s, j, err)
				}
			}
			if cfg.RespCacheBytes > 0 {
				srv.RespCache = server.NewRespCache(cfg.RespCacheBytes, cfg.RespCacheEntries)
			}
			if cfg.Parallelism > 1 {
				srv.SetParallelism(cfg.Parallelism)
			}
			net.Register(uri, srv)
			if err := rt.Add(s, uri); err != nil {
				return nil, err
			}
			dep.Servers[s] = append(dep.Servers[s], srv)
			dep.Stores[s] = append(dep.Stores[s], st)
		}
	}
	dep.Routes = cfg.Routes
	dep.resultCacheBytes = cfg.ResultCacheBytes
	return dep, nil
}

// Coordinator returns a scatter-gather coordinator over this
// deployment's routing table, sending through a fresh client on the
// deployment's network, with the deployment's routes registered and a
// planner deriving routes for everything the routes don't cover.
func (d *Deployment) Coordinator() *Coordinator {
	co := NewCoordinator(d.Table, client.New(d.Net))
	for _, r := range d.Routes {
		co.Route(r)
	}
	if d.resultCacheBytes > 0 {
		co.ResultCache = NewResultCache(d.resultCacheBytes)
	}
	co.Planner = planner.New(d.Registry)
	return co
}

// Close flushes and closes every replica's WAL (no-op for replicas
// without one).
func (d *Deployment) Close() error {
	var first error
	for _, reps := range d.Servers {
		for _, srv := range reps {
			if err := srv.CloseWAL(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// ShardURIs returns the primary URI of every shard, in shard order.
func (d *Deployment) ShardURIs() []string {
	out := make([]string, d.Table.NumShards())
	for s := range out {
		out[s] = d.Table.Primary(s)
	}
	return out
}

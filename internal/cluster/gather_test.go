package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"xrpc/internal/client"
	"xrpc/internal/netsim"
	"xrpc/internal/soap"
	"xrpc/internal/xdm"
	"xrpc/internal/xmark"
)

// TestScatterMatchesScatterBuffered pins the tentpole refactor: the
// incremental shard-order merge must produce byte-identical merged
// responses to the collect-then-concat reference, on the fixture
// requests and on randomized bulks (random key subsets, hit and miss,
// varying call counts).
func TestScatterMatchesScatterBuffered(t *testing.T) {
	cfg := xmark.PaperConfig(0.05)
	auctions := xmark.GenerateAuctions(cfg)
	reg := testRegistry(t)

	rng := rand.New(rand.NewSource(7))
	requests := []*client.BulkRequest{probeRequest(cfg.Persons), scanRequest()}
	for i := 0; i < 12; i++ {
		br := &client.BulkRequest{
			ModuleURI: "functions_b",
			AtHint:    "http://example.org/b.xq",
			Func:      "Q_B3",
			Arity:     1,
		}
		for c := 0; c < 1+rng.Intn(17); c++ {
			// keys beyond cfg.Persons miss every shard: empty sequences
			// must merge identically too
			br.Calls = append(br.Calls, []xdm.Sequence{{xdm.String(xmark.PersonID(rng.Intn(cfg.Persons * 2)))}})
		}
		requests = append(requests, br)
	}

	for ri, br := range requests {
		for _, shards := range []int{1, 3, 4} {
			net := netsim.NewNetwork(0, 0)
			dep, err := Deploy(net, reg, map[string]string{"auctions.xml": auctions},
				DeployConfig{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			co := dep.Coordinator()
			want, err := co.ScatterBuffered(br)
			if err != nil {
				t.Fatal(err)
			}
			got, err := co.Scatter(br)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(encodeResults(br, got), encodeResults(br, want)) {
				t.Fatalf("request %d over %d shards: streamed merge differs from buffered reference", ri, shards)
			}
		}
	}
}

// TestScatterStreamMatchesBufferedEncoding: the fully-streamed variant
// (merged envelope written incrementally to a sink) must emit exactly
// the bytes of encoding the buffered scatter's result.
func TestScatterStreamMatchesBufferedEncoding(t *testing.T) {
	cfg := xmark.PaperConfig(0.05)
	auctions := xmark.GenerateAuctions(cfg)
	reg := testRegistry(t)

	for _, br := range []*client.BulkRequest{probeRequest(cfg.Persons), scanRequest()} {
		for _, shards := range []int{1, 2, 4} {
			net := netsim.NewNetwork(0, 0)
			dep, err := Deploy(net, reg, map[string]string{"auctions.xml": auctions},
				DeployConfig{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			co := dep.Coordinator()
			buffered, err := co.ScatterBuffered(br)
			if err != nil {
				t.Fatal(err)
			}
			var out bytes.Buffer
			if err := co.ScatterStream(br, &out); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), encodeResults(br, buffered)) {
				t.Fatalf("%s over %d shards: ScatterStream bytes differ from encoded buffered merge",
					br.Func, shards)
			}
			// the streamed envelope is a well-formed response
			if _, err := soap.DecodeResponse(out.Bytes()); err != nil {
				t.Fatalf("ScatterStream output does not decode: %v", err)
			}
		}
	}
}

// TestScatterStreamPrunedRoute: the pruned path (per-shard call
// subsets) flows through ScatterStream's fallback and stays identical.
func TestScatterStreamPrunedRoute(t *testing.T) {
	const persons = 17
	net := netsim.NewNetwork(0, 0)
	dep := deployPersons(t, net, persons, 3, 1)
	co := dep.Coordinator()
	br := getPersonRequest("person16", "person0", "person5", "nosuch", "person9")
	buffered, err := co.ScatterBuffered(br)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := co.ScatterStream(br, &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), encodeResults(br, buffered)) {
		t.Fatal("pruned ScatterStream differs from buffered reference")
	}
}

// TestScatterStreamShardTruncation: a shard dying mid-envelope must
// surface as that shard's error, not as a silently short merge.
func TestScatterStreamShardTruncation(t *testing.T) {
	reg := testRegistry(t)
	net := netsim.NewNetwork(0, 0)
	dep, err := Deploy(net, reg, map[string]string{
		"auctions.xml": "<site><closed_auctions><closed_auction><price>1</price></closed_auction><closed_auction><price>2</price></closed_auction></closed_auctions></site>",
	}, DeployConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	// shard 1's peer streams half a valid response, then dies
	full, err := net.Send(dep.Table.Primary(1), client.XRPCPath,
		soap.EncodeRequest(&soap.Request{
			Module: "functions_b", Method: "Q_B1", Arity: 0,
			Location: "http://example.org/b.xq", Calls: [][]xdm.Sequence{{}},
		}))
	if err != nil {
		t.Fatal(err)
	}
	net.Register(dep.Table.Primary(1), netsim.StreamHandlerFunc(func(_ string, _ []byte) (io.ReadCloser, error) {
		pr, pw := io.Pipe()
		go func() {
			pw.Write(full[:len(full)/2])
			pw.CloseWithError(errors.New("shard process crashed"))
		}()
		return pr, nil
	}))
	co := dep.Coordinator()
	_, err = co.Scatter(scanRequest())
	if err == nil || !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("err = %v, want a shard 1 failure", err)
	}
}

// TestProxyStreamsMergedResponse drives the whole pipeline over real
// HTTP: client → proxy → scatter → incremental merge → chunked response
// → streaming client decode.
func TestProxyStreamsMergedResponse(t *testing.T) {
	cfg := xmark.PaperConfig(0.05)
	auctions := xmark.GenerateAuctions(cfg)
	reg := testRegistry(t)
	br := probeRequest(cfg.Persons)
	want := singlePeerBaseline(t, reg, auctions, br)

	net := netsim.NewNetwork(0, 0)
	dep, err := Deploy(net, reg, map[string]string{"auctions.xml": auctions}, DeployConfig{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(&Proxy{Co: dep.Coordinator()})
	defer hs.Close()

	tr := client.NewHTTPTransport()
	body := soap.EncodeRequest(&soap.Request{
		Module: br.ModuleURI, Method: br.Func, Arity: br.Arity,
		Location: br.AtHint, Calls: br.Calls,
	})
	rc, err := tr.SendStream(hs.URL, client.XRPCPath, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := soap.DecodeResponseStream(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeResults(br, resp.Results), want) {
		t.Fatal("proxied cluster response differs from single-peer baseline")
	}

	// errors before any output arrive as clean fault envelopes
	rc, err = tr.SendStream(hs.URL, client.XRPCPath, soap.EncodeRequest(&soap.Request{
		Module: "no-such-module", Method: "f", Arity: 0, Calls: [][]xdm.Sequence{{}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = soap.DecodeResponseStream(rc)
	rc.Close()
	var fault *soap.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("err = %v, want a SOAP fault envelope", err)
	}
}

// TestProxyAbortsOnMidStreamFailure: once merged bytes are on the wire
// a shard failure must terminate the connection abnormally, so the
// client sees truncation instead of a complete-looking partial result.
func TestProxyAbortsOnMidStreamFailure(t *testing.T) {
	reg := testRegistry(t)
	net := netsim.NewNetwork(0, 0)
	big := &strings.Builder{}
	big.WriteString("<site><closed_auctions>")
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(big, "<closed_auction><price>%d</price></closed_auction>", i)
	}
	big.WriteString("</closed_auctions></site>")
	dep, err := Deploy(net, reg, map[string]string{"auctions.xml": big.String()}, DeployConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	// shard 0 streams enough of a response that the proxy starts
	// emitting merged output, then crashes
	full, err := net.Send(dep.Table.Primary(0), client.XRPCPath,
		soap.EncodeRequest(&soap.Request{
			Module: "functions_b", Method: "Q_B1", Arity: 0,
			Location: "http://example.org/b.xq", Calls: [][]xdm.Sequence{{}},
		}))
	if err != nil {
		t.Fatal(err)
	}
	net.Register(dep.Table.Primary(0), netsim.StreamHandlerFunc(func(_ string, _ []byte) (io.ReadCloser, error) {
		pr, pw := io.Pipe()
		go func() {
			pw.Write(full[:len(full)-200])
			pw.CloseWithError(errors.New("shard process crashed"))
		}()
		return pr, nil
	}))
	co := dep.Coordinator()
	co.MaxShardBuffer = 4 << 10 // small window so the merge starts before the crash is buffered
	hs := httptest.NewServer(&Proxy{Co: co})
	defer hs.Close()

	resp, err := http.Post(hs.URL+client.XRPCPath, "application/soap+xml",
		bytes.NewReader(soap.EncodeRequest(&soap.Request{
			Module: "functions_b", Method: "Q_B1", Arity: 0,
			Location: "http://example.org/b.xq", Calls: [][]xdm.Sequence{{}},
		})))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); err == nil {
		t.Fatal("mid-stream shard failure delivered a clean (truncated) response body")
	}
}

// ------------------------------------------------- bounded-memory smoke

// syntheticShard produces a response of approximately size bytes (one
// call, many ~1 KiB string items) through the stream encoder — the
// response never exists as one buffer on the producer side either.
func syntheticShard(size int64) netsim.StreamHandlerFunc {
	return netsim.StreamHandlerFunc(func(_ string, _ []byte) (io.ReadCloser, error) {
		pr, pw := io.Pipe()
		go func() {
			item := xdm.String(strings.Repeat("x", 1024))
			enc := soap.NewStreamEncoder(pw, 0)
			enc.BeginResponse("m", "scan")
			enc.BeginSequence()
			for n := int64(0); n < size && enc.Err() == nil; n += 1024 {
				enc.EncodeItem(item)
			}
			enc.EndSequence()
			enc.EndResponse(nil)
			err := enc.Flush()
			enc.Release()
			pw.CloseWithError(err)
		}()
		return pr, nil
	})
}

// heapPeak samples HeapAlloc while f runs and returns the high-water
// mark observed.
func heapPeak(f func()) uint64 {
	runtime.GC()
	stop := make(chan struct{})
	var peak atomic.Uint64
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		for {
			old := peak.Load()
			if ms.HeapAlloc <= old || peak.CompareAndSwap(old, ms.HeapAlloc) {
				break
			}
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				sample()
			}
		}
	}()
	sample()
	f()
	sample()
	close(stop)
	<-done
	return peak.Load()
}

// TestScatterStreamBoundedMemory is the GOMEMLIMIT smoke: the
// coordinator scans a synthetic result much larger than any sane heap
// budget for it, and its peak heap must stay flat as the result grows.
// `make memsmoke` runs it under GOMEMLIMIT=64MiB with
// XRPC_MEMSMOKE_BYTES=268435456 (a 256 MiB scan, 4x the cap): if the
// merge buffered anything proportional to the response, the runtime
// would be forced into OOM-adjacent thrash instead of finishing.
func TestScatterStreamBoundedMemory(t *testing.T) {
	total := int64(32 << 20)
	if s := os.Getenv("XRPC_MEMSMOKE_BYTES"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("XRPC_MEMSMOKE_BYTES = %q: %v", s, err)
		}
		total = v
	}
	const shards = 4
	const window = 256 << 10

	run := func(size int64) (peak uint64, streamed int64) {
		net := netsim.NewNetwork(0, 0)
		rt, err := NewRoutingTable(shards)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < shards; s++ {
			uri := fmt.Sprintf("xrpc://shard%d", s)
			net.Register(uri, syntheticShard(size/shards))
			if err := rt.Add(s, uri); err != nil {
				t.Fatal(err)
			}
		}
		co := NewCoordinator(rt, client.New(net))
		co.MaxShardBuffer = window
		br := &client.BulkRequest{ModuleURI: "m", Func: "scan", Arity: 0, Calls: [][]xdm.Sequence{{}}}
		var n int64
		peak = heapPeak(func() {
			cw := &countWriter{n: &n}
			if err := co.ScatterStream(br, cw); err != nil {
				t.Fatal(err)
			}
		})
		return peak, n
	}

	peakSmall, _ := run(total / 4)
	peakFull, streamed := run(total)
	t.Logf("streamed %d MiB merged response; peak heap: %d MiB at quarter size, %d MiB at full size",
		streamed>>20, peakSmall>>20, peakFull>>20)
	if streamed < total {
		t.Fatalf("merged response only %d bytes, want >= %d", streamed, total)
	}
	// flat: quadrupling the response must not move the peak by more
	// than a generous constant — O(shards×window), not O(result)
	flatBudget := peakSmall + shards*window*4 + (16 << 20)
	if peakFull > flatBudget {
		t.Fatalf("peak heap grows with result size: %d at %d bytes vs %d at %d bytes",
			peakFull, total, peakSmall, total/4)
	}
}

type countWriter struct{ n *int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	*c.n += int64(len(p))
	return len(p), nil
}

package bench

import (
	"encoding/json"
	"strings"
	"testing"

	"xrpc/internal/modules"
	"xrpc/internal/pathfinder"
	"xrpc/internal/strategies"
	"xrpc/internal/xmark"
)

func deriveBenchKeys(t *testing.T, source, hint string) ([]pathfinder.RouteKey, []pathfinder.RouteMiss) {
	t.Helper()
	reg := modules.NewRegistry()
	if err := reg.Register(source, hint); err != nil {
		t.Fatal(err)
	}
	uri := reg.URIs()[0]
	m, err := reg.ResolveModule(uri, []string{hint})
	if err != nil {
		t.Fatal(err)
	}
	return pathfinder.DeriveRouteKeys(m)
}

// TestDerivedRouteKeysMatchHandWrittenBenchSpecs is the bench half of
// the differential check: the compiler-derived route keys for the
// cluster-update workload module must equal the hand-written
// PersonRoutes() specs the benchmarks used before the planner existed —
// the hand-written specs stay in the tree as the executable reference.
func TestDerivedRouteKeysMatchHandWrittenBenchSpecs(t *testing.T) {
	keys, misses := deriveBenchKeys(t, FunctionsP, "http://example.org/p.xq")
	for _, m := range misses {
		t.Errorf("FunctionsP %s underivable: %s", m.Func, m.Reason)
	}
	want := PersonRoutes()
	if len(keys) != len(want) {
		t.Fatalf("derived %d route keys, hand-written specs = %d", len(keys), len(want))
	}
	for _, spec := range want {
		found := false
		for _, k := range keys {
			if k.Func != spec.Func {
				continue
			}
			found = true
			if k.Param != spec.KeyArg {
				t.Errorf("%s: derived param %d, hand-written KeyArg %d", spec.Func, k.Param, spec.KeyArg)
			}
			if k.Doc != spec.Doc {
				t.Errorf("%s: derived doc %q, hand-written %q", spec.Func, k.Doc, spec.Doc)
			}
			if k.KeyAttr != "id" || k.Op != "=" {
				t.Errorf("%s: derived @%s %s, want @id =", spec.Func, k.KeyAttr, k.Op)
			}
			if !strings.HasSuffix(spec.Path, k.PathSuffix) {
				t.Errorf("%s: derived path suffix %q does not match container %q",
					spec.Func, k.PathSuffix, spec.Path)
			}
		}
		if !found {
			t.Errorf("hand-written spec %s has no derived counterpart", spec.Func)
		}
	}
}

// TestDerivedRouteKeysRangeScan: the planner-bench range module derives
// a range route key, exercising the codepoint-ordered (Lex) prune path.
func TestDerivedRouteKeysRangeScan(t *testing.T) {
	keys, misses := deriveBenchKeys(t, FunctionsI, "http://example.org/i.xq")
	if len(misses) != 0 {
		t.Fatalf("FunctionsI misses: %+v", misses)
	}
	if len(keys) != 1 {
		t.Fatalf("derived %d keys, want 1", len(keys))
	}
	k := keys[0]
	if k.Func != "itemsFrom" || k.Param != 0 || k.Doc != "items.xml" ||
		k.KeyAttr != "id" || k.Op != ">=" {
		t.Fatalf("itemsFrom derived as %+v", k)
	}
}

// TestClusterWorkloadModuleIsUnderivable documents the fallback side:
// none of the §5 cluster-bench functions can be derived (Q_B1/Q_B2 take
// no parameters, Q_B3's key predicate is a two-step path), so the
// scatter benchmark's planner coordinator broadcasts them — fallback is
// always broadcast, never a wrong route.
func TestClusterWorkloadModuleIsUnderivable(t *testing.T) {
	keys, misses := deriveBenchKeys(t, strategies.FunctionsB, "http://example.org/b.xq")
	if len(keys) != 0 {
		t.Fatalf("FunctionsB derived keys %+v, want none", keys)
	}
	if len(misses) != 3 {
		t.Fatalf("FunctionsB misses = %d, want 3 (Q_B1, Q_B2, Q_B3)", len(misses))
	}
}

func TestPlannerBenchSweepsAndVerifies(t *testing.T) {
	cfg := xmark.Config{Persons: 24, ClosedAuctions: 80, Matches: 6, AnnotationWords: 8, Seed: 42}
	rows, err := RunPlannerBench(cfg, []int{1, 2}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 3 workloads x 2 peers x 2 modes + 2 peers x 3 semi-join sides
	if len(rows) != 18 {
		t.Fatalf("rows = %d, want 18", len(rows))
	}
	find := func(workload, mode string, peers int) PlannerRow {
		for _, r := range rows {
			if r.Workload == workload && r.Mode == mode && r.Peers == peers {
				return r
			}
		}
		t.Fatalf("no row (%s, %s, peers=%d)", workload, mode, peers)
		return PlannerRow{}
	}
	for _, r := range rows {
		if !r.Verified {
			t.Fatalf("row %+v not verified", r)
		}
	}
	// the planner's derived routes keep point and range work flat in
	// peer count while the pre-planner broadcast grows linearly
	for _, wl := range []string{"probe x1", "range scan"} {
		if got := find(wl, "planner", 2).Requests; got != 1 {
			t.Errorf("%s planner peers=2: %d requests, want 1", wl, got)
		}
		if got := find(wl, "broadcast", 2).Requests; got != 2 {
			t.Errorf("%s broadcast peers=2: %d requests, want 2", wl, got)
		}
	}
	if auto := find("semi-join", "auto", 2); auto.Strategy != "ship-keys" && auto.Strategy != "ship-data" {
		t.Errorf("semi-join auto strategy = %q", auto.Strategy)
	}
	out := FormatPlannerBench(rows)
	for _, want := range []string{"probe x1", "range scan", "semi-join", "ship-keys"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q", want)
		}
	}
	data, err := PlannerSnapshotJSON(rows)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Experiment string       `json:"experiment"`
		Rows       []PlannerRow `json:"rows"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Experiment == "" || len(snap.Rows) != len(rows) {
		t.Fatalf("snapshot round-trip: %q, %d rows", snap.Experiment, len(snap.Rows))
	}
}

package bench

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"xrpc/internal/soap"
	"xrpc/internal/xdm"
)

// The wire experiment measures the SOAP message path in isolation:
// encode+decode round-trips across message shapes, streaming path
// (pooled Encoder + envelope pull-decoder) vs the seed's reference path
// (strings.Builder encoder + DOM decoder). Outputs are verified
// identical before any timing: the two encoders must produce the same
// bytes, and the two decoders must agree (their decodes re-encode to
// identical messages).

// WireRow is one message class of the wire experiment.
type WireRow struct {
	// Name identifies the message shape (e.g. "request 256x1 atomic").
	Name string
	// Bytes is the encoded message size.
	Bytes int
	// GzipBytes is the gzip content-coding size (0 when not measured).
	GzipBytes int `json:",omitempty"`
	// Durations are per-operation, best of reps, amortized over enough
	// iterations to total ≥ 2 ms.
	EncodeStream time.Duration
	EncodeRef    time.Duration
	DecodeStream time.Duration
	DecodeRef    time.Duration
}

// EncodeSpeedup is reference time over streaming time.
func (r *WireRow) EncodeSpeedup() float64 { return speedup(r.EncodeRef, r.EncodeStream) }

// DecodeSpeedup is reference time over streaming time.
func (r *WireRow) DecodeSpeedup() float64 { return speedup(r.DecodeRef, r.DecodeStream) }

func speedup(ref, new time.Duration) float64 {
	if new <= 0 {
		return 0
	}
	return float64(ref) / float64(new)
}

// wireMessage is one message shape under test.
type wireMessage struct {
	name string
	req  *soap.Request
	resp *soap.Response
}

func wireMessages() ([]wireMessage, error) {
	person, err := xdm.ParseFragment(`<person id="person7"><name>Kathy Blanton</name><emailaddress>mailto:kblanton@example.org</emailaddress><interest category="category33"/></person>`)
	if err != nil {
		return nil, err
	}
	auction, err := xdm.ParseFragment(`<closed_auction><seller person="person42"/><buyer person="person3"/><price>42.50</price><date>07/27/2026</date></closed_auction>`)
	if err != nil {
		return nil, err
	}
	mkReq := func(calls int, withNode bool) *soap.Request {
		r := &soap.Request{
			Module:   "functions",
			Method:   "getPerson",
			Arity:    2,
			Location: "http://example.org/functions.xq",
		}
		for i := 0; i < calls; i++ {
			param2 := xdm.Sequence{xdm.String(fmt.Sprintf("person%d", i))}
			if withNode {
				param2 = append(param2, person[0])
			}
			r.Calls = append(r.Calls, []xdm.Sequence{
				{xdm.String("xmark.xml")}, param2,
			})
		}
		return r
	}
	mkResp := func(results int, nodes int, atomics bool) *soap.Response {
		r := &soap.Response{Module: "functions", Method: "Q_B3",
			Peers: []string{"xrpc://y.example.org"}}
		for i := 0; i < results; i++ {
			var seq xdm.Sequence
			for j := 0; j < nodes; j++ {
				seq = append(seq, auction[0])
			}
			if atomics {
				seq = append(seq, xdm.Integer(int64(i)), xdm.String(fmt.Sprintf("person%d", i)))
			}
			r.Results = append(r.Results, seq)
		}
		return r
	}
	return []wireMessage{
		{name: "request 1x atomic", req: mkReq(1, false)},
		{name: "request 256x atomic", req: mkReq(256, false)},
		{name: "request 64x node", req: mkReq(64, true)},
		{name: "request 1024x node", req: mkReq(1024, true)},
		{name: "response 256x atomic", resp: mkResp(256, 0, true)},
		{name: "response 64x node", resp: mkResp(64, 2, false)},
	}, nil
}

// RunWireBench measures every wire message class, best of reps. With
// gzipSizes, the gzip content-coding size is recorded too.
func RunWireBench(reps int, gzipSizes bool) ([]WireRow, error) {
	if reps < 1 {
		reps = 3
	}
	msgs, err := wireMessages()
	if err != nil {
		return nil, err
	}
	var rows []WireRow
	for _, m := range msgs {
		row, err := runWireRow(m, reps, gzipSizes)
		if err != nil {
			return nil, fmt.Errorf("wire %s: %w", m.name, err)
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func runWireRow(m wireMessage, reps int, gzipSizes bool) (*WireRow, error) {
	// the four operations under test
	encodeStream := func() []byte {
		enc := soap.NewEncoder()
		if m.req != nil {
			enc.EncodeRequest(m.req)
		} else {
			enc.EncodeResponse(m.resp)
		}
		out := enc.Bytes()
		enc.Release()
		return out
	}
	encodeRef := func() []byte {
		if m.req != nil {
			return soap.EncodeRequestRef(m.req)
		}
		return soap.EncodeResponseRef(m.resp)
	}

	// verification before timing: encoders byte-identical, decoders in
	// agreement (re-encoded decodes identical)
	var msg []byte
	if m.req != nil {
		msg = soap.EncodeRequest(m.req)
	} else {
		msg = soap.EncodeResponse(m.resp)
	}
	if !bytes.Equal(msg, encodeRef()) {
		return nil, fmt.Errorf("streaming and reference encoders produce different bytes")
	}
	pull, err := soap.Decode(msg)
	if err != nil {
		return nil, fmt.Errorf("pull decode: %w", err)
	}
	dom, err := soap.DecodeDOM(msg)
	if err != nil {
		return nil, fmt.Errorf("DOM decode: %w", err)
	}
	if !bytes.Equal(reencodeMessage(pull), reencodeMessage(dom)) {
		return nil, fmt.Errorf("pull and DOM decoders disagree")
	}

	row := &WireRow{Name: m.name, Bytes: len(msg)}
	if gzipSizes {
		var zbuf bytes.Buffer
		zw := gzip.NewWriter(&zbuf)
		zw.Write(msg)
		zw.Close()
		row.GzipBytes = zbuf.Len()
	}
	row.EncodeStream = bestOf(reps, func() { encodeStream() })
	row.EncodeRef = bestOf(reps, func() { encodeRef() })
	row.DecodeStream = bestOf(reps, func() { soap.Decode(msg) })
	row.DecodeRef = bestOf(reps, func() { soap.DecodeDOM(msg) })
	return row, nil
}

func reencodeMessage(m *soap.Message) []byte {
	switch {
	case m.Request != nil:
		return soap.EncodeRequest(m.Request)
	case m.Response != nil:
		return soap.EncodeResponse(m.Response)
	default:
		return soap.EncodeFault(m.Fault)
	}
}

// bestOf times f amortized over enough iterations to total ≥ 2 ms per
// sample (single invocations of the small messages run at µs scale,
// where one GC pause swamps the measurement), best of reps samples.
func bestOf(reps int, f func()) time.Duration {
	start := time.Now()
	f() // warm-up + calibration
	once := time.Since(start)
	iters := 1
	if once < 2*time.Millisecond {
		iters = int(2*time.Millisecond/(once+1)) + 1
	}
	var min time.Duration
	for s := 0; s < reps; s++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		d := time.Since(start) / time.Duration(iters)
		if s == 0 || d < min {
			min = d
		}
	}
	return min
}

// FormatWireBench renders the wire experiment rows.
func FormatWireBench(rows []WireRow) string {
	var b strings.Builder
	b.WriteString("SOAP wire path, streaming (pooled encoder + pull-decoder) vs reference (builder + DOM), best of runs\n")
	gz := len(rows) > 0 && rows[0].GzipBytes > 0
	fmt.Fprintf(&b, "%-22s %9s", "", "bytes")
	if gz {
		fmt.Fprintf(&b, " %9s", "gzip")
	}
	fmt.Fprintf(&b, " %11s %11s %8s %11s %11s %8s\n",
		"enc-stream", "enc-ref", "speedup", "dec-stream", "dec-ref", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %9d", r.Name, r.Bytes)
		if gz {
			fmt.Fprintf(&b, " %9d", r.GzipBytes)
		}
		fmt.Fprintf(&b, " %8.0f µs %8.0f µs %7.2fx %8.0f µs %8.0f µs %7.2fx\n",
			us(r.EncodeStream), us(r.EncodeRef), r.EncodeSpeedup(),
			us(r.DecodeStream), us(r.DecodeRef), r.DecodeSpeedup())
	}
	return b.String()
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1000.0 }

// WireSnapshot is the JSON document `xrpcbench -table wire -wire-json`
// writes (BENCH_wire.json in the repository records the trajectory).
type WireSnapshot struct {
	Generated string
	Note      string
	Rows      []WireRow
}

// WireSnapshotJSON renders rows as an indented JSON snapshot.
func WireSnapshotJSON(rows []WireRow) ([]byte, error) {
	snap := WireSnapshot{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Note:      "durations in ns, best-of-3 amortized; outputs verified identical between streaming and reference paths before timing",
		Rows:      rows,
	}
	return json.MarshalIndent(snap, "", "  ")
}

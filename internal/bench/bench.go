// Package bench contains the experiment harnesses that regenerate every
// table and figure of the paper's evaluation: Table 2 (Bulk RPC vs
// one-at-a-time, function cache on/off), the §3.3 throughput experiment,
// Table 3 (wrapper latency on the Saxon-role engine), Table 4 (the four
// distributed strategies for Q7), and the Figure 1 intermediate tables.
//
// The harnesses are shared by the root bench_test.go (go test -bench)
// and cmd/xrpcbench (prints the paper's rows).
package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"xrpc/internal/algebra"
	"xrpc/internal/client"
	"xrpc/internal/interp"
	"xrpc/internal/modules"
	"xrpc/internal/netsim"
	"xrpc/internal/pathfinder"
	"xrpc/internal/server"
	"xrpc/internal/soap"
	"xrpc/internal/store"
	"xrpc/internal/strategies"
	"xrpc/internal/wrapper"
	"xrpc/internal/xdm"
	"xrpc/internal/xmark"
)

// TestModule is the echoVoid module of §3.3.
const TestModule = `
module namespace tst = "test";
declare function tst:echoVoid() { () };
declare function tst:echo($x as item()*) as item()* { $x };`

// heavyTestModule is TestModule padded with filler functions so that
// module compilation takes measurable time. The paper's MonetDB/XQuery
// spent ~130 ms translating the module into relational plans; our
// compiler is much cheaper per function, so the cache-vs-no-cache
// contrast of Table 2 needs a module whose translation cost is
// non-negligible.
func heavyTestModule(fillerFuncs int) string {
	var b strings.Builder
	b.WriteString(`module namespace tst = "test";
declare function tst:echoVoid() { () };
declare function tst:echo($x as item()*) as item()* { $x };
`)
	for i := 0; i < fillerFuncs; i++ {
		fmt.Fprintf(&b, `declare function tst:filler%d($a as xs:integer, $b as xs:string) as xs:string
{ if ($a mod 2 eq 0)
  then concat($b, "-", string($a * %d + sum((1 to 10))))
  else string-join(for $i in (1 to 5) return concat($b, string($i + $a)), ",") };
`, i, i+1)
	}
	return b.String()
}

// GetPersonModule is the §4 getPerson function.
const GetPersonModule = `
module namespace func="functions";
declare function func:getPerson($doc as xs:string, $pid as xs:string) as node()?
{ zero-or-one(doc($doc)//person[@id=$pid]) };
declare function func:echoVoid() { () };`

// DefaultRTT simulates the paper's LAN round trip. The paper's minimum
// RPC latency was ~3 ms on 2007 hardware; scaled down to keep bench runs
// short while preserving the latency-vs-bandwidth shape.
const DefaultRTT = 200 * time.Microsecond

// Table2Env is the two-peer echoVoid deployment of §3.3.
type Table2Env struct {
	Net      *netsim.Network
	Registry *modules.Registry
	Local    *store.Store
	YServer  *server.Server
	YExec    *server.NativeExecutor
	compiled *pathfinder.Compiled
}

// NewTable2Env wires the experiment with the given network latency. The
// served module carries 300 filler functions so that "module translation
// time" (which the function cache eliminates) is measurable, like the
// 130 ms the paper reports for MonetDB/XQuery.
func NewTable2Env(rtt time.Duration) (*Table2Env, error) {
	net := netsim.NewNetwork(rtt, 0)
	reg := modules.NewRegistry()
	if err := reg.Register(heavyTestModule(300), "http://x.example.org/test.xq"); err != nil {
		return nil, err
	}
	ySt := store.New()
	yEng := interp.New(ySt, reg, nil)
	yExec := server.NewNativeExecutor(yEng, reg)
	ySrv := server.New(ySt, reg, yExec)
	ySrv.Self = "xrpc://y.example.org"
	net.Register("xrpc://y.example.org", ySrv)

	localSt := store.New()
	compiled, err := pathfinder.Compile(`
import module namespace t="test" at "http://x.example.org/test.xq";
for $i in (1 to $x)
return execute at {"xrpc://y.example.org"} {t:echoVoid()}`, reg)
	if err != nil {
		return nil, err
	}
	return &Table2Env{Net: net, Registry: reg, Local: localSt, YServer: ySrv, YExec: yExec, compiled: compiled}, nil
}

// RunEchoVoid executes the Table 2 echoVoid query for x iterations.
// bulk=false uses one-at-a-time RPC. warm=false starts with a cold
// function cache (the paper's "No Function Cache" column: the first
// request pays module translation time); warm=true pre-primes the cache
// ("With Function Cache"). Returns the elapsed time.
func (env *Table2Env) RunEchoVoid(x int, bulk, warm bool) (time.Duration, error) {
	env.YExec.CacheEnabled = true
	env.YExec.InvalidateCache()
	if warm {
		warmCl := client.New(env.Net)
		warmEC := &pathfinder.ExecCtx{Docs: env.Local, Bulk: warmCl}
		if _, err := env.compiled.Eval(warmEC, map[string]xdm.Sequence{"x": {xdm.Integer(1)}}); err != nil {
			return 0, err
		}
		env.YServer.ResetStats()
	}
	cl := client.New(env.Net)
	ec := &pathfinder.ExecCtx{Docs: env.Local, Bulk: cl, OneAtATime: !bulk}
	start := time.Now()
	_, err := env.compiled.Eval(ec, map[string]xdm.Sequence{"x": {xdm.Integer(int64(x))}})
	if err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// Table2Cell is one cell of Table 2.
type Table2Cell struct {
	Bulk bool
	// Cache reports a warm function cache ("With Function Cache").
	Cache   bool
	X       int
	Elapsed time.Duration
	// Requests is how many network requests were needed.
	Requests int64
}

// RunTable2 produces all eight cells of Table 2 (2 mechanisms × 2 cache
// states × x ∈ {1, 1000}).
func RunTable2(rtt time.Duration, xs []int) ([]Table2Cell, error) {
	if len(xs) == 0 {
		xs = []int{1, 1000}
	}
	var cells []Table2Cell
	for _, warm := range []bool{false, true} {
		for _, bulk := range []bool{false, true} {
			for _, x := range xs {
				env, err := NewTable2Env(rtt)
				if err != nil {
					return nil, err
				}
				d, err := env.RunEchoVoid(x, bulk, warm)
				if err != nil {
					return nil, err
				}
				cells = append(cells, Table2Cell{
					Bulk: bulk, Cache: warm, X: x, Elapsed: d,
					Requests: env.YServer.ServedRequests,
				})
			}
		}
	}
	return cells, nil
}

// FormatTable2 renders cells in the paper's Table 2 layout.
func FormatTable2(cells []Table2Cell, xs []int) string {
	if len(xs) == 0 {
		xs = []int{1, 1000}
	}
	get := func(bulk, cache bool, x int) string {
		for _, c := range cells {
			if c.Bulk == bulk && c.Cache == cache && c.X == x {
				return fmt.Sprintf("%.1f", float64(c.Elapsed.Microseconds())/1000.0)
			}
		}
		return "-"
	}
	var b strings.Builder
	b.WriteString("Table 2: XRPC Performance (msec): loop-lifted vs one-at-a-time; function cache vs none\n")
	fmt.Fprintf(&b, "%-14s", "")
	b.WriteString("| No Function Cache        | With Function Cache\n")
	fmt.Fprintf(&b, "%-14s|", "")
	for range []int{0, 1} {
		for _, x := range xs {
			fmt.Fprintf(&b, " $x=%-8d", x)
		}
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, mech := range []struct {
		name string
		bulk bool
	}{{"one-at-a-time", false}, {"bulk", true}} {
		fmt.Fprintf(&b, "%-14s|", mech.name)
		for _, cache := range []bool{false, true} {
			for _, x := range xs {
				fmt.Fprintf(&b, " %-10s", get(mech.bulk, cache, x))
			}
			b.WriteString("|")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ----------------------------------------------------------- throughput

// ThroughputResult is one row of the §3.3 bandwidth experiment.
type ThroughputResult struct {
	Direction   string // "request" or "response"
	PayloadKB   int
	Elapsed     time.Duration
	MBPerSecond float64
}

// RunThroughput measures request-bound and response-bound payload
// throughput (§3.3: "we observed 8 MB/s (large requests) and 14 MB/s
// (large responses)"). Payload travels as one big string parameter or
// result of tst:echo.
func RunThroughput(payloadKB int, response bool) (*ThroughputResult, error) {
	net := netsim.NewNetwork(0, 0)
	reg := modules.NewRegistry()
	if err := reg.Register(TestModule, "http://x.example.org/test.xq"); err != nil {
		return nil, err
	}
	ySt := store.New()
	yExec := server.NewNativeExecutor(interp.New(ySt, reg, nil), reg)
	ySrv := server.New(ySt, reg, yExec)
	net.Register("xrpc://y", ySrv)

	payload := strings.Repeat("x", payloadKB*1024)
	cl := client.New(net)
	dir := "request"
	query := `
import module namespace t="test" at "http://x.example.org/test.xq";
execute at {"xrpc://y"} {t:echo($p)}`
	vars := map[string]xdm.Sequence{"p": {xdm.String(payload)}}
	if response {
		dir = "response"
		// store the payload at y; the response carries it back
		if err := ySt.LoadXML("big.xml", "<doc>"+payload+"</doc>"); err != nil {
			return nil, err
		}
		bigModule := `
module namespace big="big";
declare function big:fetch() as xs:string { string(doc("big.xml")) };`
		if err := reg.Register(bigModule, "http://x.example.org/big.xq"); err != nil {
			return nil, err
		}
		query = `
import module namespace big="big" at "http://x.example.org/big.xq";
execute at {"xrpc://y"} {big:fetch()}`
		vars = nil
	}
	compiled, err := pathfinder.Compile(query, reg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if _, err := compiled.Eval(&pathfinder.ExecCtx{Docs: store.New(), Bulk: cl}, vars); err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	mb := float64(payloadKB) / 1024.0
	return &ThroughputResult{
		Direction:   dir,
		PayloadKB:   payloadKB,
		Elapsed:     elapsed,
		MBPerSecond: mb / elapsed.Seconds(),
	}, nil
}

// -------------------------------------------------------------- Table 3

// Table3Row is one row of Table 3 (Saxon latency via the XRPC wrapper).
type Table3Row struct {
	Fn        string
	X         int
	Total     time.Duration
	Compile   time.Duration
	TreeBuild time.Duration
	Exec      time.Duration
}

// RunTable3 performs the §4 wrapper experiment: echoVoid and getPerson
// with x calls in one bulk request against the wrapper-fronted engine,
// reporting the compile/treebuild/exec phases.
func RunTable3(xs []int, cfg xmark.Config) ([]Table3Row, error) {
	return RunTable3Fns([]string{"echoVoid", "getPerson"}, xs, cfg)
}

// RunTable3Fns runs the Table 3 experiment for the selected functions
// only (used by the per-cell benchmarks).
func RunTable3Fns(fns []string, xs []int, cfg xmark.Config) ([]Table3Row, error) {
	if len(xs) == 0 {
		xs = []int{1, 1000}
	}
	reg := modules.NewRegistry()
	if err := reg.Register(GetPersonModule, "http://example.org/functions.xq"); err != nil {
		return nil, err
	}
	w := wrapper.New(reg, nil)
	w.LoadText("xmark.xml", xmark.GeneratePersons(cfg))

	var rows []Table3Row
	for _, fn := range fns {
		for _, x := range xs {
			req := &soap.Request{
				Module:   "functions",
				Method:   fn,
				Location: "http://example.org/functions.xq",
			}
			for i := 0; i < x; i++ {
				if fn == "getPerson" {
					req.Arity = 2
					pid := xmark.PersonID(i % maxInt(cfg.Persons, 1))
					req.Calls = append(req.Calls, []xdm.Sequence{
						{xdm.String("xmark.xml")}, {xdm.String(pid)},
					})
				} else {
					req.Calls = append(req.Calls, []xdm.Sequence{})
				}
			}
			raw := soap.EncodeRequest(req)
			start := time.Now()
			_, _, stats, err := w.Execute(req, raw, nil, nil)
			if err != nil {
				return nil, fmt.Errorf("table 3 %s x=%d: %w", fn, x, err)
			}
			total := time.Since(start)
			rows = append(rows, Table3Row{
				Fn: fn, X: x, Total: total,
				Compile: stats.Compile, TreeBuild: stats.TreeBuild, Exec: stats.Exec,
			})
		}
	}
	return rows, nil
}

// FormatTable3 renders rows in the paper's Table 3 layout.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: Saxon-role latency via the XRPC Wrapper (msec)\n")
	fmt.Fprintf(&b, "%-22s %10s %10s %10s %10s\n", "", "total", "compile", "treebuild", "exec")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %10.2f %10.2f %10.2f %10.2f\n",
			fmt.Sprintf("%s $x=%d", r.Fn, r.X),
			ms(r.Total), ms(r.Compile), ms(r.TreeBuild), ms(r.Exec))
	}
	return b.String()
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000.0 }

// -------------------------------------------------------------- Table 4

// RunTable4 runs the four Q7 strategies at the given XMark scale.
func RunTable4(cfg xmark.Config) ([]*strategies.Result, error) {
	env, err := strategies.NewEnv(cfg)
	if err != nil {
		return nil, err
	}
	return env.RunAll()
}

// FormatTable4 renders results in the paper's Table 4 layout.
func FormatTable4(results []*strategies.Result) string {
	var b strings.Builder
	b.WriteString("Table 4: Execution time (msec) of Q7 distributed on the loop-lifted engine (A) and the wrapper engine (B)\n")
	fmt.Fprintf(&b, "%-24s %12s %12s %12s %10s %12s\n",
		"", "Total", "A (MonetDB)", "B (Saxon)", "requests", "bytes")
	for _, r := range results {
		fmt.Fprintf(&b, "%-24s %12.2f %12.2f %12.2f %10d %12d\n",
			r.Strategy, ms(r.Total), ms(r.ATime), ms(r.BTime), r.Requests, r.BytesShipped)
	}
	return b.String()
}

// ------------------------------------------------------------- Figure 1

// RunFigure1 evaluates Q3 with tracing enabled and returns the captured
// intermediate tables.
func RunFigure1() (*pathfinder.Trace, error) {
	net := netsim.NewNetwork(0, 0)
	reg := modules.NewRegistry()
	film := `
module namespace film="films";
declare function film:filmsByActor($actor as xs:string) as node()*
{ doc("filmDB.xml")//name[../actor=$actor] };`
	if err := reg.Register(film, "http://x.example.org/film.xq"); err != nil {
		return nil, err
	}
	mk := func(uri, xml string) {
		st := store.New()
		st.LoadXML("filmDB.xml", xml)
		srv := server.New(st, reg, server.NewNativeExecutor(interp.New(st, reg, nil), reg))
		net.Register(uri, srv)
	}
	mk("xrpc://y.example.org", xmark.PaperFilmDB)
	mk("xrpc://z.example.org", `<films>
<film><name>Sound Of Music</name><actor>Julie Andrews</actor></film>
</films>`)

	compiled, err := pathfinder.Compile(`
import module namespace f="films" at "http://x.example.org/film.xq";
for $actor in ("Julie Andrews", "Sean Connery")
for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
return execute at {$dst} {f:filmsByActor($actor)}`, reg)
	if err != nil {
		return nil, err
	}
	trace := &pathfinder.Trace{}
	ec := &pathfinder.ExecCtx{
		Docs:       store.New(),
		Bulk:       client.New(net),
		Trace:      trace,
		Sequential: true, // deterministic trace order
	}
	if _, err := compiled.Eval(ec, nil); err != nil {
		return nil, err
	}
	return trace, nil
}

// FormatFigure1 renders the captured trace like Figure 1 of the paper.
func FormatFigure1(trace *pathfinder.Trace) string {
	var b strings.Builder
	b.WriteString("Figure 1: Relational Processing of Bulk RPC (multiple destinations)\n\n")
	for _, pt := range trace.PerPeer {
		fmt.Fprintf(&b, "peer %s\n", pt.Peer)
		fmt.Fprintf(&b, "map:\n%s", pt.Map)
		for i, req := range pt.Req {
			fmt.Fprintf(&b, "req (param %d):\n%s", i+1, req)
		}
		fmt.Fprintf(&b, "msg:\n%s", pt.Msg)
		fmt.Fprintf(&b, "res (mapped back):\n%s\n", pt.Res)
	}
	fmt.Fprintf(&b, "result (merge-union):\n%s", trace.Result)
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------- algebra microbench

// AlgebraBenchRow is one operator's row of the columnar-vs-row-store
// microbenchmark (`xrpcbench -table algebra`): the same operator run
// over the same input in both storage layouts, outputs verified
// identical.
type AlgebraBenchRow struct {
	Op       string
	Rows     int
	Columnar time.Duration
	RowStore time.Duration
}

// Speedup is row-store time over columnar time.
func (r *AlgebraBenchRow) Speedup() float64 {
	if r.Columnar <= 0 {
		return 0
	}
	return float64(r.RowStore) / float64(r.Columnar)
}

// RunAlgebraBench times the loop-lifting hot operators (⋈ on iter, ρ
// over (iter, pos), σ, sort) in the columnar engine against the
// row-store reference at n input rows, best of reps runs. Before
// timing, each operator pair is checked for identical output. The input
// shapes come from algebra.Bench*Input, shared with the package's own
// BenchmarkAlgebra* microbenchmarks.
func RunAlgebraBench(n, reps int) ([]AlgebraBenchRow, error) {
	if reps < 1 {
		reps = 3
	}
	mapTbl, varTbl := algebra.BenchJoinInput(n)
	rm, rv := mapTbl.RowStore(), varTbl.RowStore()
	seq := algebra.BenchSeqInput(n)
	rseq := seq.RowStore()
	boolT := algebra.BenchBoolInput(n)
	rbool := boolT.RowStore()

	type op struct {
		name     string
		columnar func() fmt.Stringer
		rowstore func() fmt.Stringer
	}
	ops := []op{
		{"join (⋈ on iter)",
			func() fmt.Stringer { return algebra.Join(mapTbl, varTbl, "outer", algebra.ColIter) },
			func() fmt.Stringer { return algebra.RowJoin(rm, rv, "outer", algebra.ColIter) }},
		{"rownum (ρ iter,pos)",
			func() fmt.Stringer {
				return algebra.RowNum(seq, "n", []string{algebra.ColIter, algebra.ColPos}, "")
			},
			func() fmt.Stringer {
				return algebra.RowRowNum(rseq, "n", []string{algebra.ColIter, algebra.ColPos}, "")
			}},
		{"select (σ bool)",
			func() fmt.Stringer { return algebra.Select(boolT, "b") },
			func() fmt.Stringer { return algebra.RowSelect(rbool, "b") }},
		{"sort (iter,pos)",
			func() fmt.Stringer { return algebra.SortBy(seq, algebra.ColIter, algebra.ColPos) },
			func() fmt.Stringer { return algebra.RowSortBy(rseq, algebra.ColIter, algebra.ColPos) }},
	}
	var rows []AlgebraBenchRow
	// each sample amortizes the operator over enough iterations to total
	// a few milliseconds — single invocations of the cheap operators (σ)
	// run at µs scale, where one GC pause swamps the measurement
	best := func(f func() fmt.Stringer) time.Duration {
		start := time.Now()
		f() // warm-up, and calibrate the per-sample iteration count
		once := time.Since(start)
		iters := 1
		if once < 2*time.Millisecond {
			iters = int(2*time.Millisecond/(once+1)) + 1
		}
		var min time.Duration
		for s := 0; s < reps; s++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				f()
			}
			d := time.Since(start) / time.Duration(iters)
			if s == 0 || d < min {
				min = d
			}
		}
		return min
	}
	for _, o := range ops {
		if c, r := o.columnar().String(), o.rowstore().String(); c != r {
			return nil, fmt.Errorf("algebra bench %q: columnar and row-store outputs differ", o.name)
		}
		runtime.GC() // don't bill one operator for another's garbage
		col := best(o.columnar)
		runtime.GC()
		row := best(o.rowstore)
		rows = append(rows, AlgebraBenchRow{Op: o.name, Rows: n, Columnar: col, RowStore: row})
	}
	return rows, nil
}

// FormatAlgebraBench renders the microbenchmark rows.
func FormatAlgebraBench(rows []AlgebraBenchRow) string {
	var b strings.Builder
	if len(rows) > 0 {
		fmt.Fprintf(&b, "Algebra operators, columnar vs row-store (%d input rows, best of runs)\n", rows[0].Rows)
	}
	fmt.Fprintf(&b, "%-22s %12s %12s %9s\n", "", "columnar", "row-store", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %9.3f ms %9.3f ms %8.2fx\n",
			r.Op, ms(r.Columnar), ms(r.RowStore), r.Speedup())
	}
	return b.String()
}

// --------------------------------------------------- parallel bulk exec

// BulkExecEnv is the server-side bulk execution harness: one native
// (function-cached) peer holding an XMark persons document, and one
// pre-encoded read-only bulk request of getPerson calls. It isolates the
// executor's per-call evaluation cost — no network, no client — so the
// sequential-vs-parallel contrast of the NativeExecutor worker pool is
// directly observable.
type BulkExecEnv struct {
	Server *server.Server
	Exec   *server.NativeExecutor
	// Body is the encoded bulk request (Calls calls of func:getPerson).
	Body []byte
}

// NewBulkExecEnv wires the harness with the given bulk size over an
// XMark document of cfg.Persons persons.
func NewBulkExecEnv(calls int, cfg xmark.Config) (*BulkExecEnv, error) {
	reg := modules.NewRegistry()
	if err := reg.Register(GetPersonModule, "http://example.org/functions.xq"); err != nil {
		return nil, err
	}
	st := store.New()
	if err := st.LoadXML("xmark.xml", xmark.GeneratePersons(cfg)); err != nil {
		return nil, err
	}
	exec := server.NewNativeExecutor(interp.New(st, reg, nil), reg)
	srv := server.New(st, reg, exec)
	srv.Self = "xrpc://y.example.org"

	req := &soap.Request{
		Module:   "functions",
		Method:   "getPerson",
		Arity:    2,
		Location: "http://example.org/functions.xq",
	}
	for i := 0; i < calls; i++ {
		pid := xmark.PersonID(i % maxInt(cfg.Persons, 1))
		req.Calls = append(req.Calls, []xdm.Sequence{
			{xdm.String("xmark.xml")}, {xdm.String(pid)},
		})
	}
	return &BulkExecEnv{Server: srv, Exec: exec, Body: soap.EncodeRequest(req)}, nil
}

// Run serves the bulk request once with the given worker pool size and
// returns the elapsed handling time. The response bytes are returned so
// callers can assert parallel/sequential identity.
func (env *BulkExecEnv) Run(parallelism int) (time.Duration, []byte, error) {
	env.Exec.Parallelism = parallelism
	start := time.Now()
	resp, err := env.Server.HandleXRPC(client.XRPCPath, env.Body)
	if err != nil {
		return 0, nil, err
	}
	if strings.Contains(string(resp), "Fault") {
		return 0, nil, fmt.Errorf("bulk exec returned a fault: %s", resp)
	}
	return time.Since(start), resp, nil
}

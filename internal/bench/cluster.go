package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"xrpc/internal/client"
	"xrpc/internal/cluster"
	"xrpc/internal/interp"
	"xrpc/internal/modules"
	"xrpc/internal/netsim"
	"xrpc/internal/server"
	"xrpc/internal/soap"
	"xrpc/internal/store"
	"xrpc/internal/strategies"
	"xrpc/internal/xdm"
	"xrpc/internal/xmark"
)

// ClusterBandwidth is the simulated link bandwidth of the cluster
// experiment: the ~10 MB/s effective SOAP throughput the paper measured
// on its 1 Gb/s LAN. With shipping this slow relative to CPU, the
// experiment exposes the lever sharding actually pulls: response bytes
// split across N concurrent links.
const ClusterBandwidth = 10 * 1024 * 1024

// ClusterRow is one peer-count row of the scatter-gather experiment.
type ClusterRow struct {
	Workload string
	Peers    int
	Elapsed  time.Duration
	// Verified is set when the merged response was byte-identical to
	// the single-peer response before timing started.
	Verified bool
	// CallsPerSec is bulk calls completed per second (probe workload)
	// or result MB shipped per second (scan workload).
	Throughput     float64
	ThroughputUnit string
	// BytesTotal is all bytes moved; PerShard is the received-bytes
	// split across shard peers, in shard order.
	BytesTotal int64
	PerShard   []int64
	// PeakHeapStreamed and PeakHeapBuffered are HeapAlloc high-water
	// marks (bytes) around one untimed gather: the streamed
	// shard-order merge writing the envelope straight to a sink, vs
	// the buffered collect-then-encode reference. The simulated shard
	// peers live in the same process, so the absolute numbers include
	// their documents; the comparison is the delta — the buffered
	// column grows with total response size, the streamed one does
	// not (the isolation test is TestScatterStreamBoundedMemory).
	PeakHeapStreamed uint64
	PeakHeapBuffered uint64
}

// ClusterBenchResult is the full sweep for one workload.
type ClusterBenchResult struct {
	Workload string
	Rows     []ClusterRow
}

// clusterWorkload describes one scatter-gather workload: a bulk
// request built against the shard module of §5.
type clusterWorkload struct {
	name  string
	build func(cfg xmark.Config) *client.BulkRequest
	// respBound marks the scan workload, whose throughput is reported
	// in shipped MB/s rather than calls/s.
	respBound bool
}

var clusterWorkloads = []clusterWorkload{
	{
		// Q_B3 probes: the scattered probe side of the sharded
		// semi-join. Latency-amortized: one bulk request per shard
		// carries every probe.
		name: "probe (Q_B3 semi-join)",
		build: func(cfg xmark.Config) *client.BulkRequest {
			br := &client.BulkRequest{
				ModuleURI: "functions_b",
				AtHint:    "http://example.org/b.xq",
				Func:      "Q_B3",
				Arity:     1,
			}
			for i := 0; i < cfg.Persons; i++ {
				br.Calls = append(br.Calls, []xdm.Sequence{{xdm.String(xmark.PersonID(i))}})
			}
			return br
		},
	},
	{
		// Q_B1 scan: every shard returns its auction range; the merged
		// response is the whole document in order. Bandwidth-bound:
		// each link ships 1/N of the result concurrently.
		name:      "scan (Q_B1 parallel scan)",
		respBound: true,
		build: func(cfg xmark.Config) *client.BulkRequest {
			return &client.BulkRequest{
				ModuleURI: "functions_b",
				AtHint:    "http://example.org/b.xq",
				Func:      "Q_B1",
				Arity:     0,
				Calls:     [][]xdm.Sequence{{}},
			}
		},
	},
}

// ClusterProbeRequest builds the Q_B3 probe workload (one call per
// generated person) against the §5 shard module — the request the
// probe rows of RunClusterBench scatter, exported for benchmarks that
// time the scatter path in isolation.
func ClusterProbeRequest(cfg xmark.Config) *client.BulkRequest {
	return clusterWorkloads[0].build(cfg)
}

// RunClusterBench sweeps the scatter-gather coordinator over the given
// peer counts for both cluster workloads. At every peer count the
// merged response is first verified byte-identical to a single
// unsharded peer's response; only then is the request timed (best of
// reps). Returns one result per workload.
func RunClusterBench(cfg xmark.Config, peerCounts []int, rtt time.Duration, reps int) ([]ClusterBenchResult, error) {
	if len(peerCounts) == 0 {
		peerCounts = []int{1, 2, 4, 8}
	}
	if reps < 1 {
		reps = 3
	}
	auctions := xmark.GenerateAuctions(cfg)
	reg := modules.NewRegistry()
	if err := reg.Register(strategies.FunctionsB, "http://example.org/b.xq"); err != nil {
		return nil, err
	}

	var out []ClusterBenchResult
	for _, wl := range clusterWorkloads {
		br := wl.build(cfg)
		baseline, err := clusterBaseline(reg, auctions, br, rtt)
		if err != nil {
			return nil, fmt.Errorf("cluster bench %s: baseline: %w", wl.name, err)
		}
		res := ClusterBenchResult{Workload: wl.name}
		for _, peers := range peerCounts {
			row, err := runClusterRow(reg, auctions, br, wl, peers, rtt, reps, baseline)
			if err != nil {
				return nil, fmt.Errorf("cluster bench %s peers=%d: %w", wl.name, peers, err)
			}
			res.Rows = append(res.Rows, *row)
		}
		out = append(out, res)
	}
	return out, nil
}

// clusterBaseline executes the request against one peer holding the
// unsharded document (same simulated network) and returns the encoded
// result, the identity reference for every peer count.
func clusterBaseline(reg *modules.Registry, auctions string, br *client.BulkRequest, rtt time.Duration) ([]byte, error) {
	net := netsim.NewNetwork(rtt, ClusterBandwidth)
	st := store.New()
	if err := st.LoadXML("auctions.xml", auctions); err != nil {
		return nil, err
	}
	srv := server.New(st, reg, server.NewNativeExecutor(interp.New(st, reg, nil), reg))
	net.Register("xrpc://single", srv)
	res, err := client.New(net).CallBulk("xrpc://single", br)
	if err != nil {
		return nil, err
	}
	return encodeClusterResults(br, res), nil
}

func runClusterRow(reg *modules.Registry, auctions string, br *client.BulkRequest,
	wl clusterWorkload, peers int, rtt time.Duration, reps int, baseline []byte) (*ClusterRow, error) {

	net := netsim.NewNetwork(rtt, ClusterBandwidth)
	dep, err := cluster.Deploy(net, reg, map[string]string{"auctions.xml": auctions},
		cluster.DeployConfig{Shards: peers})
	if err != nil {
		return nil, err
	}
	co := dep.Coordinator()

	// verification before timing: the merged response must be
	// byte-identical to the unsharded single-peer response
	merged, err := co.Scatter(br)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(encodeClusterResults(br, merged), baseline) {
		return nil, fmt.Errorf("merged response differs from unsharded baseline")
	}

	// warm-up above primed the function caches; now time best-of-reps
	var best time.Duration
	for r := 0; r < reps; r++ {
		start := time.Now()
		if _, err := co.Scatter(br); err != nil {
			return nil, err
		}
		d := time.Since(start)
		if r == 0 || d < best {
			best = d
		}
	}

	net.ResetStats()
	if _, err := co.Scatter(br); err != nil {
		return nil, err
	}
	row := &ClusterRow{
		Workload:   wl.name,
		Peers:      peers,
		Elapsed:    best,
		Verified:   true,
		BytesTotal: net.Stats.BytesSent.Load() + net.Stats.BytesReceived.Load(),
	}
	var respBytes int64
	for _, uri := range dep.ShardURIs() {
		_, _, recv := net.PeerStats(uri)
		row.PerShard = append(row.PerShard, recv)
		respBytes += recv
	}
	if wl.respBound {
		row.Throughput = float64(respBytes) / (1024 * 1024) / best.Seconds()
		row.ThroughputUnit = "MB/s"
	} else {
		row.Throughput = float64(len(br.Calls)) / best.Seconds()
		row.ThroughputUnit = "calls/s"
	}

	// peak-heap comparison, untimed: the streamed merge writes the
	// merged envelope straight into a sink, the buffered reference
	// collects every shard response and encodes the concatenation —
	// what the coordinator held in memory before the streaming gather
	var memErr error
	row.PeakHeapStreamed = heapHighWater(func() {
		memErr = co.ScatterStream(br, io.Discard)
	})
	if memErr != nil {
		return nil, memErr
	}
	row.PeakHeapBuffered = heapHighWater(func() {
		var res []xdm.Sequence
		if res, memErr = co.ScatterBuffered(br); memErr == nil {
			encodeClusterResults(br, res)
		}
	})
	if memErr != nil {
		return nil, memErr
	}
	return row, nil
}

func encodeClusterResults(br *client.BulkRequest, res []xdm.Sequence) []byte {
	return soap.EncodeResponse(&soap.Response{
		Module: br.ModuleURI, Method: br.Func, Results: res,
	})
}

// FormatClusterBench renders the sweep, with the per-shard byte split
// that shows the partitioner at work and the streamed-vs-buffered peak
// heap comparison that shows the bounded gather at work.
func FormatClusterBench(results []ClusterBenchResult) string {
	var b strings.Builder
	for _, res := range results {
		fmt.Fprintf(&b, "%s\n", res.Workload)
		fmt.Fprintf(&b, "  %-6s %10s %12s %12s %18s  %s\n",
			"peers", "msec", "throughput", "bytes", "peak heap s/b MiB", "response bytes per shard")
		for _, r := range res.Rows {
			shards := make([]string, len(r.PerShard))
			for i, s := range r.PerShard {
				shards[i] = fmt.Sprint(s)
			}
			fmt.Fprintf(&b, "  %-6d %10.2f %7.1f %s %12d %8.1f/%-8.1f  [%s]\n",
				r.Peers, ms(r.Elapsed), r.Throughput, r.ThroughputUnit,
				r.BytesTotal,
				float64(r.PeakHeapStreamed)/(1<<20), float64(r.PeakHeapBuffered)/(1<<20),
				strings.Join(shards, " "))
		}
	}
	return b.String()
}

// clusterScatterJSONRow is the snapshot shape of one scatter-sweep row.
type clusterScatterJSONRow struct {
	Workload         string  `json:"workload"`
	Peers            int     `json:"peers"`
	Millis           float64 `json:"ms"`
	Throughput       float64 `json:"throughput"`
	ThroughputUnit   string  `json:"throughput_unit"`
	BytesTotal       int64   `json:"bytes_total"`
	PerShard         []int64 `json:"per_shard"`
	PeakHeapStreamed uint64  `json:"peak_heap_streamed"`
	PeakHeapBuffered uint64  `json:"peak_heap_buffered"`
	Verified         bool    `json:"verified"`
}

// ClusterSnapshotJSON renders the committed BENCH_cluster.json: the
// scatter-gather sweep (including the streamed-vs-buffered peak-heap
// columns) and the routed/broadcast update rows, side by side.
func ClusterSnapshotJSON(scatter []ClusterBenchResult, update []ClusterUpdateRow) ([]byte, error) {
	var rows []clusterScatterJSONRow
	for _, res := range scatter {
		for _, r := range res.Rows {
			rows = append(rows, clusterScatterJSONRow{
				Workload:         r.Workload,
				Peers:            r.Peers,
				Millis:           ms(r.Elapsed),
				Throughput:       r.Throughput,
				ThroughputUnit:   r.ThroughputUnit,
				BytesTotal:       r.BytesTotal,
				PerShard:         r.PerShard,
				PeakHeapStreamed: r.PeakHeapStreamed,
				PeakHeapBuffered: r.PeakHeapBuffered,
				Verified:         r.Verified,
			})
		}
	}
	return json.MarshalIndent(struct {
		Experiment string                  `json:"experiment"`
		Scatter    []clusterScatterJSONRow `json:"scatter"`
		Update     []ClusterUpdateRow      `json:"update"`
	}{
		Experiment: "cluster: streamed scatter-gather sweep + routed vs broadcast writes",
		Scatter:    rows,
		Update:     update,
	}, "", "  ")
}

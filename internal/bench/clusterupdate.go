package bench

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"xrpc/internal/client"
	"xrpc/internal/cluster"
	"xrpc/internal/interp"
	"xrpc/internal/modules"
	"xrpc/internal/netsim"
	"xrpc/internal/server"
	"xrpc/internal/store"
	"xrpc/internal/txn"
	"xrpc/internal/xdm"
	"xrpc/internal/xmark"
)

// FunctionsP is the routed-cluster workload module: a point read and an
// updating function, both keyed by the person id — the partition key of
// persons.xml. The updating body is total (an empty match produces an
// empty pending update list), so broadcasting it is semantically legal,
// just wasteful; that is exactly the routed-vs-broadcast comparison the
// cluster-update experiment times.
const FunctionsP = `
module namespace p = "functions_p";
declare function p:getPerson($pid as xs:string) as node()*
{ doc("persons.xml")//person[@id=$pid] };
declare updating function p:setCity($pid as xs:string, $city as xs:string)
{ for $c in doc("persons.xml")//person[@id=$pid]/address/city
  return replace value of node $c with $city };`

// PersonsPath is the partitioned container of persons.xml.
const PersonsPath = "/site/people/person"

// PersonRoutes declares the partition keys of the FunctionsP functions.
func PersonRoutes() []cluster.RouteSpec {
	var out []cluster.RouteSpec
	for _, fn := range []string{"getPerson", "setCity"} {
		out = append(out, cluster.RouteSpec{
			ModuleURI: "functions_p", Func: fn, KeyArg: 0,
			Doc: "persons.xml", Path: PersonsPath,
		})
	}
	return out
}

// ClusterUpdateRow is one (workload, mode, peer-count) measurement of
// the cluster-update experiment.
type ClusterUpdateRow struct {
	Workload string  `json:"workload"` // "update xN" or "probe xN"
	Mode     string  `json:"mode"`     // routed/broadcast (writes), pruned/full (probes)
	Peers    int     `json:"peers"`
	Millis   float64 `json:"ms"`
	// Requests is the number of network requests one operation costs
	// (incl. 2PC verbs for writes).
	Requests int64 `json:"requests"`
	// ServedCalls is the number of function applications the peers
	// executed for one operation — the server-side work routing avoids.
	ServedCalls int64 `json:"served_calls"`
	// Verified is set when the mode's results were checked against the
	// unsharded single-peer baseline before timing.
	Verified bool `json:"verified"`
}

// clusterUpdateEnv is one deployed persons cluster plus its workloads.
type clusterUpdateEnv struct {
	net *netsim.Network
	dep *cluster.Deployment
	co  *cluster.Coordinator // routed/pruned (routes registered)
}

func newClusterUpdateEnv(xml string, shards int, routes bool, rtt time.Duration) (*clusterUpdateEnv, error) {
	reg := modules.NewRegistry()
	if err := reg.Register(FunctionsP, "http://example.org/p.xq"); err != nil {
		return nil, err
	}
	cfg := cluster.DeployConfig{Shards: shards}
	if routes {
		cfg.Routes = PersonRoutes()
	}
	net := netsim.NewNetwork(rtt, ClusterBandwidth)
	dep, err := cluster.Deploy(net, reg, map[string]string{"persons.xml": xml}, cfg)
	if err != nil {
		return nil, err
	}
	co := dep.Coordinator()
	if !routes {
		// the broadcast/full baselines measure the pre-planner cluster: a
		// plain coordinator, no routes and no self-driving planner (the
		// deployment coordinator would derive the routes and prune anyway)
		co = cluster.NewCoordinator(dep.Table, client.New(net))
	}
	return &clusterUpdateEnv{net: net, dep: dep, co: co}, nil
}

func personKeys(persons, n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = xmark.PersonID(i * persons / n)
	}
	return keys
}

func probeRequestP(keys []string) *client.BulkRequest {
	br := &client.BulkRequest{
		ModuleURI: "functions_p",
		AtHint:    "http://example.org/p.xq",
		Func:      "getPerson",
		Arity:     1,
	}
	for _, k := range keys {
		br.Calls = append(br.Calls, []xdm.Sequence{{xdm.String(k)}})
	}
	return br
}

func updateRequestP(keys []string, city string) *client.BulkRequest {
	br := &client.BulkRequest{
		ModuleURI: "functions_p",
		AtHint:    "http://example.org/p.xq",
		Func:      "setCity",
		Arity:     2,
		Updating:  true,
	}
	for _, k := range keys {
		br.Calls = append(br.Calls, []xdm.Sequence{{xdm.String(k)}, {xdm.String(city)}})
	}
	return br
}

// broadcastUpdate is the pre-range-metadata write path a cluster would
// be left with: ship every updating call to every shard primary under
// one queryID (non-owning shards evaluate it to an empty PUL) and run
// 2PC over all primaries.
func broadcastUpdate(env *clusterUpdateEnv, br *client.BulkRequest) error {
	txCl := client.New(env.net)
	txCl.QueryID = txn.NewQueryID("xrpc://bench-coordinator", 30)
	primaries := make([]string, env.dep.Table.NumShards())
	for s := range primaries {
		primaries[s] = env.dep.Table.Primary(s)
	}
	for _, p := range primaries {
		if _, err := txCl.CallBulk(p, br); err != nil {
			tc := &txn.Coordinator{Client: txCl}
			tc.AbortAll(primaries)
			return err
		}
	}
	return (&txn.Coordinator{Client: txCl}).CommitAll(primaries)
}

// servedCalls sums the function applications executed across all peers.
func (env *clusterUpdateEnv) servedCalls() int64 {
	var total int64
	for s := range env.dep.Servers {
		for _, srv := range env.dep.Servers[s] {
			total += srv.ServedCalls
		}
	}
	return total
}

// unshardedBaseline applies upd (when non-nil) to a single peer holding
// the whole document and returns the encoded probe response.
func unshardedBaseline(xml string, upd, probe *client.BulkRequest, rtt time.Duration) ([]byte, error) {
	reg := modules.NewRegistry()
	if err := reg.Register(FunctionsP, "http://example.org/p.xq"); err != nil {
		return nil, err
	}
	net := netsim.NewNetwork(rtt, ClusterBandwidth)
	st := store.New()
	if err := st.LoadXML("persons.xml", xml); err != nil {
		return nil, err
	}
	srv := server.New(st, reg, server.NewNativeExecutor(interp.New(st, reg, nil), reg))
	net.Register("xrpc://single", srv)
	cl := client.New(net)
	if upd != nil {
		if _, err := cl.CallBulk("xrpc://single", upd); err != nil {
			return nil, err
		}
	}
	res, err := cl.CallBulk("xrpc://single", probe)
	if err != nil {
		return nil, err
	}
	return encodeClusterResults(probe, res), nil
}

// RunClusterUpdateBench measures the range-aware cluster against its
// broadcast predecessor over the given peer counts:
//
//   - writes: a routed updating bulk (each call travels to its owning
//     shard's primary, 2PC over the touched primaries) vs the broadcast
//     equivalent (every call to every primary, 2PC over all);
//   - probes: a key-predicate read bulk with predicate pruning vs the
//     full scatter.
//
// Before any timing, each mode's post-update probe response is verified
// byte-identical to an unsharded single-peer execution of the same
// calls.
func RunClusterUpdateBench(cfg xmark.Config, peerCounts []int, rtt time.Duration, reps int) ([]ClusterUpdateRow, error) {
	if len(peerCounts) == 0 {
		peerCounts = []int{2, 4, 8}
	}
	if reps < 1 {
		reps = 3
	}
	xml := xmark.GeneratePersons(cfg)
	nKeys := 8
	if cfg.Persons < nKeys {
		nKeys = cfg.Persons
	}
	spread := personKeys(cfg.Persons, nKeys)
	single := spread[:1]

	var rows []ClusterUpdateRow
	for _, wl := range []struct {
		name string
		keys []string
	}{
		{fmt.Sprintf("update x%d", nKeys), spread},
		{"update x1", single},
	} {
		upd := updateRequestP(wl.keys, "Benchtown")
		probe := probeRequestP(wl.keys)
		baseline, err := unshardedBaseline(xml, upd, probe, rtt)
		if err != nil {
			return nil, err
		}
		for _, peers := range peerCounts {
			for _, mode := range []string{"routed", "broadcast"} {
				env, err := newClusterUpdateEnv(xml, peers, mode == "routed", rtt)
				if err != nil {
					return nil, err
				}
				run := func() error {
					if mode == "routed" {
						_, err := env.co.Update(upd)
						return err
					}
					return broadcastUpdate(env, upd)
				}
				// identity before timing: the committed state must probe
				// byte-identically to the unsharded baseline
				if err := run(); err != nil {
					return nil, fmt.Errorf("cluster-update %s %s peers=%d: %w", wl.name, mode, peers, err)
				}
				got, err := env.co.Scatter(probe)
				if err != nil {
					return nil, err
				}
				if !bytes.Equal(encodeClusterResults(probe, got), baseline) {
					return nil, fmt.Errorf("cluster-update %s %s peers=%d: state differs from unsharded baseline", wl.name, mode, peers)
				}
				row, err := timeClusterOp(env, wl.name, mode, peers, reps, run)
				if err != nil {
					return nil, err
				}
				rows = append(rows, *row)
			}
		}
	}

	// probes: pruned vs full scatter of the same key-predicate bulk
	probe := probeRequestP(spread)
	baseline, err := unshardedBaseline(xml, nil, probe, rtt)
	if err != nil {
		return nil, err
	}
	for _, peers := range peerCounts {
		for _, mode := range []string{"pruned", "full"} {
			env, err := newClusterUpdateEnv(xml, peers, mode == "pruned", rtt)
			if err != nil {
				return nil, err
			}
			run := func() error {
				res, err := env.co.Scatter(probe)
				if err != nil {
					return err
				}
				if !bytes.Equal(encodeClusterResults(probe, res), baseline) {
					return fmt.Errorf("probe response differs from unsharded baseline")
				}
				return nil
			}
			if err := run(); err != nil { // identity + cache warm-up
				return nil, fmt.Errorf("cluster-update probe %s peers=%d: %w", mode, peers, err)
			}
			row, err := timeClusterOp(env, fmt.Sprintf("probe x%d", nKeys), mode, peers, reps, run)
			if err != nil {
				return nil, err
			}
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

// timeClusterOp times run (best of reps) and attributes the per-op
// request and served-call counts.
func timeClusterOp(env *clusterUpdateEnv, workload, mode string, peers, reps int, run func() error) (*ClusterUpdateRow, error) {
	var best time.Duration
	for r := 0; r < reps; r++ {
		start := time.Now()
		if err := run(); err != nil {
			return nil, err
		}
		d := time.Since(start)
		if r == 0 || d < best {
			best = d
		}
	}
	env.net.ResetStats()
	served0 := env.servedCalls()
	if err := run(); err != nil {
		return nil, err
	}
	return &ClusterUpdateRow{
		Workload:    workload,
		Mode:        mode,
		Peers:       peers,
		Millis:      ms(best),
		Requests:    env.net.Stats.Requests.Load(),
		ServedCalls: env.servedCalls() - served0,
		Verified:    true,
	}, nil
}

// FormatClusterUpdateBench renders the sweep grouped by workload.
func FormatClusterUpdateBench(rows []ClusterUpdateRow) string {
	var b strings.Builder
	last := ""
	for _, r := range rows {
		if r.Workload != last {
			fmt.Fprintf(&b, "%s\n  %-10s %-6s %10s %10s %13s\n",
				r.Workload, "mode", "peers", "msec", "requests", "served calls")
			last = r.Workload
		}
		fmt.Fprintf(&b, "  %-10s %-6d %10.2f %10d %13d\n",
			r.Mode, r.Peers, r.Millis, r.Requests, r.ServedCalls)
	}
	return b.String()
}

package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"xrpc/internal/client"
	"xrpc/internal/cluster"
	"xrpc/internal/modules"
	"xrpc/internal/netsim"
	"xrpc/internal/xmark"
)

// CacheRow is one peer-count row of the caching experiment: the same
// key-predicate probe bulk timed cold (fresh deployment, every tier
// empty), warm (every tier populated, coordinator revalidates with one
// shardInfo probe round), and immediately after a routed single-shard
// commit (the version fence forces exactly the touched shard's work to
// be redone).
type CacheRow struct {
	Peers int `json:"peers"`
	// Millis per request, best of reps (cold is single-shot by nature).
	ColdMillis      float64 `json:"cold_ms"`
	WarmMillis      float64 `json:"warm_ms"`
	PostWriteMillis float64 `json:"post_write_ms"`
	// WarmSpeedup is cold/warm.
	WarmSpeedup float64 `json:"warm_speedup"`
	// Tier-2 coordinator cache counters after the row's runs.
	ResultHits        int64 `json:"result_hits"`
	ResultPartialHits int64 `json:"result_partial_hits"`
	ResultMisses      int64 `json:"result_misses"`
	// Tier-1 hit rate summed across shard response caches.
	RespHits   int64 `json:"resp_hits"`
	RespMisses int64 `json:"resp_misses"`
	// Verified is set when every timed response (cold, warm, and
	// post-write) was byte-compared against an unsharded single-peer
	// execution of the same calls.
	Verified bool `json:"verified"`
}

// newCacheEnv deploys a persons cluster with all cache tiers enabled.
// Only the updating function is routed: reads broadcast to every shard,
// so the coordinator retains per-shard results and a post-write request
// refreshes just the shard the commit touched (a Tier-2 partial hit).
func newCacheEnv(xml string, shards int, rtt time.Duration) (*clusterUpdateEnv, error) {
	reg := modules.NewRegistry()
	if err := reg.Register(FunctionsP, "http://example.org/p.xq"); err != nil {
		return nil, err
	}
	net := netsim.NewNetwork(rtt, ClusterBandwidth)
	dep, err := cluster.Deploy(net, reg, map[string]string{"persons.xml": xml}, cluster.DeployConfig{
		Shards: shards,
		Routes: []cluster.RouteSpec{{
			ModuleURI: "functions_p", Func: "setCity", KeyArg: 0,
			Doc: "persons.xml", Path: PersonsPath,
		}},
		RespCacheBytes:   32 << 20,
		ResultCacheBytes: 32 << 20,
	})
	if err != nil {
		return nil, err
	}
	return &clusterUpdateEnv{net: net, dep: dep, co: dep.Coordinator()}, nil
}

// RunCacheBench sweeps the three-tier cache over the given peer counts.
// Per peer count it deploys a fresh cached cluster and measures one
// key-predicate probe bulk three ways:
//
//   - cold: the very first request — compiles plans, executes on every
//     owning shard, populates all tiers (timed, then its bytes verified
//     against the unsharded baseline);
//   - warm: the same request repeated — the coordinator revalidates its
//     merged entry with one shardInfo probe round and serves from
//     memory (best of reps, every response verified);
//   - post-write: a routed single-shard commit steps one shard's
//     version; the next request re-executes only what the fence
//     invalidated (verified against the post-write baseline).
func RunCacheBench(cfg xmark.Config, peerCounts []int, rtt time.Duration, reps int) ([]CacheRow, error) {
	if len(peerCounts) == 0 {
		peerCounts = []int{1, 2, 4, 8}
	}
	if reps < 1 {
		reps = 3
	}
	xml := xmark.GeneratePersons(cfg)
	nKeys := 32
	if cfg.Persons < nKeys {
		nKeys = cfg.Persons
	}
	keys := personKeys(cfg.Persons, nKeys)
	probe := probeRequestP(keys)
	upd := updateRequestP(keys[:1], "Cachetown")

	baseline, err := unshardedBaseline(xml, nil, probe, rtt)
	if err != nil {
		return nil, err
	}
	postBaseline, err := unshardedBaseline(xml, upd, probe, rtt)
	if err != nil {
		return nil, err
	}

	var rows []CacheRow
	for _, peers := range peerCounts {
		row, err := runCacheRow(xml, probe, upd, peers, rtt, reps, baseline, postBaseline)
		if err != nil {
			return nil, fmt.Errorf("cache bench peers=%d: %w", peers, err)
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func runCacheRow(xml string, probe, upd *client.BulkRequest, peers int, rtt time.Duration,
	reps int, baseline, postBaseline []byte) (*CacheRow, error) {

	env, err := newCacheEnv(xml, peers, rtt)
	if err != nil {
		return nil, err
	}
	// timedScatter times the scatter alone; the returned response is
	// byte-verified against the baseline outside the timed region
	timedScatter := func(label string, want []byte) (time.Duration, error) {
		start := time.Now()
		res, err := env.co.Scatter(probe)
		if err != nil {
			return 0, err
		}
		d := time.Since(start)
		if !bytes.Equal(encodeClusterResults(probe, res), want) {
			return 0, fmt.Errorf("%s response differs from unsharded baseline", label)
		}
		return d, nil
	}

	// cold is inherently single-shot: the first request on the fresh
	// deployment compiles, executes, and populates every tier
	cold, err := timedScatter("cold", baseline)
	if err != nil {
		return nil, err
	}

	// warm: every repetition must match the baseline; best of reps
	var warm time.Duration
	for r := 0; r < reps; r++ {
		d, err := timedScatter("warm", baseline)
		if err != nil {
			return nil, err
		}
		if r == 0 || d < warm {
			warm = d
		}
	}

	// routed single-shard commit, then the post-invalidation request
	if _, err := env.co.Update(upd); err != nil {
		return nil, err
	}
	postWrite, err := timedScatter("post-write", postBaseline)
	if err != nil {
		return nil, err
	}

	// Tier-1 in isolation: a second coordinator (another API node, no
	// merged-result cache of its own) broadcasts the same calls; every
	// shard answers from its response cache without re-executing
	fresh := cluster.NewCoordinator(env.dep.Table, client.New(env.net))
	res, err := fresh.Scatter(probe)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(encodeClusterResults(probe, res), postBaseline) {
		return nil, fmt.Errorf("tier-1 response differs from unsharded baseline")
	}

	row := &CacheRow{
		Peers:           peers,
		ColdMillis:      ms(cold),
		WarmMillis:      ms(warm),
		PostWriteMillis: ms(postWrite),
		Verified:        true,
	}
	if warm > 0 {
		row.WarmSpeedup = float64(cold) / float64(warm)
	}
	rc := env.co.ResultCache.Stats()
	row.ResultHits, row.ResultPartialHits, row.ResultMisses = rc.Hits, rc.PartialHits, rc.Misses
	for s := range env.dep.Servers {
		for _, srv := range env.dep.Servers[s] {
			st := srv.RespCache.Stats()
			row.RespHits += st.Hits
			row.RespMisses += st.Misses
		}
	}
	return row, nil
}

// FormatCacheBench renders the sweep.
func FormatCacheBench(rows []CacheRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %-6s %10s %10s %10s %9s %16s %13s\n",
		"peers", "cold ms", "warm ms", "postwr ms", "speedup", "t2 h/p/m", "t1 hit/miss")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-6d %10.2f %10.2f %10.2f %8.1fx %10d/%d/%d %9d/%d\n",
			r.Peers, r.ColdMillis, r.WarmMillis, r.PostWriteMillis, r.WarmSpeedup,
			r.ResultHits, r.ResultPartialHits, r.ResultMisses, r.RespHits, r.RespMisses)
	}
	return b.String()
}

// CacheSnapshotJSON renders the committed BENCH_cache.json.
func CacheSnapshotJSON(rows []CacheRow) ([]byte, error) {
	return json.MarshalIndent(struct {
		Experiment string     `json:"experiment"`
		Rows       []CacheRow `json:"rows"`
	}{
		Experiment: "cache: cold vs warm vs post-invalidation, three version-fenced tiers",
		Rows:       rows,
	}, "", "  ")
}

package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"xrpc/internal/client"
	"xrpc/internal/cluster"
	"xrpc/internal/interp"
	"xrpc/internal/modules"
	"xrpc/internal/netsim"
	"xrpc/internal/server"
	"xrpc/internal/store"
	"xrpc/internal/strategies"
	"xrpc/internal/xdm"
	"xrpc/internal/xmark"
)

// The planner experiment measures the self-driving cluster against its
// static predecessor with ZERO hand-written RouteSpecs: every route the
// "planner" rows use is derived by the compiler from the module bodies,
// while the "broadcast" rows run a plain coordinator with neither
// routes nor planner. Every mode's response is verified byte-identical
// to an unsharded single-peer execution before any timing.

// FunctionsI is the range-scan module of the planner experiment: items
// keyed by a fixed-width (hence codepoint-ordered) id, scanned with a
// range predicate the planner can prune against the shard key bounds.
const FunctionsI = `
module namespace i = "functions_i";
declare function i:itemsFrom($k as xs:string) as node()*
{ doc("items.xml")//item[@id >= $k] };`

// benchItemsXML generates n items with fixed-width ids ("i00042"), so
// the partition keys are strictly increasing in codepoint order too
// (KeyRange.Lex) and derived range predicates may prune.
func benchItemsXML(n int) string {
	var b strings.Builder
	b.WriteString("<site><items>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `<item id="%s"><seq>%d</seq></item>`, benchItemID(i), i)
	}
	b.WriteString("</items></site>")
	return b.String()
}

func benchItemID(i int) string { return fmt.Sprintf("i%05d", i) }

// PlannerRow is one (workload, mode, peer-count) measurement of the
// planner experiment.
type PlannerRow struct {
	Workload string  `json:"workload"`
	Mode     string  `json:"mode"` // "planner" | "broadcast" | semi-join sides
	Peers    int     `json:"peers"`
	Millis   float64 `json:"ms"`
	// Requests is the network request count of one operation: flat in
	// peer count for planner-routed point work, linear for broadcast.
	Requests int64 `json:"requests"`
	// ServedCalls is the number of function applications the peers
	// executed (0 where the workload does not expose it).
	ServedCalls int64 `json:"served_calls"`
	// Strategy records the planner's decision where one was made
	// ("routed", "ship-keys", "ship-data").
	Strategy string `json:"strategy,omitempty"`
	// Verified is set when the mode's response was byte-compared against
	// the unsharded single-peer baseline before timing.
	Verified bool `json:"verified"`
}

// plannerEnv is one zero-spec deployment (persons.xml + items.xml) with
// either the self-driving coordinator or the plain broadcast one.
type plannerEnv struct {
	net *netsim.Network
	dep *cluster.Deployment
	co  *cluster.Coordinator
}

func newPlannerEnv(personsXML, itemsXML string, shards int, selfDriving bool, rtt time.Duration) (*plannerEnv, error) {
	reg := modules.NewRegistry()
	if err := reg.Register(FunctionsP, "http://example.org/p.xq"); err != nil {
		return nil, err
	}
	if err := reg.Register(FunctionsI, "http://example.org/i.xq"); err != nil {
		return nil, err
	}
	net := netsim.NewNetwork(rtt, ClusterBandwidth)
	docs := map[string]string{"persons.xml": personsXML, "items.xml": itemsXML}
	dep, err := cluster.Deploy(net, reg, docs, cluster.DeployConfig{Shards: shards})
	if err != nil {
		return nil, err
	}
	co := dep.Coordinator() // planner attached, zero hand-written specs
	if !selfDriving {
		co = cluster.NewCoordinator(dep.Table, client.New(net))
	}
	return &plannerEnv{net: net, dep: dep, co: co}, nil
}

func (env *plannerEnv) servedCalls() int64 {
	var total int64
	for s := range env.dep.Servers {
		for _, srv := range env.dep.Servers[s] {
			total += srv.ServedCalls
		}
	}
	return total
}

// plannerBaseline executes the request against one peer holding both
// unsharded documents.
func plannerBaseline(personsXML, itemsXML string, br *client.BulkRequest, rtt time.Duration) ([]byte, error) {
	reg := modules.NewRegistry()
	if err := reg.Register(FunctionsP, "http://example.org/p.xq"); err != nil {
		return nil, err
	}
	if err := reg.Register(FunctionsI, "http://example.org/i.xq"); err != nil {
		return nil, err
	}
	net := netsim.NewNetwork(rtt, ClusterBandwidth)
	st := store.New()
	if err := st.LoadXML("persons.xml", personsXML); err != nil {
		return nil, err
	}
	if err := st.LoadXML("items.xml", itemsXML); err != nil {
		return nil, err
	}
	srv := server.New(st, reg, server.NewNativeExecutor(interp.New(st, reg, nil), reg))
	net.Register("xrpc://single", srv)
	res, err := client.New(net).CallBulk("xrpc://single", br)
	if err != nil {
		return nil, err
	}
	return encodeClusterResults(br, res), nil
}

func itemsScanRequest(key string) *client.BulkRequest {
	return &client.BulkRequest{
		ModuleURI: "functions_i",
		AtHint:    "http://example.org/i.xq",
		Func:      "itemsFrom",
		Arity:     1,
		Calls:     [][]xdm.Sequence{{{xdm.String(key)}}},
	}
}

// RunPlannerBench sweeps the self-driving planner over the given peer
// counts:
//
//   - probe x1 / probe xN: keyed getPerson bulks with no registered
//     RouteSpec — the planner derives the route, so one probe costs one
//     server call instead of one per peer;
//   - range scan: a derived @id >= $k predicate pruned against
//     codepoint-ordered shard key bounds;
//   - semi-join: the sharded distributed semi-join shipping keys, data,
//     and whichever side the cost model measures as smaller.
//
// Each mode's response is verified byte-identical to the unsharded (or
// keys-side) baseline before timing.
func RunPlannerBench(cfg xmark.Config, peerCounts []int, rtt time.Duration, reps int) ([]PlannerRow, error) {
	if len(peerCounts) == 0 {
		peerCounts = []int{1, 2, 4, 8}
	}
	if reps < 1 {
		reps = 3
	}
	personsXML := xmark.GeneratePersons(cfg)
	nItems := 4 * cfg.Persons
	if nItems < 64 {
		nItems = 64
	}
	itemsXML := benchItemsXML(nItems)

	nKeys := 8
	if cfg.Persons < nKeys {
		nKeys = cfg.Persons
	}
	workloads := []struct {
		name     string
		br       *client.BulkRequest
		strategy string
	}{
		{"probe x1", probeRequestP(personKeys(cfg.Persons, 1)), "routed"},
		{fmt.Sprintf("probe x%d", nKeys), probeRequestP(personKeys(cfg.Persons, nKeys)), "routed"},
		// the scan key sits at 7/8 of the id space: only the last shard's
		// key bounds can satisfy @id >= $k at every peer count
		{"range scan", itemsScanRequest(benchItemID(nItems * 7 / 8)), "routed"},
	}

	var rows []PlannerRow
	for _, wl := range workloads {
		baseline, err := plannerBaseline(personsXML, itemsXML, wl.br, rtt)
		if err != nil {
			return nil, fmt.Errorf("planner bench %s: baseline: %w", wl.name, err)
		}
		for _, peers := range peerCounts {
			for _, mode := range []string{"planner", "broadcast"} {
				env, err := newPlannerEnv(personsXML, itemsXML, peers, mode == "planner", rtt)
				if err != nil {
					return nil, err
				}
				run := func() error {
					res, err := env.co.Scatter(wl.br)
					if err != nil {
						return err
					}
					if !bytes.Equal(encodeClusterResults(wl.br, res), baseline) {
						return fmt.Errorf("response differs from unsharded baseline")
					}
					return nil
				}
				if err := run(); err != nil { // identity before timing
					return nil, fmt.Errorf("planner bench %s %s peers=%d: %w", wl.name, mode, peers, err)
				}
				row, err := timePlannerOp(env, wl.name, mode, peers, reps, run)
				if err != nil {
					return nil, err
				}
				if mode == "planner" {
					row.Strategy = wl.strategy
				}
				rows = append(rows, *row)
			}
		}
	}

	semi, err := runPlannerSemiJoin(cfg, peerCounts, rtt)
	if err != nil {
		return nil, err
	}
	return append(rows, semi...), nil
}

// runPlannerSemiJoin sweeps the sharded semi-join over the peer counts,
// shipping keys, shipping data, and letting the cost model choose; the
// three results must serialize identically before their timings count.
func runPlannerSemiJoin(cfg xmark.Config, peerCounts []int, rtt time.Duration) ([]PlannerRow, error) {
	var rows []PlannerRow
	for _, peers := range peerCounts {
		env, err := strategies.NewShardedEnv(cfg, peers, 1, netsim.NewNetwork(rtt, ClusterBandwidth))
		if err != nil {
			return nil, err
		}
		keysRes, keysSeq, err := env.RunSemiJoin()
		if err != nil {
			return nil, fmt.Errorf("semi-join peers=%d ship-keys: %w", peers, err)
		}
		want := xdm.SerializeSequence(keysSeq)
		dataRes, dataSeq, err := env.RunSemiJoinData()
		if err != nil {
			return nil, fmt.Errorf("semi-join peers=%d ship-data: %w", peers, err)
		}
		if xdm.SerializeSequence(dataSeq) != want {
			return nil, fmt.Errorf("semi-join peers=%d: data-side result differs from keys side", peers)
		}
		autoRes, autoSeq, choice, err := env.RunSemiJoinAuto()
		if err != nil {
			return nil, fmt.Errorf("semi-join peers=%d auto: %w", peers, err)
		}
		if xdm.SerializeSequence(autoSeq) != want {
			return nil, fmt.Errorf("semi-join peers=%d: auto result differs from keys side", peers)
		}
		chosen := "ship-data"
		if choice.ShipKeys {
			chosen = "ship-keys"
		}
		rows = append(rows,
			PlannerRow{Workload: "semi-join", Mode: "ship-keys", Peers: peers,
				Millis: ms(keysRes.Total), Requests: keysRes.Requests, Verified: true},
			PlannerRow{Workload: "semi-join", Mode: "ship-data", Peers: peers,
				Millis: ms(dataRes.Total), Requests: dataRes.Requests, Verified: true},
			PlannerRow{Workload: "semi-join", Mode: "auto", Peers: peers,
				Millis: ms(autoRes.Total), Requests: autoRes.Requests,
				Strategy: chosen, Verified: true},
		)
	}
	return rows, nil
}

// timePlannerOp times run (best of reps) and attributes per-op request
// and served-call counts from a final instrumented run.
func timePlannerOp(env *plannerEnv, workload, mode string, peers, reps int, run func() error) (*PlannerRow, error) {
	var best time.Duration
	for r := 0; r < reps; r++ {
		start := time.Now()
		if err := run(); err != nil {
			return nil, err
		}
		d := time.Since(start)
		if r == 0 || d < best {
			best = d
		}
	}
	env.net.ResetStats()
	served0 := env.servedCalls()
	if err := run(); err != nil {
		return nil, err
	}
	return &PlannerRow{
		Workload:    workload,
		Mode:        mode,
		Peers:       peers,
		Millis:      ms(best),
		Requests:    env.net.Stats.Requests.Load(),
		ServedCalls: env.servedCalls() - served0,
		Verified:    true,
	}, nil
}

// FormatPlannerBench renders the sweep grouped by workload.
func FormatPlannerBench(rows []PlannerRow) string {
	var b strings.Builder
	last := ""
	for _, r := range rows {
		if r.Workload != last {
			fmt.Fprintf(&b, "%s\n  %-10s %-6s %10s %10s %13s %10s\n",
				r.Workload, "mode", "peers", "msec", "requests", "served calls", "strategy")
			last = r.Workload
		}
		fmt.Fprintf(&b, "  %-10s %-6d %10.2f %10d %13d %10s\n",
			r.Mode, r.Peers, r.Millis, r.Requests, r.ServedCalls, r.Strategy)
	}
	return b.String()
}

// PlannerSnapshotJSON renders the committed BENCH_planner.json.
func PlannerSnapshotJSON(rows []PlannerRow) ([]byte, error) {
	return json.MarshalIndent(struct {
		Experiment string       `json:"experiment"`
		Rows       []PlannerRow `json:"rows"`
	}{
		Experiment: "planner: compiler-derived routes + cost-based strategies vs static broadcast, zero hand-written RouteSpecs",
		Rows:       rows,
	}, "", "  ")
}

package bench

import (
	"runtime"
	"sync/atomic"
	"time"
)

// heapHighWater runs f and returns the HeapAlloc high-water mark (in
// bytes) observed while it ran, sampled on a 1ms ticker plus one sample
// on each side. A GC before the run resets the baseline so consecutive
// measurements do not inherit each other's garbage. The sampler's
// resolution is coarse — it is meant to distinguish O(result) from
// O(window) footprints, not to profile allocations.
func heapHighWater(f func()) uint64 {
	runtime.GC()
	var peak atomic.Uint64
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		for {
			cur := peak.Load()
			if ms.HeapAlloc <= cur || peak.CompareAndSwap(cur, ms.HeapAlloc) {
				return
			}
		}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				sample()
			}
		}
	}()
	sample()
	f()
	sample()
	close(stop)
	<-done
	return peak.Load()
}

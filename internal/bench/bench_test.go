package bench

import (
	"strings"
	"testing"
	"time"

	"xrpc/internal/xmark"
)

// The Table 2 shape: with latency, bulk at x=N costs far less than
// one-at-a-time at x=N; at x=1 they are comparable.
func TestTable2Shape(t *testing.T) {
	env, err := NewTable2Env(100 * time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	one1, err := env.RunEchoVoid(1, false, true)
	if err != nil {
		t.Fatal(err)
	}
	env2, _ := NewTable2Env(100 * time.Microsecond)
	bulk1, err := env2.RunEchoVoid(1, true, true)
	if err != nil {
		t.Fatal(err)
	}
	env3, _ := NewTable2Env(100 * time.Microsecond)
	oneN, err := env3.RunEchoVoid(100, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if env3.YServer.ServedRequests != 100 {
		t.Errorf("one-at-a-time requests = %d", env3.YServer.ServedRequests)
	}
	env4, _ := NewTable2Env(100 * time.Microsecond)
	bulkN, err := env4.RunEchoVoid(100, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if env4.YServer.ServedRequests != 1 {
		t.Errorf("bulk requests = %d", env4.YServer.ServedRequests)
	}
	// the headline claim: bulk at scale beats one-at-a-time by a wide
	// margin (paper: 2696 ms vs 134 ms at x=1000)
	if bulkN >= oneN/2 {
		t.Errorf("bulk=%v not clearly faster than one-at-a-time=%v at x=100", bulkN, oneN)
	}
	// single-call overhead of bulk is small (paper: 133 vs 130)
	_ = one1
	_ = bulk1
}

// The algebra microbenchmark harness must verify columnar/row-store
// output identity and produce sane timings (its whole point is that the
// comparison cannot silently diverge).
func TestAlgebraBenchIdentity(t *testing.T) {
	rows, err := RunAlgebraBench(2048, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("ops = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Columnar <= 0 || r.RowStore <= 0 {
			t.Errorf("%s: non-positive timing %v / %v", r.Op, r.Columnar, r.RowStore)
		}
	}
	if s := FormatAlgebraBench(rows); !strings.Contains(s, "speedup") {
		t.Errorf("format output:\n%s", s)
	}
}

func TestTable2FunctionCacheShape(t *testing.T) {
	// cold cache: the run itself compiles (one miss, no hits before it)
	env, err := NewTable2Env(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.RunEchoVoid(1, true, false); err != nil {
		t.Fatal(err)
	}
	if env.YExec.CacheMisses.Load() != 1 {
		t.Errorf("cold run misses = %d, want 1", env.YExec.CacheMisses.Load())
	}
	// warm cache: the measured run is a pure cache hit
	env2, err := NewTable2Env(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env2.RunEchoVoid(1, true, true); err != nil {
		t.Fatal(err)
	}
	if env2.YExec.CacheMisses.Load() != 1 || env2.YExec.CacheHits.Load() < 1 {
		t.Errorf("warm run misses=%d hits=%d", env2.YExec.CacheMisses.Load(), env2.YExec.CacheHits.Load())
	}
	// and the cold single call is visibly slower than the warm one
	// (module translation time, the 130 ms of the paper)
	envC, _ := NewTable2Env(0)
	cold, err := envC.RunEchoVoid(1, true, false)
	if err != nil {
		t.Fatal(err)
	}
	envW, _ := NewTable2Env(0)
	warm, err := envW.RunEchoVoid(1, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if cold <= warm {
		t.Logf("cold=%v warm=%v (timing noise tolerated)", cold, warm)
	}
}

func TestRunTable2AllCells(t *testing.T) {
	cells, err := RunTable2(0, []int{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(cells))
	}
	out := FormatTable2(cells, []int{1, 10})
	for _, want := range []string{"one-at-a-time", "bulk", "No Function Cache", "With Function Cache"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 2 output missing %q:\n%s", want, out)
		}
	}
}

func TestThroughput(t *testing.T) {
	req, err := RunThroughput(256, false)
	if err != nil {
		t.Fatal(err)
	}
	if req.MBPerSecond <= 0 {
		t.Errorf("request throughput = %v", req.MBPerSecond)
	}
	resp, err := RunThroughput(256, true)
	if err != nil {
		t.Fatal(err)
	}
	if resp.MBPerSecond <= 0 {
		t.Errorf("response throughput = %v", resp.MBPerSecond)
	}
}

func TestTable3Rows(t *testing.T) {
	cfg := xmark.Config{Persons: 50, AnnotationWords: 5, Seed: 1}
	rows, err := RunTable3([]int{1, 50}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// shape: bulk x=50 total < 50 × (x=1 total) — latency amortized
	byKey := map[string]Table3Row{}
	for _, r := range rows {
		byKey[r.Fn+string(rune('0'+r.X/50))] = r // crude key: x=1 -> '0', x=50 -> '1'
	}
	ev1 := byKey["echoVoid0"]
	evN := byKey["echoVoid1"]
	if evN.Total >= time.Duration(50)*ev1.Total {
		t.Errorf("bulk wrapper call not amortized: x=1 %v, x=50 %v", ev1.Total, evN.Total)
	}
	// getPerson treebuild dominates (the XMark doc is re-parsed)
	gp := byKey["getPerson0"]
	if gp.TreeBuild <= 0 {
		t.Error("getPerson treebuild phase empty")
	}
	out := FormatTable3(rows)
	if !strings.Contains(out, "getPerson $x=50") {
		t.Errorf("format:\n%s", out)
	}
}

func TestTable4Rows(t *testing.T) {
	cfg := xmark.Config{Persons: 20, ClosedAuctions: 60, Matches: 6, AnnotationWords: 8, Seed: 42}
	results, err := RunTable4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Rows != 6 {
			t.Errorf("%s: %d rows, want 6", r.Strategy, r.Rows)
		}
	}
	out := FormatTable4(results)
	for _, want := range []string{"data shipping", "predicate push-down", "execution relocation", "distributed semi-join"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 4 missing %q:\n%s", want, out)
		}
	}
	// Table 4 shape: semi-join ships the least data
	if results[3].BytesShipped >= results[0].BytesShipped {
		t.Errorf("semi-join bytes %d >= data shipping bytes %d",
			results[3].BytesShipped, results[0].BytesShipped)
	}
}

func TestFigure1Trace(t *testing.T) {
	trace, err := RunFigure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.PerPeer) != 2 {
		t.Fatalf("peers = %d", len(trace.PerPeer))
	}
	out := FormatFigure1(trace)
	for _, want := range []string{
		"peer xrpc://y.example.org",
		"peer xrpc://z.example.org",
		"Julie Andrews",
		"Sean Connery",
		"The Rock",
		"Sound Of Music",
		"result (merge-union)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 1 output missing %q", want)
		}
	}
}

func TestClusterBenchVerifiesAndSplitsBytes(t *testing.T) {
	cfg := xmark.Config{Persons: 20, ClosedAuctions: 60, Matches: 6, AnnotationWords: 5, Seed: 42}
	results, err := RunClusterBench(cfg, []int{1, 2, 3}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("workloads = %d, want 2 (probe + scan)", len(results))
	}
	for _, res := range results {
		if len(res.Rows) != 3 {
			t.Fatalf("%s: rows = %d, want 3", res.Workload, len(res.Rows))
		}
		for _, r := range res.Rows {
			if !r.Verified {
				t.Fatalf("%s peers=%d: merged response was not verified", res.Workload, r.Peers)
			}
			if len(r.PerShard) != r.Peers {
				t.Fatalf("%s peers=%d: per-shard stats for %d peers", res.Workload, r.Peers, len(r.PerShard))
			}
		}
		// the scan's response bytes must actually split across shards:
		// at 3 peers every shard ships a non-empty share
		if strings.Contains(res.Workload, "scan") {
			last := res.Rows[len(res.Rows)-1]
			for s, bytes := range last.PerShard {
				if bytes == 0 {
					t.Fatalf("scan shard %d shipped 0 bytes", s)
				}
			}
		}
	}
	if out := FormatClusterBench(results); !strings.Contains(out, "peers") {
		t.Fatalf("format lost the header: %q", out)
	}
}

// Package txn implements the originator side of distributed atomic
// commit for updating XRPC queries (§2.3). The paper deliberately does
// not add 2PC to the XRPC network protocol itself; instead it relies on
// WS-AtomicTransaction / WS-Coordination. This package is a minimal
// stand-in for those industry stacks with the same verbs: the peer that
// started the query registers every participating peer (learned from the
// participating-peers piggyback in XRPC responses) and drives
// Prepare/Commit — aborting everywhere if any participant fails to
// prepare.
package txn

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"time"

	"xrpc/internal/client"
	"xrpc/internal/soap"
	"xrpc/internal/xdm"
)

// WSATModule is the reserved module URI for WS-AT verbs (matching
// server.WSATModule).
const WSATModule = "urn:wsat"

// NewQueryID mints a fresh queryID for a query starting now at host,
// with the given isolation timeout in seconds.
func NewQueryID(host string, timeout int) *soap.QueryID {
	var buf [8]byte
	rand.Read(buf[:])
	return &soap.QueryID{
		ID:        "q-" + hex.EncodeToString(buf[:]),
		Host:      host,
		Timestamp: time.Now().UTC(),
		Timeout:   timeout,
	}
}

// Coordinator drives two-phase commit across the participants of one
// query. The embedded client must carry the query's QueryID.
type Coordinator struct {
	Client *client.Client
	// Log receives protocol events (optional, for tests/experiments).
	Log func(event, peer string)
}

func (co *Coordinator) logf(event, peer string) {
	if co.Log != nil {
		co.Log(event, peer)
	}
}

func (co *Coordinator) verb(peer, method string) error {
	_, err := co.Client.CallBulk(peer, &client.BulkRequest{
		ModuleURI: WSATModule,
		Func:      method,
		Arity:     0,
		Calls:     [][]xdm.Sequence{{}},
	})
	return err
}

// CommitAll runs the 2PC protocol over all peers: Prepare each (phase
// 1), then Commit each (phase 2). If any Prepare fails, every peer is
// aborted and the error is returned — no peer commits.
func (co *Coordinator) CommitAll(peers []string) error {
	for _, p := range peers {
		co.logf("prepare", p)
		if err := co.verb(p, "Prepare"); err != nil {
			co.logf("prepare-failed", p)
			co.AbortAll(peers)
			return fmt.Errorf("txn: prepare failed at %s: %w", p, err)
		}
	}
	var firstErr error
	for _, p := range peers {
		co.logf("commit", p)
		if err := co.verb(p, "Commit"); err != nil && firstErr == nil {
			// a commit failure after successful prepare is a heuristic
			// outcome; report it but keep committing the rest
			firstErr = fmt.Errorf("txn: commit failed at %s: %w", p, err)
		}
	}
	return firstErr
}

// AbortAll tells every peer to discard the query's deferred state.
// Errors are ignored: peers that cannot be reached will expire the
// queryID via its timeout (§2.2: "a timeout mechanism is inevitable").
func (co *Coordinator) AbortAll(peers []string) {
	for _, p := range peers {
		co.logf("abort", p)
		_ = co.verb(p, "Abort")
	}
}

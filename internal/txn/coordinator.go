// Package txn implements the originator side of distributed atomic
// commit for updating XRPC queries (§2.3). The paper deliberately does
// not add 2PC to the XRPC network protocol itself; instead it relies on
// WS-AtomicTransaction / WS-Coordination. This package is a minimal
// stand-in for those industry stacks with the same verbs: the peer that
// started the query registers every participating peer (learned from the
// participating-peers piggyback in XRPC responses) and drives
// Prepare/Commit — aborting everywhere if any participant fails to
// prepare.
package txn

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"xrpc/internal/client"
	"xrpc/internal/obs"
	"xrpc/internal/soap"
	"xrpc/internal/xdm"
)

// WSATModule is the reserved module URI for WS-AT verbs (matching
// server.WSATModule).
const WSATModule = "urn:wsat"

// NewQueryID mints a fresh queryID for a query starting now at host,
// with the given isolation timeout in seconds.
func NewQueryID(host string, timeout int) *soap.QueryID {
	var buf [8]byte
	rand.Read(buf[:])
	return &soap.QueryID{
		ID:        "q-" + hex.EncodeToString(buf[:]),
		Host:      host,
		Timestamp: time.Now().UTC(),
		Timeout:   timeout,
	}
}

// Metrics counts 2PC verbs across transactions. Cluster coordinators
// create one txn.Coordinator per updating query, so the counters live
// here and are shared by reference; a nil *Metrics disables counting.
type Metrics struct {
	Prepares        *obs.Counter
	PrepareFailures *obs.Counter
	Commits         *obs.Counter
	CommitFailures  *obs.Counter
	Aborts          *obs.Counter
}

// NewMetrics registers the 2PC counter family.
func NewMetrics(reg *obs.Registry, labels ...obs.Label) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		Prepares: reg.NewCounter("xrpc_txn_prepares_total",
			"2PC Prepare verbs sent to participants.", labels...),
		PrepareFailures: reg.NewCounter("xrpc_txn_prepare_failures_total",
			"Failed Prepare verbs (each aborts the transaction).", labels...),
		Commits: reg.NewCounter("xrpc_txn_commits_total",
			"2PC Commit verbs sent to prepared participants.", labels...),
		CommitFailures: reg.NewCounter("xrpc_txn_commit_failures_total",
			"Failed Commit verbs after successful prepare (heuristic outcomes).", labels...),
		Aborts: reg.NewCounter("xrpc_txn_aborts_total",
			"2PC Abort verbs sent to participants.", labels...),
	}
}

// Coordinator drives two-phase commit across the participants of one
// query. The embedded client must carry the query's QueryID.
type Coordinator struct {
	Client *client.Client
	// Log receives protocol events (optional, for tests/experiments).
	// Called serialized, but from multiple goroutines: each phase fans
	// its verbs out to the participants concurrently.
	Log func(event, peer string)
	// Metrics, when set, counts the protocol verbs this coordinator
	// issues (shared across per-query coordinators by the cluster).
	Metrics *Metrics

	logMu sync.Mutex
}

func (co *Coordinator) logf(event, peer string) {
	if co.Log != nil {
		co.logMu.Lock()
		co.Log(event, peer)
		co.logMu.Unlock()
	}
}

func (co *Coordinator) verb(peer, method string) (xdm.Sequence, error) {
	res, err := co.Client.CallBulk(peer, &client.BulkRequest{
		ModuleURI: WSATModule,
		Func:      method,
		Arity:     0,
		Calls:     [][]xdm.Sequence{{}},
	})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// PrepareAll runs phase 1 of 2PC: Prepare at every peer concurrently
// (the participants are independent, and durable peers fsync their logs
// inside the verb — overlapping the flushes keeps a multi-shard commit
// at one flush latency instead of one per participant), returning each
// peer's prepare result in peer order. The XRPC server piggybacks the
// prepared (serialized) pending update list on the ack — result[i][1],
// when present — which is what replica PUL replication forwards. If any
// Prepare fails, every peer is aborted and the error returned (the
// lowest failed peer index, deterministically); no peer commits.
func (co *Coordinator) PrepareAll(peers []string) ([]xdm.Sequence, error) {
	out := make([]xdm.Sequence, len(peers))
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p string) {
			defer wg.Done()
			co.logf("prepare", p)
			if co.Metrics != nil {
				co.Metrics.Prepares.Inc()
			}
			res, err := co.verb(p, "Prepare")
			if err != nil {
				co.logf("prepare-failed", p)
				if co.Metrics != nil {
					co.Metrics.PrepareFailures.Inc()
				}
				errs[i] = err
				return
			}
			out[i] = res
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			co.AbortAll(peers)
			return nil, fmt.Errorf("txn: prepare failed at %s: %w", peers[i], err)
		}
	}
	return out, nil
}

// CommitPrepared runs phase 2 over already-prepared peers, concurrently
// (so durable peers' commit-record fsyncs overlap), returning each
// peer's commit result in peer order (the XRPC server reports its
// post-commit store version as result[i][1] — the replication fence). A
// commit failure after successful prepare is a heuristic outcome: it is
// reported (lowest failed peer index, deterministically), but the
// remaining peers still commit; the failed peer's result is nil.
func (co *Coordinator) CommitPrepared(peers []string) ([]xdm.Sequence, error) {
	out := make([]xdm.Sequence, len(peers))
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p string) {
			defer wg.Done()
			co.logf("commit", p)
			if co.Metrics != nil {
				co.Metrics.Commits.Inc()
			}
			res, err := co.verb(p, "Commit")
			if err != nil {
				if co.Metrics != nil {
					co.Metrics.CommitFailures.Inc()
				}
				errs[i] = err
				return
			}
			out[i] = res
		}(i, p)
	}
	wg.Wait()
	var firstErr error
	for i, err := range errs {
		if err != nil {
			firstErr = fmt.Errorf("txn: commit failed at %s: %w", peers[i], err)
			break
		}
	}
	return out, firstErr
}

// CommitAll runs the 2PC protocol over all peers: Prepare each (phase
// 1), then Commit each (phase 2). If any Prepare fails, every peer is
// aborted and the error is returned — no peer commits.
func (co *Coordinator) CommitAll(peers []string) error {
	if _, err := co.PrepareAll(peers); err != nil {
		return err
	}
	_, err := co.CommitPrepared(peers)
	return err
}

// AbortAll tells every peer to discard the query's deferred state.
// Errors are ignored: peers that cannot be reached will expire the
// queryID via its timeout (§2.2: "a timeout mechanism is inevitable").
func (co *Coordinator) AbortAll(peers []string) {
	for _, p := range peers {
		co.logf("abort", p)
		if co.Metrics != nil {
			co.Metrics.Aborts.Inc()
		}
		_, _ = co.verb(p, "Abort")
	}
}

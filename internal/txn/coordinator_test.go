package txn

import (
	"strings"
	"testing"
	"time"

	"xrpc/internal/client"
	"xrpc/internal/interp"
	"xrpc/internal/modules"
	"xrpc/internal/netsim"
	"xrpc/internal/server"
	"xrpc/internal/store"
	"xrpc/internal/xdm"
	"xrpc/internal/xmark"
)

const updModule = `
module namespace u="upd";
declare updating function u:addFilm($name as xs:string)
{ insert node <film><name>{$name}</name></film> into doc("filmDB.xml")/films };`

func newCluster(t *testing.T, peers ...string) (*netsim.Network, map[string]*store.Store, map[string]*server.Server) {
	t.Helper()
	net := netsim.NewNetwork(0, 0)
	reg := modules.NewRegistry()
	if err := reg.Register(updModule, "http://x.example.org/upd.xq"); err != nil {
		t.Fatal(err)
	}
	stores := map[string]*store.Store{}
	servers := map[string]*server.Server{}
	for _, uri := range peers {
		st := store.New()
		if err := st.LoadXML("filmDB.xml", xmark.PaperFilmDB); err != nil {
			t.Fatal(err)
		}
		srv := server.New(st, reg, server.NewNativeExecutor(interp.New(st, reg, nil), reg))
		srv.Self = uri
		net.Register(uri, srv)
		stores[uri] = st
		servers[uri] = srv
	}
	return net, stores, servers
}

func countFilms(t *testing.T, st *store.Store) int {
	t.Helper()
	doc, ok := st.Get("filmDB.xml")
	if !ok {
		t.Fatal("filmDB.xml missing")
	}
	return len(xdm.Step(doc, xdm.AxisDescendant, xdm.NodeTest{Name: "film"}))
}

func sendUpdate(t *testing.T, cl *client.Client, peer, film string) {
	t.Helper()
	_, err := cl.CallBulk(peer, &client.BulkRequest{
		ModuleURI: "upd", Func: "addFilm", Arity: 1, Updating: true,
		Calls: [][]xdm.Sequence{{{xdm.String(film)}}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommitAllBothPeersCommit(t *testing.T) {
	net, stores, _ := newCluster(t, "xrpc://a", "xrpc://b")
	cl := client.New(net)
	cl.QueryID = NewQueryID("xrpc://origin", 60)
	sendUpdate(t, cl, "xrpc://a", "F1")
	sendUpdate(t, cl, "xrpc://b", "F2")

	var events []string
	co := &Coordinator{Client: cl, Log: func(ev, peer string) {
		events = append(events, ev+" "+peer)
	}}
	if err := co.CommitAll(cl.Peers()); err != nil {
		t.Fatal(err)
	}
	if countFilms(t, stores["xrpc://a"]) != 4 || countFilms(t, stores["xrpc://b"]) != 4 {
		t.Error("updates not committed on both peers")
	}
	// all prepares precede all commits
	lastPrepare, firstCommit := -1, len(events)
	for i, e := range events {
		if strings.HasPrefix(e, "prepare") && i > lastPrepare {
			lastPrepare = i
		}
		if strings.HasPrefix(e, "commit") && i < firstCommit {
			firstCommit = i
		}
	}
	if lastPrepare > firstCommit {
		t.Errorf("2PC phase order violated: %v", events)
	}
}

func TestPrepareFailureAbortsEverywhere(t *testing.T) {
	net, stores, _ := newCluster(t, "xrpc://a")
	cl := client.New(net)
	cl.QueryID = NewQueryID("xrpc://origin", 60)
	sendUpdate(t, cl, "xrpc://a", "F1")

	// one participant is unreachable: Prepare fails there
	peers := append(cl.Peers(), "xrpc://gone")
	co := &Coordinator{Client: cl}
	if err := co.CommitAll(peers); err == nil {
		t.Fatal("expected prepare failure")
	}
	// no peer committed: a's films unchanged
	if got := countFilms(t, stores["xrpc://a"]); got != 3 {
		t.Errorf("films after failed 2PC = %d, want 3", got)
	}
}

func TestAbortAllDiscards(t *testing.T) {
	net, stores, servers := newCluster(t, "xrpc://a")
	cl := client.New(net)
	cl.QueryID = NewQueryID("xrpc://origin", 60)
	sendUpdate(t, cl, "xrpc://a", "F1")
	if servers["xrpc://a"].IsolatedQueries() != 1 {
		t.Fatal("no isolated state to abort")
	}
	co := &Coordinator{Client: cl}
	co.AbortAll(cl.Peers())
	if got := countFilms(t, stores["xrpc://a"]); got != 3 {
		t.Errorf("films after abort = %d, want 3", got)
	}
	if servers["xrpc://a"].IsolatedQueries() != 0 {
		t.Error("isolated state not discarded")
	}
}

func TestNewQueryIDProperties(t *testing.T) {
	a := NewQueryID("xrpc://h", 30)
	b := NewQueryID("xrpc://h", 30)
	if a.ID == b.ID {
		t.Error("queryIDs must be unique")
	}
	if a.Host != "xrpc://h" || a.Timeout != 30 {
		t.Errorf("qid = %+v", a)
	}
	if time.Since(a.Timestamp) > time.Minute {
		t.Errorf("timestamp = %v", a.Timestamp)
	}
	if !strings.HasPrefix(a.ID, "q-") {
		t.Errorf("id = %q", a.ID)
	}
}

// Commit failure after successful prepare is reported but does not stop
// the remaining commits (heuristic outcome).
func TestCommitFailureHeuristic(t *testing.T) {
	net, stores, servers := newCluster(t, "xrpc://a", "xrpc://b")
	cl := client.New(net)
	cl.QueryID = NewQueryID("xrpc://origin", 60)
	sendUpdate(t, cl, "xrpc://a", "F1")
	sendUpdate(t, cl, "xrpc://b", "F2")
	// peer b answers Prepare but dies on Commit
	real := servers["xrpc://b"]
	net.Register("xrpc://b", netsim.HandlerFunc(func(path string, body []byte) ([]byte, error) {
		if strings.Contains(string(body), `xrpc:method="Commit"`) {
			return nil, errDown
		}
		return real.HandleXRPC(path, body)
	}))
	co := &Coordinator{Client: cl}
	err := co.CommitAll([]string{"xrpc://a", "xrpc://b"})
	if err == nil {
		t.Error("commit failure should be reported")
	}
	if countFilms(t, stores["xrpc://a"]) != 4 {
		t.Error("a should have committed despite b's failure")
	}
}

var errDown = errTxn("peer down")

type errTxn string

func (e errTxn) Error() string { return string(e) }

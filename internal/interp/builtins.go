package interp

import (
	"math"
	"strings"

	"xrpc/internal/xdm"
	"xrpc/internal/xq"
)

// evalBuiltin dispatches built-in function calls. Names may be written
// bare ("count") or with the fn: prefix; xs:TYPE(...) constructor
// functions cast; xrpc:host/xrpc:path are the §5 helper functions.
func (ctx *dynCtx) evalBuiltin(call *xq.FuncCall) (xdm.Sequence, error) {
	name := call.Name
	if strings.HasPrefix(name, "fn:") {
		name = name[3:]
	}
	// xs: constructor functions
	if strings.HasPrefix(call.Name, "xs:") && len(call.Args) == 1 {
		v, err := ctx.eval(call.Args[0])
		if err != nil {
			return nil, err
		}
		v = xdm.Atomize(v)
		if len(v) == 0 {
			return nil, nil
		}
		if len(v) > 1 {
			return nil, xdm.NewError("XPTY0004", "constructor argument is not a singleton")
		}
		out, err := xdm.CastAtomic(v[0], call.Name)
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(out), nil
	}
	fn, ok := builtins[name]
	if !ok {
		if ext, isExt := ctx.c.engine.ExtFuncs[call.Name]; isExt {
			args := make([]xdm.Sequence, len(call.Args))
			for i, a := range call.Args {
				v, err := ctx.eval(a)
				if err != nil {
					return nil, err
				}
				args[i] = v
			}
			return ext(args)
		}
		return nil, xdm.Errorf("XPST0017", "unknown function %s#%d", call.Name, len(call.Args))
	}
	if fn.minArgs > len(call.Args) || len(call.Args) > fn.maxArgs {
		return nil, xdm.Errorf("XPST0017", "wrong number of arguments for %s: %d", call.Name, len(call.Args))
	}
	if fn.raw != nil {
		return fn.raw(ctx, call.Args)
	}
	args := make([]xdm.Sequence, len(call.Args))
	for i, a := range call.Args {
		v, err := ctx.eval(a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return fn.eval(ctx, args)
}

type builtin struct {
	minArgs, maxArgs int
	eval             func(ctx *dynCtx, args []xdm.Sequence) (xdm.Sequence, error)
	// raw builtins receive unevaluated ASTs (position/last need none;
	// used for functions with special evaluation rules).
	raw func(ctx *dynCtx, args []xq.Expr) (xdm.Sequence, error)
}

var builtins map[string]builtin

func init() {
	builtins = map[string]builtin{
		"doc": {1, 1, bifDoc, nil},
		"put": {2, 2, bifPut, nil},

		"count":  {1, 1, bifCount, nil},
		"empty":  {1, 1, bifEmpty, nil},
		"exists": {1, 1, bifExists, nil},

		"not":     {1, 1, bifNot, nil},
		"boolean": {1, 1, bifBoolean, nil},
		"true":    {0, 0, bifTrue, nil},
		"false":   {0, 0, bifFalse, nil},

		"string":           {0, 1, nil, bifString},
		"data":             {1, 1, bifData, nil},
		"number":           {0, 1, nil, bifNumber},
		"concat":           {2, 64, bifConcat, nil},
		"contains":         {2, 2, bifContains, nil},
		"starts-with":      {2, 2, bifStartsWith, nil},
		"ends-with":        {2, 2, bifEndsWith, nil},
		"substring":        {2, 3, bifSubstring, nil},
		"substring-before": {2, 2, bifSubstringBefore, nil},
		"substring-after":  {2, 2, bifSubstringAfter, nil},
		"string-length":    {0, 1, nil, bifStringLength},
		"string-join":      {2, 2, bifStringJoin, nil},
		"upper-case":       {1, 1, bifUpperCase, nil},
		"lower-case":       {1, 1, bifLowerCase, nil},
		"normalize-space":  {0, 1, nil, bifNormalizeSpace},
		"translate":        {3, 3, bifTranslate, nil},
		"tokenize":         {2, 2, bifTokenize, nil},

		"sum":     {1, 2, bifSum, nil},
		"avg":     {1, 1, bifAvg, nil},
		"min":     {1, 1, bifMin, nil},
		"max":     {1, 1, bifMax, nil},
		"abs":     {1, 1, bifAbs, nil},
		"floor":   {1, 1, bifFloor, nil},
		"ceiling": {1, 1, bifCeiling, nil},
		"round":   {1, 1, bifRound, nil},

		"distinct-values": {1, 1, bifDistinctValues, nil},
		"reverse":         {1, 1, bifReverse, nil},
		"subsequence":     {2, 3, bifSubsequence, nil},
		"insert-before":   {3, 3, bifInsertBefore, nil},
		"remove":          {2, 2, bifRemove, nil},
		"index-of":        {2, 2, bifIndexOf, nil},

		"zero-or-one":  {1, 1, bifZeroOrOne, nil},
		"one-or-more":  {1, 1, bifOneOrMore, nil},
		"exactly-one":  {1, 1, bifExactlyOne, nil},
		"deep-equal":   {2, 2, bifDeepEqual, nil},
		"name":         {0, 1, nil, bifName},
		"local-name":   {0, 1, nil, bifLocalName},
		"node-name":    {1, 1, bifNodeName, nil},
		"root":         {0, 1, nil, bifRoot},
		"last":         {0, 0, nil, bifLast},
		"position":     {0, 0, nil, bifPosition},
		"error":        {0, 2, bifError, nil},
		"trace":        {2, 2, bifTrace, nil},
		"string-value": {1, 1, bifStringValue, nil},

		// xrpc: helper functions from §5 "Advanced Pushdown"
		"xrpc:host": {1, 1, bifXrpcHost, nil},
		"xrpc:path": {1, 1, bifXrpcPath, nil},
	}
}

func bifDoc(ctx *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	if len(args[0]) == 0 {
		return nil, nil
	}
	uri := args[0].StringJoin("")
	if ctx.docs == nil {
		return nil, xdm.NewError("FODC0002", "no document resolver")
	}
	doc, err := ctx.docs.Doc(uri)
	if err != nil {
		return nil, err
	}
	return xdm.Singleton(doc), nil
}

// bifPut is XQUF fn:put: registers a "put document" update primitive.
func bifPut(ctx *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	if len(args[0]) != 1 {
		return nil, xdm.NewError("XPTY0004", "fn:put requires a single node")
	}
	n, ok := args[0][0].(*xdm.Node)
	if !ok {
		return nil, xdm.NewError("XPTY0004", "fn:put requires a node")
	}
	uri := args[1].StringJoin("")
	ctx.pul.Add(Primitive{Kind: PrimPut, PutURI: uri, Source: []*xdm.Node{n.Clone()}})
	return nil, nil
}

func bifCount(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.Integer(len(args[0]))), nil
}

func bifEmpty(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.Boolean(len(args[0]) == 0)), nil
}

func bifExists(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.Boolean(len(args[0]) > 0)), nil
}

func bifNot(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	b, err := xdm.EffectiveBoolean(args[0])
	if err != nil {
		return nil, err
	}
	return xdm.Singleton(xdm.Boolean(!b)), nil
}

func bifBoolean(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	b, err := xdm.EffectiveBoolean(args[0])
	if err != nil {
		return nil, err
	}
	return xdm.Singleton(xdm.Boolean(b)), nil
}

func bifTrue(_ *dynCtx, _ []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.Boolean(true)), nil
}

func bifFalse(_ *dynCtx, _ []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.Boolean(false)), nil
}

// zeroOrCtx evaluates the optional single argument, defaulting to the
// context item.
func zeroOrCtx(ctx *dynCtx, args []xq.Expr) (xdm.Sequence, error) {
	if len(args) == 1 {
		return ctx.eval(args[0])
	}
	if ctx.item == nil {
		return nil, xdm.NewError("XPDY0002", "context item is absent")
	}
	return xdm.Singleton(ctx.item), nil
}

func bifString(ctx *dynCtx, args []xq.Expr) (xdm.Sequence, error) {
	v, err := zeroOrCtx(ctx, args)
	if err != nil {
		return nil, err
	}
	if len(v) == 0 {
		return xdm.Singleton(xdm.String("")), nil
	}
	if len(v) > 1 {
		return nil, xdm.NewError("XPTY0004", "fn:string argument is not a singleton")
	}
	return xdm.Singleton(xdm.String(v[0].StringValue())), nil
}

func bifData(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Atomize(args[0]), nil
}

func bifNumber(ctx *dynCtx, args []xq.Expr) (xdm.Sequence, error) {
	v, err := zeroOrCtx(ctx, args)
	if err != nil {
		return nil, err
	}
	v = xdm.Atomize(v)
	if len(v) != 1 {
		return xdm.Singleton(xdm.Double(math.NaN())), nil
	}
	f, ok := xdm.NumericValue(v[0])
	if !ok {
		cast, err := xdm.CastAtomic(v[0], "xs:double")
		if err != nil {
			return xdm.Singleton(xdm.Double(math.NaN())), nil
		}
		return xdm.Singleton(cast), nil
	}
	return xdm.Singleton(xdm.Double(f)), nil
}

func bifConcat(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	var sb strings.Builder
	for _, a := range args {
		if len(a) > 1 {
			return nil, xdm.NewError("XPTY0004", "fn:concat argument is not a singleton")
		}
		if len(a) == 1 {
			sb.WriteString(a[0].StringValue())
		}
	}
	return xdm.Singleton(xdm.String(sb.String())), nil
}

func strArg(a xdm.Sequence) string {
	if len(a) == 0 {
		return ""
	}
	return a[0].StringValue()
}

func bifContains(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.Boolean(strings.Contains(strArg(args[0]), strArg(args[1])))), nil
}

func bifStartsWith(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.Boolean(strings.HasPrefix(strArg(args[0]), strArg(args[1])))), nil
}

func bifEndsWith(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.Boolean(strings.HasSuffix(strArg(args[0]), strArg(args[1])))), nil
}

func bifSubstring(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	s := []rune(strArg(args[0]))
	startF, ok := xdm.NumericValue(firstOrNaN(args[1]))
	if !ok {
		return nil, xdm.NewError("XPTY0004", "fn:substring start is not numeric")
	}
	start := int(math.Round(startF))
	length := len(s) - start + 1
	if len(args) == 3 {
		lenF, ok := xdm.NumericValue(firstOrNaN(args[2]))
		if !ok {
			return nil, xdm.NewError("XPTY0004", "fn:substring length is not numeric")
		}
		length = int(math.Round(lenF))
	}
	// spec: characters at positions p with p >= round(start) and
	// p < round(start) + round(length); clamping lo must not shrink hi
	lo := start - 1
	hi := lo + length
	if lo < 0 {
		lo = 0
	}
	if hi > len(s) {
		hi = len(s)
	}
	if lo >= len(s) || hi <= lo {
		return xdm.Singleton(xdm.String("")), nil
	}
	return xdm.Singleton(xdm.String(string(s[lo:hi]))), nil
}

func firstOrNaN(s xdm.Sequence) xdm.Item {
	if len(s) == 0 {
		return xdm.Double(math.NaN())
	}
	return s[0]
}

func bifSubstringBefore(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	s, sub := strArg(args[0]), strArg(args[1])
	if i := strings.Index(s, sub); i >= 0 {
		return xdm.Singleton(xdm.String(s[:i])), nil
	}
	return xdm.Singleton(xdm.String("")), nil
}

func bifSubstringAfter(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	s, sub := strArg(args[0]), strArg(args[1])
	if i := strings.Index(s, sub); i >= 0 {
		return xdm.Singleton(xdm.String(s[i+len(sub):])), nil
	}
	return xdm.Singleton(xdm.String("")), nil
}

func bifStringLength(ctx *dynCtx, args []xq.Expr) (xdm.Sequence, error) {
	v, err := zeroOrCtx(ctx, args)
	if err != nil {
		return nil, err
	}
	return xdm.Singleton(xdm.Integer(len([]rune(strArg(v))))), nil
}

func bifStringJoin(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.String(args[0].StringJoin(strArg(args[1])))), nil
}

func bifUpperCase(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.String(strings.ToUpper(strArg(args[0])))), nil
}

func bifLowerCase(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.String(strings.ToLower(strArg(args[0])))), nil
}

func bifNormalizeSpace(ctx *dynCtx, args []xq.Expr) (xdm.Sequence, error) {
	v, err := zeroOrCtx(ctx, args)
	if err != nil {
		return nil, err
	}
	return xdm.Singleton(xdm.String(strings.Join(strings.Fields(strArg(v)), " "))), nil
}

func bifTranslate(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	s := []rune(strArg(args[0]))
	from := []rune(strArg(args[1]))
	to := []rune(strArg(args[2]))
	var sb strings.Builder
	for _, r := range s {
		replaced := false
		for i, f := range from {
			if r == f {
				if i < len(to) {
					sb.WriteRune(to[i])
				}
				replaced = true
				break
			}
		}
		if !replaced {
			sb.WriteRune(r)
		}
	}
	return xdm.Singleton(xdm.String(sb.String())), nil
}

func bifTokenize(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	s, sep := strArg(args[0]), strArg(args[1])
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, sep)
	out := make(xdm.Sequence, len(parts))
	for i, p := range parts {
		out[i] = xdm.String(p)
	}
	return out, nil
}

func numericFold(args xdm.Sequence, init float64, f func(acc, v float64) float64) (float64, bool, error) {
	acc := init
	any := false
	for _, it := range xdm.Atomize(args) {
		v, ok := xdm.NumericValue(it)
		if !ok {
			return 0, false, xdm.Errorf("FORG0006", "non-numeric item %q in aggregate", it.StringValue())
		}
		if !any {
			acc = v
			any = true
			continue
		}
		acc = f(acc, v)
	}
	return acc, any, nil
}

func bifSum(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	total := 0.0
	allInt := true
	for _, it := range xdm.Atomize(args[0]) {
		v, ok := xdm.NumericValue(it)
		if !ok {
			return nil, xdm.Errorf("FORG0006", "non-numeric item in fn:sum")
		}
		if _, isInt := it.(xdm.Integer); !isInt {
			allInt = false
		}
		total += v
	}
	if len(args[0]) == 0 {
		if len(args) == 2 {
			return args[1], nil
		}
		return xdm.Singleton(xdm.Integer(0)), nil
	}
	if allInt {
		return xdm.Singleton(xdm.Integer(int64(total))), nil
	}
	return xdm.Singleton(xdm.Double(total)), nil
}

func bifAvg(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	if len(args[0]) == 0 {
		return nil, nil
	}
	total, _, err := numericFold(args[0], 0, func(a, v float64) float64 { return a + v })
	if err != nil {
		return nil, err
	}
	return xdm.Singleton(xdm.Double(total / float64(len(args[0])))), nil
}

func bifMin(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	if len(args[0]) == 0 {
		return nil, nil
	}
	v, _, err := numericFold(args[0], math.Inf(1), math.Min)
	if err != nil {
		return nil, err
	}
	return xdm.Singleton(xdm.Double(v)), nil
}

func bifMax(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	if len(args[0]) == 0 {
		return nil, nil
	}
	v, _, err := numericFold(args[0], math.Inf(-1), math.Max)
	if err != nil {
		return nil, err
	}
	return xdm.Singleton(xdm.Double(v)), nil
}

func numUnary(args []xdm.Sequence, f func(float64) float64) (xdm.Sequence, error) {
	a := xdm.Atomize(args[0])
	if len(a) == 0 {
		return nil, nil
	}
	v, ok := xdm.NumericValue(a[0])
	if !ok {
		return nil, xdm.NewError("XPTY0004", "non-numeric argument")
	}
	res := f(v)
	if n, isInt := a[0].(xdm.Integer); isInt {
		_ = n
		return xdm.Singleton(xdm.Integer(int64(res))), nil
	}
	return xdm.Singleton(xdm.Double(res)), nil
}

func bifAbs(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	return numUnary(args, math.Abs)
}

func bifFloor(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	return numUnary(args, math.Floor)
}

func bifCeiling(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	return numUnary(args, math.Ceil)
}

func bifRound(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	return numUnary(args, math.Round)
}

func bifDistinctValues(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	var out xdm.Sequence
	for _, it := range xdm.Atomize(args[0]) {
		dup := false
		for _, seen := range out {
			eq, err := xdm.CompareAtomic(it, seen, xdm.OpEq)
			if err == nil && eq {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, it)
		}
	}
	return out, nil
}

func bifReverse(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	in := args[0]
	out := make(xdm.Sequence, len(in))
	for i, it := range in {
		out[len(in)-1-i] = it
	}
	return out, nil
}

func bifSubsequence(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	in := args[0]
	startF, _ := xdm.NumericValue(firstOrNaN(args[1]))
	start := int(math.Round(startF))
	end := len(in) + 1
	if len(args) == 3 {
		lenF, _ := xdm.NumericValue(firstOrNaN(args[2]))
		end = start + int(math.Round(lenF))
	}
	var out xdm.Sequence
	for i := 1; i <= len(in); i++ {
		if i >= start && i < end {
			out = append(out, in[i-1])
		}
	}
	return out, nil
}

func bifInsertBefore(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	target, ins := args[0], args[2]
	posF, _ := xdm.NumericValue(firstOrNaN(args[1]))
	pos := int(posF)
	if pos < 1 {
		pos = 1
	}
	if pos > len(target)+1 {
		pos = len(target) + 1
	}
	out := make(xdm.Sequence, 0, len(target)+len(ins))
	out = append(out, target[:pos-1]...)
	out = append(out, ins...)
	out = append(out, target[pos-1:]...)
	return out, nil
}

func bifRemove(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	in := args[0]
	posF, _ := xdm.NumericValue(firstOrNaN(args[1]))
	pos := int(posF)
	if pos < 1 || pos > len(in) {
		return in, nil
	}
	out := make(xdm.Sequence, 0, len(in)-1)
	out = append(out, in[:pos-1]...)
	out = append(out, in[pos:]...)
	return out, nil
}

func bifIndexOf(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	if len(args[1]) != 1 {
		return nil, xdm.NewError("XPTY0004", "fn:index-of search value must be a singleton")
	}
	var out xdm.Sequence
	for i, it := range xdm.Atomize(args[0]) {
		eq, err := xdm.CompareAtomic(it, xdm.Atomize(args[1])[0], xdm.OpEq)
		if err == nil && eq {
			out = append(out, xdm.Integer(i+1))
		}
	}
	return out, nil
}

func bifZeroOrOne(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	if len(args[0]) > 1 {
		return nil, xdm.NewError("FORG0003", "fn:zero-or-one called with more than one item")
	}
	return args[0], nil
}

func bifOneOrMore(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	if len(args[0]) == 0 {
		return nil, xdm.NewError("FORG0004", "fn:one-or-more called with empty sequence")
	}
	return args[0], nil
}

func bifExactlyOne(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	if len(args[0]) != 1 {
		return nil, xdm.NewError("FORG0005", "fn:exactly-one called with a non-singleton")
	}
	return args[0], nil
}

func bifDeepEqual(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.Boolean(xdm.DeepEqual(args[0], args[1]))), nil
}

func nodeArgOrCtx(ctx *dynCtx, args []xq.Expr) (*xdm.Node, error) {
	v, err := zeroOrCtx(ctx, args)
	if err != nil {
		return nil, err
	}
	if len(v) == 0 {
		return nil, nil
	}
	n, ok := v[0].(*xdm.Node)
	if !ok {
		return nil, xdm.NewError("XPTY0004", "expected a node")
	}
	return n, nil
}

func bifName(ctx *dynCtx, args []xq.Expr) (xdm.Sequence, error) {
	n, err := nodeArgOrCtx(ctx, args)
	if err != nil {
		return nil, err
	}
	if n == nil {
		return xdm.Singleton(xdm.String("")), nil
	}
	return xdm.Singleton(xdm.String(n.Name)), nil
}

func bifLocalName(ctx *dynCtx, args []xq.Expr) (xdm.Sequence, error) {
	n, err := nodeArgOrCtx(ctx, args)
	if err != nil {
		return nil, err
	}
	if n == nil {
		return xdm.Singleton(xdm.String("")), nil
	}
	name := n.Name
	if i := strings.IndexByte(name, ':'); i >= 0 {
		name = name[i+1:]
	}
	return xdm.Singleton(xdm.String(name)), nil
}

func bifNodeName(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	if len(args[0]) == 0 {
		return nil, nil
	}
	n, ok := args[0][0].(*xdm.Node)
	if !ok {
		return nil, xdm.NewError("XPTY0004", "fn:node-name requires a node")
	}
	if n.Name == "" {
		return nil, nil
	}
	return xdm.Singleton(xdm.String(n.Name)), nil
}

func bifRoot(ctx *dynCtx, args []xq.Expr) (xdm.Sequence, error) {
	n, err := nodeArgOrCtx(ctx, args)
	if err != nil || n == nil {
		return nil, err
	}
	return xdm.Singleton(n.Root()), nil
}

func bifLast(ctx *dynCtx, _ []xq.Expr) (xdm.Sequence, error) {
	if ctx.size == 0 {
		return nil, xdm.NewError("XPDY0002", "fn:last outside a predicate")
	}
	return xdm.Singleton(xdm.Integer(ctx.size)), nil
}

func bifPosition(ctx *dynCtx, _ []xq.Expr) (xdm.Sequence, error) {
	if ctx.pos == 0 {
		return nil, xdm.NewError("XPDY0002", "fn:position outside a predicate")
	}
	return xdm.Singleton(xdm.Integer(ctx.pos)), nil
}

func bifError(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	code := "FOER0000"
	msg := "error signalled by fn:error"
	if len(args) >= 1 && len(args[0]) > 0 {
		code = args[0].StringJoin("")
	}
	if len(args) >= 2 {
		msg = args[1].StringJoin("")
	}
	return nil, xdm.NewError(code, msg)
}

func bifTrace(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	return args[0], nil
}

func bifStringValue(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	return xdm.Singleton(xdm.String(args[0].StringJoin(""))), nil
}

// bifXrpcHost implements xrpc:host (§5): for xrpc:// URLs it returns the
// xrpc://host[:port] prefix; otherwise "localhost".
func bifXrpcHost(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	host, _ := SplitXrpcURL(strArg(args[0]))
	return xdm.Singleton(xdm.String(host)), nil
}

// bifXrpcPath implements xrpc:path (§5): for xrpc:// URLs it returns the
// path suffix; otherwise the argument unchanged.
func bifXrpcPath(_ *dynCtx, args []xdm.Sequence) (xdm.Sequence, error) {
	_, path := SplitXrpcURL(strArg(args[0]))
	return xdm.Singleton(xdm.String(path)), nil
}

// SplitXrpcURL splits "xrpc://host[:port]/path" into the peer URI
// ("xrpc://host[:port]") and the local document path. Non-xrpc URLs map
// to ("localhost", url), the defaults given in §5.
func SplitXrpcURL(url string) (host, path string) {
	const scheme = "xrpc://"
	if !strings.HasPrefix(url, scheme) {
		return "localhost", url
	}
	rest := url[len(scheme):]
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		return scheme + rest[:i], rest[i+1:]
	}
	return url, ""
}

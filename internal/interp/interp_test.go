package interp

import (
	"strings"
	"testing"

	"xrpc/internal/modules"
	"xrpc/internal/store"
	"xrpc/internal/xdm"
)

const filmDB = `<films>
<film><name>The Rock</name><actor>Sean Connery</actor></film>
<film><name>Goldfinger</name><actor>Sean Connery</actor></film>
<film><name>Green Card</name><actor>Gerard Depardieu</actor></film>
</films>`

const filmModule = `
module namespace film="films";
declare function film:filmsByActor($actor as xs:string) as node()*
{ doc("filmDB.xml")//name[../actor=$actor] };`

func newTestEngine(t *testing.T) (*Engine, *store.Store) {
	t.Helper()
	st := store.New()
	if err := st.LoadXML("filmDB.xml", filmDB); err != nil {
		t.Fatal(err)
	}
	reg := modules.NewRegistry()
	if err := reg.Register(filmModule, "http://x.example.org/film.xq"); err != nil {
		t.Fatal(err)
	}
	return New(st, reg, nil), st
}

func evalQuery(t *testing.T, e *Engine, src string) xdm.Sequence {
	t.Helper()
	c, err := e.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v\nquery: %s", err, src)
	}
	seq, _, err := c.Eval(nil)
	if err != nil {
		t.Fatalf("eval: %v\nquery: %s", err, src)
	}
	return seq
}

func evalStr(t *testing.T, e *Engine, src string) string {
	t.Helper()
	return xdm.SerializeSequence(evalQuery(t, e, src))
}

func TestEvalLiteralsAndArithmetic(t *testing.T) {
	e, _ := newTestEngine(t)
	cases := map[string]string{
		`1 + 2`:                "3",
		`2 * 3 + 4`:            "10",
		`10 div 4`:             "2.5",
		`10 idiv 4`:            "2",
		`10 mod 4`:             "2",
		`-(3)`:                 "-3",
		`1.5 + 1`:              "2.5",
		`2e1 * 2`:              "40",
		`"a"`:                  "a",
		`()`:                   "",
		`(1,2,3)`:              "1 2 3",
		`(1 to 5)`:             "1 2 3 4 5",
		`(5 to 1)`:             "",
		`concat("a","b")`:      "ab",
		`1 + ()`:               "",
		`sum((1,2,3))`:         "6",
		`sum(())`:              "0",
		`count((1,2,3))`:       "3",
		`avg((2,4))`:           "3",
		`min((3,1,2))`:         "1",
		`max((3,1,2))`:         "3",
		`abs(-4)`:              "4",
		`floor(2.7)`:           "2",
		`ceiling(2.1)`:         "3",
		`round(2.5)`:           "3",
		`string-length("abc")`: "3",
	}
	for q, want := range cases {
		if got := evalStr(t, e, q); got != want {
			t.Errorf("%s = %q, want %q", q, got, want)
		}
	}
}

func TestEvalDivisionByZero(t *testing.T) {
	e, _ := newTestEngine(t)
	c, err := e.Compile(`1 div 0`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Eval(nil); err == nil {
		t.Fatal("expected FOAR0001")
	} else if !strings.Contains(err.Error(), "FOAR0001") {
		t.Fatalf("error = %v", err)
	}
}

func TestEvalComparisons(t *testing.T) {
	e, _ := newTestEngine(t)
	cases := map[string]string{
		`1 < 2`:                                 "true",
		`2 le 2`:                                "true",
		`"a" eq "a"`:                            "true",
		`(1,2,3) = 3`:                           "true",
		`(1,2) = (3,4)`:                         "false",
		`() = 1`:                                "false",
		`1 eq 1.0`:                              "true",
		`not(1 = 2)`:                            "true",
		`true() and false()`:                    "false",
		`true() or false()`:                     "true",
		`1 < 2 and 2 < 3`:                       "true",
		`some $x in (1,2,3) satisfies $x gt 2`:  "true",
		`every $x in (1,2,3) satisfies $x gt 2`: "false",
	}
	for q, want := range cases {
		if got := evalStr(t, e, q); got != want {
			t.Errorf("%s = %q, want %q", q, got, want)
		}
	}
}

func TestEvalPathsOnFilmDB(t *testing.T) {
	e, _ := newTestEngine(t)
	cases := map[string]string{
		`count(doc("filmDB.xml")//film)`:                       "3",
		`doc("filmDB.xml")//name[../actor="Sean Connery"]`:     "<name>The Rock</name><name>Goldfinger</name>",
		`doc("filmDB.xml")/films/film[1]/name`:                 "<name>The Rock</name>",
		`doc("filmDB.xml")/films/film[last()]/name`:            "<name>Green Card</name>",
		`string(doc("filmDB.xml")//film[2]/actor)`:             "Sean Connery",
		`count(doc("filmDB.xml")//film[actor="Sean Connery"])`: "2",
		// 6 content texts + 4 inter-element whitespace texts
		`count(doc("filmDB.xml")//text())`: "10",
		// //name[2] is per-parent (each film has one name) — to pick the
		// second overall, filter the whole sequence:
		`(doc("filmDB.xml")//name)[position()=2]`:                "<name>Goldfinger</name>",
		`doc("filmDB.xml")//name[2]`:                             "",
		`count(doc("filmDB.xml")/films/film/node())`:             "6",
		`doc("filmDB.xml")//actor[.="Gerard Depardieu"]/../name`: "<name>Green Card</name>",
	}
	for q, want := range cases {
		if got := evalStr(t, e, q); got != want {
			t.Errorf("%s = %q, want %q", q, got, want)
		}
	}
}

func TestEvalAttributes(t *testing.T) {
	st := store.New()
	if err := st.LoadXML("p.xml", `<people><person id="p1" age="30"/><person id="p2" age="40"/></people>`); err != nil {
		t.Fatal(err)
	}
	e := New(st, nil, nil)
	cases := map[string]string{
		`string(doc("p.xml")//person[1]/@id)`:       "p1",
		`count(doc("p.xml")//person[@id="p2"])`:     "1",
		`string(doc("p.xml")//person[@age=40]/@id)`: "p2",
		`count(doc("p.xml")//@*)`:                   "4",
	}
	for q, want := range cases {
		if got := evalStr(t, e, q); got != want {
			t.Errorf("%s = %q, want %q", q, got, want)
		}
	}
}

func TestEvalFLWOR(t *testing.T) {
	e, _ := newTestEngine(t)
	cases := map[string]string{
		`for $x in (1,2,3) return $x * 2`:                          "2 4 6",
		`for $x in (1,2,3) where $x gt 1 return $x`:                "2 3",
		`for $x in (3,1,2) order by $x return $x`:                  "1 2 3",
		`for $x in (3,1,2) order by $x descending return $x`:       "3 2 1",
		`for $x at $i in ("a","b") return $i`:                      "1 2",
		`let $y := 5 return $y + 1`:                                "6",
		`for $x in (1,2) for $y in (10,20) return $x + $y`:         "11 21 12 22",
		`for $x in (1,2), $y in (10,20) return $x + $y`:            "11 21 12 22",
		`for $f in doc("filmDB.xml")//film return string($f/name)`: "The Rock Goldfinger Green Card",
		`for $x in (1,2) let $z := ($x, $x*10) return count($z)`:   "2 2",
	}
	for q, want := range cases {
		if got := evalStr(t, e, q); got != want {
			t.Errorf("%s = %q, want %q", q, got, want)
		}
	}
}

// Q5 from §3.1 of the paper: nested for-loops with a two-item let.
func TestEvalQ5LoopLifting(t *testing.T) {
	e, _ := newTestEngine(t)
	got := evalStr(t, e, `
for $x in (10,20)
return for $y in (100,200)
       let $z := ($x,$y)
       return $z`)
	want := "10 100 10 200 20 100 20 200"
	if got != want {
		t.Errorf("Q5 = %q, want %q", got, want)
	}
}

func TestEvalConstructors(t *testing.T) {
	e, _ := newTestEngine(t)
	cases := map[string]string{
		`<a/>`:                  "<a/>",
		`<a x="1">t</a>`:        `<a x="1">t</a>`,
		`<a>{1+1}</a>`:          "<a>2</a>",
		`<a>{(1,2,3)}</a>`:      "<a>1 2 3</a>",
		`<a>x{1}y</a>`:          "<a>x1y</a>",
		`<a b="{1+1}"/>`:        `<a b="2"/>`,
		`element {"z"} {42}`:    "<z>42</z>",
		`text {"hi"}`:           "hi",
		`<a>{<b>inner</b>}</a>`: "<a><b>inner</b></a>",
		`<films>{doc("filmDB.xml")//name[../actor="Sean Connery"]}</films>`: "<films><name>The Rock</name><name>Goldfinger</name></films>",
		`<p>{attribute {"id"} {"x"}}</p>`:                                   `<p id="x"/>`,
	}
	for q, want := range cases {
		if got := evalStr(t, e, q); got != want {
			t.Errorf("%s = %q, want %q", q, got, want)
		}
	}
}

func TestConstructorCopiesNodes(t *testing.T) {
	e, _ := newTestEngine(t)
	// the node inside the constructor must be a copy: its parent chain
	// ends at the new element, not the source document.
	seq := evalQuery(t, e, `<wrap>{doc("filmDB.xml")//name[1]}</wrap>`)
	wrap := seq[0].(*xdm.Node)
	inner := wrap.Children[0]
	if inner.Parent != wrap {
		t.Error("inner node's parent should be the new element")
	}
	if inner.Root() != wrap {
		t.Error("inner node's root should be the constructed element")
	}
}

func TestEvalUserFunctions(t *testing.T) {
	e, _ := newTestEngine(t)
	got := evalStr(t, e, `
declare function local:fact($n as xs:integer) as xs:integer
{ if ($n le 1) then 1 else $n * local:fact($n - 1) };
local:fact(5)`)
	if got != "120" {
		t.Errorf("fact(5) = %q", got)
	}
}

func TestEvalModuleImport(t *testing.T) {
	e, _ := newTestEngine(t)
	got := evalStr(t, e, `
import module namespace f="films" at "http://x.example.org/film.xq";
f:filmsByActor("Sean Connery")`)
	want := "<name>The Rock</name><name>Goldfinger</name>"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestEvalFunctionConversionRules(t *testing.T) {
	e, _ := newTestEngine(t)
	// untyped node content must cast to the declared xs:string parameter
	got := evalStr(t, e, `
declare function local:greet($who as xs:string) as xs:string
{ concat("hi ", $who) };
local:greet((doc("filmDB.xml")//actor)[1])`)
	if got != "hi Sean Connery" {
		t.Errorf("got %q", got)
	}
	// cardinality violation
	c, err := e.Compile(`
declare function local:one($x as xs:string) { $x };
local:one(("a","b"))`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Eval(nil); err == nil {
		t.Error("expected cardinality error")
	}
}

func TestEvalRecursionLimit(t *testing.T) {
	e, _ := newTestEngine(t)
	e.MaxRecursion = 32
	c, err := e.Compile(`
declare function local:loop($n as xs:integer) as xs:integer
{ local:loop($n + 1) };
local:loop(0)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Eval(nil); err == nil {
		t.Fatal("expected recursion limit error")
	}
}

func TestEvalExternalVariables(t *testing.T) {
	e, _ := newTestEngine(t)
	c, err := e.Compile(`for $i in (1 to $x) return $i`)
	if err != nil {
		t.Fatal(err)
	}
	seq, _, err := c.Eval(&EvalOptions{Vars: map[string]xdm.Sequence{
		"x": {xdm.Integer(4)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := xdm.SerializeSequence(seq); got != "1 2 3 4" {
		t.Errorf("got %q", got)
	}
}

func TestEvalPrologVariables(t *testing.T) {
	e, _ := newTestEngine(t)
	got := evalStr(t, e, `
declare variable $base as xs:integer := 10;
$base * 2`)
	if got != "20" {
		t.Errorf("got %q", got)
	}
}

func TestEvalStringFunctions(t *testing.T) {
	e, _ := newTestEngine(t)
	cases := map[string]string{
		`contains("hello","ell")`:        "true",
		`starts-with("hello","he")`:      "true",
		`ends-with("hello","lo")`:        "true",
		`substring("hello",2)`:           "ello",
		`substring("hello",2,3)`:         "ell",
		`substring-before("a=b","=")`:    "a",
		`substring-after("a=b","=")`:     "b",
		`upper-case("aBc")`:              "ABC",
		`lower-case("aBc")`:              "abc",
		`normalize-space("  a   b ")`:    "a b",
		`translate("abc","ab","xy")`:     "xyc",
		`string-join(("a","b","c"),"-")`: "a-b-c",
		`count(tokenize("a,b,c",","))`:   "3",
		`string(number("42"))`:           "42",
		`string(number("nope"))`:         "NaN",
		`distinct-values((1,2,1,3))`:     "1 2 3",
		`reverse((1,2,3))`:               "3 2 1",
		`subsequence((1,2,3,4),2,2)`:     "2 3",
		`insert-before((1,2),2,(9))`:     "1 9 2",
		`remove((1,2,3),2)`:              "1 3",
		`index-of((10,20,10),10)`:        "1 3",
		`deep-equal(<a>x</a>,<a>x</a>)`:  "true",
		`deep-equal(<a>x</a>,<a>y</a>)`:  "false",
		`name(<foo/>)`:                   "foo",
		`local-name(<x:foo/>)`:           "foo",
	}
	for q, want := range cases {
		if got := evalStr(t, e, q); got != want {
			t.Errorf("%s = %q, want %q", q, got, want)
		}
	}
}

func TestEvalCardinalityFunctions(t *testing.T) {
	e, _ := newTestEngine(t)
	if got := evalStr(t, e, `zero-or-one(())`); got != "" {
		t.Errorf("zero-or-one(()) = %q", got)
	}
	if got := evalStr(t, e, `exactly-one(5)`); got != "5" {
		t.Errorf("exactly-one(5) = %q", got)
	}
	c, _ := e.Compile(`zero-or-one((1,2))`)
	if _, _, err := c.Eval(nil); err == nil {
		t.Error("zero-or-one((1,2)) should fail")
	}
	c, _ = e.Compile(`one-or-more(())`)
	if _, _, err := c.Eval(nil); err == nil {
		t.Error("one-or-more(()) should fail")
	}
}

func TestEvalCastAndInstance(t *testing.T) {
	e, _ := newTestEngine(t)
	cases := map[string]string{
		`"42" cast as xs:integer`:         "42",
		`xs:integer("17") + 1`:            "18",
		`"x" castable as xs:integer`:      "false",
		`"7" castable as xs:integer`:      "true",
		`5 instance of xs:integer`:        "true",
		`(1,2) instance of xs:integer+`:   "true",
		`() instance of empty-sequence()`: "true",
		`<a/> instance of element()`:      "true",
	}
	for q, want := range cases {
		if got := evalStr(t, e, q); got != want {
			t.Errorf("%s = %q, want %q", q, got, want)
		}
	}
}

func TestEvalNodeComparisons(t *testing.T) {
	e, _ := newTestEngine(t)
	cases := map[string]string{
		`let $d := doc("filmDB.xml") return $d//film[1] is $d//film[1]`: "true",
		`let $d := doc("filmDB.xml") return $d//film[1] is $d//film[2]`: "false",
		`let $d := doc("filmDB.xml") return $d//film[1] << $d//film[2]`: "true",
		`let $d := doc("filmDB.xml") return $d//film[2] >> $d//film[1]`: "true",
	}
	for q, want := range cases {
		if got := evalStr(t, e, q); got != want {
			t.Errorf("%s = %q, want %q", q, got, want)
		}
	}
}

func TestEvalUnion(t *testing.T) {
	e, _ := newTestEngine(t)
	got := evalStr(t, e, `
let $d := doc("filmDB.xml")
return count(($d//film[1] | $d//film[2] | $d//film[1]))`)
	if got != "2" {
		t.Errorf("union count = %q", got)
	}
}

func TestEvalIfElse(t *testing.T) {
	e, _ := newTestEngine(t)
	if got := evalStr(t, e, `if (1 < 2) then "y" else "n"`); got != "y" {
		t.Errorf("got %q", got)
	}
	if got := evalStr(t, e, `if (()) then "y" else "n"`); got != "n" {
		t.Errorf("got %q", got)
	}
}

func TestEvalXrpcHelpers(t *testing.T) {
	e, _ := newTestEngine(t)
	cases := map[string]string{
		`xrpc:host("xrpc://b.example.org/auctions.xml")`: "xrpc://b.example.org",
		`xrpc:path("xrpc://b.example.org/auctions.xml")`: "auctions.xml",
		`xrpc:host("auctions.xml")`:                      "localhost",
		`xrpc:path("auctions.xml")`:                      "auctions.xml",
		`xrpc:host("xrpc://b.example.org:9000/a/b.xml")`: "xrpc://b.example.org:9000",
		`xrpc:path("xrpc://b.example.org:9000/a/b.xml")`: "a/b.xml",
	}
	for q, want := range cases {
		if got := evalStr(t, e, q); got != want {
			t.Errorf("%s = %q, want %q", q, got, want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	e, _ := newTestEngine(t)
	bad := []string{
		`$undefined`,
		`error("err:TEST", "boom")`,
		`doc("nope.xml")`,
		`unknownfn(1)`,
	}
	for _, q := range bad {
		c, err := e.Compile(q)
		if err != nil {
			continue
		}
		if _, _, err := c.Eval(nil); err == nil {
			t.Errorf("%s: expected error", q)
		}
	}
}

// --------------------------------------------------------------- updates

func TestUpdateInsertDelete(t *testing.T) {
	e, st := newTestEngine(t)
	c, err := e.Compile(`insert node <film><name>New</name><actor>X</actor></film> into doc("filmDB.xml")/films`)
	if err != nil {
		t.Fatal(err)
	}
	_, pul, err := c.Eval(&EvalOptions{CollectUpdates: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pul.Prims) != 1 {
		t.Fatalf("pul = %d prims", len(pul.Prims))
	}
	// before apply: invisible (XQUF defers side effects)
	if got := evalStr(t, e, `count(doc("filmDB.xml")//film)`); got != "3" {
		t.Fatalf("pre-apply count = %s", got)
	}
	if err := ApplyUpdates(st, pul); err != nil {
		t.Fatal(err)
	}
	if got := evalStr(t, e, `count(doc("filmDB.xml")//film)`); got != "4" {
		t.Fatalf("post-apply count = %s", got)
	}
	// delete it again
	c, _ = e.Compile(`delete nodes doc("filmDB.xml")//film[name="New"]`)
	_, pul, err = c.Eval(&EvalOptions{CollectUpdates: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyUpdates(st, pul); err != nil {
		t.Fatal(err)
	}
	if got := evalStr(t, e, `count(doc("filmDB.xml")//film)`); got != "3" {
		t.Fatalf("post-delete count = %s", got)
	}
}

func TestUpdateInsertPositions(t *testing.T) {
	e, st := newTestEngine(t)
	apply := func(q string) {
		t.Helper()
		c, err := e.Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		_, pul, err := c.Eval(&EvalOptions{CollectUpdates: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := ApplyUpdates(st, pul); err != nil {
			t.Fatal(err)
		}
	}
	apply(`insert node <film><name>AAA</name></film> as first into doc("filmDB.xml")/films`)
	if got := evalStr(t, e, `string(doc("filmDB.xml")/films/film[1]/name)`); got != "AAA" {
		t.Fatalf("as-first = %q", got)
	}
	apply(`insert node <film><name>ZZZ</name></film> as last into doc("filmDB.xml")/films`)
	if got := evalStr(t, e, `string(doc("filmDB.xml")/films/film[last()]/name)`); got != "ZZZ" {
		t.Fatalf("as-last = %q", got)
	}
	apply(`insert node <film><name>MID</name></film> before doc("filmDB.xml")//film[name="ZZZ"]`)
	if got := evalStr(t, e, `string(doc("filmDB.xml")/films/film[last()-1]/name)`); got != "MID" {
		t.Fatalf("before = %q", got)
	}
	apply(`insert node <film><name>END</name></film> after doc("filmDB.xml")//film[name="ZZZ"]`)
	if got := evalStr(t, e, `string(doc("filmDB.xml")/films/film[last()]/name)`); got != "END" {
		t.Fatalf("after = %q", got)
	}
}

func TestUpdateReplaceRename(t *testing.T) {
	e, st := newTestEngine(t)
	apply := func(q string) {
		t.Helper()
		c, err := e.Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		_, pul, err := c.Eval(&EvalOptions{CollectUpdates: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := ApplyUpdates(st, pul); err != nil {
			t.Fatal(err)
		}
	}
	apply(`replace value of node doc("filmDB.xml")//film[1]/name with "Renamed Rock"`)
	if got := evalStr(t, e, `string(doc("filmDB.xml")//film[1]/name)`); got != "Renamed Rock" {
		t.Fatalf("replace value = %q", got)
	}
	apply(`replace node doc("filmDB.xml")//film[3] with <film><name>Other</name><actor>Nobody</actor></film>`)
	if got := evalStr(t, e, `string(doc("filmDB.xml")//film[3]/actor)`); got != "Nobody" {
		t.Fatalf("replace node = %q", got)
	}
	apply(`rename node doc("filmDB.xml")//film[1]/name as "title"`)
	if got := evalStr(t, e, `count(doc("filmDB.xml")//film[1]/title)`); got != "1" {
		t.Fatalf("rename = %q", got)
	}
}

func TestUpdatePut(t *testing.T) {
	e, st := newTestEngine(t)
	c, err := e.Compile(`put(<backup>{doc("filmDB.xml")//name}</backup>, "backup.xml")`)
	if err != nil {
		t.Fatal(err)
	}
	_, pul, err := c.Eval(&EvalOptions{CollectUpdates: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyUpdates(st, pul); err != nil {
		t.Fatal(err)
	}
	if got := evalStr(t, e, `count(doc("backup.xml")//name)`); got != "3" {
		t.Fatalf("put = %q", got)
	}
}

func TestUpdatingFunctionClassification(t *testing.T) {
	e, _ := newTestEngine(t)
	c, err := e.Compile(`
declare updating function local:add($n as xs:string)
{ insert node <film><name>{$n}</name></film> into doc("filmDB.xml")/films };
local:add("via function")`)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsUpdating() {
		t.Error("query calling an updating function must be classified updating")
	}
	c2, err := e.Compile(`1 + 1`)
	if err != nil {
		t.Fatal(err)
	}
	if c2.IsUpdating() {
		t.Error("1+1 misclassified as updating")
	}
}

func TestUpdateRejectedOutsideUpdatingContext(t *testing.T) {
	e, _ := newTestEngine(t)
	c, err := e.Compile(`delete node doc("filmDB.xml")//film[1]`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Eval(nil); err == nil {
		t.Fatal("update without CollectUpdates should be rejected")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	e, st := newTestEngine(t)
	snap := st.Snapshot()
	// concurrent update commits a 4th film
	c, _ := e.Compile(`insert node <film><name>X</name></film> into doc("filmDB.xml")/films`)
	_, pul, err := c.Eval(&EvalOptions{CollectUpdates: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyUpdates(st, pul); err != nil {
		t.Fatal(err)
	}
	// query against the snapshot still sees 3 (repeatable read, rule R'_Fr)
	c2, _ := e.Compile(`count(doc("filmDB.xml")//film)`)
	seq, _, err := c2.Eval(&EvalOptions{Docs: snap})
	if err != nil {
		t.Fatal(err)
	}
	if got := xdm.SerializeSequence(seq); got != "3" {
		t.Errorf("snapshot sees %s films, want 3", got)
	}
	// latest state sees 4 (rule R_Fr)
	if got := evalStr(t, e, `count(doc("filmDB.xml")//film)`); got != "4" {
		t.Errorf("latest sees %s films, want 4", got)
	}
}

func TestCallFunctionDirect(t *testing.T) {
	e, _ := newTestEngine(t)
	c, err := e.Compile(`import module namespace f="films" at "http://x.example.org/film.xq"; 1`)
	if err != nil {
		t.Fatal(err)
	}
	seq, _, err := c.CallFunction("films", "filmsByActor",
		[]xdm.Sequence{{xdm.String("Sean Connery")}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 2 {
		t.Fatalf("got %d films", len(seq))
	}
}

func TestStatsCompileTimeRecorded(t *testing.T) {
	e, _ := newTestEngine(t)
	c, err := e.Compile(`1+1`)
	if err != nil {
		t.Fatal(err)
	}
	if c.CompileTime <= 0 {
		t.Error("compile time not recorded")
	}
}

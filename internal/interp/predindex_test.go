package interp

import (
	"fmt"
	"strings"
	"testing"

	"xrpc/internal/store"
	"xrpc/internal/xdm"
	"xrpc/internal/xq"
)

func bigPersonStore(t *testing.T, n int) *store.Store {
	t.Helper()
	var b strings.Builder
	b.WriteString("<people>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `<person id="p%d"><age>%d</age></person>`, i, 20+i%50)
	}
	b.WriteString("</people>")
	st := store.New()
	if err := st.LoadXML("people.xml", b.String()); err != nil {
		t.Fatal(err)
	}
	return st
}

// The predicate index must return exactly what row-at-a-time evaluation
// returns, across repeated probes.
func TestPredIndexMatchesNaive(t *testing.T) {
	st := bigPersonStore(t, 100)
	query := `
for $i in (0 to 99)
let $pid := concat("p", string($i))
return count(doc("people.xml")//person[@id=$pid])`
	run := func(disable bool) string {
		e := New(st, nil, nil)
		e.DisablePredIndex = disable
		c, err := e.Compile(query)
		if err != nil {
			t.Fatal(err)
		}
		seq, _, err := c.Eval(nil)
		if err != nil {
			t.Fatal(err)
		}
		return xdm.SerializeSequence(seq)
	}
	withIdx, naive := run(false), run(true)
	if withIdx != naive {
		t.Fatalf("index changed semantics:\nindexed: %s\nnaive:   %s", withIdx, naive)
	}
	if !strings.HasPrefix(withIdx, "1 1 1") {
		t.Errorf("result = %s", withIdx[:30])
	}
}

// Numeric probes must NOT use the string-keyed index ("07" vs 7).
func TestPredIndexNumericFallback(t *testing.T) {
	st := store.New()
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&b, "<e k=\"0%d\"/>", i) // zero-padded untyped keys
	}
	b.WriteString("</r>")
	if err := st.LoadXML("r.xml", b.String()); err != nil {
		t.Fatal(err)
	}
	e := New(st, nil, nil)
	c, err := e.Compile(`
for $i in (1 to 20)
return count(doc("r.xml")//e[@k=$i])`)
	if err != nil {
		t.Fatal(err)
	}
	seq, _, err := c.Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	// untyped "01".."019" compare NUMERICALLY with integer probes
	// (1..19 hit; 20 misses) — a string-keyed index would find nothing,
	// so these hits prove the numeric fallback
	got := xdm.SerializeSequence(seq)
	want := strings.TrimSpace(strings.Repeat("1 ", 19) + "0")
	if got != want {
		t.Errorf("numeric comparison through index broke: %s", got)
	}
}

// Predicates that consult position() or the context must not be indexed.
func TestPredIndexSkipsContextDependent(t *testing.T) {
	st := bigPersonStore(t, 30)
	e := New(st, nil, nil)
	c, err := e.Compile(`count(doc("people.xml")//person[position() = last()])`)
	if err != nil {
		t.Fatal(err)
	}
	seq, _, err := c.Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := xdm.SerializeSequence(seq); got != "1" {
		t.Errorf("position()=last() = %s", got)
	}
}

func TestPurePathClassification(t *testing.T) {
	pure := []string{`@id`, `buyer/@person`, `name`}
	impure := []string{`../x`, `doc("d")//x`, `a[1]/b`}
	for _, src := range pure {
		e, err := xq.ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		p, ok := e.(*xq.Path)
		if !ok {
			t.Fatalf("%s parsed as %T", src, e)
		}
		if !purePath(p) {
			t.Errorf("%s should be pure", src)
		}
	}
	for _, src := range impure {
		e, err := xq.ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		if p, ok := e.(*xq.Path); ok && purePath(p) {
			t.Errorf("%s should not be pure", src)
		}
	}
}

func TestContextFreeClassification(t *testing.T) {
	free := []string{`$x`, `"s"`, `1 + 2`, `concat($a, "x")`, `doc("d")//p`}
	bound := []string{`.`, `position()`, `last()`, `string()`, `@id`, `name`}
	for _, src := range free {
		e, err := xq.ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		if !contextFree(e) {
			t.Errorf("%s should be context-free", src)
		}
	}
	for _, src := range bound {
		e, err := xq.ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		if contextFree(e) {
			t.Errorf("%s should be context-dependent", src)
		}
	}
}

func TestMoreBuiltins(t *testing.T) {
	e, _ := newTestEngine(t)
	cases := map[string]string{
		`empty(())`:                      "true",
		`empty((1))`:                     "false",
		`exists(())`:                     "false",
		`boolean((1))`:                   "true",
		`data(<a>5</a>)`:                 "5",
		`node-name(<q/>)`:                "q",
		`string(root(<a><b/></a>))`:      "",
		`trace((1,2), "label")`:          "1 2",
		`string-value(<a>x<b>y</b></a>)`: "xy",
		`substring("hello", 0)`:          "hello",
		`substring("hello", 2, 100)`:     "ello",
		`string-join((), "-")`:           "",
		`normalize-space("")`:            "",
		`sum((), 99)`:                    "99",
		`avg(())`:                        "",
		`min(())`:                        "",
		`max(())`:                        "",
		`number(())`:                     "NaN",
		`abs(-2.5)`:                      "2.5",
	}
	for q, want := range cases {
		if got := evalStr(t, e, q); got != want {
			t.Errorf("%s = %q, want %q", q, got, want)
		}
	}
}

func TestEvalOrderByMultiKey(t *testing.T) {
	e, _ := newTestEngine(t)
	got := evalStr(t, e, `
for $p in ((3, "b"), (1, "c"))
return $p`)
	_ = got
	got = evalStr(t, e, `
for $x in (3, 1, 2, 1)
order by $x, $x * -1 descending
return $x`)
	if got != "1 1 2 3" {
		t.Errorf("multi-key order = %q", got)
	}
}

func TestEvalInstanceOfMore(t *testing.T) {
	e, _ := newTestEngine(t)
	cases := map[string]string{
		`"x" instance of xs:string`:                     "true",
		`"x" instance of xs:integer`:                    "false",
		`(1,2) instance of xs:integer`:                  "false",
		`() instance of xs:integer?`:                    "true",
		`3.5 instance of xs:decimal`:                    "false", // 3.5 parses as decimal literal -> Decimal: true actually
		`<a/> instance of node()`:                       "true",
		`<a/> instance of document-node()`:              "false",
		`doc("filmDB.xml") instance of document-node()`: "true",
		`(<a/>, 1) instance of item()+`:                 "true",
	}
	// fix the decimal expectation: 3.5 IS xs:decimal
	cases[`3.5 instance of xs:decimal`] = "true"
	for q, want := range cases {
		if got := evalStr(t, e, q); got != want {
			t.Errorf("%s = %q, want %q", q, got, want)
		}
	}
}

func TestUpdateListDescribe(t *testing.T) {
	e, st := newTestEngine(t)
	_ = st
	c, err := e.Compile(`(
  insert node <x/> into doc("filmDB.xml")/films,
  delete node doc("filmDB.xml")//film[1],
  put(<y/>, "y.xml"))`)
	if err != nil {
		t.Fatal(err)
	}
	_, pul, err := c.Eval(&EvalOptions{CollectUpdates: true})
	if err != nil {
		t.Fatal(err)
	}
	desc := pul.Describe()
	for _, want := range []string{"insertInto", "delete", "put", "filmDB.xml", `uri="y.xml"`} {
		if !strings.Contains(desc, want) {
			t.Errorf("describe missing %q:\n%s", want, desc)
		}
	}
	// kind names
	for k := PrimInsertInto; k <= PrimPut; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestSequenceTypeOfDecimalLiteral(t *testing.T) {
	e, _ := newTestEngine(t)
	if got := evalStr(t, e, `3.5 instance of xs:decimal`); got != "true" {
		t.Errorf("3.5 instance of xs:decimal = %s", got)
	}
}

func TestEvalTypeswitch(t *testing.T) {
	e, _ := newTestEngine(t)
	cases := map[string]string{
		`typeswitch (5) case xs:integer return "int" default return "other"`:                                    "int",
		`typeswitch ("x") case xs:integer return "int" case xs:string return "str" default return "other"`:      "str",
		`typeswitch (<a/>) case element() return "elem" default return "other"`:                                 "elem",
		`typeswitch (3.5) case xs:integer return "int" default return "dec"`:                                    "dec",
		`typeswitch ((1,2)) case xs:integer return "one" case xs:integer+ return "many" default return "other"`: "many",
		`typeswitch (()) case empty-sequence() return "empty" default return "other"`:                           "empty",
		`typeswitch (7) case $i as xs:integer return $i * 2 default return 0`:                                   "14",
		`typeswitch ("q") case xs:integer return 1 default $d return concat($d, "!")`:                           "q!",
		`typeswitch (doc("filmDB.xml")) case document-node() return "doc" default return "no"`:                  "doc",
	}
	for q, want := range cases {
		if got := evalStr(t, e, q); got != want {
			t.Errorf("%s = %q, want %q", q, got, want)
		}
	}
}

package interp

import (
	"math"
	"sort"
	"strings"

	"xrpc/internal/xdm"
	"xrpc/internal/xq"
)

// varFrame is a linked-list variable environment (cheap shadowing).
type varFrame struct {
	name   string
	val    xdm.Sequence
	parent *varFrame
}

// dynCtx is the dynamic evaluation context: context item / position /
// size, variable bindings, the current module's static context, and the
// pending update list accumulator.
type dynCtx struct {
	c      *Compiled
	module *xq.Module
	docs   DocResolver
	rpc    RPCCaller
	vars   *varFrame
	item   xdm.Item
	pos    int
	size   int
	pul    *UpdateList
	memo   *evalMemo
	depth  int
	maxRec int
}

func (ctx *dynCtx) bind(name string, val xdm.Sequence) {
	ctx.vars = &varFrame{name: name, val: val, parent: ctx.vars}
}

func (ctx *dynCtx) lookup(name string) (xdm.Sequence, bool) {
	for f := ctx.vars; f != nil; f = f.parent {
		if f.name == name {
			return f.val, true
		}
	}
	return nil, false
}

// child returns a copy of the context; bindings added to the copy do not
// leak back.
func (ctx *dynCtx) child() *dynCtx {
	cp := *ctx
	return &cp
}

func (ctx *dynCtx) eval(e xq.Expr) (xdm.Sequence, error) {
	switch n := e.(type) {
	case *xq.StringLit:
		return xdm.Singleton(xdm.String(n.Val)), nil
	case *xq.IntLit:
		return xdm.Singleton(xdm.Integer(n.Val)), nil
	case *xq.DecimalLit:
		return xdm.Singleton(xdm.Decimal(n.Val)), nil
	case *xq.DoubleLit:
		return xdm.Singleton(xdm.Double(n.Val)), nil
	case *xq.EmptySeq:
		return nil, nil
	case *xq.VarRef:
		v, ok := ctx.lookup(n.Name)
		if !ok {
			return nil, xdm.Errorf("XPST0008", "undefined variable $%s", n.Name)
		}
		return v, nil
	case *xq.ContextItem:
		if ctx.item == nil {
			return nil, xdm.NewError("XPDY0002", "context item is absent")
		}
		return xdm.Singleton(ctx.item), nil
	case *xq.SeqExpr:
		var out xdm.Sequence
		for _, it := range n.Items {
			v, err := ctx.eval(it)
			if err != nil {
				return nil, err
			}
			out = append(out, v...)
		}
		return out, nil
	case *xq.RangeExpr:
		return ctx.evalRange(n)
	case *xq.Arith:
		return ctx.evalArith(n)
	case *xq.Unary:
		return ctx.evalUnary(n)
	case *xq.Comparison:
		return ctx.evalComparison(n)
	case *xq.Logic:
		return ctx.evalLogic(n)
	case *xq.UnionExpr:
		return ctx.evalUnion(n)
	case *xq.If:
		cond, err := ctx.eval(n.Cond)
		if err != nil {
			return nil, err
		}
		b, err := xdm.EffectiveBoolean(cond)
		if err != nil {
			return nil, err
		}
		if b {
			return ctx.eval(n.Then)
		}
		return ctx.eval(n.Else)
	case *xq.FLWOR:
		return ctx.evalFLWOR(n)
	case *xq.Quantified:
		return ctx.evalQuantified(n)
	case *xq.Path:
		return ctx.evalPath(n)
	case *xq.FuncCall:
		return ctx.evalCall(n)
	case *xq.ExecuteAt:
		return ctx.evalExecuteAt(n)
	case *xq.DirElem:
		node, err := ctx.constructElem(n)
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(node), nil
	case *xq.DirComment:
		c := xdm.NewComment(n.CommentValue())
		c.Seal()
		return xdm.Singleton(c), nil
	case *xq.Enclosed:
		return ctx.eval(n.X)
	case *xq.CompElem:
		return ctx.evalCompElem(n)
	case *xq.CompAttr:
		return ctx.evalCompAttr(n)
	case *xq.CompText:
		v, err := ctx.eval(n.Val)
		if err != nil {
			return nil, err
		}
		t := xdm.NewText(v.StringJoin(" "))
		t.Seal()
		return xdm.Singleton(t), nil
	case *xq.Cast:
		return ctx.evalCast(n)
	case *xq.Typeswitch:
		return ctx.evalTypeswitch(n)
	case *xq.Castable:
		v, err := ctx.eval(n.X)
		if err != nil {
			return nil, err
		}
		v = xdm.Atomize(v)
		if len(v) != 1 {
			return xdm.Singleton(xdm.Boolean(false)), nil
		}
		_, castErr := xdm.CastAtomic(v[0], n.Type)
		return xdm.Singleton(xdm.Boolean(castErr == nil)), nil
	case *xq.InstanceOf:
		v, err := ctx.eval(n.X)
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(xdm.Boolean(matchesSeqType(v, n.Type))), nil
	case *xq.Insert, *xq.Delete, *xq.Replace, *xq.Rename:
		return ctx.evalUpdate(e)
	default:
		return nil, xdm.Errorf("XPST0003", "unsupported expression %T", e)
	}
}

func (ctx *dynCtx) evalRange(n *xq.RangeExpr) (xdm.Sequence, error) {
	lo, err := ctx.evalToInt(n.Lo)
	if err != nil {
		return nil, err
	}
	hi, err := ctx.evalToInt(n.Hi)
	if err != nil {
		return nil, err
	}
	if lo > hi {
		return nil, nil
	}
	out := make(xdm.Sequence, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, xdm.Integer(i))
	}
	return out, nil
}

func (ctx *dynCtx) evalToInt(e xq.Expr) (int64, error) {
	v, err := ctx.eval(e)
	if err != nil {
		return 0, err
	}
	v = xdm.Atomize(v)
	if len(v) == 0 {
		return 0, xdm.NewError("XPTY0004", "empty sequence where integer expected")
	}
	if len(v) != 1 {
		return 0, xdm.NewError("XPTY0004", "sequence of more than one item where integer expected")
	}
	cast, err := xdm.CastAtomic(v[0], "xs:integer")
	if err != nil {
		return 0, err
	}
	return int64(cast.(xdm.Integer)), nil
}

func (ctx *dynCtx) evalArith(n *xq.Arith) (xdm.Sequence, error) {
	l, err := ctx.eval(n.L)
	if err != nil {
		return nil, err
	}
	r, err := ctx.eval(n.R)
	if err != nil {
		return nil, err
	}
	l, r = xdm.Atomize(l), xdm.Atomize(r)
	if len(l) == 0 || len(r) == 0 {
		return nil, nil // arithmetic on () yields ()
	}
	if len(l) > 1 || len(r) > 1 {
		return nil, xdm.NewError("XPTY0004", "arithmetic operand is not a singleton")
	}
	return arith(n.Op, l[0], r[0])
}

// Arith exposes the arithmetic kernel for the loop-lifting engine (both
// engines must agree on numeric semantics).
func Arith(op string, a, b xdm.Item) (xdm.Sequence, error) { return arith(op, a, b) }

// ValueOp maps a value-comparison keyword (eq, ne, ...) to its operator.
func ValueOp(op string) (xdm.CompareOp, error) { return valueOp(op) }

// GeneralOp maps a general-comparison symbol (=, !=, ...) to its
// operator.
func GeneralOp(op string) (xdm.CompareOp, error) { return generalOp(op) }

func arith(op string, a, b xdm.Item) (xdm.Sequence, error) {
	fa, okA := xdm.NumericValue(a)
	fb, okB := xdm.NumericValue(b)
	if !okA || !okB {
		return nil, xdm.Errorf("XPTY0004", "cannot apply %s to %s and %s", op, a.TypeName(), b.TypeName())
	}
	_, aInt := a.(xdm.Integer)
	_, bInt := b.(xdm.Integer)
	bothInt := aInt && bInt
	switch op {
	case "+":
		if bothInt {
			return xdm.Singleton(xdm.Integer(int64(fa) + int64(fb))), nil
		}
		return numSeq(a, b, fa+fb), nil
	case "-":
		if bothInt {
			return xdm.Singleton(xdm.Integer(int64(fa) - int64(fb))), nil
		}
		return numSeq(a, b, fa-fb), nil
	case "*":
		if bothInt {
			return xdm.Singleton(xdm.Integer(int64(fa) * int64(fb))), nil
		}
		return numSeq(a, b, fa*fb), nil
	case "div":
		if fb == 0 && !isDouble(a) && !isDouble(b) {
			return nil, xdm.NewError("FOAR0001", "division by zero")
		}
		return numSeqDiv(a, b, fa/fb), nil
	case "idiv":
		if fb == 0 {
			return nil, xdm.NewError("FOAR0001", "integer division by zero")
		}
		return xdm.Singleton(xdm.Integer(int64(fa / fb))), nil
	case "mod":
		if fb == 0 {
			return nil, xdm.NewError("FOAR0001", "modulus by zero")
		}
		if bothInt {
			return xdm.Singleton(xdm.Integer(int64(fa) % int64(fb))), nil
		}
		return numSeq(a, b, math.Mod(fa, fb)), nil
	}
	return nil, xdm.Errorf("XPST0003", "unknown arithmetic operator %q", op)
}

func isDouble(it xdm.Item) bool {
	switch it.(type) {
	case xdm.Double, xdm.Untyped:
		return true
	}
	return false
}

// numSeq picks the result type by the usual promotion ladder
// (integer < decimal < double; untyped promotes to double).
func numSeq(a, b xdm.Item, v float64) xdm.Sequence {
	if isDouble(a) || isDouble(b) {
		return xdm.Singleton(xdm.Double(v))
	}
	return xdm.Singleton(xdm.Decimal(v))
}

// numSeqDiv: integer div integer is xs:decimal per spec.
func numSeqDiv(a, b xdm.Item, v float64) xdm.Sequence {
	if isDouble(a) || isDouble(b) {
		return xdm.Singleton(xdm.Double(v))
	}
	return xdm.Singleton(xdm.Decimal(v))
}

func (ctx *dynCtx) evalUnary(n *xq.Unary) (xdm.Sequence, error) {
	v, err := ctx.eval(n.X)
	if err != nil {
		return nil, err
	}
	v = xdm.Atomize(v)
	if len(v) == 0 {
		return nil, nil
	}
	if len(v) > 1 {
		return nil, xdm.NewError("XPTY0004", "unary operand is not a singleton")
	}
	if !n.Neg {
		return v, nil
	}
	switch x := v[0].(type) {
	case xdm.Integer:
		return xdm.Singleton(xdm.Integer(-x)), nil
	case xdm.Decimal:
		return xdm.Singleton(xdm.Decimal(-x)), nil
	case xdm.Double:
		return xdm.Singleton(xdm.Double(-x)), nil
	case xdm.Untyped:
		f, ok := xdm.NumericValue(x)
		if !ok {
			return nil, xdm.Errorf("FORG0001", "cannot negate %q", x.StringValue())
		}
		return xdm.Singleton(xdm.Double(-f)), nil
	}
	return nil, xdm.Errorf("XPTY0004", "cannot negate %s", v[0].TypeName())
}

func (ctx *dynCtx) evalComparison(n *xq.Comparison) (xdm.Sequence, error) {
	l, err := ctx.eval(n.L)
	if err != nil {
		return nil, err
	}
	r, err := ctx.eval(n.R)
	if err != nil {
		return nil, err
	}
	if n.Node {
		return nodeComparison(n.Op, l, r)
	}
	if n.General {
		op, err := generalOp(n.Op)
		if err != nil {
			return nil, err
		}
		b, err := xdm.GeneralCompare(l, r, op)
		if err != nil {
			return nil, err
		}
		return xdm.Singleton(xdm.Boolean(b)), nil
	}
	// value comparison: empty operand -> empty result
	la, ra := xdm.Atomize(l), xdm.Atomize(r)
	if len(la) == 0 || len(ra) == 0 {
		return nil, nil
	}
	if len(la) > 1 || len(ra) > 1 {
		return nil, xdm.NewError("XPTY0004", "value comparison operand is not a singleton")
	}
	op, err := valueOp(n.Op)
	if err != nil {
		return nil, err
	}
	b, err := xdm.CompareAtomic(la[0], ra[0], op)
	if err != nil {
		return nil, err
	}
	return xdm.Singleton(xdm.Boolean(b)), nil
}

func nodeComparison(op string, l, r xdm.Sequence) (xdm.Sequence, error) {
	if len(l) == 0 || len(r) == 0 {
		return nil, nil
	}
	ln, okL := l[0].(*xdm.Node)
	rn, okR := r[0].(*xdm.Node)
	if len(l) > 1 || len(r) > 1 || !okL || !okR {
		return nil, xdm.NewError("XPTY0004", "node comparison requires single nodes")
	}
	switch op {
	case "is":
		return xdm.Singleton(xdm.Boolean(ln == rn)), nil
	case "<<":
		return xdm.Singleton(xdm.Boolean(xdm.DocOrderLess(ln, rn))), nil
	case ">>":
		return xdm.Singleton(xdm.Boolean(xdm.DocOrderLess(rn, ln))), nil
	}
	return nil, xdm.Errorf("XPST0003", "unknown node comparison %q", op)
}

func generalOp(op string) (xdm.CompareOp, error) {
	switch op {
	case "=":
		return xdm.OpEq, nil
	case "!=":
		return xdm.OpNe, nil
	case "<":
		return xdm.OpLt, nil
	case "<=":
		return xdm.OpLe, nil
	case ">":
		return xdm.OpGt, nil
	case ">=":
		return xdm.OpGe, nil
	}
	return 0, xdm.Errorf("XPST0003", "unknown comparison %q", op)
}

func valueOp(op string) (xdm.CompareOp, error) {
	switch op {
	case "eq":
		return xdm.OpEq, nil
	case "ne":
		return xdm.OpNe, nil
	case "lt":
		return xdm.OpLt, nil
	case "le":
		return xdm.OpLe, nil
	case "gt":
		return xdm.OpGt, nil
	case "ge":
		return xdm.OpGe, nil
	}
	return 0, xdm.Errorf("XPST0003", "unknown comparison %q", op)
}

func (ctx *dynCtx) evalLogic(n *xq.Logic) (xdm.Sequence, error) {
	l, err := ctx.eval(n.L)
	if err != nil {
		return nil, err
	}
	lb, err := xdm.EffectiveBoolean(l)
	if err != nil {
		return nil, err
	}
	if n.Op == "and" && !lb {
		return xdm.Singleton(xdm.Boolean(false)), nil
	}
	if n.Op == "or" && lb {
		return xdm.Singleton(xdm.Boolean(true)), nil
	}
	r, err := ctx.eval(n.R)
	if err != nil {
		return nil, err
	}
	rb, err := xdm.EffectiveBoolean(r)
	if err != nil {
		return nil, err
	}
	return xdm.Singleton(xdm.Boolean(rb)), nil
}

func (ctx *dynCtx) evalUnion(n *xq.UnionExpr) (xdm.Sequence, error) {
	l, err := ctx.eval(n.L)
	if err != nil {
		return nil, err
	}
	r, err := ctx.eval(n.R)
	if err != nil {
		return nil, err
	}
	ln, ok := xdm.NodesOf(l)
	if !ok {
		return nil, xdm.NewError("XPTY0004", "union operand contains non-nodes")
	}
	rn, ok := xdm.NodesOf(r)
	if !ok {
		return nil, xdm.NewError("XPTY0004", "union operand contains non-nodes")
	}
	return xdm.NodeSeq(xdm.SortDocOrderDedup(append(ln, rn...))), nil
}

// -------------------------------------------------------------- FLWOR

func (ctx *dynCtx) evalFLWOR(n *xq.FLWOR) (xdm.Sequence, error) {
	var out xdm.Sequence
	type tuple struct {
		env  *varFrame
		keys []xdm.Item // nil entry = empty key ordering last
	}
	var tuples []tuple
	ordered := len(n.OrderBy) > 0

	var emit func(ctx *dynCtx) error
	emit = func(tctx *dynCtx) error {
		if n.Where != nil {
			w, err := tctx.eval(n.Where)
			if err != nil {
				return err
			}
			b, err := xdm.EffectiveBoolean(w)
			if err != nil {
				return err
			}
			if !b {
				return nil
			}
		}
		if ordered {
			keys := make([]xdm.Item, len(n.OrderBy))
			for i, spec := range n.OrderBy {
				kv, err := tctx.eval(spec.Key)
				if err != nil {
					return err
				}
				kv = xdm.Atomize(kv)
				if len(kv) > 1 {
					return xdm.NewError("XPTY0004", "order by key is not a singleton")
				}
				if len(kv) == 1 {
					keys[i] = kv[0]
				}
			}
			tuples = append(tuples, tuple{env: tctx.vars, keys: keys})
			return nil
		}
		v, err := tctx.eval(n.Return)
		if err != nil {
			return err
		}
		out = append(out, v...)
		return nil
	}

	var runClause func(i int, tctx *dynCtx) error
	runClause = func(i int, tctx *dynCtx) error {
		if i == len(n.Clauses) {
			return emit(tctx)
		}
		switch cl := n.Clauses[i].(type) {
		case *xq.LetClause:
			v, err := tctx.eval(cl.Val)
			if err != nil {
				return err
			}
			next := tctx.child()
			next.bind(cl.Var, v)
			return runClause(i+1, next)
		case *xq.ForClause:
			seq, err := tctx.eval(cl.In)
			if err != nil {
				return err
			}
			for idx, it := range seq {
				next := tctx.child()
				next.bind(cl.Var, xdm.Singleton(it))
				if cl.PosVar != "" {
					next.bind(cl.PosVar, xdm.Singleton(xdm.Integer(idx+1)))
				}
				if err := runClause(i+1, next); err != nil {
					return err
				}
			}
			return nil
		}
		return xdm.NewError("XPST0003", "unknown FLWOR clause")
	}
	if err := runClause(0, ctx); err != nil {
		return nil, err
	}
	if !ordered {
		return out, nil
	}
	specs := n.OrderBy
	var sortErr error
	sort.SliceStable(tuples, func(a, b int) bool {
		for k := range specs {
			ka, kb := tuples[a].keys[k], tuples[b].keys[k]
			if ka == nil && kb == nil {
				continue
			}
			// empty sequence orders greatest (spec default is
			// implementation-chosen; we choose "empty greatest")
			if ka == nil {
				return false
			}
			if kb == nil {
				return true
			}
			lt, err := xdm.CompareAtomic(ka, kb, xdm.OpLt)
			if err != nil {
				sortErr = err
				return false
			}
			gt, _ := xdm.CompareAtomic(ka, kb, xdm.OpGt)
			if !lt && !gt {
				continue
			}
			if specs[k].Descending {
				return gt
			}
			return lt
		}
		return false
	})
	if sortErr != nil {
		return nil, sortErr
	}
	for _, tp := range tuples {
		tctx := ctx.child()
		tctx.vars = tp.env
		v, err := tctx.eval(n.Return)
		if err != nil {
			return nil, err
		}
		out = append(out, v...)
	}
	return out, nil
}

func (ctx *dynCtx) evalQuantified(n *xq.Quantified) (xdm.Sequence, error) {
	seq, err := ctx.eval(n.In)
	if err != nil {
		return nil, err
	}
	for _, it := range seq {
		tctx := ctx.child()
		tctx.bind(n.Var, xdm.Singleton(it))
		v, err := tctx.eval(n.Satisfies)
		if err != nil {
			return nil, err
		}
		b, err := xdm.EffectiveBoolean(v)
		if err != nil {
			return nil, err
		}
		if n.Every && !b {
			return xdm.Singleton(xdm.Boolean(false)), nil
		}
		if !n.Every && b {
			return xdm.Singleton(xdm.Boolean(true)), nil
		}
	}
	return xdm.Singleton(xdm.Boolean(n.Every)), nil
}

// --------------------------------------------------------------- paths

func (ctx *dynCtx) evalPath(p *xq.Path) (xdm.Sequence, error) {
	var current xdm.Sequence
	switch {
	case p.Root != nil:
		v, err := ctx.eval(p.Root)
		if err != nil {
			return nil, err
		}
		current = v
	case p.FromRoot:
		n, ok := ctx.item.(*xdm.Node)
		if !ok {
			return nil, xdm.NewError("XPDY0002", "no context node for '/'")
		}
		current = xdm.Singleton(n.Root())
	default:
		if ctx.item == nil {
			return nil, xdm.NewError("XPDY0002", "no context item for relative path")
		}
		current = xdm.Singleton(ctx.item)
	}
	// predicates on the root primary
	for _, pred := range p.RootPreds {
		filtered, err := ctx.applyPredicate(current, pred, false)
		if err != nil {
			return nil, err
		}
		current = filtered
	}
	if len(p.Steps) == 0 {
		return current, nil
	}
	for si := range p.Steps {
		st := &p.Steps[si]
		nodes, ok := xdm.NodesOf(current)
		if !ok {
			return nil, xdm.NewError("XPTY0004", "path step applied to non-node")
		}
		var results []*xdm.Node
		for _, cn := range nodes {
			stepOut := ctx.memoStep(st, cn)
			seq := xdm.NodeSeq(stepOut)
			for _, pred := range st.Preds {
				var err error
				seq, err = ctx.applyPredicate(seq, pred, st.Axis.Reverse())
				if err != nil {
					return nil, err
				}
			}
			ns, _ := xdm.NodesOf(seq)
			results = append(results, ns...)
		}
		results = xdm.SortDocOrderDedup(results)
		current = xdm.NodeSeq(results)
	}
	return current, nil
}

// applyPredicate filters seq by one predicate, with XPath positional
// semantics (numeric predicate selects by position; position() and
// last() are available).
func (ctx *dynCtx) applyPredicate(seq xdm.Sequence, pred xq.Expr, reverse bool) (xdm.Sequence, error) {
	// fast path: constant integer predicate
	if lit, ok := pred.(*xq.IntLit); ok {
		idx := int(lit.Val)
		if idx >= 1 && idx <= len(seq) {
			return xdm.Singleton(seq[idx-1]), nil
		}
		return nil, nil
	}
	_ = reverse // axis-order positions equal sequence order here: Step returns axis order
	// hash-index fast path for join-shaped predicates (§4)
	if out, ok := ctx.tryIndexedPredicate(seq, pred); ok {
		return out, nil
	}
	var out xdm.Sequence
	for i, it := range seq {
		pctx := ctx.child()
		pctx.item = it
		pctx.pos = i + 1
		pctx.size = len(seq)
		v, err := pctx.eval(pred)
		if err != nil {
			return nil, err
		}
		// numeric predicate: position match
		if len(v) == 1 {
			if f, isNum := numericOf(v[0]); isNum {
				if float64(i+1) == f {
					out = append(out, it)
				}
				continue
			}
		}
		b, err := xdm.EffectiveBoolean(v)
		if err != nil {
			return nil, err
		}
		if b {
			out = append(out, it)
		}
	}
	return out, nil
}

func numericOf(it xdm.Item) (float64, bool) {
	if xdm.IsNumeric(it) {
		f, _ := xdm.NumericValue(it)
		return f, true
	}
	return 0, false
}

// --------------------------------------------------------- constructors

func (ctx *dynCtx) constructElem(n *xq.DirElem) (*xdm.Node, error) {
	el := xdm.NewElement(n.Name)
	for _, a := range n.Attrs {
		var sb strings.Builder
		for _, part := range a.Value {
			switch pt := part.(type) {
			case *xq.StringLit:
				sb.WriteString(pt.Val)
			case *xq.Enclosed:
				v, err := ctx.eval(pt.X)
				if err != nil {
					return nil, err
				}
				sb.WriteString(xdm.Atomize(v).StringJoin(" "))
			}
		}
		el.SetAttr(xdm.NewAttribute(a.Name, sb.String()))
	}
	for _, c := range n.Content {
		switch cn := c.(type) {
		case *xq.StringLit:
			if cn.Val != "" {
				el.AppendChild(xdm.NewText(cn.Val))
			}
		case *xq.DirElem:
			sub, err := ctx.constructElem(cn)
			if err != nil {
				return nil, err
			}
			el.AppendChild(sub)
		case *xq.DirComment:
			el.AppendChild(xdm.NewComment(cn.CommentValue()))
		case *xq.Enclosed:
			v, err := ctx.eval(cn.X)
			if err != nil {
				return nil, err
			}
			if err := appendContent(el, v); err != nil {
				return nil, err
			}
		default:
			v, err := ctx.eval(c)
			if err != nil {
				return nil, err
			}
			if err := appendContent(el, v); err != nil {
				return nil, err
			}
		}
	}
	el.Seal()
	return el, nil
}

// AppendContent exposes constructor content assembly for the
// loop-lifting engine (both engines must build identical elements).
func AppendContent(el *xdm.Node, v xdm.Sequence) error { return appendContent(el, v) }

// appendContent inserts a sequence into constructed element content:
// nodes are deep-copied (constructors copy, per XQuery), adjacent
// atomics join with single spaces into text nodes.
func appendContent(el *xdm.Node, v xdm.Sequence) error {
	prevAtomic := false
	for _, it := range v {
		switch x := it.(type) {
		case *xdm.Node:
			switch x.Kind {
			case xdm.AttributeNode:
				el.SetAttr(xdm.NewAttribute(x.Name, x.Value))
			case xdm.DocumentNode:
				for _, c := range x.Children {
					el.AppendChild(c.Clone())
				}
			default:
				el.AppendChild(x.Clone())
			}
			prevAtomic = false
		default:
			s := it.StringValue()
			if prevAtomic {
				s = " " + s
			}
			if len(el.Children) > 0 && el.Children[len(el.Children)-1].Kind == xdm.TextNode {
				el.Children[len(el.Children)-1].Value += s
			} else if s != "" {
				el.AppendChild(xdm.NewText(s))
			}
			prevAtomic = true
		}
	}
	return nil
}

func (ctx *dynCtx) evalCompElem(n *xq.CompElem) (xdm.Sequence, error) {
	nameSeq, err := ctx.eval(n.Name)
	if err != nil {
		return nil, err
	}
	if len(nameSeq) != 1 {
		return nil, xdm.NewError("XPTY0004", "element name must be a single item")
	}
	el := xdm.NewElement(nameSeq[0].StringValue())
	content, err := ctx.eval(n.Content)
	if err != nil {
		return nil, err
	}
	if err := appendContent(el, content); err != nil {
		return nil, err
	}
	el.Seal()
	return xdm.Singleton(el), nil
}

func (ctx *dynCtx) evalCompAttr(n *xq.CompAttr) (xdm.Sequence, error) {
	nameSeq, err := ctx.eval(n.Name)
	if err != nil {
		return nil, err
	}
	if len(nameSeq) != 1 {
		return nil, xdm.NewError("XPTY0004", "attribute name must be a single item")
	}
	val, err := ctx.eval(n.Value)
	if err != nil {
		return nil, err
	}
	a := xdm.NewAttribute(nameSeq[0].StringValue(), xdm.Atomize(val).StringJoin(" "))
	a.Seal()
	return xdm.Singleton(a), nil
}

// evalTypeswitch implements typeswitch: the first case whose sequence
// type matches the operand wins; its variable (if any) binds the
// operand.
func (ctx *dynCtx) evalTypeswitch(n *xq.Typeswitch) (xdm.Sequence, error) {
	v, err := ctx.eval(n.Operand)
	if err != nil {
		return nil, err
	}
	for _, c := range n.Cases {
		if matchesSeqType(v, c.Type) {
			cctx := ctx.child()
			if c.Var != "" {
				cctx.bind(c.Var, v)
			}
			return cctx.eval(c.Ret)
		}
	}
	dctx := ctx.child()
	if n.DefaultVar != "" {
		dctx.bind(n.DefaultVar, v)
	}
	return dctx.eval(n.Default)
}

func (ctx *dynCtx) evalCast(n *xq.Cast) (xdm.Sequence, error) {
	v, err := ctx.eval(n.X)
	if err != nil {
		return nil, err
	}
	v = xdm.Atomize(v)
	if len(v) == 0 {
		return nil, nil
	}
	if len(v) > 1 {
		return nil, xdm.NewError("XPTY0004", "cast source is not a singleton")
	}
	out, err := xdm.CastAtomic(v[0], n.Type)
	if err != nil {
		return nil, err
	}
	return xdm.Singleton(out), nil
}

// MatchesSeqType exposes sequence-type matching for the loop-lifting
// engine (typeswitch/instance-of must agree across engines).
func MatchesSeqType(v xdm.Sequence, t xq.SeqType) bool { return matchesSeqType(v, t) }

// matchesSeqType implements "instance of" for the supported types.
func matchesSeqType(v xdm.Sequence, t xq.SeqType) bool {
	if t.Empty {
		return len(v) == 0
	}
	switch t.Occurrence {
	case '1', 0:
		if len(v) != 1 {
			return false
		}
	case '?':
		if len(v) > 1 {
			return false
		}
	case '+':
		if len(v) < 1 {
			return false
		}
	}
	for _, it := range v {
		if !matchesItemType(it, t.TypeName) {
			return false
		}
	}
	return true
}

func matchesItemType(it xdm.Item, typeName string) bool {
	switch typeName {
	case "item()":
		return true
	case "node()":
		_, ok := it.(*xdm.Node)
		return ok
	case "element()":
		n, ok := it.(*xdm.Node)
		return ok && n.Kind == xdm.ElementNode
	case "attribute()":
		n, ok := it.(*xdm.Node)
		return ok && n.Kind == xdm.AttributeNode
	case "text()":
		n, ok := it.(*xdm.Node)
		return ok && n.Kind == xdm.TextNode
	case "document-node()":
		n, ok := it.(*xdm.Node)
		return ok && n.Kind == xdm.DocumentNode
	case "comment()":
		n, ok := it.(*xdm.Node)
		return ok && n.Kind == xdm.CommentNode
	case "processing-instruction()":
		n, ok := it.(*xdm.Node)
		return ok && n.Kind == xdm.PINode
	case "xs:anyAtomicType":
		_, isNode := it.(*xdm.Node)
		return !isNode
	case "xs:string":
		_, ok := it.(xdm.String)
		return ok
	case "xs:integer":
		_, ok := it.(xdm.Integer)
		return ok
	case "xs:decimal":
		switch it.(type) {
		case xdm.Decimal, xdm.Integer:
			return true
		}
		return false
	case "xs:double":
		_, ok := it.(xdm.Double)
		return ok
	case "xs:boolean":
		_, ok := it.(xdm.Boolean)
		return ok
	case "xs:untypedAtomic":
		_, ok := it.(xdm.Untyped)
		return ok
	case "numeric":
		return xdm.IsNumeric(it)
	}
	return false
}

// ------------------------------------------------------ function calls

func (ctx *dynCtx) evalCall(call *xq.FuncCall) (xdm.Sequence, error) {
	// user-defined functions first (they shadow nothing builtin by
	// namespace, but our builtins are fn:/xs:/xrpc: names)
	if f, ok := ctx.c.lookupFunc(ctx.module, call.Name, len(call.Args)); ok {
		args := make([]xdm.Sequence, len(call.Args))
		for i, a := range call.Args {
			v, err := ctx.eval(a)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return ctx.callBound(f, args)
	}
	return ctx.evalBuiltin(call)
}

// callBound applies a user-defined function: converts arguments per the
// signature (function conversion rules), binds parameters, evaluates the
// body in the defining module's static context.
func (ctx *dynCtx) callBound(f *boundFunc, args []xdm.Sequence) (xdm.Sequence, error) {
	if ctx.depth >= ctx.maxRec {
		return nil, xdm.NewError("FOER0000", "recursion limit exceeded")
	}
	if f.decl.External {
		return nil, xdm.Errorf("XPST0017", "external function %s has no implementation", f.decl.Name)
	}
	fctx := ctx.child()
	fctx.module = f.module
	fctx.vars = nil // functions see only their parameters (and globals via rebinding below)
	fctx.item = nil
	fctx.depth = ctx.depth + 1
	for i, p := range f.decl.Params {
		conv, err := convertParam(args[i], p.Type)
		if err != nil {
			return nil, xdm.Errorf("XPTY0004", "argument %d of %s: %v", i+1, f.decl.Name, err)
		}
		fctx.bind(p.Name, conv)
	}
	res, err := fctx.eval(f.decl.Body)
	if err != nil {
		return nil, err
	}
	// propagate updates collected by updating functions
	return res, checkCardinality(res, f.decl.Return, f.decl.Name)
}

// ConvertParam applies the XQuery function conversion rules (§2.2
// requires the XRPC caller to perform parameter up-casting); exported
// for the loop-lifting engine, which must up-cast Bulk RPC parameters
// the same way.
func ConvertParam(v xdm.Sequence, t xq.SeqType) (xdm.Sequence, error) {
	return convertParam(v, t)
}

// convertParam applies the XQuery function conversion rules for the
// supported types: atomization + untyped casting for atomic expected
// types, cardinality checks for all.
func convertParam(v xdm.Sequence, t xq.SeqType) (xdm.Sequence, error) {
	out := v
	if strings.HasPrefix(t.TypeName, "xs:") {
		atomized := xdm.Atomize(v)
		out = make(xdm.Sequence, len(atomized))
		for i, it := range atomized {
			if u, isU := it.(xdm.Untyped); isU {
				cast, err := xdm.CastAtomic(u, t.TypeName)
				if err != nil {
					return nil, err
				}
				out[i] = cast
				continue
			}
			// numeric promotion
			if t.TypeName == "xs:double" && xdm.IsNumeric(it) {
				f, _ := xdm.NumericValue(it)
				out[i] = xdm.Double(f)
				continue
			}
			if t.TypeName == "xs:decimal" {
				if n, isInt := it.(xdm.Integer); isInt {
					out[i] = xdm.Decimal(float64(n))
					continue
				}
			}
			if !matchesItemType(it, t.TypeName) {
				return nil, xdm.Errorf("XPTY0004", "%s does not match %s", it.TypeName(), t.TypeName)
			}
			out[i] = it
		}
	} else {
		for _, it := range out {
			if !matchesItemType(it, t.TypeName) {
				return nil, xdm.Errorf("XPTY0004", "%s does not match %s", it.TypeName(), t.TypeName)
			}
		}
	}
	return out, checkCardinality(out, t, "")
}

func checkCardinality(v xdm.Sequence, t xq.SeqType, what string) error {
	prefix := ""
	if what != "" {
		prefix = "result of " + what + ": "
	}
	if t.Empty && len(v) > 0 {
		return xdm.Errorf("XPTY0004", "%sexpected empty-sequence()", prefix)
	}
	switch t.Occurrence {
	case '1':
		if len(v) != 1 {
			return xdm.Errorf("XPTY0004", "%sexpected exactly one item, got %d", prefix, len(v))
		}
	case '?':
		if len(v) > 1 {
			return xdm.Errorf("XPTY0004", "%sexpected at most one item, got %d", prefix, len(v))
		}
	case '+':
		if len(v) == 0 {
			return xdm.Errorf("XPTY0004", "%sexpected at least one item", prefix)
		}
	}
	return nil
}

// --------------------------------------------------------- execute at

func (ctx *dynCtx) evalExecuteAt(n *xq.ExecuteAt) (xdm.Sequence, error) {
	if ctx.rpc == nil {
		return nil, xdm.NewError("XRPC0001", "no RPC transport configured for execute at")
	}
	destSeq, err := ctx.eval(n.Dest)
	if err != nil {
		return nil, err
	}
	if len(destSeq) != 1 {
		return nil, xdm.NewError("XRPC0002", "execute at destination must be a single string")
	}
	dest := destSeq[0].StringValue()

	f, ok := ctx.c.lookupFunc(ctx.module, n.Call.Name, len(n.Call.Args))
	if !ok {
		return nil, xdm.Errorf("XPST0017", "unknown function %s#%d in execute at", n.Call.Name, len(n.Call.Args))
	}
	args := make([]xdm.Sequence, len(n.Call.Args))
	for i, a := range n.Call.Args {
		v, err := ctx.eval(a)
		if err != nil {
			return nil, err
		}
		// XRPC requires the *caller* to perform parameter up-casting
		// (§2.2 "Parameter Marshaling").
		conv, err := convertParam(v, f.decl.Params[i].Type)
		if err != nil {
			return nil, err
		}
		args[i] = conv
	}
	req := &CallRequest{
		ModuleURI:  f.module.ModuleURI,
		AtHint:     f.atHint,
		Func:       f.decl.LocalName(),
		Arity:      f.decl.Arity(),
		Args:       args,
		Updating:   f.decl.Updating,
		ByFragment: ctx.c.engine.ByFragment,
	}
	return ctx.rpc.Call(dest, req)
}

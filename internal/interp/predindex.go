package interp

import (
	"xrpc/internal/xdm"
	"xrpc/internal/xq"
)

// Predicate hash indexing: §4 of the paper observes that when the
// wrapper turns a Bulk RPC of a selection function into a query that
// iterates over all calls, "Saxon is able to detect the join condition
// and builds a hash-table such that performance remains linear". This
// file implements the same optimization for the tree-walking engine:
// a predicate of the shape
//
//	candidates[ <pure relative path> = <context-free expression> ]
//
// evaluated repeatedly over the same candidate node list (e.g.
// //person[@id=$pid] probed once per call) builds a hash index over the
// path's string values once, then answers each probe by lookup.

// evalMemo holds per-evaluation memoized state, shared by all child
// contexts of one Eval/CallFunction.
type evalMemo struct {
	preds map[predKey]*predIndex
	// steps memoizes axis-step results per (step AST, context node):
	// trees are immutable during one query evaluation, so a step from
	// the same context node always yields the same nodes. This is what
	// keeps the wrapper's generated bulk query linear — //person is
	// scanned once, not once per call. Both map levels are keyed by
	// pointers, which hash cheaply.
	steps map[*xq.Step]map[*xdm.Node][]*xdm.Node
}

// memoStep is xdm.Step with memoization keyed by the step's AST node.
func (ctx *dynCtx) memoStep(st *xq.Step, n *xdm.Node) []*xdm.Node {
	if ctx.memo == nil {
		return xdm.Step(n, st.Axis, st.Test)
	}
	if ctx.memo.steps == nil {
		ctx.memo.steps = map[*xq.Step]map[*xdm.Node][]*xdm.Node{}
	}
	inner, ok := ctx.memo.steps[st]
	if !ok {
		inner = map[*xdm.Node][]*xdm.Node{}
		ctx.memo.steps[st] = inner
	}
	if out, hit := inner[n]; hit {
		return out
	}
	out := xdm.Step(n, st.Axis, st.Test)
	inner[n] = out
	return out
}

type predKey struct {
	first xdm.Item // first candidate (node identity)
	last  xdm.Item
	n     int
	pred  xq.Expr // predicate AST identity
}

type predIndex struct {
	ok      bool // false: pattern unusable for this candidate set
	byValue map[string][]int
	rhs     xq.Expr
}

// tryIndexedPredicate filters seq by pred using a hash index when the
// predicate has an indexable shape; it returns (result, true) on
// success, or (nil, false) to fall back to row-at-a-time evaluation.
func (ctx *dynCtx) tryIndexedPredicate(seq xdm.Sequence, pred xq.Expr) (xdm.Sequence, bool) {
	if ctx.memo == nil || len(seq) < 16 || ctx.c.engine.DisablePredIndex {
		return nil, false
	}
	cmp, isCmp := pred.(*xq.Comparison)
	if !isCmp || !cmp.General || cmp.Op != "=" {
		return nil, false
	}
	// identify the pure-path side (probed key) and the context-free side
	var keyPath *xq.Path
	var probe xq.Expr
	if p, isPath := cmp.L.(*xq.Path); isPath && purePath(p) && contextFree(cmp.R) {
		keyPath, probe = p, cmp.R
	} else if p, isPath := cmp.R.(*xq.Path); isPath && purePath(p) && contextFree(cmp.L) {
		keyPath, probe = p, cmp.L
	} else {
		return nil, false
	}
	key := predKey{first: seq[0], last: seq[len(seq)-1], n: len(seq), pred: pred}
	idx, cached := ctx.memo.preds[key]
	if !cached {
		idx = ctx.buildPredIndex(seq, keyPath)
		ctx.memo.preds[key] = idx
	}
	if !idx.ok {
		return nil, false
	}
	// evaluate the probe side once (it does not depend on the context
	// item)
	pv, err := ctx.eval(probe)
	if err != nil {
		return nil, false
	}
	pv = xdm.Atomize(pv)
	// only string-family probes match the string-keyed index safely
	selected := map[int]bool{}
	for _, it := range pv {
		switch it.(type) {
		case xdm.String, xdm.Untyped:
		default:
			return nil, false
		}
		for _, i := range idx.byValue[it.StringValue()] {
			selected[i] = true
		}
	}
	var out xdm.Sequence
	for i, it := range seq {
		if selected[i] {
			out = append(out, it)
		}
	}
	return out, true
}

// buildPredIndex evaluates the key path for every candidate and hashes
// candidates by the key's string value.
func (ctx *dynCtx) buildPredIndex(seq xdm.Sequence, keyPath *xq.Path) *predIndex {
	idx := &predIndex{byValue: map[string][]int{}}
	for i, it := range seq {
		if _, isNode := it.(*xdm.Node); !isNode {
			return idx // not a node candidate set
		}
		pctx := ctx.child()
		pctx.item = it
		pctx.pos = i + 1
		pctx.size = len(seq)
		keys, err := pctx.eval(keyPath)
		if err != nil {
			return idx
		}
		for _, k := range xdm.Atomize(keys) {
			switch k.(type) {
			case xdm.String, xdm.Untyped:
			default:
				return idx // non-string keys: fall back
			}
			idx.byValue[k.StringValue()] = append(idx.byValue[k.StringValue()], i)
		}
	}
	idx.ok = true
	return idx
}

// purePath reports whether p is a relative path over downward/attribute
// axes with no predicates — safe to evaluate per candidate and index.
func purePath(p *xq.Path) bool {
	if p.Root != nil || p.FromRoot || len(p.RootPreds) > 0 {
		return false
	}
	for _, st := range p.Steps {
		if len(st.Preds) > 0 {
			return false
		}
		switch st.Axis {
		case xdm.AxisChild, xdm.AxisDescendant, xdm.AxisDescendantOrSelf,
			xdm.AxisAttribute, xdm.AxisSelf:
		default:
			return false
		}
	}
	return true
}

// contextFree reports whether the expression never consults the context
// item, position or size — so it can be evaluated once per predicate
// application instead of per candidate.
func contextFree(e xq.Expr) bool {
	switch n := e.(type) {
	case nil:
		return true
	case *xq.VarRef, *xq.StringLit, *xq.IntLit, *xq.DecimalLit, *xq.DoubleLit, *xq.EmptySeq:
		return true
	case *xq.ContextItem:
		return false
	case *xq.Path:
		if n.Root == nil {
			return false
		}
		if !contextFree(n.Root) {
			return false
		}
		for _, st := range n.Steps {
			for _, p := range st.Preds {
				if !contextFree(p) {
					return false
				}
			}
		}
		for _, p := range n.RootPreds {
			if !contextFree(p) {
				return false
			}
		}
		return true
	case *xq.FuncCall:
		switch n.Name {
		case "position", "last", "fn:position", "fn:last":
			return false
		// zero-argument string()/number()/etc. default to the context
		case "string", "number", "string-length", "normalize-space",
			"name", "local-name", "root":
			if len(n.Args) == 0 {
				return false
			}
		}
		for _, a := range n.Args {
			if !contextFree(a) {
				return false
			}
		}
		return true
	case *xq.Comparison:
		return contextFree(n.L) && contextFree(n.R)
	case *xq.Arith:
		return contextFree(n.L) && contextFree(n.R)
	case *xq.Logic:
		return contextFree(n.L) && contextFree(n.R)
	case *xq.Unary:
		return contextFree(n.X)
	case *xq.Cast:
		return contextFree(n.X)
	case *xq.SeqExpr:
		for _, it := range n.Items {
			if !contextFree(it) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

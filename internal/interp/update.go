package interp

import (
	"fmt"
	"sort"
	"strings"

	"xrpc/internal/store"
	"xrpc/internal/xdm"
	"xrpc/internal/xq"
)

// PrimitiveKind enumerates XQUF update primitives.
type PrimitiveKind int

// Update primitive kinds per the XQUF draft referenced by the paper.
const (
	PrimInsertInto PrimitiveKind = iota
	PrimInsertFirst
	PrimInsertLast
	PrimInsertBefore
	PrimInsertAfter
	PrimDelete
	PrimReplaceNode
	PrimReplaceValue
	PrimRename
	PrimPut
)

// String names the primitive kind.
func (k PrimitiveKind) String() string {
	switch k {
	case PrimInsertInto:
		return "insertInto"
	case PrimInsertFirst:
		return "insertIntoAsFirst"
	case PrimInsertLast:
		return "insertIntoAsLast"
	case PrimInsertBefore:
		return "insertBefore"
	case PrimInsertAfter:
		return "insertAfter"
	case PrimDelete:
		return "delete"
	case PrimReplaceNode:
		return "replaceNode"
	case PrimReplaceValue:
		return "replaceValue"
	case PrimRename:
		return "rename"
	case PrimPut:
		return "put"
	default:
		return "unknown"
	}
}

// Primitive is one pending update. Targets are identified by the
// document they live in plus the node's stable preorder ordinal, so a
// pending update list can be serialized (for the 2PC Prepare log) and
// applied to a cloned tree.
type Primitive struct {
	Kind    PrimitiveKind
	Target  *xdm.Node   // node in the snapshot tree (nil for Put)
	Source  []*xdm.Node // content for insert/replace (already copied)
	Value   string      // replace value / rename name
	PutURI  string      // fn:put destination
	DocName string      // target document name (filled by Add from Target)
	// Seq orders primitives for the deterministic-update-order protocol
	// extension (the paper's companion report [35]): despite Bulk RPC's
	// out-of-order execution, primitives apply in original query order.
	// Zero means "no explicit order"; ApplyUpdates sorts stably, so
	// unordered primitives keep arrival order.
	Seq int64
}

// UpdateList is a pending update list ∆ (§2.3). XQUF specifies that the
// application order of multiple updates to the same node is
// non-deterministic; Merge therefore just concatenates.
type UpdateList struct {
	Prims []Primitive
}

// Add appends a primitive, recording the target's document name.
func (ul *UpdateList) Add(p Primitive) {
	if p.Target != nil {
		p.DocName = p.Target.Root().DocURI()
	}
	ul.Prims = append(ul.Prims, p)
}

// Merge unions another pending update list into this one (∆ ∪ ∆').
func (ul *UpdateList) Merge(other *UpdateList) {
	if other == nil {
		return
	}
	ul.Prims = append(ul.Prims, other.Prims...)
}

// Empty reports whether the list has no primitives.
func (ul *UpdateList) Empty() bool { return ul == nil || len(ul.Prims) == 0 }

// Describe renders a human-readable summary (used by the 2PC Prepare
// log).
func (ul *UpdateList) Describe() string {
	var sb strings.Builder
	for i, p := range ul.Prims {
		if i > 0 {
			sb.WriteByte('\n')
		}
		fmt.Fprintf(&sb, "%s doc=%q", p.Kind, p.DocName)
		if p.Target != nil {
			fmt.Fprintf(&sb, " target=#%d", p.Target.Ord())
		}
		if p.PutURI != "" {
			fmt.Fprintf(&sb, " uri=%q", p.PutURI)
		}
	}
	return sb.String()
}

// evalUpdate evaluates one XQUF update expression, appending primitives
// to the pending update list; its value is the empty sequence.
func (ctx *dynCtx) evalUpdate(e xq.Expr) (xdm.Sequence, error) {
	switch n := e.(type) {
	case *xq.Insert:
		src, err := ctx.eval(n.Source)
		if err != nil {
			return nil, err
		}
		srcNodes, err := contentNodes(src)
		if err != nil {
			return nil, err
		}
		tgt, err := ctx.evalSingleNode(n.Target)
		if err != nil {
			return nil, err
		}
		kind := PrimInsertInto
		switch n.Pos {
		case xq.InsertAsFirst:
			kind = PrimInsertFirst
		case xq.InsertAsLast:
			kind = PrimInsertLast
		case xq.InsertBefore:
			kind = PrimInsertBefore
		case xq.InsertAfter:
			kind = PrimInsertAfter
		}
		if (kind == PrimInsertBefore || kind == PrimInsertAfter) && tgt.Parent == nil {
			return nil, xdm.NewError("XUDY0029", "insert before/after target has no parent")
		}
		ctx.pul.Add(Primitive{Kind: kind, Target: tgt, Source: srcNodes})
		return nil, nil
	case *xq.Delete:
		tgts, err := ctx.eval(n.Target)
		if err != nil {
			return nil, err
		}
		nodes, ok := xdm.NodesOf(tgts)
		if !ok {
			return nil, xdm.NewError("XUTY0007", "delete target is not a node sequence")
		}
		for _, t := range nodes {
			ctx.pul.Add(Primitive{Kind: PrimDelete, Target: t})
		}
		return nil, nil
	case *xq.Replace:
		tgt, err := ctx.evalSingleNode(n.Target)
		if err != nil {
			return nil, err
		}
		src, err := ctx.eval(n.Source)
		if err != nil {
			return nil, err
		}
		if n.ValueOf {
			ctx.pul.Add(Primitive{
				Kind:   PrimReplaceValue,
				Target: tgt,
				Value:  xdm.Atomize(src).StringJoin(" "),
			})
			return nil, nil
		}
		srcNodes, err := contentNodes(src)
		if err != nil {
			return nil, err
		}
		if tgt.Parent == nil {
			return nil, xdm.NewError("XUDY0029", "replace target has no parent")
		}
		ctx.pul.Add(Primitive{Kind: PrimReplaceNode, Target: tgt, Source: srcNodes})
		return nil, nil
	case *xq.Rename:
		tgt, err := ctx.evalSingleNode(n.Target)
		if err != nil {
			return nil, err
		}
		nameSeq, err := ctx.eval(n.NewName)
		if err != nil {
			return nil, err
		}
		if len(nameSeq) != 1 {
			return nil, xdm.NewError("XPTY0004", "rename target name must be a single item")
		}
		ctx.pul.Add(Primitive{Kind: PrimRename, Target: tgt, Value: nameSeq[0].StringValue()})
		return nil, nil
	}
	return nil, xdm.Errorf("XPST0003", "unknown update expression %T", e)
}

func (ctx *dynCtx) evalSingleNode(e xq.Expr) (*xdm.Node, error) {
	v, err := ctx.eval(e)
	if err != nil {
		return nil, err
	}
	if len(v) != 1 {
		return nil, xdm.Errorf("XUTY0008", "update target must be exactly one node, got %d items", len(v))
	}
	n, ok := v[0].(*xdm.Node)
	if !ok {
		return nil, xdm.NewError("XUTY0008", "update target is not a node")
	}
	return n, nil
}

// contentNodes converts an insert/replace source sequence into copied
// content nodes (atomics become text nodes).
func contentNodes(v xdm.Sequence) ([]*xdm.Node, error) {
	var out []*xdm.Node
	for _, it := range v {
		switch x := it.(type) {
		case *xdm.Node:
			if x.Kind == xdm.DocumentNode {
				for _, c := range x.Children {
					out = append(out, c.Clone())
				}
				continue
			}
			out = append(out, x.Clone())
		default:
			out = append(out, xdm.NewText(it.StringValue()).Seal())
		}
	}
	return out, nil
}

// exprIsUpdating statically classifies expressions per the XQUF: an
// expression is updating if it contains an update primitive or a call to
// an updating function.
func exprIsUpdating(e xq.Expr, c *Compiled) bool {
	switch n := e.(type) {
	case nil:
		return false
	case *xq.Insert, *xq.Delete, *xq.Replace, *xq.Rename:
		return true
	case *xq.FuncCall:
		if n.Name == "put" || n.Name == "fn:put" {
			return true
		}
		if f, ok := c.lookupFunc(c.main, n.Name, len(n.Args)); ok && f.decl.Updating {
			return true
		}
		for _, a := range n.Args {
			if exprIsUpdating(a, c) {
				return true
			}
		}
		return false
	case *xq.ExecuteAt:
		if f, ok := c.lookupFunc(c.main, n.Call.Name, len(n.Call.Args)); ok && f.decl.Updating {
			return true
		}
		return false
	case *xq.SeqExpr:
		for _, it := range n.Items {
			if exprIsUpdating(it, c) {
				return true
			}
		}
	case *xq.FLWOR:
		for _, cl := range n.Clauses {
			switch clause := cl.(type) {
			case *xq.ForClause:
				if exprIsUpdating(clause.In, c) {
					return true
				}
			case *xq.LetClause:
				if exprIsUpdating(clause.Val, c) {
					return true
				}
			}
		}
		return exprIsUpdating(n.Return, c) || exprIsUpdating(n.Where, c)
	case *xq.If:
		return exprIsUpdating(n.Then, c) || exprIsUpdating(n.Else, c)
	case *xq.Enclosed:
		return exprIsUpdating(n.X, c)
	case *xq.DirElem:
		for _, sub := range n.Content {
			if exprIsUpdating(sub, c) {
				return true
			}
		}
	}
	return false
}

// SetSeqBase stamps every primitive of the list with an ordering base:
// primitive i gets base*65536 + i. Used by the server to order the
// pending updates of one bulk call by the call's original query
// position (deterministic update order, [35]).
func (ul *UpdateList) SetSeqBase(base int64) {
	for i := range ul.Prims {
		ul.Prims[i].Seq = base*65536 + int64(i)
	}
}

// ApplyUpdates is the XQUF applyUpdates() function from rules R_Fu/R'_Fu:
// it carries through a pending update list against a store, producing new
// document versions. Each affected document is cloned (shadow paging),
// mutated, resealed and swapped in. Primitives apply in Seq order
// (stable, so untagged lists keep arrival order — the XQUF's
// "non-deterministic" union is then simply arrival order).
func ApplyUpdates(st *store.Store, ul *UpdateList) error {
	if ul.Empty() {
		return nil
	}
	sort.SliceStable(ul.Prims, func(i, j int) bool {
		return ul.Prims[i].Seq < ul.Prims[j].Seq
	})
	// group primitives by the tree their target lives in
	type docGroup struct {
		name  string
		root  *xdm.Node
		prims []Primitive
	}
	groups := map[*xdm.Node]*docGroup{} // keyed by snapshot root
	var order []*docGroup
	var puts []Primitive
	for _, p := range ul.Prims {
		if p.Kind == PrimPut {
			puts = append(puts, p)
			continue
		}
		root := p.Target.Root()
		g, ok := groups[root]
		if !ok {
			g = &docGroup{name: p.DocName, root: root}
			groups[root] = g
			order = append(order, g)
		}
		g.prims = append(g.prims, p)
	}
	// stage every new document version, then swap them in atomically:
	// one applyUpdates is one version step, which keeps primary and
	// replica store versions comparable for replication fencing
	batch := make(map[string]*xdm.Node, len(order)+len(puts))
	for _, g := range order {
		if g.name == "" {
			return xdm.NewError("XUDY0014", "update target is not in a stored document")
		}
		clone := g.root.Clone()
		for _, p := range g.prims {
			target := clone.FindByOrd(p.Target.Ord())
			if target == nil {
				return xdm.Errorf("XUDY0014", "update target #%d vanished from %q", p.Target.Ord(), g.name)
			}
			if err := applyPrimitive(target, p); err != nil {
				return err
			}
		}
		clone.Seal()
		clone.SetDocURI(g.name)
		batch[g.name] = clone
	}
	for _, p := range puts {
		doc := xdm.NewDocument(p.PutURI)
		for _, n := range p.Source {
			doc.AppendChild(n.Clone())
		}
		doc.Seal()
		batch[p.PutURI] = doc
	}
	st.PutBatch(batch)
	return nil
}

func applyPrimitive(target *xdm.Node, p Primitive) error {
	cloneSources := func() []*xdm.Node {
		out := make([]*xdm.Node, len(p.Source))
		for i, s := range p.Source {
			out[i] = s.Clone()
		}
		return out
	}
	switch p.Kind {
	case PrimInsertInto, PrimInsertLast:
		for _, s := range cloneSources() {
			attach(target, s, len(target.Children))
		}
	case PrimInsertFirst:
		for i, s := range cloneSources() {
			attach(target, s, i)
		}
	case PrimInsertBefore, PrimInsertAfter:
		parent := target.Parent
		if parent == nil {
			return xdm.NewError("XUDY0029", "insert before/after target has no parent")
		}
		idx := childIndex(parent, target)
		if idx < 0 {
			return xdm.NewError("XUDY0029", "target not found under parent")
		}
		if p.Kind == PrimInsertAfter {
			idx++
		}
		for i, s := range cloneSources() {
			attach(parent, s, idx+i)
		}
	case PrimDelete:
		if target.Parent == nil {
			return xdm.NewError("XUDY0029", "cannot delete a root node")
		}
		detach(target)
	case PrimReplaceNode:
		parent := target.Parent
		if parent == nil {
			return xdm.NewError("XUDY0029", "replace target has no parent")
		}
		idx := childIndex(parent, target)
		detach(target)
		for i, s := range cloneSources() {
			attach(parent, s, idx+i)
		}
	case PrimReplaceValue:
		switch target.Kind {
		case xdm.ElementNode:
			target.Children = nil
			if p.Value != "" {
				target.AppendChild(xdm.NewText(p.Value))
			}
		case xdm.AttributeNode, xdm.TextNode, xdm.CommentNode, xdm.PINode:
			target.Value = p.Value
		default:
			return xdm.NewError("XUTY0008", "cannot replace value of a document node")
		}
	case PrimRename:
		if target.Kind != xdm.ElementNode && target.Kind != xdm.AttributeNode && target.Kind != xdm.PINode {
			return xdm.NewError("XUTY0012", "rename target must be element, attribute or PI")
		}
		target.Name = p.Value
	default:
		return xdm.Errorf("XUST0001", "unsupported primitive %v", p.Kind)
	}
	return nil
}

func attach(parent, child *xdm.Node, idx int) {
	if child.Kind == xdm.AttributeNode {
		parent.SetAttr(child)
		return
	}
	child.Parent = parent
	parent.Children = append(parent.Children, nil)
	copy(parent.Children[idx+1:], parent.Children[idx:])
	parent.Children[idx] = child
}

func detach(n *xdm.Node) {
	parent := n.Parent
	if parent == nil {
		return
	}
	if n.Kind == xdm.AttributeNode {
		for i, a := range parent.Attrs {
			if a == n {
				parent.Attrs = append(parent.Attrs[:i], parent.Attrs[i+1:]...)
				break
			}
		}
		return
	}
	if i := childIndex(parent, n); i >= 0 {
		parent.Children = append(parent.Children[:i], parent.Children[i+1:]...)
	}
	n.Parent = nil
}

func childIndex(parent, child *xdm.Node) int {
	for i, c := range parent.Children {
		if c == child {
			return i
		}
	}
	return -1
}

// Package interp is a tree-walking XQuery interpreter. In the
// reproduction it plays the role of Saxon in the paper's experiments
// (§4, §5): an XQuery engine with no function cache, whose latency is
// dominated by per-query compile and tree-build time, wrapped by the
// XRPC wrapper to participate in distributed queries.
//
// It is also the reference semantics for the loop-lifting relational
// engine (internal/pathfinder): both must produce identical results on
// the supported subset.
package interp

import (
	"fmt"
	"time"

	"xrpc/internal/xdm"
	"xrpc/internal/xq"
)

// DocResolver resolves fn:doc URIs to document nodes. Implementations
// include store.Store (latest state), store.Snapshot (repeatable read)
// and client-side resolvers that fetch xrpc:// documents (data shipping).
type DocResolver interface {
	Doc(uri string) (*xdm.Node, error)
}

// ModuleResolver resolves "import module" URIs (with their at-hints) to
// parsed library modules.
type ModuleResolver interface {
	ResolveModule(uri string, atHints []string) (*xq.Module, error)
}

// CallRequest describes one remote function application for execute at.
type CallRequest struct {
	ModuleURI string
	AtHint    string
	Func      string // local function name
	Arity     int
	Args      []xdm.Sequence
	Updating  bool
	// ByFragment requests call-by-fragment parameter passing (nodeid
	// references for descendant parameters).
	ByFragment bool
}

// RPCCaller performs execute-at calls; implemented by the XRPC client.
// The interpreter performs one call per invocation (one-at-a-time RPC);
// bulk RPC arises from the loop-lifting engine.
type RPCCaller interface {
	Call(dest string, req *CallRequest) (xdm.Sequence, error)
}

// Stats records the three latency phases reported in Table 3 of the
// paper (Saxon latency: compile, treebuild, exec).
type Stats struct {
	Compile   time.Duration
	TreeBuild time.Duration
	Exec      time.Duration
}

// Total is the sum of the phases.
func (s Stats) Total() time.Duration { return s.Compile + s.TreeBuild + s.Exec }

// ExtFunc is a host-provided extension function, looked up by its
// prefixed name when no user or built-in function matches. The XRPC
// wrapper uses this to supply the n2s/s2n marshaling functions of §2.2
// (which "do not need to exist in reality, as each XRPC system
// implementation may have its own internal mechanisms").
type ExtFunc func(args []xdm.Sequence) (xdm.Sequence, error)

// Engine evaluates XQuery against a document store.
type Engine struct {
	Docs    DocResolver
	Modules ModuleResolver
	RPC     RPCCaller
	// ExtFuncs maps prefixed names (e.g. "xrpcw:n2s") to host functions.
	ExtFuncs map[string]ExtFunc
	// ByFragment enables the call-by-fragment protocol extension for
	// outgoing execute-at calls (paper footnote 4).
	ByFragment bool
	// DisablePredIndex turns off the §4 predicate hash index (used by
	// the ablation benchmarks).
	DisablePredIndex bool
	// MaxRecursion bounds user-function recursion depth (default 4096).
	MaxRecursion int
}

// New creates an engine over the given resolvers. rpc may be nil, in
// which case execute at raises an error.
func New(docs DocResolver, modules ModuleResolver, rpc RPCCaller) *Engine {
	return &Engine{Docs: docs, Modules: modules, RPC: rpc}
}

// funcKey identifies a function by namespace URI, local name and arity.
type funcKey struct {
	uri   string
	local string
	arity int
}

// boundFunc couples a declaration with the module whose static context
// its body must see.
type boundFunc struct {
	decl   *xq.FuncDecl
	module *xq.Module
	// importURI/atHint record how the *calling* module imported the
	// function's module — needed to address execute-at requests.
	atHint string
}

// Compiled is a compiled (parsed + import-resolved) query, ready to run.
// Compiled values are immutable and safe for concurrent Eval calls; this
// is what the server's function cache stores.
type Compiled struct {
	engine  *Engine
	main    *xq.Module
	modules map[string]*xq.Module // by namespace URI
	funcs   map[funcKey]*boundFunc
	globals []*xq.VarDecl
	// CompileTime is how long parsing+resolution took (Table 3 "compile").
	CompileTime time.Duration
}

// Module returns the parsed main module.
func (c *Compiled) Module() *xq.Module { return c.main }

// ModuleURIs lists the namespace URIs this compilation depends on: the
// main module's own URI (when it is a library) plus every transitively
// imported module. A plan cache uses this as the invalidation set —
// re-registering any of these modules makes the plan stale.
func (c *Compiled) ModuleURIs() []string {
	uris := make([]string, 0, len(c.modules)+1)
	if c.main.IsLibrary && c.main.ModuleURI != "" {
		uris = append(uris, c.main.ModuleURI)
	}
	for uri := range c.modules {
		if uri != c.main.ModuleURI {
			uris = append(uris, uri)
		}
	}
	return uris
}

// Option returns a declared prolog option value ("" when absent).
func (c *Compiled) Option(name string) string { return c.main.Options[name] }

// IsUpdating reports whether the query body contains update expressions
// or calls to updating functions (a static property per XQUF).
func (c *Compiled) IsUpdating() bool {
	if c.main.Body == nil {
		return false
	}
	return exprIsUpdating(c.main.Body, c)
}

// Compile parses src and resolves its module imports.
func (e *Engine) Compile(src string) (*Compiled, error) {
	start := time.Now()
	m, err := xq.Parse(src)
	if err != nil {
		return nil, err
	}
	c := &Compiled{
		engine:  e,
		main:    m,
		modules: map[string]*xq.Module{},
		funcs:   map[funcKey]*boundFunc{},
	}
	if err := c.registerModule(m, ""); err != nil {
		return nil, err
	}
	if err := c.resolveImports(m); err != nil {
		return nil, err
	}
	c.CompileTime = time.Since(start)
	return c, nil
}

// CompileModule compiles a library module source for direct invocation
// (used by the XRPC server to execute requested functions).
func (e *Engine) CompileModule(src string) (*Compiled, error) {
	c, err := e.Compile(src)
	if err != nil {
		return nil, err
	}
	if !c.main.IsLibrary {
		return nil, fmt.Errorf("interp: not a library module")
	}
	return c, nil
}

func (c *Compiled) resolveImports(m *xq.Module) error {
	for _, imp := range m.Imports {
		if _, done := c.modules[imp.URI]; done {
			continue
		}
		if c.engine.Modules == nil {
			return xdm.Errorf("XQST0059", "no module resolver for %q", imp.URI)
		}
		lib, err := c.engine.Modules.ResolveModule(imp.URI, imp.AtHints)
		if err != nil {
			return xdm.Errorf("XQST0059", "could not load module %q: %v", imp.URI, err)
		}
		if !lib.IsLibrary || lib.ModuleURI != imp.URI {
			return xdm.Errorf("XQST0059", "module %q does not declare namespace %q", imp.URI, imp.URI)
		}
		hint := ""
		if len(imp.AtHints) > 0 {
			hint = imp.AtHints[0]
		}
		if err := c.registerModule(lib, hint); err != nil {
			return err
		}
		if err := c.resolveImports(lib); err != nil {
			return err
		}
	}
	return nil
}

func (c *Compiled) registerModule(m *xq.Module, atHint string) error {
	uri := m.ModuleURI
	if m.IsLibrary {
		c.modules[uri] = m
	}
	for _, f := range m.Functions {
		local := f.LocalName()
		fnURI := uri
		if !m.IsLibrary {
			// main-module functions live in their declared prefix's URI
			fnURI = m.Namespaces[prefixOf(f.Name)]
		}
		key := funcKey{uri: fnURI, local: local, arity: f.Arity()}
		if _, dup := c.funcs[key]; dup {
			return xdm.Errorf("XQST0034", "duplicate function %s#%d", f.Name, f.Arity())
		}
		c.funcs[key] = &boundFunc{decl: f, module: m, atHint: atHint}
	}
	c.globals = append(c.globals, m.Variables...)
	return nil
}

func prefixOf(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == ':' {
			return name[:i]
		}
	}
	return ""
}

// lookupFunc resolves a prefixed call name in the static context of
// module m.
func (c *Compiled) lookupFunc(m *xq.Module, name string, arity int) (*boundFunc, bool) {
	prefix := prefixOf(name)
	local := name
	if prefix != "" {
		local = name[len(prefix)+1:]
	}
	uri := m.Namespaces[prefix]
	if f, ok := c.funcs[funcKey{uri: uri, local: local, arity: arity}]; ok {
		return f, true
	}
	// main module: unprefixed user functions
	if f, ok := c.funcs[funcKey{uri: "", local: local, arity: arity}]; ok && prefix == "" {
		return f, true
	}
	return nil, false
}

// EvalOptions configure one evaluation.
type EvalOptions struct {
	// Vars binds external variables ($x etc.).
	Vars map[string]xdm.Sequence
	// Docs overrides the engine's document resolver (e.g. a snapshot).
	Docs DocResolver
	// RPC overrides the engine's RPC caller (e.g. a per-query client
	// carrying the queryID of the request being served).
	RPC RPCCaller
	// CollectUpdates, when true, permits update expressions; their
	// pending update list is returned instead of applied.
	CollectUpdates bool
}

// Eval evaluates the main module body. For updating queries the pending
// update list is returned; it is the caller's responsibility to apply it
// (XQUF semantics: side effects happen after query evaluation).
func (c *Compiled) Eval(opts *EvalOptions) (xdm.Sequence, *UpdateList, error) {
	if c.main.Body == nil {
		return nil, nil, fmt.Errorf("interp: library module has no body")
	}
	if opts == nil {
		opts = &EvalOptions{}
	}
	ctx := c.newDynCtx(opts)
	// prolog variables
	for _, v := range c.globals {
		if v.Val == nil {
			continue
		}
		val, err := ctx.eval(v.Val)
		if err != nil {
			return nil, nil, err
		}
		ctx.bind(v.Name, val)
	}
	seq, err := ctx.eval(c.main.Body)
	if err != nil {
		return nil, nil, err
	}
	if len(ctx.pul.Prims) > 0 && !opts.CollectUpdates {
		return nil, nil, xdm.NewError("XUST0001", "updating expression in non-updating context")
	}
	return seq, ctx.pul, nil
}

// CallFunction directly invokes a declared function with the given
// arguments (the server-side entry point for XRPC requests). The
// function is addressed by local name and arity within module uri; when
// uri is "" the first match by local name wins.
func (c *Compiled) CallFunction(uri, local string, args []xdm.Sequence, opts *EvalOptions) (xdm.Sequence, *UpdateList, error) {
	if opts == nil {
		opts = &EvalOptions{}
	}
	var f *boundFunc
	if uri != "" {
		f = c.funcs[funcKey{uri: uri, local: local, arity: len(args)}]
	}
	if f == nil {
		for k, cand := range c.funcs {
			if k.local == local && k.arity == len(args) {
				f = cand
				break
			}
		}
	}
	if f == nil {
		return nil, nil, xdm.Errorf("XPST0017", "function %s#%d not found in module %q", local, len(args), uri)
	}
	ctx := c.newDynCtx(opts)
	seq, err := ctx.callBound(f, args)
	if err != nil {
		return nil, nil, err
	}
	return seq, ctx.pul, nil
}

// FunctionUpdating reports whether a bulk request addressed the way
// CallFunction addresses it (local name + arity within module uri) may
// resolve to an XQUF updating function. The server consults this before
// evaluating the calls of a bulk request concurrently: updating calls
// must stay sequential. CallFunction's fallback for unmatched URIs picks
// an arbitrary local-name match, so this deliberately answers true if
// ANY candidate is updating — erring toward sequential execution.
func (c *Compiled) FunctionUpdating(uri, local string, arity int) bool {
	if uri != "" {
		if f, ok := c.funcs[funcKey{uri: uri, local: local, arity: arity}]; ok {
			return f.decl.Updating
		}
	}
	for k, f := range c.funcs {
		if k.local == local && k.arity == arity && f.decl.Updating {
			return true
		}
	}
	return false
}

func (c *Compiled) newDynCtx(opts *EvalOptions) *dynCtx {
	docs := c.engine.Docs
	if opts.Docs != nil {
		docs = opts.Docs
	}
	maxRec := c.engine.MaxRecursion
	if maxRec <= 0 {
		maxRec = 4096
	}
	rpc := c.engine.RPC
	if opts.RPC != nil {
		rpc = opts.RPC
	}
	ctx := &dynCtx{
		c:      c,
		module: c.main,
		docs:   docs,
		rpc:    rpc,
		pul:    &UpdateList{},
		memo:   &evalMemo{preds: map[predKey]*predIndex{}},
		maxRec: maxRec,
	}
	for name, val := range opts.Vars {
		ctx.bind(name, val)
	}
	return ctx
}

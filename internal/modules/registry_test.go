package modules

import (
	"strings"
	"testing"
)

const filmModule = `
module namespace film="films";
declare function film:filmsByActor($actor as xs:string) as node()*
{ doc("filmDB.xml")//name[../actor=$actor] };`

func TestRegisterAndResolve(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(filmModule, "http://x.example.org/film.xq"); err != nil {
		t.Fatal(err)
	}
	m, err := r.ResolveModule("films", nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.ModuleURI != "films" {
		t.Errorf("uri = %q", m.ModuleURI)
	}
	// by hint when URI unknown
	m2, err := r.ResolveModule("unknown-uri", []string{"http://x.example.org/film.xq"})
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m {
		t.Error("hint resolution returned a different module")
	}
	if _, err := r.ResolveModule("nope", []string{"nope.xq"}); err == nil {
		t.Error("expected resolution failure")
	}
}

func TestRegisterRejectsMainModule(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(`1 + 1`); err == nil {
		t.Error("main module must be rejected")
	}
	if err := r.Register(`module namespace broken`); err == nil {
		t.Error("syntax error must be rejected")
	}
}

func TestSourceAndURIs(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(filmModule); err != nil {
		t.Fatal(err)
	}
	src, ok := r.Source("films")
	if !ok || !strings.Contains(src, "filmsByActor") {
		t.Errorf("source = %q, %v", src, ok)
	}
	if _, ok := r.Source("nope"); ok {
		t.Error("unexpected source")
	}
	uris := r.URIs()
	if len(uris) != 1 || uris[0] != "films" {
		t.Errorf("uris = %v", uris)
	}
}

func TestReRegisterReplaces(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(filmModule); err != nil {
		t.Fatal(err)
	}
	v2 := strings.Replace(filmModule, "filmsByActor", "byActor", 1)
	if err := r.Register(v2); err != nil {
		t.Fatal(err)
	}
	m, err := r.ResolveModule("films", nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Function("film:byActor", 1) == nil {
		t.Error("re-registration did not replace the module")
	}
}

// Package modules implements an in-memory XQuery module registry. In the
// paper, modules live at HTTP locations (the at-hint, e.g.
// "http://x.example.org/film.xq") and every peer fetches and caches them.
// The registry plays that role: it stores module sources indexed both by
// target namespace URI and by location hint.
package modules

import (
	"fmt"
	"sync"
	"sync/atomic"

	"xrpc/internal/xq"
)

// Registry resolves module imports to parsed library modules.
type Registry struct {
	mu       sync.RWMutex
	byURI    map[string]*entry
	byHint   map[string]*entry
	gen      atomic.Int64
	onUpdate []func(uri string)
}

type entry struct {
	source string
	parsed *xq.Module
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byURI: map[string]*entry{}, byHint: map[string]*entry{}}
}

// Register parses a library module source and indexes it under its
// declared namespace URI and the given location hints.
func (r *Registry) Register(source string, hints ...string) error {
	m, err := xq.Parse(source)
	if err != nil {
		return fmt.Errorf("modules: %w", err)
	}
	if !m.IsLibrary {
		return fmt.Errorf("modules: source is not a library module")
	}
	e := &entry{source: source, parsed: m}
	r.mu.Lock()
	r.byURI[m.ModuleURI] = e
	for _, h := range hints {
		r.byHint[h] = e
	}
	callbacks := r.onUpdate
	r.mu.Unlock()
	// every (re-)registration can change semantics without any store
	// write, so it must advance the generation that fences plan and
	// response caches
	r.gen.Add(1)
	for _, fn := range callbacks {
		fn(m.ModuleURI)
	}
	return nil
}

// Generation returns a counter that advances on every Register call.
// Caches keyed on module content include it in their fence: a store
// version alone cannot see module re-registration.
func (r *Registry) Generation() int64 { return r.gen.Load() }

// OnUpdate registers a callback invoked (outside the registry lock)
// with the module URI after each successful Register — the hook that
// lets an executor invalidate just the plans depending on that module.
func (r *Registry) OnUpdate(fn func(uri string)) {
	r.mu.Lock()
	r.onUpdate = append(r.onUpdate, fn)
	r.mu.Unlock()
}

// ResolveModule implements interp.ModuleResolver: lookup by namespace
// URI first, then by location hint.
func (r *Registry) ResolveModule(uri string, atHints []string) (*xq.Module, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if e, ok := r.byURI[uri]; ok {
		return e.parsed, nil
	}
	for _, h := range atHints {
		if e, ok := r.byHint[h]; ok {
			return e.parsed, nil
		}
	}
	return nil, fmt.Errorf("modules: could not load module %q", uri)
}

// Source returns the registered source text for a module URI.
func (r *Registry) Source(uri string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.byURI[uri]
	if !ok {
		return "", false
	}
	return e.source, true
}

// URIs lists all registered namespace URIs.
func (r *Registry) URIs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byURI))
	for u := range r.byURI {
		out = append(out, u)
	}
	return out
}

package core

import (
	"net/http/httptest"
	"strings"
	"testing"

	"xrpc/internal/client"
	"xrpc/internal/netsim"
	"xrpc/internal/xmark"
)

const filmModule = `
module namespace film="films";
declare function film:filmsByActor($actor as xs:string) as node()*
{ doc("filmDB.xml")//name[../actor=$actor] };`

const updModule = `
module namespace u="upd";
declare updating function u:addFilm($name as xs:string, $actor as xs:string)
{ insert node <film><name>{$name}</name><actor>{$actor}</actor></film> into doc("filmDB.xml")/films };`

// Distributed query over REAL HTTP: two peers on httptest servers.
func TestDistributedQueryOverHTTP(t *testing.T) {
	transport := client.NewHTTPTransport()

	y := NewPeer("", transport) // self filled below
	if err := y.LoadDocument("filmDB.xml", xmark.PaperFilmDB); err != nil {
		t.Fatal(err)
	}
	if err := y.RegisterModule(filmModule, "http://x.example.org/film.xq"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(y.HTTPHandler())
	defer ts.Close()
	yURI := strings.Replace(ts.URL, "http://", "xrpc://", 1)
	y.Self = yURI

	local := NewPeer("xrpc://local", transport)
	if err := local.RegisterModule(filmModule, "http://x.example.org/film.xq"); err != nil {
		t.Fatal(err)
	}
	res, err := local.Query(`
import module namespace f="films" at "http://x.example.org/film.xq";
for $a in ("Sean Connery", "Gerard Depardieu")
return count(execute at {"` + yURI + `"} {f:filmsByActor($a)})`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Serialize(); got != "2 1" {
		t.Errorf("counts over HTTP = %s", got)
	}
	if res.Requests != 1 {
		t.Errorf("requests = %d, want 1 (bulk over HTTP)", res.Requests)
	}
}

// Distributed update over HTTP with 2PC.
func TestDistributedUpdateOverHTTP(t *testing.T) {
	transport := client.NewHTTPTransport()
	y := NewPeer("", transport)
	y.LoadDocument("filmDB.xml", xmark.PaperFilmDB)
	y.RegisterModule(filmModule, "http://x.example.org/film.xq")
	y.RegisterModule(updModule, "http://x.example.org/upd.xq")
	ts := httptest.NewServer(y.HTTPHandler())
	defer ts.Close()
	yURI := strings.Replace(ts.URL, "http://", "xrpc://", 1)

	local := NewPeer("xrpc://local", transport)
	local.RegisterModule(filmModule, "http://x.example.org/film.xq")
	local.RegisterModule(updModule, "http://x.example.org/upd.xq")

	if _, err := local.Query(`
import module namespace u="upd" at "http://x.example.org/upd.xq";
execute at {"` + yURI + `"} {u:addFilm("Thunderball", "Sean Connery")}`); err != nil {
		t.Fatal(err)
	}
	res, err := local.Query(`
import module namespace f="films" at "http://x.example.org/film.xq";
count(execute at {"` + yURI + `"} {f:filmsByActor("Sean Connery")})`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Serialize(); got != "3" {
		t.Errorf("films after HTTP update = %s", got)
	}
}

func TestEngineSwitchAndCacheToggle(t *testing.T) {
	net := netsim.NewNetwork(0, 0)
	y := NewPeer("xrpc://y", net)
	y.LoadDocument("filmDB.xml", xmark.PaperFilmDB)
	y.RegisterModule(filmModule, "http://x.example.org/film.xq")
	net.Register("xrpc://y", y.Handler())

	local := NewPeer("xrpc://local", net)
	local.RegisterModule(filmModule, "http://x.example.org/film.xq")
	q := `
import module namespace f="films" at "http://x.example.org/film.xq";
for $a in ("Sean Connery", "Julie Andrews", "Gerard Depardieu")
return count(execute at {"xrpc://y"} {f:filmsByActor($a)})`

	res, err := local.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 1 {
		t.Errorf("loop-lifted requests = %d", res.Requests)
	}
	local.Engine = EngineInterpreted
	res, err = local.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 3 {
		t.Errorf("interpreted requests = %d", res.Requests)
	}
	// function cache toggle is accepted on native peers and ignored on
	// wrapper peers
	y.SetFunctionCache(false)
	y.SetFunctionCache(true)
	wp, _ := NewWrapperPeer("xrpc://w", net)
	wp.SetFunctionCache(false) // no-op, must not panic
}

func TestQueryNoTransport(t *testing.T) {
	p := NewPeer("xrpc://alone", nil)
	p.LoadDocument("filmDB.xml", xmark.PaperFilmDB)
	res, err := p.Query(`count(doc("filmDB.xml")//film)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Serialize(); got != "3" {
		t.Errorf("local query = %s", got)
	}
	p.RegisterModule(filmModule, "http://x.example.org/film.xq")
	_, err = p.Query(`
import module namespace f="films" at "http://x.example.org/film.xq";
execute at {"xrpc://elsewhere"} {f:filmsByActor("X")}`)
	if err == nil || !strings.Contains(err.Error(), "transport") {
		t.Errorf("err = %v", err)
	}
}

func TestResultHelpers(t *testing.T) {
	p := NewPeer("xrpc://p", nil)
	res, err := p.Query(`(1, "a", 2.5)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Serialize(); got != "1 a 2.5" {
		t.Errorf("serialize = %q", got)
	}
	if res.Updating {
		t.Error("read-only query flagged updating")
	}
	stats := p.ServerStats()
	if stats.ServedRequests != 0 {
		t.Errorf("local-only peer served %d requests", stats.ServedRequests)
	}
}

func TestTimeoutOptionParsed(t *testing.T) {
	p := NewPeer("xrpc://p", nil)
	p.LoadDocument("filmDB.xml", xmark.PaperFilmDB)
	// timeout option present — query still runs locally
	res, err := p.Query(`
declare option xrpc:isolation "repeatable";
declare option xrpc:timeout "5";
count(doc("filmDB.xml")//film)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Serialize() != "3" {
		t.Errorf("got %s", res.Serialize())
	}
}

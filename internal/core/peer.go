// Package core assembles the paper's primary contribution into a usable
// system: an XRPC peer that stores documents, serves SOAP XRPC requests
// (with Bulk RPC, the function cache, and repeatable-read isolation),
// and executes distributed XQuery queries — choosing per query between
// the loop-lifting engine (Bulk RPC, the MonetDB/XQuery role) and the
// tree-walking interpreter (one-at-a-time RPC, the Saxon role), honoring
// the declare option xrpc:isolation / xrpc:timeout prolog options, and
// driving WS-AtomicTransaction 2PC for distributed updating queries.
package core

import (
	"fmt"
	"net/http"
	"time"

	"xrpc/internal/client"
	"xrpc/internal/interp"
	"xrpc/internal/modules"
	"xrpc/internal/netsim"
	"xrpc/internal/obs"
	"xrpc/internal/pathfinder"
	"xrpc/internal/server"
	"xrpc/internal/soap"
	"xrpc/internal/store"
	"xrpc/internal/txn"
	"xrpc/internal/wrapper"
	"xrpc/internal/xdm"
)

// EngineKind selects the local execution engine.
type EngineKind int

// Engine kinds.
const (
	// EngineLoopLifted compiles queries with the Pathfinder-style
	// loop-lifting compiler: execute-at in for-loops becomes Bulk RPC.
	EngineLoopLifted EngineKind = iota
	// EngineInterpreted evaluates queries with the tree-walking
	// interpreter: one RPC per function application.
	EngineInterpreted
)

// Peer is one XRPC peer: a document store, a module registry, an XRPC
// server endpoint, and a query processor.
type Peer struct {
	// Self is this peer's xrpc:// URI.
	Self string
	// Store holds the peer's documents.
	Store *store.Store
	// Registry holds the peer's XQuery modules.
	Registry *modules.Registry
	// Server answers incoming XRPC requests.
	Server *server.Server
	// Engine selects the default local execution engine.
	Engine EngineKind
	// Transport sends outgoing XRPC requests (nil = no remote calls).
	Transport netsim.Transport
	// DefaultTimeout is the isolation timeout (seconds) when the query
	// does not declare xrpc:timeout.
	DefaultTimeout int
	// Plans caches loop-lifted query compilations keyed on normalized
	// query text (nil = compile every query). NewPeer enables it.
	Plans *pathfinder.PlanCache

	exec *server.NativeExecutor
}

// NewPeer creates a peer with a native (function-cached) executor.
func NewPeer(self string, transport netsim.Transport) *Peer {
	st := store.New()
	reg := modules.NewRegistry()
	eng := interp.New(st, reg, nil)
	exec := server.NewNativeExecutor(eng, reg)
	srv := server.New(st, reg, exec)
	srv.Self = self
	p := &Peer{
		Self:           self,
		Store:          st,
		Registry:       reg,
		Server:         srv,
		Transport:      transport,
		DefaultTimeout: 30,
		Plans:          pathfinder.NewPlanCache(reg),
		exec:           exec,
	}
	// a module re-registration invalidates exactly the plans that
	// depend on it (the query plan cache fences itself on the registry
	// generation instead)
	reg.OnUpdate(exec.InvalidateModule)
	srv.NewRPC = func(qid *soap.QueryID) (interp.RPCCaller, func() []string) {
		if transport == nil {
			return nil, func() []string { return nil }
		}
		cl := client.New(transport)
		cl.QueryID = qid
		return cl, cl.Peers
	}
	return p
}

// NewWrapperPeer creates a peer that answers XRPC via the §4 wrapper
// (the way an XRPC-incapable engine like Saxon participates). Documents
// are raw texts re-parsed per request.
func NewWrapperPeer(self string, transport netsim.Transport) (*Peer, *wrapper.Wrapper) {
	st := store.New()
	reg := modules.NewRegistry()
	w := wrapper.New(reg, nil)
	if transport != nil {
		w.Remote = &client.DocResolver{Client: client.New(transport)}
	}
	srv := server.New(st, reg, w)
	srv.Self = self
	p := &Peer{
		Self:           self,
		Store:          st,
		Registry:       reg,
		Server:         srv,
		Transport:      transport,
		DefaultTimeout: 30,
	}
	return p, w
}

// SetParallelism bounds the worker pool the peer's executor uses to
// evaluate the calls of one incoming bulk request concurrently (n <= 1
// = sequential, the paper's original behaviour). Read-only bulk
// requests gain CPU parallelism on top of Bulk RPC's network
// amortization; updating requests always execute sequentially to keep
// repeatable-read semantics. Configure before serving traffic.
func (p *Peer) SetParallelism(n int) { p.Server.SetParallelism(n) }

// SetFunctionCache enables or disables the server-side function cache
// (Table 2's "With/No Function Cache" switch). No-op for wrapper peers,
// which never cache.
func (p *Peer) SetFunctionCache(on bool) {
	if p.exec == nil {
		return
	}
	p.exec.CacheEnabled = on
	p.exec.InvalidateCache()
}

// LoadDocument parses and stores a document.
func (p *Peer) LoadDocument(name, xml string) error {
	return p.Store.LoadXML(name, xml)
}

// RegisterModule registers an XQuery library module under its namespace
// URI and optional location hints.
func (p *Peer) RegisterModule(src string, hints ...string) error {
	return p.Registry.Register(src, hints...)
}

// EnableObs attaches the observability layer to the peer: request-path
// metrics and the counters of every server-side cache tier registered on
// reg, and slow (may be nil) as the structured slow-query log. Labels —
// typically shard="N" — distinguish peers sharing one registry. Call
// before serving traffic; a peer without EnableObs runs exactly as
// before (the nil-instrument fast path).
func (p *Peer) EnableObs(reg *obs.Registry, slow *obs.SlowLog, labels ...obs.Label) {
	p.Server.Metrics = server.NewMetrics(reg, labels...)
	p.Server.RegisterCacheMetrics(reg, labels...)
	p.Server.SlowLog = slow
}

// Ready reports whether the peer can usefully serve traffic: it must
// hold at least one document or one registered module. The /readyz
// debug endpoint surfaces the error.
func (p *Peer) Ready() error {
	if len(p.Store.Names()) > 0 || len(p.Registry.URIs()) > 0 {
		return nil
	}
	return fmt.Errorf("peer %s: no documents loaded and no modules registered", p.Self)
}

// Handler returns the peer's network handler for registration on a
// simulated network.
func (p *Peer) Handler() netsim.Handler { return p.Server }

// HTTPHandler returns the peer's endpoint as an http.Handler (POST
// /xrpc).
func (p *Peer) HTTPHandler() http.Handler { return p.Server }

// Result is the outcome of one query.
type Result struct {
	Sequence xdm.Sequence
	// Peers are the remote peers that participated.
	Peers []string
	// Requests is the number of XRPC requests this query sent.
	Requests int64
	// Updating reports whether the query was an updating query.
	Updating bool
}

// Serialize renders the result sequence as XML text.
func (r *Result) Serialize() string { return xdm.SerializeSequence(r.Sequence) }

// Query executes an XQuery query at this peer with default options.
func (p *Peer) Query(q string) (*Result, error) {
	return p.QueryWithVars(q, nil)
}

// QueryWithVars executes a query with external variable bindings. The
// full distributed semantics of §2.2/§2.3 apply:
//
//   - declare option xrpc:isolation "repeatable" pins a queryID, so all
//     requests of this query see one database state per peer (rule
//     R'_Fr) and updates are deferred (rule R'_Fu);
//   - updating queries always get a queryID and finish with
//     WS-AtomicTransaction 2PC across all participating peers;
//   - read-only queries without the option run at isolation "none"
//     (rules R_Fr / R_Fu).
func (p *Peer) QueryWithVars(q string, vars map[string]xdm.Sequence) (*Result, error) {
	// classification pass: options + updating detection use the
	// interpreter's compiler (cheap, and shared by both engines)
	cl := client.New(p.transportOrNoop())
	eng := interp.New(&client.DocResolver{Local: p.Store, Client: cl}, p.Registry, cl)
	compiled, err := eng.Compile(q)
	if err != nil {
		return nil, err
	}
	isolation := compiled.Option("xrpc:isolation")
	updating := compiled.IsUpdating()
	timeout := p.DefaultTimeout
	if t := compiled.Option("xrpc:timeout"); t != "" {
		fmt.Sscanf(t, "%d", &timeout)
	}
	if isolation == "repeatable" || updating {
		cl.QueryID = txn.NewQueryID(p.Self, timeout)
	}

	var seq xdm.Sequence
	var pul *interp.UpdateList
	switch p.Engine {
	case EngineInterpreted:
		seq, pul, err = compiled.Eval(&interp.EvalOptions{
			Vars:           vars,
			CollectUpdates: updating,
		})
	default:
		// local update expressions need the interpreter; fall back
		// transparently for updating queries
		if updating {
			seq, pul, err = compiled.Eval(&interp.EvalOptions{
				Vars:           vars,
				CollectUpdates: true,
			})
		} else {
			var pfc *pathfinder.Compiled
			if p.Plans != nil {
				pfc, err = p.Plans.Compile(q)
			} else {
				pfc, err = pathfinder.Compile(q, p.Registry)
			}
			if err != nil {
				return nil, err
			}
			ec := &pathfinder.ExecCtx{
				Docs: &client.DocResolver{Local: p.Store, Client: cl},
				Bulk: cl,
			}
			seq, err = pfc.Eval(ec, vars)
		}
	}
	if err != nil {
		return nil, err
	}

	res := &Result{Sequence: seq, Peers: cl.Peers(), Requests: cl.Requests.Load(), Updating: updating}
	if !updating {
		return res, nil
	}
	// distributed atomic commit: 2PC over the participating peers, then
	// local pending updates
	if cl.QueryID != nil && len(res.Peers) > 0 {
		co := &txn.Coordinator{Client: cl}
		if err := co.CommitAll(res.Peers); err != nil {
			return nil, err
		}
	}
	if err := interp.ApplyUpdates(p.Store, pul); err != nil {
		return nil, err
	}
	return res, nil
}

func (p *Peer) transportOrNoop() netsim.Transport {
	if p.Transport != nil {
		return p.Transport
	}
	return noopTransport{}
}

type noopTransport struct{}

func (noopTransport) Send(dest, path string, body []byte) ([]byte, error) {
	return nil, fmt.Errorf("xrpc: peer has no transport; cannot reach %s", dest)
}

// Stats summarizes a peer's served traffic.
type Stats struct {
	ServedRequests int64
	ServedCalls    int64
	HandleTime     time.Duration
}

// ServerStats returns the peer's server counters.
func (p *Peer) ServerStats() Stats {
	return Stats{
		ServedRequests: p.Server.ServedRequests,
		ServedCalls:    p.Server.ServedCalls,
		HandleTime:     p.Server.HandleTime,
	}
}

// Package wrapper implements the XRPC wrapper of §4 of the paper: a SOAP
// service handler that lets any XQuery processor — one with no native
// XRPC support — answer XRPC calls. The wrapper stores the incoming
// request message in a temporary location, generates an XQuery query
// (Figure 3) that iterates over the bulk calls, applies the requested
// function to each, and constructs the SOAP response envelope by element
// construction; then it executes that query on the wrapped engine.
//
// In the reproduction the wrapped processor is the tree-walking
// interpreter configured Saxon-style: no function cache (the module and
// the generated query are compiled per request) and no persistent store
// (source documents are re-parsed per request, the "treebuild" phase of
// Table 3).
package wrapper

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xrpc/internal/interp"
	"xrpc/internal/modules"
	"xrpc/internal/soap"
	"xrpc/internal/xdm"
)

// RequestDocURI is the temporary location the incoming request message
// is stored under ("/tmp/requestXXX.xml" in the paper).
const RequestDocURI = "/tmp/request.xml"

// Wrapper wraps an XRPC-incapable XQuery engine. It implements
// server.Executor.
type Wrapper struct {
	// Registry resolves the imported module (compiled per request — the
	// wrapped processor has no function cache).
	Registry *modules.Registry
	// Texts holds the engine's source documents as raw XML text,
	// re-parsed on every access like a stream-oriented processor.
	Texts map[string]string
	// Remote, when set, resolves documents not found in Texts — used
	// for xrpc:// data shipping from the wrapped engine (the execution
	// relocation strategy of §5 needs the Saxon peer to fetch
	// persons.xml from the MonetDB peer).
	Remote interp.DocResolver
	// PureXQueryMarshal makes the generated query use the pure-XQuery
	// n2s/s2n implementations (PureMarshalModule) instead of the native
	// ones — §4's "can be implemented purely in XQuery".
	PureXQueryMarshal bool
	// Parallelism bounds the worker pool that serves one bulk request:
	// the calls are sharded into contiguous chunks and each chunk runs
	// the full wrapper cycle (request doc, generated query, execution)
	// concurrently, re-uniting results in call order. Values <= 1 mean
	// the single generated query of Figure 3. Updating requests always
	// take the sequential path. Configure before serving traffic.
	Parallelism int

	reqSeq atomic.Int64

	mu sync.Mutex
	// LastQuery is the most recently generated query text (Figure 3),
	// kept for inspection.
	LastQuery string
	// LastStats holds the compile/treebuild/exec phases of the last
	// request (Table 3).
	LastStats interp.Stats
}

// New creates a wrapper over a module registry and raw document texts.
// The pure-XQuery marshaling module is registered so either marshaling
// mode works.
func New(reg *modules.Registry, texts map[string]string) *Wrapper {
	if texts == nil {
		texts = map[string]string{}
	}
	if reg != nil {
		// best effort; a caller may have registered it already
		_ = reg.Register(PureMarshalModule, "urn:xrpc-marshal")
	}
	return &Wrapper{Registry: reg, Texts: texts}
}

// LoadText registers a source document as raw text.
func (w *Wrapper) LoadText(name, text string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.Texts[name] = text
}

// GenerateQuery produces the XQuery query the wrapper runs for a request
// — the exact shape of Figure 3 of the paper (native marshaling).
func GenerateQuery(req *soap.Request, requestDoc string) string {
	return GenerateQueryWith(req, requestDoc, false)
}

// GenerateQueryWith optionally generates the pure-XQuery-marshaling
// variant, which imports PureMarshalModule and calls xm:n2s/xm:s2n.
func GenerateQueryWith(req *soap.Request, requestDoc string, pureMarshal bool) string {
	n2s, s2n := "xrpcw:n2s", "xrpcw:s2n"
	var b strings.Builder
	fmt.Fprintf(&b, "import module namespace func = %q at %q;\n", req.Module, req.Location)
	if pureMarshal {
		n2s, s2n = "xm:n2s", "xm:s2n"
		b.WriteString("import module namespace xm = \"urn:xrpc-marshal\" at \"urn:xrpc-marshal\";\n")
	}
	b.WriteString(`declare namespace env = "` + soap.NSEnv + "\";\n")
	b.WriteString(`declare namespace xrpc = "` + soap.NSXRPC + "\";\n")
	b.WriteString(`<env:Envelope xmlns:env="` + soap.NSEnv + `"` + "\n")
	b.WriteString(`  xmlns:xrpc="` + soap.NSXRPC + `"` + "\n")
	b.WriteString(`  xmlns:xs="` + soap.NSXS + `"` + "\n")
	b.WriteString(`  xmlns:xsi="` + soap.NSXSI + `"` + "\n")
	b.WriteString(`  xsi:schemaLocation="` + soap.SchemaLoc + `">` + "\n")
	b.WriteString("<env:Body>\n")
	fmt.Fprintf(&b, `<xrpc:response xrpc:module=%q xrpc:method=%q>{`+"\n", req.Module, req.Method)
	fmt.Fprintf(&b, "  for $call in doc(%q)//xrpc:call\n", requestDoc)
	var params []string
	for i := 1; i <= req.Arity; i++ {
		fmt.Fprintf(&b, "  let $param%d := %s($call/xrpc:sequence[%d])\n", i, n2s, i)
		params = append(params, fmt.Sprintf("$param%d", i))
	}
	fmt.Fprintf(&b, "  return %s(func:%s(%s))\n", s2n, req.Method, strings.Join(params, ", "))
	b.WriteString("}</xrpc:response>\n</env:Body>\n</env:Envelope>")
	return b.String()
}

// SetParallelism implements server.ParallelExecutor.
func (w *Wrapper) SetParallelism(n int) { w.Parallelism = n }

// Execute implements server.Executor. With Parallelism <= 1 (or an
// updating request) it performs the single full wrapper cycle; otherwise
// the bulk calls are sharded across a worker pool, each shard running
// its own wrapper cycle, and the per-call results are concatenated in
// shard order — identical to the sequential response.
func (w *Wrapper) Execute(req *soap.Request, raw []byte, docs interp.DocResolver, rpc interp.RPCCaller) ([]xdm.Sequence, *interp.UpdateList, *interp.Stats, error) {
	workers := w.Parallelism
	if workers > len(req.Calls) {
		workers = len(req.Calls)
	}
	if workers <= 1 || len(req.Calls) < 2 || req.Updating {
		return w.executeOnce(req, raw)
	}

	// contiguous shards, one per worker
	type shard struct {
		req  *soap.Request
		res  []xdm.Sequence
		pul  *interp.UpdateList
		stat *interp.Stats
		err  error
	}
	shards := make([]*shard, 0, workers)
	per := (len(req.Calls) + workers - 1) / workers
	for lo := 0; lo < len(req.Calls); lo += per {
		hi := lo + per
		if hi > len(req.Calls) {
			hi = len(req.Calls)
		}
		sub := *req
		sub.Calls = req.Calls[lo:hi]
		if req.SeqNrs != nil {
			sub.SeqNrs = req.SeqNrs[lo:hi]
		}
		shards = append(shards, &shard{req: &sub})
	}
	var wg sync.WaitGroup
	for _, sh := range shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			// pooled encoder: executeOnce copies the bytes into its
			// per-request document source before returning
			enc := soap.NewEncoder()
			enc.EncodeRequest(sh.req)
			sh.res, sh.pul, sh.stat, sh.err = w.executeOnce(sh.req, enc.Bytes())
			enc.Release()
		}(sh)
	}
	wg.Wait()

	stats := &interp.Stats{}
	pul := &interp.UpdateList{}
	results := make([]xdm.Sequence, 0, len(req.Calls))
	for _, sh := range shards {
		if sh.err != nil {
			// lowest-shard failure: what sequential execution would hit
			// first
			return nil, nil, nil, sh.err
		}
		results = append(results, sh.res...)
		pul.Merge(sh.pul)
		// phase accounting sums CPU time across shards (wall-clock is
		// lower under parallelism)
		stats.Compile += sh.stat.Compile
		stats.TreeBuild += sh.stat.TreeBuild
		stats.Exec += sh.stat.Exec
	}
	w.mu.Lock()
	w.LastStats = *stats
	w.mu.Unlock()
	return results, pul, stats, nil
}

// executeOnce performs the full wrapper cycle for one request message
// (store request doc, generate query, compile, execute, decode response)
// and records the three latency phases.
func (w *Wrapper) executeOnce(req *soap.Request, raw []byte) ([]xdm.Sequence, *interp.UpdateList, *interp.Stats, error) {
	reqDoc := fmt.Sprintf("/tmp/request%d.xml", w.reqSeq.Add(1))
	stats := &interp.Stats{}

	// per-request document source: request message + the engine's raw
	// texts, parsed on access with treebuild accounting
	docs := &timingDocSource{
		texts:     w.Texts,
		extra:     map[string]string{reqDoc: string(raw)},
		remote:    w.Remote,
		treeBuild: &stats.TreeBuild,
	}
	engine := &interp.Engine{
		Docs:    docs,
		Modules: w.Registry,
		ExtFuncs: map[string]interp.ExtFunc{
			"xrpcw:n2s": extN2S,
			"xrpcw:s2n": extS2N,
		},
	}

	query := GenerateQueryWith(req, reqDoc, w.PureXQueryMarshal)
	w.mu.Lock()
	w.LastQuery = query
	w.mu.Unlock()

	compileStart := time.Now()
	compiled, err := engine.Compile(query)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("wrapper: generated query does not compile: %w", err)
	}
	stats.Compile = time.Since(compileStart)

	execStart := time.Now()
	seq, pul, err := compiled.Eval(&interp.EvalOptions{CollectUpdates: true})
	if err != nil {
		return nil, nil, nil, err
	}
	stats.Exec = time.Since(execStart) - stats.TreeBuild
	if stats.Exec < 0 {
		stats.Exec = 0
	}

	// the query's value is the response envelope; walk it to hand the
	// per-call sequences back to the server layer (no text round-trip)
	if len(seq) != 1 {
		return nil, nil, nil, fmt.Errorf("wrapper: generated query returned %d items", len(seq))
	}
	env, ok := seq[0].(*xdm.Node)
	if !ok {
		return nil, nil, nil, fmt.Errorf("wrapper: generated query returned a non-node")
	}
	results, err := extractResults(env)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("wrapper: generated response invalid: %w", err)
	}
	// updating calls return empty sequences; pad to the call count
	for len(results) < len(req.Calls) {
		results = append(results, xdm.Sequence{})
	}
	w.mu.Lock()
	w.LastStats = *stats
	w.mu.Unlock()
	return results, pul, stats, nil
}

// extractResults pulls the per-call sequences out of the constructed
// envelope tree.
func extractResults(env *xdm.Node) ([]xdm.Sequence, error) {
	node := env
	for _, local := range []string{"Body", "response"} {
		var next *xdm.Node
		for _, c := range node.ChildElements() {
			name := c.Name
			if i := strings.IndexByte(name, ':'); i >= 0 {
				name = name[i+1:]
			}
			if name == local {
				next = c
				break
			}
		}
		if next == nil {
			return nil, fmt.Errorf("missing %s element", local)
		}
		node = next
	}
	var out []xdm.Sequence
	for _, c := range node.ChildElements() {
		name := c.Name
		if i := strings.IndexByte(name, ':'); i >= 0 {
			name = name[i+1:]
		}
		if name != "sequence" {
			continue
		}
		seq, err := soap.DecodeSequence(c)
		if err != nil {
			return nil, err
		}
		out = append(out, seq)
	}
	return out, nil
}

// extN2S is the n2s marshaling function exposed to the generated query:
// <xrpc:sequence> element -> XDM sequence.
func extN2S(args []xdm.Sequence) (xdm.Sequence, error) {
	if len(args) != 1 || len(args[0]) != 1 {
		return nil, xdm.NewError("XRPC0008", "n2s expects one sequence element")
	}
	n, ok := args[0][0].(*xdm.Node)
	if !ok {
		return nil, xdm.NewError("XRPC0008", "n2s expects a node")
	}
	return soap.DecodeSequence(n)
}

// extS2N is the s2n marshaling function: XDM sequence ->
// <xrpc:sequence> element.
func extS2N(args []xdm.Sequence) (xdm.Sequence, error) {
	if len(args) != 1 {
		return nil, xdm.NewError("XRPC0008", "s2n expects one argument")
	}
	return xdm.Singleton(soap.SequenceToNode(args[0])), nil
}

// timingDocSource parses raw XML text on every fn:doc access and
// accumulates parse time into the treebuild phase, mimicking a
// stream-oriented processor like Saxon that rebuilds source trees per
// query.
type timingDocSource struct {
	texts     map[string]string
	extra     map[string]string
	remote    interp.DocResolver
	treeBuild *time.Duration
	// parsed caches trees within one request: fn:doc is stable inside a
	// query, so a bulk of 1000 calls parses each source document once
	// (Saxon's Table 3 treebuild is likewise paid once per query).
	parsed map[string]*xdm.Node
}

// Doc implements interp.DocResolver.
func (s *timingDocSource) Doc(uri string) (*xdm.Node, error) {
	if doc, ok := s.parsed[uri]; ok {
		return doc, nil
	}
	text, ok := s.extra[uri]
	if !ok {
		text, ok = s.texts[uri]
	}
	if !ok {
		if s.remote != nil {
			return s.remote.Doc(uri)
		}
		return nil, xdm.Errorf("FODC0002", "document %q not found", uri)
	}
	start := time.Now()
	doc, err := xdm.ParseDocument(uri, text)
	*s.treeBuild += time.Since(start)
	if err != nil {
		return nil, err
	}
	if s.parsed == nil {
		s.parsed = map[string]*xdm.Node{}
	}
	s.parsed[uri] = doc
	return doc, nil
}

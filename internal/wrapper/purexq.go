package wrapper

// PureMarshalModule implements the n2s()/s2n() marshaling functions of
// §2.2 purely in XQuery, as §4 of the paper says is possible ("The s2n()
// function ... uses an XQuery typeswitch() to generate the right SOAP
// node"). The wrapper normally uses native marshaling (the paper:
// "these functions do not need to exist in reality"); enabling
// PureXQueryMarshal makes the generated query use this module instead —
// demonstrating that a completely XQuery-level wrapper is feasible.
//
// n2s dispatches on the XRPC wrapper-element names and rebuilds typed
// atomic values with xs:TYPE constructor functions; node values are
// re-constructed (element constructors deep-copy their content), so the
// returned nodes are fresh fragments — navigating upwards from them can
// never reach the SOAP envelope, exactly the guarantee §2.2 demands.
const PureMarshalModule = `
module namespace xm = "urn:xrpc-marshal";
declare namespace xrpc = "http://monetdb.cwi.nl/XQuery";
declare namespace xsi = "http://www.w3.org/2001/XMLSchema-instance";

declare function xm:typed($v as node()) as item() {
  let $t := string($v/@xsi:type)
  return
    if ($t = "xs:integer") then xs:integer(string($v))
    else if ($t = "xs:double")  then xs:double(string($v))
    else if ($t = "xs:decimal") then xs:decimal(string($v))
    else if ($t = "xs:boolean") then xs:boolean(string($v))
    else if ($t = "xs:untypedAtomic") then xs:untypedAtomic(string($v))
    else string($v)
};

(: deep re-construction: the result is a fresh fragment :)
declare function xm:copy($n as node()) as node() {
  typeswitch ($n)
  case $e as element() return
    element {name($e)} {
      for $a in $e/@* return attribute {name($a)} {string($a)},
      for $c in $e/node() return xm:copy($c)
    }
  case $t as text() return text {string($t)}
  default return $n
};

declare function xm:n2s($seq as node()) as item()* {
  for $v in $seq/*
  return
    if (local-name($v) = "atomic-value") then xm:typed($v)
    else if (local-name($v) = "element")  then (for $c in $v/* return xm:copy($c))
    else if (local-name($v) = "text")     then text {string($v)}
    else if (local-name($v) = "document") then (for $c in $v/* return xm:copy($c))
    else ()
};

declare function xm:s2n($seq as item()*) as node() {
  element {"xrpc:sequence"} {
    for $i in $seq
    return
      typeswitch ($i)
      case $e as element() return element {"xrpc:element"} { $e }
      case $d as document-node() return element {"xrpc:document"} { $d }
      case $t as text() return element {"xrpc:text"} { string($t) }
      case $b as xs:boolean return
        element {"xrpc:atomic-value"} { attribute {"xsi:type"} {"xs:boolean"}, string($b) }
      case $n as xs:integer return
        element {"xrpc:atomic-value"} { attribute {"xsi:type"} {"xs:integer"}, string($n) }
      case $n as xs:double return
        element {"xrpc:atomic-value"} { attribute {"xsi:type"} {"xs:double"}, string($n) }
      case $n as xs:decimal return
        element {"xrpc:atomic-value"} { attribute {"xsi:type"} {"xs:decimal"}, string($n) }
      case $u as xs:untypedAtomic return
        element {"xrpc:atomic-value"} { attribute {"xsi:type"} {"xs:untypedAtomic"}, string($u) }
      default $a return
        element {"xrpc:atomic-value"} { attribute {"xsi:type"} {"xs:string"}, string($a) }
  }
};`

package wrapper

import (
	"fmt"
	"strings"
	"testing"

	"xrpc/internal/modules"
	"xrpc/internal/soap"
	"xrpc/internal/xdm"
)

const funcsModule = `
module namespace func="functions";
declare function func:getPerson($doc as xs:string, $pid as xs:string) as node()?
{ zero-or-one(doc($doc)//person[@id=$pid]) };
declare function func:echoVoid() { () };`

const personsDoc = `<site><people>
<person id="person0"><name>Alice</name></person>
<person id="person1"><name>Bob</name></person>
<person id="person2"><name>Carol</name></person>
</people></site>`

func newWrapper(t *testing.T) *Wrapper {
	t.Helper()
	reg := modules.NewRegistry()
	if err := reg.Register(funcsModule, "http://example.org/functions.xq"); err != nil {
		t.Fatal(err)
	}
	w := New(reg, nil)
	w.LoadText("xmark.xml", personsDoc)
	return w
}

// Figure 3: the generated query shape for getPerson.
func TestFigure3GeneratedQuery(t *testing.T) {
	req := &soap.Request{
		Module: "functions", Method: "getPerson", Arity: 2,
		Location: "http://example.org/functions.xq",
	}
	q := GenerateQuery(req, "/tmp/requestXXX.xml")
	for _, want := range []string{
		`import module namespace func = "functions" at "http://example.org/functions.xq";`,
		`declare namespace env = "http://www.w3.org/2003/05/soap-envelope";`,
		`declare namespace xrpc = "http://monetdb.cwi.nl/XQuery";`,
		`<env:Envelope`,
		`<xrpc:response xrpc:module="functions" xrpc:method="getPerson">`,
		`for $call in doc("/tmp/requestXXX.xml")//xrpc:call`,
		`let $param1 := xrpcw:n2s($call/xrpc:sequence[1])`,
		`let $param2 := xrpcw:n2s($call/xrpc:sequence[2])`,
		`return xrpcw:s2n(func:getPerson($param1, $param2))`,
	} {
		if !strings.Contains(q, want) {
			t.Errorf("generated query missing %q\n%s", want, q)
		}
	}
}

func execRequest(t *testing.T, w *Wrapper, req *soap.Request) []xdm.Sequence {
	t.Helper()
	raw := soap.EncodeRequest(req)
	results, _, stats, err := w.Execute(req, raw, nil, nil)
	if err != nil {
		t.Fatalf("wrapper execute: %v", err)
	}
	if stats.Compile <= 0 {
		t.Error("compile phase not recorded")
	}
	return results
}

func TestWrapperGetPersonSingle(t *testing.T) {
	w := newWrapper(t)
	req := &soap.Request{
		Module: "functions", Method: "getPerson", Arity: 2,
		Location: "http://example.org/functions.xq",
		Calls: [][]xdm.Sequence{
			{{xdm.String("xmark.xml")}, {xdm.String("person1")}},
		},
	}
	results := execRequest(t, w, req)
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	n := results[0][0].(*xdm.Node)
	if id, _ := n.Attr("id"); id != "person1" {
		t.Errorf("person = %s", xdm.SerializeNode(n))
	}
	if w.LastStats.TreeBuild <= 0 {
		t.Error("treebuild phase not recorded (source doc must be re-parsed)")
	}
}

// Bulk getPerson through the wrapper: the generated query's for-loop
// iterates over all calls — the selection becomes a join (§4).
func TestWrapperGetPersonBulk(t *testing.T) {
	w := newWrapper(t)
	var calls [][]xdm.Sequence
	ids := []string{"person2", "person0", "person1", "person0"}
	for _, id := range ids {
		calls = append(calls, []xdm.Sequence{{xdm.String("xmark.xml")}, {xdm.String(id)}})
	}
	req := &soap.Request{
		Module: "functions", Method: "getPerson", Arity: 2,
		Location: "http://example.org/functions.xq",
		Calls:    calls,
	}
	results := execRequest(t, w, req)
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	for i, id := range ids {
		n := results[i][0].(*xdm.Node)
		if got, _ := n.Attr("id"); got != id {
			t.Errorf("call %d: got %s, want %s", i, got, id)
		}
	}
}

func TestWrapperEchoVoid(t *testing.T) {
	w := newWrapper(t)
	var calls [][]xdm.Sequence
	for i := 0; i < 10; i++ {
		calls = append(calls, []xdm.Sequence{})
	}
	req := &soap.Request{
		Module: "functions", Method: "echoVoid", Arity: 0,
		Location: "http://example.org/functions.xq",
		Calls:    calls,
	}
	results := execRequest(t, w, req)
	if len(results) != 10 {
		t.Fatalf("results = %d", len(results))
	}
	for i, seq := range results {
		if len(seq) != 0 {
			t.Errorf("call %d: non-empty result %v", i, seq)
		}
	}
}

func TestWrapperMissingPerson(t *testing.T) {
	w := newWrapper(t)
	req := &soap.Request{
		Module: "functions", Method: "getPerson", Arity: 2,
		Location: "http://example.org/functions.xq",
		Calls: [][]xdm.Sequence{
			{{xdm.String("xmark.xml")}, {xdm.String("person999")}},
		},
	}
	results := execRequest(t, w, req)
	if len(results[0]) != 0 {
		t.Errorf("missing person should give empty sequence, got %v", results[0])
	}
}

func TestWrapperUnknownModule(t *testing.T) {
	w := newWrapper(t)
	req := &soap.Request{
		Module: "nope", Method: "f", Arity: 0, Location: "x",
		Calls: [][]xdm.Sequence{{}},
	}
	if _, _, _, err := w.Execute(req, soap.EncodeRequest(req), nil, nil); err == nil {
		t.Fatal("expected module load error")
	}
}

func TestWrapperNoFunctionCache(t *testing.T) {
	// Saxon-style: each request pays compile time again.
	w := newWrapper(t)
	req := &soap.Request{
		Module: "functions", Method: "echoVoid", Arity: 0,
		Location: "http://example.org/functions.xq",
		Calls:    [][]xdm.Sequence{{}},
	}
	execRequest(t, w, req)
	first := w.LastStats.Compile
	execRequest(t, w, req)
	second := w.LastStats.Compile
	if first <= 0 || second <= 0 {
		t.Errorf("both requests must pay compile time: %v, %v", first, second)
	}
}

func TestTypeswitchParsesInMarshalModule(t *testing.T) {
	reg := modules.NewRegistry()
	if err := reg.Register(PureMarshalModule, "urn:xrpc-marshal"); err != nil {
		t.Fatalf("pure marshal module does not parse: %v", err)
	}
}

// §4: n2s/s2n "can be implemented purely in XQuery" — the pure-XQuery
// marshaling mode must produce exactly the same results as the native
// one.
func TestPureXQueryMarshalEquivalence(t *testing.T) {
	mk := func(pure bool) []xdm.Sequence {
		w := newWrapper(t)
		w.PureXQueryMarshal = pure
		req := &soap.Request{
			Module: "functions", Method: "getPerson", Arity: 2,
			Location: "http://example.org/functions.xq",
			Calls: [][]xdm.Sequence{
				{{xdm.String("xmark.xml")}, {xdm.String("person1")}},
				{{xdm.String("xmark.xml")}, {xdm.String("person0")}},
				{{xdm.String("xmark.xml")}, {xdm.String("missing")}},
			},
		}
		return execRequest(t, w, req)
	}
	native := mk(false)
	pure := mk(true)
	if len(native) != len(pure) {
		t.Fatalf("result counts differ: %d vs %d", len(native), len(pure))
	}
	for i := range native {
		a := xdm.SerializeSequence(native[i])
		b := xdm.SerializeSequence(pure[i])
		if a != b {
			t.Errorf("call %d: native %q vs pure %q", i, a, b)
		}
	}
	// pure mode's generated query imports the marshal module
	w := newWrapper(t)
	w.PureXQueryMarshal = true
	req := &soap.Request{
		Module: "functions", Method: "echoVoid", Arity: 0,
		Location: "http://example.org/functions.xq",
		Calls:    [][]xdm.Sequence{{}},
	}
	execRequest(t, w, req)
	if !strings.Contains(w.LastQuery, `import module namespace xm = "urn:xrpc-marshal"`) {
		t.Errorf("generated query:\n%s", w.LastQuery)
	}
	if !strings.Contains(w.LastQuery, "xm:s2n(") {
		t.Errorf("generated query does not use pure s2n:\n%s", w.LastQuery)
	}
}

// The pure-XQuery n2s must return fresh fragments: a function navigating
// upward from a node parameter sees nothing (§2.2's guarantee).
func TestPureMarshalNodesAreFragments(t *testing.T) {
	reg := modules.NewRegistry()
	mod := `
module namespace up="up";
declare function up:parentCount($n as node()) as xs:integer
{ count($n/..) };`
	if err := reg.Register(mod, "http://example.org/up.xq"); err != nil {
		t.Fatal(err)
	}
	w := New(reg, nil)
	w.PureXQueryMarshal = true
	frag, _ := xdm.ParseFragment(`<wrapped><inner/></wrapped>`)
	req := &soap.Request{
		Module: "up", Method: "parentCount", Arity: 1,
		Location: "http://example.org/up.xq",
		Calls:    [][]xdm.Sequence{{{frag[0]}}},
	}
	results := execRequest(t, w, req)
	if got := xdm.SerializeSequence(results[0]); got != "0" {
		t.Errorf("parent count through pure n2s = %s, want 0 (fresh fragment)", got)
	}
}

// Sharded parallel wrapper execution returns the same per-call results
// as the single generated query of Figure 3.
func TestWrapperParallelShardsMatchSequential(t *testing.T) {
	req := &soap.Request{
		Module: "functions", Method: "getPerson", Arity: 2,
		Location: "http://example.org/functions.xq",
	}
	for i := 0; i < 9; i++ {
		req.Calls = append(req.Calls, []xdm.Sequence{
			{xdm.String("xmark.xml")},
			{xdm.String(fmt.Sprintf("person%d", i%3))},
		})
	}
	raw := soap.EncodeRequest(req)
	w := newWrapper(t)
	want, _, _, err := w.Execute(req, raw, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		wp := newWrapper(t)
		wp.SetParallelism(workers)
		got, _, _, err := wp.Execute(req, raw, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			ws := xdm.SerializeSequence(want[i])
			gs := xdm.SerializeSequence(got[i])
			if ws != gs {
				t.Errorf("workers=%d call %d: %s != %s", workers, i, gs, ws)
			}
		}
	}
}

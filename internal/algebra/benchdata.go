package algebra

// Benchmark input builders shared by the package microbenchmarks
// (bench_test.go) and the `xrpcbench -table algebra` experiment
// (internal/bench), so the two always measure the same shapes.

import (
	"fmt"

	"xrpc/internal/xdm"
)

// BenchJoinInput builds the mapScopeInner shape: a mapping table
// inner|outer of n rows and a variable table iter|pos|item aligned to
// the outer loop of n/4 iterations — the join every for-clause performs
// per live variable.
func BenchJoinInput(n int) (mapTbl, varTbl *Table) {
	outer := n / 4
	if outer < 1 {
		outer = 1
	}
	mapTbl = NewTable("inner", "outer")
	for k := 1; k <= n; k++ {
		mapTbl.Append(xdm.Integer(int64(k)), xdm.Integer(int64((k-1)%outer+1)))
	}
	varTbl = NewTable(ColIter, ColPos, ColItem)
	for it := 1; it <= outer; it++ {
		for p := 1; p <= 4; p++ {
			varTbl.AppendSeq(int64(it), int64(p), xdm.String(fmt.Sprintf("item-%d-%d", it, p)))
		}
	}
	return mapTbl, varTbl
}

// BenchSeqInput builds an n-row iter|pos|item table with deliberately
// unsorted iters so ρ and sorts do real work.
func BenchSeqInput(n int) *Table {
	t := NewTable(ColIter, ColPos, ColItem)
	for r := 0; r < n; r++ {
		t.AppendSeq(int64(n-r), int64(r%7+1), xdm.String("v"))
	}
	return t
}

// BenchBoolInput builds an n-row table with a boolean selection column
// (every third row true).
func BenchBoolInput(n int) *Table {
	t := NewTable(ColIter, "b")
	for r := 0; r < n; r++ {
		t.Append(xdm.Integer(int64(r)), xdm.Boolean(r%3 == 0))
	}
	return t
}

// Package algebra implements the vanilla relational algebra that the
// Pathfinder compiler targets — exactly the operator set of Table 1 of
// the paper: selection σ, projection π (with renaming, no duplicate
// removal), duplicate elimination δ, disjoint union ∪, equi-join ⋈,
// row numbering ρ (DENSE_RANK), and literal tables.
//
// XQuery sequences are represented as tables with schema iter|pos|item
// (§3.1): iter is the loop iteration, pos the position within the
// iteration's sequence, item the value. The paper's MonetDB back-end is
// columnar; this reproduction stores rows — the operator semantics, not
// the storage layout, carry the loop-lifting argument.
package algebra

import (
	"fmt"
	"sort"
	"strings"

	"xrpc/internal/xdm"
)

// Standard column names for loop-lifted sequence tables.
const (
	ColIter = "iter"
	ColPos  = "pos"
	ColItem = "item"
)

// Table is a relational table: named columns over rows of XDM items.
// Integer-valued columns (iter, pos) hold xdm.Integer.
type Table struct {
	Cols []string
	Rows [][]xdm.Item
}

// NewTable creates an empty table with the given columns.
func NewTable(cols ...string) *Table {
	return &Table{Cols: cols}
}

// ColIdx returns the index of a column, or -1.
func (t *Table) ColIdx(name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

func (t *Table) mustCol(name string) int {
	i := t.ColIdx(name)
	if i < 0 {
		panic(fmt.Sprintf("algebra: table %v has no column %q", t.Cols, name))
	}
	return i
}

// Append adds a row (must match the column count).
func (t *Table) Append(row ...xdm.Item) {
	if len(row) != len(t.Cols) {
		panic(fmt.Sprintf("algebra: row width %d != %d columns", len(row), len(t.Cols)))
	}
	t.Rows = append(t.Rows, row)
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// Int reads an integer cell.
func (t *Table) Int(row, col int) int64 {
	return int64(t.Rows[row][col].(xdm.Integer))
}

// Clone copies the table (rows shared are re-sliced, items shared).
func (t *Table) Clone() *Table {
	out := &Table{Cols: append([]string(nil), t.Cols...)}
	out.Rows = make([][]xdm.Item, len(t.Rows))
	for i, r := range t.Rows {
		out.Rows[i] = append([]xdm.Item(nil), r...)
	}
	return out
}

// String renders the table for debugging and for the Figure 1
// experiment output.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Cols, "|"))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		parts := make([]string, len(r))
		for i, v := range r {
			if v == nil {
				parts[i] = "·"
			} else if n, ok := v.(*xdm.Node); ok {
				parts[i] = xdm.SerializeNode(n)
			} else {
				parts[i] = v.StringValue()
			}
		}
		b.WriteString(strings.Join(parts, "|"))
		b.WriteByte('\n')
	}
	return b.String()
}

// itemKey builds a comparable key for grouping/dedup.
func itemKey(it xdm.Item) any {
	switch v := it.(type) {
	case nil:
		return nil
	case *xdm.Node:
		return v
	case xdm.Integer:
		return int64(v)
	case xdm.Double:
		return float64(v)
	case xdm.Decimal:
		return "d:" + v.StringValue()
	case xdm.Boolean:
		return bool(v)
	default:
		return it.TypeName() + ":" + it.StringValue()
	}
}

// rowKey builds a comparable composite key over the given columns.
func rowKey(row []xdm.Item, idx []int) string {
	parts := make([]string, len(idx))
	for i, c := range idx {
		parts[i] = fmt.Sprintf("%v", itemKey(row[c]))
	}
	return strings.Join(parts, "\x00")
}

// ------------------------------------------------------------ operators

// Select (σ) keeps rows whose named boolean column is true.
func Select(t *Table, col string) *Table {
	c := t.mustCol(col)
	out := NewTable(t.Cols...)
	for _, r := range t.Rows {
		if b, ok := r[c].(xdm.Boolean); ok && bool(b) {
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}

// SelectEq keeps rows where column col equals the given item.
func SelectEq(t *Table, col string, val xdm.Item) *Table {
	c := t.mustCol(col)
	key := itemKey(val)
	out := NewTable(t.Cols...)
	for _, r := range t.Rows {
		if itemKey(r[c]) == key {
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}

// Project (π) projects and optionally renames columns: each spec is
// either "col" or "new:old". No duplicate removal.
func Project(t *Table, specs ...string) *Table {
	type mapping struct {
		to   string
		from int
	}
	maps := make([]mapping, len(specs))
	cols := make([]string, len(specs))
	for i, s := range specs {
		to, from := s, s
		if j := strings.IndexByte(s, ':'); j >= 0 {
			to, from = s[:j], s[j+1:]
		}
		maps[i] = mapping{to: to, from: t.mustCol(from)}
		cols[i] = to
	}
	out := NewTable(cols...)
	out.Rows = make([][]xdm.Item, len(t.Rows))
	for ri, r := range t.Rows {
		row := make([]xdm.Item, len(maps))
		for i, m := range maps {
			row[i] = r[m.from]
		}
		out.Rows[ri] = row
	}
	return out
}

// Distinct (δ) removes duplicate rows.
func Distinct(t *Table) *Table {
	idx := make([]int, len(t.Cols))
	for i := range idx {
		idx[i] = i
	}
	seen := map[string]bool{}
	out := NewTable(t.Cols...)
	for _, r := range t.Rows {
		k := rowKey(r, idx)
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Rows = append(out.Rows, r)
	}
	return out
}

// Union (∪) is disjoint union: schemas must match.
func Union(a, b *Table) *Table {
	if len(a.Cols) != len(b.Cols) {
		panic("algebra: union of incompatible schemas")
	}
	out := NewTable(a.Cols...)
	out.Rows = append(out.Rows, a.Rows...)
	out.Rows = append(out.Rows, b.Rows...)
	return out
}

// UnionAll unions any number of tables.
func UnionAll(tables ...*Table) *Table {
	if len(tables) == 0 {
		return NewTable()
	}
	out := NewTable(tables[0].Cols...)
	for _, t := range tables {
		out.Rows = append(out.Rows, t.Rows...)
	}
	return out
}

// Join (⋈) is an equi-join on a.colA = b.colB. Columns of b are suffixed
// with "'" when they collide with a's.
func Join(a, b *Table, colA, colB string) *Table {
	ca, cb := a.mustCol(colA), b.mustCol(colB)
	cols := append([]string(nil), a.Cols...)
	for _, c := range b.Cols {
		name := c
		for contains(cols, name) {
			name += "'"
		}
		cols = append(cols, name)
	}
	out := NewTable(cols...)
	index := map[any][]int{}
	for i, r := range b.Rows {
		k := itemKey(r[cb])
		index[k] = append(index[k], i)
	}
	for _, ra := range a.Rows {
		for _, bi := range index[itemKey(ra[ca])] {
			row := append(append([]xdm.Item(nil), ra...), b.Rows[bi]...)
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// RowNum (ρ) implements DENSE_RANK-style row numbering: rows are ordered
// by the sort columns, then numbered consecutively from 1 within each
// partition (partition column "" means a single partition). The numbers
// land in a new column named newCol.
func RowNum(t *Table, newCol string, sortCols []string, partition string) *Table {
	sortIdx := make([]int, len(sortCols))
	for i, c := range sortCols {
		sortIdx[i] = t.mustCol(c)
	}
	partIdx := -1
	if partition != "" {
		partIdx = t.mustCol(partition)
	}
	order := make([]int, len(t.Rows))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		rx, ry := t.Rows[order[x]], t.Rows[order[y]]
		if partIdx >= 0 {
			c := compareItems(rx[partIdx], ry[partIdx])
			if c != 0 {
				return c < 0
			}
		}
		for _, si := range sortIdx {
			c := compareItems(rx[si], ry[si])
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	out := NewTable(append(append([]string(nil), t.Cols...), newCol)...)
	out.Rows = make([][]xdm.Item, len(t.Rows))
	var lastPart any = struct{}{}
	n := int64(0)
	for _, ri := range order {
		r := t.Rows[ri]
		if partIdx >= 0 {
			pk := itemKey(r[partIdx])
			if pk != lastPart {
				lastPart = pk
				n = 0
			}
		}
		n++
		out.Rows[ri] = append(append([]xdm.Item(nil), r...), xdm.Integer(n))
	}
	return out
}

// compareItems orders items for ρ: numerics numerically, nodes by
// document order, everything else by string value.
func compareItems(a, b xdm.Item) int {
	an, aIsN := a.(*xdm.Node)
	bn, bIsN := b.(*xdm.Node)
	if aIsN && bIsN {
		if an == bn {
			return 0
		}
		if xdm.DocOrderLess(an, bn) {
			return -1
		}
		return 1
	}
	fa, aOK := xdm.NumericValue(a)
	fb, bOK := xdm.NumericValue(b)
	if aOK && bOK {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a.StringValue(), b.StringValue())
}

// Lit builds a literal table from rows.
func Lit(cols []string, rows ...[]xdm.Item) *Table {
	t := NewTable(cols...)
	for _, r := range rows {
		t.Append(r...)
	}
	return t
}

// IsSortedBy reports whether the rows are already ordered by the given
// columns.
func IsSortedBy(t *Table, cols ...string) bool {
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = t.mustCol(c)
	}
	for r := 1; r < len(t.Rows); r++ {
		for _, ci := range idx {
			c := compareItems(t.Rows[r-1][ci], t.Rows[r][ci])
			if c < 0 {
				break
			}
			if c > 0 {
				return false
			}
		}
	}
	return true
}

// SortBy returns the rows sorted by the given columns (stable); used for
// producing final sequence order (iter, pos). Tables are treated as
// immutable by all operators, so an already-sorted input is returned
// unchanged (no copy).
func SortBy(t *Table, cols ...string) *Table {
	if IsSortedBy(t, cols...) {
		return t
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = t.mustCol(c)
	}
	out := t.Clone()
	sort.SliceStable(out.Rows, func(x, y int) bool {
		for _, ci := range idx {
			c := compareItems(out.Rows[x][ci], out.Rows[y][ci])
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	return out
}

// Map1 appends a new column computed from one input column.
func Map1(t *Table, newCol, in string, f func(xdm.Item) (xdm.Item, error)) (*Table, error) {
	ci := t.mustCol(in)
	out := NewTable(append(append([]string(nil), t.Cols...), newCol)...)
	out.Rows = make([][]xdm.Item, len(t.Rows))
	for i, r := range t.Rows {
		v, err := f(r[ci])
		if err != nil {
			return nil, err
		}
		out.Rows[i] = append(append([]xdm.Item(nil), r...), v)
	}
	return out, nil
}

// Map2 appends a new column computed from two input columns.
func Map2(t *Table, newCol, inA, inB string, f func(a, b xdm.Item) (xdm.Item, error)) (*Table, error) {
	ca, cb := t.mustCol(inA), t.mustCol(inB)
	out := NewTable(append(append([]string(nil), t.Cols...), newCol)...)
	out.Rows = make([][]xdm.Item, len(t.Rows))
	for i, r := range t.Rows {
		v, err := f(r[ca], r[cb])
		if err != nil {
			return nil, err
		}
		out.Rows[i] = append(append([]xdm.Item(nil), r...), v)
	}
	return out, nil
}

// GroupCount counts rows per distinct value of groupCol, producing
// groupCol|count. Groups absent from the input simply do not appear.
func GroupCount(t *Table, groupCol string) *Table {
	gc := t.mustCol(groupCol)
	counts := map[any]int64{}
	var order []xdm.Item
	for _, r := range t.Rows {
		k := itemKey(r[gc])
		if _, seen := counts[k]; !seen {
			order = append(order, r[gc])
		}
		counts[k]++
	}
	out := NewTable(groupCol, "count")
	for _, g := range order {
		out.Append(g, xdm.Integer(counts[itemKey(g)]))
	}
	return out
}

// GroupSum sums a numeric column per group value.
func GroupSum(t *Table, groupCol, valCol string) (*Table, error) {
	gc, vc := t.mustCol(groupCol), t.mustCol(valCol)
	sums := map[any]float64{}
	var order []xdm.Item
	for _, r := range t.Rows {
		k := itemKey(r[gc])
		if _, seen := sums[k]; !seen {
			order = append(order, r[gc])
		}
		v, ok := xdm.NumericValue(r[vc])
		if !ok {
			return nil, fmt.Errorf("algebra: non-numeric value in sum: %v", r[vc])
		}
		sums[k] += v
	}
	out := NewTable(groupCol, "sum")
	for _, g := range order {
		out.Append(g, xdm.Double(sums[itemKey(g)]))
	}
	return out, nil
}

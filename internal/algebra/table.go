// Package algebra implements the vanilla relational algebra that the
// Pathfinder compiler targets — exactly the operator set of Table 1 of
// the paper: selection σ, projection π (with renaming, no duplicate
// removal), duplicate elimination δ, disjoint union ∪, equi-join ⋈,
// row numbering ρ (DENSE_RANK), and literal tables.
//
// XQuery sequences are represented as tables with schema iter|pos|item
// (§3.1): iter is the loop iteration, pos the position within the
// iteration's sequence, item the value. Like the paper's MonetDB
// back-end, storage is columnar: a Table is a set of typed column
// vectors (dense []int64 for integer columns such as iter/pos, generic
// []xdm.Item otherwise), and the operators are vectorized — they build
// selection vectors and gather or share whole columns instead of
// materializing rows. The seed's row-store implementation survives as
// the RowTable reference in rowref.go; the two must agree exactly.
package algebra

import (
	"fmt"
	"strings"

	"xrpc/internal/xdm"
)

// Standard column names for loop-lifted sequence tables.
const (
	ColIter = "iter"
	ColPos  = "pos"
	ColItem = "item"
)

// Table is a relational table: named, typed column vectors.
// Integer-valued columns (iter, pos) hold xdm.Integer values in a dense
// []int64 vector.
//
// Tables returned by operators may share column vectors with their
// inputs (π is zero-copy) and are immutable: Append only works on
// freshly constructed tables (NewTable/Lit) and panics on an operator
// output.
type Table struct {
	cols   []string
	vecs   []*vec
	n      int
	frozen bool
}

// NewTable creates an empty table with the given columns.
func NewTable(cols ...string) *Table {
	vecs := make([]*vec, len(cols))
	for i := range vecs {
		vecs[i] = &vec{}
	}
	return &Table{cols: cols, vecs: vecs}
}

// derived builds an operator output over pre-built column vectors.
func derived(cols []string, vecs []*vec, n int) *Table {
	return &Table{cols: cols, vecs: vecs, n: n, frozen: true}
}

// Cols returns the column names (callers must not modify the slice).
func (t *Table) Cols() []string { return t.cols }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.cols) }

// ColIdx returns the index of a column, or -1.
func (t *Table) ColIdx(name string) int {
	for i, c := range t.cols {
		if c == name {
			return i
		}
	}
	return -1
}

func (t *Table) mustCol(name string) int {
	i := t.ColIdx(name)
	if i < 0 {
		panic(fmt.Sprintf("algebra: table %v has no column %q", t.cols, name))
	}
	return i
}

// Append adds a row (must match the column count).
func (t *Table) Append(row ...xdm.Item) {
	if t.frozen {
		panic("algebra: Append on an operator output (shared column vectors)")
	}
	if len(row) != len(t.cols) {
		panic(fmt.Sprintf("algebra: row width %d != %d columns", len(row), len(t.cols)))
	}
	for i, it := range row {
		t.vecs[i].appendItem(it)
	}
	t.n++
}

// AppendSeq adds one (iter, pos, item) row to an iter|pos|item table
// without boxing the integer columns — the hot append path of the
// loop-lifting compiler.
func (t *Table) AppendSeq(iter, pos int64, item xdm.Item) {
	if t.frozen {
		panic("algebra: Append on an operator output (shared column vectors)")
	}
	if len(t.cols) != 3 {
		panic(fmt.Sprintf("algebra: AppendSeq on a %d-column table", len(t.cols)))
	}
	t.vecs[0].appendInt(iter)
	t.vecs[1].appendInt(pos)
	t.vecs[2].appendItem(item)
	t.n++
}

// Len returns the number of rows.
func (t *Table) Len() int { return t.n }

// Item reads one cell.
func (t *Table) Item(row, col int) xdm.Item {
	return t.vecs[col].item(row)
}

// Int reads an integer cell.
func (t *Table) Int(row, col int) int64 {
	return t.vecs[col].int64At(row)
}

// Ints returns a whole integer column as []int64, bounded to the
// table's row count (a shared vector may have grown past it if the
// sharing table's source was appended to). For a dense column this
// aliases the live vector, so callers must treat it as read-only.
func (t *Table) Ints(col int) []int64 {
	return t.vecs[col].int64s()[:t.n:t.n]
}

// IntsOf is Ints by column name.
func (t *Table) IntsOf(name string) []int64 {
	return t.Ints(t.mustCol(name))
}

// Row materializes one row (for debugging and tests).
func (t *Table) Row(row int) []xdm.Item {
	out := make([]xdm.Item, len(t.vecs))
	for i, v := range t.vecs {
		out[i] = v.item(row)
	}
	return out
}

// gatherRows builds a new table holding the selected rows of t — the
// shared materialization step of every selection-vector operator.
func (t *Table) gatherRows(sel []int32) *Table {
	vecs := make([]*vec, len(t.vecs))
	for i, v := range t.vecs {
		vecs[i] = v.gather(sel)
	}
	return derived(t.cols, vecs, len(sel))
}

// Where keeps the rows for which pred returns true (pred receives the
// row index). It is the generic vectorized filter the runtime uses for
// loop restriction (semi-joins on iter).
func Where(t *Table, pred func(row int) bool) *Table {
	sel := make([]int32, 0, t.n)
	for i := 0; i < t.n; i++ {
		if pred(i) {
			sel = append(sel, int32(i))
		}
	}
	return t.gatherRows(sel)
}

// String renders the table for debugging and for the Figure 1
// experiment output.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.cols, "|"))
	b.WriteByte('\n')
	for r := 0; r < t.n; r++ {
		parts := make([]string, len(t.vecs))
		for i, v := range t.vecs {
			parts[i] = cellString(v.item(r))
		}
		b.WriteString(strings.Join(parts, "|"))
		b.WriteByte('\n')
	}
	return b.String()
}

func cellString(v xdm.Item) string {
	if v == nil {
		return "·"
	}
	if n, ok := v.(*xdm.Node); ok {
		return xdm.SerializeNode(n)
	}
	return v.StringValue()
}

// Lit builds a literal table from rows.
func Lit(cols []string, rows ...[]xdm.Item) *Table {
	t := NewTable(cols...)
	for _, r := range rows {
		t.Append(r...)
	}
	return t
}

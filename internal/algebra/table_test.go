package algebra

import (
	"testing"
	"testing/quick"

	"xrpc/internal/xdm"
)

func i(v int64) xdm.Item  { return xdm.Integer(v) }
func s(v string) xdm.Item { return xdm.String(v) }
func b(v bool) xdm.Item   { return xdm.Boolean(v) }

func sampleTable() *Table {
	return Lit([]string{"iter", "pos", "item"},
		[]xdm.Item{i(1), i(1), s("a")},
		[]xdm.Item{i(1), i(2), s("b")},
		[]xdm.Item{i(2), i(1), s("c")},
	)
}

func TestProjectRename(t *testing.T) {
	tb := sampleTable()
	p := Project(tb, "x:item", "iter")
	if p.NumCols() != 2 || p.Cols()[0] != "x" || p.Cols()[1] != "iter" {
		t.Fatalf("cols = %v", p.Cols())
	}
	if p.Item(0, 0).StringValue() != "a" {
		t.Errorf("row 0 = %v", p.Row(0))
	}
	// projection does not remove duplicates
	dup := Lit([]string{"a", "b"},
		[]xdm.Item{i(1), i(2)},
		[]xdm.Item{i(1), i(3)},
	)
	if got := Project(dup, "a").Len(); got != 2 {
		t.Errorf("project dedup'd: %d rows", got)
	}
}

func TestSelectAndSelectEq(t *testing.T) {
	tb := Lit([]string{"v", "keep"},
		[]xdm.Item{i(1), b(true)},
		[]xdm.Item{i(2), b(false)},
		[]xdm.Item{i(3), b(true)},
	)
	if got := Select(tb, "keep").Len(); got != 2 {
		t.Errorf("select = %d rows", got)
	}
	if got := SelectEq(sampleTable(), "iter", i(1)).Len(); got != 2 {
		t.Errorf("selectEq = %d rows", got)
	}
	// SelectEq on a generic (non-dense) column
	if got := SelectEq(sampleTable(), "item", s("b")).Len(); got != 1 {
		t.Errorf("selectEq item = %d rows", got)
	}
}

func TestDistinct(t *testing.T) {
	tb := Lit([]string{"a"},
		[]xdm.Item{s("x")}, []xdm.Item{s("y")}, []xdm.Item{s("x")},
	)
	if got := Distinct(tb).Len(); got != 2 {
		t.Errorf("distinct = %d rows", got)
	}
}

func TestUnion(t *testing.T) {
	a := Lit([]string{"v"}, []xdm.Item{i(1)})
	bt := Lit([]string{"v"}, []xdm.Item{i(2)}, []xdm.Item{i(3)})
	u := Union(a, bt)
	if u.Len() != 3 {
		t.Errorf("union = %d rows", u.Len())
	}
	all := UnionAll(a, bt, a)
	if all.Len() != 4 {
		t.Errorf("unionAll = %d rows", all.Len())
	}
}

func TestJoin(t *testing.T) {
	orders := Lit([]string{"cust", "total"},
		[]xdm.Item{s("ann"), i(10)},
		[]xdm.Item{s("bob"), i(20)},
		[]xdm.Item{s("ann"), i(30)},
	)
	custs := Lit([]string{"name", "city"},
		[]xdm.Item{s("ann"), s("amsterdam")},
		[]xdm.Item{s("eve"), s("vienna")},
	)
	j := Join(orders, custs, "cust", "name")
	if j.Len() != 2 {
		t.Fatalf("join = %d rows", j.Len())
	}
	if j.ColIdx("city") < 0 {
		t.Fatalf("join cols = %v", j.Cols())
	}
	// column collision suffixing
	jj := Join(orders, orders, "cust", "cust")
	if jj.Len() != 5 { // ann(2)xann(2)=4 + bob x bob = 1
		t.Errorf("self join = %d rows", jj.Len())
	}
	if jj.ColIdx("cust'") < 0 {
		t.Errorf("collision cols = %v", jj.Cols())
	}
}

func TestRowNumDenseRankSemantics(t *testing.T) {
	tb := Lit([]string{"part", "val"},
		[]xdm.Item{s("p1"), i(30)},
		[]xdm.Item{s("p2"), i(10)},
		[]xdm.Item{s("p1"), i(10)},
		[]xdm.Item{s("p2"), i(20)},
		[]xdm.Item{s("p1"), i(20)},
	)
	r := RowNum(tb, "rank", []string{"val"}, "part")
	// ranks ascend by val within each partition; rows keep original order
	want := []int64{3, 1, 1, 2, 2}
	for idx, w := range want {
		if got := r.Int(idx, r.ColIdx("rank")); got != w {
			t.Errorf("row %d rank = %d, want %d\n%s", idx, got, w, r)
		}
	}
	// single partition
	r2 := RowNum(tb, "n", []string{"val"}, "")
	if r2.Len() != 5 {
		t.Fatalf("rows = %d", r2.Len())
	}
}

func TestSortBy(t *testing.T) {
	tb := Lit([]string{"k"},
		[]xdm.Item{i(3)}, []xdm.Item{i(1)}, []xdm.Item{i(2)},
	)
	s := SortBy(tb, "k")
	if s.Int(0, 0) != 1 || s.Int(2, 0) != 3 {
		t.Errorf("sorted = %s", s)
	}
	// original untouched
	if tb.Int(0, 0) != 3 {
		t.Error("SortBy mutated its input")
	}
}

func TestMap12(t *testing.T) {
	tb := Lit([]string{"a", "b"},
		[]xdm.Item{i(2), i(3)},
		[]xdm.Item{i(4), i(5)},
	)
	m, err := Map2(tb, "sum", "a", "b", func(x, y xdm.Item) (xdm.Item, error) {
		return xdm.Integer(int64(x.(xdm.Integer)) + int64(y.(xdm.Integer))), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Int(0, m.ColIdx("sum")) != 5 || m.Int(1, m.ColIdx("sum")) != 9 {
		t.Errorf("map2 = %s", m)
	}
	m1, err := Map1(tb, "neg", "a", func(x xdm.Item) (xdm.Item, error) {
		return xdm.Integer(-int64(x.(xdm.Integer))), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Int(0, m1.ColIdx("neg")) != -2 {
		t.Errorf("map1 = %s", m1)
	}
}

func TestGroupCountSum(t *testing.T) {
	tb := Lit([]string{"g", "v"},
		[]xdm.Item{s("a"), i(1)},
		[]xdm.Item{s("b"), i(2)},
		[]xdm.Item{s("a"), i(3)},
	)
	gc := GroupCount(tb, "g")
	if gc.Len() != 2 || gc.Int(0, 1) != 2 {
		t.Errorf("groupCount = %s", gc)
	}
	gs, err := GroupSum(tb, "g", "v")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := xdm.NumericValue(gs.Item(0, 1)); v != 4 {
		t.Errorf("groupSum = %s", gs)
	}
}

// The iter/pos columns of loop-lifted tables must stay in the dense
// integer representation through the operator pipeline — that is the
// columnar engine's whole point.
func TestDenseColumnsStayDense(t *testing.T) {
	tb := sampleTable()
	if !tb.vecs[0].dense() || !tb.vecs[1].dense() {
		t.Fatal("iter/pos not dense after Append")
	}
	if tb.vecs[2].dense() {
		t.Fatal("string item column claims to be dense")
	}
	j := Join(tb, tb, "iter", "iter")
	if !j.vecs[0].dense() {
		t.Error("join output iter column lost density")
	}
	r := RowNum(tb, "n", []string{"iter", "pos"}, "")
	if !r.vecs[r.ColIdx("n")].dense() {
		t.Error("rownum rank column is not dense")
	}
	u := Union(tb, tb)
	if !u.vecs[0].dense() {
		t.Error("union output iter column lost density")
	}
	st := SortBy(tb, "pos", "iter")
	if !st.vecs[0].dense() {
		t.Error("sort output iter column lost density")
	}
}

// Appending a non-integer degrades a dense column without losing data.
func TestVectorDegrade(t *testing.T) {
	tb := NewTable("v")
	tb.Append(i(1))
	tb.Append(i(2))
	tb.Append(s("x"))
	if tb.Len() != 3 || tb.Int(0, 0) != 1 || tb.Item(2, 0).StringValue() != "x" {
		t.Errorf("degraded column = %s", tb)
	}
}

// Operator outputs share vectors and must reject Append.
func TestFrozenAppendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Append on a projection did not panic")
		}
	}()
	Project(sampleTable(), "iter").Append(i(9))
}

// Property: δ is idempotent and never increases cardinality.
func TestQuickDistinctIdempotent(t *testing.T) {
	f := func(vals []int8) bool {
		tb := NewTable("v")
		for _, v := range vals {
			tb.Append(i(int64(v)))
		}
		d1 := Distinct(tb)
		d2 := Distinct(d1)
		return d1.Len() <= tb.Len() && d1.Len() == d2.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: join with an empty side is empty; union length adds.
func TestQuickJoinUnionLaws(t *testing.T) {
	f := func(a, b []int8) bool {
		ta := NewTable("v")
		for _, v := range a {
			ta.Append(i(int64(v)))
		}
		tb := NewTable("v")
		for _, v := range b {
			tb.Append(i(int64(v)))
		}
		if Union(ta, tb).Len() != ta.Len()+tb.Len() {
			return false
		}
		empty := NewTable("v")
		return Join(ta, empty, "v", "v").Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RowNum assigns each row of a single partition a unique
// number 1..N.
func TestQuickRowNumPermutation(t *testing.T) {
	f := func(vals []int16) bool {
		tb := NewTable("v")
		for _, v := range vals {
			tb.Append(i(int64(v)))
		}
		r := RowNum(tb, "n", []string{"v"}, "")
		seen := map[int64]bool{}
		for idx := 0; idx < r.Len(); idx++ {
			n := r.Int(idx, r.ColIdx("n"))
			if n < 1 || n > int64(len(vals)) || seen[n] {
				return false
			}
			seen[n] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package algebra

import (
	"fmt"
	"sort"
	"strings"

	"xrpc/internal/xdm"
)

// ------------------------------------------------------------ operators

// Select (σ) keeps rows whose named boolean column is true.
func Select(t *Table, col string) *Table {
	v := t.vecs[t.mustCol(col)]
	sel := make([]int32, 0, t.n)
	if v.items != nil {
		for i, it := range v.items {
			if b, ok := it.(xdm.Boolean); ok && bool(b) {
				sel = append(sel, int32(i))
			}
		}
	}
	// a dense column holds only integers: no row matches
	return t.gatherRows(sel)
}

// SelectEq keeps rows where column col equals the given item.
func SelectEq(t *Table, col string, val xdm.Item) *Table {
	v := t.vecs[t.mustCol(col)]
	var sel []int32
	if n, ok := val.(xdm.Integer); ok && v.dense() {
		want := int64(n)
		for i, x := range v.ints {
			if x == want {
				sel = append(sel, int32(i))
			}
		}
		return t.gatherRows(sel)
	}
	key := itemKey(val)
	for i := 0; i < v.len(); i++ {
		if v.key(i) == key {
			sel = append(sel, int32(i))
		}
	}
	return t.gatherRows(sel)
}

// Project (π) projects and optionally renames columns: each spec is
// either "col" or "new:old". No duplicate removal — and no copying: the
// output shares the input's column vectors.
func Project(t *Table, specs ...string) *Table {
	cols := make([]string, len(specs))
	vecs := make([]*vec, len(specs))
	for i, s := range specs {
		to, from := s, s
		if j := strings.IndexByte(s, ':'); j >= 0 {
			to, from = s[:j], s[j+1:]
		}
		cols[i] = to
		vecs[i] = t.vecs[t.mustCol(from)]
	}
	return derived(cols, vecs, t.n)
}

// Distinct (δ) removes duplicate rows, keeping first occurrences.
func Distinct(t *Table) *Table {
	seen := make(map[string]bool, t.n)
	sel := make([]int32, 0, t.n)
	for i := 0; i < t.n; i++ {
		k := rowKeyOf(t.vecs, i)
		if seen[k] {
			continue
		}
		seen[k] = true
		sel = append(sel, int32(i))
	}
	return t.gatherRows(sel)
}

// Union (∪) is disjoint union: schemas must match.
func Union(a, b *Table) *Table {
	return UnionAll(a, b)
}

// UnionAll unions any number of tables in one pass.
func UnionAll(tables ...*Table) *Table {
	if len(tables) == 0 {
		return NewTable()
	}
	cols := tables[0].cols
	n := 0
	for _, t := range tables {
		if len(t.cols) != len(cols) {
			panic("algebra: union of incompatible schemas")
		}
		n += t.n
	}
	vecs := make([]*vec, len(cols))
	parts := make([]*vec, len(tables))
	for i := range vecs {
		for j, t := range tables {
			parts[j] = t.vecs[i]
		}
		vecs[i] = concatAll(parts)
	}
	return derived(cols, vecs, n)
}

// Join (⋈) is a hash equi-join on a.colA = b.colB. Columns of b are
// suffixed with "'" when they collide with a's. The build side hashes
// b's key column; the probe emits a pair of selection vectors that are
// gathered per column — no per-row materialization. Dense integer key
// columns (the iter joins of loop lifting) skip boxing entirely.
func Join(a, b *Table, colA, colB string) *Table {
	ka, kb := a.vecs[a.mustCol(colA)], b.vecs[b.mustCol(colB)]
	cols := append([]string(nil), a.cols...)
	for _, c := range b.cols {
		name := c
		for contains(cols, name) {
			name += "'"
		}
		cols = append(cols, name)
	}
	var lsel, rsel []int32
	if ka.dense() && kb.dense() {
		index := make(map[int64][]int32, len(kb.ints))
		for i, k := range kb.ints {
			index[k] = append(index[k], int32(i))
		}
		for i, k := range ka.ints {
			for _, bi := range index[k] {
				lsel = append(lsel, int32(i))
				rsel = append(rsel, bi)
			}
		}
	} else {
		index := make(map[any][]int32, kb.len())
		for i := 0; i < kb.len(); i++ {
			k := kb.key(i)
			index[k] = append(index[k], int32(i))
		}
		for i := 0; i < ka.len(); i++ {
			for _, bi := range index[ka.key(i)] {
				lsel = append(lsel, int32(i))
				rsel = append(rsel, bi)
			}
		}
	}
	vecs := make([]*vec, 0, len(a.vecs)+len(b.vecs))
	for _, v := range a.vecs {
		vecs = append(vecs, v.gather(lsel))
	}
	for _, v := range b.vecs {
		vecs = append(vecs, v.gather(rsel))
	}
	return derived(cols, vecs, len(lsel))
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// RowNum (ρ) implements DENSE_RANK-style row numbering: rows are ordered
// by the sort columns, then numbered consecutively from 1 within each
// partition (partition column "" means a single partition). The numbers
// land in a new dense column named newCol; the input's columns are
// shared, not copied, and rows keep their original order.
func RowNum(t *Table, newCol string, sortCols []string, partition string) *Table {
	keyVecs := make([]*vec, 0, len(sortCols)+1)
	var partVec *vec
	if partition != "" {
		partVec = t.vecs[t.mustCol(partition)]
		keyVecs = append(keyVecs, partVec)
	}
	for _, c := range sortCols {
		keyVecs = append(keyVecs, t.vecs[t.mustCol(c)])
	}
	order := sortPerm(t.n, keyVecs)
	ranks := make([]int64, t.n)
	var lastPart any = struct{}{}
	n := int64(0)
	for _, ri := range order {
		if partVec != nil {
			pk := partVec.key(int(ri))
			if pk != lastPart {
				lastPart = pk
				n = 0
			}
		}
		n++
		ranks[ri] = n
	}
	cols := append(append([]string(nil), t.cols...), newCol)
	vecs := append(append([]*vec(nil), t.vecs...), &vec{ints: ranks})
	return derived(cols, vecs, t.n)
}

// sortPerm returns a stable permutation ordering rows by the given key
// vectors. All-dense key sets (iter/pos sorts, the loop-lifting hot
// path) compare raw int64s; otherwise compareItems drives the sort.
func sortPerm(n int, keyVecs []*vec) []int32 {
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	allDense := true
	for _, v := range keyVecs {
		if !v.dense() {
			allDense = false
			break
		}
	}
	if allDense {
		sort.SliceStable(order, func(x, y int) bool {
			rx, ry := order[x], order[y]
			for _, v := range keyVecs {
				a, b := v.ints[rx], v.ints[ry]
				if a != b {
					return a < b
				}
			}
			return false
		})
		return order
	}
	sort.SliceStable(order, func(x, y int) bool {
		rx, ry := int(order[x]), int(order[y])
		for _, v := range keyVecs {
			c := compareItems(v.item(rx), v.item(ry))
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	return order
}

// IsSortedBy reports whether the rows are already ordered by the given
// columns.
func IsSortedBy(t *Table, cols ...string) bool {
	keyVecs := make([]*vec, len(cols))
	allDense := true
	for i, c := range cols {
		keyVecs[i] = t.vecs[t.mustCol(c)]
		if !keyVecs[i].dense() {
			allDense = false
		}
	}
	if allDense {
		for r := 1; r < t.n; r++ {
			for _, v := range keyVecs {
				a, b := v.ints[r-1], v.ints[r]
				if a < b {
					break
				}
				if a > b {
					return false
				}
			}
		}
		return true
	}
	for r := 1; r < t.n; r++ {
		for _, v := range keyVecs {
			c := compareItems(v.item(r-1), v.item(r))
			if c < 0 {
				break
			}
			if c > 0 {
				return false
			}
		}
	}
	return true
}

// SortBy returns the rows sorted by the given columns (stable); used for
// producing final sequence order (iter, pos). Tables are treated as
// immutable by all operators, so an already-sorted input is returned
// unchanged (no copy).
func SortBy(t *Table, cols ...string) *Table {
	if IsSortedBy(t, cols...) {
		return t
	}
	keyVecs := make([]*vec, len(cols))
	for i, c := range cols {
		keyVecs[i] = t.vecs[t.mustCol(c)]
	}
	return t.gatherRows(sortPerm(t.n, keyVecs))
}

// Map1 appends a new column computed from one input column; the input's
// columns are shared, not copied.
func Map1(t *Table, newCol, in string, f func(xdm.Item) (xdm.Item, error)) (*Table, error) {
	iv := t.vecs[t.mustCol(in)]
	nv := &vec{}
	for i := 0; i < t.n; i++ {
		v, err := f(iv.item(i))
		if err != nil {
			return nil, err
		}
		nv.appendItem(v)
	}
	cols := append(append([]string(nil), t.cols...), newCol)
	vecs := append(append([]*vec(nil), t.vecs...), nv)
	return derived(cols, vecs, t.n), nil
}

// Map2 appends a new column computed from two input columns.
func Map2(t *Table, newCol, inA, inB string, f func(a, b xdm.Item) (xdm.Item, error)) (*Table, error) {
	av, bv := t.vecs[t.mustCol(inA)], t.vecs[t.mustCol(inB)]
	nv := &vec{}
	for i := 0; i < t.n; i++ {
		v, err := f(av.item(i), bv.item(i))
		if err != nil {
			return nil, err
		}
		nv.appendItem(v)
	}
	cols := append(append([]string(nil), t.cols...), newCol)
	vecs := append(append([]*vec(nil), t.vecs...), nv)
	return derived(cols, vecs, t.n), nil
}

// GroupCount counts rows per distinct value of groupCol, producing
// groupCol|count. Groups absent from the input simply do not appear.
func GroupCount(t *Table, groupCol string) *Table {
	gv := t.vecs[t.mustCol(groupCol)]
	counts := make(map[any]int64, t.n)
	var order []xdm.Item
	for i := 0; i < t.n; i++ {
		k := gv.key(i)
		if _, seen := counts[k]; !seen {
			order = append(order, gv.item(i))
		}
		counts[k]++
	}
	out := NewTable(groupCol, "count")
	for _, g := range order {
		out.Append(g, xdm.Integer(counts[itemKey(g)]))
	}
	return out
}

// GroupSum sums a numeric column per group value.
func GroupSum(t *Table, groupCol, valCol string) (*Table, error) {
	gv, vv := t.vecs[t.mustCol(groupCol)], t.vecs[t.mustCol(valCol)]
	sums := make(map[any]float64, t.n)
	var order []xdm.Item
	for i := 0; i < t.n; i++ {
		k := gv.key(i)
		if _, seen := sums[k]; !seen {
			order = append(order, gv.item(i))
		}
		v, ok := xdm.NumericValue(vv.item(i))
		if !ok {
			return nil, fmt.Errorf("algebra: non-numeric value in sum: %v", vv.item(i))
		}
		sums[k] += v
	}
	out := NewTable(groupCol, "sum")
	for _, g := range order {
		out.Append(g, xdm.Double(sums[itemKey(g)]))
	}
	return out, nil
}

package algebra

import (
	"fmt"
	"sort"
	"strings"

	"xrpc/internal/xdm"
)

// RowTable is the seed's row-store table layout, kept as the executable
// reference semantics for the columnar engine: every vectorized
// operator must produce exactly the rows its Row* counterpart produces.
// It doubles as the baseline side of the algebra microbenchmarks
// (BenchmarkAlgebra* and `xrpcbench -table algebra`), so the
// row-vs-column contrast stays measurable instead of anecdotal.
type RowTable struct {
	Cols []string
	Rows [][]xdm.Item
}

// NewRowTable creates an empty row-store table with the given columns.
func NewRowTable(cols ...string) *RowTable {
	return &RowTable{Cols: cols}
}

// RowStore converts a columnar table into the row-store layout.
func (t *Table) RowStore() *RowTable {
	out := &RowTable{Cols: append([]string(nil), t.cols...)}
	out.Rows = make([][]xdm.Item, t.n)
	for i := 0; i < t.n; i++ {
		out.Rows[i] = t.Row(i)
	}
	return out
}

// Columnar converts a row-store table into the columnar layout.
func (rt *RowTable) Columnar() *Table {
	out := NewTable(rt.Cols...)
	for _, r := range rt.Rows {
		out.Append(r...)
	}
	return out
}

// ColIdx returns the index of a column, or -1.
func (rt *RowTable) ColIdx(name string) int {
	for i, c := range rt.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

func (rt *RowTable) mustCol(name string) int {
	i := rt.ColIdx(name)
	if i < 0 {
		panic(fmt.Sprintf("algebra: table %v has no column %q", rt.Cols, name))
	}
	return i
}

// Len returns the number of rows.
func (rt *RowTable) Len() int { return len(rt.Rows) }

// String renders the table exactly like Table.String, so columnar and
// row-store results can be compared textually.
func (rt *RowTable) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(rt.Cols, "|"))
	b.WriteByte('\n')
	for _, r := range rt.Rows {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = cellString(v)
		}
		b.WriteString(strings.Join(parts, "|"))
		b.WriteByte('\n')
	}
	return b.String()
}

// rowKey builds a comparable composite key over the given columns.
func rowKey(row []xdm.Item, idx []int) string {
	parts := make([]string, len(idx))
	for i, c := range idx {
		parts[i] = fmt.Sprintf("%v", itemKey(row[c]))
	}
	return strings.Join(parts, "\x00")
}

// RowSelect is the row-at-a-time σ.
func RowSelect(t *RowTable, col string) *RowTable {
	c := t.mustCol(col)
	out := NewRowTable(t.Cols...)
	for _, r := range t.Rows {
		if b, ok := r[c].(xdm.Boolean); ok && bool(b) {
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}

// RowDistinct is the row-at-a-time δ.
func RowDistinct(t *RowTable) *RowTable {
	idx := make([]int, len(t.Cols))
	for i := range idx {
		idx[i] = i
	}
	seen := map[string]bool{}
	out := NewRowTable(t.Cols...)
	for _, r := range t.Rows {
		k := rowKey(r, idx)
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Rows = append(out.Rows, r)
	}
	return out
}

// RowUnion is the row-at-a-time disjoint ∪.
func RowUnion(a, b *RowTable) *RowTable {
	if len(a.Cols) != len(b.Cols) {
		panic("algebra: union of incompatible schemas")
	}
	out := NewRowTable(a.Cols...)
	out.Rows = append(out.Rows, a.Rows...)
	out.Rows = append(out.Rows, b.Rows...)
	return out
}

// RowJoin is the row-materializing equi-join the seed shipped: it hashes
// the right side, then builds every output row with two appends.
func RowJoin(a, b *RowTable, colA, colB string) *RowTable {
	ca, cb := a.mustCol(colA), b.mustCol(colB)
	cols := append([]string(nil), a.Cols...)
	for _, c := range b.Cols {
		name := c
		for contains(cols, name) {
			name += "'"
		}
		cols = append(cols, name)
	}
	out := NewRowTable(cols...)
	index := map[any][]int{}
	for i, r := range b.Rows {
		k := itemKey(r[cb])
		index[k] = append(index[k], i)
	}
	for _, ra := range a.Rows {
		for _, bi := range index[itemKey(ra[ca])] {
			row := append(append([]xdm.Item(nil), ra...), b.Rows[bi]...)
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// RowRowNum is the row-at-a-time ρ (DENSE_RANK numbering).
func RowRowNum(t *RowTable, newCol string, sortCols []string, partition string) *RowTable {
	sortIdx := make([]int, len(sortCols))
	for i, c := range sortCols {
		sortIdx[i] = t.mustCol(c)
	}
	partIdx := -1
	if partition != "" {
		partIdx = t.mustCol(partition)
	}
	order := make([]int, len(t.Rows))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		rx, ry := t.Rows[order[x]], t.Rows[order[y]]
		if partIdx >= 0 {
			c := compareItems(rx[partIdx], ry[partIdx])
			if c != 0 {
				return c < 0
			}
		}
		for _, si := range sortIdx {
			c := compareItems(rx[si], ry[si])
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	out := NewRowTable(append(append([]string(nil), t.Cols...), newCol)...)
	out.Rows = make([][]xdm.Item, len(t.Rows))
	var lastPart any = struct{}{}
	n := int64(0)
	for _, ri := range order {
		r := t.Rows[ri]
		if partIdx >= 0 {
			pk := itemKey(r[partIdx])
			if pk != lastPart {
				lastPart = pk
				n = 0
			}
		}
		n++
		out.Rows[ri] = append(append([]xdm.Item(nil), r...), xdm.Integer(n))
	}
	return out
}

// RowSortBy is the row-at-a-time stable sort.
func RowSortBy(t *RowTable, cols ...string) *RowTable {
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = t.mustCol(c)
	}
	out := &RowTable{Cols: append([]string(nil), t.Cols...)}
	out.Rows = make([][]xdm.Item, len(t.Rows))
	copy(out.Rows, t.Rows)
	sort.SliceStable(out.Rows, func(x, y int) bool {
		for _, ci := range idx {
			c := compareItems(out.Rows[x][ci], out.Rows[y][ci])
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	return out
}

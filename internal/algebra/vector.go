package algebra

import (
	"fmt"
	"strings"

	"xrpc/internal/xdm"
)

// vec is one column vector — the reproduction's analogue of a MonetDB
// BAT tail. A vector is in exactly one of two representations:
//
//   - dense:   a []int64, used while every value appended is an
//     xdm.Integer (the iter/pos columns of loop-lifted tables live here
//     permanently);
//   - generic: a []xdm.Item, for everything else.
//
// A dense vector degrades to generic on the first non-integer append;
// it never upgrades back. All operator outputs gather (copy) or share
// whole vectors — there is no row-at-a-time materialization.
type vec struct {
	ints  []int64
	items []xdm.Item
}

// dense reports whether the vector is in the dense integer
// representation (the empty vector is dense).
func (v *vec) dense() bool { return v.items == nil }

func (v *vec) len() int {
	if v.items != nil {
		return len(v.items)
	}
	return len(v.ints)
}

// degrade converts a dense vector to the generic representation.
func (v *vec) degrade() {
	items := make([]xdm.Item, len(v.ints))
	for i, n := range v.ints {
		items[i] = xdm.Integer(n)
	}
	v.items = items
	v.ints = nil
}

// appendItem appends one value, keeping the dense representation when
// possible.
func (v *vec) appendItem(it xdm.Item) {
	if v.items == nil {
		if n, ok := it.(xdm.Integer); ok {
			v.ints = append(v.ints, int64(n))
			return
		}
		v.degrade()
	}
	v.items = append(v.items, it)
}

func (v *vec) appendInt(n int64) {
	if v.items == nil {
		v.ints = append(v.ints, n)
		return
	}
	v.items = append(v.items, xdm.Integer(n))
}

// item returns row i as an xdm.Item.
func (v *vec) item(i int) xdm.Item {
	if v.items != nil {
		return v.items[i]
	}
	return xdm.Integer(v.ints[i])
}

// int64At returns row i as an int64; the value must be an xdm.Integer.
func (v *vec) int64At(i int) int64 {
	if v.items != nil {
		return int64(v.items[i].(xdm.Integer))
	}
	return v.ints[i]
}

// int64s returns the whole column as []int64. For a dense vector this is
// the live internal slice (callers must not modify it); a generic vector
// is converted, requiring every value to be an xdm.Integer.
func (v *vec) int64s() []int64 {
	if v.items == nil {
		return v.ints
	}
	out := make([]int64, len(v.items))
	for i, it := range v.items {
		out[i] = int64(it.(xdm.Integer))
	}
	return out
}

// key returns the grouping/join key of row i (same equality as itemKey).
func (v *vec) key(i int) any {
	if v.items != nil {
		return itemKey(v.items[i])
	}
	return v.ints[i]
}

// gather builds a new vector holding rows sel[0], sel[1], … — the
// selection-vector primitive every filtering operator is built on.
func (v *vec) gather(sel []int32) *vec {
	if v.items == nil {
		out := make([]int64, len(sel))
		for i, s := range sel {
			out[i] = v.ints[s]
		}
		return &vec{ints: out}
	}
	out := make([]xdm.Item, len(sel))
	for i, s := range sel {
		out[i] = v.items[s]
	}
	return &vec{items: out}
}

// concatAll concatenates vectors in one pass; the result is dense iff
// every part is. A single part is shared, not copied (operator outputs
// are frozen, so sharing is safe).
func concatAll(parts []*vec) *vec {
	if len(parts) == 1 {
		return parts[0]
	}
	total := 0
	dense := true
	for _, p := range parts {
		total += p.len()
		if !p.dense() {
			dense = false
		}
	}
	if dense {
		out := make([]int64, 0, total)
		for _, p := range parts {
			out = append(out, p.ints...)
		}
		return &vec{ints: out}
	}
	out := make([]xdm.Item, 0, total)
	for _, p := range parts {
		for i := 0; i < p.len(); i++ {
			out = append(out, p.item(i))
		}
	}
	return &vec{items: out}
}

// itemKey builds a comparable key for grouping/dedup.
func itemKey(it xdm.Item) any {
	switch v := it.(type) {
	case nil:
		return nil
	case *xdm.Node:
		return v
	case xdm.Integer:
		return int64(v)
	case xdm.Double:
		return float64(v)
	case xdm.Decimal:
		return "d:" + v.StringValue()
	case xdm.Boolean:
		return bool(v)
	default:
		return it.TypeName() + ":" + it.StringValue()
	}
}

// compareItems orders items for ρ and sorting: numerics numerically,
// nodes by document order, everything else by string value.
func compareItems(a, b xdm.Item) int {
	an, aIsN := a.(*xdm.Node)
	bn, bIsN := b.(*xdm.Node)
	if aIsN && bIsN {
		if an == bn {
			return 0
		}
		if xdm.DocOrderLess(an, bn) {
			return -1
		}
		return 1
	}
	fa, aOK := xdm.NumericValue(a)
	fb, bOK := xdm.NumericValue(b)
	if aOK && bOK {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a.StringValue(), b.StringValue())
}

// rowKeyOf builds a comparable composite key over the given column
// vectors for row i (same format the row-store reference uses).
func rowKeyOf(vecs []*vec, i int) string {
	parts := make([]string, len(vecs))
	for c, v := range vecs {
		parts[c] = fmt.Sprintf("%v", v.key(i))
	}
	return strings.Join(parts, "\x00")
}

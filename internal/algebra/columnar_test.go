package algebra

// Differential tests pinning the columnar operators to the row-store
// reference semantics (rowref.go): every operator must produce exactly
// the rows — values and order — that the seed's row-at-a-time
// implementation produces, including on the edge cases the vectorized
// paths are most likely to get wrong (empty inputs, duplicate join
// keys, all-duplicate δ inputs, mixed dense/generic key columns).

import (
	"fmt"
	"testing"

	"xrpc/internal/xdm"
)

// assertGolden compares a columnar result to the row-store result
// textually (Table.String and RowTable.String render identically).
func assertGolden(t *testing.T, what string, got *Table, want *RowTable) {
	t.Helper()
	if g, w := got.String(), want.String(); g != w {
		t.Errorf("%s:\ncolumnar:\n%s\nrow-store golden:\n%s", what, g, w)
	}
}

// seqTab builds an iter|pos|item table of n rows with iters cycling
// 1..groups and string items.
func seqTab(n, groups int) *Table {
	t := NewTable(ColIter, ColPos, ColItem)
	pos := map[int64]int64{}
	for r := 0; r < n; r++ {
		it := int64(r%groups) + 1
		pos[it]++
		t.AppendSeq(it, pos[it], xdm.String(fmt.Sprintf("v%d", r)))
	}
	return t
}

func TestGoldenEmptyTables(t *testing.T) {
	empty := NewTable(ColIter, ColPos, ColItem)
	re := empty.RowStore()
	assertGolden(t, "σ empty", Select(NewTable("b"), "b"), RowSelect(NewRowTable("b"), "b"))
	assertGolden(t, "π empty", Project(empty, "pos", "x:item"), &RowTable{Cols: []string{"pos", "x"}})
	assertGolden(t, "δ empty", Distinct(empty), RowDistinct(re))
	assertGolden(t, "∪ empty", Union(empty, empty), RowUnion(re, re))
	assertGolden(t, "⋈ empty", Join(empty, empty, ColIter, ColIter), RowJoin(re, re, ColIter, ColIter))
	assertGolden(t, "ρ empty", RowNum(empty, "n", []string{ColPos}, ColIter),
		RowRowNum(re, "n", []string{ColPos}, ColIter))
	assertGolden(t, "sort empty", SortBy(empty, ColIter, ColPos), RowSortBy(re, ColIter, ColPos))
	// empty ⋈ non-empty in both argument positions
	some := seqTab(5, 2)
	rs := some.RowStore()
	assertGolden(t, "empty ⋈ t", Join(empty, some, ColIter, ColIter), RowJoin(re, rs, ColIter, ColIter))
	assertGolden(t, "t ⋈ empty", Join(some, empty, ColIter, ColIter), RowJoin(rs, re, ColIter, ColIter))
}

func TestGoldenJoinDuplicateKeys(t *testing.T) {
	// both sides carry duplicate keys: output is the full per-key cross
	// product, in left-row-major, right-appearance order
	left := Lit([]string{"k", "l"},
		[]xdm.Item{i(1), s("l1")},
		[]xdm.Item{i(2), s("l2")},
		[]xdm.Item{i(1), s("l3")},
		[]xdm.Item{i(3), s("l4")},
	)
	right := Lit([]string{"k", "r"},
		[]xdm.Item{i(1), s("r1")},
		[]xdm.Item{i(1), s("r2")},
		[]xdm.Item{i(2), s("r3")},
	)
	got := Join(left, right, "k", "k")
	want := RowJoin(left.RowStore(), right.RowStore(), "k", "k")
	if got.Len() != 5 { // 2×2 for k=1, 1×1 for k=2, 0 for k=3
		t.Fatalf("join rows = %d, want 5", got.Len())
	}
	assertGolden(t, "⋈ dup keys", got, want)
	// string (generic) keys take the hash path, not the dense path
	sl := Lit([]string{"k"}, []xdm.Item{s("a")}, []xdm.Item{s("a")}, []xdm.Item{s("b")})
	sr := Lit([]string{"k"}, []xdm.Item{s("a")}, []xdm.Item{s("c")})
	assertGolden(t, "⋈ generic dup keys", Join(sl, sr, "k", "k"),
		RowJoin(sl.RowStore(), sr.RowStore(), "k", "k"))
	// mixed: dense left key column, generic right key column
	ml := Lit([]string{"k"}, []xdm.Item{i(1)}, []xdm.Item{i(2)})
	mr := Lit([]string{"k", "x"}, []xdm.Item{s("nope"), s("a")}, []xdm.Item{i(2), s("b")})
	assertGolden(t, "⋈ mixed key reps", Join(ml, mr, "k", "k"),
		RowJoin(ml.RowStore(), mr.RowStore(), "k", "k"))
}

func TestGoldenRowNumEmptyAndPartitions(t *testing.T) {
	// ρ over a table whose partition column exists but has no rows
	empty := NewTable(ColIter, ColPos, ColItem)
	got := RowNum(empty, "n", []string{ColPos}, ColIter)
	if got.Len() != 0 || got.ColIdx("n") != 3 {
		t.Fatalf("ρ on empty = %d rows, cols %v", got.Len(), got.Cols())
	}
	// partitioned numbering restarts at 1 per partition and is stable
	tb := seqTab(17, 3)
	assertGolden(t, "ρ partitioned", RowNum(tb, "n", []string{ColPos}, ColIter),
		RowRowNum(tb.RowStore(), "n", []string{ColPos}, ColIter))
	// generic partition column (strings) uses the item-compare sort path
	g := Lit([]string{"p", "v"},
		[]xdm.Item{s("b"), i(2)},
		[]xdm.Item{s("a"), i(9)},
		[]xdm.Item{s("b"), i(1)},
		[]xdm.Item{s("a"), i(9)}, // tie: stability matters
	)
	assertGolden(t, "ρ generic partition", RowNum(g, "n", []string{"v"}, "p"),
		RowRowNum(g.RowStore(), "n", []string{"v"}, "p"))
}

func TestGoldenDistinctAllDuplicates(t *testing.T) {
	tb := NewTable("a", "b")
	for r := 0; r < 8; r++ {
		tb.Append(i(7), s("same"))
	}
	got := Distinct(tb)
	if got.Len() != 1 {
		t.Fatalf("δ on all-duplicates = %d rows, want 1", got.Len())
	}
	assertGolden(t, "δ all-dup", got, RowDistinct(tb.RowStore()))
	// multi-column duplicates differing in one column only
	mix := Lit([]string{"a", "b"},
		[]xdm.Item{i(1), s("x")},
		[]xdm.Item{i(1), s("y")},
		[]xdm.Item{i(1), s("x")},
	)
	assertGolden(t, "δ near-dup", Distinct(mix), RowDistinct(mix.RowStore()))
}

func TestGoldenPipeline(t *testing.T) {
	// the loop-lifting inner pipeline (liftLoop/mapBack shape): number,
	// project, join on iter, renumber, sort — exactly as pathfinder
	// composes it
	q1 := seqTab(23, 4)
	rq1 := q1.RowStore()

	numbered := RowNum(q1, "inner", []string{ColIter, ColPos}, "")
	rnumbered := RowRowNum(rq1, "inner", []string{ColIter, ColPos}, "")
	assertGolden(t, "lift ρ", numbered, rnumbered)

	mapTbl := Project(numbered, "inner:inner", "outer:iter")
	joined := Join(q1, mapTbl, ColIter, "inner")
	// row-store analogue of the same projection + join
	rmap := NewRowTable("inner", "outer")
	ii, oi := rnumbered.mustCol("inner"), rnumbered.mustCol("iter")
	for _, r := range rnumbered.Rows {
		rmap.Rows = append(rmap.Rows, []xdm.Item{r[ii], r[oi]})
	}
	rjoined := RowJoin(rq1, rmap, ColIter, "inner")
	assertGolden(t, "lift ⋈", joined, rjoined)

	ranked := RowNum(joined, "newpos", []string{ColIter, ColPos}, "outer")
	rranked := RowRowNum(rjoined, "newpos", []string{ColIter, ColPos}, "outer")
	assertGolden(t, "mapback ρ", ranked, rranked)

	final := SortBy(Project(ranked, "iter:outer", "pos:newpos", ColItem), ColIter, ColPos)
	rfinal := NewRowTable(ColIter, ColPos, ColItem)
	o, np, xc := rranked.mustCol("outer"), rranked.mustCol("newpos"), rranked.mustCol(ColItem)
	for _, r := range rranked.Rows {
		rfinal.Rows = append(rfinal.Rows, []xdm.Item{r[o], r[np], r[xc]})
	}
	assertGolden(t, "final sort", final, RowSortBy(rfinal, ColIter, ColPos))
}

func TestWhere(t *testing.T) {
	tb := seqTab(10, 3)
	iters := tb.IntsOf(ColIter)
	got := Where(tb, func(row int) bool { return iters[row] == 2 })
	for r := 0; r < got.Len(); r++ {
		if got.Int(r, 0) != 2 {
			t.Fatalf("Where kept iter %d", got.Int(r, 0))
		}
	}
	if got.Len() != 3 {
		t.Errorf("Where kept %d rows, want 3", got.Len())
	}
	if empty := Where(tb, func(int) bool { return false }); empty.Len() != 0 {
		t.Errorf("Where(false) = %d rows", empty.Len())
	}
}

func TestRoundTripRowStore(t *testing.T) {
	tb := seqTab(9, 2)
	back := tb.RowStore().Columnar()
	if tb.String() != back.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", tb, back)
	}
}

package algebra

// Microbenchmarks contrasting the columnar vectorized operators with
// the seed's row-store implementations (rowref.go) on the shapes the
// loop-lifting compiler actually produces: an iter-keyed variable ⋈
// mapping-table join, the (iter, pos) ρ renumbering of liftLoop, and a
// boolean σ. Run with `make bench-smoke` (compile check) or
// `go test -bench BenchmarkAlgebra -benchtime 20x ./internal/algebra`.

import (
	"testing"
)

const benchRows = 4096

func BenchmarkAlgebraJoin(b *testing.B) {
	mapTbl, varTbl := BenchJoinInput(benchRows)
	rm, rv := mapTbl.RowStore(), varTbl.RowStore()
	b.Run("columnar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if Join(mapTbl, varTbl, "outer", ColIter).Len() == 0 {
				b.Fatal("empty join")
			}
		}
	})
	b.Run("rowstore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if RowJoin(rm, rv, "outer", ColIter).Len() == 0 {
				b.Fatal("empty join")
			}
		}
	})
}

func BenchmarkAlgebraRowNum(b *testing.B) {
	t := BenchSeqInput(benchRows)
	rt := t.RowStore()
	b.Run("columnar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if RowNum(t, "n", []string{ColIter, ColPos}, "").Len() != benchRows {
				b.Fatal("bad rownum")
			}
		}
	})
	b.Run("rowstore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if RowRowNum(rt, "n", []string{ColIter, ColPos}, "").Len() != benchRows {
				b.Fatal("bad rownum")
			}
		}
	})
}

func BenchmarkAlgebraSelect(b *testing.B) {
	t := BenchBoolInput(benchRows)
	rt := t.RowStore()
	b.Run("columnar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if Select(t, "b").Len() == 0 {
				b.Fatal("empty select")
			}
		}
	})
	b.Run("rowstore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if RowSelect(rt, "b").Len() == 0 {
				b.Fatal("empty select")
			}
		}
	})
}

func BenchmarkAlgebraSort(b *testing.B) {
	t := BenchSeqInput(benchRows)
	rt := t.RowStore()
	b.Run("columnar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if SortBy(t, ColIter, ColPos).Len() != benchRows {
				b.Fatal("bad sort")
			}
		}
	})
	b.Run("rowstore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if RowSortBy(rt, ColIter, ColPos).Len() != benchRows {
				b.Fatal("bad sort")
			}
		}
	})
}

package store

import (
	"fmt"
	"sync"
	"testing"

	"xrpc/internal/xdm"
)

func TestLoadGetDelete(t *testing.T) {
	s := New()
	if err := s.LoadXML("a.xml", "<a/>"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("a.xml"); !ok {
		t.Fatal("a.xml missing")
	}
	if _, ok := s.Get("b.xml"); ok {
		t.Fatal("phantom document")
	}
	if err := s.LoadXML("bad.xml", "<a><b></a>"); err == nil {
		t.Fatal("malformed XML accepted")
	}
	s.Delete("a.xml")
	if _, ok := s.Get("a.xml"); ok {
		t.Fatal("delete did not remove")
	}
}

func TestDocResolver(t *testing.T) {
	s := New()
	s.LoadXML("a.xml", "<a/>")
	if _, err := s.Doc("a.xml"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Doc("nope.xml"); err == nil {
		t.Fatal("missing doc should error")
	}
}

func TestVersionMonotonic(t *testing.T) {
	s := New()
	v0 := s.Version()
	s.LoadXML("a.xml", "<a/>")
	v1 := s.Version()
	s.LoadXML("a.xml", "<a2/>")
	v2 := s.Version()
	s.Delete("a.xml")
	v3 := s.Version()
	if !(v0 < v1 && v1 < v2 && v2 < v3) {
		t.Errorf("versions not monotonic: %d %d %d %d", v0, v1, v2, v3)
	}
}

func TestSnapshotImmutability(t *testing.T) {
	s := New()
	s.LoadXML("a.xml", "<a><old/></a>")
	snap := s.Snapshot()
	s.LoadXML("a.xml", "<a><new/></a>")
	s.LoadXML("b.xml", "<b/>")

	d, ok := snap.Get("a.xml")
	if !ok {
		t.Fatal("snapshot lost a.xml")
	}
	if got := len(xdm.Step(d, xdm.AxisDescendant, xdm.NodeTest{Name: "old"})); got != 1 {
		t.Error("snapshot does not see the old version")
	}
	if _, ok := snap.Get("b.xml"); ok {
		t.Error("snapshot sees a document created after it")
	}
	if _, err := snap.Doc("b.xml"); err == nil {
		t.Error("snapshot Doc resolves later document")
	}
	// latest state sees the new version
	cur, _ := s.Get("a.xml")
	if got := len(xdm.Step(cur, xdm.AxisDescendant, xdm.NodeTest{Name: "new"})); got != 1 {
		t.Error("store does not see the new version")
	}
	if snap.Version() >= s.Version() {
		t.Error("snapshot version not older than store version")
	}
}

func TestNamesSorted(t *testing.T) {
	s := New()
	for _, n := range []string{"c.xml", "a.xml", "b.xml"} {
		s.LoadXML(n, "<x/>")
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "a.xml" || names[2] != "c.xml" {
		t.Errorf("names = %v", names)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				name := fmt.Sprintf("doc%d.xml", i)
				s.LoadXML(name, "<x/>")
				s.Get(name)
				s.Snapshot()
				s.Names()
			}
		}(i)
	}
	wg.Wait()
	if len(s.Names()) != 8 {
		t.Errorf("docs = %d", len(s.Names()))
	}
}

// TestSnapshotRepeatableReadUnderConcurrentUpdates pins rule R'_Fr
// under write pressure: readers take snapshots and re-read their
// documents while writers concurrently swap new document versions in.
// Every read through one snapshot must return the same tree (same
// *Node, same content) no matter how many Puts land meanwhile — run
// with -race, this also proves snapshot reads need no synchronization
// with writers.
func TestSnapshotRepeatableReadUnderConcurrentUpdates(t *testing.T) {
	const (
		docs    = 4
		writers = 4
		readers = 8
		rounds  = 60
	)
	s := New()
	for d := 0; d < docs; d++ {
		if err := s.LoadXML(fmt.Sprintf("doc%d.xml", d), "<v>0</v>"); err != nil {
			t.Fatal(err)
		}
	}

	var writerWG, readerWG sync.WaitGroup
	errs := make(chan error, readers)
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("doc%d.xml", i%docs)
				if err := s.LoadXML(name, fmt.Sprintf("<v>%d-%d</v>", w, i)); err != nil {
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for i := 0; i < rounds; i++ {
				snap := s.Snapshot()
				version := snap.Version()
				// pin every document's tree and string value at
				// snapshot time...
				pinned := make(map[string]*xdm.Node, docs)
				values := make(map[string]string, docs)
				for d := 0; d < docs; d++ {
					name := fmt.Sprintf("doc%d.xml", d)
					doc, err := snap.Doc(name)
					if err != nil {
						errs <- err
						return
					}
					pinned[name] = doc
					values[name] = doc.StringValue()
				}
				// ...then re-read repeatedly while writers keep
				// swapping: the snapshot must keep answering with the
				// exact same trees (repeatable read, rule R'_Fr)
				for reread := 0; reread < 5; reread++ {
					for name, want := range pinned {
						got, err := snap.Doc(name)
						if err != nil {
							errs <- err
							return
						}
						if got != want {
							errs <- fmt.Errorf("snapshot v%d: %s changed identity between reads", version, name)
							return
						}
						if sv := got.StringValue(); sv != values[name] {
							errs <- fmt.Errorf("snapshot v%d: %s content changed %q -> %q", version, name, values[name], sv)
							return
						}
					}
				}
				if snap.Version() != version {
					errs <- fmt.Errorf("snapshot version moved %d -> %d", version, snap.Version())
					return
				}
			}
		}()
	}

	readerWG.Wait()
	close(stop)
	writerWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

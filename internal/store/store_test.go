package store

import (
	"fmt"
	"sync"
	"testing"

	"xrpc/internal/xdm"
)

func TestLoadGetDelete(t *testing.T) {
	s := New()
	if err := s.LoadXML("a.xml", "<a/>"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("a.xml"); !ok {
		t.Fatal("a.xml missing")
	}
	if _, ok := s.Get("b.xml"); ok {
		t.Fatal("phantom document")
	}
	if err := s.LoadXML("bad.xml", "<a><b></a>"); err == nil {
		t.Fatal("malformed XML accepted")
	}
	s.Delete("a.xml")
	if _, ok := s.Get("a.xml"); ok {
		t.Fatal("delete did not remove")
	}
}

func TestDocResolver(t *testing.T) {
	s := New()
	s.LoadXML("a.xml", "<a/>")
	if _, err := s.Doc("a.xml"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Doc("nope.xml"); err == nil {
		t.Fatal("missing doc should error")
	}
}

func TestVersionMonotonic(t *testing.T) {
	s := New()
	v0 := s.Version()
	s.LoadXML("a.xml", "<a/>")
	v1 := s.Version()
	s.LoadXML("a.xml", "<a2/>")
	v2 := s.Version()
	s.Delete("a.xml")
	v3 := s.Version()
	if !(v0 < v1 && v1 < v2 && v2 < v3) {
		t.Errorf("versions not monotonic: %d %d %d %d", v0, v1, v2, v3)
	}
}

func TestSnapshotImmutability(t *testing.T) {
	s := New()
	s.LoadXML("a.xml", "<a><old/></a>")
	snap := s.Snapshot()
	s.LoadXML("a.xml", "<a><new/></a>")
	s.LoadXML("b.xml", "<b/>")

	d, ok := snap.Get("a.xml")
	if !ok {
		t.Fatal("snapshot lost a.xml")
	}
	if got := len(xdm.Step(d, xdm.AxisDescendant, xdm.NodeTest{Name: "old"})); got != 1 {
		t.Error("snapshot does not see the old version")
	}
	if _, ok := snap.Get("b.xml"); ok {
		t.Error("snapshot sees a document created after it")
	}
	if _, err := snap.Doc("b.xml"); err == nil {
		t.Error("snapshot Doc resolves later document")
	}
	// latest state sees the new version
	cur, _ := s.Get("a.xml")
	if got := len(xdm.Step(cur, xdm.AxisDescendant, xdm.NodeTest{Name: "new"})); got != 1 {
		t.Error("store does not see the new version")
	}
	if snap.Version() >= s.Version() {
		t.Error("snapshot version not older than store version")
	}
}

func TestNamesSorted(t *testing.T) {
	s := New()
	for _, n := range []string{"c.xml", "a.xml", "b.xml"} {
		s.LoadXML(n, "<x/>")
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "a.xml" || names[2] != "c.xml" {
		t.Errorf("names = %v", names)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				name := fmt.Sprintf("doc%d.xml", i)
				s.LoadXML(name, "<x/>")
				s.Get(name)
				s.Snapshot()
				s.Names()
			}
		}(i)
	}
	wg.Wait()
	if len(s.Names()) != 8 {
		t.Errorf("docs = %d", len(s.Names()))
	}
}

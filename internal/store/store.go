// Package store implements the XML database state db(t) from the paper's
// formal semantics (§2.2): a set of named documents with versioned,
// copy-on-write snapshots. Snapshots give XRPC its repeatable-read
// isolation level (rule R'_Fr): every request carrying the same queryID
// is evaluated against the same Snapshot.
//
// Documents are immutable once stored. Updates (XQUF applyUpdates)
// produce a fresh document tree and swap it in under the same name,
// bumping the store version; existing snapshots keep referencing the old
// trees, which is exactly the shadow-paging behaviour the paper ascribes
// to MonetDB/XQuery.
package store

import (
	"fmt"
	"sort"
	"sync"

	"xrpc/internal/xdm"
)

// Store is a thread-safe named-document database.
type Store struct {
	mu      sync.RWMutex
	docs    map[string]*xdm.Node
	version int64
}

// New creates an empty store.
func New() *Store {
	return &Store{docs: make(map[string]*xdm.Node)}
}

// LoadXML parses text and stores it under name.
func (s *Store) LoadXML(name, text string) error {
	doc, err := xdm.ParseDocument(name, text)
	if err != nil {
		return fmt.Errorf("store: load %s: %w", name, err)
	}
	s.Put(name, doc)
	return nil
}

// Put stores (or replaces) a document under name, bumping the version.
// The caller must not mutate doc afterwards.
func (s *Store) Put(name string, doc *xdm.Node) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.docs[name] = doc
	s.version++
}

// PutBatch stores (or replaces) several documents atomically, bumping
// the version exactly once: a reader never observes a prefix of the
// batch, and one committed transaction is one version step. The latter
// is what makes the version usable as a replication fence — a primary
// and a replica that applied the same sequence of commits to the same
// initial documents are at the same version, so a version mismatch
// after commit proves the replica diverged.
func (s *Store) PutBatch(docs map[string]*xdm.Node) {
	if len(docs) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, doc := range docs {
		s.docs[name] = doc
	}
	s.version++
}

// Restore replaces the entire store contents and sets the version
// exactly — no bump. It is the recovery entry point: a peer restoring a
// durable snapshot (or adopting one during resync) must come back at
// the version the snapshot was taken at, so the version keeps working
// as a replication fence across restarts. The caller must not mutate
// the documents afterwards.
func (s *Store) Restore(docs map[string]*xdm.Node, version int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.docs = make(map[string]*xdm.Node, len(docs))
	for name, doc := range docs {
		s.docs[name] = doc
	}
	s.version = version
}

// Delete removes a document.
func (s *Store) Delete(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.docs, name)
	s.version++
}

// Get returns the current version of the named document.
func (s *Store) Get(name string) (*xdm.Node, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.docs[name]
	return d, ok
}

// Doc implements the document resolver used by fn:doc against the latest
// committed state (isolation level "none", rule R_Fr).
func (s *Store) Doc(uri string) (*xdm.Node, error) {
	d, ok := s.Get(uri)
	if !ok {
		return nil, xdm.Errorf("FODC0002", "document %q not found", uri)
	}
	return d, nil
}

// Version returns the current store version (monotonically increasing).
func (s *Store) Version() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// Names returns the sorted names of all stored documents.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.docs))
	for n := range s.docs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Snapshot captures the current database state db(t): a consistent,
// immutable view of all documents. Reading from a snapshot never sees
// later Puts.
func (s *Store) Snapshot() *Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	docs := make(map[string]*xdm.Node, len(s.docs))
	for k, v := range s.docs {
		docs[k] = v
	}
	return &Snapshot{docs: docs, version: s.version}
}

// Snapshot is an immutable view of the store at one version.
type Snapshot struct {
	docs    map[string]*xdm.Node
	version int64
}

// Get returns the named document in the snapshot.
func (sn *Snapshot) Get(name string) (*xdm.Node, bool) {
	d, ok := sn.docs[name]
	return d, ok
}

// Doc implements the fn:doc resolver against the snapshot (repeatable
// read, rule R'_Fr).
func (sn *Snapshot) Doc(uri string) (*xdm.Node, error) {
	d, ok := sn.docs[uri]
	if !ok {
		return nil, xdm.Errorf("FODC0002", "document %q not found", uri)
	}
	return d, nil
}

// Version returns the store version the snapshot was taken at.
func (sn *Snapshot) Version() int64 { return sn.version }

// Names returns the sorted names of the snapshot's documents (used by
// durable-snapshot writers that must serialize one consistent state).
func (sn *Snapshot) Names() []string {
	out := make([]string, 0, len(sn.docs))
	for n := range sn.docs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

package wal

import (
	"bytes"
	"testing"
)

// FuzzWALDecode drives the frame scanner and record parser with
// arbitrary bytes: neither may panic, and any byte stream a crash could
// leave behind must decode as a valid prefix followed by a rejected
// tail — never as garbage records.
func FuzzWALDecode(f *testing.F) {
	// seed: well-formed streams and near-miss mutations of them
	var good []byte
	good = appendFrame(good, &Record{Kind: RecPrepare, QID: "q1", PUL: []byte("<xrpc:pending-updates/>")})
	good = appendFrame(good, &Record{Kind: RecCommit, Version: 7, QID: "q1", PUL: []byte("<p/>")})
	good = appendFrame(good, &Record{Kind: RecAbort, QID: "q2"})
	f.Add(good)
	f.Add(good[:len(good)-3])          // torn tail
	f.Add([]byte{})                    // empty body
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length header
	flipped := bytes.Clone(good)
	flipped[len(flipped)/2] ^= 0x40 // CRC mismatch mid-stream
	f.Add(flipped)
	f.Add(EncodeRecord(&Record{Kind: RecCommit, Version: 3, QID: "q", PUL: []byte("<p/>")}))

	f.Fuzz(func(t *testing.T, body []byte) {
		var recs []*Record
		valid, _ := scanFrames(body, func(rec *Record) error {
			recs = append(recs, rec)
			return nil
		})
		if valid < 0 || valid > len(body) {
			t.Fatalf("valid prefix %d out of range [0,%d]", valid, len(body))
		}
		// every accepted record must survive a re-encode/decode round
		// trip: the scanner only yields well-formed records
		for _, rec := range recs {
			back, err := DecodeRecord(EncodeRecord(rec))
			if err != nil {
				t.Fatalf("accepted record does not round-trip: %v", err)
			}
			if back.Kind != rec.Kind || back.Version != rec.Version ||
				back.QID != rec.QID || !bytes.Equal(back.PUL, rec.PUL) {
				t.Fatal("accepted record mutated by round trip")
			}
		}
		// DecodeRecord on the raw body must not panic either
		DecodeRecord(body)
	})
}

// Package wal implements the per-shard write-ahead log that makes XRPC
// shards durable. The paper's Bulk-RPC/2PC write path already serializes
// every commit as a pending update list fenced by a store.Version — this
// package writes exactly that pair to disk before the commit is
// acknowledged, so a SIGKILL'd peer restarted over the same directory
// recovers its precise pre-crash state.
//
// Layout of a WAL directory:
//
//	wal-00000000.log   segmented record log (rotated at SegmentBytes)
//	wal-00000001.log
//	snap-<version>.snap  full store snapshots bounding replay length
//
// Each segment starts with an 8-byte magic and holds CRC-framed records:
//
//	len   uint32 LE   payload length
//	crc   uint32 LE   IEEE CRC32 of the payload
//	payload:
//	  kind    byte      (prepare | commit | abort)
//	  version int64 LE  (commit: post-commit store version)
//	  qidLen  uint16 LE
//	  qid     bytes
//	  pul     bytes     (serialized <xrpc:pending-updates> XML)
//
// A torn tail — a frame cut short by a crash, or one whose CRC does not
// match — ends the log: everything before it is the durable prefix,
// everything from it on is discarded (and truncated away on Open, so the
// next append starts on a clean frame boundary).
//
// Appends group-commit: concurrent appenders write their frames under
// one lock, then a single leader fsyncs the segment once for the whole
// batch while followers wait — one disk flush amortized over every
// transaction that arrived during the previous flush. An fsync error is
// sticky: a log that cannot make records durable fails every later
// append (fail closed) rather than silently acking lost writes.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Record kinds.
const (
	// RecPrepare marks a transaction's PUL durable before the Prepare
	// ack (the participant's promise survives a crash). Recovery does
	// not replay prepares — the commit record carries the PUL again —
	// but their presence documents in-doubt transactions.
	RecPrepare byte = 1
	// RecCommit carries the applied PUL and the post-commit
	// store.Version. Recovery replays commit records, in order.
	RecCommit byte = 2
	// RecAbort marks a prepared transaction rolled back.
	RecAbort byte = 3
)

// Record is one WAL entry: a transaction identifier, the serialized
// pending update list, and (for commits) the store version the apply
// produced — the same version the 2PC replication fence compares.
type Record struct {
	Kind    byte
	Version int64
	QID     string
	PUL     []byte
}

// segMagic opens every segment file.
var segMagic = []byte("XRPCWAL1")

// frameHeaderLen is the fixed prefix of one frame: length + CRC.
const frameHeaderLen = 8

// maxPayload bounds one record (a decode-sanity cap well above any real
// PUL; a length field past it is treated as a torn tail).
const maxPayload = 1 << 30

// DefaultSegmentBytes rotates segments at 4 MiB — small enough that
// snapshot truncation reclaims space promptly, large enough that
// rotation stays off the commit path.
const DefaultSegmentBytes = 4 << 20

// EncodeRecord renders a record's frame payload (without the len/CRC
// header).
func EncodeRecord(rec *Record) []byte {
	buf := make([]byte, 0, 1+8+2+len(rec.QID)+len(rec.PUL))
	buf = append(buf, rec.Kind)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.Version))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(rec.QID)))
	buf = append(buf, rec.QID...)
	buf = append(buf, rec.PUL...)
	return buf
}

// DecodeRecord parses a frame payload. Every length is bounds-checked:
// adversarial or torn input yields an error, never a panic.
func DecodeRecord(payload []byte) (*Record, error) {
	if len(payload) < 1+8+2 {
		return nil, fmt.Errorf("wal: record payload too short (%d bytes)", len(payload))
	}
	rec := &Record{Kind: payload[0]}
	if rec.Kind < RecPrepare || rec.Kind > RecAbort {
		return nil, fmt.Errorf("wal: unknown record kind %d", rec.Kind)
	}
	rec.Version = int64(binary.LittleEndian.Uint64(payload[1:9]))
	qidLen := int(binary.LittleEndian.Uint16(payload[9:11]))
	if 11+qidLen > len(payload) {
		return nil, fmt.Errorf("wal: qid length %d overruns payload", qidLen)
	}
	rec.QID = string(payload[11 : 11+qidLen])
	if rest := payload[11+qidLen:]; len(rest) > 0 {
		rec.PUL = append([]byte(nil), rest...)
	}
	return rec, nil
}

// appendFrame renders the full frame (header + payload) for a record.
func appendFrame(buf []byte, rec *Record) []byte {
	payload := EncodeRecord(rec)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// scanFrames walks the frames of one segment body (after the magic),
// calling fn for each valid record. It returns the byte offset of the
// end of the valid prefix (relative to the body start): at the first
// torn or corrupt frame the scan stops, and valid counts everything
// before it.
func scanFrames(body []byte, fn func(*Record) error) (valid int, err error) {
	off := 0
	for {
		if off+frameHeaderLen > len(body) {
			return off, nil // clean end or torn header
		}
		n := int(binary.LittleEndian.Uint32(body[off : off+4]))
		crc := binary.LittleEndian.Uint32(body[off+4 : off+8])
		if n <= 0 || n > maxPayload || off+frameHeaderLen+n > len(body) {
			return off, nil // torn length or truncated payload
		}
		payload := body[off+frameHeaderLen : off+frameHeaderLen+n]
		if crc32.ChecksumIEEE(payload) != crc {
			return off, nil // corrupt frame: end of durable prefix
		}
		rec, derr := DecodeRecord(payload)
		if derr != nil {
			return off, nil // framed but unparseable: treat as torn
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return off, err
			}
		}
		off += frameHeaderLen + n
	}
}

// Log is a segmented, group-committed write-ahead log rooted in one
// directory. One Log belongs to one shard replica.
type Log struct {
	dir string
	// SegmentBytes rotates the active segment past this size
	// (DefaultSegmentBytes when zero). Set before concurrent use.
	SegmentBytes int64
	// Metrics, when set, records append/fsync/replay facts. Nil disables.
	Metrics *Metrics

	mu        sync.Mutex
	cond      *sync.Cond
	f         *os.File
	seg       int   // active segment index
	segBytes  int64 // bytes written to the active segment
	nextSeq   uint64
	syncedSeq uint64
	syncing   bool
	err       error // sticky fsync/write failure

	// base: every commit with Version > base is present in the log —
	// the lower bound of what CommitsSince can serve from records.
	base int64
	// newest is the highest commit version appended or scanned.
	newest int64
	// segMax[i] is the highest commit version in segment i (rotation
	// and Open fill it; TruncateThrough consults it).
	segMax map[int]int64
	// appended counts bytes appended since the last snapshot/truncate
	// (the snapshot policy trigger).
	appended int64
}

// Open opens (or creates) the log in dir. Existing segments are
// scanned: the valid record prefix is kept, a torn tail on the last
// segment is truncated away so appends resume on a frame boundary, and
// the commit-version bookkeeping (base, newest, per-segment maxima) is
// rebuilt. Metrics may be nil.
func Open(dir string, m *Metrics) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, Metrics: m, segMax: map[int]int64{}}
	l.cond = sync.NewCond(&l.mu)
	segs, err := l.segments()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := l.createSegment(0); err != nil {
			return nil, err
		}
		return l, nil
	}
	for i, seg := range segs {
		body, err := readSegment(l.segPath(seg))
		if err != nil {
			return nil, err
		}
		max := int64(0)
		valid, _ := scanFrames(body, func(rec *Record) error {
			if rec.Kind == RecCommit && rec.Version > max {
				max = rec.Version
			}
			return nil
		})
		l.segMax[seg] = max
		if max > l.newest {
			l.newest = max
		}
		if valid < len(body) {
			m.countTorn(1)
			if i != len(segs)-1 {
				return nil, fmt.Errorf("wal: segment %d has a torn tail but is not the last segment", seg)
			}
			if err := os.Truncate(l.segPath(seg), int64(len(segMagic)+valid)); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
			}
			body = body[:valid]
		}
		if i == len(segs)-1 {
			f, err := os.OpenFile(l.segPath(seg), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			l.f, l.seg, l.segBytes = f, seg, int64(len(body))
		}
	}
	return l, nil
}

// Dir returns the log's root directory.
func (l *Log) Dir() string { return l.dir }

func (l *Log) segPath(seg int) string {
	return filepath.Join(l.dir, fmt.Sprintf("wal-%08d.log", seg))
}

// segments lists existing segment indexes in ascending order.
func (l *Log) segments() ([]int, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []int
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "wal-%08d.log", &n); err == nil {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// readSegment returns the segment body (after the magic), validating
// the magic. A file shorter than the magic is treated as empty (a crash
// between create and the magic write).
func readSegment(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if len(data) < len(segMagic) {
		return nil, nil
	}
	if string(data[:len(segMagic)]) != string(segMagic) {
		return nil, fmt.Errorf("wal: %s: bad segment magic", filepath.Base(path))
	}
	return data[len(segMagic):], nil
}

// createSegment makes segment seg the active file (magic written and
// synced, so a later torn-tail scan never mistakes a half-written magic
// for records).
func (l *Log) createSegment(seg int) error {
	f, err := os.OpenFile(l.segPath(seg), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(segMagic); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f, l.seg, l.segBytes = f, seg, 0
	return nil
}

func (l *Log) segmentBytes() int64 {
	if l.SegmentBytes > 0 {
		return l.SegmentBytes
	}
	return DefaultSegmentBytes
}

// Append writes the record and returns once it is durable (fsync'd).
// Concurrent appenders share flushes: whoever arrives while no sync is
// in flight becomes the leader and fsyncs every frame written so far;
// the rest wait on the condition variable. The error of a failed flush
// is sticky — once the log cannot persist, every later Append fails.
func (l *Log) Append(rec *Record) error {
	start := time.Now()
	seq, err := l.Enqueue(rec)
	if err != nil {
		return err
	}
	if err := l.WaitDurable(seq); err != nil {
		return err
	}
	l.Metrics.observeAppendLatency(time.Since(start))
	return nil
}

// Enqueue writes the record's frame to the active segment without
// waiting for a flush, returning a ticket for WaitDurable. Callers that
// must keep the log in apply order write the frame while still holding
// their commit lock (Enqueue is cheap — no disk flush) and wait for
// durability after releasing it, so concurrent transactions share one
// group-commit fsync without their records ever reordering.
func (l *Log) Enqueue(rec *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	frame := appendFrame(nil, rec)
	// rotation is skipped while a group-commit leader holds the active
	// file for fsync (closing it under the leader would race); the next
	// append past the threshold rotates instead
	if l.segBytes+int64(len(frame)) > l.segmentBytes() && l.segBytes > 0 && !l.syncing {
		if err := l.rotateLocked(); err != nil {
			l.err = err
			l.cond.Broadcast()
			return 0, err
		}
	}
	if _, err := l.f.Write(frame); err != nil {
		l.err = fmt.Errorf("wal: append: %w", err)
		l.cond.Broadcast()
		return 0, l.err
	}
	l.segBytes += int64(len(frame))
	l.appended += int64(len(frame))
	if rec.Kind == RecCommit {
		if rec.Version > l.newest {
			l.newest = rec.Version
		}
		if rec.Version > l.segMax[l.seg] {
			l.segMax[l.seg] = rec.Version
		}
	}
	l.nextSeq++
	l.Metrics.countAppend(rec.Kind)
	return l.nextSeq, nil
}

// WaitDurable blocks until a flush covers the Enqueue ticket seq,
// leading one group-commit fsync whenever none is in flight.
func (l *Log) WaitDurable(seq uint64) error {
	l.mu.Lock()
	for l.syncedSeq < seq && l.err == nil {
		if !l.syncing {
			l.syncing = true
			f := l.f
			target := l.nextSeq // every frame written so far is in f or an already-synced predecessor
			l.mu.Unlock()
			fsyncStart := time.Now()
			err := f.Sync()
			l.Metrics.observeFsync(time.Since(fsyncStart))
			l.mu.Lock()
			l.syncing = false
			if err != nil && l.err == nil {
				l.err = fmt.Errorf("wal: fsync: %w", err)
			}
			if err == nil && target > l.syncedSeq {
				l.syncedSeq = target
			}
			l.cond.Broadcast()
		} else {
			l.cond.Wait()
		}
	}
	err := l.err
	l.mu.Unlock()
	return err
}

// rotateLocked seals the active segment (fsync, so frames in closed
// segments are always durable before syncedSeq advances past them) and
// opens the next one.
func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: rotate fsync: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	return l.createSegment(l.seg + 1)
}

// SetBase records the durability floor: the caller guarantees state up
// to and including version v is persisted elsewhere (the snapshot), so
// the log only needs to serve commits after v.
func (l *Log) SetBase(v int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if v > l.base {
		l.base = v
	}
}

// Base returns the durability floor (see SetBase).
func (l *Log) Base() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// Newest returns the highest commit version the log holds (0 when it
// holds none).
func (l *Log) Newest() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.newest
}

// AppendedBytes reports bytes appended since the last TruncateThrough —
// the snapshot policy's trigger input.
func (l *Log) AppendedBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// Replay calls fn for every valid record in log order (all segments,
// oldest first). The torn tail, if any, was already truncated by Open.
func (l *Log) Replay(fn func(*Record) error) error {
	l.mu.Lock()
	segs, err := l.segments()
	l.mu.Unlock()
	if err != nil {
		return err
	}
	for _, seg := range segs {
		body, err := readSegment(l.segPath(seg))
		if err != nil {
			return err
		}
		if _, err := scanFrames(body, fn); err != nil {
			return err
		}
	}
	return nil
}

// CommitsSince returns every commit record with Version > v, in commit
// order. ok is false when the log cannot prove completeness — v is
// below the durability floor (the records were truncated away after a
// snapshot), so the caller must fall back to a full snapshot transfer.
func (l *Log) CommitsSince(v int64) (recs []*Record, ok bool, err error) {
	l.mu.Lock()
	base := l.base
	l.mu.Unlock()
	if v < base {
		return nil, false, nil
	}
	err = l.Replay(func(rec *Record) error {
		if rec.Kind == RecCommit && rec.Version > v {
			recs = append(recs, rec)
		}
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	return recs, true, nil
}

// TruncateThrough removes closed segments whose commits are all covered
// by a snapshot at version v, and raises the durability floor to v. The
// active segment is never removed (rotation, not truncation, seals it).
func (l *Log) TruncateThrough(v int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := l.segments()
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if seg == l.seg {
			continue
		}
		if max, known := l.segMax[seg]; known && max <= v {
			if err := os.Remove(l.segPath(seg)); err != nil {
				return fmt.Errorf("wal: truncate: %w", err)
			}
			delete(l.segMax, seg)
		}
	}
	if v > l.base {
		l.base = v
	}
	l.appended = 0
	return nil
}

// Reset discards every record and restarts an empty log whose
// durability floor and newest version are v. A replica that adopts a
// full snapshot at version v calls this: its old records — stale at
// best, divergent at worst — must never replay over the adopted state.
func (l *Log) Reset(v int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	// wait out any in-flight group-commit fsync before closing its file
	for l.syncing {
		l.cond.Wait()
	}
	if l.err != nil {
		return l.err
	}
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	segs, err := l.segments()
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if err := os.Remove(l.segPath(seg)); err != nil {
			return fmt.Errorf("wal: reset: %w", err)
		}
	}
	l.segMax = map[int]int64{}
	l.base, l.newest, l.appended = v, v, 0
	l.syncedSeq = l.nextSeq // nothing outstanding: the log is empty
	if err := l.createSegment(0); err != nil {
		l.err = err
		return err
	}
	return syncDir(l.dir)
}

// Sync flushes the active segment (used by snapshot writes that must
// order after all appended records).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("wal: fsync: %w", err)
		return l.err
	}
	return nil
}

// Close flushes and closes the active segment. The log is unusable
// afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	if err != nil && l.err == nil {
		l.err = err
	}
	return err
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

package wal

import (
	"time"

	"xrpc/internal/obs"
)

// Metrics is the WAL's registry view: where commit latency goes (the
// fsync), how well group commit amortizes (appends per fsync batch),
// and the recovery-path counters (records replayed, torn tails
// discarded, snapshots written). A nil *Metrics disables all recording
// — every method is nil-receiver-safe, mirroring the obs package's
// nil-instrument fast path.
type Metrics struct {
	// FsyncSeconds observes each group-commit fsync — the disk half of
	// commit latency. Appends per second divided by fsync batches per
	// second is the group-commit amortization factor.
	FsyncSeconds *obs.Histogram
	// AppendSeconds observes whole-append latency (enqueue + wait for a
	// covering flush), the caller-visible durability cost.
	AppendSeconds *obs.Histogram
	Appends       *obs.CounterVec // record kind: "prepare" | "commit" | "abort"
	FsyncBatches  *obs.Counter
	Replayed      *obs.Counter // commit records applied during recovery
	TornRecords   *obs.Counter // torn/corrupt tails discarded at Open
	Snapshots     *obs.Counter // store snapshots written
	Resyncs       *obs.Counter // resyncFrom rounds served or performed
}

// NewMetrics registers the WAL instrument family on reg (nil registry
// returns nil). Labels — typically shard="N" — distinguish the logs of
// peers sharing one registry.
func NewMetrics(reg *obs.Registry, labels ...obs.Label) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		FsyncSeconds: reg.NewHistogram("xrpc_wal_fsync_seconds",
			"Group-commit fsync latency.", obs.DefLatencyBuckets, labels...),
		AppendSeconds: reg.NewHistogram("xrpc_wal_append_seconds",
			"Whole WAL append latency (write + covering fsync).", obs.DefLatencyBuckets, labels...),
		Appends: reg.NewCounterVec("xrpc_wal_appends_total",
			"WAL records appended, by kind.", "kind", labels...),
		FsyncBatches: reg.NewCounter("xrpc_wal_fsync_batches_total",
			"Group-commit fsync batches (appends/batches = amortization).", labels...),
		Replayed: reg.NewCounter("xrpc_wal_replayed_records_total",
			"Commit records replayed during crash recovery or resync.", labels...),
		TornRecords: reg.NewCounter("xrpc_wal_torn_tails_total",
			"Torn or corrupt log tails discarded at open.", labels...),
		Snapshots: reg.NewCounter("xrpc_wal_snapshots_total",
			"Store snapshots written (each bounds replay and truncates segments).", labels...),
		Resyncs: reg.NewCounter("xrpc_wal_resyncs_total",
			"Replica resync rounds (syncFrom transfers served or applied).", labels...),
	}
}

func kindName(kind byte) string {
	switch kind {
	case RecPrepare:
		return "prepare"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	default:
		return "unknown"
	}
}

func (m *Metrics) countAppend(kind byte) {
	if m != nil {
		m.Appends.With(kindName(kind)).Inc()
	}
}

func (m *Metrics) observeFsync(d time.Duration) {
	if m != nil {
		m.FsyncSeconds.ObserveDuration(d)
		m.FsyncBatches.Inc()
	}
}

func (m *Metrics) observeAppendLatency(d time.Duration) {
	if m != nil {
		m.AppendSeconds.ObserveDuration(d)
	}
}

func (m *Metrics) countTorn(n int64) {
	if m != nil {
		m.TornRecords.Add(n)
	}
}

func (m *Metrics) countReplayed(n int64) {
	if m != nil {
		m.Replayed.Add(n)
	}
}

// CountSnapshot records one snapshot write (called by the server's
// snapshot policy, which owns the write).
func (m *Metrics) CountSnapshot() {
	if m != nil {
		m.Snapshots.Inc()
	}
}

// CountReplayed records n replayed commit records (recovery and
// resync application live in the server package).
func (m *Metrics) CountReplayed(n int64) { m.countReplayed(n) }

// CountResync records one resync round.
func (m *Metrics) CountResync() {
	if m != nil {
		m.Resyncs.Inc()
	}
}

package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	recs := []*Record{
		{Kind: RecPrepare, QID: "q1", PUL: []byte("<xrpc:pending-updates/>")},
		{Kind: RecCommit, Version: 42, QID: "query-2", PUL: []byte("<xrpc:pending-updates><p/></xrpc:pending-updates>")},
		{Kind: RecAbort, QID: "q3"},
		{Kind: RecCommit, Version: 1}, // empty qid and pul
	}
	for _, want := range recs {
		got, err := DecodeRecord(EncodeRecord(want))
		if err != nil {
			t.Fatalf("decode(encode(%+v)): %v", want, err)
		}
		if got.Kind != want.Kind || got.Version != want.Version || got.QID != want.QID ||
			!bytes.Equal(got.PUL, want.PUL) {
			t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
		}
	}
}

func TestDecodeRecordRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{RecCommit},                      // too short
		{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // kind 0
		{RecPrepare, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff}, // qid overruns
	}
	for i, c := range cases {
		if _, err := DecodeRecord(c); err == nil {
			t.Errorf("case %d: garbage decoded without error", i)
		}
	}
}

func commitRec(v int64, pul string) *Record {
	return &Record{Kind: RecCommit, Version: v, QID: fmt.Sprintf("q%d", v), PUL: []byte(pul)}
}

func TestLogAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	lg, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Append(&Record{Kind: RecPrepare, QID: "q1", PUL: []byte("<p1/>")}); err != nil {
		t.Fatal(err)
	}
	for v := int64(1); v <= 3; v++ {
		if err := lg.Append(commitRec(v, fmt.Sprintf("<pul v='%d'/>", v))); err != nil {
			t.Fatal(err)
		}
	}
	if err := lg.Append(&Record{Kind: RecAbort, QID: "qx"}); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	lg2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	if got := lg2.Newest(); got != 3 {
		t.Fatalf("Newest after reopen = %d, want 3", got)
	}
	var kinds []byte
	var versions []int64
	if err := lg2.Replay(func(rec *Record) error {
		kinds = append(kinds, rec.Kind)
		if rec.Kind == RecCommit {
			versions = append(versions, rec.Version)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if want := []byte{RecPrepare, RecCommit, RecCommit, RecCommit, RecAbort}; !bytes.Equal(kinds, want) {
		t.Fatalf("replay kinds = %v, want %v", kinds, want)
	}
	for i, v := range versions {
		if v != int64(i+1) {
			t.Fatalf("replay versions = %v, want 1..3 in order", versions)
		}
	}
	// the reopened log keeps appending after the recovered prefix
	if err := lg2.Append(commitRec(4, "<pul v='4'/>")); err != nil {
		t.Fatal(err)
	}
	recs, ok, err := lg2.CommitsSince(2)
	if err != nil || !ok {
		t.Fatalf("CommitsSince(2): ok=%v err=%v", ok, err)
	}
	if len(recs) != 2 || recs[0].Version != 3 || recs[1].Version != 4 {
		t.Fatalf("CommitsSince(2) = %v records", len(recs))
	}
}

func TestTornTailDetectedAndTruncated(t *testing.T) {
	dir := t.TempDir()
	lg, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(1); v <= 2; v++ {
		if err := lg.Append(commitRec(v, "<pul/>")); err != nil {
			t.Fatal(err)
		}
	}
	lg.Close()

	// simulate a crash mid-append: a valid header promising more bytes
	// than were written
	path := filepath.Join(dir, "wal-00000000.log")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := appendFrame(nil, commitRec(3, "<pul torn='yes'/>"))
	if _, err := f.Write(torn[:len(torn)-5]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	lg2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	var versions []int64
	if err := lg2.Replay(func(rec *Record) error {
		versions = append(versions, rec.Version)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(versions) != 2 {
		t.Fatalf("torn tail not discarded: replayed %v", versions)
	}
	// appending after truncation lands on a clean frame boundary
	if err := lg2.Append(commitRec(3, "<pul v='3'/>")); err != nil {
		t.Fatal(err)
	}
	lg2.Close()
	lg3, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lg3.Close()
	if got := lg3.Newest(); got != 3 {
		t.Fatalf("Newest after post-torn append = %d, want 3", got)
	}
}

func TestCorruptFrameEndsReplay(t *testing.T) {
	dir := t.TempDir()
	lg, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(1); v <= 3; v++ {
		if err := lg.Append(commitRec(v, "<pul/>")); err != nil {
			t.Fatal(err)
		}
	}
	lg.Close()
	// flip one payload byte of the middle record
	path := filepath.Join(dir, "wal-00000000.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frameLen := len(appendFrame(nil, commitRec(1, "<pul/>")))
	data[len(segMagic)+frameLen+frameHeaderLen+3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	lg2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	var versions []int64
	lg2.Replay(func(rec *Record) error {
		versions = append(versions, rec.Version)
		return nil
	})
	if len(versions) != 1 || versions[0] != 1 {
		t.Fatalf("corrupt frame did not end the durable prefix: %v", versions)
	}
}

func TestSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	lg, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	lg.SegmentBytes = 256 // force rotation every few records
	pul := bytes.Repeat([]byte("x"), 64)
	for v := int64(1); v <= 20; v++ {
		if err := lg.Append(&Record{Kind: RecCommit, Version: v, QID: "q", PUL: pul}); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := lg.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %v", segs)
	}
	// truncating through version 10 removes every closed segment whose
	// commits are all <= 10 and raises the floor
	if err := lg.TruncateThrough(10); err != nil {
		t.Fatal(err)
	}
	left, err := lg.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(left) >= len(segs) {
		t.Fatalf("truncate removed nothing: %v -> %v", segs, left)
	}
	if _, ok, _ := lg.CommitsSince(5); ok {
		t.Fatal("CommitsSince below the floor must report incomplete")
	}
	recs, ok, err := lg.CommitsSince(10)
	if err != nil || !ok {
		t.Fatalf("CommitsSince(10): ok=%v err=%v", ok, err)
	}
	if len(recs) != 10 || recs[0].Version != 11 {
		t.Fatalf("CommitsSince(10): %d records starting at %d", len(recs), recs[0].Version)
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	lg, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = lg.Append(&Record{Kind: RecPrepare, QID: fmt.Sprintf("q%d", i), PUL: []byte("<p/>")})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	lg.Close()
	lg2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lg2.Close()
	count := 0
	lg2.Replay(func(*Record) error { count++; return nil })
	if count != n {
		t.Fatalf("replayed %d of %d concurrent appends", count, n)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	snap := &Snapshot{
		Version: 17,
		Shard:   2,
		Shards:  4,
		Ranges:  []string{`"persons.xml""/site/people/person"[person2,person5)`},
		Docs: map[string]string{
			"persons.xml": "<site><people><person id=\"person2\"/></people></site>",
			"extra.xml":   "<x/>",
		},
	}
	if err := WriteSnapshot(dir, snap); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadLatestSnapshot(dir)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if got.Version != snap.Version || got.Shard != snap.Shard || got.Shards != snap.Shards {
		t.Fatalf("meta mismatch: %+v", got)
	}
	if len(got.Ranges) != 1 || got.Ranges[0] != snap.Ranges[0] {
		t.Fatalf("ranges mismatch: %v", got.Ranges)
	}
	for name, xml := range snap.Docs {
		if got.Docs[name] != xml {
			t.Fatalf("doc %s mismatch", name)
		}
	}
	// a newer snapshot supersedes and removes the old one
	snap2 := &Snapshot{Version: 30, Docs: map[string]string{"persons.xml": "<site/>"}}
	if err := WriteSnapshot(dir, snap2); err != nil {
		t.Fatal(err)
	}
	got2, ok, err := LoadLatestSnapshot(dir)
	if err != nil || !ok || got2.Version != 30 {
		t.Fatalf("latest after second write: %+v ok=%v err=%v", got2, ok, err)
	}
	vs, _ := snapVersions(dir)
	if len(vs) != 1 || vs[0] != 30 {
		t.Fatalf("old snapshot not reclaimed: %v", vs)
	}
	if !HasSnapshot(dir) {
		t.Fatal("HasSnapshot is false for a dir holding one")
	}
	if HasSnapshot(t.TempDir()) {
		t.Fatal("HasSnapshot is true for an empty dir")
	}
}

func TestSnapshotCorruptionFallsBackOrErrors(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, &Snapshot{Version: 5, Docs: map[string]string{"a.xml": "<a/>"}}); err != nil {
		t.Fatal(err)
	}
	// corrupt the only snapshot: loading must fail loudly, not return
	// garbage state
	path := snapPath(dir, 5)
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xff
	os.WriteFile(path, data, 0o644)
	if _, ok, err := LoadLatestSnapshot(dir); ok || err == nil {
		t.Fatalf("corrupt-only snapshot: ok=%v err=%v", ok, err)
	}
}

package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Snapshot is a full serialized store state at one version, plus the
// shard metadata that cannot be re-derived from the shard's own subset
// of the documents (its slot in the cluster and the partitioner's range
// descriptors, which shardInfo advertises to coordinators).
type Snapshot struct {
	Version int64
	Shard   int
	Shards  int
	// Ranges are cluster.KeyRange.String() descriptors.
	Ranges []string
	// Docs maps document name to its serialized XML text.
	Docs map[string]string
}

// snapMagic opens every snapshot file.
var snapMagic = []byte("XRPCSNP1")

func snapPath(dir string, version int64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%020d.snap", version))
}

// snapVersions lists snapshot versions present in dir, ascending.
func snapVersions(dir string) ([]int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []int64
	for _, e := range entries {
		var v int64
		if _, err := fmt.Sscanf(e.Name(), "snap-%020d.snap", &v); err == nil {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// HasSnapshot reports whether dir holds at least one snapshot — the
// start-up signal that a peer should recover instead of loading
// documents fresh.
func HasSnapshot(dir string) bool {
	vs, err := snapVersions(dir)
	return err == nil && len(vs) > 0
}

func encodeSnapshot(snap *Snapshot) []byte {
	size := 8 + 4 + 4 + 4 + 4
	for _, r := range snap.Ranges {
		size += 4 + len(r)
	}
	for name, xml := range snap.Docs {
		size += 8 + len(name) + len(xml)
	}
	buf := make([]byte, 0, len(snapMagic)+size+4)
	buf = append(buf, snapMagic...)
	payloadStart := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(snap.Version))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(snap.Shard))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(snap.Shards))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(snap.Ranges)))
	for _, r := range snap.Ranges {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r)))
		buf = append(buf, r...)
	}
	names := make([]string, 0, len(snap.Docs))
	for name := range snap.Docs {
		names = append(names, name)
	}
	sort.Strings(names)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(names)))
	for _, name := range names {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(name)))
		buf = append(buf, name...)
		xml := snap.Docs[name]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(xml)))
		buf = append(buf, xml...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[payloadStart:]))
	return buf
}

// decodeSnapshot parses a snapshot file body. All lengths are
// bounds-checked; a truncated or corrupt file yields an error.
func decodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < len(snapMagic)+8+4+4+4+4+4 {
		return nil, fmt.Errorf("wal: snapshot too short (%d bytes)", len(data))
	}
	if string(data[:len(snapMagic)]) != string(snapMagic) {
		return nil, fmt.Errorf("wal: bad snapshot magic")
	}
	payload := data[len(snapMagic) : len(data)-4]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, fmt.Errorf("wal: snapshot CRC mismatch")
	}
	snap := &Snapshot{Docs: map[string]string{}}
	off := 0
	u32 := func() (uint32, error) {
		if off+4 > len(payload) {
			return 0, fmt.Errorf("wal: snapshot truncated")
		}
		v := binary.LittleEndian.Uint32(payload[off : off+4])
		off += 4
		return v, nil
	}
	str := func() (string, error) {
		n, err := u32()
		if err != nil {
			return "", err
		}
		if off+int(n) > len(payload) {
			return "", fmt.Errorf("wal: snapshot string overruns payload")
		}
		s := string(payload[off : off+int(n)])
		off += int(n)
		return s, nil
	}
	snap.Version = int64(binary.LittleEndian.Uint64(payload[off : off+8]))
	off += 8
	shard, err := u32()
	if err != nil {
		return nil, err
	}
	shards, err := u32()
	if err != nil {
		return nil, err
	}
	snap.Shard, snap.Shards = int(shard), int(shards)
	nr, err := u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nr; i++ {
		r, err := str()
		if err != nil {
			return nil, err
		}
		snap.Ranges = append(snap.Ranges, r)
	}
	nd, err := u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nd; i++ {
		name, err := str()
		if err != nil {
			return nil, err
		}
		xml, err := str()
		if err != nil {
			return nil, err
		}
		snap.Docs[name] = xml
	}
	return snap, nil
}

// WriteSnapshot persists the snapshot atomically: temp file, fsync,
// rename into place, fsync the directory. Older snapshot files are
// removed after the new one is durable — at every instant the directory
// holds at least one complete snapshot.
func WriteSnapshot(dir string, snap *Snapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	data := encodeSnapshot(snap)
	tmp, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("wal: snapshot fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: %w", err)
	}
	final := snapPath(dir, snap.Version)
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("wal: snapshot dir fsync: %w", err)
	}
	// reclaim superseded snapshots (best effort: a leftover older
	// snapshot is only wasted space, never a correctness problem)
	if vs, err := snapVersions(dir); err == nil {
		for _, v := range vs {
			if v < snap.Version {
				os.Remove(snapPath(dir, v))
			}
		}
	}
	return nil
}

// LoadLatestSnapshot loads the newest parseable snapshot in dir. ok is
// false when dir holds no usable snapshot. Corrupt candidates are
// skipped in favor of older complete ones (defense in depth — the
// tmp+rename protocol should never leave one).
func LoadLatestSnapshot(dir string) (snap *Snapshot, ok bool, err error) {
	vs, err := snapVersions(dir)
	if err != nil || len(vs) == 0 {
		return nil, false, err
	}
	for i := len(vs) - 1; i >= 0; i-- {
		data, rerr := os.ReadFile(snapPath(dir, vs[i]))
		if rerr != nil {
			continue
		}
		if s, derr := decodeSnapshot(data); derr == nil {
			return s, true, nil
		}
	}
	return nil, false, fmt.Errorf("wal: %s: no snapshot decodes cleanly", dir)
}

package pathfinder

import (
	"testing"

	"xrpc/internal/modules"
	"xrpc/internal/xdm"
)

func TestPlanCacheSharesNormalizedVariants(t *testing.T) {
	pc := NewPlanCache(modules.NewRegistry())
	variants := []string{
		"for $i in (1,2,3) return $i + 1",
		"for $i in (1,2,3)\n  return $i + 1",
		"for $i in (1,2,3) (: same plan :) return $i + 1",
	}
	var want string
	for i, src := range variants {
		c, err := pc.Compile(src)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		seq, err := c.Eval(&ExecCtx{}, nil)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		got := xdm.SerializeSequence(seq)
		if i == 0 {
			want = got
		} else if got != want {
			t.Fatalf("variant %d = %q; want %q", i, got, want)
		}
	}
	if h, m := pc.Hits.Load(), pc.Misses.Load(); h != 2 || m != 1 {
		t.Fatalf("hits=%d misses=%d; want layout variants to share one plan", h, m)
	}
}

func TestPlanCacheDistinguishesDifferentQueries(t *testing.T) {
	pc := NewPlanCache(modules.NewRegistry())
	if _, err := pc.Compile("1 + 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Compile("1 + 2"); err != nil {
		t.Fatal(err)
	}
	if h, m := pc.Hits.Load(), pc.Misses.Load(); h != 0 || m != 2 {
		t.Fatalf("hits=%d misses=%d; distinct queries must not share", h, m)
	}
}

func TestPlanCacheInvalidatesOnRegistration(t *testing.T) {
	reg := modules.NewRegistry()
	pc := NewPlanCache(reg)
	if _, err := pc.Compile("1 + 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Compile("1 + 1"); err != nil {
		t.Fatal(err)
	}
	if h := pc.Hits.Load(); h != 1 {
		t.Fatalf("hits=%d; want a warm hit before registration", h)
	}
	// any module registration steps the generation and conservatively
	// invalidates every cached query plan
	if err := reg.Register(`module namespace m="m"; declare function m:f() { 1 };`); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Compile("1 + 1"); err != nil {
		t.Fatal(err)
	}
	if h, m := pc.Hits.Load(), pc.Misses.Load(); h != 1 || m != 2 {
		t.Fatalf("hits=%d misses=%d; registration must invalidate query plans", h, m)
	}
}

func BenchmarkPlanCacheHit(b *testing.B) {
	pc := NewPlanCache(modules.NewRegistry())
	const src = "for $i in (1,2,3)\n  return $i + 1"
	if _, err := pc.Compile(src); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pc.Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

package pathfinder

import (
	"strings"
	"testing"

	"xrpc/internal/algebra"
	"xrpc/internal/client"
	"xrpc/internal/interp"
	"xrpc/internal/modules"
	"xrpc/internal/netsim"
	"xrpc/internal/server"
	"xrpc/internal/soap"
	"xrpc/internal/store"
	"xrpc/internal/xdm"
)

const filmDBY = `<films>
<film><name>The Rock</name><actor>Sean Connery</actor></film>
<film><name>Goldfinger</name><actor>Sean Connery</actor></film>
<film><name>Green Card</name><actor>Gerard Depardieu</actor></film>
</films>`

const filmDBZ = `<films>
<film><name>Sound Of Music</name><actor>Julie Andrews</actor></film>
</films>`

const filmModule = `
module namespace film="films";
declare function film:filmsByActor($actor as xs:string) as node()*
{ doc("filmDB.xml")//name[../actor=$actor] };`

const testModule = `
module namespace tst="test";
declare function tst:echoVoid() { () };
declare function tst:echo($x as item()*) as item()* { $x };`

type fixture struct {
	net    *netsim.Network
	st     *store.Store
	reg    *modules.Registry
	ySrv   *server.Server
	zSrv   *server.Server
	yExec  *server.NativeExecutor
	yStore func() *store.Store
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	net := netsim.NewNetwork(0, 0)
	reg := modules.NewRegistry()
	for _, m := range []string{filmModule, testModule} {
		if err := reg.Register(m, "http://x.example.org/film.xq"); err != nil {
			t.Fatal(err)
		}
	}
	mkPeer := func(uri, xml string) (*server.Server, *server.NativeExecutor, *store.Store) {
		st := store.New()
		if err := st.LoadXML("filmDB.xml", xml); err != nil {
			t.Fatal(err)
		}
		eng := interp.New(st, reg, nil)
		exec := server.NewNativeExecutor(eng, reg)
		srv := server.New(st, reg, exec)
		net.Register(uri, srv)
		return srv, exec, st
	}
	ySrv, yExec, ySt := mkPeer("xrpc://y.example.org", filmDBY)
	zSrv, _, _ := mkPeer("xrpc://z.example.org", filmDBZ)
	localStore := store.New()
	if err := localStore.LoadXML("filmDB.xml", filmDBY); err != nil {
		t.Fatal(err)
	}
	return &fixture{
		net: net, st: localStore, reg: reg, ySrv: ySrv, zSrv: zSrv, yExec: yExec,
		yStore: func() *store.Store { return ySt },
	}
}

func (f *fixture) eval(t *testing.T, query string, vars map[string]xdm.Sequence) xdm.Sequence {
	t.Helper()
	return f.evalCtx(t, query, vars, &ExecCtx{Docs: f.st, Bulk: client.New(f.net)})
}

func (f *fixture) evalCtx(t *testing.T, query string, vars map[string]xdm.Sequence, ec *ExecCtx) xdm.Sequence {
	t.Helper()
	c, err := Compile(query, f.reg)
	if err != nil {
		t.Fatalf("pathfinder compile: %v\nquery: %s", err, query)
	}
	seq, err := c.Eval(ec, vars)
	if err != nil {
		t.Fatalf("pathfinder eval: %v\nquery: %s", err, query)
	}
	return seq
}

// evalBoth runs a query on both engines and requires identical
// serialized results — the loop-lifted engine must agree with the
// reference interpreter.
func (f *fixture) evalBoth(t *testing.T, query string) string {
	t.Helper()
	pf := f.eval(t, query, nil)
	eng := interp.New(f.st, f.reg, client.New(f.net))
	c, err := eng.Compile(query)
	if err != nil {
		t.Fatalf("interp compile: %v", err)
	}
	ref, _, err := c.Eval(nil)
	if err != nil {
		t.Fatalf("interp eval: %v", err)
	}
	got, want := xdm.SerializeSequence(pf), xdm.SerializeSequence(ref)
	if got != want {
		t.Errorf("engines disagree on %s\n  pathfinder: %s\n  interp:     %s", query, got, want)
	}
	return got
}

func TestBasicExpressions(t *testing.T) {
	f := newFixture(t)
	queries := []string{
		`1 + 2`,
		`(1,2,3)`,
		`(1 to 5)`,
		`2 * 3 + 4`,
		`10 idiv 4`,
		`-(5)`,
		`"a"`,
		`()`,
		`concat("a","b","c")`,
		`1 < 2`,
		`"x" eq "x"`,
		`(1,2,3) = 3`,
		`true() and false()`,
		`true() or false()`,
		`not(1=2)`,
		`count((1,2,3))`,
		`sum((1,2,3))`,
		`string(42)`,
		`if (1 < 2) then "y" else "n"`,
		`"42" cast as xs:integer`,
		`xs:integer("7") + 1`,
		`some $x in (1,2,3) satisfies $x gt 2`,
		`every $x in (1,2,3) satisfies $x gt 0`,
		`min((3,1,2))`,
		`max((3,1,2))`,
		`avg((2,4))`,
		`distinct-values((1,2,1))`,
		`string-join(("a","b"),"-")`,
		`contains("hello","ell")`,
		`string-length("abc")`,
		`empty(())`,
		`exists((1))`,
		`reverse((1,2,3))`,
		`subsequence((1,2,3,4),2,2)`,
	}
	for _, q := range queries {
		f.evalBoth(t, q)
	}
}

func TestFLWORBoth(t *testing.T) {
	f := newFixture(t)
	queries := []string{
		`for $x in (1,2,3) return $x * 2`,
		`for $x in (1,2,3) where $x gt 1 return $x`,
		`for $x in (1,2) for $y in (10,20) return $x + $y`,
		`for $x in (1,2), $y in (10,20) return $x + $y`,
		`let $y := 5 return $y + 1`,
		`for $x at $i in ("a","b","c") return $i`,
		`for $x in (1,2) let $z := ($x, $x*10) return count($z)`,
		`for $x in (1 to 3) return if ($x mod 2 eq 0) then "even" else "odd"`,
		`for $x in () return $x`,
		`for $x in (1,2) return for $y in (1 to $x) return $y`,
	}
	for _, q := range queries {
		f.evalBoth(t, q)
	}
}

// Q5 from §3.1: the canonical loop-lifting example; verify both result
// and the intermediate representation tables.
func TestLoopLifting_Q5(t *testing.T) {
	f := newFixture(t)
	got := f.evalBoth(t, `
for $x in (10,20)
return for $y in (100,200)
       let $z := ($x,$y)
       return $z`)
	if got != "10 100 10 200 20 100 20 200" {
		t.Errorf("Q5 = %q", got)
	}
}

// The §3.1 representation invariant: in the inner scope of Q5 there are
// four iterations; $x, $y and $z have the loop-lifted tables shown in
// the paper.
func TestLoopLifting_Q5_Tables(t *testing.T) {
	// reconstruct the inner-scope tables through the algebra directly
	x := algebra.Lit([]string{"iter", "pos", "item"},
		[]xdm.Item{xdm.Integer(1), xdm.Integer(1), xdm.Integer(10)},
		[]xdm.Item{xdm.Integer(2), xdm.Integer(1), xdm.Integer(10)},
		[]xdm.Item{xdm.Integer(3), xdm.Integer(1), xdm.Integer(20)},
		[]xdm.Item{xdm.Integer(4), xdm.Integer(1), xdm.Integer(20)},
	)
	y := algebra.Lit([]string{"iter", "pos", "item"},
		[]xdm.Item{xdm.Integer(1), xdm.Integer(1), xdm.Integer(100)},
		[]xdm.Item{xdm.Integer(2), xdm.Integer(1), xdm.Integer(200)},
		[]xdm.Item{xdm.Integer(3), xdm.Integer(1), xdm.Integer(100)},
		[]xdm.Item{xdm.Integer(4), xdm.Integer(1), xdm.Integer(200)},
	)
	// $z = ($x, $y): union with branch tags, renumbered per iter
	acc := algebra.NewTable("iter", "pos", "item", "branch")
	for ri := 0; ri < x.Len(); ri++ {
		acc.Append(x.Item(ri, 0), x.Item(ri, 1), x.Item(ri, 2), xdm.Integer(0))
	}
	for ri := 0; ri < y.Len(); ri++ {
		acc.Append(y.Item(ri, 0), y.Item(ri, 1), y.Item(ri, 2), xdm.Integer(1))
	}
	ranked := algebra.RowNum(acc, "newpos", []string{"branch", "pos"}, "iter")
	z := algebra.Project(ranked, "iter", "pos:newpos", "item")
	sorted := algebra.SortBy(z, "iter", "pos")
	want := [][3]int64{
		{1, 1, 10}, {1, 2, 100},
		{2, 1, 10}, {2, 2, 200},
		{3, 1, 20}, {3, 2, 100},
		{4, 1, 20}, {4, 2, 200},
	}
	if sorted.Len() != len(want) {
		t.Fatalf("z has %d rows", sorted.Len())
	}
	for i, w := range want {
		if sorted.Int(i, 0) != w[0] || sorted.Int(i, 1) != w[1] || sorted.Int(i, 2) != w[2] {
			t.Errorf("row %d = %v, want %v", i, sorted.Row(i), w)
		}
	}
}

func TestPathsBoth(t *testing.T) {
	f := newFixture(t)
	queries := []string{
		`count(doc("filmDB.xml")//film)`,
		`doc("filmDB.xml")//name[../actor="Sean Connery"]`,
		`doc("filmDB.xml")/films/film[1]/name`,
		`doc("filmDB.xml")/films/film[last()]/name`,
		`string(doc("filmDB.xml")//film[2]/actor)`,
		`count(doc("filmDB.xml")//film[actor="Sean Connery"])`,
		`for $f in doc("filmDB.xml")//film return string($f/name)`,
		`doc("filmDB.xml")//name[position()=1]`,
		`(doc("filmDB.xml")//name)[2]`,
		`doc("filmDB.xml")//actor[.="Gerard Depardieu"]/../name`,
		`for $f in doc("filmDB.xml")//film where $f/actor = "Sean Connery" return $f/name`,
	}
	for _, q := range queries {
		f.evalBoth(t, q)
	}
}

func TestConstructorsBoth(t *testing.T) {
	f := newFixture(t)
	queries := []string{
		`<a/>`,
		`<a x="1">t</a>`,
		`<a>{1+1}</a>`,
		`<a>{(1,2,3)}</a>`,
		`<a b="{1+1}"/>`,
		`<films>{doc("filmDB.xml")//name[../actor="Sean Connery"]}</films>`,
		`for $x in (1,2) return <n v="{$x}">{$x * 10}</n>`,
		`text {"hi"}`,
	}
	for _, q := range queries {
		f.evalBoth(t, q)
	}
}

func TestUserFunctionInlining(t *testing.T) {
	f := newFixture(t)
	got := f.evalBoth(t, `
declare function local:double($n as xs:integer) as xs:integer { $n * 2 };
for $x in (1,2,3) return local:double($x)`)
	if got != "2 4 6" {
		t.Errorf("got %q", got)
	}
	// recursion must be rejected at compile time
	_, err := Compile(`
declare function local:loop($n as xs:integer) as xs:integer { local:loop($n) };
local:loop(1)`, f.reg)
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("recursion error = %v", err)
	}
}

func TestModuleFunctionInlining(t *testing.T) {
	f := newFixture(t)
	got := f.evalBoth(t, `
import module namespace fm="films" at "http://x.example.org/film.xq";
fm:filmsByActor("Sean Connery")`)
	if got != "<name>The Rock</name><name>Goldfinger</name>" {
		t.Errorf("got %q", got)
	}
}

// Q1 executed by the loop-lifted engine.
func TestQ1Bulk(t *testing.T) {
	f := newFixture(t)
	seq := f.eval(t, `
import module namespace fm="films" at "http://x.example.org/film.xq";
<films> {
  execute at {"xrpc://y.example.org"}
  {fm:filmsByActor("Sean Connery")}
} </films>`, nil)
	got := xdm.SerializeSequence(seq)
	want := "<films><name>The Rock</name><name>Goldfinger</name></films>"
	if got != want {
		t.Errorf("Q1 = %s", got)
	}
}

// Q2: the loop-lifted engine sends ONE bulk request for the whole loop —
// the central claim of §3.2.
func TestQ2SingleBulkRequest(t *testing.T) {
	f := newFixture(t)
	seq := f.eval(t, `
import module namespace fm="films" at "http://x.example.org/film.xq";
<films> {
  for $actor in ("Julie Andrews", "Sean Connery")
  let $dst := "xrpc://y.example.org"
  return execute at {$dst} {fm:filmsByActor($actor)}
} </films>`, nil)
	got := xdm.SerializeSequence(seq)
	want := "<films><name>The Rock</name><name>Goldfinger</name></films>"
	if got != want {
		t.Errorf("Q2 = %s", got)
	}
	if f.ySrv.ServedRequests != 1 {
		t.Errorf("y served %d requests, want 1 (Bulk RPC)", f.ySrv.ServedRequests)
	}
	if f.ySrv.ServedCalls != 2 {
		t.Errorf("y served %d calls, want 2", f.ySrv.ServedCalls)
	}
}

// Q3: two peers, one bulk request each, results re-united in query
// order (Figure 1).
func TestQ3TwoBulkRequests(t *testing.T) {
	f := newFixture(t)
	seq := f.eval(t, `
import module namespace fm="films" at "http://x.example.org/film.xq";
<films> {
  for $actor in ("Julie Andrews", "Sean Connery")
  for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
  return execute at {$dst} {fm:filmsByActor($actor)}
} </films>`, nil)
	got := xdm.SerializeSequence(seq)
	want := "<films><name>Sound Of Music</name><name>The Rock</name><name>Goldfinger</name></films>"
	if got != want {
		t.Errorf("Q3 = %s", got)
	}
	if f.ySrv.ServedRequests != 1 || f.zSrv.ServedRequests != 1 {
		t.Errorf("requests served: y=%d z=%d, want 1 each", f.ySrv.ServedRequests, f.zSrv.ServedRequests)
	}
}

// Figure 1: the intermediate map/req/msg/res tables for the
// multi-destination example.
func TestFigure1Tables(t *testing.T) {
	f := newFixture(t)
	trace := &Trace{}
	ec := &ExecCtx{Docs: f.st, Bulk: client.New(f.net), Trace: trace, Sequential: true}
	f.evalCtx(t, `
import module namespace fm="films" at "http://x.example.org/film.xq";
for $actor in ("Julie Andrews", "Sean Connery")
for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
return execute at {$dst} {fm:filmsByActor($actor)}`, nil, ec)

	if len(trace.PerPeer) != 2 {
		t.Fatalf("traced %d peers, want 2", len(trace.PerPeer))
	}
	y := trace.PerPeer[0]
	if y.Peer != "xrpc://y.example.org" {
		t.Fatalf("first peer = %s", y.Peer)
	}
	// map_y: iters 1 and 3 map to iterp 1 and 2 (paper Figure 1)
	if y.Map.Len() != 2 {
		t.Fatalf("map_y rows = %d", y.Map.Len())
	}
	if y.Map.Int(0, 0) != 1 || y.Map.Int(0, 1) != 1 ||
		y.Map.Int(1, 0) != 3 || y.Map.Int(1, 1) != 2 {
		t.Errorf("map_y =\n%s", y.Map)
	}
	// req_y parameter table: iterp 1 = Julie Andrews, iterp 2 = Sean Connery
	req := y.Req[0]
	if req.Len() != 2 {
		t.Fatalf("req_y rows = %d", req.Len())
	}
	if req.Item(0, 2).StringValue() != "Julie Andrews" || req.Item(1, 2).StringValue() != "Sean Connery" {
		t.Errorf("req_y =\n%s", req)
	}
	// msg_y: The Rock, Goldfinger at iterp 2 (Sean Connery on y)
	if y.Msg.Len() != 2 {
		t.Fatalf("msg_y rows = %d:\n%s", y.Msg.Len(), y.Msg)
	}
	if y.Msg.Int(0, 0) != 2 || y.Msg.Item(0, 2).StringValue() != "The Rock" {
		t.Errorf("msg_y =\n%s", y.Msg)
	}
	// res_y mapped back to iter 3
	if y.Res.Int(0, 0) != 3 {
		t.Errorf("res_y =\n%s", y.Res)
	}
	// z: Sound of Music at iter 2 (Julie Andrews on z)
	z := trace.PerPeer[1]
	if z.Msg.Len() != 1 || z.Res.Int(0, 0) != 2 {
		t.Errorf("z trace: msg=\n%s res=\n%s", z.Msg, z.Res)
	}
	// final result: iters 2, 3 with correct items
	final := algebra.SortBy(trace.Result, "iter", "pos")
	if final.Len() != 3 {
		t.Fatalf("result rows = %d", final.Len())
	}
	if final.Int(0, 0) != 2 || final.Item(0, 2).StringValue() != "Sound Of Music" {
		t.Errorf("result =\n%s", final)
	}
}

// Q6 from §3.2: two execute-at calls in a sequence constructor become
// two Bulk RPCs, each carrying both loop iterations (out-of-order
// processing).
func TestQ6OutOfOrderBulk(t *testing.T) {
	f := newFixture(t)
	seq := f.eval(t, `
import module namespace tst="test" at "http://x.example.org/film.xq";
for $name in ("Julie", "Sean")
let $a := concat($name, "-A")
let $b := concat($name, "-B")
return (
  execute at {"xrpc://y.example.org"} {tst:echo($a)},
  execute at {"xrpc://y.example.org"} {tst:echo($b)} )`, nil)
	got := xdm.SerializeSequence(seq)
	// query order preserved in the result
	if got != "Julie-A Julie-B Sean-A Sean-B" {
		t.Errorf("Q6 = %q", got)
	}
	// but only 2 requests were sent (one per execute-at site), not 4
	if f.ySrv.ServedRequests != 2 {
		t.Errorf("y served %d requests, want 2", f.ySrv.ServedRequests)
	}
	if f.ySrv.ServedCalls != 4 {
		t.Errorf("y served %d calls, want 4", f.ySrv.ServedCalls)
	}
}

// One-at-a-time mode: same results, one request per iteration (Table 2's
// comparison mechanism).
func TestOneAtATimeMode(t *testing.T) {
	f := newFixture(t)
	ec := &ExecCtx{Docs: f.st, Bulk: client.New(f.net), OneAtATime: true}
	seq := f.evalCtx(t, `
import module namespace tst="test" at "http://x.example.org/film.xq";
for $i in (1 to 10)
return execute at {"xrpc://y.example.org"} {tst:echoVoid()}`, nil, ec)
	if len(seq) != 0 {
		t.Errorf("echoVoid result = %v", seq)
	}
	if f.ySrv.ServedRequests != 10 {
		t.Errorf("y served %d requests, want 10 (one-at-a-time)", f.ySrv.ServedRequests)
	}
	// bulk mode: 1 request
	f2 := newFixture(t)
	ec2 := &ExecCtx{Docs: f2.st, Bulk: client.New(f2.net)}
	f2.evalCtx(t, `
import module namespace tst="test" at "http://x.example.org/film.xq";
for $i in (1 to 10)
return execute at {"xrpc://y.example.org"} {tst:echoVoid()}`, nil, ec2)
	if f2.ySrv.ServedRequests != 1 {
		t.Errorf("y served %d requests, want 1 (bulk)", f2.ySrv.ServedRequests)
	}
}

// The semi-join pattern: execute at with a loop-dependent parameter.
func TestLoopDependentParameter(t *testing.T) {
	f := newFixture(t)
	seq := f.eval(t, `
import module namespace fm="films" at "http://x.example.org/film.xq";
for $actor in ("Sean Connery", "Julie Andrews", "Gerard Depardieu")
return count(execute at {"xrpc://y.example.org"} {fm:filmsByActor($actor)})`, nil)
	if got := xdm.SerializeSequence(seq); got != "2 0 1" {
		t.Errorf("per-actor counts = %q", got)
	}
	if f.ySrv.ServedRequests != 1 {
		t.Errorf("y served %d requests, want 1", f.ySrv.ServedRequests)
	}
}

func TestExternalVariables(t *testing.T) {
	f := newFixture(t)
	seq := f.eval(t, `for $i in (1 to $x) return $i * $i`,
		map[string]xdm.Sequence{"x": {xdm.Integer(4)}})
	if got := xdm.SerializeSequence(seq); got != "1 4 9 16" {
		t.Errorf("got %q", got)
	}
}

func TestCompileErrors(t *testing.T) {
	f := newFixture(t)
	bad := []string{
		`for $x in (1,2) order by $x return $x`, // unsupported: order by
		`unknown:fn(1)`,
	}
	for _, q := range bad {
		if _, err := Compile(q, f.reg); err == nil {
			t.Errorf("%s: expected compile error", q)
		}
	}
	// unknown variables are assumed external and fail at run time
	c, err := Compile(`$undefined`, f.reg)
	if err != nil {
		t.Fatalf("external-variable compile: %v", err)
	}
	if _, err := c.Eval(&ExecCtx{Docs: f.st}, nil); err == nil {
		t.Error("$undefined: expected runtime error")
	}
}

func TestFunctionCacheReuse(t *testing.T) {
	f := newFixture(t)
	c, err := Compile(`for $i in (1 to 3) return $i`, f.reg)
	if err != nil {
		t.Fatal(err)
	}
	// a compiled plan is reusable (the function cache stores these)
	for i := 0; i < 3; i++ {
		seq, err := c.Eval(&ExecCtx{Docs: f.st}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := xdm.SerializeSequence(seq); got != "1 2 3" {
			t.Fatalf("run %d: %q", i, got)
		}
	}
	if c.CompileTime <= 0 {
		t.Error("compile time not recorded")
	}
}

func TestEmptyDestinationSkipsCall(t *testing.T) {
	f := newFixture(t)
	// iterations with empty destinations make no calls
	seq := f.eval(t, `
import module namespace tst="test" at "http://x.example.org/film.xq";
for $d in ("xrpc://y.example.org")
return execute at {$d} {tst:echo("hi")}`, nil)
	if got := xdm.SerializeSequence(seq); got != "hi" {
		t.Errorf("got %q", got)
	}
}

func TestUpdatingCallOverBulkRPC(t *testing.T) {
	f := newFixture(t)
	upd := `
module namespace u="upd";
declare updating function u:addFilm($name as xs:string, $actor as xs:string)
{ insert node <film><name>{$name}</name><actor>{$actor}</actor></film> into doc("filmDB.xml")/films };`
	if err := f.reg.Register(upd, "http://x.example.org/upd.xq"); err != nil {
		t.Fatal(err)
	}
	f.eval(t, `
import module namespace u="upd" at "http://x.example.org/upd.xq";
for $n in ("A", "B")
return execute at {"xrpc://y.example.org"} {u:addFilm($n, "X")}`, nil)
	// rule R_Fu: applied immediately (no queryID); both inserts in 1 request
	if f.ySrv.ServedRequests != 1 {
		t.Errorf("y served %d requests, want 1", f.ySrv.ServedRequests)
	}
	res, err := soap.DecodeResponse(mustHandle(t, f.ySrv, &soap.Request{
		Module: "films", Method: "filmsByActor", Arity: 1,
		Location: "http://x.example.org/film.xq",
		Calls:    [][]xdm.Sequence{{{xdm.String("X")}}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results[0]) != 2 {
		t.Errorf("films by X after bulk update = %d, want 2", len(res.Results[0]))
	}
}

func mustHandle(t *testing.T, s *server.Server, req *soap.Request) []byte {
	t.Helper()
	out, err := s.HandleXRPC("/xrpc", soap.EncodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestTypeswitchBoth(t *testing.T) {
	f := newFixture(t)
	queries := []string{
		`typeswitch (5) case xs:integer return "int" default return "other"`,
		`for $x in (1, "a", 2.5, <e/>)
		 return typeswitch ($x)
		        case xs:integer return "i"
		        case xs:string return "s"
		        case element() return "e"
		        default return "d"`,
		`typeswitch (()) case empty-sequence() return "empty" default return "full"`,
		`for $x in (1 to 4)
		 return typeswitch ($x mod 2)
		        case $even as xs:integer return $even + 10
		        default return 0`,
		`"42" castable as xs:integer`,
		`for $s in ("1", "x", "3") return $s castable as xs:integer`,
		`5 instance of xs:integer`,
		`for $x in (1, "a") return $x instance of xs:string`,
	}
	for _, q := range queries {
		f.evalBoth(t, q)
	}
}

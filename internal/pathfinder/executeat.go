package pathfinder

import (
	"strings"

	"xrpc/internal/algebra"
	"xrpc/internal/client"
	"xrpc/internal/interp"
	"xrpc/internal/xdm"
	"xrpc/internal/xq"
)

// argKey builds a value-identity key for one call argument. Because XRPC
// parameters travel by value (§2.2), two arguments that serialize
// identically produce identical remote calls and may share one δ'd call.
func argKey(seq xdm.Sequence) string {
	var b strings.Builder
	for _, it := range seq {
		if n, ok := it.(*xdm.Node); ok {
			b.WriteString("n:")
			xdm.WriteNode(&b, n)
		} else {
			b.WriteString(it.TypeName())
			b.WriteByte(':')
			b.WriteString(it.StringValue())
		}
		b.WriteByte('\x01')
	}
	return b.String()
}

// compileExecuteAt implements the relational translation rule of
// Figure 2 of the paper:
//
//	execute at { dst } { f(param_1, …, param_n) }  ⇒  result
//
//	map_p  = π_iter,iterp ( ρ_iterp ( σ_item=p (dst) ) )
//	req_ip = π_iterp,pos,item ( ρ_pos ( ⋈_iter (map_p, param_i) ) )
//	msg_p  = f(req_1p, …, req_np) @ p            -- one Bulk RPC per peer
//	res_p  = π_iter,pos,item ( ⋈_iterp (msg_p, map_p) )
//	result = ∪_{p ∈ δ(dst.item)} res_p
//
// All loop iterations that target the same peer travel in a single Bulk
// RPC request; distinct peers are dispatched in parallel (§3.2
// "Parallel & Out-Of-Order").
func (env *staticEnv) compileExecuteAt(n *xq.ExecuteAt) (Plan, error) {
	destPlan, err := env.compile(n.Dest)
	if err != nil {
		return nil, err
	}
	f, mod, atHint, ok := env.comp.lookupFunc(env.module, n.Call.Name, len(n.Call.Args))
	if !ok {
		return nil, unsupported("execute at of undeclared function " + n.Call.Name)
	}
	paramPlans := make([]Plan, len(n.Call.Args))
	for i, a := range n.Call.Args {
		p, err := env.compile(a)
		if err != nil {
			return nil, err
		}
		paramPlans[i] = p
	}
	decl := f
	moduleURI := mod.ModuleURI
	return func(ec *ExecCtx, sc *scope) (*algebra.Table, error) {
		if ec.Bulk == nil {
			return nil, xdm.NewError("XRPC0001", "no RPC transport configured for execute at")
		}
		dst, err := destPlan(ec, sc)
		if err != nil {
			return nil, err
		}
		params := make([]*algebra.Table, len(paramPlans))
		for i, pp := range paramPlans {
			t, err := pp(ec, sc)
			if err != nil {
				return nil, err
			}
			params[i] = t
		}
		return execBulkRPC(ec, sc, dst, params, decl, moduleURI, atHint)
	}, nil
}

// execBulkRPC is the runtime of the Figure 2 rule.
func execBulkRPC(ec *ExecCtx, sc *scope, dst *algebra.Table, params []*algebra.Table,
	decl *xq.FuncDecl, moduleURI, atHint string) (*algebra.Table, error) {

	dstByIter, err := singletonByIter(dst, "execute at destination")
	if err != nil {
		return nil, err
	}
	paramGroups := make([]map[int64]xdm.Sequence, len(params))
	for i, p := range params {
		paramGroups[i] = groupByIter(p)
	}

	// iteration order and the unique peer list δ(dst.item), preserving
	// first-appearance order
	iters := itersOf(sc.loop)
	var peers []string
	peerSeen := map[string]bool{}
	iterPeer := map[int64]string{}
	var liveIters []int64
	for _, it := range iters {
		d, ok := dstByIter[it]
		if !ok {
			continue // empty destination: no call in this iteration
		}
		peer := d.StringValue()
		iterPeer[it] = peer
		liveIters = append(liveIters, it)
		if !peerSeen[peer] {
			peerSeen[peer] = true
			peers = append(peers, peer)
		}
	}

	var trace *Trace
	if ec.Trace != nil {
		trace = ec.Trace
		trace.Dst = dst
		trace.PerPeer = nil
	}

	// build one Bulk RPC per peer: map table + per-parameter req tables
	parts := make([]*client.BulkByDest, 0, len(peers))
	origOf := map[int64]int{}
	for i, it := range liveIters {
		origOf[it] = i
	}
	// duplicate elimination: many iterations may request the very same
	// call (a loop-invariant execute-at, or repeated semi-join probe
	// keys). Read-only duplicate calls are removed with δ and the single
	// result fanned back out to every requesting iteration; updating
	// calls run once per iteration (each application has its own side
	// effects). One-at-a-time mode also skips δ — it models the naive
	// mechanism of Table 2 faithfully.
	dedupe := !decl.Updating && !ec.OneAtATime && !ec.NoDedup
	var seqBase int64
	if decl.Updating {
		// one disjoint sequence-number block per execute-at evaluation
		seqBase = ec.nextSeqSite() << 24
	}
	totalCalls := 0
	callOfIter := make([]int, len(liveIters)) // liveIter index -> global call index
	for _, peer := range peers {
		var mapTbl *algebra.Table
		var reqTbls []*algebra.Table
		if trace != nil {
			mapTbl = algebra.NewTable("iter", "iterp")
			reqTbls = make([]*algebra.Table, len(params))
			for i := range reqTbls {
				reqTbls[i] = algebra.NewTable("iterp", algebra.ColPos, algebra.ColItem)
			}
		}
		br := &client.BulkRequest{
			ModuleURI: moduleURI,
			AtHint:    atHint,
			Func:      decl.LocalName(),
			Arity:     decl.Arity(),
			Updating:  decl.Updating,
		}
		var origIdx []int // call index within part -> global call index
		seenCall := map[string]int{}
		seenIterp := map[string]int64{}
		iterp := int64(0)
		for li, it := range liveIters {
			if iterPeer[it] != peer {
				continue
			}
			args := make([]xdm.Sequence, len(params))
			var keyB strings.Builder
			for i := range params {
				// the caller performs parameter up-casting (§2.2)
				conv, err := interp.ConvertParam(paramGroups[i][it], decl.Params[i].Type)
				if err != nil {
					return nil, err
				}
				args[i] = conv
				if dedupe {
					keyB.WriteString(argKey(conv))
					keyB.WriteByte('\x00')
				}
			}
			if dedupe {
				if gc, dup := seenCall[keyB.String()]; dup {
					callOfIter[li] = gc
					if trace != nil {
						mapTbl.Append(xdm.Integer(it), xdm.Integer(seenIterp[keyB.String()]))
					}
					continue
				}
				seenCall[keyB.String()] = totalCalls
				seenIterp[keyB.String()] = iterp + 1
			}
			iterp++
			br.Calls = append(br.Calls, args)
			if decl.Updating {
				// deterministic update order: ship the original query
				// position of this iteration so the peer applies the
				// pending updates in query order despite the bulk's
				// out-of-order execution
				br.SeqNrs = append(br.SeqNrs, seqBase|int64(origOf[it]))
			}
			origIdx = append(origIdx, totalCalls)
			callOfIter[li] = totalCalls
			totalCalls++
			if trace != nil {
				mapTbl.Append(xdm.Integer(it), xdm.Integer(iterp))
				for i, arg := range args {
					for p, item := range arg {
						reqTbls[i].Append(xdm.Integer(iterp), xdm.Integer(p+1), item)
					}
				}
			}
		}
		parts = append(parts, &client.BulkByDest{Dest: peer, Request: br, OrigIdx: origIdx})
		if trace != nil {
			trace.PerPeer = append(trace.PerPeer, &PeerTrace{Peer: peer, Map: mapTbl, Req: reqTbls})
		}
	}

	// dispatch: bulk in parallel (default), sequential bulk, or
	// one-at-a-time (the Table 2 comparison mode)
	callResults := make([]xdm.Sequence, totalCalls)
	switch {
	case ec.OneAtATime:
		for _, part := range parts {
			res, err := ec.Bulk.CallOneAtATime(part.Dest, part.Request)
			if err != nil {
				return nil, err
			}
			for j, seq := range res {
				callResults[part.OrigIdx[j]] = seq
			}
		}
	case ec.Sequential || len(parts) <= 1:
		for _, part := range parts {
			res, err := ec.Bulk.CallBulk(part.Dest, part.Request)
			if err != nil {
				return nil, err
			}
			for j, seq := range res {
				callResults[part.OrigIdx[j]] = seq
			}
		}
	default:
		res, err := ec.Bulk.CallParallel(parts, totalCalls)
		if err != nil {
			return nil, err
		}
		callResults = res
	}
	// fan results back out to the iterations
	results := make([]xdm.Sequence, len(liveIters))
	for li := range liveIters {
		results[li] = callResults[callOfIter[li]]
	}

	// map results back into the outer loop: res_p = msg_p ⋈ map_p, then
	// the merge-union over peers realized by emitting in iter order
	out := seqTable()
	for i, it := range liveIters {
		for p, item := range results[i] {
			out.AppendSeq(it, int64(p+1), item)
		}
	}
	if trace != nil {
		for pi, part := range parts {
			msg := algebra.NewTable("iterp", algebra.ColPos, algebra.ColItem)
			res := seqTable()
			for j, gc := range part.OrigIdx {
				for p, item := range callResults[gc] {
					msg.Append(xdm.Integer(j+1), xdm.Integer(p+1), item)
				}
			}
			for li, it := range liveIters {
				if iterPeer[it] != part.Dest {
					continue
				}
				for p, item := range results[li] {
					res.Append(xdm.Integer(it), xdm.Integer(p+1), item)
				}
			}
			trace.PerPeer[pi].Msg = msg
			trace.PerPeer[pi].Res = res
		}
		trace.Result = out
	}
	return out, nil
}

package pathfinder

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xrpc/internal/interp"
	"xrpc/internal/xdm"
)

// qgen generates random queries from the subset both engines support.
// Generated queries avoid runtime errors by construction (no division,
// small integers, bound variables only).
type qgen struct {
	r     *rand.Rand
	vars  []string
	nvars int
}

func (g *qgen) pick(weights ...int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	n := g.r.Intn(total)
	for i, w := range weights {
		if n < w {
			return i
		}
		n -= w
	}
	return 0
}

// expr produces an arbitrary expression (any sequence).
func (g *qgen) expr(depth int) string {
	if depth <= 0 {
		return g.atom()
	}
	switch g.pick(3, 2, 2, 2, 2, 1, 1, 1, 2) {
	case 0:
		return g.atom()
	case 1: // arithmetic
		return fmt.Sprintf("(%s %s %s)", g.num(depth-1), []string{"+", "-", "*"}[g.r.Intn(3)], g.num(depth-1))
	case 2: // sequence
		return fmt.Sprintf("(%s, %s)", g.expr(depth-1), g.expr(depth-1))
	case 3: // range
		lo := g.r.Intn(4)
		return fmt.Sprintf("(%d to %d)", lo, lo+g.r.Intn(4))
	case 4: // FLWOR
		return g.flwor(depth - 1)
	case 5: // if
		return fmt.Sprintf("(if (%s) then %s else %s)", g.boolean(depth-1), g.expr(depth-1), g.expr(depth-1))
	case 6: // aggregate
		return fmt.Sprintf("%s(%s)", []string{"count", "sum"}[g.r.Intn(2)], g.numseq(depth-1))
	case 7: // path over the film db
		return g.path()
	default: // string function
		return fmt.Sprintf("concat(%s, %s)", g.str(depth-1), g.str(depth-1))
	}
}

// num produces a singleton numeric expression.
func (g *qgen) num(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		if len(g.vars) > 0 && g.r.Intn(3) == 0 {
			return "$" + g.vars[g.r.Intn(len(g.vars))]
		}
		return fmt.Sprintf("%d", g.r.Intn(7))
	}
	switch g.pick(3, 2, 1) {
	case 0:
		return fmt.Sprintf("(%s %s %s)", g.num(depth-1), []string{"+", "-", "*"}[g.r.Intn(3)], g.num(depth-1))
	case 1:
		return fmt.Sprintf("count(%s)", g.expr(depth-1))
	default:
		return fmt.Sprintf("sum(%s)", g.numseq(depth-1))
	}
}

// numseq produces a sequence of numbers.
func (g *qgen) numseq(depth int) string {
	if depth <= 0 {
		return fmt.Sprintf("(%d, %d)", g.r.Intn(5), g.r.Intn(5))
	}
	switch g.pick(2, 2, 1) {
	case 0:
		lo := g.r.Intn(3)
		return fmt.Sprintf("(%d to %d)", lo, lo+g.r.Intn(4))
	case 1:
		return fmt.Sprintf("(%s, %s)", g.num(depth-1), g.numseq(depth-1))
	default:
		in := g.numseq(depth - 1)
		v := g.freshVar()
		inner := fmt.Sprintf("for $%s in %s return $%s * 2", v, in, v)
		g.dropVar()
		return "(" + inner + ")"
	}
}

// str produces a singleton string expression.
func (g *qgen) str(depth int) string {
	words := []string{`"a"`, `"bc"`, `"xy z"`, `""`}
	if depth <= 0 || g.r.Intn(2) == 0 {
		return words[g.r.Intn(len(words))]
	}
	return fmt.Sprintf("concat(%s, %s)", g.str(depth-1), g.str(depth-1))
}

// boolean produces a boolean expression.
func (g *qgen) boolean(depth int) string {
	if depth <= 0 {
		return []string{"true()", "false()", "1 < 2", "2 eq 3"}[g.r.Intn(4)]
	}
	switch g.pick(3, 2, 2, 1) {
	case 0:
		op := []string{"=", "<", "<=", ">", "!="}[g.r.Intn(5)]
		return fmt.Sprintf("(%s %s %s)", g.num(depth-1), op, g.num(depth-1))
	case 1:
		return fmt.Sprintf("(%s %s %s)", g.boolean(depth-1), []string{"and", "or"}[g.r.Intn(2)], g.boolean(depth-1))
	case 2:
		return fmt.Sprintf("%s(%s)", []string{"exists", "empty", "not"}[g.r.Intn(3)], g.expr(depth-1))
	default:
		in := g.numseq(depth - 1)
		v := g.freshVar()
		out := fmt.Sprintf("(some $%s in %s satisfies $%s > 1)", v, in, v)
		g.dropVar()
		return out
	}
}

func (g *qgen) flwor(depth int) string {
	in := g.numseq(depth) // generate before binding: $v not in scope here
	v := g.freshVar()
	var sb strings.Builder
	fmt.Fprintf(&sb, "(for $%s in %s ", v, in)
	if g.r.Intn(2) == 0 {
		fmt.Fprintf(&sb, "where %s ", g.boolean(depth))
	}
	fmt.Fprintf(&sb, "return %s)", g.expr(depth))
	g.dropVar()
	return sb.String()
}

func (g *qgen) atom() string {
	switch g.pick(3, 2, 1, 1) {
	case 0:
		if len(g.vars) > 0 && g.r.Intn(2) == 0 {
			return "$" + g.vars[g.r.Intn(len(g.vars))]
		}
		return fmt.Sprintf("%d", g.r.Intn(9))
	case 1:
		return []string{`"s"`, `"t u"`, "3.5", "()"}[g.r.Intn(4)]
	case 2:
		return "true()"
	default:
		return g.path()
	}
}

func (g *qgen) path() string {
	paths := []string{
		`doc("filmDB.xml")//film/name`,
		`doc("filmDB.xml")//actor`,
		`count(doc("filmDB.xml")//film)`,
		`doc("filmDB.xml")/films/film[1]/name`,
		`doc("filmDB.xml")//name[../actor="Sean Connery"]`,
		`string((doc("filmDB.xml")//actor)[1])`,
	}
	return paths[g.r.Intn(len(paths))]
}

func (g *qgen) freshVar() string {
	g.nvars++
	v := fmt.Sprintf("v%d", g.nvars)
	g.vars = append(g.vars, v)
	return v
}

func (g *qgen) dropVar() {
	g.vars = g.vars[:len(g.vars)-1]
}

// TestDifferentialEngines generates hundreds of random queries and
// requires the loop-lifting engine and the interpreter to agree on every
// one of them (same result or both erroring).
func TestDifferentialEngines(t *testing.T) {
	f := newFixture(t)
	refEngine := interp.New(f.st, f.reg, nil)
	const n = 400
	skipped := 0
	for seed := 0; seed < n; seed++ {
		g := &qgen{r: rand.New(rand.NewSource(int64(seed)))}
		query := g.expr(4)

		pfc, pfErr := Compile(query, f.reg)
		var pfSeq xdm.Sequence
		if pfErr == nil {
			pfSeq, pfErr = pfc.Eval(&ExecCtx{Docs: f.st}, nil)
		}
		if pfErr != nil && strings.Contains(pfErr.Error(), "not supported") {
			skipped++
			continue
		}
		ic, iErr := refEngine.Compile(query)
		var iSeq xdm.Sequence
		if iErr == nil {
			iSeq, _, iErr = ic.Eval(nil)
		}
		switch {
		case pfErr == nil && iErr == nil:
			got, want := xdm.SerializeSequence(pfSeq), xdm.SerializeSequence(iSeq)
			if got != want {
				t.Fatalf("seed %d: engines disagree\nquery: %s\npathfinder: %s\ninterp:     %s",
					seed, query, got, want)
			}
		case pfErr != nil && iErr != nil:
			// both reject: fine
		default:
			t.Fatalf("seed %d: one engine errored\nquery: %s\npathfinder err: %v\ninterp err:     %v",
				seed, query, pfErr, iErr)
		}
	}
	if skipped > n/4 {
		t.Errorf("too many generated queries unsupported by pathfinder: %d/%d", skipped, n)
	}
}

package pathfinder

import (
	"fmt"
	"strings"

	"xrpc/internal/xdm"
	"xrpc/internal/xq"
)

// RouteKey is the routing predicate derived from one function of a
// library module: parameter Param of every call is compared against the
// KeyAttr attribute of a container in Doc, and the function's result on
// a peer that does not hold a matching container row is provably empty
// (and its side effects touch only matching rows). It is the
// compiler-level half of a cluster.RouteSpec — the cluster layer still
// has to match (Doc, PathSuffix, KeyAttr) against the routing table's
// partitioned containers before the spec may prune anything.
type RouteKey struct {
	// Func is the function's local name; Param the key parameter index.
	Func  string
	Param int
	// Doc is the document literal the keyed access is rooted at.
	Doc string
	// PathSuffix locates the keyed container: when Rooted it is the full
	// rooted element path ("/site/people/person"), otherwise the step
	// suffix following the last descendant axis ("person",
	// "people/person") which must match the tail of a container path.
	PathSuffix string
	Rooted     bool
	// KeyAttr is the attribute compared; Op the comparison with the
	// attribute on the left ("=", "<", "<=", ">", ">=").
	KeyAttr string
	Op      string
}

func (k RouteKey) String() string {
	p := k.PathSuffix
	if !k.Rooted {
		p = "…/" + p
	}
	return fmt.Sprintf("%s($%d) via %s %s[@%s %s key]", k.Func, k.Param, k.Doc, p, k.KeyAttr, k.Op)
}

// RouteMiss records why a function could not be derived. Underivable
// functions are never misrouted — the coordinator falls back to
// broadcast, which is correct for any function.
type RouteMiss struct {
	Func   string
	Reason string
}

// DeriveRouteKeys statically analyses every function of a library
// module and derives a RouteKey for each function that provably routes:
// the body must contain exactly one keyed access pattern — a comparison
// between a container attribute and one parameter — and the whole body
// must be *empty-on-miss*: evaluated on a peer whose fragment has no
// container row matching the key, the result is the empty sequence and
// no update primitive targets a node. Anything the analysis cannot
// prove is reported as a RouteMiss instead of guessed at.
func DeriveRouteKeys(m *xq.Module) ([]RouteKey, []RouteMiss) {
	var keys []RouteKey
	var misses []RouteMiss
	for _, fn := range m.Functions {
		k, err := deriveFunc(m, fn)
		if err != nil {
			misses = append(misses, RouteMiss{Func: fn.LocalName(), Reason: err.Error()})
			continue
		}
		keys = append(keys, *k)
	}
	return keys, misses
}

// keySig is one observed keyed-access signature (phase A).
type keySig struct {
	doc, suffix string
	rooted      bool
	attr, op    string
	param       string
}

func deriveFunc(m *xq.Module, fn *xq.FuncDecl) (*RouteKey, error) {
	if fn.External || fn.Body == nil {
		return nil, fmt.Errorf("external function")
	}
	if len(fn.Params) == 0 {
		return nil, fmt.Errorf("no parameters to key on")
	}
	d := &deriver{m: m, fn: fn}
	// phase A: collect every keyed-access signature in the body; they
	// must agree on exactly one (doc, container, attribute, param, op).
	d.collect(fn.Body, nil)
	if len(d.sigs) == 0 {
		return nil, fmt.Errorf("no comparison between a container attribute and a parameter")
	}
	sig := d.sigs[0]
	for _, s := range d.sigs[1:] {
		if s != sig {
			return nil, fmt.Errorf("conflicting key comparisons (%s[@%s %s $%s] vs %s[@%s %s $%s])",
				sig.suffix, sig.attr, sig.op, sig.param, s.suffix, s.attr, s.op, s.param)
		}
	}
	// phase B: the body must be provably empty (and side-effect free)
	// when no container row matches the key.
	if !d.keyed(fn.Body, sig, nil) {
		return nil, fmt.Errorf("body is not provably empty when the key misses (result may be non-empty on non-owning peers)")
	}
	param := -1
	for i, p := range fn.Params {
		if p.Name == sig.param {
			param = i
		}
	}
	if param < 0 {
		return nil, fmt.Errorf("key variable $%s is not a parameter", sig.param)
	}
	return &RouteKey{
		Func: fn.LocalName(), Param: param,
		Doc: sig.doc, PathSuffix: sig.suffix, Rooted: sig.rooted,
		KeyAttr: sig.attr, Op: sig.op,
	}, nil
}

type deriver struct {
	m    *xq.Module
	fn   *xq.FuncDecl
	sigs []keySig
}

// isParam reports whether name is a function parameter not shadowed by
// an enclosing binding.
func (d *deriver) isParam(name string, shadow map[string]bool) bool {
	if shadow[name] {
		return false
	}
	for _, p := range d.fn.Params {
		if p.Name == name {
			return true
		}
	}
	return false
}

// docLit unwraps doc("literal") / fn:doc("literal") root calls.
func docLit(e xq.Expr) (string, bool) {
	c, ok := e.(*xq.FuncCall)
	if !ok || len(c.Args) != 1 {
		return "", false
	}
	if n := localOf(c.Name); n != "doc" {
		return "", false
	}
	s, ok := c.Args[0].(*xq.StringLit)
	if !ok {
		return "", false
	}
	return s.Val, true
}

func localOf(name string) string {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// paramRef unwraps the parameter side of a key comparison: a bare $p,
// data($p), or — for parameters already declared xs:string — the
// identity wrappers string($p)/xs:string($p).
func (d *deriver) paramRef(e xq.Expr, shadow map[string]bool) (string, bool) {
	switch x := e.(type) {
	case *xq.VarRef:
		if d.isParam(x.Name, shadow) {
			return x.Name, true
		}
	case *xq.FuncCall:
		if len(x.Args) != 1 {
			return "", false
		}
		v, ok := x.Args[0].(*xq.VarRef)
		if !ok || !d.isParam(v.Name, shadow) {
			return "", false
		}
		switch localOf(x.Name) {
		case "data":
			return v.Name, true
		case "string":
			for _, p := range d.fn.Params {
				if p.Name == v.Name && p.Type.TypeName == "xs:string" {
					return v.Name, true
				}
			}
		}
	}
	return "", false
}

// attrName matches the attribute side: @a or ./@a (a single
// attribute-axis step with no predicates).
func attrName(e xq.Expr) (string, bool) {
	p, ok := e.(*xq.Path)
	if !ok || p.FromRoot || len(p.RootPreds) != 0 || len(p.Steps) != 1 {
		return "", false
	}
	if p.Root != nil {
		if _, isCtx := p.Root.(*xq.ContextItem); !isCtx {
			return "", false
		}
	}
	s := p.Steps[0]
	if s.Axis != xdm.AxisAttribute || s.Test.KindTest || s.Test.Name == "*" ||
		s.Test.Name == "" || len(s.Preds) != 0 {
		return "", false
	}
	return s.Test.Name, true
}

// flip mirrors a comparison operator when the operands are swapped.
var flip = map[string]string{"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}

// normOp maps value-comparison keywords onto the symbol forms.
var normOp = map[string]string{
	"=": "=", "eq": "=",
	"<": "<", "lt": "<", "<=": "<=", "le": "<=",
	">": ">", "gt": ">", ">=": ">=", "ge": ">=",
}

// stringParam reports whether the named parameter is declared
// xs:string. Key comparisons are derivable only for string-typed
// parameters: against an untyped or numeric parameter the general
// comparison is numeric, and numeric order disagrees with the orders
// shard key bounds are checked in — "90" < 100 numerically but
// "90" > "100" in codepoints, and @id = 7 matches a "007" row that
// natural-order bounds place below the key "7" — so pruning could drop
// a shard holding a matching row. A string-typed parameter pins the
// comparison to string semantics, which the shard bounds model exactly.
func (d *deriver) stringParam(name string) bool {
	for _, p := range d.fn.Params {
		if p.Name == name {
			return p.Type.TypeName == "xs:string"
		}
	}
	return false
}

// keyCompare matches one conjunct of a step predicate against the
// keyed-comparison shape @attr op $param (either operand order).
func (d *deriver) keyCompare(e xq.Expr, shadow map[string]bool) (attr, op, param string, ok bool) {
	c, isCmp := e.(*xq.Comparison)
	if !isCmp || c.Node {
		return "", "", "", false
	}
	sym, known := normOp[c.Op]
	if !known {
		return "", "", "", false
	}
	if a, aok := attrName(c.L); aok {
		if p, pok := d.paramRef(c.R, shadow); pok && d.stringParam(p) {
			return a, sym, p, true
		}
	}
	if a, aok := attrName(c.R); aok {
		if p, pok := d.paramRef(c.L, shadow); pok && d.stringParam(p) {
			return a, flip[sym], p, true
		}
	}
	return "", "", "", false
}

// conjuncts flattens an and-chain.
func conjuncts(e xq.Expr, out []xq.Expr) []xq.Expr {
	if l, ok := e.(*xq.Logic); ok && l.Op == "and" {
		return conjuncts(l.R, conjuncts(l.L, out))
	}
	return append(out, e)
}

// pathSig scans a doc-rooted path for a keyed step and returns its
// signature. The signature records where the keyed container sits: the
// rooted child-step chain when the path never used a descendant axis,
// or the step suffix since the last descendant step otherwise.
func (d *deriver) pathSig(p *xq.Path, shadow map[string]bool) (keySig, bool) {
	doc, ok := docLit(p.Root)
	if !ok {
		return keySig{}, false
	}
	var names []string // element-step names since the last descendant axis
	rooted := true
	for _, s := range p.Steps {
		switch s.Axis {
		case xdm.AxisChild:
			if s.Test.KindTest || s.Test.Name == "*" || s.Test.Name == "" {
				return keySig{}, false
			}
			names = append(names, s.Test.Name)
		case xdm.AxisDescendant, xdm.AxisDescendantOrSelf:
			rooted = false
			if s.Test.KindTest || s.Test.Name == "*" || s.Test.Name == "" {
				names = nil // bare // separator: container position resets
				continue
			}
			names = []string{s.Test.Name}
		default:
			return keySig{}, false
		}
		for _, pred := range s.Preds {
			for _, cj := range conjuncts(pred, nil) {
				if attr, op, param, ok := d.keyCompare(cj, shadow); ok {
					suffix := strings.Join(names, "/")
					if rooted {
						suffix = "/" + suffix
					}
					return keySig{doc: doc, suffix: suffix, rooted: rooted,
						attr: attr, op: op, param: param}, true
				}
			}
		}
	}
	return keySig{}, false
}

// collect gathers every keyed-access signature in the expression,
// tracking variable bindings that shadow parameters.
func (d *deriver) collect(e xq.Expr, shadow map[string]bool) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *xq.Path:
		if sig, ok := d.pathSig(x, shadow); ok {
			d.sigs = append(d.sigs, sig)
		}
		d.collect(x.Root, shadow)
		for _, p := range x.RootPreds {
			d.collect(p, shadow)
		}
		for _, s := range x.Steps {
			for _, p := range s.Preds {
				d.collect(p, shadow)
			}
		}
	case *xq.FLWOR:
		sh := copyShadow(shadow)
		for _, cl := range x.Clauses {
			switch c := cl.(type) {
			case *xq.ForClause:
				d.collect(c.In, sh)
				sh[c.Var] = true
				if c.PosVar != "" {
					sh[c.PosVar] = true
				}
			case *xq.LetClause:
				d.collect(c.Val, sh)
				sh[c.Var] = true
			}
		}
		d.collect(x.Where, sh)
		for _, o := range x.OrderBy {
			d.collect(o.Key, sh)
		}
		d.collect(x.Return, sh)
	case *xq.Quantified:
		d.collect(x.In, shadow)
		sh := copyShadow(shadow)
		sh[x.Var] = true
		d.collect(x.Satisfies, sh)
	case *xq.Typeswitch:
		d.collect(x.Operand, shadow)
		for _, c := range x.Cases {
			sh := shadow
			if c.Var != "" {
				sh = copyShadow(shadow)
				sh[c.Var] = true
			}
			d.collect(c.Ret, sh)
		}
		sh := shadow
		if x.DefaultVar != "" {
			sh = copyShadow(shadow)
			sh[x.DefaultVar] = true
		}
		d.collect(x.Default, sh)
	case *xq.SeqExpr:
		for _, it := range x.Items {
			d.collect(it, shadow)
		}
	case *xq.RangeExpr:
		d.collect(x.Lo, shadow)
		d.collect(x.Hi, shadow)
	case *xq.Arith:
		d.collect(x.L, shadow)
		d.collect(x.R, shadow)
	case *xq.Unary:
		d.collect(x.X, shadow)
	case *xq.Comparison:
		d.collect(x.L, shadow)
		d.collect(x.R, shadow)
	case *xq.Logic:
		d.collect(x.L, shadow)
		d.collect(x.R, shadow)
	case *xq.UnionExpr:
		d.collect(x.L, shadow)
		d.collect(x.R, shadow)
	case *xq.If:
		d.collect(x.Cond, shadow)
		d.collect(x.Then, shadow)
		d.collect(x.Else, shadow)
	case *xq.FuncCall:
		for _, a := range x.Args {
			d.collect(a, shadow)
		}
	case *xq.ExecuteAt:
		d.collect(x.Dest, shadow)
		if x.Call != nil {
			d.collect(x.Call, shadow)
		}
	case *xq.DirElem:
		for _, a := range x.Attrs {
			for _, v := range a.Value {
				d.collect(v, shadow)
			}
		}
		for _, c := range x.Content {
			d.collect(c, shadow)
		}
	case *xq.Enclosed:
		d.collect(x.X, shadow)
	case *xq.CompElem:
		d.collect(x.Name, shadow)
		d.collect(x.Content, shadow)
	case *xq.CompAttr:
		d.collect(x.Name, shadow)
		d.collect(x.Value, shadow)
	case *xq.CompText:
		d.collect(x.Val, shadow)
	case *xq.Cast:
		d.collect(x.X, shadow)
	case *xq.Castable:
		d.collect(x.X, shadow)
	case *xq.InstanceOf:
		d.collect(x.X, shadow)
	case *xq.Insert:
		d.collect(x.Source, shadow)
		d.collect(x.Target, shadow)
	case *xq.Delete:
		d.collect(x.Target, shadow)
	case *xq.Replace:
		d.collect(x.Target, shadow)
		d.collect(x.Source, shadow)
	case *xq.Rename:
		d.collect(x.Target, shadow)
		d.collect(x.NewName, shadow)
	}
}

// shadowOf views a keyedness environment as a shadow set: every bound
// variable, keyed or not, hides a same-named parameter.
func shadowOf(env map[string]bool) map[string]bool {
	if len(env) == 0 {
		return nil
	}
	sh := make(map[string]bool, len(env))
	for k := range env {
		sh[k] = true
	}
	return sh
}

func copyShadow(shadow map[string]bool) map[string]bool {
	sh := make(map[string]bool, len(shadow)+2)
	for k, v := range shadow {
		sh[k] = v
	}
	return sh
}

// emptyPreserving names the built-ins whose result is empty whenever
// their first argument is empty. Notably absent: fn:string (string(())
// is "", a non-empty singleton), fn:count, fn:exists, fn:empty,
// fn:exactly-one (raises instead of staying empty).
var emptyPreserving = map[string]bool{
	"data":            true,
	"distinct-values": true,
	"reverse":         true,
	"unordered":       true,
	"subsequence":     true,
	"zero-or-one":     true,
	"trace":           true,
}

// keyed is the phase-B emptiness proof: it reports whether the
// expression is provably empty — producing no items and performing no
// updates — on a peer whose fragment holds no container row matching
// the key signature. env carries the keyedness of enclosing FLWOR/let
// bindings; nil entries absent means unkeyed.
func (d *deriver) keyed(e xq.Expr, sig keySig, env map[string]bool) bool {
	if e == nil {
		return true
	}
	switch x := e.(type) {
	case *xq.EmptySeq:
		return true
	case *xq.Path:
		// a doc-rooted path is keyed iff it carries the key signature
		// itself; a path rooted elsewhere inherits its root's keyedness
		// (steps and predicates preserve emptiness).
		if _, isDoc := docLit(x.Root); isDoc {
			// every env entry is a locally-bound variable shadowing any
			// same-named parameter, so env doubles as the shadow set
			s, ok := d.pathSig(x, shadowOf(env))
			return ok && s == sig
		}
		if v, isVar := x.Root.(*xq.VarRef); isVar {
			return env[v.Name]
		}
		if x.Root == nil {
			return false // context-item or "/"-rooted: unknowable here
		}
		return d.keyed(x.Root, sig, env)
	case *xq.VarRef:
		return env[x.Name]
	case *xq.SeqExpr:
		for _, it := range x.Items {
			if !d.keyed(it, sig, env) {
				return false
			}
		}
		return true
	case *xq.UnionExpr:
		return d.keyed(x.L, sig, env) && d.keyed(x.R, sig, env)
	case *xq.If:
		return d.keyed(x.Then, sig, env) && d.keyed(x.Else, sig, env)
	case *xq.FLWOR:
		envc := copyShadow(env)
		forKeyed := false
		for _, cl := range x.Clauses {
			switch c := cl.(type) {
			case *xq.ForClause:
				kw := d.keyed(c.In, sig, envc)
				if kw {
					// iterating an empty binding sequence: the return
					// clause never runs, so the whole FLWOR is empty.
					forKeyed = true
				}
				envc[c.Var] = kw
				if c.PosVar != "" {
					envc[c.PosVar] = false
				}
			case *xq.LetClause:
				envc[c.Var] = d.keyed(c.Val, sig, envc)
			}
		}
		return forKeyed || d.keyed(x.Return, sig, envc)
	case *xq.FuncCall:
		if emptyPreserving[localOf(x.Name)] && len(x.Args) >= 1 {
			return d.keyed(x.Args[0], sig, env)
		}
		return false
	case *xq.Typeswitch:
		for _, c := range x.Cases {
			envc := env
			if c.Var != "" {
				envc = copyShadow(env)
				envc[c.Var] = false
			}
			if !d.keyed(c.Ret, sig, envc) {
				return false
			}
		}
		envd := env
		if x.DefaultVar != "" {
			envd = copyShadow(env)
			envd[x.DefaultVar] = false
		}
		return d.keyed(x.Default, sig, envd)
	case *xq.Insert:
		return d.keyed(x.Target, sig, env)
	case *xq.Delete:
		return d.keyed(x.Target, sig, env)
	case *xq.Replace:
		return d.keyed(x.Target, sig, env)
	case *xq.Rename:
		return d.keyed(x.Target, sig, env)
	}
	// literals, constructors, comparisons, arithmetic, quantified
	// expressions, casts, execute-at, …: all may produce items (or reach
	// other peers) even when the key is absent.
	return false
}

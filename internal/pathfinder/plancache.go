package pathfinder

import (
	"sync/atomic"

	"xrpc/internal/cache"
	"xrpc/internal/modules"
	"xrpc/internal/xq"
)

// Plan cache bounds (source length is the size proxy, as in the
// server-side function cache).
const (
	DefaultPlanCacheBytes   = 16 << 20
	DefaultPlanCacheEntries = 1024
)

// PlanCache memoizes loop-lifted compilations keyed on normalized query
// text (xq.Normalize): two query texts differing only in layout or
// comments share one compiled plan. Compiled plans are immutable and
// safe for concurrent Eval, so sharing is free.
//
// The fence is the registry generation: query plans close over imported
// module definitions, and this compiler has no per-plan dependency
// record, so any module (re-)registration conservatively invalidates
// every cached query plan. (Granular per-module invalidation lives in
// the server executor, which compiles modules one at a time.)
type PlanCache struct {
	reg          *modules.Registry
	lru          *cache.LRU
	Hits, Misses atomic.Int64
}

// NewPlanCache builds a plan cache over a registry with the default
// bounds.
func NewPlanCache(reg *modules.Registry) *PlanCache {
	return &PlanCache{reg: reg, lru: cache.New(DefaultPlanCacheBytes, DefaultPlanCacheEntries)}
}

// Compile returns the cached plan for a query text, compiling on miss.
// Always compiles from the original source; the normalized text is only
// the key.
func (pc *PlanCache) Compile(src string) (*Compiled, error) {
	var gen int64
	if pc.reg != nil {
		gen = pc.reg.Generation()
	}
	key := xq.Normalize(src)
	if c, ok := pc.lru.Get(key, gen); ok {
		pc.Hits.Add(1)
		return c.(*Compiled), nil
	}
	c, err := Compile(src, pc.reg)
	if err != nil {
		return nil, err
	}
	pc.Misses.Add(1)
	pc.lru.Put(key, c, int64(len(src)), gen)
	return c, nil
}

// Stats snapshots the cache (hits/misses are PlanCache-level; entries/
// bytes and evictions come from the underlying LRU).
func (pc *PlanCache) Stats() cache.Stats {
	st := pc.lru.Stats()
	st.Hits = pc.Hits.Load()
	st.Misses = pc.Misses.Load()
	return st
}

package pathfinder

import (
	"math"
	"strings"

	"xrpc/internal/algebra"
	"xrpc/internal/interp"
	"xrpc/internal/xdm"
	"xrpc/internal/xq"
)

const maxInlineDepth = 64

// compileCall handles built-in functions (as per-iteration aggregates
// and maps over iter|pos|item tables) and user-defined functions (which
// are inlined — MonetDB/XQuery compiles loop-lifted function bodies).
func (env *staticEnv) compileCall(call *xq.FuncCall) (Plan, error) {
	if f, mod, _, ok := env.comp.lookupFunc(env.module, call.Name, len(call.Args)); ok {
		return env.inlineFunction(call, f, mod)
	}
	return env.compileBuiltin(call)
}

// inlineFunction compiles a user-defined function application by
// compiling the body with parameters bound in the caller's loop.
func (env *staticEnv) inlineFunction(call *xq.FuncCall, f *xq.FuncDecl, mod *xq.Module) (Plan, error) {
	if env.depth >= maxInlineDepth {
		return nil, unsupported("recursive user-defined functions")
	}
	if f.Updating {
		return nil, unsupported("updating functions in the loop-lifted engine")
	}
	if f.External {
		return nil, unsupported("external functions")
	}
	argPlans := make([]Plan, len(call.Args))
	for i, a := range call.Args {
		p, err := env.compile(a)
		if err != nil {
			return nil, err
		}
		argPlans[i] = p
	}
	fenv := &staticEnv{comp: env.comp, module: mod, vars: map[string]bool{}, depth: env.depth + 1}
	for _, prm := range f.Params {
		fenv.vars[prm.Name] = true
	}
	bodyPlan, err := fenv.compile(f.Body)
	if err != nil {
		return nil, err
	}
	params := f.Params
	return func(ec *ExecCtx, sc *scope) (*algebra.Table, error) {
		// parameters: computed in the caller's scope, converted per the
		// signature, visible as the only variables in the body scope
		fsc := newScope(sc.loop)
		for i, ap := range argPlans {
			t, err := ap(ec, sc)
			if err != nil {
				return nil, err
			}
			conv, err := convertTable(t, params[i].Type, itersOf(sc.loop))
			if err != nil {
				return nil, err
			}
			fsc = fsc.bind(params[i].Name, conv)
		}
		return bodyPlan(ec, fsc)
	}, nil
}

// convertTable applies the function conversion rules per iteration.
func convertTable(t *algebra.Table, typ xq.SeqType, iters []int64) (*algebra.Table, error) {
	groups := groupByIter(t)
	out := map[int64]xdm.Sequence{}
	for _, it := range iters {
		conv, err := interp.ConvertParam(groups[it], typ)
		if err != nil {
			return nil, err
		}
		out[it] = conv
	}
	return tableFromSeqs(iters, out), nil
}

// aggPlan compiles a per-iteration aggregate: args are grouped by iter
// and f computes each iteration's result sequence (aligned to the loop,
// so empty groups still invoke f — needed for count() = 0).
func (env *staticEnv) aggPlan(args []xq.Expr, f func(groups []xdm.Sequence) (xdm.Sequence, error)) (Plan, error) {
	plans := make([]Plan, len(args))
	for i, a := range args {
		p, err := env.compile(a)
		if err != nil {
			return nil, err
		}
		plans[i] = p
	}
	return func(ec *ExecCtx, sc *scope) (*algebra.Table, error) {
		grouped := make([]map[int64]xdm.Sequence, len(plans))
		for i, p := range plans {
			t, err := p(ec, sc)
			if err != nil {
				return nil, err
			}
			grouped[i] = groupByIter(t)
		}
		iters := itersOf(sc.loop)
		seqs := map[int64]xdm.Sequence{}
		for _, it := range iters {
			argSeqs := make([]xdm.Sequence, len(plans))
			for i := range plans {
				argSeqs[i] = grouped[i][it]
			}
			res, err := f(argSeqs)
			if err != nil {
				return nil, err
			}
			seqs[it] = res
		}
		return tableFromSeqs(iters, seqs), nil
	}, nil
}

func (env *staticEnv) compileBuiltin(call *xq.FuncCall) (Plan, error) {
	name := strings.TrimPrefix(call.Name, "fn:")
	arity := len(call.Args)
	// xs: constructor casts
	if strings.HasPrefix(call.Name, "xs:") && arity == 1 {
		return env.compileCast(&xq.Cast{X: call.Args[0], Type: call.Name})
	}
	switch {
	case name == "doc" && arity == 1:
		return env.aggWithCtx(call.Args, func(ec *ExecCtx, groups []xdm.Sequence) (xdm.Sequence, error) {
			if len(groups[0]) == 0 {
				return nil, nil
			}
			if ec.Docs == nil {
				return nil, xdm.NewError("FODC0002", "no document resolver")
			}
			d, err := ec.Docs.Doc(groups[0].StringJoin(""))
			if err != nil {
				return nil, err
			}
			return xdm.Singleton(d), nil
		})
	case name == "count" && arity == 1:
		return env.aggPlan(call.Args, func(g []xdm.Sequence) (xdm.Sequence, error) {
			return xdm.Singleton(xdm.Integer(len(g[0]))), nil
		})
	case name == "empty" && arity == 1:
		return env.aggPlan(call.Args, func(g []xdm.Sequence) (xdm.Sequence, error) {
			return xdm.Singleton(xdm.Boolean(len(g[0]) == 0)), nil
		})
	case name == "exists" && arity == 1:
		return env.aggPlan(call.Args, func(g []xdm.Sequence) (xdm.Sequence, error) {
			return xdm.Singleton(xdm.Boolean(len(g[0]) > 0)), nil
		})
	case name == "not" && arity == 1:
		return env.aggPlan(call.Args, func(g []xdm.Sequence) (xdm.Sequence, error) {
			b, err := xdm.EffectiveBoolean(g[0])
			if err != nil {
				return nil, err
			}
			return xdm.Singleton(xdm.Boolean(!b)), nil
		})
	case name == "boolean" && arity == 1:
		return env.aggPlan(call.Args, func(g []xdm.Sequence) (xdm.Sequence, error) {
			b, err := xdm.EffectiveBoolean(g[0])
			if err != nil {
				return nil, err
			}
			return xdm.Singleton(xdm.Boolean(b)), nil
		})
	case name == "true" && arity == 0:
		return constPlan(xdm.Boolean(true)), nil
	case name == "false" && arity == 0:
		return constPlan(xdm.Boolean(false)), nil
	case name == "string" && arity == 1:
		return env.aggPlan(call.Args, func(g []xdm.Sequence) (xdm.Sequence, error) {
			if len(g[0]) == 0 {
				return xdm.Singleton(xdm.String("")), nil
			}
			if len(g[0]) > 1 {
				return nil, xdm.NewError("XPTY0004", "fn:string argument is not a singleton")
			}
			return xdm.Singleton(xdm.String(g[0][0].StringValue())), nil
		})
	case name == "data" && arity == 1:
		return env.aggPlan(call.Args, func(g []xdm.Sequence) (xdm.Sequence, error) {
			return xdm.Atomize(g[0]), nil
		})
	case name == "number" && arity == 1:
		return env.aggPlan(call.Args, func(g []xdm.Sequence) (xdm.Sequence, error) {
			a := xdm.Atomize(g[0])
			if len(a) != 1 {
				return xdm.Singleton(xdm.Double(nan())), nil
			}
			f, ok := xdm.NumericValue(a[0])
			if !ok {
				if cast, err := xdm.CastAtomic(a[0], "xs:double"); err == nil {
					return xdm.Singleton(cast), nil
				}
				return xdm.Singleton(xdm.Double(nan())), nil
			}
			return xdm.Singleton(xdm.Double(f)), nil
		})
	case name == "concat" && arity >= 2:
		return env.aggPlan(call.Args, func(g []xdm.Sequence) (xdm.Sequence, error) {
			var sb strings.Builder
			for _, s := range g {
				if len(s) > 1 {
					return nil, xdm.NewError("XPTY0004", "fn:concat argument is not a singleton")
				}
				if len(s) == 1 {
					sb.WriteString(s[0].StringValue())
				}
			}
			return xdm.Singleton(xdm.String(sb.String())), nil
		})
	case name == "string-join" && arity == 2:
		return env.aggPlan(call.Args, func(g []xdm.Sequence) (xdm.Sequence, error) {
			sep := ""
			if len(g[1]) > 0 {
				sep = g[1][0].StringValue()
			}
			return xdm.Singleton(xdm.String(g[0].StringJoin(sep))), nil
		})
	case name == "contains" && arity == 2:
		return env.aggPlan(call.Args, func(g []xdm.Sequence) (xdm.Sequence, error) {
			return xdm.Singleton(xdm.Boolean(strings.Contains(str0(g[0]), str0(g[1])))), nil
		})
	case name == "starts-with" && arity == 2:
		return env.aggPlan(call.Args, func(g []xdm.Sequence) (xdm.Sequence, error) {
			return xdm.Singleton(xdm.Boolean(strings.HasPrefix(str0(g[0]), str0(g[1])))), nil
		})
	case name == "string-length" && arity == 1:
		return env.aggPlan(call.Args, func(g []xdm.Sequence) (xdm.Sequence, error) {
			return xdm.Singleton(xdm.Integer(len([]rune(str0(g[0]))))), nil
		})
	case name == "sum" && arity == 1:
		return env.aggPlan(call.Args, func(g []xdm.Sequence) (xdm.Sequence, error) {
			total := 0.0
			allInt := true
			for _, it := range xdm.Atomize(g[0]) {
				v, ok := xdm.NumericValue(it)
				if !ok {
					return nil, xdm.NewError("FORG0006", "non-numeric item in fn:sum")
				}
				if _, isInt := it.(xdm.Integer); !isInt {
					allInt = false
				}
				total += v
			}
			if allInt {
				return xdm.Singleton(xdm.Integer(int64(total))), nil
			}
			return xdm.Singleton(xdm.Double(total)), nil
		})
	case (name == "min" || name == "max" || name == "avg") && arity == 1:
		kind := name
		return env.aggPlan(call.Args, func(g []xdm.Sequence) (xdm.Sequence, error) {
			if len(g[0]) == 0 {
				return nil, nil
			}
			var acc float64
			for i, it := range xdm.Atomize(g[0]) {
				v, ok := xdm.NumericValue(it)
				if !ok {
					return nil, xdm.NewError("FORG0006", "non-numeric item in aggregate")
				}
				switch {
				case i == 0:
					acc = v
				case kind == "min" && v < acc:
					acc = v
				case kind == "max" && v > acc:
					acc = v
				case kind == "avg":
					acc += v
				}
			}
			if kind == "avg" {
				acc /= float64(len(g[0]))
			}
			return xdm.Singleton(xdm.Double(acc)), nil
		})
	case name == "distinct-values" && arity == 1:
		return env.aggPlan(call.Args, func(g []xdm.Sequence) (xdm.Sequence, error) {
			var out xdm.Sequence
			for _, it := range xdm.Atomize(g[0]) {
				dup := false
				for _, seen := range out {
					if eq, err := xdm.CompareAtomic(it, seen, xdm.OpEq); err == nil && eq {
						dup = true
						break
					}
				}
				if !dup {
					out = append(out, it)
				}
			}
			return out, nil
		})
	case name == "zero-or-one" && arity == 1:
		return env.aggPlan(call.Args, func(g []xdm.Sequence) (xdm.Sequence, error) {
			if len(g[0]) > 1 {
				return nil, xdm.NewError("FORG0003", "fn:zero-or-one called with more than one item")
			}
			return g[0], nil
		})
	case name == "one-or-more" && arity == 1:
		return env.aggPlan(call.Args, func(g []xdm.Sequence) (xdm.Sequence, error) {
			if len(g[0]) == 0 {
				return nil, xdm.NewError("FORG0004", "fn:one-or-more called with empty sequence")
			}
			return g[0], nil
		})
	case name == "exactly-one" && arity == 1:
		return env.aggPlan(call.Args, func(g []xdm.Sequence) (xdm.Sequence, error) {
			if len(g[0]) != 1 {
				return nil, xdm.NewError("FORG0005", "fn:exactly-one called with a non-singleton")
			}
			return g[0], nil
		})
	case name == "name" && arity == 1:
		return env.aggPlan(call.Args, func(g []xdm.Sequence) (xdm.Sequence, error) {
			if len(g[0]) == 0 {
				return xdm.Singleton(xdm.String("")), nil
			}
			n, ok := g[0][0].(*xdm.Node)
			if !ok {
				return nil, xdm.NewError("XPTY0004", "fn:name requires a node")
			}
			return xdm.Singleton(xdm.String(n.Name)), nil
		})
	case name == "reverse" && arity == 1:
		return env.aggPlan(call.Args, func(g []xdm.Sequence) (xdm.Sequence, error) {
			out := make(xdm.Sequence, len(g[0]))
			for i, it := range g[0] {
				out[len(g[0])-1-i] = it
			}
			return out, nil
		})
	case name == "subsequence" && (arity == 2 || arity == 3):
		return env.aggPlan(call.Args, func(g []xdm.Sequence) (xdm.Sequence, error) {
			start := int(num0(g[1]))
			end := len(g[0]) + 1
			if len(g) == 3 {
				end = start + int(num0(g[2]))
			}
			var out xdm.Sequence
			for i := 1; i <= len(g[0]); i++ {
				if i >= start && i < end {
					out = append(out, g[0][i-1])
				}
			}
			return out, nil
		})
	}
	return nil, unsupported("function " + call.Name + " in the loop-lifted engine")
}

func str0(s xdm.Sequence) string {
	if len(s) == 0 {
		return ""
	}
	return s[0].StringValue()
}

func num0(s xdm.Sequence) float64 {
	if len(s) == 0 {
		return nan()
	}
	f, _ := xdm.NumericValue(s[0])
	return f
}

func nan() float64 { return math.NaN() }

// aggWithCtx is aggPlan with access to the ExecCtx (doc()).
func (env *staticEnv) aggWithCtx(args []xq.Expr, f func(ec *ExecCtx, groups []xdm.Sequence) (xdm.Sequence, error)) (Plan, error) {
	plans := make([]Plan, len(args))
	for i, a := range args {
		p, err := env.compile(a)
		if err != nil {
			return nil, err
		}
		plans[i] = p
	}
	return func(ec *ExecCtx, sc *scope) (*algebra.Table, error) {
		grouped := make([]map[int64]xdm.Sequence, len(plans))
		for i, p := range plans {
			t, err := p(ec, sc)
			if err != nil {
				return nil, err
			}
			grouped[i] = groupByIter(t)
		}
		iters := itersOf(sc.loop)
		seqs := map[int64]xdm.Sequence{}
		for _, it := range iters {
			argSeqs := make([]xdm.Sequence, len(plans))
			for i := range plans {
				argSeqs[i] = grouped[i][it]
			}
			res, err := f(ec, argSeqs)
			if err != nil {
				return nil, err
			}
			seqs[it] = res
		}
		return tableFromSeqs(iters, seqs), nil
	}, nil
}

// ------------------------------------------------------- constructors

func (env *staticEnv) compileDirElem(n *xq.DirElem) (Plan, error) {
	type attrPart struct {
		lit  string
		plan Plan
	}
	type attrSpec struct {
		name  string
		parts []attrPart
	}
	var attrs []attrSpec
	for _, a := range n.Attrs {
		spec := attrSpec{name: a.Name}
		for _, part := range a.Value {
			switch p := part.(type) {
			case *xq.StringLit:
				spec.parts = append(spec.parts, attrPart{lit: p.Val})
			case *xq.Enclosed:
				pl, err := env.compile(p.X)
				if err != nil {
					return nil, err
				}
				spec.parts = append(spec.parts, attrPart{plan: pl})
			}
		}
		attrs = append(attrs, spec)
	}
	type contentPart struct {
		lit  string
		plan Plan
	}
	var content []contentPart
	for _, c := range n.Content {
		switch p := c.(type) {
		case *xq.StringLit:
			content = append(content, contentPart{lit: p.Val})
		default:
			pl, err := env.compile(c)
			if err != nil {
				return nil, err
			}
			content = append(content, contentPart{plan: pl})
		}
	}
	name := n.Name
	return func(ec *ExecCtx, sc *scope) (*algebra.Table, error) {
		// evaluate all enclosed parts loop-lifted, then assemble one
		// element per iteration
		attrVals := make([][]map[int64]xdm.Sequence, len(attrs))
		for ai, a := range attrs {
			attrVals[ai] = make([]map[int64]xdm.Sequence, len(a.parts))
			for pi, part := range a.parts {
				if part.plan == nil {
					continue
				}
				t, err := part.plan(ec, sc)
				if err != nil {
					return nil, err
				}
				attrVals[ai][pi] = groupByIter(t)
			}
		}
		contVals := make([]map[int64]xdm.Sequence, len(content))
		for ci, part := range content {
			if part.plan == nil {
				continue
			}
			t, err := part.plan(ec, sc)
			if err != nil {
				return nil, err
			}
			contVals[ci] = groupByIter(t)
		}
		out := seqTable()
		for _, it := range itersOf(sc.loop) {
			el := xdm.NewElement(name)
			for ai, a := range attrs {
				var sb strings.Builder
				for pi, part := range a.parts {
					if part.plan == nil {
						sb.WriteString(part.lit)
						continue
					}
					sb.WriteString(xdm.Atomize(attrVals[ai][pi][it]).StringJoin(" "))
				}
				el.SetAttr(xdm.NewAttribute(a.name, sb.String()))
			}
			for ci, part := range content {
				if part.plan == nil {
					if part.lit != "" {
						el.AppendChild(xdm.NewText(part.lit))
					}
					continue
				}
				if err := interp.AppendContent(el, contVals[ci][it]); err != nil {
					return nil, err
				}
			}
			el.Seal()
			out.Append(xdm.Integer(it), xdm.Integer(1), el)
		}
		return out, nil
	}, nil
}

func (env *staticEnv) compileCompText(n *xq.CompText) (Plan, error) {
	return env.aggPlan([]xq.Expr{n.Val}, func(g []xdm.Sequence) (xdm.Sequence, error) {
		t := xdm.NewText(g[0].StringJoin(" "))
		t.Seal()
		return xdm.Singleton(t), nil
	})
}

package pathfinder

import (
	"fmt"
	"strings"
	"time"

	"xrpc/internal/algebra"
	"xrpc/internal/interp"
	"xrpc/internal/modules"
	"xrpc/internal/xdm"
	"xrpc/internal/xq"
)

// Compiled is a loop-lifted query plan, ready for (repeated) execution —
// what MonetDB/XQuery's function cache stores.
type Compiled struct {
	Plan        Plan
	Main        *xq.Module
	CompileTime time.Duration
	comp        *compiler
}

// Compile translates a main-module query into a single bulk plan.
func Compile(src string, reg *modules.Registry) (*Compiled, error) {
	start := time.Now()
	m, err := xq.Parse(src)
	if err != nil {
		return nil, err
	}
	if m.IsLibrary {
		return nil, fmt.Errorf("pathfinder: cannot compile a library module as a query")
	}
	comp := &compiler{registry: reg, modules: map[string]*xq.Module{}}
	if err := comp.loadImports(m); err != nil {
		return nil, err
	}
	env := &staticEnv{comp: comp, module: m, vars: map[string]bool{}}
	// prolog variables compile as nested lets around the body
	body := m.Body
	for i := len(m.Variables) - 1; i >= 0; i-- {
		v := m.Variables[i]
		body = &xq.FLWOR{
			Clauses: []xq.FLWORClause{&xq.LetClause{Var: v.Name, Val: v.Val}},
			Return:  body,
		}
	}
	plan, err := env.compile(body)
	if err != nil {
		return nil, err
	}
	return &Compiled{Plan: plan, Main: m, CompileTime: time.Since(start), comp: comp}, nil
}

// Eval executes the plan with a fresh single-iteration loop relation,
// returning the result sequence. External variables are lifted as
// singleton-loop bindings.
func (c *Compiled) Eval(ec *ExecCtx, vars map[string]xdm.Sequence) (xdm.Sequence, error) {
	loop := algebra.Lit([]string{algebra.ColIter}, []xdm.Item{xdm.Integer(1)})
	sc := newScope(loop)
	for name, seq := range vars {
		tbl := seqTable()
		for p, it := range seq {
			tbl.AppendSeq(1, int64(p+1), it)
		}
		sc = sc.bind(name, tbl)
	}
	out, err := c.Plan(ec, sc)
	if err != nil {
		return nil, err
	}
	sorted := algebra.SortBy(out, algebra.ColIter, algebra.ColPos)
	xc := sorted.ColIdx(algebra.ColItem)
	seq := make(xdm.Sequence, 0, sorted.Len())
	for r := 0; r < sorted.Len(); r++ {
		seq = append(seq, sorted.Item(r, xc))
	}
	return seq, nil
}

// compiler holds cross-module compile state.
type compiler struct {
	registry *modules.Registry
	modules  map[string]*xq.Module
}

func (c *compiler) loadImports(m *xq.Module) error {
	for _, imp := range m.Imports {
		if _, done := c.modules[imp.URI]; done {
			continue
		}
		if c.registry == nil {
			return fmt.Errorf("pathfinder: no module registry for import %q", imp.URI)
		}
		lib, err := c.registry.ResolveModule(imp.URI, imp.AtHints)
		if err != nil {
			return err
		}
		c.modules[imp.URI] = lib
		if err := c.loadImports(lib); err != nil {
			return err
		}
	}
	return nil
}

// lookupFunc resolves a prefixed function name in module m's static
// context, returning the declaration, its module, and the import at-hint.
func (c *compiler) lookupFunc(m *xq.Module, name string, arity int) (*xq.FuncDecl, *xq.Module, string, bool) {
	prefix := ""
	local := name
	if i := strings.IndexByte(name, ':'); i >= 0 {
		prefix, local = name[:i], name[i+1:]
	}
	uri := m.Namespaces[prefix]
	// functions declared in m itself
	if f := m.Function(name, arity); f != nil && (uri == m.ModuleURI || prefix == "" || m.Namespaces[prefix] == m.ModuleURI || !m.IsLibrary) {
		// main-module local functions or own-module functions
		if f.LocalName() == local {
			return f, m, "", true
		}
	}
	if lib, ok := c.modules[uri]; ok {
		if f := lib.Function(local, arity); f != nil {
			hint := ""
			for _, imp := range m.Imports {
				if imp.URI == uri && len(imp.AtHints) > 0 {
					hint = imp.AtHints[0]
				}
			}
			return f, lib, hint, true
		}
	}
	return nil, nil, "", false
}

// staticEnv is the compile-time environment.
type staticEnv struct {
	comp   *compiler
	module *xq.Module
	vars   map[string]bool
	depth  int // function inlining depth
}

func (env *staticEnv) child() *staticEnv {
	vars := make(map[string]bool, len(env.vars))
	for k := range env.vars {
		vars[k] = true
	}
	return &staticEnv{comp: env.comp, module: env.module, vars: vars, depth: env.depth}
}

func (env *staticEnv) withVar(names ...string) *staticEnv {
	e := env.child()
	for _, n := range names {
		e.vars[n] = true
	}
	return e
}

func unsupported(what string) error {
	return fmt.Errorf("pathfinder: %s is not supported by the loop-lifted engine (use the interpreter)", what)
}

// compile translates one expression into a Plan.
func (env *staticEnv) compile(e xq.Expr) (Plan, error) {
	switch n := e.(type) {
	case *xq.StringLit:
		return constPlan(xdm.String(n.Val)), nil
	case *xq.IntLit:
		return constPlan(xdm.Integer(n.Val)), nil
	case *xq.DecimalLit:
		return constPlan(xdm.Decimal(n.Val)), nil
	case *xq.DoubleLit:
		return constPlan(xdm.Double(n.Val)), nil
	case *xq.EmptySeq:
		return emptyPlan(), nil
	case *xq.VarRef:
		// variables not statically in scope may still be bound at run
		// time (external variables like the $x of the Table 2 query);
		// "." and the predicate-internal variables must be static
		if !env.vars[n.Name] && strings.HasPrefix(n.Name, ".") {
			return nil, fmt.Errorf("pathfinder: undefined variable $%s", n.Name)
		}
		name := n.Name
		return func(_ *ExecCtx, sc *scope) (*algebra.Table, error) {
			tbl, ok := sc.vars[name]
			if !ok {
				// under an empty loop nothing is evaluated: a dead
				// branch (if/where pruned all iterations) must not
				// raise errors, per XQuery's conditional semantics
				if sc.loop.Len() == 0 {
					return seqTable(), nil
				}
				return nil, xdm.Errorf("XPST0008", "unbound variable $%s", name)
			}
			return tbl, nil
		}, nil
	case *xq.ContextItem:
		return env.compile(&xq.VarRef{Name: "."})
	case *xq.SeqExpr:
		return env.compileSeq(n)
	case *xq.RangeExpr:
		return env.compileRange(n)
	case *xq.Arith:
		return env.compileArith(n)
	case *xq.Unary:
		return env.compileUnary(n)
	case *xq.Comparison:
		return env.compileComparison(n)
	case *xq.Logic:
		return env.compileLogic(n)
	case *xq.If:
		return env.compileIf(n)
	case *xq.FLWOR:
		return env.compileFLWOR(n)
	case *xq.Quantified:
		return env.compileQuantified(n)
	case *xq.Path:
		return env.compilePath(n)
	case *xq.FuncCall:
		return env.compileCall(n)
	case *xq.ExecuteAt:
		return env.compileExecuteAt(n)
	case *xq.DirElem:
		return env.compileDirElem(n)
	case *xq.Enclosed:
		return env.compile(n.X)
	case *xq.CompText:
		return env.compileCompText(n)
	case *xq.Cast:
		return env.compileCast(n)
	case *xq.Castable:
		return env.compileCastable(n)
	case *xq.InstanceOf:
		return env.compileInstanceOf(n)
	case *xq.Typeswitch:
		return env.compileTypeswitch(n)
	case *xq.UnionExpr:
		return env.compileUnion(n)
	default:
		return nil, unsupported(fmt.Sprintf("expression %T", e))
	}
}

func (env *staticEnv) compileSeq(n *xq.SeqExpr) (Plan, error) {
	subs := make([]Plan, len(n.Items))
	for i, it := range n.Items {
		p, err := env.compile(it)
		if err != nil {
			return nil, err
		}
		subs[i] = p
	}
	return func(ec *ExecCtx, sc *scope) (*algebra.Table, error) {
		// union with a branch ordinal, then renumber pos within iter by
		// (branch, pos)
		acc := algebra.NewTable(algebra.ColIter, algebra.ColPos, algebra.ColItem, "branch")
		for bi, sub := range subs {
			t, err := sub(ec, sc)
			if err != nil {
				return nil, err
			}
			for ri := 0; ri < t.Len(); ri++ {
				acc.Append(t.Item(ri, 0), t.Item(ri, 1), t.Item(ri, 2), xdm.Integer(bi))
			}
		}
		ranked := algebra.RowNum(acc, "newpos", []string{"branch", algebra.ColPos}, algebra.ColIter)
		return algebra.Project(ranked, algebra.ColIter, "pos:newpos", algebra.ColItem), nil
	}, nil
}

func (env *staticEnv) compileRange(n *xq.RangeExpr) (Plan, error) {
	lo, err := env.compile(n.Lo)
	if err != nil {
		return nil, err
	}
	hi, err := env.compile(n.Hi)
	if err != nil {
		return nil, err
	}
	return func(ec *ExecCtx, sc *scope) (*algebra.Table, error) {
		lt, err := lo(ec, sc)
		if err != nil {
			return nil, err
		}
		ht, err := hi(ec, sc)
		if err != nil {
			return nil, err
		}
		los, err := singletonByIter(lt, "range start")
		if err != nil {
			return nil, err
		}
		his, err := singletonByIter(ht, "range end")
		if err != nil {
			return nil, err
		}
		out := seqTable()
		for _, it := range itersOf(sc.loop) {
			l, okL := los[it]
			h, okH := his[it]
			if !okL || !okH {
				continue
			}
			lv, err := xdm.CastAtomic(l, "xs:integer")
			if err != nil {
				return nil, err
			}
			hv, err := xdm.CastAtomic(h, "xs:integer")
			if err != nil {
				return nil, err
			}
			pos := int64(1)
			for v := int64(lv.(xdm.Integer)); v <= int64(hv.(xdm.Integer)); v++ {
				out.AppendSeq(it, pos, xdm.Integer(v))
				pos++
			}
		}
		return out, nil
	}, nil
}

// binOpPlan joins two singleton-per-iter operands on iter and applies f.
func binOpPlan(l, r Plan, what string, f func(a, b xdm.Item) (xdm.Sequence, error)) Plan {
	return func(ec *ExecCtx, sc *scope) (*algebra.Table, error) {
		lt, err := l(ec, sc)
		if err != nil {
			return nil, err
		}
		rt, err := r(ec, sc)
		if err != nil {
			return nil, err
		}
		ls, err := singletonByIter(lt, what)
		if err != nil {
			return nil, err
		}
		rs, err := singletonByIter(rt, what)
		if err != nil {
			return nil, err
		}
		out := seqTable()
		for _, it := range itersOf(sc.loop) {
			a, okA := ls[it]
			b, okB := rs[it]
			if !okA || !okB {
				continue // empty operand -> empty result
			}
			res, err := f(a, b)
			if err != nil {
				return nil, err
			}
			for p, item := range res {
				out.AppendSeq(it, int64(p+1), item)
			}
		}
		return out, nil
	}
}

func (env *staticEnv) compileArith(n *xq.Arith) (Plan, error) {
	l, err := env.compile(n.L)
	if err != nil {
		return nil, err
	}
	r, err := env.compile(n.R)
	if err != nil {
		return nil, err
	}
	op := n.Op
	return binOpPlan(l, r, "arithmetic operand", func(a, b xdm.Item) (xdm.Sequence, error) {
		return interp.Arith(op, atomizeItem(a), atomizeItem(b))
	}), nil
}

func atomizeItem(it xdm.Item) xdm.Item {
	if n, ok := it.(*xdm.Node); ok {
		return xdm.Untyped(n.StringValue())
	}
	return it
}

func (env *staticEnv) compileUnary(n *xq.Unary) (Plan, error) {
	x, err := env.compile(n.X)
	if err != nil {
		return nil, err
	}
	if !n.Neg {
		return x, nil
	}
	zero := constPlan(xdm.Integer(0))
	return binOpPlan(zero, x, "unary operand", func(a, b xdm.Item) (xdm.Sequence, error) {
		return interp.Arith("-", a, atomizeItem(b))
	}), nil
}

func (env *staticEnv) compileComparison(n *xq.Comparison) (Plan, error) {
	l, err := env.compile(n.L)
	if err != nil {
		return nil, err
	}
	r, err := env.compile(n.R)
	if err != nil {
		return nil, err
	}
	if n.Node {
		op := n.Op
		return binOpPlan(l, r, "node comparison operand", func(a, b xdm.Item) (xdm.Sequence, error) {
			an, okA := a.(*xdm.Node)
			bn, okB := b.(*xdm.Node)
			if !okA || !okB {
				return nil, xdm.NewError("XPTY0004", "node comparison requires nodes")
			}
			switch op {
			case "is":
				return xdm.Singleton(xdm.Boolean(an == bn)), nil
			case "<<":
				return xdm.Singleton(xdm.Boolean(xdm.DocOrderLess(an, bn))), nil
			default:
				return xdm.Singleton(xdm.Boolean(xdm.DocOrderLess(bn, an))), nil
			}
		}), nil
	}
	if !n.General {
		op, err := interp.ValueOp(n.Op)
		if err != nil {
			return nil, err
		}
		return binOpPlan(l, r, "value comparison operand", func(a, b xdm.Item) (xdm.Sequence, error) {
			ok, err := xdm.CompareAtomic(atomizeItem(a), atomizeItem(b), op)
			if err != nil {
				return nil, err
			}
			return xdm.Singleton(xdm.Boolean(ok)), nil
		}), nil
	}
	// general comparison: existential over the two per-iter sequences —
	// this is the "selection turned join" effect of §3.2
	op, err := interp.GeneralOp(n.Op)
	if err != nil {
		return nil, err
	}
	return func(ec *ExecCtx, sc *scope) (*algebra.Table, error) {
		lt, err := l(ec, sc)
		if err != nil {
			return nil, err
		}
		rt, err := r(ec, sc)
		if err != nil {
			return nil, err
		}
		lg := groupByIter(lt)
		rg := groupByIter(rt)
		out := seqTable()
		for _, it := range itersOf(sc.loop) {
			b, err := xdm.GeneralCompare(lg[it], rg[it], op)
			if err != nil {
				return nil, err
			}
			out.AppendSeq(it, 1, xdm.Boolean(b))
		}
		return out, nil
	}, nil
}

func (env *staticEnv) compileLogic(n *xq.Logic) (Plan, error) {
	l, err := env.compile(n.L)
	if err != nil {
		return nil, err
	}
	r, err := env.compile(n.R)
	if err != nil {
		return nil, err
	}
	and := n.Op == "and"
	return func(ec *ExecCtx, sc *scope) (*algebra.Table, error) {
		lt, err := l(ec, sc)
		if err != nil {
			return nil, err
		}
		rt, err := r(ec, sc)
		if err != nil {
			return nil, err
		}
		lb, err := ebvByIter(lt)
		if err != nil {
			return nil, err
		}
		rb, err := ebvByIter(rt)
		if err != nil {
			return nil, err
		}
		out := seqTable()
		for _, it := range itersOf(sc.loop) {
			var v bool
			if and {
				v = lb[it] && rb[it]
			} else {
				v = lb[it] || rb[it]
			}
			out.AppendSeq(it, 1, xdm.Boolean(v))
		}
		return out, nil
	}, nil
}

func (env *staticEnv) compileIf(n *xq.If) (Plan, error) {
	cond, err := env.compile(n.Cond)
	if err != nil {
		return nil, err
	}
	then, err := env.compile(n.Then)
	if err != nil {
		return nil, err
	}
	els, err := env.compile(n.Else)
	if err != nil {
		return nil, err
	}
	return func(ec *ExecCtx, sc *scope) (*algebra.Table, error) {
		ct, err := cond(ec, sc)
		if err != nil {
			return nil, err
		}
		cb, err := ebvByIter(ct)
		if err != nil {
			return nil, err
		}
		// loop split: then-branch runs only for true iters, else-branch
		// for the rest
		loopT := subLoop(sc.loop, cb, true)
		loopF := subLoop(sc.loop, cb, false)
		tt, err := then(ec, sc.restrict(loopT))
		if err != nil {
			return nil, err
		}
		ft, err := els(ec, sc.restrict(loopF))
		if err != nil {
			return nil, err
		}
		return algebra.Union(tt, ft), nil
	}, nil
}

func (env *staticEnv) compileQuantified(n *xq.Quantified) (Plan, error) {
	// some $v in E satisfies P  ≡  exists(for $v in E where P return 1)
	inner := &xq.FLWOR{
		Clauses: []xq.FLWORClause{&xq.ForClause{Var: n.Var, In: n.In}},
		Where:   n.Satisfies,
		Return:  &xq.IntLit{Val: 1},
	}
	if n.Every {
		// every ≡ count(matching) = count(all)
		all := &xq.FLWOR{
			Clauses: []xq.FLWORClause{&xq.ForClause{Var: n.Var, In: n.In}},
			Return:  &xq.IntLit{Val: 1},
		}
		return env.compile(&xq.Comparison{
			Op: "eq",
			L:  &xq.FuncCall{Name: "count", Args: []xq.Expr{inner}},
			R:  &xq.FuncCall{Name: "count", Args: []xq.Expr{all}},
		})
	}
	return env.compile(&xq.FuncCall{Name: "exists", Args: []xq.Expr{inner}})
}

func (env *staticEnv) compileCast(n *xq.Cast) (Plan, error) {
	x, err := env.compile(n.X)
	if err != nil {
		return nil, err
	}
	typ := n.Type
	return func(ec *ExecCtx, sc *scope) (*algebra.Table, error) {
		t, err := x(ec, sc)
		if err != nil {
			return nil, err
		}
		out, err := algebra.Map1(t, "cast", algebra.ColItem, func(it xdm.Item) (xdm.Item, error) {
			return xdm.CastAtomic(it, typ)
		})
		if err != nil {
			return nil, err
		}
		return algebra.Project(out, algebra.ColIter, algebra.ColPos, "item:cast"), nil
	}, nil
}

func (env *staticEnv) compileCastable(n *xq.Castable) (Plan, error) {
	x, err := env.compile(n.X)
	if err != nil {
		return nil, err
	}
	typ := n.Type
	return func(ec *ExecCtx, sc *scope) (*algebra.Table, error) {
		t, err := x(ec, sc)
		if err != nil {
			return nil, err
		}
		groups := groupByIter(t)
		out := seqTable()
		for _, it := range itersOf(sc.loop) {
			g := xdm.Atomize(groups[it])
			ok := len(g) == 1
			if ok {
				_, castErr := xdm.CastAtomic(g[0], typ)
				ok = castErr == nil
			}
			out.AppendSeq(it, 1, xdm.Boolean(ok))
		}
		return out, nil
	}, nil
}

func (env *staticEnv) compileInstanceOf(n *xq.InstanceOf) (Plan, error) {
	x, err := env.compile(n.X)
	if err != nil {
		return nil, err
	}
	typ := n.Type
	return func(ec *ExecCtx, sc *scope) (*algebra.Table, error) {
		t, err := x(ec, sc)
		if err != nil {
			return nil, err
		}
		groups := groupByIter(t)
		out := seqTable()
		for _, it := range itersOf(sc.loop) {
			out.AppendSeq(it, 1, xdm.Boolean(interp.MatchesSeqType(groups[it], typ)))
		}
		return out, nil
	}, nil
}

// compileTypeswitch translates typeswitch by loop splitting: each case
// claims the iterations whose operand value matches its sequence type
// (first match wins), the default takes the rest — the same pattern as
// if/then/else.
func (env *staticEnv) compileTypeswitch(n *xq.Typeswitch) (Plan, error) {
	operand, err := env.compile(n.Operand)
	if err != nil {
		return nil, err
	}
	type casePlan struct {
		varName string
		typ     xq.SeqType
		plan    Plan
	}
	var cases []casePlan
	for _, c := range n.Cases {
		cenv := env
		if c.Var != "" {
			cenv = env.withVar(c.Var)
		}
		p, err := cenv.compile(c.Ret)
		if err != nil {
			return nil, err
		}
		cases = append(cases, casePlan{varName: c.Var, typ: c.Type, plan: p})
	}
	denv := env
	if n.DefaultVar != "" {
		denv = env.withVar(n.DefaultVar)
	}
	defPlan, err := denv.compile(n.Default)
	if err != nil {
		return nil, err
	}
	defVar := n.DefaultVar
	return func(ec *ExecCtx, sc *scope) (*algebra.Table, error) {
		ot, err := operand(ec, sc)
		if err != nil {
			return nil, err
		}
		groups := groupByIter(ot)
		claimed := map[int64]bool{}
		var outs []*algebra.Table
		runBranch := func(varName string, plan Plan, iters []int64) error {
			if len(iters) == 0 {
				return nil
			}
			loop := algebra.NewTable(algebra.ColIter)
			for _, it := range iters {
				loop.Append(xdm.Integer(it))
			}
			bsc := sc.restrict(loop)
			if varName != "" {
				seqs := map[int64]xdm.Sequence{}
				for _, it := range iters {
					seqs[it] = groups[it]
				}
				bsc = bsc.bind(varName, tableFromSeqs(iters, seqs))
			}
			t, err := plan(ec, bsc)
			if err != nil {
				return err
			}
			outs = append(outs, t)
			return nil
		}
		for _, c := range cases {
			var iters []int64
			for _, it := range itersOf(sc.loop) {
				if claimed[it] {
					continue
				}
				if interp.MatchesSeqType(groups[it], c.typ) {
					claimed[it] = true
					iters = append(iters, it)
				}
			}
			if err := runBranch(c.varName, c.plan, iters); err != nil {
				return nil, err
			}
		}
		var rest []int64
		for _, it := range itersOf(sc.loop) {
			if !claimed[it] {
				rest = append(rest, it)
			}
		}
		if err := runBranch(defVar, defPlan, rest); err != nil {
			return nil, err
		}
		if len(outs) == 0 {
			return seqTable(), nil
		}
		return algebra.UnionAll(outs...), nil
	}, nil
}

func (env *staticEnv) compileUnion(n *xq.UnionExpr) (Plan, error) {
	l, err := env.compile(n.L)
	if err != nil {
		return nil, err
	}
	r, err := env.compile(n.R)
	if err != nil {
		return nil, err
	}
	return func(ec *ExecCtx, sc *scope) (*algebra.Table, error) {
		lt, err := l(ec, sc)
		if err != nil {
			return nil, err
		}
		rt, err := r(ec, sc)
		if err != nil {
			return nil, err
		}
		lg := groupByIter(lt)
		rg := groupByIter(rt)
		iters := itersOf(sc.loop)
		seqs := map[int64]xdm.Sequence{}
		for _, it := range iters {
			nodes := make([]*xdm.Node, 0, len(lg[it])+len(rg[it]))
			for _, item := range append(append(xdm.Sequence{}, lg[it]...), rg[it]...) {
				nd, ok := item.(*xdm.Node)
				if !ok {
					return nil, xdm.NewError("XPTY0004", "union operand contains non-nodes")
				}
				nodes = append(nodes, nd)
			}
			seqs[it] = xdm.NodeSeq(xdm.SortDocOrderDedup(nodes))
		}
		return tableFromSeqs(iters, seqs), nil
	}, nil
}

// ------------------------------------------------------------- FLWOR

func (env *staticEnv) compileFLWOR(fl *xq.FLWOR) (Plan, error) {
	if len(fl.OrderBy) > 0 {
		return nil, unsupported("order by")
	}
	return env.compileClauses(fl, 0)
}

func (env *staticEnv) compileClauses(fl *xq.FLWOR, i int) (Plan, error) {
	if i == len(fl.Clauses) {
		var condPlan Plan
		if fl.Where != nil {
			p, err := env.compile(fl.Where)
			if err != nil {
				return nil, err
			}
			condPlan = p
		}
		retPlan, err := env.compile(fl.Return)
		if err != nil {
			return nil, err
		}
		return func(ec *ExecCtx, sc *scope) (*algebra.Table, error) {
			if condPlan != nil {
				ct, err := condPlan(ec, sc)
				if err != nil {
					return nil, err
				}
				cb, err := ebvByIter(ct)
				if err != nil {
					return nil, err
				}
				sc = sc.restrict(subLoop(sc.loop, cb, true))
			}
			return retPlan(ec, sc)
		}, nil
	}
	switch cl := fl.Clauses[i].(type) {
	case *xq.LetClause:
		valPlan, err := env.compile(cl.Val)
		if err != nil {
			return nil, err
		}
		rest, err := env.withVar(cl.Var).compileClauses(fl, i+1)
		if err != nil {
			return nil, err
		}
		varName := cl.Var
		return func(ec *ExecCtx, sc *scope) (*algebra.Table, error) {
			val, err := valPlan(ec, sc)
			if err != nil {
				return nil, err
			}
			return rest(ec, sc.bind(varName, val))
		}, nil
	case *xq.ForClause:
		inPlan, err := env.compile(cl.In)
		if err != nil {
			return nil, err
		}
		names := []string{cl.Var}
		if cl.PosVar != "" {
			names = append(names, cl.PosVar)
		}
		rest, err := env.withVar(names...).compileClauses(fl, i+1)
		if err != nil {
			return nil, err
		}
		varName, posName := cl.Var, cl.PosVar
		return func(ec *ExecCtx, sc *scope) (*algebra.Table, error) {
			q1, err := inPlan(ec, sc)
			if err != nil {
				return nil, err
			}
			inner, mapTbl := liftLoop(q1)
			sc2 := mapScopeInner(sc, inner, mapTbl)
			// $v binding: one row (inner, 1, item)
			binding := seqTable()
			posBinding := seqTable()
			q1n := algebra.RowNum(q1, "inner", []string{algebra.ColIter, algebra.ColPos}, "")
			inners := q1n.IntsOf("inner")
			xc := q1n.ColIdx(algebra.ColItem)
			pc := q1n.ColIdx(algebra.ColPos)
			for ri, in := range inners {
				binding.AppendSeq(in, 1, q1n.Item(ri, xc))
				posBinding.AppendSeq(in, 1, q1n.Item(ri, pc))
			}
			sc2 = sc2.bind(varName, binding)
			if posName != "" {
				sc2 = sc2.bind(posName, posBinding)
			}
			q2, err := rest(ec, sc2)
			if err != nil {
				return nil, err
			}
			return mapBack(q2, mapTbl), nil
		}, nil
	}
	return nil, unsupported("FLWOR clause")
}

// liftLoop numbers the rows of an iter|pos|item table into a fresh inner
// loop, returning the inner loop relation (column iter) and the mapping
// table inner|outer.
func liftLoop(q1 *algebra.Table) (loop, mapTbl *algebra.Table) {
	numbered := algebra.RowNum(q1, "inner", []string{algebra.ColIter, algebra.ColPos}, "")
	loop = algebra.Project(numbered, "iter:inner")
	mapTbl = algebra.Project(numbered, "inner:inner", "outer:iter")
	return loop, mapTbl
}

// mapScopeInner maps every live variable table into the inner loop by
// joining through the mapping table (the map_p application of §3.1).
func mapScopeInner(sc *scope, innerLoop, mapTbl *algebra.Table) *scope {
	out := newScope(innerLoop)
	for name, tbl := range sc.vars {
		joined := algebra.Join(mapTbl, tbl, "outer", algebra.ColIter)
		out.vars[name] = algebra.Project(joined, "iter:inner", algebra.ColPos, algebra.ColItem)
	}
	return out
}

// mapBack maps an inner-loop result back to the outer loop: inner iters
// are replaced by their outer iter, with positions renumbered by (inner,
// pos) within each outer iteration.
func mapBack(q2, mapTbl *algebra.Table) *algebra.Table {
	joined := algebra.Join(q2, mapTbl, algebra.ColIter, "inner")
	ranked := algebra.RowNum(joined, "newpos", []string{algebra.ColIter, algebra.ColPos}, "outer")
	return algebra.Project(ranked, "iter:outer", "pos:newpos", algebra.ColItem)
}

package pathfinder

import (
	"testing"

	"xrpc/internal/client"
	"xrpc/internal/soap"
	"xrpc/internal/xdm"
)

// The deterministic-update-order extension ([35], §2.3): a bulk of
// updating calls executes out of query order on the server (per-site
// batching), yet the pending updates apply in original query order.
func TestDeterministicUpdateOrder(t *testing.T) {
	runDeterministicUpdateOrder(t, 1)
}

// The same protocol survives a parallel bulk executor: updating
// requests fall back to sequential evaluation, so the insert order is
// unchanged at any pool size.
func TestDeterministicUpdateOrderParallel(t *testing.T) {
	runDeterministicUpdateOrder(t, 8)
}

func runDeterministicUpdateOrder(t *testing.T, parallelism int) {
	f := newFixture(t)
	f.ySrv.SetParallelism(parallelism)
	upd := `
module namespace lg="log";
declare updating function lg:append($v as xs:string)
{ insert node <e v="{$v}"/> as last into doc("filmDB.xml")/films };`
	if err := f.reg.Register(upd, "http://x.example.org/log.xq"); err != nil {
		t.Fatal(err)
	}
	// Q6 pattern: two execute-at sites inside one loop. Site batching
	// executes (A1, A2) then (B1, B2); query order is A1, B1, A2, B2.
	f.eval(t, `
import module namespace lg="log" at "http://x.example.org/log.xq";
for $n in ("1", "2")
return (
  execute at {"xrpc://y.example.org"} {lg:append(concat("A", $n))},
  execute at {"xrpc://y.example.org"} {lg:append(concat("B", $n))} )`, nil)
	if f.ySrv.ServedRequests != 2 {
		t.Fatalf("y served %d requests, want 2 (one bulk per site)", f.ySrv.ServedRequests)
	}
	doc, _ := f.yStore().Get("filmDB.xml")
	entries := xdm.Step(doc, xdm.AxisDescendant, xdm.NodeTest{Name: "e"})
	if len(entries) != 4 {
		t.Fatalf("entries = %d", len(entries))
	}
	var got []string
	for _, e := range entries {
		v, _ := e.Attr("v")
		got = append(got, v)
	}
	// site-blocked deterministic order: site A's calls (in iteration
	// order) then site B's — stable and independent of network timing
	want := []string{"A1", "A2", "B1", "B2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("insert order = %v, want %v", got, want)
		}
	}
}

// Without SeqNrs, arrival order decides (stable sort keeps it).
func TestUntaggedUpdatesKeepArrivalOrder(t *testing.T) {
	f := newFixture(t)
	upd := `
module namespace lg="log";
declare updating function lg:append($v as xs:string)
{ insert node <e v="{$v}"/> as last into doc("filmDB.xml")/films };`
	if err := f.reg.Register(upd, "http://x.example.org/log.xq"); err != nil {
		t.Fatal(err)
	}
	cl := client.New(f.net)
	for _, v := range []string{"first", "second"} {
		if _, err := cl.CallBulk("xrpc://y.example.org", &client.BulkRequest{
			ModuleURI: "log", Func: "append", Arity: 1, Updating: true,
			Calls: [][]xdm.Sequence{{{xdm.String(v)}}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	doc, _ := f.yStore().Get("filmDB.xml")
	entries := xdm.Step(doc, xdm.AxisDescendant, xdm.NodeTest{Name: "e"})
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	if v, _ := entries[0].Attr("v"); v != "first" {
		t.Errorf("order = %v", entries)
	}
}

// SeqNrs survive the SOAP round trip.
func TestSeqNrsRoundTrip(t *testing.T) {
	req := &soap.Request{
		Module: "m", Method: "f", Arity: 1, Location: "l",
		SeqNrs: []int64{42, 7},
		Calls: [][]xdm.Sequence{
			{{xdm.String("a")}},
			{{xdm.String("b")}},
		},
	}
	back, err := soap.DecodeRequest(soap.EncodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.SeqNrs) != 2 || back.SeqNrs[0] != 42 || back.SeqNrs[1] != 7 {
		t.Errorf("seqNrs = %v", back.SeqNrs)
	}
	// untagged requests stay untagged
	req2 := &soap.Request{
		Module: "m", Method: "f", Arity: 1, Location: "l",
		Calls: [][]xdm.Sequence{{{xdm.String("a")}}},
	}
	back2, err := soap.DecodeRequest(soap.EncodeRequest(req2))
	if err != nil {
		t.Fatal(err)
	}
	if back2.SeqNrs != nil {
		t.Errorf("unexpected seqNrs: %v", back2.SeqNrs)
	}
}

// Read-only bulk requests evaluated by the server's worker pool return
// results in call order: a loop-lifted query yields the same sequence
// at any pool size.
func TestParallelReadOnlyBulkDeterministic(t *testing.T) {
	q := `
import module namespace film="films" at "http://x.example.org/film.xq";
for $a in ("Sean Connery", "Gerard Depardieu", "Nobody", "Sean Connery",
           "Gerard Depardieu", "Sean Connery", "Nobody", "Gerard Depardieu")
return execute at {"xrpc://y.example.org"} {film:filmsByActor($a)}`
	f := newFixture(t)
	want := xdm.SerializeSequence(f.eval(t, q, nil))
	for _, workers := range []int{2, 4, 16} {
		fp := newFixture(t)
		fp.yExec.SetParallelism(workers)
		got := xdm.SerializeSequence(fp.eval(t, q, nil))
		if got != want {
			t.Errorf("workers=%d: result differs\nsequential: %s\nparallel:   %s", workers, want, got)
		}
	}
}

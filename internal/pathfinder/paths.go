package pathfinder

import (
	"xrpc/internal/algebra"
	"xrpc/internal/xdm"
	"xrpc/internal/xq"
)

// compilePath translates a path expression. The root must be explicit
// (a doc() call, variable, or other primary) — the loop-lifted engine
// evaluates whole queries and has no ambient context node except inside
// predicates, where "." is a bound variable.
func (env *staticEnv) compilePath(p *xq.Path) (Plan, error) {
	var rootPlan Plan
	switch {
	case p.Root != nil:
		rp, err := env.compile(p.Root)
		if err != nil {
			return nil, err
		}
		rootPlan = rp
	case env.vars["."]:
		rp, err := env.compile(&xq.VarRef{Name: "."})
		if err != nil {
			return nil, err
		}
		if p.FromRoot {
			inner := rp
			rootPlan = func(ec *ExecCtx, sc *scope) (*algebra.Table, error) {
				t, err := inner(ec, sc)
				if err != nil {
					return nil, err
				}
				return algebra.Project(mapNodes(t, func(n *xdm.Node) *xdm.Node { return n.Root() }),
					algebra.ColIter, algebra.ColPos, algebra.ColItem), nil
			}
		} else {
			rootPlan = rp
		}
	default:
		return nil, unsupported("path without explicit root")
	}

	// root predicates (filter expressions)
	rootPreds := p.RootPreds
	steps := p.Steps
	predPlans := make([][]predPlan, len(steps))
	for i, st := range steps {
		for _, pe := range st.Preds {
			pp, err := env.compilePredicate(pe)
			if err != nil {
				return nil, err
			}
			predPlans[i] = append(predPlans[i], pp)
		}
	}
	var rootPredPlans []predPlan
	for _, pe := range rootPreds {
		pp, err := env.compilePredicate(pe)
		if err != nil {
			return nil, err
		}
		rootPredPlans = append(rootPredPlans, pp)
	}

	return func(ec *ExecCtx, sc *scope) (*algebra.Table, error) {
		cur, err := rootPlan(ec, sc)
		if err != nil {
			return nil, err
		}
		for _, pp := range rootPredPlans {
			cur, err = applyPred(ec, sc, cur, pp, true)
			if err != nil {
				return nil, err
			}
		}
		for si, st := range steps {
			cur, err = execStep(ec, sc, cur, st, predPlans[si])
			if err != nil {
				return nil, err
			}
		}
		return cur, nil
	}, nil
}

// mapNodes applies f to every node item of an iter|pos|item table.
func mapNodes(t *algebra.Table, f func(*xdm.Node) *xdm.Node) *algebra.Table {
	out := seqTable()
	xc := t.ColIdx(algebra.ColItem)
	for ri := 0; ri < t.Len(); ri++ {
		it := t.Item(ri, xc)
		if n, ok := it.(*xdm.Node); ok {
			it = f(n)
		}
		out.Append(t.Item(ri, 0), t.Item(ri, 1), it)
	}
	return out
}

// execStep performs one axis step on every (iter, context node) row via
// the shredded staircase encoding, applies the predicates, then
// re-establishes per-iteration document order with duplicate
// elimination.
func execStep(ec *ExecCtx, sc *scope, ctx *algebra.Table, st xq.Step, preds []predPlan) (*algebra.Table, error) {
	type candGroup struct {
		outer int64
		nodes []*xdm.Node
	}
	sorted := algebra.SortBy(ctx, algebra.ColIter, algebra.ColPos)
	iters := sorted.IntsOf(algebra.ColIter)
	xc := sorted.ColIdx(algebra.ColItem)
	var groups []candGroup
	for ri, it := range iters {
		n, ok := sorted.Item(ri, xc).(*xdm.Node)
		if !ok {
			return nil, xdm.NewError("XPTY0004", "path step applied to a non-node")
		}
		d := ec.shredFor(n)
		pre, ok := d.Pre(n)
		if !ok {
			return nil, xdm.NewError("XPTY0004", "node not found in shredded doc")
		}
		pres := d.Step([]int{pre}, st.Axis, st.Test)
		nodes := make([]*xdm.Node, len(pres))
		for i, q := range pres {
			nodes[i] = d.Node(q)
		}
		groups = append(groups, candGroup{outer: it, nodes: nodes})
	}
	// predicates: loop-lifted over all candidates of all groups
	for _, pp := range preds {
		// inner loop: one iteration per candidate
		inner := algebra.NewTable(algebra.ColIter)
		mapTbl := algebra.NewTable("inner", "outer")
		dot := seqTable()
		posT := seqTable()
		lastT := seqTable()
		k := int64(0)
		for _, g := range groups {
			for i, n := range g.nodes {
				k++
				inner.Append(xdm.Integer(k))
				mapTbl.Append(xdm.Integer(k), xdm.Integer(g.outer))
				dot.AppendSeq(k, 1, n)
				posT.AppendSeq(k, 1, xdm.Integer(i+1))
				lastT.AppendSeq(k, 1, xdm.Integer(len(g.nodes)))
			}
		}
		sc2 := mapScopeInner(sc, inner, mapTbl)
		sc2 = sc2.bind(".", dot).bind("@position", posT).bind("@last", lastT)
		keep, err := evalPredKeep(ec, sc2, pp, posT)
		if err != nil {
			return nil, err
		}
		// filter the groups by the keep set
		k = 0
		for gi := range groups {
			var kept []*xdm.Node
			for _, n := range groups[gi].nodes {
				k++
				if keep[k] {
					kept = append(kept, n)
				}
			}
			groups[gi].nodes = kept
		}
	}
	// doc order + dedup per iteration, then emit with fresh pos
	out := seqTable()
	perIter := map[int64][]*xdm.Node{}
	var iterOrder []int64
	for _, g := range groups {
		if _, seen := perIter[g.outer]; !seen {
			iterOrder = append(iterOrder, g.outer)
		}
		perIter[g.outer] = append(perIter[g.outer], g.nodes...)
	}
	for _, it := range iterOrder {
		nodes := xdm.SortDocOrderDedup(perIter[it])
		for p, n := range nodes {
			out.AppendSeq(it, int64(p+1), n)
		}
	}
	return out, nil
}

// predPlan is a compiled predicate.
type predPlan struct {
	plan Plan
	// constPos holds a constant positional predicate value (e.g. [2]),
	// 0 when not constant.
	constPos int64
}

func (env *staticEnv) compilePredicate(pe xq.Expr) (predPlan, error) {
	if lit, ok := pe.(*xq.IntLit); ok {
		return predPlan{constPos: lit.Val}, nil
	}
	inner := env.withVar(".", "@position", "@last")
	// rewrite position()/last() to the special vars
	p, err := inner.compile(rewritePosLast(pe))
	if err != nil {
		return predPlan{}, err
	}
	return predPlan{plan: p}, nil
}

// rewritePosLast substitutes position() and last() calls with the
// predicate-scope variables.
func rewritePosLast(e xq.Expr) xq.Expr {
	switch n := e.(type) {
	case *xq.FuncCall:
		if len(n.Args) == 0 && (n.Name == "position" || n.Name == "fn:position") {
			return &xq.VarRef{Name: "@position"}
		}
		if len(n.Args) == 0 && (n.Name == "last" || n.Name == "fn:last") {
			return &xq.VarRef{Name: "@last"}
		}
		args := make([]xq.Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = rewritePosLast(a)
		}
		return &xq.FuncCall{Name: n.Name, Args: args}
	case *xq.Comparison:
		return &xq.Comparison{Op: n.Op, General: n.General, Node: n.Node,
			L: rewritePosLast(n.L), R: rewritePosLast(n.R)}
	case *xq.Logic:
		return &xq.Logic{Op: n.Op, L: rewritePosLast(n.L), R: rewritePosLast(n.R)}
	case *xq.Arith:
		return &xq.Arith{Op: n.Op, L: rewritePosLast(n.L), R: rewritePosLast(n.R)}
	default:
		return e
	}
}

// evalPredKeep evaluates a predicate plan over the candidate inner loop
// and returns the kept inner iteration numbers. Numeric predicate values
// select by position; everything else goes through the effective boolean
// value.
func evalPredKeep(ec *ExecCtx, sc2 *scope, pp predPlan, posT *algebra.Table) (map[int64]bool, error) {
	keep := map[int64]bool{}
	posOf := map[int64]int64{}
	for ri := 0; ri < posT.Len(); ri++ {
		posOf[posT.Int(ri, 0)] = posT.Int(ri, 2)
	}
	if pp.constPos != 0 {
		for k, p := range posOf {
			keep[k] = p == pp.constPos
		}
		return keep, nil
	}
	t, err := pp.plan(ec, sc2)
	if err != nil {
		return nil, err
	}
	groups := groupByIter(t)
	for k := range posOf {
		seq := groups[k]
		if len(seq) == 1 && xdm.IsNumeric(seq[0]) {
			f, _ := xdm.NumericValue(seq[0])
			keep[k] = float64(posOf[k]) == f
			continue
		}
		b, err := xdm.EffectiveBoolean(seq)
		if err != nil {
			return nil, err
		}
		keep[k] = b
	}
	return keep, nil
}

// applyPred filters an item table by a predicate (for root filter
// expressions: positions count within each iteration's sequence).
func applyPred(ec *ExecCtx, sc *scope, t *algebra.Table, pp predPlan, _ bool) (*algebra.Table, error) {
	sorted := algebra.SortBy(t, algebra.ColIter, algebra.ColPos)
	inner := algebra.NewTable(algebra.ColIter)
	mapTbl := algebra.NewTable("inner", "outer")
	dot := seqTable()
	posT := seqTable()
	lastT := seqTable()
	iters := sorted.IntsOf(algebra.ColIter)
	xc := sorted.ColIdx(algebra.ColItem)
	// group sizes per iter
	sizes := map[int64]int64{}
	for _, it := range iters {
		sizes[it]++
	}
	counters := map[int64]int64{}
	k := int64(0)
	for ri, it := range iters {
		counters[it]++
		k++
		inner.Append(xdm.Integer(k))
		mapTbl.Append(xdm.Integer(k), xdm.Integer(it))
		dot.AppendSeq(k, 1, sorted.Item(ri, xc))
		posT.AppendSeq(k, 1, xdm.Integer(counters[it]))
		lastT.AppendSeq(k, 1, xdm.Integer(sizes[it]))
	}
	sc2 := mapScopeInner(sc, inner, mapTbl)
	sc2 = sc2.bind(".", dot).bind("@position", posT).bind("@last", lastT)
	keep, err := evalPredKeep(ec, sc2, pp, posT)
	if err != nil {
		return nil, err
	}
	out := seqTable()
	newPos := map[int64]int64{}
	for ri, it := range iters {
		if !keep[int64(ri+1)] {
			continue
		}
		newPos[it]++
		out.AppendSeq(it, newPos[it], sorted.Item(ri, xc))
	}
	return out, nil
}

// Package pathfinder implements the loop-lifting XQuery compiler of §3.1
// of the paper: queries are translated bottom-up into plans over the
// relational algebra of internal/algebra, with every intermediate result
// represented as an iter|pos|item table. Nested for-loops disappear into
// bulk plans; an `execute at` inside a for-loop therefore turns into a
// single Bulk RPC per destination peer — the translation rule of
// Figure 2, with the map/req/msg/res intermediate tables of Figure 1.
//
// In the reproduction this package plays the role of
// Pathfinder/MonetDB-XQuery; the tree-walking interpreter
// (internal/interp) is the reference semantics it must agree with.
package pathfinder

import (
	"xrpc/internal/algebra"
	"xrpc/internal/client"
	"xrpc/internal/interp"
	"xrpc/internal/shred"
	"xrpc/internal/xdm"
)

// BulkCaller abstracts the XRPC client operations the engine needs.
// *client.Client implements it.
type BulkCaller interface {
	CallBulk(dest string, br *client.BulkRequest) ([]xdm.Sequence, error)
	CallOneAtATime(dest string, br *client.BulkRequest) ([]xdm.Sequence, error)
	CallParallel(parts []*client.BulkByDest, total int) ([]xdm.Sequence, error)
}

// ExecCtx carries the runtime services of one evaluation.
type ExecCtx struct {
	// Docs resolves fn:doc.
	Docs interp.DocResolver
	// Bulk performs XRPC calls (nil disables execute at).
	Bulk BulkCaller
	// OneAtATime switches execute-at dispatch to one RPC per iteration —
	// the comparison mechanism of Table 2.
	OneAtATime bool
	// Sequential disables parallel multi-destination dispatch.
	Sequential bool
	// NoDedup disables δ over identical read-only calls (for the
	// ablation benchmarks).
	NoDedup bool
	// Trace, when non-nil, captures the Figure 1 intermediate tables of
	// every execute-at evaluation.
	Trace *Trace

	shreds map[*xdm.Node]*shred.Doc
	// seqSite numbers execute-at evaluations within one query, giving
	// each site a disjoint block of update sequence numbers (the
	// deterministic-update-order extension).
	seqSite int64
}

func (ec *ExecCtx) nextSeqSite() int64 {
	ec.seqSite++
	return ec.seqSite
}

// shredFor returns (and caches) the shredded form of the tree containing
// n.
func (ec *ExecCtx) shredFor(n *xdm.Node) *shred.Doc {
	root := n.Root()
	if ec.shreds == nil {
		ec.shreds = map[*xdm.Node]*shred.Doc{}
	}
	if d, ok := ec.shreds[root]; ok {
		return d
	}
	d := shred.Shred(root)
	ec.shreds[root] = d
	return d
}

// Trace records the intermediate tables of Bulk RPC translation for the
// Figure 1 experiment.
type Trace struct {
	// Dst is the loop-lifted destination table.
	Dst *algebra.Table
	// PerPeer holds one entry per unique destination peer.
	PerPeer []*PeerTrace
	// Result is the final re-united iter|pos|item table.
	Result *algebra.Table
}

// PeerTrace is one peer's share of a traced Bulk RPC.
type PeerTrace struct {
	Peer string
	// Map is the iter|iterp mapping table (map_p in Figure 1).
	Map *algebra.Table
	// Req holds one iterp|pos|item table per parameter (req_p).
	Req []*algebra.Table
	// Msg is the iterp|pos|item table shredded from the response
	// (msg_p).
	Msg *algebra.Table
	// Res is the mapped-back iter|pos|item table (res_p).
	Res *algebra.Table
}

// scope is the runtime scope of a plan: the loop relation (column iter)
// and the live loop-lifted variable tables, all aligned to it.
type scope struct {
	loop *algebra.Table
	vars map[string]*algebra.Table
}

func newScope(loop *algebra.Table) *scope {
	return &scope{loop: loop, vars: map[string]*algebra.Table{}}
}

// bind returns a child scope with one more variable.
func (sc *scope) bind(name string, tbl *algebra.Table) *scope {
	vars := make(map[string]*algebra.Table, len(sc.vars)+1)
	for k, v := range sc.vars {
		vars[k] = v
	}
	vars[name] = tbl
	return &scope{loop: sc.loop, vars: vars}
}

// restrict narrows the scope to a sub-loop: variable tables are
// semi-joined on iter so no rows from pruned iterations survive.
func (sc *scope) restrict(loop *algebra.Table) *scope {
	keep := map[int64]bool{}
	for _, it := range loop.IntsOf(algebra.ColIter) {
		keep[it] = true
	}
	vars := make(map[string]*algebra.Table, len(sc.vars))
	for name, tbl := range sc.vars {
		iters := tbl.IntsOf(algebra.ColIter)
		vars[name] = algebra.Where(tbl, func(row int) bool { return keep[iters[row]] })
	}
	return &scope{loop: loop, vars: vars}
}

// Plan is an executable loop-lifted sub-plan: it produces an
// iter|pos|item table whose iter values come from the scope's loop.
type Plan func(ec *ExecCtx, sc *scope) (*algebra.Table, error)

// seqTable creates an empty iter|pos|item table.
func seqTable() *algebra.Table {
	return algebra.NewTable(algebra.ColIter, algebra.ColPos, algebra.ColItem)
}

// constPlan lifts a constant over the loop: one row (iter, 1, c) per
// iteration.
func constPlan(c xdm.Item) Plan {
	return func(_ *ExecCtx, sc *scope) (*algebra.Table, error) {
		out := seqTable()
		for _, it := range itersOf(sc.loop) {
			out.AppendSeq(it, 1, c)
		}
		return out, nil
	}
}

// emptyPlan is the empty sequence at every iteration.
func emptyPlan() Plan {
	return func(_ *ExecCtx, _ *scope) (*algebra.Table, error) {
		return seqTable(), nil
	}
}

// itersOf extracts the set of iter values of a table in loop order. The
// returned slice may alias the table's dense iter vector: read-only.
func itersOf(loop *algebra.Table) []int64 {
	return loop.IntsOf(algebra.ColIter)
}

// groupByIter partitions a sorted iter|pos|item table into per-iter
// sequences.
func groupByIter(t *algebra.Table) map[int64]xdm.Sequence {
	sorted := algebra.SortBy(t, algebra.ColIter, algebra.ColPos)
	iters := sorted.IntsOf(algebra.ColIter)
	xc := sorted.ColIdx(algebra.ColItem)
	out := map[int64]xdm.Sequence{}
	for r, it := range iters {
		out[it] = append(out[it], sorted.Item(r, xc))
	}
	return out
}

// tableFromSeqs builds an iter|pos|item table from per-iter sequences,
// emitting iters in the given order.
func tableFromSeqs(iters []int64, seqs map[int64]xdm.Sequence) *algebra.Table {
	out := seqTable()
	for _, it := range iters {
		for p, item := range seqs[it] {
			out.AppendSeq(it, int64(p+1), item)
		}
	}
	return out
}

// singletonByIter checks that every iteration has at most one row and
// returns item-by-iter (missing iter = empty).
func singletonByIter(t *algebra.Table, what string) (map[int64]xdm.Item, error) {
	iters := t.IntsOf(algebra.ColIter)
	xc := t.ColIdx(algebra.ColItem)
	out := map[int64]xdm.Item{}
	for r, it := range iters {
		if _, dup := out[it]; dup {
			return nil, xdm.Errorf("XPTY0004", "%s is not a singleton in some iteration", what)
		}
		out[it] = t.Item(r, xc)
	}
	return out, nil
}

// ebvByIter computes the effective boolean value per iteration.
func ebvByIter(t *algebra.Table) (map[int64]bool, error) {
	out := map[int64]bool{}
	for it, seq := range groupByIter(t) {
		b, err := xdm.EffectiveBoolean(seq)
		if err != nil {
			return nil, err
		}
		out[it] = b
	}
	return out, nil
}

// subLoop returns the loop restricted to iters where keep is true (or
// false when negate).
func subLoop(loop *algebra.Table, keep map[int64]bool, want bool) *algebra.Table {
	iters := loop.IntsOf(algebra.ColIter)
	return algebra.Where(loop, func(row int) bool { return keep[iters[row]] == want })
}

package pathfinder

import (
	"strings"
	"testing"

	"xrpc/internal/xq"
)

// the routed-workload module shared by the cluster tests and the
// cluster-update benchmark, verbatim (keep in sync with
// internal/cluster/routed_test.go and internal/bench/clusterupdate.go).
const personsModuleSrc = `
module namespace p = "functions_p";
declare function p:getPerson($pid as xs:string) as node()*
{ doc("persons.xml")//person[@id=$pid] };
declare function p:cityOf($pid as xs:string) as xs:string
{ string(doc("persons.xml")//person[@id=$pid]/address/city) };
declare updating function p:setCity($pid as xs:string, $city as xs:string)
{ for $c in doc("persons.xml")//person[@id=$pid]/address/city
  return replace value of node $c with $city };`

// the peer-B module of the Q7 strategies experiment, verbatim (keep in
// sync with internal/strategies/strategies.go).
const functionsBSrc = `
module namespace b = "functions_b";
declare function b:Q_B1() as node()*
{ doc("auctions.xml")//closed_auction };
declare function b:Q_B2() as node()*
{ for $p in doc("xrpc://A/persons.xml")//person,
      $ca in doc("auctions.xml")//closed_auction
  where $p/@id = $ca/buyer/@person
  return <result>{$p, $ca/annotation}</result>
};
declare function b:Q_B3($pid as xs:string) as node()*
{ doc("auctions.xml")//closed_auction[./buyer/@person=$pid] };`

func derive(t *testing.T, src string) (map[string]RouteKey, map[string]string) {
	t.Helper()
	m, err := xq.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	keys, misses := DeriveRouteKeys(m)
	km := make(map[string]RouteKey, len(keys))
	for _, k := range keys {
		km[k.Func] = k
	}
	mm := make(map[string]string, len(misses))
	for _, ms := range misses {
		mm[ms.Func] = ms.Reason
	}
	return km, mm
}

func wantKey(t *testing.T, got map[string]RouteKey, fn string, want RouteKey) {
	t.Helper()
	k, ok := got[fn]
	if !ok {
		t.Fatalf("%s: not derived", fn)
	}
	want.Func = fn
	if k != want {
		t.Fatalf("%s: derived %+v, want %+v", fn, k, want)
	}
}

func wantMiss(t *testing.T, misses map[string]string, fn, reasonPart string) {
	t.Helper()
	r, ok := misses[fn]
	if !ok {
		t.Fatalf("%s: expected a derivation miss, got a derived key", fn)
	}
	if !strings.Contains(r, reasonPart) {
		t.Fatalf("%s: miss reason %q, want it to mention %q", fn, r, reasonPart)
	}
}

// TestDeriveRouteKeysPersons pins the derivations for the routed
// persons workload: the probe and the updating function both key on
// parameter 0 against person/@id, and cityOf must NOT derive — its
// string() wrapper turns the empty sequence into the non-empty ""
// singleton, so a pruned execution would not be byte-identical to
// broadcast.
func TestDeriveRouteKeysPersons(t *testing.T) {
	keys, misses := derive(t, personsModuleSrc)
	wantKey(t, keys, "getPerson", RouteKey{
		Param: 0, Doc: "persons.xml", PathSuffix: "person", KeyAttr: "id", Op: "=",
	})
	wantKey(t, keys, "setCity", RouteKey{
		Param: 0, Doc: "persons.xml", PathSuffix: "person", KeyAttr: "id", Op: "=",
	})
	wantMiss(t, misses, "cityOf", "not provably empty")
}

// TestDeriveRouteKeysFunctionsB: none of the Q7 peer-B functions may
// derive — Q_B1/Q_B2 have no parameters, and Q_B3 filters on
// buyer/@person, a sub-element attribute that is not the container's
// partition key.
func TestDeriveRouteKeysFunctionsB(t *testing.T) {
	keys, misses := derive(t, functionsBSrc)
	if len(keys) != 0 {
		t.Fatalf("derived %v, want none", keys)
	}
	wantMiss(t, misses, "Q_B1", "no parameters")
	wantMiss(t, misses, "Q_B2", "no parameters")
	wantMiss(t, misses, "Q_B3", "no comparison")
}

// TestDeriveRouteKeysShapes covers the shape variations: rooted child
// chains, range comparisons in both operand orders, identity wrappers
// around the parameter, and trailing steps below the keyed container.
func TestDeriveRouteKeysShapes(t *testing.T) {
	keys, misses := derive(t, `
module namespace s = "shapes";
declare function s:rooted($k as xs:string) as node()*
{ doc("persons.xml")/site/people/person[@id=$k] };
declare function s:from($k as xs:string) as node()*
{ doc("persons.xml")//person[@id >= $k] };
declare function s:upTo($k as xs:string) as node()*
{ doc("persons.xml")//person[$k >= @id] };
declare function s:wrapped($k as xs:string) as node()*
{ doc("persons.xml")//person[@id = data($k)] };
declare function s:below($k as xs:string) as node()*
{ doc("persons.xml")//person[@id=$k]/address/city };
declare function s:valueEq($k as xs:string) as node()*
{ doc("persons.xml")//person[@id eq $k] };
declare function s:second($p as xs:string, $k as xs:string) as node()*
{ doc("persons.xml")//person[@id=$k] };`)
	wantKey(t, keys, "rooted", RouteKey{
		Param: 0, Doc: "persons.xml", PathSuffix: "/site/people/person",
		Rooted: true, KeyAttr: "id", Op: "=",
	})
	wantKey(t, keys, "from", RouteKey{
		Param: 0, Doc: "persons.xml", PathSuffix: "person", KeyAttr: "id", Op: ">=",
	})
	wantKey(t, keys, "upTo", RouteKey{
		Param: 0, Doc: "persons.xml", PathSuffix: "person", KeyAttr: "id", Op: "<=",
	})
	wantKey(t, keys, "wrapped", RouteKey{
		Param: 0, Doc: "persons.xml", PathSuffix: "person", KeyAttr: "id", Op: "=",
	})
	wantKey(t, keys, "below", RouteKey{
		Param: 0, Doc: "persons.xml", PathSuffix: "person", KeyAttr: "id", Op: "=",
	})
	wantKey(t, keys, "valueEq", RouteKey{
		Param: 0, Doc: "persons.xml", PathSuffix: "person", KeyAttr: "id", Op: "=",
	})
	wantKey(t, keys, "second", RouteKey{
		Param: 1, Doc: "persons.xml", PathSuffix: "person", KeyAttr: "id", Op: "=",
	})
	if len(misses) != 0 {
		t.Fatalf("unexpected misses: %v", misses)
	}
}

// TestDeriveRouteKeysRejections: every construct that would break the
// empty-on-miss promise must miss, with a diagnosable reason.
func TestDeriveRouteKeysRejections(t *testing.T) {
	_, misses := derive(t, `
module namespace r = "rejects";
declare function r:shadowed($k as xs:string) as node()*
{ for $k in ("x") return doc("persons.xml")//person[@id=$k] };
declare function r:counted($k as xs:string) as xs:integer
{ count(doc("persons.xml")//person[@id=$k]) };
declare function r:conflicting($k as xs:string) as node()*
{ (doc("persons.xml")//person[@id=$k], doc("persons.xml")//person[@name=$k]) };
declare function r:extraDoc($k as xs:string) as node()*
{ (doc("persons.xml")//person[@id=$k], doc("other.xml")//person) };
declare function r:constructed($k as xs:string) as node()*
{ <hit>{doc("persons.xml")//person[@id=$k]}</hit> };
declare function r:remote($k as xs:string) as node()*
{ (doc("persons.xml")//person[@id=$k],
   execute at {"xrpc://B"} { r:shadowed($k) }) };
declare function r:negated($k as xs:string) as node()*
{ doc("persons.xml")//person[@id != $k] };`)
	wantMiss(t, misses, "shadowed", "no comparison")
	wantMiss(t, misses, "counted", "not provably empty")
	wantMiss(t, misses, "conflicting", "conflicting key comparisons")
	wantMiss(t, misses, "extraDoc", "not provably empty")
	wantMiss(t, misses, "constructed", "not provably empty")
	wantMiss(t, misses, "remote", "not provably empty")
	wantMiss(t, misses, "negated", "no comparison")
}

// Package strategies implements the distributed query execution
// strategies of §5 of the paper for query Q7 (the persons ⋈
// closed_auctions join): data shipping, predicate pushdown, execution
// relocation, and the distributed semi-join — each expressed as the
// exact XRPC rewrite the paper shows, executed on a two-peer deployment
// where peer A runs the loop-lifting engine (MonetDB/XQuery's role) and
// peer B answers via the XRPC wrapper (Saxon's role).
package strategies

import (
	"fmt"
	"time"

	"xrpc/internal/client"
	"xrpc/internal/cluster"
	"xrpc/internal/modules"
	"xrpc/internal/netsim"
	"xrpc/internal/pathfinder"
	"xrpc/internal/planner"
	"xrpc/internal/server"
	"xrpc/internal/store"
	"xrpc/internal/wrapper"
	"xrpc/internal/xdm"
	"xrpc/internal/xmark"
)

// FunctionsB is the peer-B module of §5, verbatim from the paper (with
// the peer URI spelled out).
const FunctionsB = `
module namespace b = "functions_b";
declare function b:Q_B1() as node()*
{ doc("auctions.xml")//closed_auction };
declare function b:Q_B2() as node()*
{ for $p in doc("xrpc://A/persons.xml")//person,
      $ca in doc("auctions.xml")//closed_auction
  where $p/@id = $ca/buyer/@person
  return <result>{$p, $ca/annotation}</result>
};
declare function b:Q_B3($pid as xs:string) as node()*
{ doc("auctions.xml")//closed_auction[./buyer/@person=$pid] };`

// PeerA and PeerB are the deployment's peer URIs.
const (
	PeerA = "xrpc://A"
	PeerB = "xrpc://B"
)

// Env is the two-peer deployment for the Q7 experiment.
type Env struct {
	Net      *netsim.Network
	Registry *modules.Registry

	// Peer A (local, MonetDB/XQuery role): persons.xml in a store,
	// queries compiled by the loop-lifting engine.
	StoreA  *store.Store
	ServerA *server.Server

	// Peer B (remote, Saxon role): auctions.xml as raw text behind the
	// XRPC wrapper.
	ServerB  *server.Server
	WrapperB *wrapper.Wrapper
}

// NewEnv builds the deployment with generated XMark data over a network
// with paper-like characteristics: ~1 ms round trips and ~10 MB/s
// effective SOAP throughput (the paper measured 8-14 MB/s on its 1 Gb/s
// LAN, CPU-bound by serialization).
func NewEnv(cfg xmark.Config) (*Env, error) {
	return NewEnvNet(cfg, netsim.NewNetwork(time.Millisecond, 10*1024*1024))
}

// NewEnvNet builds the deployment over a caller-provided network.
func NewEnvNet(cfg xmark.Config, net *netsim.Network) (*Env, error) {
	reg := modules.NewRegistry()
	if err := reg.Register(FunctionsB, "http://example.org/b.xq"); err != nil {
		return nil, err
	}

	// peer A: store-backed, serves persons.xml (for relocation's
	// reverse data shipping)
	stA := store.New()
	if err := stA.LoadXML("persons.xml", xmark.GeneratePersons(cfg)); err != nil {
		return nil, err
	}
	srvA := server.New(stA, reg, nil) // A only serves system getDocument
	srvA.Self = PeerA
	net.Register(PeerA, srvA)

	// peer B: wrapper over raw auctions.xml text; remote docs fetched
	// over XRPC (execution relocation pulls persons.xml from A)
	auctionsXML := xmark.GenerateAuctions(cfg)
	wrapB := wrapper.New(reg, nil)
	wrapB.LoadText("auctions.xml", auctionsXML)
	wrapB.Remote = &client.DocResolver{Client: client.New(net)}
	// the store copy serves the getDocument system call behind data
	// shipping (fn:doc("xrpc://B/auctions.xml"))
	stB := store.New()
	if err := stB.LoadXML("auctions.xml", auctionsXML); err != nil {
		return nil, err
	}
	srvB := server.New(stB, reg, wrapB)
	srvB.Self = PeerB
	net.Register(PeerB, srvB)

	return &Env{
		Net:      net,
		Registry: reg,
		StoreA:   stA,
		ServerA:  srvA,
		ServerB:  srvB,
		WrapperB: wrapB,
	}, nil
}

// Result is one strategy's outcome with the Table 4 time columns.
type Result struct {
	Strategy string
	Rows     int
	Total    time.Duration
	// ATime approximates the paper's "MonetDB Time": total minus peer
	// B's handler time.
	ATime time.Duration
	// BTime approximates the paper's "Saxon Time": peer B handler time
	// (which, like the paper's subtraction method, absorbs
	// communication).
	BTime time.Duration
	// Requests is the number of XRPC requests B served.
	Requests int64
	// BytesShipped counts bytes moved over the network.
	BytesShipped int64
}

func (r Result) String() string {
	return fmt.Sprintf("%-22s total=%v A=%v B=%v requests=%d bytes=%d rows=%d",
		r.Strategy, r.Total, r.ATime, r.BTime, r.Requests, r.BytesShipped, r.Rows)
}

// queries, verbatim §5 rewrites of Q7 (destination spelled as xrpc://B).
const (
	// QDataShipping is Q7: all of auctions.xml ships to A.
	QDataShipping = `
for $p in doc("persons.xml")//person,
    $ca in doc("xrpc://B/auctions.xml")//closed_auction
where $p/@id = $ca/buyer/@person
return <result>{$p,$ca/annotation}</result>`

	// QPredicatePushdown is Q7_1: B evaluates //closed_auction.
	QPredicatePushdown = `
import module namespace b="functions_b" at "http://example.org/b.xq";
for $p in doc("persons.xml")//person,
    $ca in execute at {"xrpc://B"} { b:Q_B1() }
where $p/@id = $ca/buyer/@person
return <result>{$p,$ca/annotation}</result>`

	// QExecutionRelocation runs the whole join at B (Q_B2).
	QExecutionRelocation = `
import module namespace b="functions_b" at "http://example.org/b.xq";
execute at {"xrpc://B"} { b:Q_B2() }`

	// QDistributedSemiJoin is Q7_3: per-person probes, loop-lifted into
	// one Bulk RPC.
	QDistributedSemiJoin = `
import module namespace b="functions_b" at "http://example.org/b.xq";
for $p in doc("persons.xml")//person
let $ca := execute at {"xrpc://B"} {b:Q_B3(string($p/@id))}
return if(empty($ca)) then ()
       else <result>{$p, $ca/annotation}</result>`
)

// QShardedSemiJoin is the sharded variant of Q7_3: the probe side is
// scattered. The query text is the distributed semi-join with the
// destination swapped for the coordinator's virtual cluster URI —
// loop-lifting turns the per-person probes into ONE bulk request, and
// the coordinator (which implements pathfinder.BulkCaller) scatters
// that request to every auctions shard and gathers the matches in
// shard = document order.
const QShardedSemiJoin = `
import module namespace b="functions_b" at "http://example.org/b.xq";
for $p in doc("persons.xml")//person
let $ca := execute at {"xrpc://cluster"} {b:Q_B3(string($p/@id))}
return if(empty($ca)) then ()
       else <result>{$p, $ca/annotation}</result>`

// QShardedSemiJoinData is the ship-data-side variant of the sharded
// semi-join: instead of shipping one probe key per person to the
// auction shards, the auction side ships whole — the loop-invariant
// Q_B1() broadcast deduplicates to a single scattered request — and the
// join filter runs at the probe side. Same result, byte for byte: the
// broadcast merge is in shard = document order, so filtering it locally
// selects the same auctions in the same order the per-key probes
// return them. Which variant is cheaper depends on the measured sides
// (ChooseSemiJoinSide); RunSemiJoinAuto executes the cheaper one.
const QShardedSemiJoinData = `
import module namespace b="functions_b" at "http://example.org/b.xq";
for $p in doc("persons.xml")//person
let $all := execute at {"xrpc://cluster"} {b:Q_B1()}
let $ca := $all[buyer/@person = string($p/@id)]
return if(empty($ca)) then ()
       else <result>{$p, $ca/annotation}</result>`

// ShardedEnv is the N-peer deployment for the sharded semi-join:
// peer A keeps persons.xml and the loop-lifting engine; auctions.xml is
// partitioned across store-backed shard peers driven by a
// scatter-gather coordinator.
type ShardedEnv struct {
	Net      *netsim.Network
	Registry *modules.Registry
	StoreA   *store.Store
	Dep      *cluster.Deployment

	// Measured side sizes for the costed semi-join side choice:
	// Persons probe keys of ~KeyBytes each against Auctions rows of
	// ~AuctionItemBytes serialized bytes each.
	Persons, Auctions int
	KeyBytes          float64
	AuctionItemBytes  float64
}

// NewShardedEnv partitions the generated auctions.xml across shards
// peers (replication ≥ 1 adds failover replicas per shard) on the given
// network.
func NewShardedEnv(cfg xmark.Config, shards, replication int, net *netsim.Network) (*ShardedEnv, error) {
	reg := modules.NewRegistry()
	if err := reg.Register(FunctionsB, "http://example.org/b.xq"); err != nil {
		return nil, err
	}
	personsXML := xmark.GeneratePersons(cfg)
	auctionsXML := xmark.GenerateAuctions(cfg)
	stA := store.New()
	if err := stA.LoadXML("persons.xml", personsXML); err != nil {
		return nil, err
	}
	dep, err := cluster.Deploy(net, reg, map[string]string{
		"auctions.xml": auctionsXML,
	}, cluster.DeployConfig{Shards: shards, Replication: replication})
	if err != nil {
		return nil, err
	}
	env := &ShardedEnv{Net: net, Registry: reg, StoreA: stA, Dep: dep}
	if err := env.measureSides(personsXML, auctionsXML); err != nil {
		return nil, err
	}
	return env, nil
}

// measureSides sizes the semi-join's two sides from the generated
// documents: probe keys (person ids, with average length) and data rows
// (closed auctions, with average serialized size) — the cost inputs of
// the ship-smallest-side decision.
func (env *ShardedEnv) measureSides(personsXML, auctionsXML string) error {
	pd, err := xdm.ParseDocument("persons.xml", personsXML)
	if err != nil {
		return err
	}
	var keyLen int
	for _, p := range xdm.Step(pd, xdm.AxisDescendant, xdm.NodeTest{Name: "person"}) {
		id, _ := p.Attr("id")
		env.Persons++
		keyLen += len(id)
	}
	if env.Persons > 0 {
		env.KeyBytes = float64(keyLen) / float64(env.Persons)
	}
	ad, err := xdm.ParseDocument("auctions.xml", auctionsXML)
	if err != nil {
		return err
	}
	env.Auctions = len(xdm.Step(ad, xdm.AxisDescendant, xdm.NodeTest{Name: "closed_auction"}))
	if env.Auctions > 0 {
		env.AuctionItemBytes = float64(len(auctionsXML)) / float64(env.Auctions)
	}
	return nil
}

// ChooseSemiJoinSide costs both sides of the sharded semi-join with the
// planner's model: ship the person keys to the auction shards
// (QShardedSemiJoin) or ship every auction row to the probe side once
// (QShardedSemiJoinData).
func (env *ShardedEnv) ChooseSemiJoinSide() planner.SemiJoinChoice {
	return planner.NewStats().ChooseSemiJoin(
		env.Persons, env.KeyBytes, int64(env.Auctions), env.AuctionItemBytes)
}

// RunSemiJoin executes the sharded semi-join (ship-keys side) and
// returns the Table 4 style measurements plus the result sequence for
// verification against the unsharded baseline. BTime aggregates handler
// time across all shard peers.
func (env *ShardedEnv) RunSemiJoin() (*Result, xdm.Sequence, error) {
	return env.runSharded(
		fmt.Sprintf("sharded semi-join ×%d", env.Dep.Table.NumShards()), QShardedSemiJoin)
}

// RunSemiJoinData executes the ship-data-side variant: one broadcast of
// the whole auction side, joined at the probe side.
func (env *ShardedEnv) RunSemiJoinData() (*Result, xdm.Sequence, error) {
	return env.runSharded(
		fmt.Sprintf("sharded semi-join (data side) ×%d", env.Dep.Table.NumShards()), QShardedSemiJoinData)
}

// RunSemiJoinAuto costs both sides and executes the cheaper one — the
// measured smaller side ships. The returned choice carries the two
// estimates for the slow-query log's estimated-vs-actual line.
func (env *ShardedEnv) RunSemiJoinAuto() (*Result, xdm.Sequence, planner.SemiJoinChoice, error) {
	choice := env.ChooseSemiJoinSide()
	var r *Result
	var seq xdm.Sequence
	var err error
	if choice.ShipKeys {
		r, seq, err = env.RunSemiJoin()
	} else {
		r, seq, err = env.RunSemiJoinData()
	}
	return r, seq, choice, err
}

func (env *ShardedEnv) runSharded(label, query string) (*Result, xdm.Sequence, error) {
	for _, reps := range env.Dep.Servers {
		for _, srv := range reps {
			srv.ResetStats()
		}
	}
	env.Net.ResetStats()

	cl := client.New(env.Net)
	co := cluster.NewCoordinator(env.Dep.Table, cl)
	compiled, err := pathfinder.Compile(query, env.Registry)
	if err != nil {
		return nil, nil, fmt.Errorf("sharded semi-join: %w", err)
	}
	ec := &pathfinder.ExecCtx{
		Docs: &client.DocResolver{Local: env.StoreA, Client: cl},
		Bulk: co,
	}
	start := time.Now()
	seq, err := compiled.Eval(ec, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("sharded semi-join: %w", err)
	}
	total := time.Since(start)
	// shards handle the scattered bulk concurrently, so peer A's share
	// of the wall clock is total minus the critical path — the slowest
	// shard's handler time — not minus the sum across shards
	var bTime, bMax time.Duration
	var served int64
	for _, reps := range env.Dep.Servers {
		for _, srv := range reps {
			bTime += srv.HandleTime
			if srv.HandleTime > bMax {
				bMax = srv.HandleTime
			}
			served += srv.ServedRequests
		}
	}
	aTime := total - bMax
	if aTime < 0 {
		aTime = 0
	}
	return &Result{
		Strategy:     label,
		Rows:         len(seq),
		Total:        total,
		ATime:        aTime,
		BTime:        bTime,
		Requests:     served,
		BytesShipped: env.Net.Stats.BytesSent.Load() + env.Net.Stats.BytesReceived.Load(),
	}, seq, nil
}

// Run executes one strategy query on peer A's loop-lifting engine and
// collects the Table 4 measurements.
func (env *Env) Run(name, query string) (*Result, error) {
	env.ServerA.ResetStats()
	env.ServerB.ResetStats()
	env.Net.Stats.Requests.Store(0)
	env.Net.Stats.BytesSent.Store(0)
	env.Net.Stats.BytesReceived.Store(0)

	cl := client.New(env.Net)
	compiled, err := pathfinder.Compile(query, env.Registry)
	if err != nil {
		return nil, fmt.Errorf("strategy %s: %w", name, err)
	}
	ec := &pathfinder.ExecCtx{
		Docs: &client.DocResolver{Local: env.StoreA, Client: cl},
		Bulk: cl,
	}
	start := time.Now()
	seq, err := compiled.Eval(ec, nil)
	if err != nil {
		return nil, fmt.Errorf("strategy %s: %w", name, err)
	}
	total := time.Since(start)
	bTime := env.ServerB.HandleTime
	return &Result{
		Strategy:     name,
		Rows:         len(seq),
		Total:        total,
		ATime:        total - bTime,
		BTime:        bTime,
		Requests:     env.ServerB.ServedRequests,
		BytesShipped: env.Net.Stats.BytesSent.Load() + env.Net.Stats.BytesReceived.Load(),
	}, nil
}

// RunSeq is Run but also returns the result sequence for verification.
func (env *Env) RunSeq(name, query string) (*Result, xdm.Sequence, error) {
	cl := client.New(env.Net)
	compiled, err := pathfinder.Compile(query, env.Registry)
	if err != nil {
		return nil, nil, err
	}
	ec := &pathfinder.ExecCtx{
		Docs: &client.DocResolver{Local: env.StoreA, Client: cl},
		Bulk: cl,
	}
	start := time.Now()
	seq, err := compiled.Eval(ec, nil)
	if err != nil {
		return nil, nil, err
	}
	return &Result{Strategy: name, Rows: len(seq), Total: time.Since(start)}, seq, nil
}

// RunAll executes all four strategies in the paper's Table 4 order.
func (env *Env) RunAll() ([]*Result, error) {
	specs := []struct{ name, query string }{
		{"data shipping", QDataShipping},
		{"predicate push-down", QPredicatePushdown},
		{"execution relocation", QExecutionRelocation},
		{"distributed semi-join", QDistributedSemiJoin},
	}
	var out []*Result
	for _, s := range specs {
		r, err := env.Run(s.name, s.query)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

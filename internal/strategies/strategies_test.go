package strategies

import (
	"fmt"
	"testing"

	"xrpc/internal/netsim"
	"xrpc/internal/xdm"
	"xrpc/internal/xmark"
)

func testConfig() xmark.Config {
	return xmark.Config{
		Persons:         25,
		ClosedAuctions:  100,
		Matches:         6,
		AnnotationWords: 10,
		Seed:            42,
	}
}

func TestAllStrategiesAgree(t *testing.T) {
	cfg := testConfig()
	var counts []int
	var results []xdm.Sequence
	for _, spec := range []struct{ name, query string }{
		{"data shipping", QDataShipping},
		{"predicate push-down", QPredicatePushdown},
		{"execution relocation", QExecutionRelocation},
		{"distributed semi-join", QDistributedSemiJoin},
	} {
		env, err := NewEnv(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, seq, err := env.RunSeq(spec.name, spec.query)
		if err != nil {
			t.Fatalf("%s: %v", spec.name, err)
		}
		counts = append(counts, len(seq))
		results = append(results, seq)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Errorf("strategy %d returned %d rows, strategy 0 returned %d", i, counts[i], counts[0])
		}
	}
	if counts[0] != 6 {
		t.Errorf("join produced %d matches, want 6 (the paper's selectivity)", counts[0])
	}
	// every result row is a <result> with a person and an annotation
	for _, seq := range results {
		for _, it := range seq {
			n, ok := it.(*xdm.Node)
			if !ok || n.Name != "result" {
				t.Fatalf("result item = %v", it)
			}
			persons := xdm.Step(n, xdm.AxisChild, xdm.NodeTest{Name: "person"})
			annos := xdm.Step(n, xdm.AxisChild, xdm.NodeTest{Name: "annotation"})
			if len(persons) != 1 || len(annos) != 1 {
				t.Fatalf("result shape: %d persons, %d annotations", len(persons), len(annos))
			}
		}
	}
}

func TestSemiJoinIsSingleBulkRequest(t *testing.T) {
	env, err := NewEnv(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := env.Run("distributed semi-join", QDistributedSemiJoin)
	if err != nil {
		t.Fatal(err)
	}
	// 25 persons probe B — but loop-lifting folds them into ONE bulk RPC
	if r.Requests != 1 {
		t.Errorf("semi-join sent %d requests to B, want 1 (Bulk RPC)", r.Requests)
	}
}

func TestDataShippingMovesMostBytes(t *testing.T) {
	env, err := NewEnv(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ship, err := env.Run("data shipping", QDataShipping)
	if err != nil {
		t.Fatal(err)
	}
	env2, err := NewEnv(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	semi, err := env2.Run("distributed semi-join", QDistributedSemiJoin)
	if err != nil {
		t.Fatal(err)
	}
	// Table 4's qualitative claim: the semi-join incurs the least data
	// shipping
	if semi.BytesShipped >= ship.BytesShipped {
		t.Errorf("semi-join shipped %d bytes >= data shipping %d bytes",
			semi.BytesShipped, ship.BytesShipped)
	}
}

func TestRunAllOrder(t *testing.T) {
	env, err := NewEnv(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	results, err := env.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"data shipping", "predicate push-down", "execution relocation", "distributed semi-join"}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.Strategy != want[i] {
			t.Errorf("result %d = %s, want %s", i, r.Strategy, want[i])
		}
		if r.Rows != 6 {
			t.Errorf("%s: %d rows, want 6", r.Strategy, r.Rows)
		}
	}
}

func TestGeneratorSelectivity(t *testing.T) {
	cfg := testConfig()
	persons := xmark.GeneratePersons(cfg)
	auctions := xmark.GenerateAuctions(cfg)
	pd, err := xdm.ParseDocument("p", persons)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := xdm.ParseDocument("a", auctions)
	if err != nil {
		t.Fatal(err)
	}
	pNodes := xdm.Step(pd, xdm.AxisDescendant, xdm.NodeTest{Name: "person"})
	if len(pNodes) != cfg.Persons {
		t.Errorf("persons = %d, want %d", len(pNodes), cfg.Persons)
	}
	aNodes := xdm.Step(ad, xdm.AxisDescendant, xdm.NodeTest{Name: "closed_auction"})
	if len(aNodes) != cfg.ClosedAuctions {
		t.Errorf("auctions = %d, want %d", len(aNodes), cfg.ClosedAuctions)
	}
	// count actual join matches
	ids := map[string]bool{}
	for _, p := range pNodes {
		id, _ := p.Attr("id")
		ids[id] = true
	}
	matches := 0
	for _, a := range aNodes {
		buyers := xdm.Step(a, xdm.AxisChild, xdm.NodeTest{Name: "buyer"})
		if len(buyers) != 1 {
			t.Fatalf("auction has %d buyers", len(buyers))
		}
		ref, _ := buyers[0].Attr("person")
		if ids[ref] {
			matches++
		}
	}
	if matches != cfg.Matches {
		t.Errorf("join matches = %d, want %d", matches, cfg.Matches)
	}
	// deterministic: same seed, same output
	if xmark.GeneratePersons(cfg) != persons {
		t.Error("persons generation is not deterministic")
	}
}

func TestShardedSemiJoinAgreesWithUnsharded(t *testing.T) {
	cfg := testConfig()
	baselineEnv, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, baseSeq, err := baselineEnv.RunSeq("distributed semi-join", QDistributedSemiJoin)
	if err != nil {
		t.Fatal(err)
	}
	want := xdm.SerializeSequence(baseSeq)
	if want == "" {
		t.Fatal("baseline semi-join returned nothing")
	}
	for _, shards := range []int{1, 2, 4} {
		env, err := NewShardedEnv(cfg, shards, 1, netsim.NewNetwork(0, 0))
		if err != nil {
			t.Fatal(err)
		}
		res, seq, err := env.RunSemiJoin()
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		if got := xdm.SerializeSequence(seq); got != want {
			t.Fatalf("%d shards: sharded semi-join result differs from two-peer baseline\ngot:  %.200s\nwant: %.200s", shards, got, want)
		}
		// loop-lifting + scatter: exactly one bulk request per shard
		if res.Requests != int64(shards) {
			t.Fatalf("%d shards: %d requests served, want %d (one scattered bulk per shard)",
				shards, res.Requests, shards)
		}
	}
}

func TestSemiJoinSidesAgree(t *testing.T) {
	cfg := testConfig()
	for _, shards := range []int{1, 2, 4} {
		env, err := NewShardedEnv(cfg, shards, 1, netsim.NewNetwork(0, 0))
		if err != nil {
			t.Fatal(err)
		}
		_, keysSeq, err := env.RunSemiJoin()
		if err != nil {
			t.Fatalf("%d shards, ship keys: %v", shards, err)
		}
		dataRes, dataSeq, err := env.RunSemiJoinData()
		if err != nil {
			t.Fatalf("%d shards, ship data: %v", shards, err)
		}
		if got, want := xdm.SerializeSequence(dataSeq), xdm.SerializeSequence(keysSeq); got != want {
			t.Fatalf("%d shards: data-side result differs from keys-side\ngot:  %.200s\nwant: %.200s",
				shards, got, want)
		}
		// the loop-invariant Q_B1() broadcast dedupes to one scattered
		// bulk request: one request per shard, independent of persons
		if dataRes.Requests != int64(shards) {
			t.Fatalf("%d shards: data side served %d requests, want %d",
				shards, dataRes.Requests, shards)
		}
	}
}

func TestSemiJoinAutoShipsSmallerSide(t *testing.T) {
	// few short probe keys against many annotated auctions: keys ship
	small, err := NewShardedEnv(testConfig(), 2, 1, netsim.NewNetwork(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	choice := small.ChooseSemiJoinSide()
	if !choice.ShipKeys {
		t.Fatalf("probe side smaller but choice = ship data (keys %.2g, data %.2g)",
			choice.EstKeys, choice.EstData)
	}
	res, seq, got, err := small.RunSemiJoinAuto()
	if err != nil {
		t.Fatal(err)
	}
	if got != choice || res == nil || len(seq) == 0 {
		t.Fatalf("auto run: choice %+v, res %v, %d rows", got, res, len(seq))
	}

	// many probe keys against a tiny auction side: the data ships
	bigProbe := xmark.Config{Persons: 400, ClosedAuctions: 3, Matches: 2, AnnotationWords: 5, Seed: 7}
	flipped, err := NewShardedEnv(bigProbe, 2, 1, netsim.NewNetwork(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if c := flipped.ChooseSemiJoinSide(); c.ShipKeys {
		t.Fatalf("data side smaller but choice = ship keys (keys %.2g, data %.2g)",
			c.EstKeys, c.EstData)
	}
	_, keysSeq, err := flipped.RunSemiJoin()
	if err != nil {
		t.Fatal(err)
	}
	_, autoSeq, c, err := flipped.RunSemiJoinAuto()
	if err != nil {
		t.Fatal(err)
	}
	if c.ShipKeys {
		t.Fatal("auto run shipped keys for the flipped sides")
	}
	if xdm.SerializeSequence(autoSeq) != xdm.SerializeSequence(keysSeq) {
		t.Fatal("auto (data side) result differs from keys side")
	}
}

func TestShardedSemiJoinSurvivesPrimaryFailure(t *testing.T) {
	cfg := testConfig()
	net := netsim.NewNetwork(0, 0)
	env, err := NewShardedEnv(cfg, 3, 2, net)
	if err != nil {
		t.Fatal(err)
	}
	_, seq, err := env.RunSemiJoin()
	if err != nil {
		t.Fatal(err)
	}
	want := xdm.SerializeSequence(seq)
	// take down one primary; the replica must answer identically
	net.Register(env.Dep.Table.Primary(1), netsim.HandlerFunc(
		func(path string, body []byte) ([]byte, error) {
			return nil, fmt.Errorf("connection refused")
		}))
	_, seq, err = env.RunSemiJoin()
	if err != nil {
		t.Fatal(err)
	}
	if got := xdm.SerializeSequence(seq); got != want {
		t.Fatal("result changed after failover to replica")
	}
}

package xdm

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// ParseDocument parses XML text into a sealed document node with the
// given URI. Namespace prefixes are kept verbatim in node names (the
// reproduction treats QNames lexically, which suffices for the paper's
// workloads and the XRPC envelope).
func ParseDocument(uri, text string) (*Node, error) {
	doc := NewDocument(uri)
	if err := parseInto(doc, strings.NewReader(text)); err != nil {
		return nil, err
	}
	doc.Seal()
	return doc, nil
}

// ParseFragment parses XML text that may lack a single root and returns
// the parsed top-level nodes (each sealed as its own fragment tree).
func ParseFragment(text string) ([]*Node, error) {
	doc := NewDocument("")
	if err := parseInto(doc, strings.NewReader(text)); err != nil {
		return nil, err
	}
	for _, c := range doc.Children {
		c.Parent = nil
		c.Seal()
	}
	return doc.Children, nil
}

func parseInto(doc *Node, r io.Reader) error {
	dec := xml.NewDecoder(r)
	// Keep prefixes: the stdlib decoder resolves namespaces; we re-attach
	// a prefix when the token carried one by inspecting Name.Space.
	var stack []*Node
	cur := doc
	for {
		tok, err := dec.RawToken()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("xml parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			el := NewElement(rawName(t.Name))
			for _, a := range t.Attr {
				el.SetAttr(NewAttribute(rawName(a.Name), a.Value))
			}
			cur.AppendChild(el)
			stack = append(stack, cur)
			cur = el
		case xml.EndElement:
			if len(stack) == 0 {
				return fmt.Errorf("xml parse: unbalanced end tag </%s>", rawName(t.Name))
			}
			cur = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		case xml.CharData:
			s := string(t)
			if cur == doc && strings.TrimSpace(s) == "" {
				continue // ignore whitespace outside the root
			}
			if len(cur.Children) > 0 && cur.Children[len(cur.Children)-1].Kind == TextNode {
				cur.Children[len(cur.Children)-1].Value += s
				continue
			}
			cur.AppendChild(NewText(s))
		case xml.Comment:
			cur.AppendChild(NewComment(string(t)))
		case xml.ProcInst:
			if t.Target == "xml" {
				continue // XML declaration
			}
			cur.AppendChild(NewPI(t.Target, string(t.Inst)))
		case xml.Directive:
			// DOCTYPE etc: ignored.
		}
	}
	if len(stack) != 0 {
		return fmt.Errorf("xml parse: %d unclosed element(s)", len(stack))
	}
	return nil
}

func rawName(n xml.Name) string {
	if n.Space != "" {
		return n.Space + ":" + n.Local
	}
	return n.Local
}

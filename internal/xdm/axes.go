package xdm

// Axis identifies an XPath axis supported by the reproduction.
type Axis int

// Supported axes. The paper's call-by-value semantics make upward and
// sideways axes on XRPC parameters return empty results (§2.2); all of
// them are implemented so that behaviour is observable.
const (
	AxisChild Axis = iota
	AxisDescendant
	AxisDescendantOrSelf
	AxisAttribute
	AxisSelf
	AxisParent
	AxisAncestor
	AxisAncestorOrSelf
	AxisFollowingSibling
	AxisPrecedingSibling
	AxisFollowing
	AxisPreceding
)

// String returns the XPath name of the axis.
func (a Axis) String() string {
	switch a {
	case AxisChild:
		return "child"
	case AxisDescendant:
		return "descendant"
	case AxisDescendantOrSelf:
		return "descendant-or-self"
	case AxisAttribute:
		return "attribute"
	case AxisSelf:
		return "self"
	case AxisParent:
		return "parent"
	case AxisAncestor:
		return "ancestor"
	case AxisAncestorOrSelf:
		return "ancestor-or-self"
	case AxisFollowingSibling:
		return "following-sibling"
	case AxisPrecedingSibling:
		return "preceding-sibling"
	case AxisFollowing:
		return "following"
	default:
		return "preceding"
	}
}

// Reverse reports whether the axis is a reverse axis (results delivered
// in reverse document order before the final sort).
func (a Axis) Reverse() bool {
	switch a {
	case AxisParent, AxisAncestor, AxisAncestorOrSelf, AxisPrecedingSibling, AxisPreceding:
		return true
	}
	return false
}

// NodeTest is a predicate over nodes used by path steps: a name test
// (possibly the wildcard "*") or a kind test.
type NodeTest struct {
	Kind     NodeKind // meaningful when KindTest
	KindTest bool     // true for text(), node(), comment(), etc.
	AnyKind  bool     // node()
	Name     string   // name test; "*" is wildcard
}

// Matches reports whether the node satisfies the test in the context of
// the given axis (name tests select elements on most axes, attributes on
// the attribute axis).
func (t NodeTest) Matches(n *Node, axis Axis) bool {
	if t.KindTest {
		if t.AnyKind {
			return true
		}
		return n.Kind == t.Kind
	}
	principal := ElementNode
	if axis == AxisAttribute {
		principal = AttributeNode
	}
	if n.Kind != principal {
		return false
	}
	return t.Name == "*" || n.Name == t.Name
}

// Step evaluates one axis step with a node test from a single context
// node, returning matching nodes in axis order.
func Step(ctx *Node, axis Axis, test NodeTest) []*Node {
	var out []*Node
	add := func(n *Node) {
		if test.Matches(n, axis) {
			out = append(out, n)
		}
	}
	switch axis {
	case AxisChild:
		for _, c := range ctx.Children {
			add(c)
		}
	case AxisDescendant:
		walkDescendants(ctx, add)
	case AxisDescendantOrSelf:
		add(ctx)
		walkDescendants(ctx, add)
	case AxisAttribute:
		for _, a := range ctx.Attrs {
			add(a)
		}
	case AxisSelf:
		add(ctx)
	case AxisParent:
		if ctx.Parent != nil {
			add(ctx.Parent)
		}
	case AxisAncestor:
		for p := ctx.Parent; p != nil; p = p.Parent {
			add(p)
		}
	case AxisAncestorOrSelf:
		for p := ctx; p != nil; p = p.Parent {
			add(p)
		}
	case AxisFollowingSibling:
		if ctx.Parent != nil {
			past := false
			for _, s := range ctx.Parent.Children {
				if past {
					add(s)
				}
				if s == ctx {
					past = true
				}
			}
		}
	case AxisPrecedingSibling:
		if ctx.Parent != nil {
			var before []*Node
			for _, s := range ctx.Parent.Children {
				if s == ctx {
					break
				}
				before = append(before, s)
			}
			for i := len(before) - 1; i >= 0; i-- {
				add(before[i])
			}
		}
	case AxisFollowing:
		for p := ctx; p != nil; p = p.Parent {
			if p.Parent == nil {
				break
			}
			past := false
			for _, s := range p.Parent.Children {
				if past {
					add(s)
					walkDescendants(s, add)
				}
				if s == p {
					past = true
				}
			}
		}
	case AxisPreceding:
		// collected in document order then reversed by caller's sort;
		// exclude ancestors per spec.
		anc := map[*Node]bool{}
		for p := ctx; p != nil; p = p.Parent {
			anc[p] = true
		}
		var pre []*Node
		var walk func(*Node) bool
		walk = func(n *Node) bool {
			if n == ctx {
				return true
			}
			if !anc[n] {
				pre = append(pre, n)
			}
			for _, c := range n.Children {
				if walk(c) {
					return true
				}
			}
			return false
		}
		walk(ctx.Root())
		for i := len(pre) - 1; i >= 0; i-- {
			add(pre[i])
		}
	}
	return out
}

func walkDescendants(n *Node, visit func(*Node)) {
	for _, c := range n.Children {
		visit(c)
		walkDescendants(c, visit)
	}
}

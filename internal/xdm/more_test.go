package xdm

import (
	"strings"
	"testing"
)

func TestSerializeSpecialNodes(t *testing.T) {
	c := NewComment("a comment")
	if got := SerializeNode(c); got != "<!--a comment-->" {
		t.Errorf("comment = %q", got)
	}
	pi := NewPI("target", "data here")
	if got := SerializeNode(pi); got != "<?target data here?>" {
		t.Errorf("pi = %q", got)
	}
	pi2 := NewPI("t", "")
	if got := SerializeNode(pi2); got != "<?t?>" {
		t.Errorf("empty pi = %q", got)
	}
	a := NewAttribute("k", `v"1`)
	if got := SerializeNode(a); got != `k="v&quot;1"` {
		t.Errorf("attr = %q", got)
	}
}

func TestCastEdgeCases(t *testing.T) {
	// INF/NaN doubles
	if v, err := CastAtomic(String("INF"), "xs:double"); err != nil || v.StringValue() != "INF" {
		t.Errorf("INF cast = %v, %v", v, err)
	}
	if v, err := CastAtomic(String("-INF"), "xs:double"); err != nil || v.StringValue() != "-INF" {
		t.Errorf("-INF cast = %v, %v", v, err)
	}
	if v, err := CastAtomic(String("NaN"), "xs:double"); err != nil || v.StringValue() != "NaN" {
		t.Errorf("NaN cast = %v, %v", v, err)
	}
	// NaN to integer fails
	nan, _ := CastAtomic(String("NaN"), "xs:double")
	if _, err := CastAtomic(nan, "xs:integer"); err == nil {
		t.Error("NaN->integer must fail")
	}
	// boolean casts
	for s, want := range map[string]bool{"true": true, "1": true, "false": false, "0": false} {
		v, err := CastAtomic(String(s), "xs:boolean")
		if err != nil || bool(v.(Boolean)) != want {
			t.Errorf("boolean(%q) = %v, %v", s, v, err)
		}
	}
	if _, err := CastAtomic(String("maybe"), "xs:boolean"); err == nil {
		t.Error("boolean('maybe') must fail")
	}
	// unsupported target
	if _, err := CastAtomic(String("x"), "xs:dateTime"); err == nil {
		t.Error("unsupported type must fail")
	}
	// decimal/double numeric conversions
	if v, _ := CastAtomic(Integer(3), "xs:decimal"); v.(Decimal) != 3 {
		t.Errorf("int->decimal = %v", v)
	}
	if v, _ := CastAtomic(Decimal(2.5), "xs:double"); v.(Double) != 2.5 {
		t.Errorf("decimal->double = %v", v)
	}
	if v, _ := CastAtomic(Boolean(true), "xs:integer"); v.(Integer) != 1 {
		t.Errorf("true->integer = %v", v)
	}
	// node atomization inside cast
	doc := mustParse(t, "<n>12</n>")
	if v, err := CastAtomic(doc.Children[0], "xs:integer"); err != nil || v.(Integer) != 12 {
		t.Errorf("node->integer = %v, %v", v, err)
	}
}

func TestCompareBooleans(t *testing.T) {
	lt, err := CompareAtomic(Boolean(false), Boolean(true), OpLt)
	if err != nil || !lt {
		t.Errorf("false < true: %v %v", lt, err)
	}
	eq, _ := CompareAtomic(Boolean(true), Boolean(true), OpEq)
	if !eq {
		t.Error("true eq true")
	}
	// untyped vs boolean
	ok, err := CompareAtomic(Untyped("true"), Boolean(true), OpEq)
	if err != nil || !ok {
		t.Errorf("untyped true = true: %v %v", ok, err)
	}
}

func TestCompareOpString(t *testing.T) {
	names := map[CompareOp]string{
		OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%d = %q", op, op.String())
		}
	}
}

func TestNodeKindStrings(t *testing.T) {
	kinds := []NodeKind{DocumentNode, ElementNode, AttributeNode, TextNode, CommentNode, PINode}
	for _, k := range kinds {
		if k.String() == "" || !strings.Contains(k.String(), "(") {
			t.Errorf("kind %d name = %q", k, k.String())
		}
	}
}

func TestAxisStrings(t *testing.T) {
	axes := []Axis{
		AxisChild, AxisDescendant, AxisDescendantOrSelf, AxisAttribute,
		AxisSelf, AxisParent, AxisAncestor, AxisAncestorOrSelf,
		AxisFollowingSibling, AxisPrecedingSibling, AxisFollowing, AxisPreceding,
	}
	seen := map[string]bool{}
	for _, a := range axes {
		name := a.String()
		if name == "" || seen[name] {
			t.Errorf("axis %d name %q duplicate/empty", a, name)
		}
		seen[name] = true
	}
	if !AxisParent.Reverse() || AxisChild.Reverse() {
		t.Error("reverse axis classification wrong")
	}
}

func TestAncestorOrSelfAndSelfAxes(t *testing.T) {
	doc := mustParse(t, `<a><b><c/></b></a>`)
	c := Step(doc, AxisDescendant, NodeTest{Name: "c"})[0]
	aos := Step(c, AxisAncestorOrSelf, NodeTest{KindTest: true, AnyKind: true})
	if len(aos) != 4 { // c, b, a, document
		t.Errorf("ancestor-or-self = %d", len(aos))
	}
	self := Step(c, AxisSelf, NodeTest{Name: "c"})
	if len(self) != 1 {
		t.Errorf("self = %d", len(self))
	}
	if got := Step(c, AxisSelf, NodeTest{Name: "b"}); len(got) != 0 {
		t.Errorf("self with wrong name = %d", len(got))
	}
}

func TestDeepEqualMixedKinds(t *testing.T) {
	a := mustParse(t, `<x><!--c--><y/></x>`)
	b := mustParse(t, `<x><y/></x>`)
	// comments are ignored at element level
	if !DeepEqual(Sequence{a.Children[0]}, Sequence{b.Children[0]}) {
		t.Error("comments should be ignored by deep-equal")
	}
	// kind mismatch
	txt := NewText("x")
	txt.Seal()
	cm := NewComment("x")
	cm.Seal()
	if DeepEqual(Sequence{txt}, Sequence{cm}) {
		t.Error("text vs comment must differ")
	}
	// atomic vs node
	if DeepEqual(Sequence{String("x")}, Sequence{txt}) {
		t.Error("atomic vs node must differ")
	}
}

func TestEffectiveBooleanErrors(t *testing.T) {
	if _, err := EffectiveBoolean(Sequence{String("a"), String("b")}); err == nil {
		t.Error("multi-atomic EBV must error")
	}
}

func TestErrorFormatting(t *testing.T) {
	e := NewError("XPTY0004", "type mismatch")
	if !strings.Contains(e.Error(), "err:XPTY0004") {
		t.Errorf("error = %q", e.Error())
	}
	e2 := Errorf("FORG0001", "bad %q", "value")
	if !strings.Contains(e2.Error(), `"value"`) {
		t.Errorf("errorf = %q", e2.Error())
	}
}

func TestSequenceString(t *testing.T) {
	doc := mustParse(t, "<a/>")
	s := Sequence{String("x"), Integer(3), doc.Children[0]}
	out := s.String()
	if !strings.Contains(out, `"x"`) || !strings.Contains(out, "3") || !strings.Contains(out, "<a>") {
		t.Errorf("debug string = %q", out)
	}
}

func TestNumericValueFromUntyped(t *testing.T) {
	if f, ok := NumericValue(Untyped(" 42.5 ")); !ok || f != 42.5 {
		t.Errorf("untyped numeric = %v %v", f, ok)
	}
	if _, ok := NumericValue(Untyped("abc")); ok {
		t.Error("abc should not be numeric")
	}
	if _, ok := NumericValue(String("3")); ok {
		t.Error("xs:string is not numeric without cast")
	}
}

func TestConcatSequences(t *testing.T) {
	got := Concat(Sequence{Integer(1)}, nil, Sequence{Integer(2), Integer(3)})
	if len(got) != 3 {
		t.Errorf("concat = %v", got)
	}
}

func TestSetDocURI(t *testing.T) {
	doc := mustParse(t, "<a/>")
	clone := doc.Clone()
	if clone.DocURI() != "" {
		t.Errorf("clone uri = %q", clone.DocURI())
	}
	clone.SetDocURI("new.xml")
	if clone.DocURI() != "new.xml" {
		t.Errorf("set uri = %q", clone.DocURI())
	}
	if clone.Children[0].DocURI() != "new.xml" {
		t.Error("children must share the tree uri")
	}
}

package xdm

import (
	"fmt"
	"sync/atomic"
)

// NodeKind identifies one of the six XDM node kinds supported by XRPC
// parameter marshaling (§2.1 of the paper).
type NodeKind int

// Node kinds.
const (
	DocumentNode NodeKind = iota
	ElementNode
	AttributeNode
	TextNode
	CommentNode
	PINode
)

// String returns the node-kind name used in diagnostics.
func (k NodeKind) String() string {
	switch k {
	case DocumentNode:
		return "document-node()"
	case ElementNode:
		return "element()"
	case AttributeNode:
		return "attribute()"
	case TextNode:
		return "text()"
	case CommentNode:
		return "comment()"
	case PINode:
		return "processing-instruction()"
	default:
		return "node()"
	}
}

var docSeq atomic.Int64

// treeInfo identifies one tree (document or constructed fragment) for the
// purpose of node identity and cross-tree document order.
type treeInfo struct {
	id  int64
	uri string
}

// Node is an XDM node. Nodes have identity: two nodes are the same node
// iff they are the same *Node pointer. Document order is (tree id,
// preorder ordinal); a consistent (arbitrary but stable) order is imposed
// across trees via the tree id, as the XDM requires.
type Node struct {
	Kind     NodeKind
	Name     string // element/attribute QName, PI target
	Value    string // text/comment/PI content, attribute value
	TypeAnn  string // xsi:type annotation carried through XRPC marshaling
	Parent   *Node
	Children []*Node
	Attrs    []*Node

	tree *treeInfo
	ord  int // preorder ordinal within the tree; stable node id
}

func (*Node) isItem() {}

// TypeName implements Item.
func (n *Node) TypeName() string { return n.Kind.String() }

// StringValue implements Item: concatenation of descendant text for
// documents/elements; stored value otherwise.
func (n *Node) StringValue() string {
	switch n.Kind {
	case DocumentNode, ElementNode:
		var out []byte
		var walk func(*Node)
		walk = func(c *Node) {
			if c.Kind == TextNode {
				out = append(out, c.Value...)
				return
			}
			for _, ch := range c.Children {
				walk(ch)
			}
		}
		walk(n)
		return string(out)
	default:
		return n.Value
	}
}

// SetDocURI stamps the tree of n with a document URI. Used when a cloned
// tree becomes the new stored version of a named document. The node must
// be sealed first.
func (n *Node) SetDocURI(uri string) {
	if n.tree != nil {
		n.tree.uri = uri
	}
}

// DocURI returns the document URI the node belongs to ("" for constructed
// fragments).
func (n *Node) DocURI() string {
	if n.tree == nil {
		return ""
	}
	return n.tree.uri
}

// TreeID returns the identity of the tree this node belongs to.
func (n *Node) TreeID() int64 {
	if n.tree == nil {
		return 0
	}
	return n.tree.id
}

// Ord returns the preorder ordinal of the node within its tree. Ordinals
// are assigned by Seal and are stable across Clone, which makes them
// usable as node ids in pending update lists.
func (n *Node) Ord() int { return n.ord }

// NewDocument creates a document node with the given URI.
func NewDocument(uri string) *Node {
	return &Node{Kind: DocumentNode, tree: &treeInfo{id: docSeq.Add(1), uri: uri}}
}

// NewElement creates a free-standing element node.
func NewElement(name string) *Node { return &Node{Kind: ElementNode, Name: name} }

// NewText creates a text node.
func NewText(value string) *Node { return &Node{Kind: TextNode, Value: value} }

// NewComment creates a comment node.
func NewComment(value string) *Node { return &Node{Kind: CommentNode, Value: value} }

// NewPI creates a processing-instruction node.
func NewPI(target, value string) *Node { return &Node{Kind: PINode, Name: target, Value: value} }

// NewAttribute creates an attribute node.
func NewAttribute(name, value string) *Node {
	return &Node{Kind: AttributeNode, Name: name, Value: value}
}

// Arena batch-allocates nodes in slabs, for decoders that build many
// small trees: one allocation per slab instead of one per node. Arena
// nodes are ordinary nodes in every respect (identity is still the
// pointer); an arena is not safe for concurrent use and is typically
// scoped to one decoded message.
type Arena struct {
	slab []Node
}

// arenaSlab is the nodes-per-allocation batch size.
const arenaSlab = 64

func (a *Arena) node(kind NodeKind, name, value string) *Node {
	if len(a.slab) == 0 {
		a.slab = make([]Node, arenaSlab)
	}
	n := &a.slab[0]
	a.slab = a.slab[1:]
	n.Kind, n.Name, n.Value = kind, name, value
	return n
}

// Element creates an element node from the arena.
func (a *Arena) Element(name string) *Node { return a.node(ElementNode, name, "") }

// Text creates a text node from the arena.
func (a *Arena) Text(value string) *Node { return a.node(TextNode, "", value) }

// Comment creates a comment node from the arena.
func (a *Arena) Comment(value string) *Node { return a.node(CommentNode, "", value) }

// PI creates a processing-instruction node from the arena.
func (a *Arena) PI(target, value string) *Node { return a.node(PINode, target, value) }

// Attribute creates an attribute node from the arena.
func (a *Arena) Attribute(name, value string) *Node { return a.node(AttributeNode, name, value) }

// Document creates a document node from the arena with its own tree
// identity.
func (a *Arena) Document(uri string) *Node {
	n := a.node(DocumentNode, "", "")
	n.tree = &treeInfo{id: docSeq.Add(1), uri: uri}
	return n
}

// AppendChild links child under n (for document/element parents).
func (n *Node) AppendChild(child *Node) {
	child.Parent = n
	n.Children = append(n.Children, child)
}

// SetAttr attaches an attribute node to an element.
func (n *Node) SetAttr(attr *Node) {
	attr.Parent = n
	n.Attrs = append(n.Attrs, attr)
}

// Seal assigns tree identity and preorder ordinals to the whole tree
// rooted at n. Call after construction and after structural updates. If
// the root has no tree info yet, a fresh tree identity is allocated.
func (n *Node) Seal() *Node {
	root := n.Root()
	if root.tree == nil {
		root.tree = &treeInfo{id: docSeq.Add(1)}
	}
	ord := 0
	var walk func(*Node)
	walk = func(c *Node) {
		c.tree = root.tree
		c.ord = ord
		ord++
		for _, a := range c.Attrs {
			a.tree = root.tree
			a.ord = ord
			ord++
		}
		for _, ch := range c.Children {
			walk(ch)
		}
	}
	walk(root)
	return n
}

// Root returns the topmost ancestor of n (the node itself if parentless).
func (n *Node) Root() *Node {
	r := n
	for r.Parent != nil {
		r = r.Parent
	}
	return r
}

// Clone deep-copies the subtree rooted at n into a fresh tree with new
// identity but identical ordinals — this is the call-by-value copy that
// XRPC parameter marshaling performs (§2.2, "Call-by-Value").
func (n *Node) Clone() *Node {
	c := n.cloneRec()
	c.Parent = nil
	c.Seal()
	return c
}

func (n *Node) cloneRec() *Node {
	c := &Node{Kind: n.Kind, Name: n.Name, Value: n.Value, TypeAnn: n.TypeAnn}
	for _, a := range n.Attrs {
		ac := &Node{Kind: AttributeNode, Name: a.Name, Value: a.Value, Parent: c}
		c.Attrs = append(c.Attrs, ac)
	}
	for _, ch := range n.Children {
		cc := ch.cloneRec()
		cc.Parent = c
		c.Children = append(c.Children, cc)
	}
	return c
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// ChildElements returns the element children of n.
func (n *Node) ChildElements() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == ElementNode {
			out = append(out, c)
		}
	}
	return out
}

// FindByOrd locates the node with the given preorder ordinal in the tree
// rooted at n (nil if absent). Used to re-locate pending-update-list
// targets in a cloned snapshot.
func (n *Node) FindByOrd(ord int) *Node {
	var found *Node
	var walk func(*Node) bool
	walk = func(c *Node) bool {
		if c.ord == ord {
			found = c
			return true
		}
		for _, a := range c.Attrs {
			if a.ord == ord {
				found = a
				return true
			}
		}
		for _, ch := range c.Children {
			if walk(ch) {
				return true
			}
		}
		return false
	}
	walk(n.Root())
	return found
}

// DocOrderLess reports whether a precedes b in document order. Nodes in
// different trees are ordered by tree id (a stable, implementation-chosen
// order, as the XDM permits).
func DocOrderLess(a, b *Node) bool {
	at, bt := a.TreeID(), b.TreeID()
	if at != bt {
		return at < bt
	}
	return a.ord < b.ord
}

// SortDocOrderDedup sorts nodes into document order and removes
// duplicates (by node identity). This is the standard post-processing of
// XPath step results.
func SortDocOrderDedup(nodes []*Node) []*Node {
	if len(nodes) < 2 {
		return nodes
	}
	sorted := make([]*Node, len(nodes))
	copy(sorted, nodes)
	// insertion-free: use sort.Slice equivalent without importing sort in
	// hot path — nodes lists are small; use a simple merge sort via the
	// stdlib.
	sortNodes(sorted)
	out := sorted[:0]
	var prev *Node
	for _, n := range sorted {
		if n != prev {
			out = append(out, n)
		}
		prev = n
	}
	return out
}

func (n *Node) debugString() string {
	switch n.Kind {
	case ElementNode:
		return "<" + n.Name + ">"
	case AttributeNode:
		return "@" + n.Name + "=" + fmt.Sprintf("%q", n.Value)
	case TextNode:
		return fmt.Sprintf("text(%q)", n.Value)
	case DocumentNode:
		return "document(" + n.DocURI() + ")"
	case CommentNode:
		return fmt.Sprintf("comment(%q)", n.Value)
	default:
		return fmt.Sprintf("pi(%s,%q)", n.Name, n.Value)
	}
}
